// Unit tests for the cost-based join planner and its EDB statistics:
// exact per-relation cardinality/distinct collection, the per-predicate
// triple histogram, characteristic-set subject-star counts, rule-body
// ordering (selective atoms pulled forward, bound-variable propagation),
// DP/greedy agreement on clear-cut bodies, output-cardinality estimation,
// and the end-to-end engine counters (plans computed, plan cache hits,
// q-error).

#include <gtest/gtest.h>

#include "core/engine.h"
#include "datalog/ast.h"
#include "datalog/planner.h"
#include "datalog/relation.h"
#include "datalog/stats.h"
#include "rdf/turtle_parser.h"

namespace sparqlog::datalog {
namespace {

// --- EdbStats collection ----------------------------------------------------

TEST(EdbStatsTest, CollectsExactCardinalityAndDistincts) {
  PredicateTable preds;
  PredicateId e = preds.Intern("e", 2);
  Database db;
  Relation& rel = db.relation(e, 2);
  // 4 rows; col0 has 2 distinct values, col1 has 4.
  rel.Insert({1, 10}, 0);
  rel.Insert({1, 11}, 0);
  rel.Insert({2, 12}, 0);
  rel.Insert({2, 13}, 0);

  EdbStats stats;
  stats.Collect(db, /*triple_pred=*/~0u);
  const RelationStats* rs = stats.Find(e);
  ASSERT_NE(rs, nullptr);
  EXPECT_EQ(rs->rows, 4u);
  ASSERT_EQ(rs->distinct.size(), 2u);
  EXPECT_EQ(rs->distinct[0], 2u);
  EXPECT_EQ(rs->distinct[1], 4u);
  EXPECT_EQ(stats.Find(e + 7), nullptr);
  EXPECT_FALSE(stats.has_triple_histogram());
}

TEST(EdbStatsTest, TripleHistogramAndCharacteristicSets) {
  PredicateTable preds;
  PredicateId triple = preds.Intern("triple", 4);
  Database db;
  Relation& rel = db.relation(triple, 4);
  // Predicates 100 (dense) and 200 (sparse); graph column constant 9.
  // Subjects 1..4 all have pred 100; subjects 1,2 also have pred 200.
  for (Value s = 1; s <= 4; ++s) rel.Insert({s, 100, s + 50, 9}, 0);
  rel.Insert({1, 200, 61, 9}, 0);
  rel.Insert({2, 200, 62, 9}, 0);

  EdbStats stats;
  stats.Collect(db, triple);
  ASSERT_TRUE(stats.has_triple_histogram());
  EXPECT_EQ(stats.total_triples(), 6u);

  const PredicateTermStats* dense = stats.FindPredicateTerm(100);
  ASSERT_NE(dense, nullptr);
  EXPECT_EQ(dense->triples, 4u);
  EXPECT_EQ(dense->distinct_subjects, 4u);
  EXPECT_EQ(dense->distinct_objects, 4u);
  const PredicateTermStats* sparse = stats.FindPredicateTerm(200);
  ASSERT_NE(sparse, nullptr);
  EXPECT_EQ(sparse->triples, 2u);
  EXPECT_EQ(stats.FindPredicateTerm(777), nullptr);

  // Characteristic sets: exact star counts, no independence assumption.
  ASSERT_TRUE(stats.has_characteristic_sets());
  uint64_t n = 0;
  ASSERT_TRUE(stats.CountSubjectsWithAll({100}, &n));
  EXPECT_EQ(n, 4u);
  ASSERT_TRUE(stats.CountSubjectsWithAll({100, 200}, &n));
  EXPECT_EQ(n, 2u);
  ASSERT_TRUE(stats.CountSubjectsWithAll({200}, &n));
  EXPECT_EQ(n, 2u);
  ASSERT_TRUE(stats.CountSubjectsWithAll({100, 777}, &n));
  EXPECT_EQ(n, 0u);
}

// --- Planner ordering -------------------------------------------------------

/// Builds a database with chain relations e1..en where |e_i| = 2^i and
/// every column is all-distinct, plus the matching stats.
struct ChainFixture {
  PredicateTable preds;
  Database db;
  EdbStats stats;
  std::vector<PredicateId> rels;

  explicit ChainFixture(uint32_t n) {
    for (uint32_t i = 1; i <= n; ++i) {
      PredicateId p = preds.Intern("e" + std::to_string(i), 2);
      rels.push_back(p);
      Relation& rel = db.relation(p, 2);
      const uint64_t rows = 1ull << i;
      for (uint64_t j = 0; j < rows; ++j) {
        rel.Insert({i * 100000 + j, i * 200000 + j}, 0);
      }
    }
    stats.Collect(db, ~0u);
  }
};

/// Chain rule ans(x0, xn) :- e_k(x_{k-1}, x_k) with the body written
/// LARGEST first (worst translation order).
Program ChainProgram(ChainFixture* fx, uint32_t n) {
  Program program;
  program.predicates = fx->preds;
  PredicateId ans = program.predicates.Intern("ans", 2);
  RuleBuilder b(&program.predicates);
  b.Head("ans", {b.Var("x0"), b.Var("x" + std::to_string(n))});
  for (uint32_t i = n; i >= 1; --i) {
    b.Body("e" + std::to_string(i),
           {b.Var("x" + std::to_string(i - 1)),
            b.Var("x" + std::to_string(i))});
  }
  program.rules.push_back(b.Build());
  program.output.predicate = ans;
  return program;
}

/// The predicate of the first body atom after planning.
PredicateId FirstAtom(const Program& p) {
  return p.rules[0].positive.front().predicate;
}

TEST(PlannerTest, DpOrdersChainSmallestFirst) {
  ChainFixture fx(6);
  Program program = ChainProgram(&fx, 6);  // <= kDpMaxAtoms: exact DP
  PlannerReport report = PlanProgram(&program, fx.stats);
  EXPECT_EQ(report.rules_planned, 1u);
  EXPECT_EQ(report.dp_bodies, 1u);
  EXPECT_EQ(report.greedy_bodies, 0u);
  EXPECT_EQ(report.bodies_reordered, 1u);
  EXPECT_TRUE(program.rules[0].planned);
  // The ascending chain e1, e2, ..., e6 minimizes every intermediate.
  for (uint32_t i = 0; i < 6; ++i) {
    EXPECT_EQ(program.rules[0].positive[i].predicate, fx.rels[i]) << i;
  }
}

TEST(PlannerTest, GreedyAgreesWithDpOnClearCutChain) {
  // Same chain, one atom past the DP cutoff: the greedy path must pick
  // the identical ascending order the DP picks for the shorter body.
  ChainFixture fx(kDpMaxAtoms + 1);
  Program program = ChainProgram(&fx, kDpMaxAtoms + 1);
  PlannerReport report = PlanProgram(&program, fx.stats);
  EXPECT_EQ(report.greedy_bodies, 1u);
  EXPECT_EQ(report.dp_bodies, 0u);
  for (uint32_t i = 0; i < kDpMaxAtoms + 1; ++i) {
    EXPECT_EQ(program.rules[0].positive[i].predicate, fx.rels[i]) << i;
  }
}

TEST(PlannerTest, PlanningIsIdempotent) {
  ChainFixture fx(5);
  Program program = ChainProgram(&fx, 5);
  PlanProgram(&program, fx.stats);
  std::vector<PredicateId> first;
  for (const Atom& a : program.rules[0].positive) {
    first.push_back(a.predicate);
  }
  PlannerReport again = PlanProgram(&program, fx.stats);
  EXPECT_EQ(again.bodies_reordered, 0u);  // already in planned order
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(program.rules[0].positive[i].predicate, first[i]);
  }
}

TEST(PlannerTest, ConstantBoundAtomPulledForward) {
  PredicateTable preds;
  PredicateId big = preds.Intern("big", 2);
  PredicateId name = preds.Intern("name", 2);
  Database db;
  Relation& rb = db.relation(big, 2);
  for (uint64_t j = 0; j < 64; ++j) rb.Insert({j, j + 1000}, 0);
  Relation& rn = db.relation(name, 2);
  for (uint64_t j = 0; j < 64; ++j) rn.Insert({j, j + 5000}, 0);
  EdbStats stats;
  stats.Collect(db, ~0u);

  // ans(x) :- big(x, y), name(x, 5003): the constant selects 1/64 of
  // `name`, so the planner must move it first despite equal base sizes.
  Program program;
  program.predicates = preds;
  PredicateId ans = program.predicates.Intern("ans", 1);
  RuleBuilder b(&program.predicates);
  b.Head("ans", {b.Var("x")});
  b.Body("big", {b.Var("x"), b.Var("y")});
  b.Body("name", {b.Var("x"), RuleBuilder::Const(5003)});
  program.rules.push_back(b.Build());
  program.output.predicate = ans;

  PlanProgram(&program, stats);
  EXPECT_EQ(FirstAtom(program), name);
}

TEST(PlannerTest, TripleHistogramSeparatesDenseAndSparsePatterns) {
  PredicateTable preds;
  PredicateId triple = preds.Intern("triple", 4);
  Database db;
  Relation& rel = db.relation(triple, 4);
  // 64 triples with predicate 100, 2 with predicate 200.
  for (Value s = 0; s < 64; ++s) rel.Insert({s, 100, s + 300, 9}, 0);
  rel.Insert({0, 200, 400, 9}, 0);
  rel.Insert({1, 200, 401, 9}, 0);
  EdbStats stats;
  stats.Collect(db, triple);

  // ans(x, z) :- triple(x, 100, y, g), triple(x, 200, z, g2): both atoms
  // scan the same relation; only the histogram can tell them apart.
  Program program;
  program.predicates = preds;
  PredicateId ans = program.predicates.Intern("ans", 2);
  RuleBuilder b(&program.predicates);
  b.Head("ans", {b.Var("x"), b.Var("z")});
  b.Body("triple",
         {b.Var("x"), RuleBuilder::Const(100), b.Var("y"), b.Var("g")});
  b.Body("triple",
         {b.Var("x"), RuleBuilder::Const(200), b.Var("z"), b.Var("g2")});
  program.rules.push_back(b.Build());
  program.output.predicate = ans;

  PlannerReport report = PlanProgram(&program, stats);
  ASSERT_EQ(program.rules[0].positive.size(), 2u);
  // The sparse predicate-200 atom runs first.
  EXPECT_EQ(program.rules[0].positive[0].args[1].constant, Value{200});
  EXPECT_EQ(program.rules[0].positive[1].args[1].constant, Value{100});
  // Star-join output estimate: 2 subjects with both predicates... except
  // these subjects each carry one object per predicate, so ~2 rows.
  EXPECT_GT(report.output_estimate, 0.0);
  EXPECT_LE(report.output_estimate, 8.0);
}

TEST(PlannerTest, SingleAtomEstimateIsExact) {
  ChainFixture fx(3);
  Program program;
  program.predicates = fx.preds;
  PredicateId ans = program.predicates.Intern("ans", 2);
  RuleBuilder b(&program.predicates);
  b.Head("ans", {b.Var("x"), b.Var("y")});
  b.Body("e3", {b.Var("x"), b.Var("y")});  // 8 rows
  program.rules.push_back(b.Build());
  program.output.predicate = ans;
  PlannerReport report = PlanProgram(&program, fx.stats);
  EXPECT_DOUBLE_EQ(report.output_estimate, 8.0);
  EXPECT_DOUBLE_EQ(program.planned_estimate, 8.0);
}

// --- Engine integration -----------------------------------------------------

class PlannerEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dataset_ = std::make_unique<rdf::Dataset>(&dict_);
    std::string ttl = "@prefix ex: <http://ex.org/> .\n";
    // 40 wide edges, 2 narrow ones.
    for (int i = 0; i < 40; ++i) {
      ttl += "ex:s" + std::to_string(i) + " ex:wide ex:o" +
             std::to_string(i) + " .\n";
    }
    ttl += "ex:s0 ex:narrow ex:n0 . ex:s1 ex:narrow ex:n1 .\n";
    ASSERT_TRUE(rdf::ParseTurtle(ttl, dataset_.get()).ok());
  }

  rdf::TermDictionary dict_;
  std::unique_ptr<rdf::Dataset> dataset_;
};

TEST_F(PlannerEngineTest, CountersAndEstimateErrorReported) {
  core::Engine engine(dataset_.get(), &dict_);
  ASSERT_TRUE(engine.Load().ok());
  const std::string q =
      "PREFIX ex: <http://ex.org/> "
      "SELECT ?x ?o ?n WHERE { ?x ex:wide ?o . ?x ex:narrow ?n }";
  auto r1 = engine.ExecuteText(q);
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  EXPECT_EQ(r1->result.rows.size(), 2u);
  EXPECT_TRUE(r1->stats.planned);
  // q-error is >= 1 by definition; the star estimate here is near-exact.
  EXPECT_GE(r1->stats.plan_estimate_error, 1.0);
  EXPECT_LE(r1->stats.plan_estimate_error, 50.0);
  core::Engine::EngineStats s1 = engine.stats();
  EXPECT_GT(s1.plans_computed, 0u);
  EXPECT_EQ(s1.plan_cache_hits, 0u);

  // Warm repeat: zero planning, one plan-cache hit.
  auto r2 = engine.ExecuteText(q);
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(r2->stats.planned);
  core::Engine::EngineStats s2 = engine.stats();
  EXPECT_EQ(s2.plans_computed, s1.plans_computed);
  EXPECT_EQ(s2.plan_cache_hits, 1u);
}

TEST_F(PlannerEngineTest, DatasetMutationReplansCachedPrograms) {
  core::Engine engine(dataset_.get(), &dict_);
  ASSERT_TRUE(engine.Load().ok());
  const std::string q =
      "PREFIX ex: <http://ex.org/> "
      "SELECT ?x ?o ?n WHERE { ?x ex:wide ?o . ?x ex:narrow ?n }";
  ASSERT_TRUE(engine.ExecuteText(q).ok());
  uint64_t plans_cold = engine.stats().plans_computed;

  // Mutate the dataset and republish with an explicit Load(): stats go
  // stale, so the warm hit must replan (once) instead of reusing the
  // old-generation plan.
  dataset_->default_graph().Add(dict_.InternIri("http://ex.org/s2"),
                                dict_.InternIri("http://ex.org/narrow"),
                                dict_.InternIri("http://ex.org/n2"));
  ASSERT_TRUE(engine.Load().ok());
  auto r = engine.ExecuteText(q);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->result.rows.size(), 3u);
  EXPECT_EQ(engine.stats().plans_computed, plans_cold + 1);
  // And the replanned program is cached: the next repeat is a plan hit.
  ASSERT_TRUE(engine.ExecuteText(q).ok());
  EXPECT_EQ(engine.stats().plans_computed, plans_cold + 1);
  EXPECT_EQ(engine.stats().plan_cache_hits, 1u);
}

TEST_F(PlannerEngineTest, PlannerOffComputesNoPlans) {
  core::Engine::Options options;
  options.planner.join_planner = false;
  core::Engine engine(dataset_.get(), &dict_, options);
  ASSERT_TRUE(engine.Load().ok());
  auto r = engine.ExecuteText(
      "PREFIX ex: <http://ex.org/> "
      "SELECT ?x ?o ?n WHERE { ?x ex:wide ?o . ?x ex:narrow ?n }");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->result.rows.size(), 2u);
  EXPECT_FALSE(r->stats.planned);
  EXPECT_EQ(r->stats.plan_estimate_error, 0.0);
  EXPECT_EQ(engine.stats().plans_computed, 0u);
  EXPECT_EQ(engine.stats().plan_cache_hits, 0u);
}

}  // namespace
}  // namespace sparqlog::datalog
