// Randomized differential fuzzing: generate random query trees from the
// supported grammar (patterns, paths, filters, modifiers) over random
// graphs, and require the translated-Datalog pipeline and the reference
// evaluator to agree on the solution multiset. Complements the curated
// differential suite with shapes no human wrote.

#include <gtest/gtest.h>

#include "core/engine.h"
#include "eval/algebra_eval.h"
#include "sparql/parser.h"
#include "util/hash.h"
#include "util/string_util.h"

namespace sparqlog {
namespace {

class QueryGen {
 public:
  explicit QueryGen(uint64_t seed) : rng_(seed) {}

  std::string Generate() {
    var_counter_ = 0;
    std::string body = Group(2);
    std::string select = rng_.Chance(0.3) ? "SELECT DISTINCT *" : "SELECT *";
    std::string modifiers;
    if (rng_.Chance(0.3)) {
      modifiers += " ORDER BY ?v0";
      if (rng_.Chance(0.5)) modifiers += " LIMIT " + Int(1, 8);
    }
    return select + " WHERE { " + body + " }" + modifiers;
  }

 private:
  std::string Int(uint64_t lo, uint64_t hi) {
    return std::to_string(lo + rng_.Uniform(hi - lo + 1));
  }
  std::string Var() {
    // Reuse earlier variables often so joins actually connect.
    if (var_counter_ > 0 && rng_.Chance(0.6)) {
      return "?v" + std::to_string(rng_.Uniform(var_counter_));
    }
    return "?v" + std::to_string(var_counter_++);
  }
  std::string Node() {
    return "<http://f.org/n" + std::to_string(rng_.Uniform(6)) + ">";
  }
  std::string Pred() {
    static constexpr const char* kPreds[] = {"<http://f.org/p>",
                                             "<http://f.org/q>",
                                             "<http://f.org/r>"};
    return kPreds[rng_.Uniform(3)];
  }
  std::string Endpoint() { return rng_.Chance(0.25) ? Node() : Var(); }

  std::string Path(int depth) {
    if (depth <= 0) return Pred();
    switch (rng_.Uniform(7)) {
      case 0: return Path(depth - 1) + "/" + Path(depth - 1);
      case 1: return "(" + Path(depth - 1) + "|" + Path(depth - 1) + ")";
      case 2: return "^" + Pred();
      case 3: return "(" + Pred() + ")+";
      case 4: return "(" + Pred() + ")*";
      case 5: return "(" + Pred() + ")?";
      default: return "!(" + Pred() + ")";
    }
  }

  std::string Leaf() {
    if (rng_.Chance(0.35)) {
      return Endpoint() + " " + Path(1) + " " + Endpoint() + " .";
    }
    return Endpoint() + " " + Pred() + " " + Endpoint() + " .";
  }

  std::string Group(int depth) {
    std::string out = Leaf();
    int extras = static_cast<int>(rng_.Uniform(3));
    for (int i = 0; i < extras; ++i) {
      switch (rng_.Uniform(depth > 0 ? 6 : 2)) {
        case 0:
          out += " " + Leaf();
          break;
        case 1:
          out += " FILTER (" + Filter() + ")";
          break;
        case 2:
          out += " OPTIONAL { " + Group(depth - 1) + " }";
          break;
        case 3:
          out += " MINUS { " + Group(depth - 1) + " }";
          break;
        case 4:
          out = "{ " + out + " } UNION { " + Group(depth - 1) + " }";
          break;
        default:
          out += " " + Leaf();
          break;
      }
    }
    return out;
  }

  std::string Filter() {
    std::string v = "?v" + std::to_string(
                               var_counter_ > 0 ? rng_.Uniform(var_counter_)
                                                : 0);
    switch (rng_.Uniform(4)) {
      case 0: return "BOUND(" + v + ")";
      case 1: return "!BOUND(" + v + ")";
      case 2: return v + " != " + Node();
      default: return "isIRI(" + v + ")";
    }
  }

  Rng rng_;
  size_t var_counter_ = 0;
};

void BuildGraph(uint64_t seed, rdf::Dataset* dataset) {
  Rng rng(seed);
  auto* dict = dataset->dict();
  auto node = [&](uint64_t i) {
    return dict->InternIri("http://f.org/n" + std::to_string(i));
  };
  rdf::TermId preds[3] = {dict->InternIri("http://f.org/p"),
                          dict->InternIri("http://f.org/q"),
                          dict->InternIri("http://f.org/r")};
  for (int i = 0; i < 20; ++i) {
    dataset->default_graph().Add(node(rng.Uniform(6)),
                                 preds[rng.Uniform(3)], node(rng.Uniform(6)));
  }
}

class QueryFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(QueryFuzzTest, PipelineAgreesWithReference) {
  uint64_t seed = static_cast<uint64_t>(GetParam());
  rdf::TermDictionary dict;
  rdf::Dataset dataset(&dict);
  BuildGraph(seed * 31 + 1, &dataset);

  // One cached engine serves every query of the seed (its caches
  // accumulate across queries, like a long-lived server), while each
  // query also runs on a fresh cache-less engine as the uncached oracle.
  core::Engine::Options options;
  options.timeout = std::chrono::seconds(30);
  core::Engine engine(&dataset, &dict, options);
  ASSERT_TRUE(engine.Load().ok());

  QueryGen gen(seed);
  // Several queries per seed.
  for (int qi = 0; qi < 5; ++qi) {
    std::string text = gen.Generate();
    auto parsed = sparql::ParseQuery(text, &dict);
    ASSERT_TRUE(parsed.ok()) << text << "\n" << parsed.status().ToString();

    ExecContext ctx;
    ctx.set_deadline_after(std::chrono::seconds(20));
    eval::AlgebraEvaluator reference(dataset, &dict, &ctx);
    auto expected = reference.EvalQuery(*parsed);
    ASSERT_TRUE(expected.ok()) << text << "\n"
                               << expected.status().ToString();

    auto got_exec = engine.Execute(*parsed);
    ASSERT_TRUE(got_exec.ok()) << text << "\n" << got_exec.status().ToString();
    const eval::QueryResult* got = &got_exec->result;

    EXPECT_TRUE(got->SameSolutions(*expected))
        << "seed " << seed << " query " << qi << ":\n"
        << text << "\nreference (" << expected->rows.size() << "):\n"
        << expected->ToString(dict, 40) << "\npipeline (" << got->rows.size()
        << "):\n"
        << got->ToString(dict, 40);

    // Cached-vs-fresh equivalence: the warm repeat must be bit-identical
    // to the cold run, and a cache-less engine must agree on the
    // solution multiset.
    auto warm_exec = engine.Execute(*parsed);
    ASSERT_TRUE(warm_exec.ok()) << text << "\n"
                                << warm_exec.status().ToString();
    const eval::QueryResult* warm = &warm_exec->result;
    EXPECT_EQ(got->columns, warm->columns) << text;
    EXPECT_TRUE(got->rows == warm->rows)
        << "seed " << seed << " query " << qi
        << ": warm run diverged\n" << text << "\ncold ("
        << got->rows.size() << "):\n" << got->ToString(dict, 40)
        << "\nwarm (" << warm->rows.size() << "):\n"
        << warm->ToString(dict, 40);
    EXPECT_EQ(warm->ask_value, got->ask_value) << text;

    core::Engine::Options uncached_opts = options;
    uncached_opts.caching.program_cache = false;
    uncached_opts.caching.stratum_memo = false;
    core::Engine uncached(&dataset, &dict, uncached_opts);
    ASSERT_TRUE(uncached.Load().ok());
    auto fresh = uncached.Execute(*parsed);
    ASSERT_TRUE(fresh.ok()) << text << "\n" << fresh.status().ToString();
    EXPECT_TRUE(warm->SameSolutions(fresh->result))
        << "seed " << seed << " query " << qi
        << ": cached and cache-less engines disagree\n" << text;

    // Planner differential: planner-off (= exact pre-planner pipeline)
    // must agree on the solution multiset, and on exact row order
    // wherever ORDER BY pins it. Thread counts rotate per query so each
    // seed sweeps {1, 2, 8}.
    static constexpr uint32_t kThreads[] = {1, 2, 8};
    core::Engine::Options planner_off = options;
    planner_off.planner.join_planner = false;
    planner_off.parallelism.num_threads = kThreads[qi % 3];
    core::Engine plain(&dataset, &dict, planner_off);
    ASSERT_TRUE(plain.Load().ok());
    auto unplanned_exec = plain.Execute(*parsed);
    ASSERT_TRUE(unplanned_exec.ok()) << text << "\n"
                                     << unplanned_exec.status().ToString();
    const eval::QueryResult* unplanned = &unplanned_exec->result;
    EXPECT_EQ(unplanned->columns, got->columns) << text;
    EXPECT_EQ(unplanned->ask_value, got->ask_value) << text;
    EXPECT_TRUE(unplanned->SameSolutions(*got))
        << "seed " << seed << " query " << qi
        << ": planner changed solutions (threads "
        << planner_off.parallelism.num_threads << ")\n" << text << "\nplanner-on ("
        << got->rows.size() << "):\n" << got->ToString(dict, 40)
        << "\nplanner-off (" << unplanned->rows.size() << "):\n"
        << unplanned->ToString(dict, 40);
    if (!parsed->order_by.empty()) {
      EXPECT_TRUE(unplanned->rows == got->rows)
          << "seed " << seed << " query " << qi
          << ": planner changed ORDER BY output\n" << text;
    }
  }
  // The per-seed engine must have served every repeat from the cache
  // (more if the generator happened to repeat a shape across queries).
  EXPECT_GE(engine.stats().program_hits, 5u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, QueryFuzzTest, ::testing::Range(1, 25));

}  // namespace
}  // namespace sparqlog
