// Tests for the parallel sharded semi-naive fixpoint: thread-count sweeps
// over recursive programs (results must be set-identical to the serial
// path), a stress program deriving into many relations concurrently, a
// regression pin that num_threads=1 reproduces the seed single-threaded
// insertion order byte-for-byte, budget enforcement across workers,
// Skolem- and builtin-heavy strata proving the serial-eligibility
// carve-outs are gone (thread-safe interning), the sharded initial naive
// pass, the per-predicate merge fan-out (bit-identical to the serial
// merge), and concurrent-interning hammers for TermDictionary and
// SkolemStore (the TSan job sweeps this suite).

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/engine.h"
#include "datalog/ast.h"
#include "datalog/evaluator.h"
#include "datalog/printer.h"
#include "datalog/relation.h"
#include "datalog/value.h"
#include "sparql/ast.h"
#include "util/thread_pool.h"

namespace sparqlog::datalog {
namespace {

class ParallelFixpointTest : public ::testing::Test {
 protected:
  Value V(int64_t i) { return ValueFromTerm(dict_.InternInteger(i)); }

  /// Evaluates `program` over `edb_facts` with `num_threads` workers and
  /// returns the canonical IDB dump (empty string on evaluation error).
  std::string Dump(const Program& program,
                   const std::vector<std::pair<PredicateId,
                                               std::vector<Value>>>& facts,
                   uint32_t num_threads,
                   const std::vector<std::string>& skolem_fns = {}) {
    Database edb, idb;
    for (const auto& [pred, tuple] : facts) {
      edb.relation(pred, static_cast<uint32_t>(tuple.size()))
          .Insert(tuple, 0);
    }
    SkolemStore skolems;
    for (const std::string& fn : skolem_fns) skolems.InternFunction(fn);
    Evaluator evaluator(&dict_, &skolems);
    evaluator.set_num_threads(num_threads);
    ExecContext ctx;
    if (!evaluator.Evaluate(program, &edb, &idb, &ctx).ok()) return "";
    return ToString(idb, program.predicates, dict_, skolems);
  }

  rdf::TermDictionary dict_;
};

/// Transitive closure over a graph with cycles, swept across worker
/// counts including 0 (= hardware_concurrency auto-resolution).
TEST_F(ParallelFixpointTest, ClosureAgreesAcrossThreadCounts) {
  Program program;
  PredicateId edge = program.predicates.Intern("edge", 2);
  RuleBuilder rb(&program.predicates);
  rb.Head("tc", {rb.Var("X"), rb.Var("Y")});
  rb.Body("edge", {rb.Var("X"), rb.Var("Y")});
  program.rules.push_back(rb.Build());
  rb.Head("tc", {rb.Var("X"), rb.Var("Z")});
  rb.Body("edge", {rb.Var("X"), rb.Var("Y")});
  rb.Body("tc", {rb.Var("Y"), rb.Var("Z")});
  program.rules.push_back(rb.Build());

  std::vector<std::pair<PredicateId, std::vector<Value>>> facts;
  for (int64_t i = 1; i <= 40; ++i) {
    facts.push_back({edge, {V(i), V(i % 40 + 1)}});
    if (i % 5 == 0) facts.push_back({edge, {V(i), V((i + 11) % 40 + 1)}});
  }
  std::string serial = Dump(program, facts, 1);
  ASSERT_FALSE(serial.empty());
  for (uint32_t threads : {0u, 2u, 3u, 8u}) {
    EXPECT_EQ(serial, Dump(program, facts, threads))
        << "num_threads=" << threads;
  }

  // Prove the sharded path actually engaged (no silent serial fallback).
  Database edb, idb;
  for (const auto& [pred, tuple] : facts) {
    edb.relation(pred, static_cast<uint32_t>(tuple.size()))
        .Insert(tuple, 0);
  }
  SkolemStore skolems;
  Evaluator evaluator(&dict_, &skolems);
  evaluator.set_num_threads(2);
  ExecContext ctx;
  ASSERT_TRUE(evaluator.Evaluate(program, &edb, &idb, &ctx).ok());
  EXPECT_GT(evaluator.stats().parallel_rounds, 0u);
}

/// Stress: six mutually recursive predicates in one SCC, so every round
/// fans out shards that derive into many relations concurrently and the
/// barrier merges staging buffers for all of them.
TEST_F(ParallelFixpointTest, ManyRelationsDerivedConcurrently) {
  constexpr int kPreds = 6;
  Program program;
  PredicateId edge = program.predicates.Intern("edge", 2);
  RuleBuilder rb(&program.predicates);
  auto name = [](int i) { return "p" + std::to_string(i); };
  rb.Head(name(0), {rb.Var("X"), rb.Var("Y")});
  rb.Body("edge", {rb.Var("X"), rb.Var("Y")});
  program.rules.push_back(rb.Build());
  for (int i = 0; i < kPreds; ++i) {
    // p_{i+1 mod k}(X,Z) :- p_i(X,Y), edge(Y,Z): one cyclic chain of
    // predicates, all in the same stratum.
    rb.Head(name((i + 1) % kPreds), {rb.Var("X"), rb.Var("Z")});
    rb.Body(name(i), {rb.Var("X"), rb.Var("Y")});
    rb.Body("edge", {rb.Var("Y"), rb.Var("Z")});
    program.rules.push_back(rb.Build());
  }

  std::vector<std::pair<PredicateId, std::vector<Value>>> facts;
  for (int64_t i = 1; i <= 24; ++i) {
    facts.push_back({edge, {V(i), V(i % 24 + 1)}});
    if (i % 4 == 0) facts.push_back({edge, {V(i), V((i + 7) % 24 + 1)}});
  }
  std::string serial = Dump(program, facts, 1);
  ASSERT_FALSE(serial.empty());
  for (uint32_t threads : {2u, 8u}) {
    EXPECT_EQ(serial, Dump(program, facts, threads))
        << "num_threads=" << threads;
  }
}

/// Pins the seed single-threaded behavior: with num_threads=1 the arena
/// insertion order of the semi-naive closure must stay exactly the
/// pre-parallelism sequence (initial pass in rule order with same-pass
/// visibility, then one delta scan per round). Byte-identical dumps
/// follow a fortiori, since dumps are derived from arena contents.
TEST_F(ParallelFixpointTest, SingleThreadKeepsSeedInsertionOrder) {
  Program program;
  PredicateId edge = program.predicates.Intern("edge", 2);
  RuleBuilder rb(&program.predicates);
  rb.Head("tc", {rb.Var("X"), rb.Var("Y")});
  rb.Body("edge", {rb.Var("X"), rb.Var("Y")});
  program.rules.push_back(rb.Build());
  rb.Head("tc", {rb.Var("X"), rb.Var("Z")});
  rb.Body("edge", {rb.Var("X"), rb.Var("Y")});
  rb.Body("tc", {rb.Var("Y"), rb.Var("Z")});
  program.rules.push_back(rb.Build());
  PredicateId tc = *program.predicates.Lookup("tc");

  Database edb, idb;
  for (int64_t i = 1; i <= 3; ++i) {
    edb.relation(edge, 2).Insert({V(i), V(i + 1)}, 0);
  }
  SkolemStore skolems;
  Evaluator evaluator(&dict_, &skolems);
  evaluator.set_num_threads(1);
  ExecContext ctx;
  ASSERT_TRUE(evaluator.Evaluate(program, &edb, &idb, &ctx).ok());

  // Chain 1->2->3->4. Initial pass: rule 1 copies the edges in scan
  // order, then rule 2 joins each edge against the tc rows already
  // inserted this pass. Round 2's delta scan adds the last pair.
  const std::vector<std::vector<Value>> expected = {
      {V(1), V(2)}, {V(2), V(3)}, {V(3), V(4)},
      {V(1), V(3)}, {V(2), V(4)}, {V(1), V(4)},
  };
  const Relation* rel = idb.Find(tc);
  ASSERT_NE(rel, nullptr);
  ASSERT_EQ(rel->size(), expected.size());
  for (uint32_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(rel->row(i), expected[i]) << "row " << i;
  }
  EXPECT_EQ(evaluator.stats().parallel_rounds, 0u);
}

/// Comparison-only and Skolem-building rules sharing one recursive
/// stratum: with thread-safe interning every rule shards (there is no
/// serial path within a round any more), and results must match the
/// fully serial evaluation.
TEST_F(ParallelFixpointTest, MixedEligibilityStratumAgrees) {
  Program program;
  PredicateId edge = program.predicates.Intern("edge", 2);
  SkolemStore naming;
  uint32_t f = naming.InternFunction("f1");
  RuleBuilder rb(&program.predicates);
  rb.Head("a", {rb.Var("X"), rb.Var("Y")});
  rb.Body("edge", {rb.Var("X"), rb.Var("Y")});
  program.rules.push_back(rb.Build());
  rb.Head("a", {rb.Var("X"), rb.Var("Z")});
  rb.Body("a", {rb.Var("X"), rb.Var("Y")});
  rb.Body("edge", {rb.Var("Y"), rb.Var("Z")});
  program.rules.push_back(rb.Build());
  // b tags pairs with a Skolem id and feeds them back into a, closing the
  // SCC {a, b} while staying a terminating program (b adds no new pairs).
  rb.Head("b", {rb.Var("ID"), rb.Var("X"), rb.Var("Y")});
  rb.Body("a", {rb.Var("X"), rb.Var("Y")});
  rb.Skolem(rb.Var("ID"), f, {rb.Var("X"), rb.Var("Y")});
  program.rules.push_back(rb.Build());
  rb.Head("a", {rb.Var("X"), rb.Var("Y")});
  rb.Body("b", {rb.Var("ID"), rb.Var("X"), rb.Var("Y")});
  program.rules.push_back(rb.Build());

  std::vector<std::pair<PredicateId, std::vector<Value>>> facts;
  for (int64_t i = 1; i <= 12; ++i) {
    facts.push_back({edge, {V(i), V(i % 12 + 1)}});
  }
  std::string serial = Dump(program, facts, 1, {"f1"});
  ASSERT_FALSE(serial.empty());
  for (uint32_t threads : {2u, 8u}) {
    EXPECT_EQ(serial, Dump(program, facts, threads, {"f1"}))
        << "num_threads=" << threads;
  }
}

/// Regression pin for the removed serial-eligibility carve-outs: a
/// recursive stratum whose ONLY recursive rule builds a Skolem term used
/// to be forced onto the serial path (parallel_rounds stayed 0); with
/// thread-safe SkolemStore interning it must fan out.
TEST_F(ParallelFixpointTest, SkolemOnlyRecursiveRuleShards) {
  Program program;
  PredicateId edge = program.predicates.Intern("edge", 2);
  SkolemStore naming;
  uint32_t f = naming.InternFunction("f1");
  RuleBuilder rb(&program.predicates);
  rb.Head("a", {rb.Var("X"), rb.Var("Y")});
  rb.Body("edge", {rb.Var("X"), rb.Var("Y")});
  program.rules.push_back(rb.Build());
  // The one recursive rule: tags reachable pairs with a Skolem id and
  // re-derives a through b, closing the SCC {a, b}.
  rb.Head("b", {rb.Var("ID"), rb.Var("X"), rb.Var("Z")});
  rb.Body("a", {rb.Var("X"), rb.Var("Y")});
  rb.Body("edge", {rb.Var("Y"), rb.Var("Z")});
  rb.Skolem(rb.Var("ID"), f, {rb.Var("X"), rb.Var("Z")});
  program.rules.push_back(rb.Build());
  rb.Head("a", {rb.Var("X"), rb.Var("Y")});
  rb.Body("b", {rb.Var("ID"), rb.Var("X"), rb.Var("Y")});
  program.rules.push_back(rb.Build());

  std::vector<std::pair<PredicateId, std::vector<Value>>> facts;
  for (int64_t i = 1; i <= 16; ++i) {
    facts.push_back({edge, {V(i), V(i % 16 + 1)}});
  }
  std::string serial = Dump(program, facts, 1, {"f1"});
  ASSERT_FALSE(serial.empty());
  for (uint32_t threads : {2u, 8u}) {
    EXPECT_EQ(serial, Dump(program, facts, threads, {"f1"}))
        << "num_threads=" << threads;
  }

  Database edb, idb;
  for (const auto& [pred, tuple] : facts) {
    edb.relation(pred, static_cast<uint32_t>(tuple.size()))
        .Insert(tuple, 0);
  }
  SkolemStore skolems;
  skolems.InternFunction("f1");
  Evaluator evaluator(&dict_, &skolems);
  evaluator.set_num_threads(2);
  ExecContext ctx;
  ASSERT_TRUE(evaluator.Evaluate(program, &edb, &idb, &ctx).ok());
  EXPECT_GT(evaluator.stats().parallel_rounds, 0u)
      << "Skolem rule fell back to the serial path";
  EXPECT_GT(evaluator.stats().staged_merged, 0u);
}

/// Builtin-heavy recursion: the recursive rule evaluates a FILTER and a
/// BIND arithmetic expression per derivation, interning fresh integer
/// literals into the shared dictionary from every worker. Results must be
/// set-identical across thread counts and the stratum must fan out.
TEST_F(ParallelFixpointTest, ExprBuiltinRecursionShardsAndAgrees) {
  Program program;
  PredicateId seed = program.predicates.Intern("seed", 1);
  RuleBuilder rb(&program.predicates);
  rb.Head("n", {rb.Var("X")});
  rb.Body("seed", {rb.Var("X")});
  program.rules.push_back(rb.Build());
  // n(Z) :- n(Y), FILTER(Y < 60), BIND(Y + 1 AS Z): counts upward, with
  // both expression kinds interning terms mid-join.
  rb.Head("n", {rb.Var("Z")});
  rb.Body("n", {rb.Var("Y")});
  {
    using sparql::Expr;
    auto y = Expr::MakeVar("Y");
    auto bound = Expr::MakeTerm(dict_.InternInteger(60));
    auto one = Expr::MakeTerm(dict_.InternInteger(1));
    rb.Filter(Expr::MakeCompare(sparql::CompareOp::kLt, y, bound),
              {{"Y", rb.VarIdOf("Y")}});
    rb.AssignExpr(rb.Var("Z"),
                  Expr::MakeArith(sparql::ArithOp::kAdd, y, one),
                  {{"Y", rb.VarIdOf("Y")}});
  }
  program.rules.push_back(rb.Build());

  std::vector<std::pair<PredicateId, std::vector<Value>>> facts;
  for (int64_t i = 1; i <= 8; ++i) facts.push_back({seed, {V(i * 3)}});
  std::string serial = Dump(program, facts, 1);
  ASSERT_FALSE(serial.empty());
  for (uint32_t threads : {2u, 8u}) {
    EXPECT_EQ(serial, Dump(program, facts, threads))
        << "num_threads=" << threads;
  }

  Database edb, idb;
  for (const auto& [pred, tuple] : facts) {
    edb.relation(pred, static_cast<uint32_t>(tuple.size()))
        .Insert(tuple, 0);
  }
  SkolemStore skolems;
  Evaluator evaluator(&dict_, &skolems);
  evaluator.set_num_threads(8);
  ExecContext ctx;
  ASSERT_TRUE(evaluator.Evaluate(program, &edb, &idb, &ctx).ok());
  EXPECT_GT(evaluator.stats().parallel_rounds, 0u)
      << "expression-builtin rule fell back to the serial path";
}

/// The initial naive pass of a recursive stratum shards too: the base
/// rule's full EDB scan is the bulk of round 1 here, and the stats must
/// show it ran as a sharded fan-out — with the set result unchanged, and
/// the parallel_naive=false knob falling back to the serial initial pass
/// with identical results.
TEST_F(ParallelFixpointTest, InitialNaivePassShards) {
  Program program;
  PredicateId edge = program.predicates.Intern("edge", 2);
  RuleBuilder rb(&program.predicates);
  rb.Head("tc", {rb.Var("X"), rb.Var("Y")});
  rb.Body("edge", {rb.Var("X"), rb.Var("Y")});
  program.rules.push_back(rb.Build());
  rb.Head("tc", {rb.Var("X"), rb.Var("Z")});
  rb.Body("edge", {rb.Var("X"), rb.Var("Y")});
  rb.Body("tc", {rb.Var("Y"), rb.Var("Z")});
  program.rules.push_back(rb.Build());

  std::vector<std::pair<PredicateId, std::vector<Value>>> facts;
  for (int64_t i = 1; i <= 60; ++i) {
    facts.push_back({edge, {V(i), V(i % 60 + 1)}});
  }
  std::string serial = Dump(program, facts, 1);
  ASSERT_FALSE(serial.empty());

  Database edb, idb;
  for (const auto& [pred, tuple] : facts) {
    edb.relation(pred, static_cast<uint32_t>(tuple.size()))
        .Insert(tuple, 0);
  }
  SkolemStore skolems;
  Evaluator evaluator(&dict_, &skolems);
  evaluator.set_num_threads(4);
  ExecContext ctx;
  ASSERT_TRUE(evaluator.Evaluate(program, &edb, &idb, &ctx).ok());
  EXPECT_GT(evaluator.stats().naive_rounds_sharded, 0u);
  EXPECT_EQ(serial, ToString(idb, program.predicates, dict_, skolems));

  // Knob off: serial initial pass, same results.
  Database edb2, idb2;
  for (const auto& [pred, tuple] : facts) {
    edb2.relation(pred, static_cast<uint32_t>(tuple.size()))
        .Insert(tuple, 0);
  }
  Evaluator ev2(&dict_, &skolems);
  ev2.set_num_threads(4);
  ev2.set_parallel_naive(false);
  ExecContext ctx2;
  ASSERT_TRUE(ev2.Evaluate(program, &edb2, &idb2, &ctx2).ok());
  EXPECT_EQ(ev2.stats().naive_rounds_sharded, 0u);
  EXPECT_EQ(serial, ToString(idb2, program.predicates, dict_, skolems));
}

/// The per-predicate merge fan-out must produce each relation's arena
/// BIT-identical (insertion order included) to the serial
/// worker-then-predicate merge at the same thread count — the
/// determinism claim the parallel barrier rests on — and must actually
/// fan out on a many-head stratum.
TEST_F(ParallelFixpointTest, MergeFanOutBitIdenticalToSerialMerge) {
  // One SCC {a, b, c} where every delta round derives into all three
  // heads: a closes transitively, b and c copy/flip each new a row, and
  // both feed back into a — so each barrier merges three predicates and
  // the fan-out actually spreads.
  Program program;
  PredicateId edge = program.predicates.Intern("edge", 2);
  RuleBuilder rb(&program.predicates);
  rb.Head("a", {rb.Var("X"), rb.Var("Y")});
  rb.Body("edge", {rb.Var("X"), rb.Var("Y")});
  program.rules.push_back(rb.Build());
  rb.Head("a", {rb.Var("X"), rb.Var("Z")});
  rb.Body("a", {rb.Var("X"), rb.Var("Y")});
  rb.Body("edge", {rb.Var("Y"), rb.Var("Z")});
  program.rules.push_back(rb.Build());
  rb.Head("b", {rb.Var("X"), rb.Var("Y")});
  rb.Body("a", {rb.Var("X"), rb.Var("Y")});
  program.rules.push_back(rb.Build());
  rb.Head("c", {rb.Var("Y"), rb.Var("X")});
  rb.Body("a", {rb.Var("X"), rb.Var("Y")});
  program.rules.push_back(rb.Build());
  rb.Head("a", {rb.Var("X"), rb.Var("Y")});
  rb.Body("b", {rb.Var("X"), rb.Var("Y")});
  program.rules.push_back(rb.Build());
  rb.Head("a", {rb.Var("X"), rb.Var("Y")});
  rb.Body("c", {rb.Var("Y"), rb.Var("X")});
  program.rules.push_back(rb.Build());

  auto evaluate = [&](bool parallel_merge, Database* idb,
                      EvalStats* stats) {
    Database edb;
    for (int64_t i = 1; i <= 24; ++i) {
      edb.relation(edge, 2).Insert({V(i), V(i % 24 + 1)}, 0);
      if (i % 4 == 0) {
        edb.relation(edge, 2).Insert({V(i), V((i + 7) % 24 + 1)}, 0);
      }
    }
    SkolemStore skolems;
    Evaluator evaluator(&dict_, &skolems);
    evaluator.set_num_threads(4);
    evaluator.set_parallel_merge(parallel_merge);
    ExecContext ctx;
    ASSERT_TRUE(evaluator.Evaluate(program, &edb, idb, &ctx).ok());
    *stats = evaluator.stats();
  };

  Database fanout_idb, serial_idb;
  EvalStats fanout_stats, serial_stats;
  evaluate(true, &fanout_idb, &fanout_stats);
  evaluate(false, &serial_idb, &serial_stats);
  EXPECT_GT(fanout_stats.merge_fanout_width, 1u);
  EXPECT_EQ(serial_stats.merge_fanout_width, 0u);
  EXPECT_EQ(fanout_stats.staged_merged, serial_stats.staged_merged);

  // Same thread count => same per-worker staging => the per-predicate
  // merge must reproduce the serial merge's arena order exactly.
  for (uint32_t pred : fanout_idb.Predicates()) {
    const Relation* a = fanout_idb.Find(pred);
    const Relation* b = serial_idb.Find(pred);
    ASSERT_NE(b, nullptr) << "predicate " << pred;
    ASSERT_EQ(a->size(), b->size()) << "predicate " << pred;
    for (uint32_t i = 0; i < a->size(); ++i) {
      ASSERT_TRUE(a->row(i) == b->row(i))
          << "predicate " << pred << " row " << i;
    }
  }
}

/// Direct unit test of the per-predicate merge fan-out: staged stores
/// merge in worker order per predicate, duplicates collapse against the
/// target and across workers, the tuple budget is charged per batch, and
/// the fan-out width reports the workers actually used.
TEST_F(ParallelFixpointTest, MergeStagedParallelUnit) {
  constexpr size_t kWorkers = 4;
  constexpr int kPreds = 3;
  ThreadPool pool(kWorkers);
  std::vector<std::unique_ptr<Relation>> targets;
  std::vector<std::vector<TupleStore>> staging(kPreds);
  std::vector<StagedMergeTask> tasks;
  for (int p = 0; p < kPreds; ++p) {
    targets.push_back(std::make_unique<Relation>(2));
    targets[p]->Insert({V(0), V(p)}, 0);  // pre-existing row to dedup against
    StagedMergeTask task;
    task.target = targets[p].get();
    for (size_t w = 0; w < kWorkers; ++w) {
      staging[p].emplace_back(2);
      TupleStore& store = staging[p].back();
      for (int64_t i = 0; i < 10; ++i) {
        // Overlap across workers: tuple (i, p) staged by every worker;
        // (w*100 + i, p) unique per worker. Plus the target's (0, p).
        std::vector<Value> dup = {V(i), V(p)};
        std::vector<Value> uniq = {V(static_cast<int64_t>(w) * 100 + i + 10),
                                   V(p)};
        bool fresh = false;
        store.Insert(dup.data(), &fresh);
        store.Insert(uniq.data(), &fresh);
      }
    }
    for (size_t w = 0; w < kWorkers; ++w) {
      task.sources.push_back(&staging[p][w]);
    }
    tasks.push_back(std::move(task));
  }

  ExecContext ctx;
  std::vector<uint32_t> phases(kWorkers, 0);
  uint32_t fanout = 0;
  auto merged =
      MergeStagedParallel(&tasks, 1, &pool, &ctx, phases.data(), &fanout);
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  // Per predicate: 10 shared dups minus the pre-existing (0,p) -> 9 new,
  // plus 10 unique per worker * 4 workers.
  EXPECT_EQ(*merged, static_cast<uint64_t>(kPreds) * (9 + 10 * kWorkers));
  EXPECT_EQ(fanout, 3u);  // three live predicates, four workers
  EXPECT_EQ(ctx.tuples_used(), *merged);
  for (int p = 0; p < kPreds; ++p) {
    EXPECT_EQ(targets[p]->size(), 1u + 9 + 10 * kWorkers);
    // Worker-order merge: worker 0's unique rows precede worker 1's.
    EXPECT_TRUE(targets[p]->Contains({V(10), V(p)}));
  }

  // Budget enforcement: a tiny budget trips during the merge.
  std::vector<StagedMergeTask> tasks2;
  Relation target2(2);
  TupleStore big(2);
  for (int64_t i = 0; i < 600; ++i) {
    std::vector<Value> row = {V(i), V(i)};
    bool fresh = false;
    big.Insert(row.data(), &fresh);
  }
  StagedMergeTask t2;
  t2.target = &target2;
  t2.sources.push_back(&big);
  tasks2.push_back(std::move(t2));
  ExecContext small;
  small.set_tuple_budget(100);
  std::vector<uint32_t> phases2(kWorkers, 0);
  auto tripped = MergeStagedParallel(&tasks2, 1, &pool, &small,
                                     phases2.data(), &fanout);
  EXPECT_TRUE(tripped.status().IsResourceExhausted());
}

/// Concurrent interning hammer: every worker interns an overlapping
/// stream of terms; a given term content must resolve to exactly one id,
/// ids must round-trip through the lock-free get(), and the count must
/// equal the distinct-content count. (TSan sweeps this suite: a racy
/// slot publish or index stripe would surface here.)
TEST_F(ParallelFixpointTest, DictionaryConcurrentInterningIsConsistent) {
  constexpr size_t kWorkers = 8;
  constexpr int kDistinct = 300;
  rdf::TermDictionary dict;
  ThreadPool pool(kWorkers);
  std::vector<std::vector<rdf::TermId>> ids(kWorkers);
  pool.RunOnWorkers([&](size_t w) {
    std::vector<rdf::TermId>& mine = ids[w];
    for (int i = 0; i < kDistinct; ++i) {
      // Overlapping across workers, interleaved kinds.
      int k = (i + static_cast<int>(w) * 37) % kDistinct;
      mine.push_back(dict.InternIri("http://c.org/e" + std::to_string(k)));
      mine.push_back(dict.InternInteger(k));
    }
  });
  // Same content -> same id, across all workers.
  for (size_t w = 1; w < kWorkers; ++w) {
    for (int i = 0; i < kDistinct; ++i) {
      int k = (i + static_cast<int>(w) * 37) % kDistinct;
      rdf::TermId iri = dict.InternIri("http://c.org/e" + std::to_string(k));
      rdf::TermId num = dict.InternInteger(k);
      EXPECT_EQ(ids[w][2 * i], iri);
      EXPECT_EQ(ids[w][2 * i + 1], num);
    }
  }
  // undef + kDistinct IRIs + kDistinct integers.
  EXPECT_EQ(dict.size(), 1u + 2u * kDistinct);
  // Lock-free get() round-trips content.
  for (int k = 0; k < kDistinct; ++k) {
    auto id = dict.Lookup(rdf::Term::Iri("http://c.org/e" + std::to_string(k)));
    ASSERT_TRUE(id.has_value());
    EXPECT_EQ(dict.get(*id).lexical, "http://c.org/e" + std::to_string(k));
  }
}

/// Same hammer for SkolemStore: concurrent Intern of overlapping Skolem
/// terms must be consistent and get() must round-trip.
TEST_F(ParallelFixpointTest, SkolemStoreConcurrentInterningIsConsistent) {
  constexpr size_t kWorkers = 8;
  constexpr uint64_t kDistinct = 400;
  SkolemStore skolems;
  uint32_t f = skolems.InternFunction("f1");
  uint32_t g = skolems.InternFunction("f2");
  ThreadPool pool(kWorkers);
  std::vector<std::vector<Value>> vals(kWorkers);
  pool.RunOnWorkers([&](size_t w) {
    for (uint64_t i = 0; i < kDistinct; ++i) {
      uint64_t k = (i + w * 53) % kDistinct;
      vals[w].push_back(skolems.Intern(f, {k, k % 7}));
      vals[w].push_back(skolems.Intern(g, {k}));
    }
  });
  for (size_t w = 0; w < kWorkers; ++w) {
    for (uint64_t i = 0; i < kDistinct; ++i) {
      uint64_t k = (i + w * 53) % kDistinct;
      EXPECT_EQ(vals[w][2 * i], skolems.Intern(f, {k, k % 7}));
      EXPECT_EQ(vals[w][2 * i + 1], skolems.Intern(g, {k}));
      const SkolemTerm& t = skolems.get(vals[w][2 * i]);
      EXPECT_EQ(t.fn, f);
      ASSERT_EQ(t.args.size(), 2u);
      EXPECT_EQ(t.args[0], k);
    }
  }
  EXPECT_EQ(skolems.size(), 2 * kDistinct);
}

/// The deadline must trip within one round even when all the round's
/// work happens in the barrier merge fan-out: with an already-expired
/// deadline and multi-thread merge workers, Evaluate must return Timeout
/// (the batch-advance budget pacing samples the clock once per
/// kClockStride merged tuples per worker, whatever the fan-out width).
TEST_F(ParallelFixpointTest, DeadlineTripsUnderMergeFanOut) {
  constexpr int kPreds = 4;
  Program program;
  PredicateId edge = program.predicates.Intern("edge", 2);
  RuleBuilder rb(&program.predicates);
  auto name = [](int i) { return "p" + std::to_string(i); };
  rb.Head(name(0), {rb.Var("X"), rb.Var("Y")});
  rb.Body("edge", {rb.Var("X"), rb.Var("Y")});
  program.rules.push_back(rb.Build());
  for (int i = 0; i < kPreds; ++i) {
    rb.Head(name((i + 1) % kPreds), {rb.Var("X"), rb.Var("Z")});
    rb.Body(name(i), {rb.Var("X"), rb.Var("Y")});
    rb.Body("edge", {rb.Var("Y"), rb.Var("Z")});
    program.rules.push_back(rb.Build());
  }
  Database edb, idb;
  for (int64_t i = 1; i <= 48; ++i) {
    edb.relation(edge, 2).Insert({V(i), V(i % 48 + 1)}, 0);
  }
  SkolemStore skolems;
  Evaluator evaluator(&dict_, &skolems);
  evaluator.set_num_threads(8);
  ExecContext ctx;
  ctx.set_deadline_after(std::chrono::milliseconds(1));
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  Status st = evaluator.Evaluate(program, &edb, &idb, &ctx);
  EXPECT_TRUE(st.IsTimeout()) << st.ToString();
}

/// The tuple budget ("mem-out") must still trip when derivations are
/// staged by parallel workers — enforced mid-round per worker and exactly
/// at each merge barrier.
TEST_F(ParallelFixpointTest, TupleBudgetTripsAcrossWorkers) {
  Program program;
  PredicateId edge = program.predicates.Intern("edge", 2);
  RuleBuilder rb(&program.predicates);
  rb.Head("tc", {rb.Var("X"), rb.Var("Y")});
  rb.Body("edge", {rb.Var("X"), rb.Var("Y")});
  program.rules.push_back(rb.Build());
  rb.Head("tc", {rb.Var("X"), rb.Var("Z")});
  rb.Body("edge", {rb.Var("X"), rb.Var("Y")});
  rb.Body("tc", {rb.Var("Y"), rb.Var("Z")});
  program.rules.push_back(rb.Build());

  Database edb, idb;
  for (int64_t i = 1; i <= 64; ++i) {
    edb.relation(edge, 2).Insert({V(i), V(i % 64 + 1)}, 0);
  }
  SkolemStore skolems;
  Evaluator evaluator(&dict_, &skolems);
  evaluator.set_num_threads(8);
  ExecContext ctx;
  ctx.set_tuple_budget(500);  // full closure is 64*64 = 4096 tuples
  Status st = evaluator.Evaluate(program, &edb, &idb, &ctx);
  EXPECT_TRUE(st.IsResourceExhausted()) << st.ToString();
}

/// Parallel fixpoint × cache interaction: a full-pipeline engine swept at
/// num_threads {1, 2, 8} must serve warm (program-cache + stratum-memo)
/// repeats bit-identically to its own cold run at every thread count, and
/// the thread count must never change the solution multiset. The warm
/// path replays memoized stratum snapshots instead of re-running the
/// sharded fixpoint, so this pins the snapshot/restore machinery under
/// the same configurations the TSan job sweeps.
TEST_F(ParallelFixpointTest, EngineWarmHitsAgreeAcrossThreadCounts) {
  rdf::TermDictionary dict;
  rdf::Dataset dataset(&dict);
  rdf::TermId p = dict.InternIri("http://par.org/p");
  auto node = [&](int64_t i) {
    return dict.InternIri("http://par.org/n" + std::to_string(i));
  };
  for (int64_t i = 1; i <= 40; ++i) {
    dataset.default_graph().Add(node(i), p, node(i % 40 + 1));
    if (i % 5 == 0) dataset.default_graph().Add(node(i), p, node((i + 11) % 40 + 1));
  }
  const std::string query =
      "SELECT ?x ?y WHERE { ?x <http://par.org/p>+ ?y }";

  eval::QueryResult serial_cold;
  for (uint32_t threads : {1u, 2u, 8u}) {
    core::Engine::Options options;
    options.parallelism.num_threads = threads;
    core::Engine engine(&dataset, &dict, options);
    ASSERT_TRUE(engine.Load().ok());

    auto cold = engine.ExecuteText(query);
    ASSERT_TRUE(cold.ok()) << "threads=" << threads << ": "
                           << cold.status().ToString();
    auto warm = engine.ExecuteText(query);
    ASSERT_TRUE(warm.ok()) << "threads=" << threads << ": "
                           << warm.status().ToString();
    // Warm must be bit-identical to this engine's own cold run.
    EXPECT_TRUE(cold->result.rows == warm->result.rows)
        << "threads=" << threads;
    EXPECT_EQ(cold->result.columns, warm->result.columns)
        << "threads=" << threads;
    EXPECT_EQ(engine.stats().program_hits, 1u) << "threads=" << threads;
    EXPECT_GT(engine.stats().stratum_hits, 0u) << "threads=" << threads;

    // Across thread counts the multiset (not the order) is pinned.
    if (threads == 1) {
      serial_cold = std::move(cold->result);
    } else {
      EXPECT_TRUE(warm->result.SameSolutions(serial_cold))
          << "threads=" << threads;
    }
  }
}

/// Engine::stats() surfaces the fixpoint-parallelism counters for the
/// last Execute: a recursive path query at num_threads=4 must report
/// sharded rounds, a sharded initial pass and merged staged tuples,
/// while the single-threaded engine reports none.
TEST_F(ParallelFixpointTest, EngineStatsExposeParallelCounters) {
  rdf::TermDictionary dict;
  rdf::Dataset dataset(&dict);
  rdf::TermId p = dict.InternIri("http://stat.org/p");
  auto node = [&](int64_t i) {
    return dict.InternIri("http://stat.org/n" + std::to_string(i));
  };
  for (int64_t i = 1; i <= 40; ++i) {
    dataset.default_graph().Add(node(i), p, node(i % 40 + 1));
  }
  const std::string query =
      "SELECT ?x ?y WHERE { ?x <http://stat.org/p>+ ?y }";

  core::Engine::Options options;
  options.parallelism.num_threads = 4;
  core::Engine engine(&dataset, &dict, options);
  ASSERT_TRUE(engine.Load().ok());
  auto result = engine.ExecuteText(query);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Per-query fixpoint counters ride the Execution...
  const datalog::EvalStats& fp = result->stats.fixpoint;
  EXPECT_GT(fp.rounds, 0u);
  EXPECT_GT(fp.parallel_rounds, 0u);
  EXPECT_GT(fp.naive_rounds_sharded, 0u);
  EXPECT_GT(fp.staged_merged, 0u);
  EXPECT_GT(result->stats.wall_seconds, 0.0);
  // ...and aggregate into the engine-lifetime stats.
  core::Engine::EngineStats stats = engine.stats();
  EXPECT_EQ(stats.queries, 1u);
  EXPECT_GT(stats.rounds, 0u);
  EXPECT_GT(stats.parallel_rounds, 0u);
  EXPECT_GT(stats.naive_rounds_sharded, 0u);
  EXPECT_GT(stats.staged_tuples_merged, 0u);

  core::Engine::Options serial_options;
  serial_options.parallelism.num_threads = 1;
  core::Engine serial(&dataset, &dict, serial_options);
  ASSERT_TRUE(serial.Load().ok());
  auto serial_result = serial.ExecuteText(query);
  ASSERT_TRUE(serial_result.ok()) << serial_result.status().ToString();
  EXPECT_EQ(serial.stats().parallel_rounds, 0u);
  EXPECT_EQ(serial.stats().staged_tuples_merged, 0u);
  EXPECT_TRUE(result->result.SameSolutions(serial_result->result));
}

/// The deadline must still be sampled when an evaluation is made of many
/// short rule runs: the clock-stride phase persists across serial
/// invocations (as the pre-parallelism context-owned counter did), so an
/// expired deadline trips even though no single RuleRun performs
/// kClockStride checks on its own.
TEST_F(ParallelFixpointTest, DeadlineTripsAcrossManyShortRuleRuns) {
  Program program;
  PredicateId edge = program.predicates.Intern("edge", 2);
  RuleBuilder rb(&program.predicates);
  rb.Head("tc", {rb.Var("X"), rb.Var("Y")});
  rb.Body("edge", {rb.Var("X"), rb.Var("Y")});
  program.rules.push_back(rb.Build());
  rb.Head("tc", {rb.Var("X"), rb.Var("Z")});
  rb.Body("edge", {rb.Var("X"), rb.Var("Y")});
  rb.Body("tc", {rb.Var("Y"), rb.Var("Z")});
  program.rules.push_back(rb.Build());

  // A long chain: hundreds of fixpoint rounds with tiny deltas, so every
  // individual rule run stays far under one clock stride.
  Database edb, idb;
  for (int64_t i = 1; i <= 400; ++i) {
    edb.relation(edge, 2).Insert({V(i), V(i + 1)}, 0);
  }
  SkolemStore skolems;
  Evaluator evaluator(&dict_, &skolems);
  evaluator.set_num_threads(1);
  ExecContext ctx;
  ctx.set_deadline_after(std::chrono::milliseconds(1));
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  Status st = evaluator.Evaluate(program, &edb, &idb, &ctx);
  EXPECT_TRUE(st.IsTimeout()) << st.ToString();
}

}  // namespace
}  // namespace sparqlog::datalog
