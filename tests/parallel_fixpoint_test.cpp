// Tests for the parallel sharded semi-naive fixpoint: thread-count sweeps
// over recursive programs (results must be set-identical to the serial
// path), a stress program deriving into many relations concurrently, a
// regression pin that num_threads=1 reproduces the seed single-threaded
// insertion order byte-for-byte, budget enforcement across workers, and
// mixed eligibility (shardable and serial-only rules sharing a recursive
// stratum).

#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "datalog/ast.h"
#include "datalog/evaluator.h"
#include "datalog/printer.h"
#include "datalog/relation.h"
#include "datalog/value.h"

namespace sparqlog::datalog {
namespace {

class ParallelFixpointTest : public ::testing::Test {
 protected:
  Value V(int64_t i) { return ValueFromTerm(dict_.InternInteger(i)); }

  /// Evaluates `program` over `edb_facts` with `num_threads` workers and
  /// returns the canonical IDB dump (empty string on evaluation error).
  std::string Dump(const Program& program,
                   const std::vector<std::pair<PredicateId,
                                               std::vector<Value>>>& facts,
                   uint32_t num_threads,
                   const std::vector<std::string>& skolem_fns = {}) {
    Database edb, idb;
    for (const auto& [pred, tuple] : facts) {
      edb.relation(pred, static_cast<uint32_t>(tuple.size()))
          .Insert(tuple, 0);
    }
    SkolemStore skolems;
    for (const std::string& fn : skolem_fns) skolems.InternFunction(fn);
    Evaluator evaluator(&dict_, &skolems);
    evaluator.set_num_threads(num_threads);
    ExecContext ctx;
    if (!evaluator.Evaluate(program, &edb, &idb, &ctx).ok()) return "";
    return ToString(idb, program.predicates, dict_, skolems);
  }

  rdf::TermDictionary dict_;
};

/// Transitive closure over a graph with cycles, swept across worker
/// counts including 0 (= hardware_concurrency auto-resolution).
TEST_F(ParallelFixpointTest, ClosureAgreesAcrossThreadCounts) {
  Program program;
  PredicateId edge = program.predicates.Intern("edge", 2);
  RuleBuilder rb(&program.predicates);
  rb.Head("tc", {rb.Var("X"), rb.Var("Y")});
  rb.Body("edge", {rb.Var("X"), rb.Var("Y")});
  program.rules.push_back(rb.Build());
  rb.Head("tc", {rb.Var("X"), rb.Var("Z")});
  rb.Body("edge", {rb.Var("X"), rb.Var("Y")});
  rb.Body("tc", {rb.Var("Y"), rb.Var("Z")});
  program.rules.push_back(rb.Build());

  std::vector<std::pair<PredicateId, std::vector<Value>>> facts;
  for (int64_t i = 1; i <= 40; ++i) {
    facts.push_back({edge, {V(i), V(i % 40 + 1)}});
    if (i % 5 == 0) facts.push_back({edge, {V(i), V((i + 11) % 40 + 1)}});
  }
  std::string serial = Dump(program, facts, 1);
  ASSERT_FALSE(serial.empty());
  for (uint32_t threads : {0u, 2u, 3u, 8u}) {
    EXPECT_EQ(serial, Dump(program, facts, threads))
        << "num_threads=" << threads;
  }

  // Prove the sharded path actually engaged (no silent serial fallback).
  Database edb, idb;
  for (const auto& [pred, tuple] : facts) {
    edb.relation(pred, static_cast<uint32_t>(tuple.size()))
        .Insert(tuple, 0);
  }
  SkolemStore skolems;
  Evaluator evaluator(&dict_, &skolems);
  evaluator.set_num_threads(2);
  ExecContext ctx;
  ASSERT_TRUE(evaluator.Evaluate(program, &edb, &idb, &ctx).ok());
  EXPECT_GT(evaluator.stats().parallel_rounds, 0u);
}

/// Stress: six mutually recursive predicates in one SCC, so every round
/// fans out shards that derive into many relations concurrently and the
/// barrier merges staging buffers for all of them.
TEST_F(ParallelFixpointTest, ManyRelationsDerivedConcurrently) {
  constexpr int kPreds = 6;
  Program program;
  PredicateId edge = program.predicates.Intern("edge", 2);
  RuleBuilder rb(&program.predicates);
  auto name = [](int i) { return "p" + std::to_string(i); };
  rb.Head(name(0), {rb.Var("X"), rb.Var("Y")});
  rb.Body("edge", {rb.Var("X"), rb.Var("Y")});
  program.rules.push_back(rb.Build());
  for (int i = 0; i < kPreds; ++i) {
    // p_{i+1 mod k}(X,Z) :- p_i(X,Y), edge(Y,Z): one cyclic chain of
    // predicates, all in the same stratum.
    rb.Head(name((i + 1) % kPreds), {rb.Var("X"), rb.Var("Z")});
    rb.Body(name(i), {rb.Var("X"), rb.Var("Y")});
    rb.Body("edge", {rb.Var("Y"), rb.Var("Z")});
    program.rules.push_back(rb.Build());
  }

  std::vector<std::pair<PredicateId, std::vector<Value>>> facts;
  for (int64_t i = 1; i <= 24; ++i) {
    facts.push_back({edge, {V(i), V(i % 24 + 1)}});
    if (i % 4 == 0) facts.push_back({edge, {V(i), V((i + 7) % 24 + 1)}});
  }
  std::string serial = Dump(program, facts, 1);
  ASSERT_FALSE(serial.empty());
  for (uint32_t threads : {2u, 8u}) {
    EXPECT_EQ(serial, Dump(program, facts, threads))
        << "num_threads=" << threads;
  }
}

/// Pins the seed single-threaded behavior: with num_threads=1 the arena
/// insertion order of the semi-naive closure must stay exactly the
/// pre-parallelism sequence (initial pass in rule order with same-pass
/// visibility, then one delta scan per round). Byte-identical dumps
/// follow a fortiori, since dumps are derived from arena contents.
TEST_F(ParallelFixpointTest, SingleThreadKeepsSeedInsertionOrder) {
  Program program;
  PredicateId edge = program.predicates.Intern("edge", 2);
  RuleBuilder rb(&program.predicates);
  rb.Head("tc", {rb.Var("X"), rb.Var("Y")});
  rb.Body("edge", {rb.Var("X"), rb.Var("Y")});
  program.rules.push_back(rb.Build());
  rb.Head("tc", {rb.Var("X"), rb.Var("Z")});
  rb.Body("edge", {rb.Var("X"), rb.Var("Y")});
  rb.Body("tc", {rb.Var("Y"), rb.Var("Z")});
  program.rules.push_back(rb.Build());
  PredicateId tc = *program.predicates.Lookup("tc");

  Database edb, idb;
  for (int64_t i = 1; i <= 3; ++i) {
    edb.relation(edge, 2).Insert({V(i), V(i + 1)}, 0);
  }
  SkolemStore skolems;
  Evaluator evaluator(&dict_, &skolems);
  evaluator.set_num_threads(1);
  ExecContext ctx;
  ASSERT_TRUE(evaluator.Evaluate(program, &edb, &idb, &ctx).ok());

  // Chain 1->2->3->4. Initial pass: rule 1 copies the edges in scan
  // order, then rule 2 joins each edge against the tc rows already
  // inserted this pass. Round 2's delta scan adds the last pair.
  const std::vector<std::vector<Value>> expected = {
      {V(1), V(2)}, {V(2), V(3)}, {V(3), V(4)},
      {V(1), V(3)}, {V(2), V(4)}, {V(1), V(4)},
  };
  const Relation* rel = idb.Find(tc);
  ASSERT_NE(rel, nullptr);
  ASSERT_EQ(rel->size(), expected.size());
  for (uint32_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(rel->row(i), expected[i]) << "row " << i;
  }
  EXPECT_EQ(evaluator.stats().parallel_rounds, 0u);
}

/// Shardable and serial-only rules sharing one recursive stratum: the
/// Skolem-building rule must take the serial path within each parallel
/// round, and results must match the fully serial evaluation.
TEST_F(ParallelFixpointTest, MixedEligibilityStratumAgrees) {
  Program program;
  PredicateId edge = program.predicates.Intern("edge", 2);
  SkolemStore naming;
  uint32_t f = naming.InternFunction("f1");
  RuleBuilder rb(&program.predicates);
  rb.Head("a", {rb.Var("X"), rb.Var("Y")});
  rb.Body("edge", {rb.Var("X"), rb.Var("Y")});
  program.rules.push_back(rb.Build());
  rb.Head("a", {rb.Var("X"), rb.Var("Z")});
  rb.Body("a", {rb.Var("X"), rb.Var("Y")});
  rb.Body("edge", {rb.Var("Y"), rb.Var("Z")});
  program.rules.push_back(rb.Build());
  // b tags pairs with a Skolem id and feeds them back into a, closing the
  // SCC {a, b} while staying a terminating program (b adds no new pairs).
  rb.Head("b", {rb.Var("ID"), rb.Var("X"), rb.Var("Y")});
  rb.Body("a", {rb.Var("X"), rb.Var("Y")});
  rb.Skolem(rb.Var("ID"), f, {rb.Var("X"), rb.Var("Y")});
  program.rules.push_back(rb.Build());
  rb.Head("a", {rb.Var("X"), rb.Var("Y")});
  rb.Body("b", {rb.Var("ID"), rb.Var("X"), rb.Var("Y")});
  program.rules.push_back(rb.Build());

  std::vector<std::pair<PredicateId, std::vector<Value>>> facts;
  for (int64_t i = 1; i <= 12; ++i) {
    facts.push_back({edge, {V(i), V(i % 12 + 1)}});
  }
  std::string serial = Dump(program, facts, 1, {"f1"});
  ASSERT_FALSE(serial.empty());
  for (uint32_t threads : {2u, 8u}) {
    EXPECT_EQ(serial, Dump(program, facts, threads, {"f1"}))
        << "num_threads=" << threads;
  }
}

/// The tuple budget ("mem-out") must still trip when derivations are
/// staged by parallel workers — enforced mid-round per worker and exactly
/// at each merge barrier.
TEST_F(ParallelFixpointTest, TupleBudgetTripsAcrossWorkers) {
  Program program;
  PredicateId edge = program.predicates.Intern("edge", 2);
  RuleBuilder rb(&program.predicates);
  rb.Head("tc", {rb.Var("X"), rb.Var("Y")});
  rb.Body("edge", {rb.Var("X"), rb.Var("Y")});
  program.rules.push_back(rb.Build());
  rb.Head("tc", {rb.Var("X"), rb.Var("Z")});
  rb.Body("edge", {rb.Var("X"), rb.Var("Y")});
  rb.Body("tc", {rb.Var("Y"), rb.Var("Z")});
  program.rules.push_back(rb.Build());

  Database edb, idb;
  for (int64_t i = 1; i <= 64; ++i) {
    edb.relation(edge, 2).Insert({V(i), V(i % 64 + 1)}, 0);
  }
  SkolemStore skolems;
  Evaluator evaluator(&dict_, &skolems);
  evaluator.set_num_threads(8);
  ExecContext ctx;
  ctx.set_tuple_budget(500);  // full closure is 64*64 = 4096 tuples
  Status st = evaluator.Evaluate(program, &edb, &idb, &ctx);
  EXPECT_TRUE(st.IsResourceExhausted()) << st.ToString();
}

/// Parallel fixpoint × cache interaction: a full-pipeline engine swept at
/// num_threads {1, 2, 8} must serve warm (program-cache + stratum-memo)
/// repeats bit-identically to its own cold run at every thread count, and
/// the thread count must never change the solution multiset. The warm
/// path replays memoized stratum snapshots instead of re-running the
/// sharded fixpoint, so this pins the snapshot/restore machinery under
/// the same configurations the TSan job sweeps.
TEST_F(ParallelFixpointTest, EngineWarmHitsAgreeAcrossThreadCounts) {
  rdf::TermDictionary dict;
  rdf::Dataset dataset(&dict);
  rdf::TermId p = dict.InternIri("http://par.org/p");
  auto node = [&](int64_t i) {
    return dict.InternIri("http://par.org/n" + std::to_string(i));
  };
  for (int64_t i = 1; i <= 40; ++i) {
    dataset.default_graph().Add(node(i), p, node(i % 40 + 1));
    if (i % 5 == 0) dataset.default_graph().Add(node(i), p, node((i + 11) % 40 + 1));
  }
  const std::string query =
      "SELECT ?x ?y WHERE { ?x <http://par.org/p>+ ?y }";

  eval::QueryResult serial_cold;
  for (uint32_t threads : {1u, 2u, 8u}) {
    core::Engine::Options options;
    options.num_threads = threads;
    core::Engine engine(&dataset, &dict, options);

    auto cold = engine.ExecuteText(query);
    ASSERT_TRUE(cold.ok()) << "threads=" << threads << ": "
                           << cold.status().ToString();
    auto warm = engine.ExecuteText(query);
    ASSERT_TRUE(warm.ok()) << "threads=" << threads << ": "
                           << warm.status().ToString();
    // Warm must be bit-identical to this engine's own cold run.
    EXPECT_TRUE(cold->rows == warm->rows) << "threads=" << threads;
    EXPECT_EQ(cold->columns, warm->columns) << "threads=" << threads;
    EXPECT_EQ(engine.cache_stats().program_hits, 1u)
        << "threads=" << threads;
    EXPECT_GT(engine.cache_stats().stratum_hits, 0u)
        << "threads=" << threads;

    // Across thread counts the multiset (not the order) is pinned.
    if (threads == 1) {
      serial_cold = std::move(*cold);
    } else {
      EXPECT_TRUE(warm->SameSolutions(serial_cold))
          << "threads=" << threads;
    }
  }
}

/// The deadline must still be sampled when an evaluation is made of many
/// short rule runs: the clock-stride phase persists across serial
/// invocations (as the pre-parallelism context-owned counter did), so an
/// expired deadline trips even though no single RuleRun performs
/// kClockStride checks on its own.
TEST_F(ParallelFixpointTest, DeadlineTripsAcrossManyShortRuleRuns) {
  Program program;
  PredicateId edge = program.predicates.Intern("edge", 2);
  RuleBuilder rb(&program.predicates);
  rb.Head("tc", {rb.Var("X"), rb.Var("Y")});
  rb.Body("edge", {rb.Var("X"), rb.Var("Y")});
  program.rules.push_back(rb.Build());
  rb.Head("tc", {rb.Var("X"), rb.Var("Z")});
  rb.Body("edge", {rb.Var("X"), rb.Var("Y")});
  rb.Body("tc", {rb.Var("Y"), rb.Var("Z")});
  program.rules.push_back(rb.Build());

  // A long chain: hundreds of fixpoint rounds with tiny deltas, so every
  // individual rule run stays far under one clock stride.
  Database edb, idb;
  for (int64_t i = 1; i <= 400; ++i) {
    edb.relation(edge, 2).Insert({V(i), V(i + 1)}, 0);
  }
  SkolemStore skolems;
  Evaluator evaluator(&dict_, &skolems);
  evaluator.set_num_threads(1);
  ExecContext ctx;
  ctx.set_deadline_after(std::chrono::milliseconds(1));
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  Status st = evaluator.Evaluate(program, &edb, &idb, &ctx);
  EXPECT_TRUE(st.IsTimeout()) << st.ToString();
}

}  // namespace
}  // namespace sparqlog::datalog
