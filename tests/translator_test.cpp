// Unit tests for the query translation T_Q: structural checks per
// definition (A.3-A.22), set- vs bag-semantics variants, constant-endpoint
// seeding, ontology rules, and the paper's claim that every translated
// program is Warded Datalog± (§5.3).

#include <gtest/gtest.h>

#include "core/query_translator.h"
#include "datalog/printer.h"
#include "datalog/stratify.h"
#include "datalog/warded.h"
#include "sparql/parser.h"

namespace sparqlog::core {
namespace {

class TranslatorTest : public ::testing::Test {
 protected:
  datalog::Program Translate(const std::string& query, bool ontology = false) {
    auto parsed =
        sparql::ParseQuery("PREFIX ex: <http://ex.org/>\n" + query, &dict_);
    EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
    QueryTranslator translator(&dict_, &skolems_, ontology);
    auto program = translator.Translate(*parsed);
    EXPECT_TRUE(program.ok()) << program.status().ToString();
    return std::move(program).ValueOrDie();
  }

  std::string Render(const datalog::Program& program) {
    return datalog::ToString(program, dict_, skolems_);
  }

  /// Number of rules whose head predicate is `name`.
  size_t RulesFor(const datalog::Program& program, const std::string& name) {
    auto pred = program.predicates.Lookup(name);
    if (!pred) return 0;
    size_t n = 0;
    for (const auto& rule : program.rules) {
      if (rule.head.predicate == *pred) ++n;
    }
    return n;
  }

  rdf::TermDictionary dict_;
  datalog::SkolemStore skolems_;
};

TEST_F(TranslatorTest, TriplePatternDefA3) {
  auto program = Translate("SELECT ?s ?o WHERE { ?s ex:p ?o }");
  // ans1 (triple) + ans (select).
  EXPECT_EQ(RulesFor(program, "ans1"), 1u);
  EXPECT_EQ(RulesFor(program, "ans"), 1u);
  // Bag semantics: head carries a Skolem TID.
  std::string text = Render(program);
  EXPECT_NE(text.find("ID = [\"f1\""), std::string::npos);
  EXPECT_NE(text.find("triple("), std::string::npos);
}

TEST_F(TranslatorTest, DistinctUsesSetSemantics) {
  auto program = Translate("SELECT DISTINCT ?s WHERE { ?s ex:p ?o }");
  std::string text = Render(program);
  EXPECT_EQ(text.find("ID ="), std::string::npos)
      << "set semantics must not generate TIDs:\n"
      << text;
  EXPECT_FALSE(program.output.has_tid_column);
}

TEST_F(TranslatorTest, JoinEmitsCompDefA5) {
  auto program =
      Translate("SELECT ?s WHERE { ?s ex:p ?o . ?o ex:q ?z }");
  std::string text = Render(program);
  EXPECT_NE(text.find("comp("), std::string::npos);
  // The comp predicate definition (A.2) is included once.
  EXPECT_EQ(RulesFor(program, "comp"), 4u);
  // Renamed shared variable on both sides.
  EXPECT_NE(text.find("V1_o"), std::string::npos);
  EXPECT_NE(text.find("V2_o"), std::string::npos);
}

TEST_F(TranslatorTest, CrossProductNeedsNoComp) {
  auto program = Translate("SELECT * WHERE { ?a ex:p ?b . ?c ex:q ?d }");
  EXPECT_EQ(RulesFor(program, "comp"), 0u);
}

TEST_F(TranslatorTest, UnionPadsWithNullDefA6) {
  auto program = Translate(
      "SELECT * WHERE { { ?s ex:p ?o } UNION { ?s ex:q ?z } }");
  EXPECT_EQ(RulesFor(program, "ans1"), 2u);
  std::string text = Render(program);
  EXPECT_NE(text.find("null(V_z)"), std::string::npos);
  EXPECT_NE(text.find("null(V_o)"), std::string::npos);
  // Branch-specific Skolem functions keep duplicates apart.
  EXPECT_NE(text.find("\"f1a\""), std::string::npos);
  EXPECT_NE(text.find("\"f1b\""), std::string::npos);
}

TEST_F(TranslatorTest, OptionalThreeRulesDefA7) {
  auto program = Translate(
      "SELECT * WHERE { ?s ex:p ?o OPTIONAL { ?s ex:q ?z } }");
  EXPECT_EQ(RulesFor(program, "ans1"), 2u);      // join + unmatched
  EXPECT_EQ(RulesFor(program, "ans_opt1"), 1u);  // compatibility probe
  std::string text = Render(program);
  EXPECT_NE(text.find("not ans_opt1("), std::string::npos);
  EXPECT_NE(text.find("null(V_z)"), std::string::npos);
}

TEST_F(TranslatorTest, OptionalFilterAppliesConditionToJoinDefA9) {
  auto program = Translate(
      "SELECT * WHERE { ?s ex:p ?o OPTIONAL { ?s ex:q ?z "
      "FILTER (?z > ?o) } }");
  // No separate filter predicate: C moves into the opt/join rules.
  EXPECT_EQ(RulesFor(program, "ans3"), 1u);  // the inner triple directly
  std::string text = Render(program);
  // The condition appears twice (ans_opt rule and the join rule).
  size_t first = text.find("(?z > ?o)");
  ASSERT_NE(first, std::string::npos);
  EXPECT_NE(text.find("(?z > ?o)", first + 1), std::string::npos);
}

TEST_F(TranslatorTest, MinusRulesDefA10) {
  auto program = Translate(
      "SELECT ?s WHERE { ?s ex:p ?o . MINUS { ?s ex:q ?z } }");
  EXPECT_GE(RulesFor(program, "ans_join1"), 1u);
  EXPECT_EQ(RulesFor(program, "ans_equal1"), 1u);  // one shared var (s)
  std::string text = Render(program);
  EXPECT_NE(text.find("not ans_equal1("), std::string::npos);
  EXPECT_NE(text.find("not null("), std::string::npos);
}

TEST_F(TranslatorTest, GraphConstantAndVariableDefA4) {
  auto constant = Translate(
      "SELECT ?s WHERE { GRAPH <http://g> { ?s ex:p ?o } }");
  std::string text = Render(constant);
  EXPECT_NE(text.find("named(<http://g>)"), std::string::npos);

  auto variable =
      Translate("SELECT ?g ?s WHERE { GRAPH ?g { ?s ex:p ?o } }");
  text = Render(variable);
  EXPECT_NE(text.find("named(V_g)"), std::string::npos);
}

TEST_F(TranslatorTest, PropertyPathClosureDefA16) {
  auto program = Translate("SELECT ?x ?y WHERE { ?x ex:p+ ?y }");
  // pp node 2: single-step + closure rules, both with ID = [].
  EXPECT_EQ(RulesFor(program, "ans2"), 2u);
  std::string text = Render(program);
  EXPECT_NE(text.find("ID = [\"[]\"]"), std::string::npos);
  // The closure is genuinely recursive.
  auto strat = datalog::Stratify(program).ValueOrDie();
  auto pred = *program.predicates.Lookup("ans2");
  EXPECT_TRUE(strat.stratum_recursive[strat.predicate_stratum[pred]]);
}

TEST_F(TranslatorTest, ZeroOrMoreEmitsZeroRulesDefA19) {
  auto program = Translate("SELECT ?x ?y WHERE { ?x ex:p* ?y }");
  // zero rule (subjectOrObject) + step + closure.
  EXPECT_EQ(RulesFor(program, "ans2"), 3u);
  std::string text = Render(program);
  EXPECT_NE(text.find("subjectOrObject("), std::string::npos);
}

TEST_F(TranslatorTest, ConstantEndpointZeroRuleDefA18) {
  auto program = Translate("SELECT ?y WHERE { ex:ghost ex:p? ?y }");
  std::string text = Render(program);
  // Unconditional constant zero-length rule for the subject.
  EXPECT_NE(text.find("ans2(ID, <http://ex.org/ghost>, "
                      "<http://ex.org/ghost>"),
            std::string::npos);
}

TEST_F(TranslatorTest, ConstantSeedingRestrictsClosure) {
  auto program = Translate("SELECT ?y WHERE { ex:a ex:p+ ?y }");
  std::string text = Render(program);
  // The base chain rule is seeded with the constant subject.
  EXPECT_NE(text.find("X0 = <http://ex.org/a>"), std::string::npos);
  auto back = Translate("SELECT ?x WHERE { ?x ex:p+ ex:a }");
  text = Render(back);
  EXPECT_NE(text.find("X1 = <http://ex.org/a>"), std::string::npos);
}

TEST_F(TranslatorTest, NegatedPropertySetDefA20) {
  auto program = Translate("SELECT ?x ?y WHERE { ?x !(ex:p|^ex:q) ?y }");
  std::string text = Render(program);
  EXPECT_NE(text.find("P != <http://ex.org/p>"), std::string::npos);
  EXPECT_NE(text.find("P != <http://ex.org/q>"), std::string::npos);
  // Forward-only sets emit a single rule.
  auto fwd_only = Translate("SELECT ?x ?y WHERE { ?x !ex:p ?y }");
  EXPECT_EQ(RulesFor(fwd_only, "ans2"), 1u);
}

TEST_F(TranslatorTest, AskRulesDefA22) {
  auto program = Translate("ASK { ?s ex:p ?o }");
  EXPECT_TRUE(program.output.is_ask);
  EXPECT_EQ(RulesFor(program, "ans"), 2u);
  EXPECT_EQ(RulesFor(program, "ans_ask"), 1u);
  std::string text = Render(program);
  EXPECT_NE(text.find("not ans_ask("), std::string::npos);
}

TEST_F(TranslatorTest, FilterBecomesEmbeddedExpression) {
  auto program = Translate(
      "SELECT ?s WHERE { ?s ex:p ?o . FILTER regex(?o, \"x\") }");
  bool found = false;
  for (const auto& rule : program.rules) {
    for (const auto& b : rule.builtins) {
      if (b.kind == datalog::BuiltinKind::kFilterExpr) found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(TranslatorTest, OrderByDirectives) {
  auto program = Translate(
      "SELECT ?o WHERE { ?s ex:p ?o } ORDER BY DESC(?o) LIMIT 3 OFFSET 1");
  ASSERT_EQ(program.output.order_by.size(), 1u);
  EXPECT_TRUE(program.output.order_by[0].descending);
  EXPECT_EQ(*program.output.limit, 3u);
  EXPECT_EQ(*program.output.offset, 1u);
  std::string text = Render(program);
  EXPECT_NE(text.find("@post(\"ans\""), std::string::npos);
  EXPECT_NE(text.find("@output(\"ans\")"), std::string::npos);
}

TEST_F(TranslatorTest, OrderByNonProjectedVarBecomesHiddenColumn) {
  auto program =
      Translate("SELECT ?s WHERE { ?s ex:p ?o } ORDER BY ?o");
  EXPECT_EQ(program.output.columns, (std::vector<std::string>{"s"}));
  EXPECT_EQ(program.output.hidden_columns, (std::vector<std::string>{"o"}));
}

TEST_F(TranslatorTest, OntologyModeEmitsInferenceRules) {
  auto program = Translate("SELECT ?s WHERE { ?s ex:p ?o }", true);
  std::string text = Render(program);
  EXPECT_NE(text.find("itriple("), std::string::npos);
  EXPECT_NE(text.find("subC("), std::string::npos);
  EXPECT_NE(text.find("subP("), std::string::npos);
  // Pattern leaves read the inferred predicate.
  EXPECT_GE(RulesFor(program, "itriple"), 4u);
}

// Every translated program must be warded (the paper's §5.3 claim) and
// stratifiable; sweep over a representative query set.
class WardedSweepTest : public TranslatorTest,
                        public ::testing::WithParamInterface<const char*> {};

TEST_P(WardedSweepTest, TranslationIsWardedAndStratifiable) {
  auto program = Translate(GetParam());
  datalog::WardedReport report = datalog::AnalyzeWarded(program);
  EXPECT_TRUE(report.warded) << GetParam() << "\n"
                             << (report.violations.empty()
                                     ? ""
                                     : report.violations[0]);
  EXPECT_TRUE(datalog::Stratify(program).ok()) << GetParam();
  EXPECT_TRUE(program.Validate().ok()) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    Queries, WardedSweepTest,
    ::testing::Values(
        "SELECT ?s WHERE { ?s ex:p ?o }",
        "SELECT DISTINCT ?s ?o WHERE { ?s ex:p ?o . ?o ex:q ?z }",
        "SELECT * WHERE { { ?s ex:p ?o } UNION { ?s ex:q ?o } }",
        "SELECT * WHERE { ?s ex:p ?o OPTIONAL { ?s ex:q ?z } }",
        "SELECT * WHERE { ?s ex:p ?o OPTIONAL { ?s ex:q ?z "
        "FILTER (?z != ?o) } }",
        "SELECT ?s WHERE { ?s ex:p ?o MINUS { ?s ex:q ?z } }",
        "SELECT ?s WHERE { GRAPH ?g { ?s ex:p ?o } }",
        "SELECT ?x ?y WHERE { ?x ex:p+ ?y }",
        "SELECT ?x ?y WHERE { ?x (ex:p/ex:q)* ?y }",
        "SELECT ?x ?y WHERE { ?x (^ex:p|ex:q)? ?y }",
        "SELECT ?x ?y WHERE { ?x !(ex:p|^ex:q) ?y }",
        "SELECT ?x ?y WHERE { ?x ex:p{2,4} ?y }",
        "ASK { ?s ex:p ?o . FILTER (?o > 3) }",
        "SELECT ?s (COUNT(?o) AS ?n) WHERE { ?s ex:p ?o } GROUP BY ?s",
        "SELECT ?s WHERE { ?s ex:p ?o . ?s ex:q ?z . "
        "FILTER (BOUND(?o) && regex(?z, \"a\")) } ORDER BY ?s LIMIT 2"));

}  // namespace
}  // namespace sparqlog::core
