// Unit tests for W3C property-path semantics in the reference evaluator:
// every path form, the zero-length-path corner cases of §5.2 (constant
// endpoints not occurring in the graph), cycle handling, set-vs-bag
// semantics, and the quirk injections used by the Virtuoso baseline.

#include <gtest/gtest.h>

#include <algorithm>

#include "eval/path_eval.h"
#include "rdf/turtle_parser.h"
#include "sparql/parser.h"

namespace sparqlog::eval {
namespace {

using rdf::TermId;

class PathEvalTest : public ::testing::Test {
 protected:
  PathEvalTest() : dataset_(&dict_) {
    // p: 3-cycle a->b->c->a plus branch a->d; q: a->c; r: self loop e->e.
    auto st = rdf::ParseTurtle(R"(
      @prefix ex: <http://ex.org/> .
      ex:a ex:p ex:b . ex:b ex:p ex:c . ex:c ex:p ex:a . ex:a ex:p ex:d .
      ex:a ex:q ex:c .
      ex:e ex:r ex:e .
    )",
                               &dataset_);
    EXPECT_TRUE(st.ok()) << st.ToString();
  }

  TermId Iri(const std::string& local) {
    return dict_.InternIri("http://ex.org/" + local);
  }

  sparql::PathPtr ParsePath(const std::string& text) {
    auto q = sparql::ParseQuery(
        "PREFIX ex: <http://ex.org/> SELECT * WHERE { ?s " + text + " ?o }",
        &dict_);
    EXPECT_TRUE(q.ok()) << q.status().ToString();
    // Plain IRIs parse as triple patterns; lift them back to link paths.
    if (q->where->kind == sparql::PatternKind::kTriple) {
      return sparql::Path::Link(q->where->p.term);
    }
    EXPECT_EQ(q->where->kind, sparql::PatternKind::kPath);
    return q->where->path;
  }

  PairList Eval(const std::string& path, std::optional<TermId> s,
                std::optional<TermId> o,
                EngineQuirks quirks = EngineQuirks()) {
    PathEvaluator eval(dataset_.default_graph(), &ctx_, quirks);
    auto pairs = eval.Eval(*ParsePath(path), s, o);
    EXPECT_TRUE(pairs.ok()) << pairs.status().ToString();
    auto out = std::move(pairs).ValueOrDie();
    std::sort(out.begin(), out.end());
    return out;
  }

  size_t Count(const PairList& pairs, TermId a, TermId b) {
    return static_cast<size_t>(
        std::count(pairs.begin(), pairs.end(), std::make_pair(a, b)));
  }

  rdf::TermDictionary dict_;
  rdf::Dataset dataset_;
  ExecContext ctx_;
};

TEST_F(PathEvalTest, LinkAndInverse) {
  auto fwd = Eval("ex:p", Iri("a"), std::nullopt);
  EXPECT_EQ(fwd.size(), 2u);  // a->b, a->d
  auto inv = Eval("^ex:p", std::nullopt, std::nullopt);
  EXPECT_EQ(Count(inv, Iri("b"), Iri("a")), 1u);
  EXPECT_EQ(Count(inv, Iri("a"), Iri("b")), 0u);
}

TEST_F(PathEvalTest, SequenceKeepsBagSemantics) {
  // a -p-> {b,d} -p-> ...: a/p/p reaches c (via b) only; but two p-steps
  // from c: c->a->{b,d}.
  auto pairs = Eval("ex:p/ex:p", Iri("c"), std::nullopt);
  EXPECT_EQ(pairs.size(), 2u);
  EXPECT_EQ(Count(pairs, Iri("c"), Iri("b")), 1u);
  EXPECT_EQ(Count(pairs, Iri("c"), Iri("d")), 1u);
}

TEST_F(PathEvalTest, AlternativePreservesDuplicates) {
  // a->c via p/p? No: alternative of q and p/p both yield (a, c).
  auto pairs = Eval("ex:q|(ex:p/ex:p)", Iri("a"), std::nullopt);
  EXPECT_EQ(Count(pairs, Iri("a"), Iri("c")), 2u);  // one per branch
}

TEST_F(PathEvalTest, OneOrMoreOnCycleIncludesStart) {
  auto pairs = Eval("ex:p+", Iri("a"), std::nullopt);
  // Reachable: b, c, a (cycle!), d.
  EXPECT_EQ(pairs.size(), 4u);
  EXPECT_EQ(Count(pairs, Iri("a"), Iri("a")), 1u);
}

TEST_F(PathEvalTest, OneOrMoreHasSetSemantics) {
  // Two distinct p-paths from c to d (c->a->d and c->a->b->c->a->d...);
  // the pair appears exactly once.
  auto pairs = Eval("ex:p+", Iri("c"), Iri("d"));
  EXPECT_EQ(pairs.size(), 1u);
}

TEST_F(PathEvalTest, ZeroOrMoreAddsZeroLengthPairs) {
  auto pairs = Eval("ex:p*", Iri("a"), std::nullopt);
  EXPECT_EQ(pairs.size(), 4u);  // a(zero, merged with cycle), b, c, d
  EXPECT_EQ(Count(pairs, Iri("a"), Iri("a")), 1u);
}

TEST_F(PathEvalTest, ZeroLengthForConstantNotInGraph) {
  TermId ghost = Iri("ghost");
  auto star = Eval("ex:p*", ghost, std::nullopt);
  ASSERT_EQ(star.size(), 1u);
  EXPECT_EQ(star[0], std::make_pair(ghost, ghost));
  auto opt = Eval("ex:p?", ghost, std::nullopt);
  ASSERT_EQ(opt.size(), 1u);
  // Also backwards.
  auto back = Eval("ex:p?", std::nullopt, ghost);
  ASSERT_EQ(back.size(), 1u);
  // Both endpoints bound and different: no zero-length pair.
  EXPECT_EQ(Eval("ex:p?", ghost, Iri("a")).size(), 0u);
}

TEST_F(PathEvalTest, ZeroOrMoreBothVariables) {
  auto pairs = Eval("ex:r*", std::nullopt, std::nullopt);
  // Zero-length pairs for all 5 graph nodes (a,b,c,d,e) + e->e merged.
  EXPECT_EQ(pairs.size(), 5u);
}

TEST_F(PathEvalTest, ZeroOrOne) {
  auto pairs = Eval("ex:q?", std::nullopt, std::nullopt);
  // 5 zero-length + (a,c).
  EXPECT_EQ(pairs.size(), 6u);
}

TEST_F(PathEvalTest, NegatedPropertySet) {
  auto pairs = Eval("!ex:p", std::nullopt, std::nullopt);
  // Triples not labelled p: q(a,c), r(e,e).
  EXPECT_EQ(pairs.size(), 2u);
  auto inv_only = Eval("!^ex:q", std::nullopt, std::nullopt);
  // Reversed triples with predicate != q: the 4 p-edges and the r loop.
  EXPECT_EQ(inv_only.size(), 5u);
  EXPECT_EQ(Count(inv_only, Iri("b"), Iri("a")), 1u);
  auto mixed = Eval("!(ex:p|^ex:p)", std::nullopt, std::nullopt);
  // Forward non-p (q, r) plus reversed non-p (q, r reversed).
  EXPECT_EQ(mixed.size(), 4u);
}

TEST_F(PathEvalTest, CountedPaths) {
  auto exactly2 = Eval("ex:p{2}", Iri("a"), std::nullopt);
  EXPECT_EQ(exactly2.size(), 1u);  // a->b->c only (d is a dead end)
  EXPECT_EQ(Count(exactly2, Iri("a"), Iri("c")), 1u);

  auto at_least2 = Eval("ex:p{2,}", Iri("a"), std::nullopt);
  // From a: length>=2 reaches c, a, b, d (via the cycle).
  EXPECT_EQ(at_least2.size(), 4u);

  auto up_to2 = Eval("ex:p{0,2}", Iri("a"), std::nullopt);
  // zero: a; one: b, d; two: c.
  EXPECT_EQ(up_to2.size(), 4u);
}

TEST_F(PathEvalTest, QuirkTwoVarRecursiveErrors) {
  EngineQuirks quirks;
  quirks.error_on_two_var_recursive_path = true;
  PathEvaluator eval(dataset_.default_graph(), &ctx_, quirks);
  auto both_free = eval.Eval(*ParsePath("ex:p+"), std::nullopt, std::nullopt);
  EXPECT_TRUE(both_free.status().IsNotSupported());
  // With one endpoint bound the quirk does not fire.
  auto bound = eval.Eval(*ParsePath("ex:p+"), Iri("a"), std::nullopt);
  EXPECT_TRUE(bound.ok());
}

TEST_F(PathEvalTest, QuirkPlusDropsReflexive) {
  EngineQuirks quirks;
  quirks.plus_drops_reflexive = true;
  auto pairs = Eval("ex:p+", Iri("a"), std::nullopt, quirks);
  // The cycle pair (a,a) is lost: incomplete but correct.
  EXPECT_EQ(Count(pairs, Iri("a"), Iri("a")), 0u);
  EXPECT_EQ(pairs.size(), 3u);
}

TEST_F(PathEvalTest, QuirkAlternativeDedup) {
  EngineQuirks quirks;
  quirks.alternative_dedup = true;
  auto pairs = Eval("ex:q|(ex:p/ex:p)", Iri("a"), std::nullopt, quirks);
  EXPECT_EQ(Count(pairs, Iri("a"), Iri("c")), 1u);  // duplicate lost
}

TEST_F(PathEvalTest, OneOrMoreMaterializesStepOnce) {
  // The closure must evaluate its inner path once in full, not once per
  // frontier node (the old quadratic StepFrom walk).
  PathEvaluator eval(dataset_.default_graph(), &ctx_);
  auto bound = eval.Eval(*ParsePath("ex:p+"), Iri("a"), std::nullopt);
  ASSERT_TRUE(bound.ok()) << bound.status().ToString();
  EXPECT_EQ(bound->size(), 4u);
  EXPECT_EQ(eval.inner_step_evals(), 1u);

  PathEvaluator rev(dataset_.default_graph(), &ctx_);
  auto obound = rev.Eval(*ParsePath("ex:p+"), std::nullopt, Iri("a"));
  ASSERT_TRUE(obound.ok()) << obound.status().ToString();
  EXPECT_EQ(obound->size(), 3u);  // a, b, c reach a through the cycle
  EXPECT_EQ(rev.inner_step_evals(), 1u);  // reverse reuses the forward step

  PathEvaluator twovar(dataset_.default_graph(), &ctx_);
  auto both = twovar.Eval(*ParsePath("ex:p+"), std::nullopt, std::nullopt);
  ASSERT_TRUE(both.ok()) << both.status().ToString();
  EXPECT_EQ(both->size(), 12u);
  EXPECT_EQ(twovar.inner_step_evals(), 1u);  // shared across all sources
}

TEST_F(PathEvalTest, MaterializedClosureKeepsGhostZeroStep) {
  // A start term outside the graph still steps via a zero-admitting inner
  // path; one pushed-down probe (and only one) covers it.
  TermId ghost = Iri("ghost");
  PathEvaluator eval(dataset_.default_graph(), &ctx_);
  auto pairs = eval.Eval(*ParsePath("(ex:p?)+"), ghost, std::nullopt);
  ASSERT_TRUE(pairs.ok()) << pairs.status().ToString();
  EXPECT_EQ(Count(*pairs, ghost, ghost), 1u);
  EXPECT_EQ(eval.inner_step_evals(), 2u);  // materialize + start probe
}

TEST_F(PathEvalTest, QuirkEnginesKeepPerNodeWalk) {
  // Simulated engines with the two-var-recursive quirk push each frontier
  // node into the inner path; the materialized fast path must not change
  // their modelled behavior.
  EngineQuirks quirks;
  quirks.error_on_two_var_recursive_path = true;
  PathEvaluator eval(dataset_.default_graph(), &ctx_, quirks);
  auto pairs = eval.Eval(*ParsePath("ex:p+"), Iri("a"), std::nullopt);
  ASSERT_TRUE(pairs.ok()) << pairs.status().ToString();
  EXPECT_EQ(pairs->size(), 4u);
  EXPECT_GT(eval.inner_step_evals(), 1u);  // one eval per frontier node
}

TEST_F(PathEvalTest, BudgetAborts) {
  ExecContext tight;
  tight.set_tuple_budget(2);
  PathEvaluator eval(dataset_.default_graph(), &tight);
  auto result = eval.Eval(*ParsePath("ex:p*"), std::nullopt, std::nullopt);
  EXPECT_TRUE(result.status().IsResourceExhausted())
      << result.status().ToString();
}

}  // namespace
}  // namespace sparqlog::eval
