// Unit tests for the reference algebra evaluator (the Fuseki stand-in and
// correctness oracle): multiset semantics of every operator, the
// OPTIONAL-FILTER edge case (§4.3), MINUS's disjoint-domain rule, GRAPH,
// solution modifiers, aggregation, and the Virtuoso quirks at query level.

#include <gtest/gtest.h>

#include "eval/algebra_eval.h"
#include "rdf/turtle_parser.h"
#include "sparql/parser.h"

namespace sparqlog::eval {
namespace {

class AlgebraEvalTest : public ::testing::Test {
 protected:
  AlgebraEvalTest() : dataset_(&dict_) {}

  void Load(const std::string& ttl) {
    auto st = rdf::ParseTurtle(ttl, &dataset_);
    ASSERT_TRUE(st.ok()) << st.ToString();
  }

  QueryResult Run(const std::string& query,
                  EngineQuirks quirks = EngineQuirks()) {
    auto parsed =
        sparql::ParseQuery("PREFIX ex: <http://ex.org/>\n" + query, &dict_);
    EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
    ExecContext ctx;
    AlgebraEvaluator eval(dataset_, &dict_, &ctx, quirks);
    auto result = eval.EvalQuery(*parsed);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return std::move(result).ValueOrDie();
  }

  std::string Lex(rdf::TermId id) { return dict_.get(id).lexical; }

  rdf::TermDictionary dict_;
  rdf::Dataset dataset_;
};

constexpr char kPeople[] = R"(
  @prefix ex: <http://ex.org/> .
  ex:alice ex:name "Alice" ; ex:age 30 ; ex:knows ex:bob .
  ex:bob   ex:name "Bob"   ; ex:age 25 .
  ex:carol ex:name "Carol" ; ex:age 35 ; ex:knows ex:alice ; ex:mail "c@x" .
)";

TEST_F(AlgebraEvalTest, BgpJoinBindsSharedVariables) {
  Load(kPeople);
  QueryResult r = Run("SELECT ?n WHERE { ?x ex:knows ?y . ?y ex:name ?n }");
  ASSERT_EQ(r.rows.size(), 2u);
  std::set<std::string> names{Lex(r.rows[0][0]), Lex(r.rows[1][0])};
  EXPECT_EQ(names, (std::set<std::string>{"Bob", "Alice"}));
}

TEST_F(AlgebraEvalTest, ProjectionKeepsDuplicates) {
  Load(kPeople);
  QueryResult r = Run("SELECT ?p WHERE { ?x ?p ?o }");
  // 9 triples; projecting the predicate keeps one row per triple.
  EXPECT_EQ(r.rows.size(), 9u);
  QueryResult d = Run("SELECT DISTINCT ?p WHERE { ?x ?p ?o }");
  EXPECT_EQ(d.rows.size(), 4u);  // name, age, knows, mail
}

TEST_F(AlgebraEvalTest, OptionalLeavesUnboundOnNoMatch) {
  Load(kPeople);
  QueryResult r = Run(
      "SELECT ?n ?m WHERE { ?x ex:name ?n OPTIONAL { ?x ex:mail ?m } } "
      "ORDER BY ?n");
  ASSERT_EQ(r.rows.size(), 3u);
  EXPECT_EQ(Lex(r.rows[0][0]), "Alice");
  EXPECT_EQ(r.rows[0][1], rdf::TermDictionary::kUndef);
  EXPECT_EQ(Lex(r.rows[2][0]), "Carol");
  EXPECT_EQ(Lex(r.rows[2][1]), "c@x");
}

TEST_F(AlgebraEvalTest, OptionalFilterSeesLeftBindings) {
  Load(kPeople);
  // The classic edge case: the filter inside OPTIONAL references ?a from
  // the left side. carol(35) has a knows-target with age 30 (<35): joined.
  // alice(30) knows bob(25): 25 < 30 so joined too... use a threshold
  // making one side fail.
  QueryResult r = Run(R"(
    SELECT ?x ?y WHERE {
      ?x ex:age ?a .
      OPTIONAL { ?x ex:knows ?y . ?y ex:age ?b . FILTER (?b > ?a) }
    } ORDER BY ?x)");
  ASSERT_EQ(r.rows.size(), 3u);
  // alice knows bob (25 > 30 false) -> unbound; carol knows alice
  // (30 > 35 false) -> unbound; bob knows nobody -> unbound.
  for (const auto& row : r.rows) {
    EXPECT_EQ(row[1], rdf::TermDictionary::kUndef);
  }
}

TEST_F(AlgebraEvalTest, UnionConcatenatesWithSharedColumns) {
  Load(kPeople);
  QueryResult r =
      Run("SELECT ?v WHERE { { ?x ex:name ?v } UNION { ?x ex:mail ?v } }");
  EXPECT_EQ(r.rows.size(), 4u);
}

TEST_F(AlgebraEvalTest, MinusRemovesCompatibleOverlappingMappings) {
  Load(kPeople);
  QueryResult r = Run(
      "SELECT ?x WHERE { ?x ex:name ?n . MINUS { ?x ex:knows ?y } }");
  // alice and carol know someone -> removed; bob stays.
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(dict_.get(r.rows[0][0]).lexical, "http://ex.org/bob");
}

TEST_F(AlgebraEvalTest, MinusDisjointDomainsKeepsEverything) {
  Load(kPeople);
  // The MINUS side binds only ?z which is disjoint from the left side:
  // per the spec nothing is removed even though mappings are compatible.
  QueryResult r = Run(
      "SELECT ?x WHERE { ?x ex:name ?n . MINUS { ?z ex:mail \"c@x\" } }");
  EXPECT_EQ(r.rows.size(), 3u);
}

TEST_F(AlgebraEvalTest, GraphConstantAndVariable) {
  Load(R"(
    @prefix ex: <http://ex.org/> .
    ex:a ex:p ex:b .
    GRAPH <http://g1> { ex:a ex:p ex:c . }
    GRAPH <http://g2> { ex:a ex:p ex:d . ex:a ex:p ex:e . }
  )");
  QueryResult named = Run(
      "SELECT ?o WHERE { GRAPH <http://g1> { ex:a ex:p ?o } }");
  EXPECT_EQ(named.rows.size(), 1u);
  QueryResult var = Run("SELECT ?g ?o WHERE { GRAPH ?g { ex:a ex:p ?o } }");
  EXPECT_EQ(var.rows.size(), 3u);
  QueryResult missing = Run(
      "SELECT ?o WHERE { GRAPH <http://nope> { ex:a ex:p ?o } }");
  EXPECT_TRUE(missing.rows.empty());
}

TEST_F(AlgebraEvalTest, FromClausesBuildQueryDataset) {
  Load(R"(
    @prefix ex: <http://ex.org/> .
    GRAPH <http://g1> { ex:a ex:p ex:b . }
    GRAPH <http://g2> { ex:a ex:p ex:c . }
  )");
  QueryResult merged = Run(
      "SELECT ?o FROM <http://g1> FROM <http://g2> WHERE { ex:a ex:p ?o }");
  EXPECT_EQ(merged.rows.size(), 2u);
  // Without FROM, the default graph of the store is empty.
  QueryResult none = Run("SELECT ?o WHERE { ex:a ex:p ?o }");
  EXPECT_TRUE(none.rows.empty());
  // FROM NAMED restricts GRAPH iteration.
  QueryResult named = Run(
      "SELECT ?g ?o FROM NAMED <http://g2> WHERE { GRAPH ?g "
      "{ ex:a ex:p ?o } }");
  EXPECT_EQ(named.rows.size(), 1u);
}

TEST_F(AlgebraEvalTest, OrderLimitOffset) {
  Load(kPeople);
  QueryResult r = Run(
      "SELECT ?n WHERE { ?x ex:name ?n . ?x ex:age ?a } "
      "ORDER BY DESC(?a) LIMIT 2 OFFSET 1");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(Lex(r.rows[0][0]), "Alice");  // 35(Carol skipped), 30, 25
  EXPECT_EQ(Lex(r.rows[1][0]), "Bob");
}

TEST_F(AlgebraEvalTest, OrderByNonProjectedAndComplexKey) {
  Load(kPeople);
  QueryResult r = Run(
      "SELECT ?n WHERE { ?x ex:name ?n OPTIONAL { ?x ex:mail ?m } } "
      "ORDER BY !BOUND(?m) ?n");
  ASSERT_EQ(r.rows.size(), 3u);
  // BOUND first: Carol (false sorts before true per boolean order).
  EXPECT_EQ(Lex(r.rows[0][0]), "Carol");
}

TEST_F(AlgebraEvalTest, AskForm) {
  Load(kPeople);
  EXPECT_TRUE(Run("ASK { ?x ex:mail ?m }").ask_value);
  EXPECT_FALSE(Run("ASK { ?x ex:phone ?m }").ask_value);
}

TEST_F(AlgebraEvalTest, GroupByWithAggregates) {
  Load(R"(
    @prefix ex: <http://ex.org/> .
    ex:p1 ex:author ex:a ; ex:cites ex:p2 , ex:p3 .
    ex:p2 ex:author ex:a ; ex:cites ex:p3 .
    ex:p3 ex:author ex:b .
  )");
  QueryResult r = Run(
      "SELECT ?w (COUNT(?c) AS ?n) WHERE { ?p ex:author ?w . "
      "OPTIONAL { ?p ex:cites ?c } } GROUP BY ?w ORDER BY ?w");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(Lex(r.rows[0][1]), "3");  // author a: 2 + 1 citations
  EXPECT_EQ(Lex(r.rows[1][1]), "0");  // author b: none (unbound not counted)
}

TEST_F(AlgebraEvalTest, AggregatesWithoutGroupBy) {
  Load(kPeople);
  QueryResult r = Run(
      "SELECT (COUNT(*) AS ?n) (MIN(?a) AS ?lo) (MAX(?a) AS ?hi) "
      "(AVG(?a) AS ?avg) (SUM(?a) AS ?sum) WHERE { ?x ex:age ?a }");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(Lex(r.rows[0][0]), "3");
  EXPECT_EQ(Lex(r.rows[0][1]), "25");
  EXPECT_EQ(Lex(r.rows[0][2]), "35");
  EXPECT_EQ(Lex(r.rows[0][3]), "30.0");
  EXPECT_EQ(Lex(r.rows[0][4]), "90");
}

TEST_F(AlgebraEvalTest, CountDistinct) {
  Load(R"(
    @prefix ex: <http://ex.org/> .
    ex:x ex:tag "a" , "b" .
    ex:y ex:tag "a" .
  )");
  QueryResult r = Run(
      "SELECT (COUNT(?t) AS ?n) (COUNT(DISTINCT ?t) AS ?d) WHERE "
      "{ ?s ex:tag ?t }");
  EXPECT_EQ(Lex(r.rows[0][0]), "3");
  EXPECT_EQ(Lex(r.rows[0][1]), "2");
}

TEST_F(AlgebraEvalTest, QuirkUnionDedupAndIgnoredDistinct) {
  Load(kPeople);
  EngineQuirks q;
  q.union_dedup = true;
  // Both branches produce the same three (x, n) rows: quirk halves them.
  QueryResult r = Run(
      "SELECT ?n WHERE { { ?x ex:name ?n } UNION { ?x ex:name ?n } }", q);
  EXPECT_EQ(r.rows.size(), 3u);
  QueryResult clean = Run(
      "SELECT ?n WHERE { { ?x ex:name ?n } UNION { ?x ex:name ?n } }");
  EXPECT_EQ(clean.rows.size(), 6u);

  EngineQuirks q2;
  q2.ignore_distinct_with_union = true;
  QueryResult ignored = Run(
      "SELECT DISTINCT ?n WHERE { { ?x ex:name ?n } UNION "
      "{ ?x ex:name ?n } }",
      q2);
  EXPECT_EQ(ignored.rows.size(), 6u);  // DISTINCT dropped
}

TEST_F(AlgebraEvalTest, QuirkErrorsOnGraphAndComplexOrder) {
  Load(kPeople);
  EngineQuirks q;
  q.error_on_graph_and_complex_order = true;
  auto parsed = sparql::ParseQuery(
      "PREFIX ex: <http://ex.org/> SELECT ?x WHERE { GRAPH ?g "
      "{ ?x ex:name ?n } }",
      &dict_);
  ExecContext ctx;
  AlgebraEvaluator eval(dataset_, &dict_, &ctx, q);
  EXPECT_TRUE(eval.EvalQuery(*parsed).status().IsNotSupported());
}

TEST_F(AlgebraEvalTest, TimeoutPropagates) {
  Load(kPeople);
  auto parsed = sparql::ParseQuery(
      "PREFIX ex: <http://ex.org/> SELECT * WHERE "
      "{ ?a ?p1 ?b . ?c ?p2 ?d . ?e ?p3 ?f . ?g ?p4 ?h }",
      &dict_);
  ExecContext ctx;
  ctx.set_tuple_budget(50);
  AlgebraEvaluator eval(dataset_, &dict_, &ctx);
  EXPECT_TRUE(eval.EvalQuery(*parsed).status().IsResourceExhausted());
}

}  // namespace
}  // namespace sparqlog::eval
