// Incremental EDB maintenance (Engine::ApplyUpdate): delta publishing,
// DRed deletion, selective memo invalidation, and the HTTP update
// endpoint — proven by mutation-differential testing. Every mutated
// engine is compared against a freshly Load()ed engine over an
// identical dataset (same dictionary, so TermIds align): query results
// must match, and where ORDER BY pins a total order, match
// bit-identically. This is the maintenance analogue of the pipeline
// differential suite.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "core/engine.h"
#include "rdf/graph.h"
#include "rdf/turtle_parser.h"
#include "server/http_server.h"
#include "util/hash.h"

namespace sparqlog {
namespace {

using core::Engine;

constexpr const char* kPrefix = "PREFIX r: <http://r.org/>\n";

rdf::TermId Node(rdf::TermDictionary* dict, size_t i) {
  return dict->InternIri("http://r.org/n" + std::to_string(i));
}

rdf::TermId Pred(rdf::TermDictionary* dict, const std::string& name) {
  return dict->InternIri("http://r.org/" + name);
}

/// Copies every triple of `src` (default and named graphs) into `dst`.
/// Both datasets share one dictionary, so the copy is id-for-id.
void CopyDataset(const rdf::Dataset& src, rdf::Dataset* dst) {
  for (const rdf::Triple& t : src.default_graph().triples()) {
    dst->default_graph().Add(t);
  }
  for (const auto& [name, graph] : src.named_graphs()) {
    for (const rdf::Triple& t : graph.triples()) {
      dst->named_graph(name).Add(t);
    }
  }
}

/// Queries covering the shapes incremental maintenance can disturb:
/// plain joins, recursive closures (TC kernel strata), unions
/// (alternate derivations), negation, optional, and a fully ordered
/// projection for the bit-identity check.
constexpr const char* kDifferentialQueries[] = {
    "SELECT ?a ?b WHERE { ?a r:p ?b }",
    "SELECT ?a ?c WHERE { ?a r:p ?b . ?b r:q ?c }",
    "SELECT ?x ?y WHERE { ?x r:p+ ?y }",
    "SELECT ?x ?y WHERE { ?x r:p* ?y }",
    "SELECT ?x ?y WHERE { ?x (r:p|r:q) ?y }",
    "SELECT ?x ?y WHERE { ?x (r:p/r:q)+ ?y }",
    "SELECT * WHERE { ?a r:p ?b OPTIONAL { ?b r:q ?c } }",
    "SELECT ?a ?b WHERE { ?a r:p ?b MINUS { ?a r:q ?c } }",
    "ASK { ?a r:p ?b . ?b r:p ?a }",
};
constexpr const char* kOrderedQuery =
    "SELECT ?x ?y WHERE { ?x r:p+ ?y } ORDER BY ?x ?y";

/// Asserts that `engine` (which has been mutated through ApplyUpdate)
/// answers every differential query exactly like a cold engine built
/// over a copy of its current dataset.
void ExpectMatchesFreshLoad(Engine* engine, const rdf::Dataset& dataset,
                            rdf::TermDictionary* dict,
                            const Engine::Options& options,
                            const std::string& context) {
  rdf::Dataset reference_data(dict);
  CopyDataset(dataset, &reference_data);
  Engine reference(static_cast<const rdf::Dataset*>(&reference_data), dict,
                   options);
  ASSERT_TRUE(reference.Load().ok());

  for (const char* q : kDifferentialQueries) {
    auto got = engine->ExecuteText(kPrefix + std::string(q));
    auto want = reference.ExecuteText(kPrefix + std::string(q));
    ASSERT_TRUE(got.ok()) << context << "\n" << q << "\n"
                          << got.status().ToString();
    ASSERT_TRUE(want.ok()) << context << "\n" << q;
    EXPECT_EQ(got->result.ask_value, want->result.ask_value)
        << context << "\n" << q;
    EXPECT_EQ(got->result.SortedRows(), want->result.SortedRows())
        << context << "\nquery: " << q << "\nincremental ("
        << got->result.rows.size() << " rows):\n"
        << got->result.ToString(*dict, 30) << "\nfresh load ("
        << want->result.rows.size() << " rows):\n"
        << want->result.ToString(*dict, 30);
  }
  // ORDER BY over the full projection pins a total order — the
  // incremental engine must reproduce the recomputation bit-for-bit.
  auto got = engine->ExecuteText(kPrefix + std::string(kOrderedQuery));
  auto want = reference.ExecuteText(kPrefix + std::string(kOrderedQuery));
  ASSERT_TRUE(got.ok() && want.ok()) << context;
  EXPECT_TRUE(got->result.rows == want->result.rows)
      << context << "\nordered closure diverged:\nincremental:\n"
      << got->result.ToString(*dict, 30) << "\nfresh load:\n"
      << want->result.ToString(*dict, 30);
}

// ---------------------------------------------------------------------
// Satellite: a net-empty update is a true no-op — no generation bump,
// no EDB rebuild, no memo wipe, and warm queries keep hitting.
TEST(IncrementalNoOpTest, EmptyAndAlreadyPresentMutationsAreFree) {
  rdf::TermDictionary dict;
  rdf::Dataset dataset(&dict);
  rdf::TermId p = Pred(&dict, "p");
  dataset.default_graph().Add(Node(&dict, 0), p, Node(&dict, 1));
  dataset.default_graph().Add(Node(&dict, 1), p, Node(&dict, 2));

  Engine engine(&dataset, &dict);
  ASSERT_TRUE(engine.Load().ok());
  const uint64_t generation = dataset.Generation();

  const std::string query = kPrefix + std::string("SELECT ?x WHERE "
                                                  "{ ?x r:p+ ?y }");
  ASSERT_TRUE(engine.ExecuteText(query).ok());  // warm the stratum memo
  const uint64_t warm_hits = engine.stats().stratum_hits;

  // Empty mutation set.
  Engine::UpdateStats us;
  ASSERT_TRUE(engine.ApplyUpdate({}, {}, &us).ok());
  EXPECT_TRUE(us.noop);
  EXPECT_EQ(us.inserted, 0u);
  EXPECT_EQ(us.deleted, 0u);

  // Re-inserting present triples and deleting absent ones nets to zero;
  // so does deleting a present triple that the same call re-inserts.
  rdf::Triple present{Node(&dict, 0), p, Node(&dict, 1)};
  rdf::Triple absent{Node(&dict, 7), p, Node(&dict, 8)};
  ASSERT_TRUE(engine.ApplyUpdate({present}, {absent}, &us).ok());
  EXPECT_TRUE(us.noop);
  ASSERT_TRUE(engine.ApplyUpdate({present}, {present}, &us).ok());
  EXPECT_TRUE(us.noop) << "(G \\ D) ∪ I keeps a present triple present";

  EXPECT_EQ(dataset.Generation(), generation) << "no-op bumped the dataset";
  EXPECT_EQ(engine.stats().update_noops, 3u);
  EXPECT_EQ(engine.stats().invalidations, 0u) << "no-op rebuilt the EDB";

  // The memo survived: the warm query hits again instead of re-deriving.
  ASSERT_TRUE(engine.ExecuteText(query).ok());
  EXPECT_GT(engine.stats().stratum_hits, warm_hits)
      << "no-op update invalidated the stratum memo";

  // Insert and delete of the same ABSENT triple is not a no-op: under
  // (G \ D) ∪ I the insert wins and the triple becomes present.
  rdf::Triple fresh{Node(&dict, 8), p, Node(&dict, 9)};
  ASSERT_TRUE(engine.ApplyUpdate({fresh}, {fresh}, &us).ok());
  EXPECT_FALSE(us.noop);
  EXPECT_EQ(us.inserted, 1u);
  EXPECT_TRUE(dataset.default_graph().Contains(fresh));
}

// ---------------------------------------------------------------------
// Insert-only updates publish incrementally and match a fresh load.
TEST(IncrementalUpdateTest, InsertOnlyMatchesFreshLoad) {
  rdf::TermDictionary dict;
  rdf::Dataset dataset(&dict);
  rdf::TermId p = Pred(&dict, "p");
  rdf::TermId q = Pred(&dict, "q");
  for (size_t i = 0; i < 4; ++i) {
    dataset.default_graph().Add(Node(&dict, i), p, Node(&dict, i + 1));
  }
  Engine::Options options;
  Engine engine(&dataset, &dict, options);
  ASSERT_TRUE(engine.Load().ok());
  ASSERT_TRUE(engine.ExecuteText(kPrefix +
                                 std::string("SELECT ?x ?y WHERE "
                                             "{ ?x r:p+ ?y }"))
                  .ok());

  Engine::UpdateStats us;
  std::vector<rdf::Triple> ins = {
      {Node(&dict, 4), p, Node(&dict, 5)},   // extends the chain
      {Node(&dict, 0), q, Node(&dict, 5)},   // new predicate edge
      {Node(&dict, 9), p, Node(&dict, 9)},   // self-loop on a new node
  };
  ASSERT_TRUE(engine.ApplyUpdate(ins, {}, &us).ok());
  EXPECT_TRUE(us.incremental);
  EXPECT_EQ(us.inserted, 3u);
  EXPECT_FALSE(us.noop);
  ExpectMatchesFreshLoad(&engine, dataset, &dict, options, "insert-only");
  EXPECT_GT(engine.stats().strata_incremental, 0u)
      << "insertion delta should have run the incremental path";
}

// Deleting one support of a doubly-derived tuple: DRed over-deletes it,
// then the re-derivation pass restores it through the alternate rule.
TEST(IncrementalUpdateTest, DeletionKeepsAlternatelySupportedTuples) {
  rdf::TermDictionary dict;
  rdf::Dataset dataset(&dict);
  rdf::TermId p = Pred(&dict, "p");
  rdf::TermId q = Pred(&dict, "q");
  // (n0, n1) is reachable through r:p AND through r:q; dropping the p
  // edge must keep the union-path solution alive via q.
  dataset.default_graph().Add(Node(&dict, 0), p, Node(&dict, 1));
  dataset.default_graph().Add(Node(&dict, 0), q, Node(&dict, 1));
  dataset.default_graph().Add(Node(&dict, 1), p, Node(&dict, 2));

  Engine::Options options;
  Engine engine(&dataset, &dict, options);
  ASSERT_TRUE(engine.Load().ok());
  const std::string union_q =
      kPrefix + std::string("SELECT ?x ?y WHERE { ?x (r:p|r:q)+ ?y }");
  ASSERT_TRUE(engine.ExecuteText(union_q).ok());  // snapshot the stratum

  Engine::UpdateStats us;
  ASSERT_TRUE(
      engine.ApplyUpdate({}, {{Node(&dict, 0), p, Node(&dict, 1)}}, &us)
          .ok());
  EXPECT_TRUE(us.incremental);
  EXPECT_EQ(us.deleted, 1u);

  auto got = engine.ExecuteText(union_q);
  ASSERT_TRUE(got.ok());
  bool found = false;
  for (const auto& row : got->result.rows) {
    if (row[0] == Node(&dict, 0) && row[1] == Node(&dict, 1)) found = true;
  }
  EXPECT_TRUE(found) << "alternate support lost under DRed:\n"
                     << got->result.ToString(dict, 30);
  ExpectMatchesFreshLoad(&engine, dataset, &dict, options, "alt-support");
}

// Deletions inside cycles and self-loops — the worst case for deletion
// propagation (every closure tuple transitively touches the edge) and
// the case that routes TC-shaped strata to the full-recompute fallback.
TEST(IncrementalUpdateTest, CyclicClosureDeletions) {
  Engine::Options options;
  for (bool kernel : {true, false}) {
    options.fixpoint.tc_kernel = kernel;
    rdf::TermDictionary dict;
    rdf::Dataset dataset(&dict);
    rdf::TermId p = Pred(&dict, "p");
    // A 4-cycle with a self-loop and a tail.
    for (size_t i = 0; i < 4; ++i) {
      dataset.default_graph().Add(Node(&dict, i), p, Node(&dict, (i + 1) % 4));
    }
    dataset.default_graph().Add(Node(&dict, 2), p, Node(&dict, 2));
    dataset.default_graph().Add(Node(&dict, 3), p, Node(&dict, 5));

    Engine engine(&dataset, &dict, options);
    ASSERT_TRUE(engine.Load().ok());
    ASSERT_TRUE(engine
                    .ExecuteText(kPrefix + std::string("SELECT ?x ?y WHERE "
                                                       "{ ?x r:p+ ?y }"))
                    .ok());

    // Break the cycle, drop the self-loop, keep the tail.
    Engine::UpdateStats us;
    ASSERT_TRUE(engine
                    .ApplyUpdate({}, {{Node(&dict, 1), p, Node(&dict, 2)},
                                      {Node(&dict, 2), p, Node(&dict, 2)}},
                                 &us)
                    .ok());
    EXPECT_TRUE(us.incremental);
    ExpectMatchesFreshLoad(&engine, dataset, &dict, options,
                           kernel ? "cycle-del tc_kernel=on"
                                  : "cycle-del tc_kernel=off");
  }
}

// ---------------------------------------------------------------------
// Satellite: the randomized mutation-sequence fuzzer, swept across
// thread counts and with the planner/caches ablated. Each step applies
// a random insert/delete mix, then compares against a fresh load.
class MutationFuzzTest
    : public ::testing::TestWithParam<std::tuple<uint32_t, bool>> {};

TEST_P(MutationFuzzTest, RandomMutationSequencesMatchFreshLoad) {
  auto [threads, ablated] = GetParam();
  Engine::Options options;
  options.parallelism.num_threads = threads;
  if (ablated) {
    // The differential must hold with every acceleration layer off:
    // without the stratum memo there is no old snapshot, so each query
    // recomputes — updates must still publish a correct EDB.
    options.planner.join_planner = false;
    options.caching.program_cache = false;
    options.caching.stratum_memo = false;
  }

  for (uint64_t seed : {11u, 12u}) {
    Rng rng(seed + threads * 100 + (ablated ? 7 : 0));
    rdf::TermDictionary dict;
    rdf::Dataset dataset(&dict);
    rdf::TermId preds[2] = {Pred(&dict, "p"), Pred(&dict, "q")};
    constexpr size_t kNodes = 8;
    for (size_t i = 0; i < 24; ++i) {
      dataset.default_graph().Add(Node(&dict, rng.Uniform(kNodes)),
                                  preds[rng.Uniform(2)],
                                  Node(&dict, rng.Uniform(kNodes)));
    }
    // A static named graph: updates target the default graph only and
    // must never disturb named-graph contents.
    rdf::TermId g = dict.InternIri("http://r.org/g1");
    dataset.named_graph(g).Add(Node(&dict, 0), preds[0], Node(&dict, 1));

    Engine engine(&dataset, &dict, options);
    ASSERT_TRUE(engine.Load().ok());

    auto random_triple = [&]() {
      return rdf::Triple{Node(&dict, rng.Uniform(kNodes)),
                         preds[rng.Uniform(2)],
                         Node(&dict, rng.Uniform(kNodes))};
    };
    size_t effective_updates = 0;
    for (int step = 0; step < 10; ++step) {
      std::vector<rdf::Triple> ins;
      std::vector<rdf::Triple> del;
      for (size_t i = rng.Uniform(4); i > 0; --i) ins.push_back(random_triple());
      const auto& current = dataset.default_graph().triples();
      for (size_t i = rng.Uniform(4); i > 0 && !current.empty(); --i) {
        // Mostly delete existing triples; sometimes absent ones (which
        // must net out) or a triple also being inserted this step.
        if (rng.Chance(0.7)) {
          del.push_back(current[rng.Uniform(current.size())]);
        } else if (!ins.empty() && rng.Chance(0.5)) {
          del.push_back(ins[rng.Uniform(ins.size())]);
        } else {
          del.push_back(random_triple());
        }
      }
      Engine::UpdateStats us;
      ASSERT_TRUE(engine.ApplyUpdate(ins, del, &us).ok());
      if (!us.noop) ++effective_updates;
      // Interleave queries between mutations so the memo holds warm
      // snapshots for the next step's delta to re-derive from.
      ExpectMatchesFreshLoad(&engine, dataset, &dict, options,
                             "fuzz seed " + std::to_string(seed) + " step " +
                                 std::to_string(step) + " threads " +
                                 std::to_string(threads) +
                                 (ablated ? " ablated" : ""));
    }
    EXPECT_EQ(engine.stats().updates, 10u);
    EXPECT_EQ(engine.stats().update_noops, 10u - effective_updates);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MutationFuzzTest,
    ::testing::Combine(::testing::Values(1u, 2u, 8u),
                       ::testing::Values(false, true)),
    [](const ::testing::TestParamInfo<MutationFuzzTest::ParamType>& info) {
      return "threads" + std::to_string(std::get<0>(info.param)) +
             (std::get<1>(info.param) ? "_ablated" : "_accelerated");
    });

// ---------------------------------------------------------------------
// Satellite: a budget trip mid-query after an update must leave the
// engine consistent — re-derivation is per-query, so a failed query
// publishes nothing and the next unbounded query sees correct results.
TEST(IncrementalUpdateTest, BudgetTripAfterUpdateLeavesEngineConsistent) {
  rdf::TermDictionary dict;
  rdf::Dataset dataset(&dict);
  rdf::TermId p = Pred(&dict, "p");
  for (size_t i = 0; i < 12; ++i) {
    dataset.default_graph().Add(Node(&dict, i), p, Node(&dict, i + 1));
  }
  Engine::Options options;
  Engine engine(&dataset, &dict, options);
  ASSERT_TRUE(engine.Load().ok());
  const std::string closure =
      kPrefix + std::string("SELECT ?x ?y WHERE { ?x r:p+ ?y }");
  ASSERT_TRUE(engine.ExecuteText(closure).ok());

  // Mutate (a deletion, so the lazy re-derivation includes DRed work),
  // then trip the tuple budget on the very query that would re-derive.
  Engine::UpdateStats us;
  ASSERT_TRUE(engine
                  .ApplyUpdate({{Node(&dict, 12), p, Node(&dict, 13)}},
                               {{Node(&dict, 5), p, Node(&dict, 6)}}, &us)
                  .ok());
  Engine::QueryLimits tight;
  tight.tuple_budget = 1;
  auto tripped = engine.ExecuteText(closure, tight);
  EXPECT_FALSE(tripped.ok()) << "a 1-tuple budget should trip on a closure";

  ExpectMatchesFreshLoad(&engine, dataset, &dict, options, "post-budget-trip");
}

// Disabling the incremental path must still publish updates correctly
// (full-rebuild branch) and report them as non-incremental.
TEST(IncrementalUpdateTest, FullRebuildFallbackWhenDisabled) {
  rdf::TermDictionary dict;
  rdf::Dataset dataset(&dict);
  rdf::TermId p = Pred(&dict, "p");
  dataset.default_graph().Add(Node(&dict, 0), p, Node(&dict, 1));
  Engine::Options options;
  options.update.incremental = false;
  Engine engine(&dataset, &dict, options);
  ASSERT_TRUE(engine.Load().ok());

  Engine::UpdateStats us;
  ASSERT_TRUE(
      engine.ApplyUpdate({{Node(&dict, 1), p, Node(&dict, 2)}}, {}, &us).ok());
  EXPECT_FALSE(us.incremental);
  EXPECT_EQ(engine.stats().invalidations, 1u);
  ExpectMatchesFreshLoad(&engine, dataset, &dict, options, "rebuild-path");
}

// A microscopic over-delete bound forces the DRed fallback (stratum
// recomputed from scratch); results must be unaffected.
TEST(IncrementalUpdateTest, OverdeleteBoundFallsBackToRecompute) {
  // bound 1 trips on the raw input delta (pre-DRed eligibility bail);
  // bound 4 admits the delta but trips mid-cascade when unwinding the
  // chain head over-deletes the whole closure. Both must recompute.
  for (uint64_t bound : {uint64_t(1), uint64_t(4)}) {
    rdf::TermDictionary dict;
    rdf::Dataset dataset(&dict);
    rdf::TermId p = Pred(&dict, "p");
    for (size_t i = 0; i < 8; ++i) {
      dataset.default_graph().Add(Node(&dict, i), p, Node(&dict, i + 1));
    }
    Engine::Options options;
    options.update.max_overdelete = bound;
    options.fixpoint.tc_kernel = false;  // generic DRed, not the TC route
    Engine engine(&dataset, &dict, options);
    ASSERT_TRUE(engine.Load().ok());
    const std::string closure =
        kPrefix + std::string("SELECT ?x ?y WHERE { ?x r:p+ ?y }");
    ASSERT_TRUE(engine.ExecuteText(closure).ok());

    Engine::UpdateStats us;
    ASSERT_TRUE(
        engine.ApplyUpdate({}, {{Node(&dict, 0), p, Node(&dict, 1)}}, &us)
            .ok());
    EXPECT_TRUE(us.incremental);
    ASSERT_TRUE(engine.ExecuteText(closure).ok());
    EXPECT_GT(engine.stats().incremental_fallbacks, 0u)
        << "bound " << bound
        << ": deleting the chain head over-deletes the whole closure; the "
           "bound must have tripped";
    ExpectMatchesFreshLoad(&engine, dataset, &dict, options,
                           "overdelete-bound " + std::to_string(bound));
  }
}

// ---------------------------------------------------------------------
// Satellite: concurrent serving under maintenance. Eight readers
// hammer Execute while one writer applies updates; run under TSan via
// the CI thread-race job. Readers must only ever observe fully
// published states — each result is one of the datasets the writer
// published, never a torn mix.
TEST(IncrementalConcurrencyTest, ReadersAndWriterRaceCleanly) {
  rdf::TermDictionary dict;
  rdf::Dataset dataset(&dict);
  rdf::TermId p = Pred(&dict, "p");
  for (size_t i = 0; i < 6; ++i) {
    dataset.default_graph().Add(Node(&dict, i), p, Node(&dict, i + 1));
  }
  Engine engine(&dataset, &dict);
  ASSERT_TRUE(engine.Load().ok());
  const std::string closure =
      kPrefix + std::string("SELECT ?x ?y WHERE { ?x r:p+ ?y }");

  std::atomic<bool> done{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> readers;
  readers.reserve(8);
  for (int r = 0; r < 8; ++r) {
    // Bounded iterations so the race window is real but the test stays
    // fast (free-running readers would starve the writer's exclusive
    // publish lock for the whole toggling loop).
    readers.emplace_back([&]() {
      for (int i = 0; i < 25; ++i) {
        auto result = engine.ExecuteText(closure);
        if (!result.ok()) failures.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  // The writer toggles one edge on and off until the readers finish:
  // every publish flips between the chain and the closed cycle.
  rdf::Triple edge{Node(&dict, 6), p, Node(&dict, 0)};  // closes a cycle
  std::atomic<int> published{0};
  std::thread writer([&]() {
    for (int i = 0; !done.load(std::memory_order_acquire); ++i) {
      Status st = (i % 2 == 0) ? engine.ApplyUpdate({edge}, {})
                               : engine.ApplyUpdate({}, {edge});
      EXPECT_TRUE(st.ok()) << st.ToString();
      published.fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (auto& t : readers) t.join();
  done.store(true, std::memory_order_release);
  writer.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(published.load(), 0);
  ExpectMatchesFreshLoad(&engine, dataset, &dict, Engine::Options(),
                         "post-hammer");
}

// ---------------------------------------------------------------------
// The HTTP surface: POST /update on a mutable server, read-only
// rejection, and the new stats keys. Routed without sockets.
TEST(IncrementalHttpTest, UpdateEndpointAppliesTurtleDeltas) {
  rdf::TermDictionary dict;
  rdf::Dataset dataset(&dict);
  ASSERT_TRUE(rdf::ParseTurtle(R"(
    @prefix r: <http://r.org/> .
    r:n0 r:p r:n1 .
    r:n1 r:p r:n2 .
  )",
                               &dataset)
                  .ok());
  Engine engine(&dataset, &dict);
  ASSERT_TRUE(engine.Load().ok());
  server::HttpServer http(&engine, &dict);

  auto count_rows = [&]() {
    auto result = engine.ExecuteText(
        kPrefix + std::string("SELECT ?x ?y WHERE { ?x r:p+ ?y }"));
    EXPECT_TRUE(result.ok());
    return result.ok() ? result->result.rows.size() : size_t(0);
  };
  const size_t before = count_rows();

  server::HttpRequest insert;
  insert.method = "POST";
  insert.path = "/update";
  insert.body = "@prefix r: <http://r.org/> . r:n2 r:p r:n3 .";
  auto response = http.Route(insert);
  EXPECT_EQ(response.status, 200) << response.body;
  EXPECT_NE(response.body.find("\"inserted\":1"), std::string::npos)
      << response.body;
  EXPECT_NE(response.body.find("\"incremental\":true"), std::string::npos)
      << response.body;
  EXPECT_GT(count_rows(), before) << "insert not visible to queries";

  server::HttpRequest remove = insert;
  remove.query = "op=delete";
  response = http.Route(remove);
  EXPECT_EQ(response.status, 200) << response.body;
  EXPECT_NE(response.body.find("\"deleted\":1"), std::string::npos)
      << response.body;
  EXPECT_EQ(count_rows(), before) << "delete did not restore the state";

  // Idempotent re-delete nets to a no-op.
  response = http.Route(remove);
  EXPECT_EQ(response.status, 200);
  EXPECT_NE(response.body.find("\"noop\":true"), std::string::npos)
      << response.body;

  // Guard rails: bad op, missing body, wrong method.
  server::HttpRequest bad = insert;
  bad.query = "op=upsert";
  EXPECT_EQ(http.Route(bad).status, 400);
  server::HttpRequest empty;
  empty.method = "POST";
  empty.path = "/update";
  EXPECT_EQ(http.Route(empty).status, 400);
  server::HttpRequest get = insert;
  get.method = "GET";
  EXPECT_EQ(http.Route(get).status, 405);

  // The stats payload carries the maintenance counters.
  server::HttpRequest stats;
  stats.method = "GET";
  stats.path = "/stats";
  auto stats_response = http.Route(stats);
  EXPECT_EQ(stats_response.status, 200);
  EXPECT_NE(stats_response.body.find("\"updates\":3"), std::string::npos)
      << stats_response.body;
  EXPECT_NE(stats_response.body.find("\"update_noops\":1"), std::string::npos)
      << stats_response.body;
}

TEST(IncrementalHttpTest, ReadOnlyServerRejectsUpdates) {
  rdf::TermDictionary dict;
  rdf::Dataset dataset(&dict);
  dataset.default_graph().Add(Node(&dict, 0), Pred(&dict, "p"),
                              Node(&dict, 1));
  Engine engine(&dataset, &dict);
  ASSERT_TRUE(engine.Load().ok());
  // Const-engine constructor: the read-only surface of PR 7.
  server::HttpServer http(static_cast<const Engine*>(&engine), &dict);

  server::HttpRequest request;
  request.method = "POST";
  request.path = "/update";
  request.body = "@prefix r: <http://r.org/> . r:a r:p r:b .";
  auto response = http.Route(request);
  EXPECT_EQ(response.status, 403);
  EXPECT_NE(response.body.find("read_only"), std::string::npos)
      << response.body;
}

}  // namespace
}  // namespace sparqlog
