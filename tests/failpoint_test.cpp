// Unit tests for the deterministic fault-injection registry: spec
// parsing, trigger arithmetic, env-list arming, and parked specs for
// sites that register after activation.

#include "util/failpoint.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace sparqlog::util {
namespace {

SPARQLOG_FAILPOINT_DEFINE(g_fp_alpha, "test.fp.alpha");
SPARQLOG_FAILPOINT_DEFINE(g_fp_beta, "test.fp.beta");

Status Guarded(FailpointSite& site) {
  SPARQLOG_FAILPOINT(site);
  return Status::OK();
}

class FailpointTest : public ::testing::Test {
 protected:
  void TearDown() override { Failpoints::Instance().DisarmAll(); }
};

TEST_F(FailpointTest, DisarmedSiteIsTransparent) {
  // fired() accumulates for the process lifetime, so tests assert deltas.
  uint64_t before = g_fp_alpha.fired();
  EXPECT_FALSE(g_fp_alpha.armed());
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(Guarded(g_fp_alpha).ok());
  EXPECT_EQ(g_fp_alpha.fired() - before, 0u);
}

TEST_F(FailpointTest, ErrorActionInjectsTypedStatus) {
  ASSERT_TRUE(Failpoints::Instance().Arm("test.fp.alpha", "error").ok());
  Status s = Guarded(g_fp_alpha);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInternal);
  EXPECT_NE(s.message().find("test.fp.alpha"), std::string::npos) << s.ToString();

  ASSERT_TRUE(
      Failpoints::Instance().Arm("test.fp.alpha", "error(unavailable)").ok());
  EXPECT_EQ(Guarded(g_fp_alpha).code(), StatusCode::kUnavailable);
  ASSERT_TRUE(
      Failpoints::Instance().Arm("test.fp.alpha", "error(parse_error)").ok());
  EXPECT_EQ(Guarded(g_fp_alpha).code(), StatusCode::kParseError);
}

TEST_F(FailpointTest, OnceFiresExactlyOnceThenDisarms) {
  uint64_t before = g_fp_alpha.fired();
  ASSERT_TRUE(Failpoints::Instance().Arm("test.fp.alpha", "once:error").ok());
  EXPECT_FALSE(Guarded(g_fp_alpha).ok());
  EXPECT_FALSE(g_fp_alpha.armed());
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(Guarded(g_fp_alpha).ok());
  EXPECT_EQ(g_fp_alpha.fired() - before, 1u);
}

TEST_F(FailpointTest, AfterSkipsCountdownThenFiresForever) {
  uint64_t before = g_fp_alpha.fired();
  ASSERT_TRUE(
      Failpoints::Instance().Arm("test.fp.alpha", "after(3):error").ok());
  for (int i = 0; i < 3; ++i) EXPECT_TRUE(Guarded(g_fp_alpha).ok()) << i;
  for (int i = 0; i < 5; ++i) EXPECT_FALSE(Guarded(g_fp_alpha).ok()) << i;
  EXPECT_EQ(g_fp_alpha.fired() - before, 5u);
}

TEST_F(FailpointTest, EveryNthIsDeterministicAndSeedShiftsPhase) {
  ASSERT_TRUE(
      Failpoints::Instance().Arm("test.fp.alpha", "every(3):error").ok());
  std::vector<bool> pattern;
  for (int i = 0; i < 9; ++i) pattern.push_back(!Guarded(g_fp_alpha).ok());
  EXPECT_EQ(pattern, std::vector<bool>(
                         {true, false, false, true, false, false, true, false,
                          false}));

  // Re-arming resets hit counting; a seed of 2 shifts the firing phase.
  ASSERT_TRUE(
      Failpoints::Instance().Arm("test.fp.alpha", "every(3,2):error").ok());
  pattern.clear();
  for (int i = 0; i < 6; ++i) pattern.push_back(!Guarded(g_fp_alpha).ok());
  EXPECT_EQ(pattern,
            std::vector<bool>({false, true, false, false, true, false}));
}

TEST_F(FailpointTest, DelayActionSleepsAndContinues) {
  uint64_t before = g_fp_alpha.fired();
  ASSERT_TRUE(
      Failpoints::Instance().Arm("test.fp.alpha", "once:delay(10)").ok());
  auto start = std::chrono::steady_clock::now();
  EXPECT_TRUE(Guarded(g_fp_alpha).ok());
  auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_GE(elapsed, std::chrono::milliseconds(10));
  EXPECT_EQ(g_fp_alpha.fired() - before, 1u);
}

TEST_F(FailpointTest, OffSpecDisarms) {
  ASSERT_TRUE(Failpoints::Instance().Arm("test.fp.alpha", "error").ok());
  ASSERT_TRUE(g_fp_alpha.armed());
  ASSERT_TRUE(Failpoints::Instance().Arm("test.fp.alpha", "off").ok());
  EXPECT_FALSE(g_fp_alpha.armed());
  EXPECT_TRUE(Guarded(g_fp_alpha).ok());
}

TEST_F(FailpointTest, MalformedSpecsAreRejected) {
  auto& fps = Failpoints::Instance();
  EXPECT_FALSE(fps.Arm("test.fp.alpha", "").ok());
  EXPECT_FALSE(fps.Arm("test.fp.alpha", "boom").ok());
  EXPECT_FALSE(fps.Arm("test.fp.alpha", "error(bogus_code)").ok());
  EXPECT_FALSE(fps.Arm("test.fp.alpha", "every(0):error").ok());
  EXPECT_FALSE(fps.Arm("test.fp.alpha", "after(x):error").ok());
  EXPECT_FALSE(fps.Arm("test.fp.alpha", "sometimes:error").ok());
  EXPECT_FALSE(fps.Arm("test.fp.alpha", "delay(soon)").ok());
  EXPECT_FALSE(g_fp_alpha.armed());
}

TEST_F(FailpointTest, ArmFromListArmsMultipleSites) {
  ASSERT_TRUE(Failpoints::Instance()
                  .ArmFromList(
                      "test.fp.alpha=error(timeout);test.fp.beta=after(1):error")
                  .ok());
  EXPECT_EQ(Guarded(g_fp_alpha).code(), StatusCode::kTimeout);
  EXPECT_TRUE(Guarded(g_fp_beta).ok());
  EXPECT_FALSE(Guarded(g_fp_beta).ok());
}

TEST_F(FailpointTest, ArmFromListRejectsMalformedEntries) {
  EXPECT_FALSE(Failpoints::Instance().ArmFromList("no_equals_sign").ok());
  // Entries before the bad one still arm (env semantics).
  EXPECT_FALSE(Failpoints::Instance()
                   .ArmFromList("test.fp.alpha=error;test.fp.beta=bogus")
                   .ok());
  EXPECT_TRUE(g_fp_alpha.armed());
  EXPECT_FALSE(g_fp_beta.armed());
}

TEST_F(FailpointTest, UnknownSiteParksSpecUntilRegistration) {
  auto& fps = Failpoints::Instance();
  ASSERT_EQ(fps.Find("test.fp.late"), nullptr);
  ASSERT_TRUE(fps.Arm("test.fp.late", "error(unavailable)").ok());

  // The site registers after the spec was parked — e.g. its translation
  // unit initialized after the env variable was parsed.
  static SPARQLOG_FAILPOINT_DEFINE(late_site, "test.fp.late");
  EXPECT_TRUE(late_site.armed());
  EXPECT_EQ(Guarded(late_site).code(), StatusCode::kUnavailable);
}

TEST_F(FailpointTest, ParkedSpecsAreValidatedEagerly) {
  EXPECT_FALSE(Failpoints::Instance().Arm("test.fp.never", "garbage").ok());
  EXPECT_EQ(Failpoints::Instance().Find("test.fp.never"), nullptr);
}

TEST_F(FailpointTest, SitesEnumerationIsSortedAndComplete) {
  auto names = Failpoints::Instance().Sites();
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  auto has = [&](const char* n) {
    return std::find(names.begin(), names.end(), n) != names.end();
  };
  EXPECT_TRUE(has("test.fp.alpha"));
  EXPECT_TRUE(has("test.fp.beta"));
}

TEST_F(FailpointTest, ConcurrentChecksWhileArmingAreSafe) {
  // TSan-facing: hammer Check() from several threads while the main
  // thread arms and disarms. No assertion beyond "no race, no crash,
  // every returned status is OK or the injected code".
  uint64_t before = g_fp_beta.fired();
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  std::atomic<uint64_t> injected{0};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        Status s = Guarded(g_fp_beta);
        if (!s.ok()) {
          ASSERT_EQ(s.code(), StatusCode::kUnavailable);
          injected.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(Failpoints::Instance()
                    .Arm("test.fp.beta", "every(2):error(unavailable)")
                    .ok());
    Failpoints::Instance().Disarm("test.fp.beta");
  }
  stop.store(true);
  for (auto& th : threads) th.join();
  EXPECT_EQ(g_fp_beta.fired() - before, injected.load());
}

}  // namespace
}  // namespace sparqlog::util
