// Unit tests for the SPARQL front end: lexer, parser (all supported
// constructs of Table 1 plus rejection of the unsupported ones), the
// join-order optimizer, and the feature analyzer behind Table 2.

#include <gtest/gtest.h>

#include "rdf/dictionary.h"
#include "sparql/ast.h"
#include "sparql/features.h"
#include "sparql/lexer.h"
#include "sparql/optimizer.h"
#include "sparql/parser.h"
#include "sparql/printer.h"

namespace sparqlog::sparql {
namespace {

class ParserTest : public ::testing::Test {
 protected:
  Result<Query> Parse(const std::string& text) {
    return ParseQuery("PREFIX ex: <http://ex.org/>\n" + text, &dict_);
  }
  Query MustParse(const std::string& text) {
    auto q = Parse(text);
    EXPECT_TRUE(q.ok()) << q.status().ToString();
    return std::move(q).ValueOrDie();
  }
  rdf::TermDictionary dict_;
};

TEST(LexerTest, TokenKinds) {
  auto tokens =
      Tokenize("SELECT ?x $y <http://a> ex:b _:c \"str\"@en 12 3.5 1e2 "
               "{ } != <= && || ^^ a")
          .ValueOrDie();
  ASSERT_GE(tokens.size(), 18u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kName);
  EXPECT_EQ(tokens[1].kind, TokenKind::kVar);
  EXPECT_EQ(tokens[1].text, "x");
  EXPECT_EQ(tokens[2].kind, TokenKind::kVar);
  EXPECT_EQ(tokens[3].kind, TokenKind::kIri);
  EXPECT_EQ(tokens[4].kind, TokenKind::kPName);
  EXPECT_EQ(tokens[5].kind, TokenKind::kBlank);
  EXPECT_EQ(tokens[6].kind, TokenKind::kString);
  EXPECT_EQ(tokens[7].kind, TokenKind::kLangTag);
  EXPECT_EQ(tokens[8].kind, TokenKind::kInteger);
  EXPECT_EQ(tokens[9].kind, TokenKind::kDecimal);
  EXPECT_EQ(tokens[10].kind, TokenKind::kDouble);
}

TEST(LexerTest, IriVersusLessThan) {
  auto tokens = Tokenize("FILTER (?x < 5)").ValueOrDie();
  bool saw_lt = false;
  for (const auto& t : tokens) {
    if (t.IsPunct('<')) saw_lt = true;
    EXPECT_NE(t.kind, TokenKind::kIri);
  }
  EXPECT_TRUE(saw_lt);
  auto tokens2 = Tokenize("?x <http://p> ?y").ValueOrDie();
  EXPECT_EQ(tokens2[1].kind, TokenKind::kIri);
}

TEST(LexerTest, CommentsSkipped) {
  auto tokens = Tokenize("SELECT # comment ?notavar\n ?x").ValueOrDie();
  EXPECT_EQ(tokens[1].kind, TokenKind::kVar);
  EXPECT_EQ(tokens[1].text, "x");
}

TEST_F(ParserTest, BasicSelect) {
  Query q = MustParse("SELECT ?s ?o WHERE { ?s ex:p ?o . }");
  EXPECT_EQ(q.form, QueryForm::kSelect);
  EXPECT_FALSE(q.distinct);
  ASSERT_EQ(q.select.size(), 2u);
  EXPECT_EQ(q.select[0].var, "s");
  ASSERT_EQ(q.where->kind, PatternKind::kTriple);
}

TEST_F(ParserTest, SelectStarAndDistinct) {
  Query q = MustParse("SELECT DISTINCT * WHERE { ?s ?p ?o }");
  EXPECT_TRUE(q.distinct);
  EXPECT_TRUE(q.select_all);
  EXPECT_EQ(q.ProjectedVars(), (std::vector<std::string>{"o", "p", "s"}));
}

TEST_F(ParserTest, PredicateObjectListsDesugarToJoins) {
  Query q = MustParse("SELECT * WHERE { ?s ex:p ?a , ?b ; ex:q ?c . }");
  // Three triples folded into two joins.
  ASSERT_EQ(q.where->kind, PatternKind::kJoin);
  EXPECT_EQ(q.where->Vars(),
            (std::vector<std::string>{"a", "b", "c", "s"}));
}

TEST_F(ParserTest, OptionalUnionMinusGraphFilter) {
  Query q = MustParse(R"(
    SELECT ?s WHERE {
      { ?s ex:a ?x } UNION { ?s ex:b ?x }
      OPTIONAL { ?s ex:c ?y }
      MINUS { ?s ex:d ?z }
      GRAPH ?g { ?s ex:e ?w }
      FILTER (?x > 5)
    })");
  // Filters hoist to the top of the group.
  ASSERT_EQ(q.where->kind, PatternKind::kFilter);
  const Pattern* below = q.where->left.get();
  ASSERT_EQ(below->kind, PatternKind::kJoin);  // graph joined last
  EXPECT_EQ(below->right->kind, PatternKind::kGraph);
  EXPECT_EQ(below->left->kind, PatternKind::kMinus);
  EXPECT_EQ(below->left->left->kind, PatternKind::kOptional);
  EXPECT_EQ(below->left->left->left->kind, PatternKind::kUnion);
}

TEST_F(ParserTest, OptionalFilterStaysInsideOptional) {
  Query q = MustParse(
      "SELECT * WHERE { ?s ex:p ?x OPTIONAL { ?s ex:q ?y FILTER(?y > ?x) } }");
  ASSERT_EQ(q.where->kind, PatternKind::kOptional);
  EXPECT_EQ(q.where->right->kind, PatternKind::kFilter);
}

TEST_F(ParserTest, PropertyPathForms) {
  struct Case {
    const char* text;
    PathKind kind;
  };
  const Case cases[] = {
      {"ex:p|ex:q", PathKind::kAlternative},
      {"ex:p/ex:q", PathKind::kSequence},
      {"^ex:p", PathKind::kInverse},
      {"ex:p?", PathKind::kZeroOrOne},
      {"ex:p+", PathKind::kOneOrMore},
      {"ex:p*", PathKind::kZeroOrMore},
      {"!ex:p", PathKind::kNegated},
      {"!(ex:p|^ex:q)", PathKind::kNegated},
      {"ex:p{3}", PathKind::kExactly},
      {"ex:p{2,}", PathKind::kNOrMore},
      {"ex:p{0,3}", PathKind::kUpTo},
      {"(ex:p/ex:q)+", PathKind::kOneOrMore},
  };
  for (const Case& c : cases) {
    Query q = MustParse(std::string("SELECT * WHERE { ?s ") + c.text +
                        " ?o }");
    ASSERT_EQ(q.where->kind, PatternKind::kPath) << c.text;
    EXPECT_EQ(q.where->path->kind, c.kind) << c.text;
  }
  // A plain IRI path is a triple pattern, not a path pattern.
  Query q = MustParse("SELECT * WHERE { ?s ex:p ?o }");
  EXPECT_EQ(q.where->kind, PatternKind::kTriple);
}

TEST_F(ParserTest, CountedRangeDesugars) {
  Query q = MustParse("SELECT * WHERE { ?s ex:p{2,4} ?o }");
  ASSERT_EQ(q.where->kind, PatternKind::kPath);
  // {2,4} => p{2} / p{0,2}.
  ASSERT_EQ(q.where->path->kind, PathKind::kSequence);
  EXPECT_EQ(q.where->path->left->kind, PathKind::kExactly);
  EXPECT_EQ(q.where->path->left->count, 2u);
  EXPECT_EQ(q.where->path->right->kind, PathKind::kUpTo);
  EXPECT_EQ(q.where->path->right->count, 2u);
}

TEST_F(ParserTest, NegatedPropertySetMembers) {
  Query q = MustParse("SELECT * WHERE { ?s !(ex:p|^ex:q|ex:r) ?o }");
  ASSERT_EQ(q.where->path->kind, PathKind::kNegated);
  EXPECT_EQ(q.where->path->neg_fwd.size(), 2u);
  EXPECT_EQ(q.where->path->neg_bwd.size(), 1u);
}

TEST_F(ParserTest, Expressions) {
  Query q = MustParse(R"(
    SELECT ?x WHERE {
      ?s ex:p ?x .
      FILTER (!BOUND(?y) && (?x + 2 * 3 >= 7 || regex(STR(?x), "a.c", "i")))
    })");
  ASSERT_EQ(q.where->kind, PatternKind::kFilter);
  const Expr& e = *q.where->condition;
  EXPECT_EQ(e.kind, ExprKind::kAnd);
  EXPECT_EQ(e.args[0]->kind, ExprKind::kNot);
  EXPECT_EQ(e.args[1]->kind, ExprKind::kOr);
  // Precedence: ?x + (2*3) >= 7.
  const Expr& cmp = *e.args[1]->args[0];
  EXPECT_EQ(cmp.kind, ExprKind::kCompare);
  EXPECT_EQ(cmp.compare_op, CompareOp::kGe);
  EXPECT_EQ(cmp.args[0]->kind, ExprKind::kArith);
  EXPECT_EQ(cmp.args[0]->arith_op, ArithOp::kAdd);
  EXPECT_EQ(cmp.args[0]->args[1]->arith_op, ArithOp::kMul);
}

TEST_F(ParserTest, SolutionModifiers) {
  Query q = MustParse(
      "SELECT ?x WHERE { ?x ex:p ?y } ORDER BY DESC(?y) ?x LIMIT 5 OFFSET 2");
  ASSERT_EQ(q.order_by.size(), 2u);
  EXPECT_TRUE(q.order_by[0].descending);
  EXPECT_FALSE(q.order_by[1].descending);
  EXPECT_EQ(*q.limit, 5u);
  EXPECT_EQ(*q.offset, 2u);
}

TEST_F(ParserTest, ComplexOrderKeys) {
  Query q = MustParse(
      "SELECT ?x ?h WHERE { ?x ex:p ?h } ORDER BY !BOUND(?h) STRLEN(?x)");
  ASSERT_EQ(q.order_by.size(), 2u);
  EXPECT_EQ(q.order_by[0].expr->kind, ExprKind::kNot);
  EXPECT_EQ(q.order_by[1].expr->kind, ExprKind::kBuiltin);
}

TEST_F(ParserTest, AggregatesAndGroupBy) {
  Query q = MustParse(
      "SELECT ?x (COUNT(DISTINCT ?y) AS ?n) (SUM(?z) AS ?s) WHERE "
      "{ ?x ex:p ?y . ?x ex:q ?z } GROUP BY ?x");
  EXPECT_TRUE(q.HasAggregates());
  ASSERT_EQ(q.select.size(), 3u);
  EXPECT_FALSE(q.select[0].is_aggregate);
  EXPECT_TRUE(q.select[1].agg_distinct);
  EXPECT_EQ(q.select[1].alias, "n");
  EXPECT_EQ(q.select[2].fn, AggregateFn::kSum);
  EXPECT_EQ(q.group_by, (std::vector<std::string>{"x"}));
}

TEST_F(ParserTest, AskAndDatasetClauses) {
  Query q = MustParse(
      "ASK FROM <http://g1> FROM NAMED <http://g2> { ?s ex:p ?o }");
  EXPECT_EQ(q.form, QueryForm::kAsk);
  EXPECT_EQ(q.from.size(), 1u);
  EXPECT_EQ(q.from_named.size(), 1u);
}

TEST_F(ParserTest, UnsupportedFeaturesAreNotSupportedNotParseError) {
  const char* unsupported[] = {
      "CONSTRUCT { ?s ex:p ?o } WHERE { ?s ex:p ?o }",
      "DESCRIBE ?x WHERE { ?x ex:p ?o }",
      "SELECT ?x WHERE { ?x ex:p ?o . FILTER NOT EXISTS { ?x ex:q ?z } }",
      "SELECT ?x WHERE { ?x ex:p ?o . BIND(?o AS ?b) }",
      "SELECT ?x WHERE { VALUES ?x { ex:a } ?x ex:p ?o }",
      "SELECT ?x WHERE { { SELECT ?x WHERE { ?x ex:p ?o } } }",
      "SELECT ?x (COUNT(?y) AS ?c) WHERE { ?x ex:p ?y } GROUP BY ?x "
      "HAVING (COUNT(?y) > 1)",
      "SELECT ?x WHERE { ?x ex:p ?o . FILTER (?o IN (ex:a, ex:b)) }",
      "SELECT ?x WHERE { SERVICE <http://remote> { ?x ex:p ?o } }",
  };
  for (const char* text : unsupported) {
    auto q = Parse(text);
    ASSERT_FALSE(q.ok()) << text;
    EXPECT_TRUE(q.status().IsNotSupported()) << q.status().ToString();
  }
}

TEST_F(ParserTest, SyntaxErrors) {
  EXPECT_TRUE(Parse("SELECT WHERE { }").status().IsParseError());
  EXPECT_TRUE(Parse("SELECT ?x WHERE { ?x ex:p }").status().IsParseError());
  EXPECT_TRUE(Parse("SELECT ?x { ?x ex:p ?y ").status().IsParseError());
  EXPECT_TRUE(
      Parse("SELECT ?x WHERE { ?x unknown:p ?y }").status().IsParseError());
}

TEST_F(ParserTest, PrinterRoundTripsStructure) {
  Query q = MustParse(R"(
    SELECT DISTINCT ?x WHERE {
      ?x ex:p+ ?y . OPTIONAL { ?y ex:q ?z }
      FILTER regex(?z, "v")
    } ORDER BY ?x LIMIT 3)");
  std::string text = ToString(q, dict_);
  EXPECT_NE(text.find("SELECT DISTINCT ?x"), std::string::npos);
  EXPECT_NE(text.find("Optional"), std::string::npos);
  EXPECT_NE(text.find("REGEX"), std::string::npos);
  EXPECT_NE(text.find("LIMIT 3"), std::string::npos);
}

TEST_F(ParserTest, OptimizerAvoidsCartesianProducts) {
  Query q = MustParse(R"(
    SELECT * WHERE {
      ?a ex:t ex:Article .
      ?b ex:t ex:Article .
      ?a ex:c ?p .
      ?b ex:c ?p .
    })");
  PatternPtr optimized = ReorderJoins(q.where);
  // Walk the left-deep chain and check that every conjunct after the first
  // shares a variable with the prefix.
  std::vector<const Pattern*> conjuncts;
  const Pattern* cur = optimized.get();
  while (cur->kind == PatternKind::kJoin) {
    conjuncts.push_back(cur->right.get());
    cur = cur->left.get();
  }
  conjuncts.push_back(cur);
  std::reverse(conjuncts.begin(), conjuncts.end());
  std::set<std::string> bound;
  for (size_t i = 0; i < conjuncts.size(); ++i) {
    auto vars = conjuncts[i]->Vars();
    if (i > 0) {
      bool connected = false;
      for (const auto& v : vars) connected |= bound.count(v) > 0;
      EXPECT_TRUE(connected) << "conjunct " << i << " is a cartesian product";
    }
    for (const auto& v : vars) bound.insert(v);
  }
}

TEST_F(ParserTest, OptimizerPreservesVariables) {
  Query q = MustParse(
      "SELECT * WHERE { ?a ex:p ?b . ?c ex:q ?d . OPTIONAL { ?a ex:r ?e } }");
  PatternPtr optimized = ReorderJoins(q.where);
  EXPECT_EQ(optimized->Vars(), q.where->Vars());
}

TEST(FeatureAnalyzerTest, DetectsTable2Columns) {
  rdf::TermDictionary dict;
  auto q = ParseQuery(R"(
    PREFIX ex: <http://ex.org/>
    SELECT DISTINCT ?x WHERE {
      { ?x ex:a/ex:b ?y } UNION { ?x ex:c|ex:d ?y }
      OPTIONAL { ?x ex:e ?z }
      GRAPH ?g { ?x ex:f ?w }
      FILTER regex(?y, "p")
    })",
                      &dict)
               .ValueOrDie();
  FeatureSet f = AnalyzeFeatures(q);
  EXPECT_TRUE(f.distinct);
  EXPECT_TRUE(f.filter);
  EXPECT_TRUE(f.regex);
  EXPECT_TRUE(f.optional);
  EXPECT_TRUE(f.union_);
  EXPECT_TRUE(f.graph);
  EXPECT_TRUE(f.path_seq);
  EXPECT_TRUE(f.path_alt);
  EXPECT_FALSE(f.group_by);
  EXPECT_FALSE(f.minus);
}

TEST(FeatureAnalyzerTest, UsageRowPercentages) {
  rdf::TermDictionary dict;
  std::vector<FeatureSet> sets;
  sets.push_back(AnalyzeFeatures(
      ParseQuery("SELECT DISTINCT ?x WHERE { ?x ?p ?y }", &dict)
          .ValueOrDie()));
  sets.push_back(AnalyzeFeatures(
      ParseQuery("SELECT ?x WHERE { ?x ?p ?y }", &dict).ValueOrDie()));
  std::vector<std::string> names;
  auto row = FeatureUsageRow(sets, &names);
  ASSERT_EQ(names[0], "DIST");
  EXPECT_DOUBLE_EQ(row[0], 50.0);
}

}  // namespace
}  // namespace sparqlog::sparql
