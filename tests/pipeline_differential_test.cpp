// Property-based differential testing: the SparqLog pipeline (T_D + T_Q +
// Datalog evaluation + T_S) must produce the same solution multisets as
// the W3C-faithful reference evaluator on randomly generated graphs and
// queries. This is the empirical half of the paper's two-way correctness
// strategy (§5.3) turned into an automated invariant.

#include <gtest/gtest.h>

#include "core/engine.h"
#include "eval/algebra_eval.h"
#include "quirks/stardog_sim.h"
#include "rdf/graph.h"
#include "rdf/turtle_parser.h"
#include "sparql/parser.h"
#include "util/hash.h"
#include "util/string_util.h"

namespace sparqlog {
namespace {

using eval::QueryResult;

/// Generates a random graph with `edges` edges over `nodes` nodes and up
/// to 3 predicates, with literals/self-loops/cycles mixed in.
void RandomGraph(uint64_t seed, size_t nodes, size_t edges,
                 rdf::Dataset* dataset) {
  Rng rng(seed);
  auto* dict = dataset->dict();
  auto node = [&](size_t i) {
    return dict->InternIri("http://r.org/n" + std::to_string(i));
  };
  std::vector<rdf::TermId> preds = {dict->InternIri("http://r.org/p"),
                                    dict->InternIri("http://r.org/q"),
                                    dict->InternIri("http://r.org/r")};
  for (size_t i = 0; i < edges; ++i) {
    rdf::TermId s = node(rng.Uniform(nodes));
    rdf::TermId p = preds[rng.Skewed(preds.size())];
    rdf::TermId o = rng.Chance(0.15)
                        ? dict->InternString("v" + std::to_string(
                                                 rng.Uniform(4)))
                        : node(rng.Uniform(nodes));
    dataset->default_graph().Add(s, p, o);
  }
  // A named graph with a small subset.
  rdf::TermId g = dict->InternIri("http://r.org/g1");
  dataset->named_graph(g).Add(node(0), preds[0], node(1));
  dataset->named_graph(g).Add(node(1), preds[1], node(2));
}

class DifferentialTest
    : public ::testing::TestWithParam<std::tuple<int, const char*>> {
 protected:
  void RunBoth(uint64_t seed, const std::string& query_text) {
    rdf::TermDictionary dict;
    rdf::Dataset dataset(&dict);
    RandomGraph(seed, 8, 24, &dataset);

    auto parsed = sparql::ParseQuery(
        "PREFIX r: <http://r.org/>\n" + query_text, &dict);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();

    ExecContext ctx;
    eval::AlgebraEvaluator reference(dataset, &dict, &ctx);
    auto expected = reference.EvalQuery(*parsed);
    ASSERT_TRUE(expected.ok()) << expected.status().ToString();

    core::Engine engine(&dataset, &dict);
    ASSERT_TRUE(engine.Load().ok());
    auto got_exec = engine.Execute(*parsed);
    ASSERT_TRUE(got_exec.ok()) << got_exec.status().ToString();
    const eval::QueryResult* got = &got_exec->result;

    EXPECT_TRUE(got->SameSolutions(*expected))
        << "seed " << seed << "\nquery: " << query_text << "\nreference ("
        << expected->rows.size() << " rows):\n"
        << expected->ToString(dict, 30) << "\nsparqlog (" << got->rows.size()
        << " rows):\n"
        << got->ToString(dict, 30);

    // Cache differential: a second execution through the same engine must
    // hit the program cache (and any memoized strata) and reproduce the
    // cold run bit-identically — same rows, same order, same columns.
    auto warm_exec = engine.Execute(*parsed);
    ASSERT_TRUE(warm_exec.ok()) << warm_exec.status().ToString();
    const eval::QueryResult* warm = &warm_exec->result;
    EXPECT_EQ(got->columns, warm->columns) << query_text;
    EXPECT_TRUE(got->rows == warm->rows)
        << "warm run diverged, seed " << seed << "\nquery: " << query_text
        << "\ncold (" << got->rows.size() << " rows):\n"
        << got->ToString(dict, 30) << "\nwarm (" << warm->rows.size()
        << " rows):\n"
        << warm->ToString(dict, 30);
    EXPECT_EQ(warm->is_ask, got->is_ask);
    EXPECT_EQ(warm->ask_value, got->ask_value);
    EXPECT_EQ(engine.stats().program_hits, 1u) << query_text;

    // Planner differential: join_planner=false runs the exact pre-planner
    // pipeline (translation-order bodies, runtime join heuristic). The
    // planner must never change the solution multiset at any thread
    // count — and wherever ORDER BY pins row order, not the rows either.
    for (uint32_t threads : {1u, 2u, 8u}) {
      core::Engine::Options off;
      off.planner.join_planner = false;
      off.parallelism.num_threads = threads;
      core::Engine plain_engine(&dataset, &dict, off);
      ASSERT_TRUE(plain_engine.Load().ok());
      auto plain_exec = plain_engine.Execute(*parsed);
      ASSERT_TRUE(plain_exec.ok()) << plain_exec.status().ToString();
      const eval::QueryResult* plain = &plain_exec->result;
      EXPECT_EQ(plain->columns, got->columns) << query_text;
      EXPECT_EQ(plain->is_ask, got->is_ask);
      EXPECT_EQ(plain->ask_value, got->ask_value) << query_text;
      EXPECT_TRUE(plain->SameSolutions(*got))
          << "planner changed solutions, seed " << seed << " threads "
          << threads << "\nquery: " << query_text << "\nplanner-on ("
          << got->rows.size() << " rows):\n"
          << got->ToString(dict, 30) << "\nplanner-off ("
          << plain->rows.size() << " rows):\n"
          << plain->ToString(dict, 30);
      if (!parsed->order_by.empty()) {
        EXPECT_TRUE(plain->rows == got->rows)
            << "planner changed ORDER BY output, seed " << seed
            << " threads " << threads << "\nquery: " << query_text;
      }
    }
  }
};

TEST_P(DifferentialTest, PipelineMatchesReference) {
  auto [seed, query] = GetParam();
  RunBoth(static_cast<uint64_t>(seed), query);
}

constexpr const char* kQueries[] = {
    // Bag-semantics joins and projections.
    "SELECT ?a WHERE { ?a r:p ?b }",
    "SELECT ?b WHERE { ?a r:p ?b . ?b r:q ?c }",
    "SELECT * WHERE { ?a r:p ?b . ?b r:p ?c . ?c r:q ?d }",
    "SELECT DISTINCT ?a ?c WHERE { ?a r:p ?b . ?b r:p ?c }",
    // Optional, incl. nested and filtered.
    "SELECT * WHERE { ?a r:p ?b OPTIONAL { ?b r:q ?c } }",
    "SELECT * WHERE { ?a r:p ?b OPTIONAL { ?b r:q ?c . ?c r:p ?d } }",
    "SELECT * WHERE { ?a r:p ?b OPTIONAL { ?b r:q ?c FILTER (?c != ?a) } }",
    // Union with asymmetric domains.
    "SELECT * WHERE { { ?a r:p ?b } UNION { ?a r:q ?c } }",
    "SELECT ?v WHERE { { ?a r:p ?v } UNION { ?v r:q ?b } }",
    // Minus.
    "SELECT ?a ?b WHERE { ?a r:p ?b MINUS { ?a r:q ?c } }",
    "SELECT ?a WHERE { ?a r:p ?b MINUS { ?z r:r ?w } }",
    // Filters with three-valued logic.
    "SELECT ?a WHERE { ?a r:p ?b . FILTER (isIRI(?b)) }",
    "SELECT * WHERE { ?a r:p ?b OPTIONAL { ?b r:q ?c } "
    "FILTER (!BOUND(?c) || ?c = ?a) }",
    "SELECT ?a WHERE { ?a r:p ?b . FILTER (STR(?b) < STR(?a)) }",
    // Property paths, incl. the recursive forms and endpoints.
    "SELECT ?x ?y WHERE { ?x r:p/r:q ?y }",
    "SELECT ?x ?y WHERE { ?x (r:p|r:q) ?y }",
    "SELECT ?x ?y WHERE { ?x ^r:p ?y }",
    "SELECT ?x ?y WHERE { ?x r:p+ ?y }",
    "SELECT ?x ?y WHERE { ?x r:p* ?y }",
    "SELECT ?x ?y WHERE { ?x r:p? ?y }",
    "SELECT ?y WHERE { <http://r.org/n0> r:p+ ?y }",
    "SELECT ?x WHERE { ?x r:p* <http://r.org/n1> }",
    "SELECT ?y WHERE { <http://r.org/ghost> r:p* ?y }",
    "SELECT ?x ?y WHERE { ?x !(r:p) ?y }",
    "SELECT ?x ?y WHERE { ?x !(r:p|^r:q) ?y }",
    "SELECT ?x ?y WHERE { ?x (^r:p|r:q)+ ?y }",
    "SELECT ?x ?y WHERE { ?x r:p{2} ?y }",
    "SELECT ?x ?y WHERE { ?x r:p{0,2} ?y }",
    "SELECT ?x ?y WHERE { ?x r:p{2,} ?y }",
    "SELECT ?x ?z WHERE { ?x r:p+ ?y . ?y r:q ?z }",
    // Paths joined with patterns and modifiers.
    "SELECT DISTINCT ?x WHERE { ?x r:p* ?y . ?y r:q ?z }",
    "SELECT ?a ?b WHERE { ?a r:p ?b } ORDER BY ?b ?a LIMIT 5",
    "SELECT ?a WHERE { ?a r:p ?b } ORDER BY DESC(?a) OFFSET 2 LIMIT 3",
    // Graph patterns.
    "SELECT ?g ?s WHERE { GRAPH ?g { ?s r:p ?o } }",
    "SELECT ?s WHERE { GRAPH <http://r.org/g1> { ?s ?p ?o } }",
    // Ask.
    "ASK { ?a r:p ?b . ?b r:q ?c }",
    "ASK { <http://r.org/ghost> r:p ?b }",
};

INSTANTIATE_TEST_SUITE_P(
    RandomGraphs, DifferentialTest,
    ::testing::Combine(::testing::Values(1, 2, 3),
                       ::testing::ValuesIn(kQueries)),
    [](const ::testing::TestParamInfo<DifferentialTest::ParamType>& info) {
      return "seed" + std::to_string(std::get<0>(info.param)) + "_q" +
             std::to_string(info.index % (sizeof(kQueries) / sizeof(char*)));
    });

// DISTINCT must equal the deduplicated bag result (set-vs-bag coherence of
// the two translation variants).
TEST(SetBagCoherenceTest, DistinctEqualsDedupedBag) {
  for (uint64_t seed : {7u, 8u, 9u}) {
    rdf::TermDictionary dict;
    rdf::Dataset dataset(&dict);
    RandomGraph(seed, 6, 18, &dataset);
    core::Engine engine(&dataset, &dict);
    ASSERT_TRUE(engine.Load().ok());

    auto bag = engine.ExecuteText(
        "PREFIX r: <http://r.org/> SELECT ?a WHERE { ?a r:p ?b . ?b r:p ?c }");
    auto set = engine.ExecuteText(
        "PREFIX r: <http://r.org/> SELECT DISTINCT ?a WHERE "
        "{ ?a r:p ?b . ?b r:p ?c }");
    ASSERT_TRUE(bag.ok() && set.ok());
    auto rows = bag->result.SortedRows();
    rows.erase(std::unique(rows.begin(), rows.end()), rows.end());
    EXPECT_EQ(rows, set->result.SortedRows()) << "seed " << seed;
  }
}

// Multiplicity check: projecting away a join variable multiplies
// solutions; compare counts against the reference on purpose-built data.
TEST(MultiplicityTest, ProjectionCountsMatchReference) {
  rdf::TermDictionary dict;
  rdf::Dataset dataset(&dict);
  auto iri = [&](const std::string& s) {
    return dict.InternIri("http://m.org/" + s);
  };
  // a -p-> b1..b3; each bi -q-> c: projecting ?a yields 3 duplicates.
  for (int i = 0; i < 3; ++i) {
    dataset.default_graph().Add(iri("a"), iri("p"),
                                iri("b" + std::to_string(i)));
    dataset.default_graph().Add(iri("b" + std::to_string(i)), iri("q"),
                                iri("c"));
  }
  core::Engine engine(&dataset, &dict);
  ASSERT_TRUE(engine.Load().ok());
  auto result = engine.ExecuteText(
      "PREFIX m: <http://m.org/> SELECT ?a WHERE { ?a m:p ?b . ?b m:q ?c }");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->result.rows.size(), 3u);
  for (const auto& row : result->result.rows) {
    EXPECT_EQ(dict.get(row[0]).lexical, "http://m.org/a");
  }
}

// The ontology mode must agree with materialize-then-query on the same
// RDFS subset (cross-validation of two independent implementations).
TEST(OntologyCoherenceTest, DatalogRulesMatchMaterialization) {
  rdf::TermDictionary dict;
  rdf::Dataset dataset(&dict);
  auto st = rdf::ParseTurtle(R"(
    @prefix ex: <http://o.org/> .
    @prefix rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#> .
    @prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
    ex:Cat rdfs:subClassOf ex:Animal .
    ex:Animal rdfs:subClassOf ex:Being .
    ex:hasPet rdfs:subPropertyOf ex:likes .
    ex:hasPet rdfs:range ex:Animal .
    ex:tom rdf:type ex:Cat .
    ex:ann ex:hasPet ex:tom .
    ex:ann ex:hasPet ex:felix .
  )",
                             &dataset);
  ASSERT_TRUE(st.ok());

  core::Engine::Options options;
  options.ontology = true;
  core::Engine engine(&dataset, &dict, options);
  ASSERT_TRUE(engine.Load().ok());

  quirks::StardogSim materializer(&dataset, &dict);
  ExecContext ctx;
  ASSERT_TRUE(materializer.Materialize(&ctx).ok());

  const char* queries[] = {
      "PREFIX ex: <http://o.org/> PREFIX rdf: "
      "<http://www.w3.org/1999/02/22-rdf-syntax-ns#> "
      "SELECT ?x WHERE { ?x rdf:type ex:Being }",
      "PREFIX ex: <http://o.org/> SELECT ?a ?b WHERE { ?a ex:likes ?b }",
      "PREFIX ex: <http://o.org/> PREFIX rdf: "
      "<http://www.w3.org/1999/02/22-rdf-syntax-ns#> "
      "SELECT DISTINCT ?x WHERE { ?x rdf:type ex:Animal }",
  };
  for (const char* q : queries) {
    auto parsed = sparql::ParseQuery(q, &dict);
    ASSERT_TRUE(parsed.ok());
    auto via_rules = engine.Execute(*parsed);
    auto via_materialization = materializer.Execute(*parsed, &ctx);
    ASSERT_TRUE(via_rules.ok()) << via_rules.status().ToString();
    ASSERT_TRUE(via_materialization.ok());
    EXPECT_TRUE(via_rules->result.SameSolutions(*via_materialization)) << q;
  }
}

}  // namespace
}  // namespace sparqlog
