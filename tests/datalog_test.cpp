// Unit tests for the Datalog± engine substrate: relations and indexes,
// Skolem-term interning, SCC stratification, semi-naive evaluation
// (recursion, negation, builtins, duplicate preservation), the warded
// analyzer, and the program printer.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "datalog/ast.h"
#include "datalog/evaluator.h"
#include "datalog/printer.h"
#include "datalog/relation.h"
#include "datalog/stratify.h"
#include "datalog/value.h"
#include "datalog/warded.h"

namespace sparqlog::datalog {
namespace {

TEST(ValueTest, TermAndSkolemTagging) {
  SkolemStore skolems;
  Value term = ValueFromTerm(17);
  EXPECT_FALSE(IsSkolemValue(term));
  EXPECT_EQ(TermFromValue(term), 17u);
  uint32_t fn = skolems.InternFunction("f1");
  Value sk = skolems.Intern(fn, {term, 42});
  EXPECT_TRUE(IsSkolemValue(sk));
}

TEST(SkolemStoreTest, InterningIsStructural) {
  SkolemStore skolems;
  uint32_t f = skolems.InternFunction("f");
  uint32_t g = skolems.InternFunction("g");
  EXPECT_EQ(skolems.InternFunction("f"), f);
  Value a = skolems.Intern(f, {1, 2});
  Value b = skolems.Intern(f, {1, 2});
  Value c = skolems.Intern(f, {2, 1});
  Value d = skolems.Intern(g, {1, 2});
  EXPECT_EQ(a, b);  // same grounding, same TID -> duplicates collapse
  EXPECT_NE(a, c);  // different grounding -> distinct TID
  EXPECT_NE(a, d);  // different rule -> distinct TID
}

TEST(SkolemStoreTest, NestedSkolemArguments) {
  SkolemStore skolems;
  uint32_t f = skolems.InternFunction("f");
  Value inner = skolems.Intern(f, {1});
  Value outer1 = skolems.Intern(f, {inner, 2});
  Value outer2 = skolems.Intern(f, {inner, 2});
  EXPECT_EQ(outer1, outer2);
  EXPECT_NE(outer1, inner);
}

TEST(RelationTest, InsertDedupAndRounds) {
  Relation rel(2);
  EXPECT_TRUE(rel.Insert({1, 2}, 0));
  EXPECT_FALSE(rel.Insert({1, 2}, 1));  // duplicate
  EXPECT_TRUE(rel.Insert({1, 3}, 1));
  EXPECT_TRUE(rel.Insert({2, 3}, 2));
  EXPECT_EQ(rel.size(), 3u);
  EXPECT_TRUE(rel.Contains({1, 2}));
  EXPECT_FALSE(rel.Contains({9, 9}));
  auto [lo, hi] = rel.RoundRange(1);
  EXPECT_EQ(hi - lo, 1u);
  EXPECT_EQ(rel.row(lo), (std::vector<Value>{1, 3}));
}

TEST(RelationTest, ProbeBuildsAndMaintainsIndexes) {
  Relation rel(2);
  rel.Insert({1, 10}, 0);
  rel.Insert({1, 11}, 0);
  rel.Insert({2, 10}, 0);
  MatchSpan span = rel.Probe({0}, {1});
  EXPECT_EQ(span.size(), 2u);
  // Index maintained across later inserts.
  rel.Insert({1, 12}, 1);
  span = rel.Probe({0}, {1});
  EXPECT_EQ(span.size(), 3u);
  // Multi-column probe.
  span = rel.Probe({0, 1}, {2, 10});
  ASSERT_EQ(span.size(), 1u);
  EXPECT_EQ(rel.row(span[0]), (std::vector<Value>{2, 10}));
  EXPECT_TRUE(rel.Probe({1}, {99}).empty());
}

TEST(RelationTest, TryProbeMatchesProbeAndSurvivesConcurrentBuild) {
  Relation rel(2);
  for (Value i = 0; i < 200; ++i) rel.Insert({i % 20, i}, 0);
  // Concurrent first-probe: workers race to build and publish the same
  // two indexes; every probe must see a fully built index.
  std::vector<std::thread> threads;
  std::atomic<int> mismatches{0};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&rel, &mismatches] {
      for (Value k = 0; k < 20; ++k) {
        MatchSpan span;
        if (!rel.TryProbe({0}, {k}, &span) || span.size() != 10) {
          ++mismatches;
        }
        if (!rel.TryProbe({1}, {k}, &span) || span.size() != 1) {
          ++mismatches;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);
  // The published indexes are the same ones Probe sees, and both stay
  // maintained across later inserts.
  rel.Insert({3, 1000}, 1);
  EXPECT_EQ(rel.Probe({0}, {3}).size(), 11u);
  MatchSpan span;
  ASSERT_TRUE(rel.TryProbe({0}, {3}, &span));
  EXPECT_EQ(span.size(), 11u);
}

TEST(RelationTest, InsertStagedMergesAndDedupes) {
  Relation rel(2);
  rel.Insert({1, 2}, 0);
  rel.Insert({3, 4}, 0);
  // Staging buffer holds one duplicate of the relation and two fresh
  // tuples (already deduped within itself, as worker staging stores are).
  TupleStore staged(2);
  bool fresh = false;
  const Value rows[][2] = {{1, 2}, {5, 6}, {7, 8}};
  for (const auto& row : rows) staged.Insert(row, &fresh);
  EXPECT_EQ(rel.InsertStaged(staged, 3), 2u);
  EXPECT_EQ(rel.size(), 4u);
  EXPECT_TRUE(rel.Contains({5, 6}));
  // Merged rows carry the barrier round: they form round 3's delta.
  auto [lo, hi] = rel.RoundRange(3);
  EXPECT_EQ(hi - lo, 2u);
  EXPECT_EQ(rel.row(lo), (std::vector<Value>{5, 6}));
  // An empty staging store merges nothing.
  TupleStore empty(2);
  EXPECT_EQ(rel.InsertStaged(empty, 4), 0u);
}

TEST(TupleStoreTest, ClearKeepsCapacityAndResetsDedup) {
  TupleStore store(2);
  bool fresh = false;
  for (Value i = 0; i < 100; ++i) {
    store.Insert(std::vector<Value>{i, i + 1}.data(), &fresh);
  }
  EXPECT_EQ(store.size(), 100u);
  size_t bytes_before = store.bytes();
  store.Clear();
  EXPECT_EQ(store.size(), 0u);
  EXPECT_EQ(store.bytes(), bytes_before);  // capacity retained
  const Value row[] = {7, 8};
  store.Insert(row, &fresh);
  EXPECT_TRUE(fresh);  // dedup table was reset, not just truncated
  store.Insert(row, &fresh);
  EXPECT_FALSE(fresh);
  EXPECT_EQ(store.size(), 1u);
}

TEST(RelationTest, ShardRangeCursorCoversArenaSegments) {
  Relation rel(2);
  for (Value i = 0; i < 10; ++i) rel.Insert({i, i * 2}, 0);
  TupleCursor shard = rel.rows(4, 7);
  ASSERT_EQ(shard.size(), 3u);
  EXPECT_EQ(shard[0], (std::vector<Value>{4, 8}));
  EXPECT_EQ(shard[2], (std::vector<Value>{6, 12}));
  // Shards tile the arena: [0,5) + [5,10) visit each row exactly once.
  size_t visited = 0;
  for (RowRef row : rel.rows(0, 5)) visited += row.size() ? 1 : 0;
  for (RowRef row : rel.rows(5, 10)) visited += row.size() ? 1 : 0;
  EXPECT_EQ(visited, rel.size());
  EXPECT_TRUE(rel.rows(10, 10).empty());
}

TEST(RelationTest, CursorIteratesArenaInInsertionOrder) {
  Relation rel(3);
  rel.Insert({1, 2, 3}, 0);
  rel.Insert({4, 5, 6}, 0);
  rel.Insert({7, 8, 9}, 1);
  std::vector<std::vector<Value>> seen;
  for (RowRef row : rel.rows()) seen.push_back(row.ToVector());
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0], (std::vector<Value>{1, 2, 3}));
  EXPECT_EQ(seen[2], (std::vector<Value>{7, 8, 9}));
  // Random access through the cursor.
  TupleCursor cursor = rel.rows();
  EXPECT_EQ(cursor[1][2], 6u);
}

TEST(RelationTest, DedupSurvivesRehash) {
  // Enough inserts to force several open-addressing table growths.
  Relation rel(2);
  for (Value i = 0; i < 1000; ++i) {
    EXPECT_TRUE(rel.Insert({i, i * 31}, 0));
  }
  for (Value i = 0; i < 1000; ++i) {
    EXPECT_FALSE(rel.Insert({i, i * 31}, 1));
    EXPECT_TRUE(rel.Contains({i, i * 31}));
  }
  EXPECT_EQ(rel.size(), 1000u);
  EXPECT_FALSE(rel.Contains({1, 1}));
}

TEST(RelationTest, RoundMarksTrackSparseRounds) {
  Relation rel(1);
  rel.Insert({1}, 0);
  rel.Insert({2}, 0);
  rel.Insert({3}, 5);  // rounds may skip numbers across strata
  rel.Insert({4}, 7);
  auto [lo0, hi0] = rel.RoundRange(0);
  EXPECT_EQ(lo0, 0u);
  EXPECT_EQ(hi0, 2u);
  auto [lo5, hi5] = rel.RoundRange(5);
  EXPECT_EQ(lo5, 2u);
  EXPECT_EQ(hi5, 3u);
  auto [lo7, hi7] = rel.RoundRange(7);
  EXPECT_EQ(lo7, 3u);
  EXPECT_EQ(hi7, 4u);
  // A round with no inserts is an empty range.
  auto [lo3, hi3] = rel.RoundRange(3);
  EXPECT_EQ(lo3, hi3);
  EXPECT_EQ(rel.row_round(0), 0u);
  EXPECT_EQ(rel.row_round(2), 5u);
  EXPECT_EQ(rel.row_round(3), 7u);
}

TEST(RelationTest, MatchSpanStableAcrossConcurrentInserts) {
  // The evaluator relies on probing a bucket while recursive rules insert
  // into the same relation: the span must keep addressing the probe-time
  // prefix even as the bucket grows and the arena reallocates.
  Relation rel(2);
  for (Value i = 0; i < 8; ++i) rel.Insert({1, i}, 0);
  MatchSpan span = rel.Probe({0}, {1});
  ASSERT_EQ(span.size(), 8u);
  for (uint32_t k = 0; k < span.size(); ++k) {
    // Grow the same bucket (and the arena) mid-iteration.
    rel.Insert({1, 1000 + k}, 1);
    EXPECT_EQ(rel.row(span[k])[1], k);
  }
  EXPECT_EQ(rel.Probe({0}, {1}).size(), 16u);
}

TEST(RelationTest, InsertRowRefAliasingOwnArena) {
  // RowRefs viewing this relation's own arena must be safe to pass back
  // into Insert even while interleaved inserts grow (and reallocate) the
  // arena: aliased duplicates are no-ops, and TupleStore::Insert guards
  // the append against aliased source ranges.
  Relation rel(2);
  for (Value i = 0; i < 300; ++i) rel.Insert({i, i + 1}, 0);
  for (Value i = 0; i < 300; ++i) {
    EXPECT_FALSE(rel.Insert(rel.row(static_cast<uint32_t>(i)), 1));
    EXPECT_TRUE(rel.Insert({1000 + i, i}, 1));
  }
  EXPECT_EQ(rel.size(), 600u);
}

TEST(RelationTest, ZeroArityRelation) {
  Relation rel(0);
  EXPECT_FALSE(rel.Contains(std::vector<Value>{}));
  EXPECT_TRUE(rel.Insert(std::vector<Value>{}, 0));
  EXPECT_FALSE(rel.Insert(std::vector<Value>{}, 0));  // dedup
  EXPECT_EQ(rel.size(), 1u);
  size_t count = 0;
  for (RowRef row : rel.rows()) {
    EXPECT_EQ(row.size(), 0u);
    ++count;
  }
  EXPECT_EQ(count, 1u);
}

// --- evaluation fixtures ----------------------------------------------------

class EvaluatorTest : public ::testing::Test {
 protected:
  EvaluatorTest() : evaluator_(&dict_, &skolems_) {}

  /// edge facts into the EDB under predicate "edge"/2 of `program`.
  void AddEdges(Program* program,
                const std::vector<std::pair<Value, Value>>& edges) {
    PredicateId edge = program->predicates.Intern("edge", 2);
    for (auto [a, b] : edges) edb_.relation(edge, 2).Insert({a, b}, 0);
  }

  Result<const Relation*> Run(const Program& program, const char* output) {
    SPARQLOG_RETURN_NOT_OK(evaluator_.Evaluate(program, &edb_, &idb_, &ctx_));
    auto pred = program.predicates.Lookup(output);
    if (!pred) return Status::NotFound("no output predicate");
    const Relation* rel = idb_.Find(*pred);
    static const Relation& empty = *new Relation(0);
    return rel == nullptr ? &empty : rel;
  }

  rdf::TermDictionary dict_;
  SkolemStore skolems_;
  Database edb_, idb_;
  ExecContext ctx_;
  Evaluator evaluator_;
};

TEST_F(EvaluatorTest, TransitiveClosure) {
  Program program;
  AddEdges(&program, {{1, 2}, {2, 3}, {3, 4}, {4, 2}});  // cycle 2-3-4
  RuleBuilder rb(&program.predicates);
  rb.Head("tc", {rb.Var("X"), rb.Var("Y")});
  rb.Body("edge", {rb.Var("X"), rb.Var("Y")});
  program.rules.push_back(rb.Build());
  rb.Head("tc", {rb.Var("X"), rb.Var("Z")});
  rb.Body("edge", {rb.Var("X"), rb.Var("Y")});
  rb.Body("tc", {rb.Var("Y"), rb.Var("Z")});
  program.rules.push_back(rb.Build());

  const Relation* tc = Run(program, "tc").ValueOrDie();
  // Reach sets: 1->{2,3,4}, 2->{2,3,4}, 3->{2,3,4}, 4->{2,3,4}.
  EXPECT_EQ(tc->size(), 12u);
  EXPECT_TRUE(tc->Contains({1, 4}));
  EXPECT_TRUE(tc->Contains({2, 2}));  // via the cycle
  EXPECT_FALSE(tc->Contains({2, 1}));
}

TEST_F(EvaluatorTest, RecursiveRuleDerivesWhileProbingOwnIndex) {
  // tc(X,Z) :- tc(X,Y), tc(Y,Z) probes the tc index with Y bound while
  // EmitHead inserts into tc (growing the probed bucket and reallocating
  // the arena). Exercises the epoch-stable MatchSpan on a long chain so
  // multiple rehashes happen mid-iteration.
  Program program;
  std::vector<std::pair<Value, Value>> edges;
  for (Value i = 1; i <= 60; ++i) edges.push_back({i, i + 1});
  edges.push_back({61, 1});  // cycle over all 61 nodes: closure is 61x61
  AddEdges(&program, edges);
  RuleBuilder rb(&program.predicates);
  rb.Head("tc", {rb.Var("X"), rb.Var("Y")});
  rb.Body("edge", {rb.Var("X"), rb.Var("Y")});
  program.rules.push_back(rb.Build());
  rb.Head("tc", {rb.Var("X"), rb.Var("Z")});
  rb.Body("tc", {rb.Var("X"), rb.Var("Y")});
  rb.Body("tc", {rb.Var("Y"), rb.Var("Z")});
  program.rules.push_back(rb.Build());

  const Relation* tc = Run(program, "tc").ValueOrDie();
  EXPECT_EQ(tc->size(), 61u * 61u);
  EXPECT_TRUE(tc->Contains({1, 1}));
  EXPECT_TRUE(tc->Contains({61, 60}));
}

TEST_F(EvaluatorTest, NaiveModeComputesSameFixpoint) {
  Program program;
  AddEdges(&program, {{1, 2}, {2, 3}, {3, 1}, {3, 4}});
  RuleBuilder rb(&program.predicates);
  rb.Head("tc", {rb.Var("X"), rb.Var("Y")});
  rb.Body("edge", {rb.Var("X"), rb.Var("Y")});
  program.rules.push_back(rb.Build());
  rb.Head("tc", {rb.Var("X"), rb.Var("Z")});
  rb.Body("tc", {rb.Var("X"), rb.Var("Y")});
  rb.Body("tc", {rb.Var("Y"), rb.Var("Z")});
  program.rules.push_back(rb.Build());

  const Relation* semi = Run(program, "tc").ValueOrDie();
  size_t semi_size = semi->size();

  Database edb2, idb2;
  PredicateId edge = *program.predicates.Lookup("edge");
  for (RowRef row : edb_.Find(edge)->rows()) {
    edb2.relation(edge, 2).Insert(row, 0);
  }
  Evaluator naive(&dict_, &skolems_);
  naive.set_mode(FixpointMode::kNaive);
  ExecContext ctx;
  ASSERT_TRUE(naive.Evaluate(program, &edb2, &idb2, &ctx).ok());
  EXPECT_EQ(idb2.Find(*program.predicates.Lookup("tc"))->size(), semi_size);
}

TEST_F(EvaluatorTest, StratifiedNegation) {
  Program program;
  AddEdges(&program, {{1, 2}, {2, 3}});
  PredicateId special = program.predicates.Intern("special", 1);
  edb_.relation(special, 1).Insert({2}, 0);

  // plain(X, Y) :- edge(X, Y), not special(X).
  RuleBuilder rb(&program.predicates);
  rb.Head("plain", {rb.Var("X"), rb.Var("Y")});
  rb.Body("edge", {rb.Var("X"), rb.Var("Y")});
  rb.NegBody("special", {rb.Var("X")});
  program.rules.push_back(rb.Build());

  const Relation* plain = Run(program, "plain").ValueOrDie();
  EXPECT_EQ(plain->size(), 1u);
  EXPECT_TRUE(plain->Contains({1, 2}));
}

TEST_F(EvaluatorTest, NegationOverDerivedPredicate) {
  Program program;
  AddEdges(&program, {{1, 2}, {2, 3}, {3, 4}});
  // sink(X) :- edge(_, X), not has_out(X);  has_out(X) :- edge(X, _).
  RuleBuilder rb(&program.predicates);
  rb.Head("has_out", {rb.Var("X")});
  rb.Body("edge", {rb.Var("X"), rb.Var("Y")});
  program.rules.push_back(rb.Build());
  rb.Head("sink", {rb.Var("X")});
  rb.Body("edge", {rb.Var("Y"), rb.Var("X")});
  rb.NegBody("has_out", {rb.Var("X")});
  program.rules.push_back(rb.Build());

  const Relation* sink = Run(program, "sink").ValueOrDie();
  EXPECT_EQ(sink->size(), 1u);
  EXPECT_TRUE(sink->Contains({4}));
}

TEST_F(EvaluatorTest, SkolemTidsPreserveDuplicatesAcrossRules) {
  Program program;
  AddEdges(&program, {{1, 2}});
  PredicateId edge2 = program.predicates.Intern("edge2", 2);
  edb_.relation(edge2, 2).Insert({1, 2}, 0);

  // Two "union branch" rules deriving the same tuple content with
  // rule-specific Skolem TIDs: both survive (bag semantics, §4.3).
  uint32_t fa = skolems_.InternFunction("fa");
  uint32_t fb = skolems_.InternFunction("fb");
  RuleBuilder rb(&program.predicates);
  rb.Head("u", {rb.Var("ID"), rb.Var("X"), rb.Var("Y")});
  rb.Body("edge", {rb.Var("X"), rb.Var("Y")});
  rb.Skolem(rb.Var("ID"), fa, {rb.Var("X"), rb.Var("Y")});
  program.rules.push_back(rb.Build());
  rb.Head("u", {rb.Var("ID"), rb.Var("X"), rb.Var("Y")});
  rb.Body("edge2", {rb.Var("X"), rb.Var("Y")});
  rb.Skolem(rb.Var("ID"), fb, {rb.Var("X"), rb.Var("Y")});
  program.rules.push_back(rb.Build());

  const Relation* u = Run(program, "u").ValueOrDie();
  EXPECT_EQ(u->size(), 2u);  // same (1,2) payload, two TIDs
}

TEST_F(EvaluatorTest, EqBuiltinAssignsAndChecks) {
  Program program;
  AddEdges(&program, {{1, 2}, {3, 4}});
  // fixed(X, C) :- edge(X, Y), C = 99, X = 1.
  RuleBuilder rb(&program.predicates);
  rb.Head("fixed", {rb.Var("X"), rb.Var("C")});
  rb.Body("edge", {rb.Var("X"), rb.Var("Y")});
  rb.Eq(rb.Var("C"), RuleBuilder::Const(99));
  rb.Eq(rb.Var("X"), RuleBuilder::Const(1));
  program.rules.push_back(rb.Build());

  const Relation* fixed = Run(program, "fixed").ValueOrDie();
  EXPECT_EQ(fixed->size(), 1u);
  EXPECT_TRUE(fixed->Contains({1, 99}));
}

TEST_F(EvaluatorTest, NeBuiltinFilters) {
  Program program;
  AddEdges(&program, {{1, 1}, {1, 2}});
  RuleBuilder rb(&program.predicates);
  rb.Head("strict", {rb.Var("X"), rb.Var("Y")});
  rb.Body("edge", {rb.Var("X"), rb.Var("Y")});
  rb.Ne(rb.Var("X"), rb.Var("Y"));
  program.rules.push_back(rb.Build());

  const Relation* strict = Run(program, "strict").ValueOrDie();
  EXPECT_EQ(strict->size(), 1u);
  EXPECT_TRUE(strict->Contains({1, 2}));
}

TEST_F(EvaluatorTest, RuleWithEmptyBodyFiresOnce) {
  Program program;
  program.facts.push_back({program.predicates.Intern("seed", 1), {7}});
  RuleBuilder rb(&program.predicates);
  rb.Head("out", {rb.Var("X")});
  rb.Eq(rb.Var("X"), RuleBuilder::Const(5));
  program.rules.push_back(rb.Build());

  const Relation* out = Run(program, "out").ValueOrDie();
  EXPECT_EQ(out->size(), 1u);
  EXPECT_TRUE(out->Contains({5}));
  EXPECT_TRUE(idb_.Find(*program.predicates.Lookup("seed"))->Contains({7}));
}

TEST_F(EvaluatorTest, TupleBudgetAborts) {
  Program program;
  // A cross product large enough to exceed the budget.
  std::vector<std::pair<Value, Value>> edges;
  for (Value i = 0; i < 100; ++i) edges.push_back({i, i + 1});
  AddEdges(&program, edges);
  RuleBuilder rb(&program.predicates);
  rb.Head("cross", {rb.Var("X"), rb.Var("Z")});
  rb.Body("edge", {rb.Var("X"), rb.Var("Y1")});
  rb.Body("edge", {rb.Var("Z"), rb.Var("Y2")});
  program.rules.push_back(rb.Build());

  ctx_.set_tuple_budget(500);
  Status st = evaluator_.Evaluate(program, &edb_, &idb_, &ctx_);
  EXPECT_TRUE(st.IsResourceExhausted()) << st.ToString();
}

TEST(ProgramValidateTest, RejectsUnsafeRules) {
  Program program;
  RuleBuilder rb(&program.predicates);
  // Head variable Y not bound anywhere.
  rb.Head("bad", {rb.Var("X"), rb.Var("Y")});
  rb.Body("edge", {rb.Var("X"), RuleBuilder::Const(1)});
  program.rules.push_back(rb.Build());
  program.predicates.Intern("edge", 2);
  EXPECT_FALSE(program.Validate().ok());
}

TEST(ProgramValidateTest, RejectsArityConflicts) {
  Program program;
  program.predicates.Intern("p", 2);
  program.predicates.Intern("p", 3);
  EXPECT_FALSE(program.Validate().ok());
}

TEST(StratifyTest, DependencyOrderAndRecursionFlags) {
  Program program;
  RuleBuilder rb(&program.predicates);
  // base -> mid (non-recursive) -> tc (recursive over mid).
  rb.Head("mid", {rb.Var("X"), rb.Var("Y")});
  rb.Body("base", {rb.Var("X"), rb.Var("Y")});
  program.rules.push_back(rb.Build());
  rb.Head("tc", {rb.Var("X"), rb.Var("Y")});
  rb.Body("mid", {rb.Var("X"), rb.Var("Y")});
  program.rules.push_back(rb.Build());
  rb.Head("tc", {rb.Var("X"), rb.Var("Z")});
  rb.Body("tc", {rb.Var("X"), rb.Var("Y")});
  rb.Body("mid", {rb.Var("Y"), rb.Var("Z")});
  program.rules.push_back(rb.Build());

  Stratification strat = Stratify(program).ValueOrDie();
  PredicateId base = *program.predicates.Lookup("base");
  PredicateId mid = *program.predicates.Lookup("mid");
  PredicateId tc = *program.predicates.Lookup("tc");
  EXPECT_LT(strat.predicate_stratum[base], strat.predicate_stratum[mid]);
  EXPECT_LT(strat.predicate_stratum[mid], strat.predicate_stratum[tc]);
  EXPECT_FALSE(strat.stratum_recursive[strat.predicate_stratum[mid]]);
  EXPECT_TRUE(strat.stratum_recursive[strat.predicate_stratum[tc]]);
}

TEST(StratifyTest, MutualRecursionSharesStratum) {
  Program program;
  RuleBuilder rb(&program.predicates);
  rb.Head("a", {rb.Var("X")});
  rb.Body("b", {rb.Var("X")});
  program.rules.push_back(rb.Build());
  rb.Head("b", {rb.Var("X")});
  rb.Body("a", {rb.Var("X")});
  program.rules.push_back(rb.Build());
  Stratification strat = Stratify(program).ValueOrDie();
  EXPECT_EQ(strat.predicate_stratum[*program.predicates.Lookup("a")],
            strat.predicate_stratum[*program.predicates.Lookup("b")]);
}

TEST(StratifyTest, RejectsNegativeCycle) {
  Program program;
  RuleBuilder rb(&program.predicates);
  rb.Head("p", {rb.Var("X")});
  rb.Body("base", {rb.Var("X")});
  rb.NegBody("q", {rb.Var("X")});
  program.rules.push_back(rb.Build());
  rb.Head("q", {rb.Var("X")});
  rb.Body("base", {rb.Var("X")});
  rb.NegBody("p", {rb.Var("X")});
  program.rules.push_back(rb.Build());
  auto strat = Stratify(program);
  EXPECT_FALSE(strat.ok());
}

TEST(WardedTest, LinearRulesAreWarded) {
  Program program;
  RuleBuilder rb(&program.predicates);
  rb.Head("p", {rb.Var("X"), rb.Var("Y")});
  rb.Body("q", {rb.Var("X"), rb.Var("Y")});
  program.rules.push_back(rb.Build());
  WardedReport report = AnalyzeWarded(program);
  EXPECT_TRUE(report.warded);
  EXPECT_TRUE(report.affected_positions.empty());
}

TEST(WardedTest, SkolemHeadsCreateAffectedPositions) {
  Program program;
  SkolemStore skolems;
  uint32_t f = skolems.InternFunction("f");
  RuleBuilder rb(&program.predicates);
  // p(ID, X) :- q(X), ID = f(X): position p[0] is affected.
  rb.Head("p", {rb.Var("ID"), rb.Var("X")});
  rb.Body("q", {rb.Var("X")});
  rb.Skolem(rb.Var("ID"), f, {rb.Var("X")});
  program.rules.push_back(rb.Build());
  // r(ID) :- p(ID, X): ID is dangerous but confined to the single atom.
  rb.Head("r", {rb.Var("ID")});
  rb.Body("p", {rb.Var("ID"), rb.Var("X")});
  program.rules.push_back(rb.Build());

  WardedReport report = AnalyzeWarded(program);
  EXPECT_TRUE(report.warded);
  EXPECT_FALSE(report.affected_positions.empty());
}

TEST(WardedTest, DetectsUnwardedJoinOnAffectedPositions) {
  Program program;
  SkolemStore skolems;
  uint32_t f = skolems.InternFunction("f");
  RuleBuilder rb(&program.predicates);
  rb.Head("p", {rb.Var("ID"), rb.Var("X")});
  rb.Body("q", {rb.Var("X")});
  rb.Skolem(rb.Var("ID"), f, {rb.Var("X")});
  program.rules.push_back(rb.Build());
  rb.Head("p2", {rb.Var("ID"), rb.Var("X")});
  rb.Body("q", {rb.Var("X")});
  rb.Skolem(rb.Var("ID"), f, {rb.Var("X")});
  program.rules.push_back(rb.Build());
  // Dangerous variables in two different body atoms: not warded.
  rb.Head("bad", {rb.Var("ID"), rb.Var("ID2")});
  rb.Body("p", {rb.Var("ID"), rb.Var("X")});
  rb.Body("p2", {rb.Var("ID2"), rb.Var("X")});
  program.rules.push_back(rb.Build());

  WardedReport report = AnalyzeWarded(program);
  EXPECT_FALSE(report.warded);
  EXPECT_FALSE(report.violations.empty());
}

TEST(PrinterTest, RendersRulesAndDirectives) {
  rdf::TermDictionary dict;
  SkolemStore skolems;
  Program program;
  uint32_t f = skolems.InternFunction("f1");
  RuleBuilder rb(&program.predicates);
  rb.Head("ans", {rb.Var("ID"), rb.Var("X")});
  rb.Body("triple", {rb.Var("X"), RuleBuilder::Const(ValueFromTerm(
                                      dict.InternIri("http://p"))),
                     rb.Var("Y"), rb.Var("D")});
  rb.NegBody("excluded", {rb.Var("X")});
  rb.Ne(rb.Var("X"), rb.Var("Y"));
  rb.Skolem(rb.Var("ID"), f, {rb.Var("X"), rb.Var("Y")});
  program.rules.push_back(rb.Build());
  program.output.predicate = *program.predicates.Lookup("ans");
  program.output.limit = 5;

  std::string text = ToString(program, dict, skolems);
  EXPECT_NE(text.find("ans(ID, X) :- triple(X, <http://p>, Y, D)"),
            std::string::npos);
  EXPECT_NE(text.find("not excluded(X)"), std::string::npos);
  EXPECT_NE(text.find("X != Y"), std::string::npos);
  EXPECT_NE(text.find("ID = [\"f1\", X, Y]"), std::string::npos);
  EXPECT_NE(text.find("@post(\"ans\", \"limit(5)\")"), std::string::npos);
  EXPECT_NE(text.find("@output(\"ans\")"), std::string::npos);
}

}  // namespace
}  // namespace sparqlog::datalog
