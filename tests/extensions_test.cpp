// Tests for the extension features beyond the published engine (the
// paper's §7 roadmap toward full SPARQL coverage): FILTER EXISTS /
// NOT EXISTS, BIND and VALUES — gated behind the `extensions` option so
// the Table 1 experiment still reproduces the published coverage.
// Each feature is differentially tested: the translated Datalog pipeline
// must match the reference evaluator.

#include <gtest/gtest.h>

#include "core/engine.h"
#include "datalog/stratify.h"
#include "datalog/warded.h"
#include "eval/algebra_eval.h"
#include "rdf/turtle_parser.h"
#include "sparql/parser.h"

namespace sparqlog {
namespace {

using eval::QueryResult;

class ExtensionsTest : public ::testing::Test {
 protected:
  ExtensionsTest() : dataset_(&dict_) {
    auto st = rdf::ParseTurtle(R"(
      @prefix ex: <http://ex.org/> .
      ex:alice ex:age 30 ; ex:knows ex:bob , ex:carol .
      ex:bob ex:age 25 .
      ex:carol ex:age 35 ; ex:knows ex:alice .
      ex:dave ex:age 40 .
    )",
                               &dataset_);
    EXPECT_TRUE(st.ok()) << st.ToString();
  }

  sparql::Query Parse(const std::string& text) {
    sparql::ParserOptions options;
    options.extensions = true;
    auto q = sparql::ParseQuery("PREFIX ex: <http://ex.org/>\n" + text,
                                &dict_, options);
    EXPECT_TRUE(q.ok()) << q.status().ToString();
    return std::move(q).ValueOrDie();
  }

  /// Runs both engines and checks agreement; returns the pipeline result.
  QueryResult RunBoth(const std::string& text) {
    sparql::Query q = Parse(text);
    ExecContext ctx;
    eval::AlgebraEvaluator reference(dataset_, &dict_, &ctx);
    auto expected = reference.EvalQuery(q);
    EXPECT_TRUE(expected.ok()) << expected.status().ToString();

    core::Engine::Options options;
    options.extensions = true;
    core::Engine engine(&dataset_, &dict_, options);
    EXPECT_TRUE(engine.Load().ok());
    auto got = engine.Execute(q);
    EXPECT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_TRUE(got->result.SameSolutions(*expected))
        << text << "\nreference:\n"
        << expected->ToString(dict_) << "\npipeline:\n"
        << got->result.ToString(dict_);
    return std::move(std::move(got).ValueOrDie().result);
  }

  std::string Lex(rdf::TermId id) { return dict_.get(id).lexical; }

  rdf::TermDictionary dict_;
  rdf::Dataset dataset_;
};

TEST_F(ExtensionsTest, DefaultModeStillRejects) {
  // Without the flag the features stay NotSupported (Table 1 fidelity).
  rdf::TermDictionary dict;
  auto q = sparql::ParseQuery(
      "SELECT ?x WHERE { ?x ?p ?o . FILTER EXISTS { ?x ?q ?z } }", &dict);
  EXPECT_TRUE(q.status().IsNotSupported());
}

TEST_F(ExtensionsTest, FilterExistsKeepsMatchingRows) {
  QueryResult r = RunBoth(
      "SELECT ?x WHERE { ?x ex:age ?a . "
      "FILTER EXISTS { ?x ex:knows ?y } }");
  // alice and carol know someone.
  EXPECT_EQ(r.rows.size(), 2u);
}

TEST_F(ExtensionsTest, FilterNotExistsKeepsNonMatchingRows) {
  QueryResult r = RunBoth(
      "SELECT ?x WHERE { ?x ex:age ?a . "
      "FILTER NOT EXISTS { ?x ex:knows ?y } }");
  // bob and dave know nobody.
  EXPECT_EQ(r.rows.size(), 2u);
}

TEST_F(ExtensionsTest, ExistsIsCorrelatedOnSharedVariables) {
  // Only pairs where the knows edge exists in reverse survive.
  QueryResult r = RunBoth(
      "SELECT ?x ?y WHERE { ?x ex:knows ?y . "
      "FILTER EXISTS { ?y ex:knows ?x } }");
  EXPECT_EQ(r.rows.size(), 2u);  // alice<->carol both directions
}

TEST_F(ExtensionsTest, ExistsPreservesMultiplicity) {
  // Bag semantics: the filtered rows keep their duplicates.
  QueryResult r = RunBoth(
      "SELECT ?x WHERE { ?x ex:knows ?y . "
      "FILTER EXISTS { ?x ex:age ?a } }");
  EXPECT_EQ(r.rows.size(), 3u);  // alice twice (two knows edges), carol once
}

TEST_F(ExtensionsTest, BindComputesValues) {
  QueryResult r = RunBoth(
      "SELECT ?x ?doubled WHERE { ?x ex:age ?a . "
      "BIND(?a * 2 AS ?doubled) } ORDER BY ?doubled");
  ASSERT_EQ(r.rows.size(), 4u);
  EXPECT_EQ(Lex(r.rows[0][1]), "50");
  EXPECT_EQ(Lex(r.rows[3][1]), "80");
}

TEST_F(ExtensionsTest, BindErrorLeavesUnbound) {
  QueryResult r = RunBoth(
      "SELECT ?x ?bad WHERE { ?x ex:knows ?y . "
      "BIND(?y + 1 AS ?bad) }");  // IRI + 1 is a type error
  ASSERT_EQ(r.rows.size(), 3u);
  for (const auto& row : r.rows) {
    EXPECT_EQ(row[1], rdf::TermDictionary::kUndef);
  }
}

TEST_F(ExtensionsTest, BindChainsAndFilters) {
  QueryResult r = RunBoth(
      "SELECT ?x WHERE { ?x ex:age ?a . BIND(?a + 5 AS ?b) . "
      "FILTER (?b > 33) }");
  EXPECT_EQ(r.rows.size(), 3u);  // 35, 40, 45 pass; 30 does not
}

TEST_F(ExtensionsTest, ValuesSingleVariableJoins) {
  QueryResult r = RunBoth(
      "SELECT ?x ?a WHERE { VALUES ?x { ex:alice ex:dave ex:ghost } "
      "?x ex:age ?a }");
  EXPECT_EQ(r.rows.size(), 2u);  // ghost has no age triple
}

TEST_F(ExtensionsTest, ValuesMultiColumnWithUndef) {
  QueryResult r = RunBoth(
      "SELECT ?x ?a WHERE { VALUES (?x ?a) { (ex:alice 30) (ex:bob UNDEF) } "
      "?x ex:age ?a }");
  // (alice, 30) matches; (bob, UNDEF) joins with bob's real age.
  EXPECT_EQ(r.rows.size(), 2u);
}

TEST_F(ExtensionsTest, ValuesAloneProducesInlineRows) {
  QueryResult r = RunBoth("SELECT ?v WHERE { VALUES ?v { 1 2 2 } }");
  EXPECT_EQ(r.rows.size(), 3u);  // duplicates preserved
  QueryResult d = RunBoth("SELECT DISTINCT ?v WHERE { VALUES ?v { 1 2 2 } }");
  EXPECT_EQ(d.rows.size(), 2u);
}

TEST_F(ExtensionsTest, CombinedExtensions) {
  QueryResult r = RunBoth(R"(
    SELECT ?x ?label WHERE {
      VALUES ?x { ex:alice ex:bob ex:dave }
      ?x ex:age ?a .
      BIND(?a >= 30 AS ?label)
      FILTER NOT EXISTS { ?x ex:knows ex:carol }
    } ORDER BY ?x)");
  // alice knows carol -> removed; bob (25->false) and dave (40->true) stay.
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(Lex(r.rows[0][1]), "false");
  EXPECT_EQ(Lex(r.rows[1][1]), "true");
}

TEST_F(ExtensionsTest, TranslationStaysWardedAndStratifiable) {
  sparql::Query q = Parse(
      "SELECT ?x WHERE { ?x ex:age ?a . BIND(?a + 1 AS ?b) . "
      "VALUES ?x { ex:alice } FILTER NOT EXISTS { ?x ex:knows ?y } }");
  datalog::SkolemStore skolems;
  core::QueryTranslator translator(&dict_, &skolems);
  auto program = translator.Translate(q);
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  EXPECT_TRUE(datalog::AnalyzeWarded(*program).warded);
  EXPECT_TRUE(datalog::Stratify(*program).ok());
}

}  // namespace
}  // namespace sparqlog
