// Differential coverage for the bulk EDB load path (TupleStore::BulkLoad /
// Relation::BulkLoad / DataTranslator's batched build): bulk-built
// relations must be query-identical to insert-built ones — including
// duplicate-heavy and empty batches and the dynamic arity > 4 fallback —
// and the full engine pipeline over a bulk-loaded EDB must agree with the
// per-tuple reference build at num_threads {1, 2, 8}.

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

#include "core/data_translator.h"
#include "core/engine.h"
#include "datalog/printer.h"
#include "datalog/relation.h"
#include "datalog/value.h"
#include "rdf/dictionary.h"
#include "rdf/graph.h"

namespace sparqlog::datalog {
namespace {

class TupleStoreBulkLoad : public ::testing::Test {
 protected:
  /// Flat duplicate-heavy batch of `n` arity-`k` rows over a small
  /// domain of interned integer terms (values must be dictionary-backed
  /// so canonical dumps can render them).
  std::vector<Value> MakeBatch(size_t n, uint32_t k, uint64_t seed) {
    std::vector<Value> rows;
    rows.reserve(n * k);
    Rng rng(seed);
    for (size_t i = 0; i < n; ++i) {
      for (uint32_t c = 0; c < k; ++c) rows.push_back(V(rng.Uniform(23) + 1));
    }
    return rows;
  }

  Value V(uint64_t i) {
    return ValueFromTerm(dict_.InternInteger(static_cast<int64_t>(i)));
  }

  /// Canonical sorted dump of a relation, for set comparison.
  std::string Canonical(const Relation& rel) {
    SkolemStore skolems;
    return ToString(rel, "r", dict_, skolems);
  }

  rdf::TermDictionary dict_;
};

TEST_F(TupleStoreBulkLoad, EmptyBatch) {
  Relation rel(2);
  EXPECT_EQ(rel.BulkLoad({}), 0u);
  EXPECT_EQ(rel.size(), 0u);
  EXPECT_FALSE(rel.Contains({V(1), V(2)}));
  // The store stays fully usable for ordinary inserts afterwards.
  EXPECT_TRUE(rel.Insert({V(1), V(2)}, 0));
  EXPECT_FALSE(rel.Insert({V(1), V(2)}, 0));
  EXPECT_TRUE(rel.Contains({V(1), V(2)}));
}

TEST_F(TupleStoreBulkLoad, DedupsDuplicateHeavyBatchBitIdentically) {
  std::vector<Value> batch = MakeBatch(5000, 2, 7);
  Relation bulk(2);
  Relation insert(2);
  for (size_t i = 0; i < batch.size(); i += 2) insert.Insert(&batch[i], 0);
  uint32_t loaded = bulk.BulkLoad(batch);
  EXPECT_EQ(loaded, insert.size());
  EXPECT_EQ(bulk.size(), insert.size());
  EXPECT_LT(bulk.size(), 5000u);  // the domain guarantees heavy dups
  EXPECT_EQ(Canonical(bulk), Canonical(insert));
  // BulkLoad preserves first-occurrence order: the arena is bit-identical
  // to the per-tuple build, row ids included.
  for (uint32_t i = 0; i < bulk.size(); ++i) {
    EXPECT_TRUE(bulk.row(i) == insert.row(i)) << "row " << i;
  }
  // Dedup table answers point lookups for every loaded row.
  for (size_t i = 0; i < batch.size(); i += 2) {
    EXPECT_TRUE(bulk.Contains(&batch[i]));
  }
  std::vector<Value> absent = {V(99), V(99)};
  EXPECT_FALSE(bulk.Contains(absent));
}

TEST_F(TupleStoreBulkLoad, DynamicStrideFallbackBeyondArity4) {
  const uint32_t k = 6;
  std::vector<Value> batch = MakeBatch(800, k, 11);
  Relation bulk(k);
  Relation insert(k);
  for (size_t i = 0; i < batch.size(); i += k) insert.Insert(&batch[i], 0);
  EXPECT_EQ(bulk.BulkLoad(batch), insert.size());
  EXPECT_EQ(Canonical(bulk), Canonical(insert));
  for (size_t i = 0; i < batch.size(); i += k) {
    EXPECT_TRUE(bulk.Contains(&batch[i]));
  }
}

TEST_F(TupleStoreBulkLoad, ProbeAndLaterInsertsAfterBulkLoad) {
  std::vector<Value> batch = MakeBatch(2000, 3, 3);
  Relation bulk(3);
  Relation insert(3);
  for (size_t i = 0; i < batch.size(); i += 3) insert.Insert(&batch[i], 0);
  bulk.BulkLoad(batch, /*round=*/0);

  // Round bookkeeping: the whole load is one round-0 range.
  auto [lo, hi] = bulk.RoundRange(0);
  EXPECT_EQ(lo, 0u);
  EXPECT_EQ(hi, bulk.size());

  // Index probes over the bulk arena agree with the insert-built twin.
  const std::vector<uint32_t> cols = {1};
  for (uint64_t key = 1; key <= 23; ++key) {
    std::vector<Value> k = {V(key)};
    MatchSpan a = bulk.Probe(cols, k);
    MatchSpan b = insert.Probe(cols, k);
    EXPECT_EQ(a.size(), b.size()) << "key " << key;
  }

  // Later tuple-at-a-time inserts extend the relation and its indexes.
  size_t before = bulk.size();
  std::vector<Value> fresh = {V(77), V(88), V(99)};
  EXPECT_TRUE(bulk.Insert(fresh, 1));
  EXPECT_FALSE(bulk.Insert(fresh, 1));
  auto [lo1, hi1] = bulk.RoundRange(1);
  EXPECT_EQ(lo1, before);
  EXPECT_EQ(hi1, bulk.size());
  std::vector<Value> key88 = {V(88)};
  MatchSpan span = bulk.Probe(cols, key88);
  ASSERT_EQ(span.size(), 1u);
  EXPECT_TRUE(bulk.row(span[0]) == fresh);
}

// --- DataTranslator differential -------------------------------------------

rdf::Dataset BuildMixedDataset(rdf::TermDictionary* dict) {
  rdf::Dataset dataset(dict);
  auto iri = [&](const std::string& s) {
    return dict->InternIri("http://t.org/" + s);
  };
  rdf::TermId p = iri("p");
  rdf::TermId q = iri("q");
  for (int i = 0; i < 30; ++i) {
    dataset.default_graph().Add(iri("n" + std::to_string(i % 7)), p,
                                iri("n" + std::to_string((i + 3) % 7)));
  }
  dataset.default_graph().Add(iri("n0"), q,
                              dict->InternLiteral("lit", "", "en"));
  dataset.default_graph().Add(dict->InternBlank("b1"), p, iri("n1"));
  rdf::TermId g1 = iri("g1");
  dataset.named_graph(g1).Add(iri("n1"), q, dict->InternInteger(42));
  dataset.named_graph(g1).Add(dict->InternBlank("b2"), p, iri("n2"));
  return dataset;
}

TEST(DataTranslatorBulkLoad, BulkAndPerTupleBuildsAreSetIdentical) {
  rdf::TermDictionary dict;
  rdf::Dataset dataset = BuildMixedDataset(&dict);

  Database bulk, per_tuple;
  ASSERT_TRUE(core::DataTranslator::Translate(dataset, &dict, &bulk,
                                              core::EdbBuild::kBulkLoad)
                  .ok());
  ASSERT_TRUE(core::DataTranslator::Translate(dataset, &dict, &per_tuple,
                                              core::EdbBuild::kPerTupleInsert)
                  .ok());

  PredicateTable preds;
  core::InternEdbPredicates(&preds);
  SkolemStore skolems;
  EXPECT_EQ(bulk.TotalTuples(), per_tuple.TotalTuples());
  EXPECT_EQ(ToString(bulk, preds, dict, skolems),
            ToString(per_tuple, preds, dict, skolems));

  // Stronger than set equality: every relation's arena is bit-identical
  // (first-occurrence order preserved), so anything downstream that
  // depends on row ids or iteration order behaves identically.
  for (uint32_t pred : bulk.Predicates()) {
    const Relation* b = bulk.Find(pred);
    const Relation* p = per_tuple.Find(pred);
    ASSERT_NE(p, nullptr) << "pred " << pred;
    ASSERT_EQ(b->size(), p->size()) << "pred " << pred;
    for (uint32_t i = 0; i < b->size(); ++i) {
      EXPECT_TRUE(b->row(i) == p->row(i)) << "pred " << pred << " row " << i;
    }
  }
}

TEST(DataTranslatorBulkLoad, SparseDatasetMaterializesSameRelationSet) {
  // IRIs only — no literals, bnodes or named graphs. The bulk path must
  // not create empty relations the per-tuple path never would.
  rdf::TermDictionary dict;
  rdf::Dataset dataset(&dict);
  rdf::TermId p = dict.InternIri("http://t.org/p");
  dataset.default_graph().Add(dict.InternIri("http://t.org/a"), p,
                              dict.InternIri("http://t.org/b"));

  Database bulk, per_tuple;
  ASSERT_TRUE(core::DataTranslator::Translate(dataset, &dict, &bulk,
                                              core::EdbBuild::kBulkLoad)
                  .ok());
  ASSERT_TRUE(core::DataTranslator::Translate(dataset, &dict, &per_tuple,
                                              core::EdbBuild::kPerTupleInsert)
                  .ok());
  EXPECT_EQ(bulk.Predicates(), per_tuple.Predicates());
  EXPECT_EQ(bulk.TotalTuples(), per_tuple.TotalTuples());
}

TEST(DataTranslatorBulkLoad, EmptyDatasetStillMaterializesCoreRelations) {
  rdf::TermDictionary dict;
  rdf::Dataset dataset(&dict);
  Database edb;
  ASSERT_TRUE(core::DataTranslator::Translate(dataset, &dict, &edb,
                                              core::EdbBuild::kBulkLoad)
                  .ok());
  PredicateTable preds;
  core::EdbPredicates p = core::InternEdbPredicates(&preds);
  EXPECT_NE(edb.Find(p.triple), nullptr);
  EXPECT_NE(edb.Find(p.term), nullptr);
  EXPECT_NE(edb.Find(p.subject_or_object), nullptr);
  // null("null") is always present.
  ASSERT_NE(edb.Find(p.null_pred), nullptr);
  EXPECT_EQ(edb.Find(p.null_pred)->size(), 1u);
}

// --- Engine-level differential across thread counts -------------------------

/// Chain graph with shortcuts and a recursive query mix, mirroring the
/// micro benchmarks: recursive paths exercise the parallel fixpoint,
/// OPTIONAL/ORDER BY exercise the solution translation.
void BuildChain(size_t n, rdf::TermDictionary* dict, rdf::Dataset* dataset) {
  rdf::TermId p = dict->InternIri("http://b.org/p");
  auto node = [&](size_t i) {
    return dict->InternIri("http://b.org/n" + std::to_string(i));
  };
  for (size_t i = 0; i + 1 < n; ++i) {
    dataset->default_graph().Add(node(i), p, node(i + 1));
    if (i % 7 == 0 && i + 5 < n) {
      dataset->default_graph().Add(node(i), p, node(i + 5));
    }
  }
}

TEST(EngineBulkLoad, BulkMatchesPerTupleAcrossThreadCounts) {
  rdf::TermDictionary dict;
  rdf::Dataset dataset(&dict);
  BuildChain(120, &dict, &dataset);

  const std::vector<std::string> queries = {
      // Deterministic order (ORDER BY + content tie-break).
      "SELECT ?x ?y WHERE { ?x <http://b.org/p>+ ?y } ORDER BY ?x ?y",
      "SELECT ?x ?y WHERE { ?x <http://b.org/p> ?y }",
      "ASK { <http://b.org/n0> <http://b.org/p>+ <http://b.org/n9> }",
  };

  for (uint32_t threads : {1u, 2u, 8u}) {
    core::Engine::Options bulk_opts;
    bulk_opts.parallelism.num_threads = threads;
    core::Engine bulk_engine(&dataset, &dict, bulk_opts);
    ASSERT_TRUE(bulk_engine.Load().ok());

    core::Engine::Options ref_opts = bulk_opts;
    ref_opts.edb_build = core::EdbBuild::kPerTupleInsert;
    core::Engine ref_engine(&dataset, &dict, ref_opts);
    ASSERT_TRUE(ref_engine.Load().ok());

    for (size_t qi = 0; qi < queries.size(); ++qi) {
      auto got = bulk_engine.ExecuteText(queries[qi]);
      auto want = ref_engine.ExecuteText(queries[qi]);
      ASSERT_TRUE(got.ok()) << queries[qi] << got.status().ToString();
      ASSERT_TRUE(want.ok()) << queries[qi] << want.status().ToString();
      EXPECT_TRUE(got->result.SameSolutions(want->result))
          << "threads=" << threads << " query " << qi;
      // The bulk-built EDB is bit-identical to the per-tuple one, so the
      // whole pipeline — row order included — must agree exactly.
      EXPECT_EQ(got->result.rows, want->result.rows)
          << "threads=" << threads << " query " << qi;
      EXPECT_EQ(got->result.is_ask, want->result.is_ask);
      EXPECT_EQ(got->result.ask_value, want->result.ask_value);
    }
  }

  // And the bulk path itself is bit-identical across thread counts for
  // the deterministically ordered query.
  std::vector<std::vector<rdf::TermId>> first;
  for (uint32_t threads : {1u, 2u, 8u}) {
    core::Engine::Options opts;
    opts.parallelism.num_threads = threads;
    core::Engine engine(&dataset, &dict, opts);
    ASSERT_TRUE(engine.Load().ok());
    auto result = engine.ExecuteText(queries[0]);
    ASSERT_TRUE(result.ok());
    if (first.empty()) {
      first = result->result.rows;
      ASSERT_FALSE(first.empty());
    } else {
      EXPECT_EQ(result->result.rows, first) << "threads=" << threads;
    }
  }
}

TEST(EngineBulkLoad, GenerationBumpRebuildsEdbThroughBulkPath) {
  rdf::TermDictionary dict;
  rdf::Dataset dataset(&dict);
  BuildChain(40, &dict, &dataset);
  core::Engine engine(&dataset, &dict);
  ASSERT_TRUE(engine.Load().ok());

  const std::string query =
      "SELECT ?x ?y WHERE { ?x <http://b.org/p>+ ?y } ORDER BY ?x ?y";
  auto before = engine.ExecuteText(query);
  ASSERT_TRUE(before.ok());

  // Mutate and republish: the explicit re-Load() must rebuild the EDB
  // (bulk path) so the next Execute sees the new edge.
  rdf::TermId p = dict.InternIri("http://b.org/p");
  dataset.default_graph().Add(dict.InternIri("http://b.org/extra"), p,
                              dict.InternIri("http://b.org/n0"));
  ASSERT_TRUE(engine.Load().ok());
  auto after = engine.ExecuteText(query);
  ASSERT_TRUE(after.ok());
  EXPECT_GT(after->result.rows.size(), before->result.rows.size());
  EXPECT_GE(engine.stats().invalidations, 1u);
}

}  // namespace
}  // namespace sparqlog::datalog
