// Tests for the benchmark workloads: generator determinism, the paper's
// query counts (17 / 50 / 236 / 77 / 6), parseability and executability
// of every bundled query, and the compliance-classification machinery.

#include <gtest/gtest.h>

#include <set>

#include "core/engine.h"
#include "eval/algebra_eval.h"
#include "sparql/features.h"
#include "sparql/parser.h"
#include "workloads/beseppi.h"
#include "workloads/feasible.h"
#include "workloads/gmark.h"
#include "workloads/ontobench.h"
#include "workloads/runner.h"
#include "workloads/sp2bench.h"
#include "workloads/systems.h"

namespace sparqlog::workloads {
namespace {

TEST(Sp2bTest, GeneratorIsDeterministicAndSized) {
  rdf::TermDictionary d1, d2;
  rdf::Dataset a(&d1), b(&d2);
  Sp2bOptions options;
  options.target_triples = 2000;
  GenerateSp2b(options, &a);
  GenerateSp2b(options, &b);
  EXPECT_EQ(a.default_graph().size(), b.default_graph().size());
  EXPECT_GE(a.default_graph().size(), 2000u);
  EXPECT_LE(a.default_graph().size(), 2100u);
}

TEST(Sp2bTest, SeventeenQueriesAllParse) {
  rdf::TermDictionary dict;
  auto queries = Sp2bQueries();
  EXPECT_EQ(queries.size(), 17u);
  std::set<std::string> names;
  for (const auto& [name, text] : queries) {
    names.insert(name);
    auto q = sparql::ParseQuery(text, &dict);
    EXPECT_TRUE(q.ok()) << name << ": " << q.status().ToString();
  }
  EXPECT_EQ(names.size(), 17u);
}

TEST(Sp2bTest, QueriesProduceResultsOnGeneratedData) {
  rdf::TermDictionary dict;
  rdf::Dataset dataset(&dict);
  Sp2bOptions options;
  options.target_triples = 1500;
  GenerateSp2b(options, &dataset);
  core::Engine engine(&dataset, &dict);
  ASSERT_TRUE(engine.Load().ok());
  // Spot-check queries that must be non-empty on any generated instance.
  for (const char* name : {"q1", "q2", "q3a", "q5b", "q10", "q11"}) {
    for (const auto& [qname, text] : Sp2bQueries()) {
      if (qname != name) continue;
      auto result = engine.ExecuteText(text);
      ASSERT_TRUE(result.ok()) << qname << ": "
                               << result.status().ToString();
      EXPECT_FALSE(result->result.rows.empty()) << qname;
    }
  }
}

TEST(GmarkTest, ScenariosAndDeterminism) {
  GmarkScenario social = GmarkSocial();
  EXPECT_EQ(social.predicates.size(), 12u);
  auto q1 = GenerateGmarkQueries(social);
  auto q2 = GenerateGmarkQueries(social);
  EXPECT_EQ(q1, q2);
  EXPECT_EQ(q1.size(), 50u);
  EXPECT_EQ(GenerateGmarkQueries(GmarkTest()).size(), 50u);
}

TEST(GmarkTest, AllQueriesParseAndUsePaths) {
  rdf::TermDictionary dict;
  size_t with_recursion = 0;
  for (const auto& scenario : {GmarkSocial(), GmarkTest()}) {
    for (const auto& text : GenerateGmarkQueries(scenario)) {
      auto q = sparql::ParseQuery(text, &dict);
      ASSERT_TRUE(q.ok()) << text << "\n" << q.status().ToString();
      auto f = sparql::AnalyzeFeatures(*q);
      if (f.path_one_or_more || f.path_zero_or_more || f.path_counted) {
        ++with_recursion;
      }
    }
  }
  // The workload must exercise recursion heavily (its entire point).
  EXPECT_GE(with_recursion, 30u);
}

TEST(GmarkTest, GraphHasRequestedShape) {
  rdf::TermDictionary dict;
  rdf::Dataset dataset(&dict);
  GmarkScenario s = GmarkTest();
  GenerateGmarkGraph(s, &dataset);
  EXPECT_EQ(dataset.default_graph().size(), s.edges);
  EXPECT_LE(dataset.default_graph().Predicates().size(),
            s.predicates.size());
}

TEST(BeseppiTest, CategoryCountsMatchTable3) {
  auto queries = BeseppiQueries();
  EXPECT_EQ(queries.size(), 236u);
  std::map<std::string, int> counts;
  for (const auto& q : queries) counts[q.category]++;
  EXPECT_EQ(counts["Inverse"], 20);
  EXPECT_EQ(counts["Sequence"], 24);
  EXPECT_EQ(counts["Alternative"], 23);
  EXPECT_EQ(counts["ZeroOrOne"], 24);
  EXPECT_EQ(counts["OneOrMore"], 34);
  EXPECT_EQ(counts["ZeroOrMore"], 38);
  EXPECT_EQ(counts["Negated"], 73);
}

TEST(BeseppiTest, AllQueriesParseAndEvaluate) {
  rdf::TermDictionary dict;
  rdf::Dataset dataset(&dict);
  GenerateBeseppiGraph(&dataset);
  for (const auto& bq : BeseppiQueries()) {
    auto q = sparql::ParseQuery(bq.text, &dict);
    ASSERT_TRUE(q.ok()) << bq.name << ": " << bq.text;
    ExecContext ctx;
    eval::AlgebraEvaluator ref(dataset, &dict, &ctx);
    auto r = ref.EvalQuery(*q);
    ASSERT_TRUE(r.ok()) << bq.name << ": " << r.status().ToString();
  }
}

TEST(FeasibleTest, SeventySevenQueriesParse) {
  rdf::TermDictionary dict;
  auto queries = FeasibleQueries();
  EXPECT_EQ(queries.size(), 77u);
  size_t distinct = 0, graph = 0, regex = 0;
  for (const auto& [name, text] : queries) {
    auto q = sparql::ParseQuery(text, &dict);
    ASSERT_TRUE(q.ok()) << name << ": " << q.status().ToString() << "\n"
                        << text;
    auto f = sparql::AnalyzeFeatures(*q);
    distinct += f.distinct;
    graph += f.graph;
    regex += f.regex;
  }
  // The paper's feature mix, loosely: DISTINCT heavy, GRAPH ~10%, REGEX ~9%.
  EXPECT_GE(distinct, 20u);
  EXPECT_GE(graph, 6u);
  EXPECT_GE(regex, 5u);
}

TEST(FeasibleTest, SwdfHasNamedGraph) {
  rdf::TermDictionary dict;
  rdf::Dataset dataset(&dict);
  GenerateSwdf(&dataset, 99, 100);
  EXPECT_GT(dataset.default_graph().size(), 300u);
  EXPECT_EQ(dataset.named_graphs().size(), 1u);
}

TEST(OntoBenchTest, SixQueriesAndOntologyTriples) {
  rdf::TermDictionary dict;
  rdf::Dataset dataset(&dict);
  OntoBenchOptions options;
  options.sp2b_triples = 1000;
  GenerateOntoBench(options, &dataset);
  EXPECT_EQ(OntoBenchQueries().size(), 6u);
  // subClassOf / subPropertyOf statements present.
  rdf::TermId sub_class = dict.InternIri(std::string(rdf::rdfns::kSubClassOf));
  size_t n = 0;
  dataset.default_graph().Match(std::nullopt, sub_class, std::nullopt,
                                [&](const rdf::Triple&) { ++n; });
  EXPECT_GE(n, 6u);
}

// Cache differential over the bundled workloads: every query swept twice
// through one engine (cold then warm) must reproduce bit-identical
// solutions, with the warm pass served from the program cache. This is
// the repeated-query serving scenario the caches exist for, exercised on
// realistic query mixes (SP2Bench's joins/optionals/filters and gMark's
// recursive paths).
TEST(CacheDifferentialTest, Sp2bQueriesColdWarmBitIdentical) {
  rdf::TermDictionary dict;
  rdf::Dataset dataset(&dict);
  Sp2bOptions options;
  options.target_triples = 800;
  GenerateSp2b(options, &dataset);

  core::Engine::Options eopts;
  eopts.timeout = std::chrono::seconds(10);
  eopts.tuple_budget = 4'000'000;
  core::Engine engine(&dataset, &dict, eopts);
  ASSERT_TRUE(engine.Load().ok());

  size_t swept = 0;
  for (const auto& [name, text] : Sp2bQueries()) {
    uint64_t hits_before = engine.stats().program_hits;
    auto cold = engine.ExecuteText(text);
    if (!cold.ok()) continue;  // over-budget queries can't be compared
    auto warm = engine.ExecuteText(text);
    ASSERT_TRUE(warm.ok()) << name << ": " << warm.status().ToString();
    EXPECT_EQ(cold->result.columns, warm->result.columns) << name;
    EXPECT_TRUE(cold->result.rows == warm->result.rows)
        << name << ": warm run diverged (" << cold->result.rows.size()
        << " vs " << warm->result.rows.size() << " rows)";
    EXPECT_EQ(warm->result.ask_value, cold->result.ask_value) << name;
    EXPECT_GT(engine.stats().program_hits, hits_before) << name;
    ++swept;
  }
  // The suite must actually sweep the workload, not skip it wholesale.
  EXPECT_GE(swept, 12u);
}

TEST(CacheDifferentialTest, GmarkQueriesColdWarmBitIdentical) {
  rdf::TermDictionary dict;
  rdf::Dataset dataset(&dict);
  GmarkScenario scenario = GmarkTest();
  GenerateGmarkGraph(scenario, &dataset);

  core::Engine::Options eopts;
  eopts.timeout = std::chrono::seconds(10);
  eopts.tuple_budget = 4'000'000;
  core::Engine engine(&dataset, &dict, eopts);
  ASSERT_TRUE(engine.Load().ok());

  size_t swept = 0;
  for (const auto& text : GenerateGmarkQueries(scenario)) {
    uint64_t hits_before = engine.stats().program_hits;
    auto cold = engine.ExecuteText(text);
    if (!cold.ok()) continue;
    auto warm = engine.ExecuteText(text);
    ASSERT_TRUE(warm.ok()) << text << "\n" << warm.status().ToString();
    EXPECT_EQ(cold->result.columns, warm->result.columns) << text;
    EXPECT_TRUE(cold->result.rows == warm->result.rows)
        << text << "\nwarm run diverged (" << cold->result.rows.size()
        << " vs " << warm->result.rows.size() << " rows)";
    EXPECT_GT(engine.stats().program_hits, hits_before) << text;
    ++swept;
  }
  EXPECT_GE(swept, 30u);
  // The recursive-path workload must exercise the stratum memo.
  EXPECT_GT(engine.stats().stratum_hits, 0u);
}

// Planner differential over the bundled workloads: the cost-based join
// planner must never change solution multisets (or ORDER BY row order) on
// realistic query mixes, at any thread count. Planner-off is the exact
// pre-planner pipeline (translation-order bodies, runtime heuristic), so
// this pins the planner as a pure evaluation-order optimization.
void SweepPlannerDifferential(const rdf::Dataset& dataset,
                              rdf::TermDictionary* dict,
                              const std::vector<std::string>& names,
                              const std::vector<std::string>& queries,
                              size_t min_swept) {
  for (uint32_t threads : {1u, 2u, 8u}) {
    core::Engine::Options on;
    on.timeout = std::chrono::seconds(10);
    on.tuple_budget = 4'000'000;
    on.parallelism.num_threads = threads;
    core::Engine::Options off = on;
    off.planner.join_planner = false;
    core::Engine planned(&dataset, dict, on);
    core::Engine plain(&dataset, dict, off);
    ASSERT_TRUE(planned.Load().ok());
    ASSERT_TRUE(plain.Load().ok());
    size_t swept = 0;
    for (size_t i = 0; i < queries.size(); ++i) {
      auto parsed = sparql::ParseQuery(queries[i], dict);
      ASSERT_TRUE(parsed.ok()) << names[i];
      auto a = planned.Execute(*parsed);
      auto b = plain.Execute(*parsed);
      // A budget-class failure (timeout / mem-out) on either side leaves
      // nothing to compare — slow hosts (Debug, sanitizers) legitimately
      // blow the 10 s deadline on the heaviest queries, on either engine.
      // Skip those; min_swept still enforces coverage. Any other failure
      // is a real bug and still fails the sweep.
      auto over_budget = [](const Status& s) {
        return s.IsTimeout() || s.IsResourceExhausted();
      };
      if (over_budget(a.status()) || over_budget(b.status())) continue;
      ASSERT_TRUE(a.ok()) << names[i] << " threads " << threads << ": "
                          << a.status().ToString();
      ASSERT_TRUE(b.ok()) << names[i] << " threads " << threads << ": "
                          << b.status().ToString();
      EXPECT_EQ(a->result.columns, b->result.columns) << names[i];
      EXPECT_TRUE(a->result.SameSolutions(b->result))
          << names[i] << " threads " << threads
          << ": planner changed solutions (" << a->result.rows.size()
          << " vs " << b->result.rows.size() << " rows)";
      if (!parsed->order_by.empty()) {
        EXPECT_TRUE(a->result.rows == b->result.rows)
            << names[i] << " threads " << threads
            << ": planner changed ORDER BY output";
      }
      ++swept;
    }
    EXPECT_GE(swept, min_swept) << "threads " << threads;
    // The planner actually ran on the planned engine...
    EXPECT_GT(planned.stats().plans_computed, 0u);
    // ...and never on the planner-off engine.
    EXPECT_EQ(plain.stats().plans_computed, 0u);
  }
}

TEST(PlannerDifferentialTest, Sp2bQueriesMatchAcrossThreadCounts) {
  rdf::TermDictionary dict;
  rdf::Dataset dataset(&dict);
  Sp2bOptions options;
  options.target_triples = 600;
  GenerateSp2b(options, &dataset);
  std::vector<std::string> names, queries;
  for (const auto& [name, text] : Sp2bQueries()) {
    names.push_back(name);
    queries.push_back(text);
  }
  SweepPlannerDifferential(dataset, &dict, names, queries, 12);
}

TEST(PlannerDifferentialTest, GmarkQueriesMatchAcrossThreadCounts) {
  rdf::TermDictionary dict;
  rdf::Dataset dataset(&dict);
  GmarkScenario scenario = GmarkTest();
  GenerateGmarkGraph(scenario, &dataset);
  std::vector<std::string> queries = GenerateGmarkQueries(scenario);
  std::vector<std::string> names;
  for (size_t i = 0; i < queries.size(); ++i) {
    names.push_back("gmark" + std::to_string(i));
  }
  SweepPlannerDifferential(dataset, &dict, names, queries, 30);
}

// The warm-repeat serving mode of the SparqLog adapter: Run() re-executes
// the query on the warm engine, records the warm timing and real cache
// hits, and FormatCacheStats renders them for harness tables.
TEST(CacheDifferentialTest, SparqLogSystemWarmRepeatRecordsCacheHits) {
  rdf::TermDictionary dict;
  rdf::Dataset dataset(&dict);
  Sp2bOptions options;
  options.target_triples = 400;
  GenerateSp2b(options, &dataset);
  Limits limits;
  limits.timeout_ms = 10000;
  limits.warm_repeat = true;

  auto system = MakeSparqLogSystem(&dataset, &dict, limits);
  RunRecord r = system->Run(
      Sp2bPrefixes() + "SELECT ?j WHERE { ?j rdf:type bench:Journal }");
  ASSERT_TRUE(r.ok()) << r.message;
  EXPECT_GE(r.warm_exec_seconds, 0.0);
  EXPECT_EQ(r.program_cache_hits, 1u);
  EXPECT_EQ(r.program_cache_misses, 1u);
  EXPECT_GT(r.stratum_memo_hits, 0u);
  EXPECT_GT(r.tuples_restored, 0u);
  // The cold run planned once; the warm repeat reused the cached plan.
  EXPECT_EQ(r.plans_computed, 1u);
  EXPECT_EQ(r.plan_cache_hits, 1u);
  EXPECT_GE(r.plan_estimate_error, 1.0);
  std::string line = FormatCacheStats(r);
  EXPECT_NE(line.find("Tq 1h/0r/1m"), std::string::npos) << line;
  EXPECT_NE(line.find("plan 1c/1h"), std::string::npos) << line;
}

// The fixpoint-parallelism counters render only when a run actually
// fanned out, so serial baselines keep the historical one-line format.
TEST(RunnerTest, FormatCacheStatsIncludesParallelCounters) {
  RunRecord r;
  r.program_cache_hits = 1;
  r.program_cache_misses = 1;
  std::string serial_line = FormatCacheStats(r);
  EXPECT_EQ(serial_line.find("par "), std::string::npos) << serial_line;
  r.parallel_rounds = 6;
  r.naive_rounds_sharded = 1;
  r.staged_tuples_merged = 120;
  r.merge_fanout_width = 4;
  r.interning_contention = 2;
  std::string line = FormatCacheStats(r);
  EXPECT_NE(line.find("par 6r/1n"), std::string::npos) << line;
  EXPECT_NE(line.find("120 merged ×4"), std::string::npos) << line;
  EXPECT_NE(line.find("2 contended"), std::string::npos) << line;
  // Planner counters render only when the planner ran.
  EXPECT_EQ(line.find("plan "), std::string::npos) << line;
  r.plans_computed = 2;
  r.plan_cache_hits = 1;
  r.plan_estimate_error = 1.5;
  std::string planned_line = FormatCacheStats(r);
  EXPECT_NE(planned_line.find("plan 2c/1h q1.5"), std::string::npos)
      << planned_line;
}

TEST(RunnerTest, OutcomeClassification) {
  EXPECT_EQ(ClassifyStatus(Status::OK()), Outcome::kOk);
  EXPECT_EQ(ClassifyStatus(Status::Timeout("t")), Outcome::kTimeout);
  EXPECT_EQ(ClassifyStatus(Status::ResourceExhausted("m")), Outcome::kMemOut);
  EXPECT_EQ(ClassifyStatus(Status::NotSupported("n")),
            Outcome::kNotSupported);
  EXPECT_EQ(ClassifyStatus(Status::Internal("x")), Outcome::kError);
}

TEST(RunnerTest, ComplianceClassification) {
  eval::QueryResult expected;
  expected.columns = {"x"};
  expected.rows = {{1}, {2}, {2}};

  RunRecord exact;
  exact.result = expected;
  ComplianceClass c = Classify(exact, expected);
  EXPECT_TRUE(c.correct && c.complete && !c.error);

  RunRecord incomplete;  // lost a duplicate
  incomplete.result.columns = {"x"};
  incomplete.result.rows = {{1}, {2}};
  c = Classify(incomplete, expected);
  EXPECT_TRUE(c.correct);
  EXPECT_FALSE(c.complete);

  RunRecord incorrect;  // invented a row
  incorrect.result.columns = {"x"};
  incorrect.result.rows = {{1}, {2}, {2}, {9}};
  c = Classify(incorrect, expected);
  EXPECT_FALSE(c.correct);
  EXPECT_TRUE(c.complete);

  RunRecord failed;
  failed.outcome = Outcome::kTimeout;
  c = Classify(failed, expected);
  EXPECT_TRUE(c.error);
}

TEST(SystemsTest, AllFourSystemsAnswerASimpleQuery) {
  rdf::TermDictionary dict;
  rdf::Dataset dataset(&dict);
  Sp2bOptions options;
  options.target_triples = 400;
  GenerateSp2b(options, &dataset);
  Limits limits;
  limits.timeout_ms = 10000;

  const std::string query = Sp2bPrefixes() +
                            "SELECT ?j WHERE { ?j rdf:type bench:Journal }";
  auto sparqlog_sys = MakeSparqLogSystem(&dataset, &dict, limits);
  auto fuseki = MakeFusekiSystem(&dataset, &dict, limits);
  auto virtuoso = MakeVirtuosoSystem(&dataset, &dict, limits);
  auto stardog = MakeStardogSystem(&dataset, &dict, limits);

  RunRecord base = fuseki->Run(query);
  ASSERT_TRUE(base.ok()) << base.message;
  EXPECT_FALSE(base.result.rows.empty());
  for (auto* sys : {sparqlog_sys.get(), virtuoso.get(), stardog.get()}) {
    RunRecord r = sys->Run(query);
    ASSERT_TRUE(r.ok()) << sys->name() << ": " << r.message;
    EXPECT_TRUE(r.result.SameSolutions(base.result)) << sys->name();
    EXPECT_GT(r.load_seconds, 0.0) << sys->name();
  }
}

TEST(SystemsTest, VirtuosoRejectsTwoVarRecursivePaths) {
  rdf::TermDictionary dict;
  rdf::Dataset dataset(&dict);
  GenerateBeseppiGraph(&dataset);
  Limits limits;
  auto virtuoso = MakeVirtuosoSystem(&dataset, &dict, limits);
  RunRecord r = virtuoso->Run(
      "SELECT ?x ?y WHERE { ?x <http://example.org/beseppi/p>+ ?y }");
  EXPECT_EQ(r.outcome, Outcome::kNotSupported);
}

}  // namespace
}  // namespace sparqlog::workloads
