// Full-registry failpoint sweep: every registered site must have a
// driver here that pushes an execution through it, and the injected
// error must come back as a typed Status (never a crash, never a
// default-500-style mangling) with the engine healthy again once the
// site is disarmed. A site this file does not know how to drive fails
// the sweep — adding a failpoint obligates adding its driver.
//
// On top of the sweep, the ApplyUpdate sites get the strong check the
// tentpole promises: a failure injected at any stage of a publish —
// after deletions, after staged inserts, just before the version
// publish — must leave the engine bit-identical to its pre-update
// state (query results, dataset generation, update counters), across
// fixpoint thread counts {1, 2, 8}, and the engine must accept the
// next update normally.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/engine.h"
#include "rdf/turtle_parser.h"
#include "server/http_server.h"
#include "util/failpoint.h"

namespace sparqlog {
namespace {

using core::Engine;
using util::Failpoints;

constexpr const char* kPrefix = "PREFIX r: <http://r.org/>\n";

constexpr const char* kTurtle = R"(
@prefix r: <http://r.org/> .
r:n0 r:p r:n1 . r:n1 r:p r:n2 . r:n2 r:p r:n3 .
r:n3 r:p r:n4 . r:n1 r:q r:n5 . r:n2 r:q r:n6 .
r:n5 r:q r:n0 . r:n4 r:p r:n0 .
)";

rdf::TermId Node(rdf::TermDictionary* dict, size_t i) {
  return dict->InternIri("http://r.org/n" + std::to_string(i));
}

rdf::TermId Pred(rdf::TermDictionary* dict, const std::string& name) {
  return dict->InternIri("http://r.org/" + name);
}

/// Copies every triple of `src` into `dst` (shared dictionary, so the
/// copy is id-for-id).
void CopyDataset(const rdf::Dataset& src, rdf::Dataset* dst) {
  for (const rdf::Triple& t : src.default_graph().triples()) {
    dst->default_graph().Add(t);
  }
  for (const auto& [name, graph] : src.named_graphs()) {
    for (const rdf::Triple& t : graph.triples()) {
      dst->named_graph(name).Add(t);
    }
  }
}

/// One engine world (dictionary + dataset + engine) built while every
/// failpoint is disarmed, so arming a site never corrupts the setup
/// the driver is about to exercise.
struct World {
  rdf::TermDictionary dict;
  rdf::Dataset dataset{&dict};
  std::unique_ptr<Engine> engine;

  explicit World(Engine::Options options = {}, bool load = true) {
    Status st = rdf::ParseTurtle(kTurtle, &dataset);
    EXPECT_TRUE(st.ok()) << st.ToString();
    engine = std::make_unique<Engine>(&dataset, &dict, options);
    if (load) {
      EXPECT_TRUE(engine->Load().ok());
    }
  }

  Status Query() {
    return engine
        ->ExecuteText(kPrefix + std::string("SELECT ?x ?y WHERE "
                                            "{ ?x r:p+ ?y }"))
        .status();
  }

  Status Update() {
    rdf::Triple fresh{Node(&dict, 90), Pred(&dict, "p"), Node(&dict, 91)};
    rdf::Triple present{Node(&dict, 0), Pred(&dict, "p"), Node(&dict, 1)};
    return engine->ApplyUpdate({fresh}, {present}, nullptr);
  }
};

/// Sends one raw HTTP request to 127.0.0.1:port and returns everything
/// the server wrote back ("" on connect failure or a dropped response).
std::string HttpRoundTrip(uint16_t port, const std::string& raw) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  size_t sent = 0;
  while (sent < raw.size()) {
    ssize_t n = ::send(fd, raw.data() + sent, raw.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
  std::string reply;
  char chunk[4096];
  ssize_t n;
  while ((n = ::recv(fd, chunk, sizeof(chunk), 0)) > 0) {
    reply.append(chunk, static_cast<size_t>(n));
  }
  ::close(fd);
  return reply;
}

constexpr const char* kHealthRequest =
    "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n";

class FailpointSweepTest : public ::testing::Test {
 protected:
  void TearDown() override { Failpoints::Instance().DisarmAll(); }
};

// ---------------------------------------------------------------------
// The sweep: every registered site, driven, typed, recovered.
TEST_F(FailpointSweepTest, EveryRegisteredSiteInjectsTypedStatusAndRecovers) {
  struct Driver {
    /// Runs with the site armed `error(unavailable)`; returns the
    /// Status the injection surfaced as.
    std::function<Status()> op;
    /// Runs after disarm; must succeed — proves the failure did not
    /// wedge anything.
    std::function<Status()> canary;
  };

  // Each driver builds its world up front (all sites disarmed during
  // the lambda's *construction*; the world inside is built lazily on
  // first call, which happens only after arming — so worlds that must
  // pre-exist are captured as shared state here).
  std::map<std::string, Driver> drivers;

  auto parse_driver = [] {
    return Driver{
        [] {
          rdf::TermDictionary dict;
          rdf::Dataset dataset(&dict);
          return rdf::ParseTurtle(kTurtle, &dataset);
        },
        [] {
          rdf::TermDictionary dict;
          rdf::Dataset dataset(&dict);
          return rdf::ParseTurtle(kTurtle, &dataset);
        }};
  };
  drivers["rdf.turtle.statement"] = parse_driver();
  drivers["rdf.intern.term"] = parse_driver();

  // Load-path sites: the world is constructed (parse only) before the
  // site arms; Load runs armed and must fail without leaving a
  // half-loaded engine.
  auto load_driver = [](const char* /*site*/) {
    auto world = std::make_shared<World>(Engine::Options{}, /*load=*/false);
    return Driver{[world] {
                    Status st = world->engine->Load();
                    EXPECT_FALSE(world->engine->loaded())
                        << "failed Load left the engine marked loaded";
                    return st;
                  },
                  [world] {
                    SPARQLOG_RETURN_NOT_OK(world->engine->Load());
                    return world->Query();
                  }};
  };
  drivers["core.edb.translate"] = load_driver("core.edb.translate");
  drivers["core.edb.bulk_load"] = load_driver("core.edb.bulk_load");
  drivers["engine.load.publish"] = load_driver("engine.load.publish");

  {
    auto world = std::make_shared<World>();
    drivers["datalog.stratum.begin"] =
        Driver{[world] { return world->Query(); },
               [world] { return world->Query(); }};
  }
  {
    // The parallel round-barrier merge runs only for sharded recursive
    // strata: multiple fixpoint threads and the generic evaluator (the
    // TC kernel would swallow the single-closure stratum otherwise).
    Engine::Options options;
    options.parallelism.num_threads = 2;
    options.fixpoint.tc_kernel = false;
    auto world = std::make_shared<World>(options);
    drivers["datalog.merge.round"] =
        Driver{[world] { return world->Query(); },
               [world] { return world->Query(); }};
  }

  for (const char* site :
       {"engine.update.net", "engine.update.translate",
        "engine.update.stage", "engine.update.publish"}) {
    auto world = std::make_shared<World>();
    drivers[site] = Driver{[world] { return world->Update(); },
                           [world] {
                             SPARQLOG_RETURN_NOT_OK(world->Update());
                             return world->Query();
                           }};
  }
  {
    Engine::Options options;
    options.update.incremental = false;
    auto world = std::make_shared<World>(options);
    drivers["engine.update.rebuild"] =
        Driver{[world] { return world->Update(); },
               [world] {
                 SPARQLOG_RETURN_NOT_OK(world->Update());
                 return world->Query();
               }};
  }

  // HTTP sites need a real socket round trip (Route() never passes
  // through the connection-handling code the sites live in). If the
  // sandbox forbids binding even a loopback socket, these drivers
  // degrade to "skipped" rather than failing the sweep.
  auto http_world = std::make_shared<World>();
  auto http_server = std::make_shared<server::HttpServer>(
      http_world->engine.get(), &http_world->dict);
  const bool http_ok = http_server->Start().ok();
  drivers["server.http.read"] = Driver{
      [http_server] {
        // The injected read error is mapped through StatusToHttp and
        // written back: the client sees 503 + the failpoint message.
        std::string reply = HttpRoundTrip(http_server->port(),
                                          kHealthRequest);
        if (reply.find("HTTP/1.1 503") == std::string::npos ||
            reply.find("failpoint") == std::string::npos) {
          return Status::Internal("injected read error not mapped: " + reply);
        }
        if (reply.find("Retry-After:") == std::string::npos) {
          return Status::Internal("503 without Retry-After: " + reply);
        }
        return Status::Unavailable(reply.substr(reply.find("failpoint")));
      },
      [http_server] {
        std::string reply = HttpRoundTrip(http_server->port(),
                                          kHealthRequest);
        return reply.find("HTTP/1.1 200") != std::string::npos
                   ? Status::OK()
                   : Status::Internal("canary health check failed: " + reply);
      }};
  drivers["server.http.write"] = Driver{
      [http_server] {
        // The injected write failure drops the response on the floor —
        // the client observes a closed connection with no bytes.
        std::string reply = HttpRoundTrip(http_server->port(),
                                          kHealthRequest);
        if (!reply.empty()) {
          return Status::Internal("response written despite injected write "
                                  "failure: " + reply);
        }
        return Status::Unavailable(
            "failpoint 'server.http.write' dropped the response");
      },
      drivers["server.http.read"].canary};

  size_t swept = 0;
  for (const std::string& site : Failpoints::Instance().Sites()) {
    SCOPED_TRACE("site: " + site);
    auto it = drivers.find(site);
    // The teeth of the sweep: a site without a driver is a test gap.
    ASSERT_NE(it, drivers.end())
        << "failpoint site '" << site
        << "' has no sweep driver — add one to failpoint_sweep_test.cpp";
    const bool is_http = site.rfind("server.http.", 0) == 0;
    if (is_http && !http_ok) continue;  // sandbox without loopback bind

    util::FailpointSite* fp = Failpoints::Instance().Find(site);
    ASSERT_NE(fp, nullptr);
    const uint64_t fired_before = fp->fired();
    ASSERT_TRUE(
        Failpoints::Instance().Arm(site, "error(unavailable)").ok());

    Status st = it->second.op();
    EXPECT_FALSE(st.ok()) << "armed site did not surface a failure";
    EXPECT_TRUE(st.IsUnavailable())
        << "injected kUnavailable surfaced as a different code: "
        << st.ToString();
    EXPECT_NE(st.message().find("failpoint"), std::string::npos)
        << "injected error lost its failpoint provenance: " << st.ToString();
    EXPECT_GT(fp->fired(), fired_before) << "site never actually fired";

    Failpoints::Instance().Disarm(site);
    Status canary = it->second.canary();
    EXPECT_TRUE(canary.ok())
        << "engine unhealthy after disarm: " << canary.ToString();
    ++swept;
  }
  // Belt and braces: the registry is not empty and the engine/server/
  // parser sites this PR wired are all present.
  EXPECT_GE(swept, http_ok ? 14u : 12u);
  http_server->Stop();
}

// ---------------------------------------------------------------------
// Tentpole check: a publish that dies at ANY stage rolls back to a
// bit-identical engine, across fixpoint thread counts.
class UpdateRollbackTest : public ::testing::TestWithParam<uint32_t> {
 protected:
  void TearDown() override { Failpoints::Instance().DisarmAll(); }
};

TEST_P(UpdateRollbackTest, MidPublishFailureLeavesEngineBitIdentical) {
  const uint32_t threads = GetParam();

  struct Scenario {
    const char* site;
    const char* spec;
    bool incremental;  // engine option; rebuild-path site needs false
  };
  const Scenario scenarios[] = {
      {"engine.update.net", "error(internal)", true},
      {"engine.update.translate", "error(internal)", true},
      // First check fires after the first predicate's deletions…
      {"engine.update.stage", "error(internal)", true},
      // …and skipping one hit lands the failure after its staged
      // inserts too, so rollback unwinds both kinds of mutation.
      {"engine.update.stage", "after(1):error(internal)", true},
      {"engine.update.publish", "error(internal)", true},
      {"engine.update.rebuild", "error(internal)", false},
  };

  for (const Scenario& scenario : scenarios) {
    SCOPED_TRACE(std::string(scenario.site) + " [" + scenario.spec +
                 "] threads=" + std::to_string(threads));

    Engine::Options options;
    options.parallelism.num_threads = threads;
    options.update.incremental = scenario.incremental;
    World world(options);
    Engine& engine = *world.engine;

    // A successful update first, so the rollback exercises an engine
    // with live occurrence counters and a pending published delta —
    // the realistic mid-life state, not a freshly loaded one.
    ASSERT_TRUE(engine
                    .ApplyUpdate({{Node(&world.dict, 6), Pred(&world.dict, "p"),
                                   Node(&world.dict, 7)}},
                                 {}, nullptr)
                    .ok());

    const std::string ordered = kPrefix +
                                std::string("SELECT ?x ?y WHERE { ?x r:p+ ?y }"
                                            " ORDER BY ?x ?y");
    auto before = engine.ExecuteText(ordered);
    ASSERT_TRUE(before.ok());
    const uint64_t updates_before = engine.stats().updates;
    const uint64_t generation_before = world.dataset.Generation();

    ASSERT_TRUE(Failpoints::Instance().Arm(scenario.site, scenario.spec).ok());
    Engine::UpdateStats us;
    rdf::Triple fresh{Node(&world.dict, 80), Pred(&world.dict, "p"),
                      Node(&world.dict, 81)};
    rdf::Triple doomed{Node(&world.dict, 0), Pred(&world.dict, "p"),
                       Node(&world.dict, 1)};
    Status st = engine.ApplyUpdate({fresh}, {doomed}, &us);
    ASSERT_FALSE(st.ok()) << "armed site did not fail the update";
    EXPECT_EQ(st.code(), StatusCode::kInternal) << st.ToString();
    Failpoints::Instance().Disarm(scenario.site);

    // Counters: a failed update is not an update.
    EXPECT_EQ(engine.stats().updates, updates_before);
    if (scenario.incremental) {
      // The incremental path must not have touched the graph at all —
      // the commit point is after the last failpoint. (The rebuild
      // path reverts *content* but its generation counter keeps moving
      // forward by design; content identity is checked below.)
      EXPECT_EQ(world.dataset.Generation(), generation_before);
    }

    // Bit-identity, directly: the rolled-back engine answers the fully
    // ordered closure exactly as before the doomed update.
    auto after = engine.ExecuteText(ordered);
    ASSERT_TRUE(after.ok()) << after.status().ToString();
    EXPECT_TRUE(after->result.rows == before->result.rows)
        << "rolled-back engine diverged from its pre-update state:\nbefore:\n"
        << before->result.ToString(world.dict, 30) << "\nafter:\n"
        << after->result.ToString(world.dict, 30);

    // Bit-identity, differentially: the rolled-back engine matches a
    // cold engine over a copy of the (unchanged) dataset.
    rdf::Dataset reference_data(&world.dict);
    CopyDataset(world.dataset, &reference_data);
    Engine reference(static_cast<const rdf::Dataset*>(&reference_data),
                     &world.dict, options);
    ASSERT_TRUE(reference.Load().ok());
    auto want = reference.ExecuteText(ordered);
    ASSERT_TRUE(want.ok());
    EXPECT_TRUE(after->result.rows == want->result.rows)
        << "rolled-back engine diverged from a fresh load";

    // And the engine is not wedged: the same mutation applies cleanly
    // now, and the result again matches a fresh load over the mutated
    // dataset.
    ASSERT_TRUE(engine.ApplyUpdate({fresh}, {doomed}, &us).ok());
    EXPECT_EQ(engine.stats().updates, updates_before + 1);
    rdf::Dataset mutated_ref(&world.dict);
    CopyDataset(world.dataset, &mutated_ref);
    Engine mutated_reference(
        static_cast<const rdf::Dataset*>(&mutated_ref), &world.dict, options);
    ASSERT_TRUE(mutated_reference.Load().ok());
    auto got = engine.ExecuteText(ordered);
    auto expect = mutated_reference.ExecuteText(ordered);
    ASSERT_TRUE(got.ok() && expect.ok());
    EXPECT_TRUE(got->result.rows == expect->result.rows)
        << "post-rollback update diverged from a fresh load";
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, UpdateRollbackTest,
                         ::testing::Values(1u, 2u, 8u));

// ---------------------------------------------------------------------
// Satellite: malformed Turtle through POST /update is a clean 400 with
// a position-bearing message, and no engine state moves.
TEST_F(FailpointSweepTest, MalformedUpdatePayloadIs400AndTouchesNothing) {
  World world;
  server::HttpServer server(world.engine.get(), &world.dict);

  const uint64_t generation_before = world.dataset.Generation();
  Engine::EngineStats stats_before = world.engine->stats();

  server::HttpRequest bad;
  bad.method = "POST";
  bad.path = "/update";
  bad.query = "op=insert";
  bad.body = "@prefix r: <http://r.org/> .\nr:a r:p ;;; broken .";
  server::HttpResponse response = server.Route(bad);

  EXPECT_EQ(response.status, 400);
  EXPECT_NE(response.body.find("parse_error"), std::string::npos)
      << response.body;
  // The turtle parser reports where it gave up; the endpoint must not
  // swallow the position.
  EXPECT_NE(response.body.find("line"), std::string::npos) << response.body;

  EXPECT_EQ(world.dataset.Generation(), generation_before);
  Engine::EngineStats stats_after = world.engine->stats();
  EXPECT_EQ(stats_after.updates, stats_before.updates);
  EXPECT_EQ(stats_after.update_noops, stats_before.update_noops);
  EXPECT_EQ(stats_after.invalidations, stats_before.invalidations);

  // A well-formed payload right after goes through — the reject left
  // the update path fully operational.
  server::HttpRequest good = bad;
  good.body = "@prefix r: <http://r.org/> .\nr:n50 r:p r:n51 .";
  server::HttpResponse ok_response = server.Route(good);
  EXPECT_EQ(ok_response.status, 200) << ok_response.body;
  EXPECT_EQ(world.engine->stats().updates, stats_before.updates + 1);
}

}  // namespace
}  // namespace sparqlog
