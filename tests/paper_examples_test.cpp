// Integration tests on the paper's running examples: the OPTIONAL query of
// Figure 1/2 (film directors) and the property path query of Figure 3/4
// (reachable countries), executed through the full SparqLog pipeline
// (T_D -> T_Q -> Datalog evaluation -> T_S) and cross-checked against the
// reference algebra evaluator.

#include <gtest/gtest.h>

#include "core/engine.h"
#include "eval/algebra_eval.h"
#include "rdf/turtle_parser.h"
#include "sparql/parser.h"

namespace sparqlog {
namespace {

using core::Engine;
using eval::QueryResult;

class PaperExamplesTest : public ::testing::Test {
 protected:
  PaperExamplesTest() : dataset_(&dict_) {}

  void LoadTurtle(const std::string& ttl) {
    auto st = rdf::ParseTurtle(ttl, &dataset_);
    ASSERT_TRUE(st.ok()) << st.ToString();
  }

  QueryResult RunSparqLog(const std::string& query) {
    Engine engine(&dataset_, &dict_);
    EXPECT_TRUE(engine.Load().ok());
    auto result = engine.ExecuteText(query);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return std::move(std::move(result).ValueOrDie().result);
  }

  QueryResult RunReference(const std::string& query) {
    auto parsed = sparql::ParseQuery(query, &dict_);
    EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
    ExecContext ctx;
    eval::AlgebraEvaluator ref(dataset_, &dict_, &ctx);
    auto result = ref.EvalQuery(*parsed);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return std::move(result).ValueOrDie();
  }

  rdf::TermDictionary dict_;
  rdf::Dataset dataset_;
};

constexpr char kDirectorsTurtle[] = R"(
@prefix ex: <http://ex.org/> .
ex:glucas ex:name "George" .
ex:glucas ex:lastname "Lucas" .
_:b1 ex:name "Steven" .
)";

TEST_F(PaperExamplesTest, Figure1OptionalQuery) {
  LoadTurtle(kDirectorsTurtle);
  const std::string query = R"(
    PREFIX ex: <http://ex.org/>
    SELECT ?N ?L
    WHERE { ?X ex:name ?N . OPTIONAL { ?X ex:lastname ?L } }
    ORDER BY ?N
  )";
  QueryResult got = RunSparqLog(query);
  ASSERT_EQ(got.columns, (std::vector<std::string>{"N", "L"}));
  ASSERT_EQ(got.rows.size(), 2u);
  // Sorted by ?N: "George" (with "Lucas") before "Steven" (unbound ?L).
  EXPECT_EQ(dict_.get(got.rows[0][0]).lexical, "George");
  EXPECT_EQ(dict_.get(got.rows[0][1]).lexical, "Lucas");
  EXPECT_EQ(dict_.get(got.rows[1][0]).lexical, "Steven");
  EXPECT_EQ(got.rows[1][1], rdf::TermDictionary::kUndef);

  QueryResult ref = RunReference(query);
  EXPECT_TRUE(got.SameSolutions(ref));
}

constexpr char kCountriesTurtle[] = R"(
@prefix ex: <http://ex.org/> .
ex:spain ex:borders ex:france .
ex:france ex:borders ex:belgium .
ex:france ex:borders ex:germany .
ex:belgium ex:borders ex:germany .
ex:germany ex:borders ex:austria .
)";

TEST_F(PaperExamplesTest, Figure3PropertyPathQuery) {
  LoadTurtle(kCountriesTurtle);
  const std::string query = R"(
    PREFIX ex: <http://ex.org/>
    SELECT ?B
    WHERE { ?A ex:borders+ ?B . FILTER (?A = ex:spain) }
  )";
  QueryResult got = RunSparqLog(query);
  ASSERT_EQ(got.columns, (std::vector<std::string>{"B"}));
  // {france, germany, austria, belgium}: one-or-more paths have set
  // semantics, so germany (reachable via two routes) appears once.
  std::set<std::string> names;
  for (const auto& row : got.rows) names.insert(dict_.get(row[0]).lexical);
  EXPECT_EQ(got.rows.size(), 4u);
  EXPECT_EQ(names, (std::set<std::string>{
                       "http://ex.org/france", "http://ex.org/germany",
                       "http://ex.org/austria", "http://ex.org/belgium"}));

  QueryResult ref = RunReference(query);
  EXPECT_TRUE(got.SameSolutions(ref));
}

TEST_F(PaperExamplesTest, TranslationRendersLikeFigure2) {
  LoadTurtle(kDirectorsTurtle);
  Engine engine(&dataset_, &dict_);
  auto text = engine.TranslateToText(R"(
    PREFIX ex: <http://ex.org/>
    SELECT ?N ?L
    WHERE { ?X ex:name ?N . OPTIONAL { ?X ex:lastname ?L } }
    ORDER BY ?N
  )");
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  // Structural spot checks against Figure 2.
  EXPECT_NE(text->find("ans1("), std::string::npos);
  EXPECT_NE(text->find("ans_opt1("), std::string::npos);
  EXPECT_NE(text->find("not ans_opt1("), std::string::npos);
  EXPECT_NE(text->find("comp("), std::string::npos);
  EXPECT_NE(text->find("@output(\"ans\")"), std::string::npos);
  EXPECT_NE(text->find("@post(\"ans\", \"orderby("), std::string::npos);
}

TEST_F(PaperExamplesTest, AskQueryForms) {
  LoadTurtle(kCountriesTurtle);
  QueryResult yes = RunSparqLog(
      "PREFIX ex: <http://ex.org/> ASK { ex:spain ex:borders ex:france }");
  EXPECT_TRUE(yes.is_ask);
  EXPECT_TRUE(yes.ask_value);
  QueryResult no = RunSparqLog(
      "PREFIX ex: <http://ex.org/> ASK { ex:spain ex:borders ex:austria }");
  EXPECT_TRUE(no.is_ask);
  EXPECT_FALSE(no.ask_value);
}

TEST_F(PaperExamplesTest, BagSemanticsPreservesDuplicates) {
  LoadTurtle(kCountriesTurtle);
  // Projecting away ?A leaves duplicate ?B bindings (france and belgium
  // both border germany): bag semantics must keep both.
  QueryResult got = RunSparqLog(
      "PREFIX ex: <http://ex.org/> SELECT ?B WHERE { ?A ex:borders ?B }");
  EXPECT_EQ(got.rows.size(), 5u);
  QueryResult distinct = RunSparqLog(
      "PREFIX ex: <http://ex.org/> SELECT DISTINCT ?B WHERE "
      "{ ?A ex:borders ?B }");
  EXPECT_EQ(distinct.rows.size(), 4u);
}

}  // namespace
}  // namespace sparqlog
