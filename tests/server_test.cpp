// Tests for the embedded HTTP endpoint: JSON serialization (escaping,
// SPARQL results format, ASK, unbound cells, typed/tagged literals),
// URL decoding, socket-free routing (method/path dispatch, engine
// Status -> HTTP status mapping), and — where the sandbox permits
// binding a loopback socket — a real client/server round trip with
// concurrent requests and clean shutdown.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "rdf/turtle_parser.h"
#include "server/http_server.h"
#include "server/json.h"
#include "util/failpoint.h"
#include "util/retry.h"

namespace sparqlog::server {
namespace {

// --- JSON ------------------------------------------------------------------

TEST(JsonTest, EscapesControlAndQuoteCharacters) {
  EXPECT_EQ(JsonString("plain"), "\"plain\"");
  EXPECT_EQ(JsonString("a\"b"), "\"a\\\"b\"");
  EXPECT_EQ(JsonString("back\\slash"), "\"back\\\\slash\"");
  EXPECT_EQ(JsonString("tab\there"), "\"tab\\there\"");
  EXPECT_EQ(JsonString(std::string_view("nul\0byte", 8)),
            "\"nul\\u0000byte\"");
  EXPECT_EQ(JsonString("newline\n"), "\"newline\\n\"");
  // UTF-8 passes through unmodified.
  EXPECT_EQ(JsonString("caf\xc3\xa9"), "\"caf\xc3\xa9\"");
}

TEST(JsonTest, WriterBuildsNestedStructures) {
  JsonWriter w;
  w.BeginObject();
  w.Key("a").Number(uint64_t{1});
  w.Key("b").BeginArray().String("x").Bool(false).EndArray();
  w.Key("c").BeginObject().Key("d").Number(2.5).EndObject();
  w.EndObject();
  EXPECT_EQ(w.str(), "{\"a\":1,\"b\":[\"x\",false],\"c\":{\"d\":2.5}}");
}

TEST(JsonTest, ResultToJsonSelectWithLiteralsAndUndef) {
  rdf::TermDictionary dict;
  eval::QueryResult result;
  result.columns = {"s", "v"};
  rdf::TermId iri = dict.InternIri("http://ex.org/a");
  rdf::TermId lang = dict.InternLiteral("hi", "", "en");
  rdf::TermId typed = dict.InternInteger(42);
  rdf::TermId bnode = dict.InternBlank("b0");
  result.rows = {{iri, lang},
                 {bnode, typed},
                 {iri, rdf::TermDictionary::kUndef}};

  std::string json = ResultToJson(result, dict);
  EXPECT_NE(json.find("\"vars\":[\"s\",\"v\"]"), std::string::npos) << json;
  EXPECT_NE(json.find("{\"type\":\"uri\",\"value\":\"http://ex.org/a\"}"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"xml:lang\":\"en\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"type\":\"bnode\""), std::string::npos) << json;
  EXPECT_NE(
      json.find(
          "\"datatype\":\"http://www.w3.org/2001/XMLSchema#integer\""),
      std::string::npos)
      << json;
  // The unbound cell's binding object contains only "s".
  EXPECT_NE(json.find("{\"s\":{\"type\":\"uri\",\"value\":"
                      "\"http://ex.org/a\"}}"),
            std::string::npos)
      << json;
}

TEST(JsonTest, ResultToJsonAsk) {
  rdf::TermDictionary dict;
  eval::QueryResult result;
  result.is_ask = true;
  result.ask_value = true;
  EXPECT_EQ(ResultToJson(result, dict), "{\"head\":{},\"boolean\":true}");
}

// --- URL / form decoding ---------------------------------------------------

TEST(UrlDecodeTest, DecodesPercentAndPlus) {
  EXPECT_EQ(UrlDecode("a+b"), "a b");
  EXPECT_EQ(UrlDecode("%20%7Bx%7D"), " {x}");
  EXPECT_EQ(UrlDecode("100%"), "100%");     // dangling % passes through
  EXPECT_EQ(UrlDecode("%zz"), "%zz");       // bad hex passes through
  EXPECT_EQ(UrlDecode("SELECT+%3Fs"), "SELECT ?s");
}

TEST(UrlDecodeTest, FormValueFindsKey) {
  EXPECT_EQ(FormValue("query=ASK+%7B%7D&format=json", "query"), "ASK {}");
  EXPECT_EQ(FormValue("a=1&b=2", "b"), "2");
  EXPECT_EQ(FormValue("a=1&b=2", "c"), "");
  EXPECT_EQ(FormValue("", "query"), "");
  EXPECT_EQ(FormValue("queryx=1", "query"), "");
}

// --- Routing (socket-free) -------------------------------------------------

class ServerRoutingTest : public ::testing::Test {
 protected:
  ServerRoutingTest() : dataset_(&dict_) {
    auto st = rdf::ParseTurtle(R"(
      @prefix ex: <http://ex.org/> .
      ex:a ex:p ex:b . ex:b ex:p ex:c .
    )",
                               &dataset_);
    EXPECT_TRUE(st.ok()) << st.ToString();
    engine_ = std::make_unique<core::Engine>(&dataset_, &dict_);
    EXPECT_TRUE(engine_->Load().ok());
    server_ = std::make_unique<HttpServer>(engine_.get(), &dict_);
  }

  HttpResponse Get(const std::string& path, const std::string& query = "") {
    HttpRequest r;
    r.method = "GET";
    r.path = path;
    r.query = query;
    return server_->Route(r);
  }

  HttpResponse Post(const std::string& body,
                    const std::string& content_type = "") {
    HttpRequest r;
    r.method = "POST";
    r.path = "/sparql";
    r.body = body;
    r.content_type = content_type;
    return server_->Route(r);
  }

  rdf::TermDictionary dict_;
  rdf::Dataset dataset_;
  std::unique_ptr<core::Engine> engine_;
  std::unique_ptr<HttpServer> server_;
};

TEST_F(ServerRoutingTest, GetQueryReturnsSparqlJson) {
  HttpResponse r = Get("/sparql",
                       "query=SELECT+%3Fo+WHERE+%7B+%3Chttp%3A%2F%2Fex.org"
                       "%2Fa%3E+%3Chttp%3A%2F%2Fex.org%2Fp%3E+%3Fo+%7D");
  EXPECT_EQ(r.status, 200);
  EXPECT_EQ(r.content_type, "application/sparql-results+json");
  EXPECT_NE(r.body.find("http://ex.org/b"), std::string::npos) << r.body;
  // Per-query stats ride the response.
  EXPECT_NE(r.body.find("\"stats\":{"), std::string::npos) << r.body;
  EXPECT_NE(r.body.find("\"program_source\":"), std::string::npos) << r.body;
}

TEST_F(ServerRoutingTest, PostBodyVariants) {
  // Raw SPARQL body.
  HttpResponse raw = Post("ASK { ?s ?p ?o }", "application/sparql-query");
  EXPECT_EQ(raw.status, 200);
  EXPECT_NE(raw.body.find("\"boolean\":true"), std::string::npos) << raw.body;
  // Form-encoded body.
  HttpResponse form = Post("query=ASK+%7B+%3Fs+%3Fp+%3Fo+%7D",
                           "application/x-www-form-urlencoded");
  EXPECT_EQ(form.status, 200);
  EXPECT_NE(form.body.find("\"boolean\":true"), std::string::npos)
      << form.body;
  // Raw SPARQL mislabeled as form-encoded (curl's default) still works.
  HttpResponse lax = Post("ASK { ?s ?p ?o }",
                          "application/x-www-form-urlencoded");
  EXPECT_EQ(lax.status, 200);
}

TEST_F(ServerRoutingTest, ErrorMapping) {
  // Missing query.
  EXPECT_EQ(Get("/sparql").status, 400);
  // Parse error -> 400.
  HttpResponse bad = Post("SELECT ?x WHERE { broken");
  EXPECT_EQ(bad.status, 400);
  EXPECT_NE(bad.body.find("parse_error"), std::string::npos) << bad.body;
  // Unsupported feature -> 400.
  HttpResponse unsupported =
      Post("CONSTRUCT { ?s ?p ?o } WHERE { ?s ?p ?o }");
  EXPECT_EQ(unsupported.status, 400);
  EXPECT_NE(unsupported.body.find("not_supported"), std::string::npos);
  // Unknown path -> 404; wrong method -> 405.
  EXPECT_EQ(Get("/nope").status, 404);
  HttpRequest del;
  del.method = "DELETE";
  del.path = "/sparql";
  EXPECT_EQ(server_->Route(del).status, 405);
}

TEST_F(ServerRoutingTest, UnloadedEngineMapsTo503) {
  core::Engine cold(&dataset_, &dict_);  // never Load()ed
  HttpServer server(&cold, &dict_);
  HttpRequest r;
  r.method = "POST";
  r.path = "/sparql";
  r.body = "ASK { ?s ?p ?o }";
  HttpResponse response = server.Route(r);
  EXPECT_EQ(response.status, 503);
  EXPECT_NE(response.body.find("not_loaded"), std::string::npos)
      << response.body;

  HttpRequest health;
  health.method = "GET";
  health.path = "/healthz";
  HttpResponse h = server.Route(health);
  EXPECT_EQ(h.status, 503);
  EXPECT_NE(h.body.find("\"loaded\":false"), std::string::npos) << h.body;
}

TEST_F(ServerRoutingTest, StatsAndHealthRoutes) {
  // Run one query so the counters are non-trivial.
  EXPECT_EQ(Post("ASK { ?s ?p ?o }").status, 200);
  HttpResponse stats = Get("/stats");
  EXPECT_EQ(stats.status, 200);
  EXPECT_NE(stats.body.find("\"queries\":1"), std::string::npos)
      << stats.body;
  EXPECT_NE(stats.body.find("\"storage\":{\"tuples\":"), std::string::npos)
      << stats.body;
  HttpResponse health = Get("/healthz");
  EXPECT_EQ(health.status, 200);
  EXPECT_NE(health.body.find("\"loaded\":true"), std::string::npos);
}

// --- Status -> HTTP mapping ------------------------------------------------

// Table-driven over EVERY StatusCode: each code's HTTP rendering is a
// deliberate decision, not a default-500 fallthrough. If a new code is
// added, StatusToHttp's exhaustive switch breaks the build and this
// table documents what the decision should look like.
TEST(StatusToHttpTest, EveryStatusCodeMapsDeliberately) {
  struct Row {
    Status status;
    int http;
    const char* code;
    int retry_after;
  };
  const Row kTable[] = {
      {Status::OK(), 200, "ok", 0},
      {Status::InvalidArgument("x"), 400, "invalid_argument", 0},
      {Status::ParseError("x"), 400, "parse_error", 0},
      {Status::NotSupported("x"), 400, "not_supported", 0},
      {Status::NotFound("x"), 404, "not_found", 0},
      {Status::Timeout("x"), 504, "timeout", 0},
      {Status::ResourceExhausted("x"), 413, "budget_exceeded", 0},
      {Status::FailedPrecondition("x"), 503, "not_loaded", 1},
      {Status::Unavailable("x"), 503, "overloaded", 1},
      {Status::Internal("x"), 500, "internal", 0},
  };
  for (const Row& row : kTable) {
    HttpStatusMapping m = StatusToHttp(row.status);
    EXPECT_EQ(m.http, row.http) << row.code;
    EXPECT_STREQ(m.code, row.code);
    EXPECT_EQ(m.retry_after_seconds, row.retry_after) << row.code;
    // Typed statuses never leak as a generic 500.
    if (row.status.code() != StatusCode::kInternal && !row.status.ok()) {
      EXPECT_NE(m.http, 500) << row.code;
    }
  }
}

// --- Overload: admission queue, shedding, degraded mode --------------------

class OverloadTest : public ::testing::Test {
 protected:
  OverloadTest() : dataset_(&dict_) {
    auto st = rdf::ParseTurtle(R"(
      @prefix ex: <http://ex.org/> .
      ex:a ex:p ex:b . ex:b ex:p ex:c . ex:c ex:p ex:d .
    )",
                               &dataset_);
    EXPECT_TRUE(st.ok()) << st.ToString();
  }

  void TearDown() override { util::Failpoints::Instance().DisarmAll(); }

  /// Engine with one admitted slot, caching off (so every query truly
  /// evaluates and the delay failpoint is hit deterministically).
  std::unique_ptr<core::Engine> MakeEngine(core::Engine::Options options) {
    options.caching.program_cache = false;
    options.caching.stratum_memo = false;
    auto engine = std::make_unique<core::Engine>(&dataset_, &dict_, options);
    EXPECT_TRUE(engine->Load().ok());
    return engine;
  }

  /// Starts a thread holding the single in-flight slot for ~hold_ms (a
  /// delay failpoint inside stratum evaluation) and waits until the
  /// engine has actually admitted it.
  std::thread HoldSlot(core::Engine* engine, int hold_ms) {
    auto spec = "once:delay(" + std::to_string(hold_ms) + ")";
    EXPECT_TRUE(util::Failpoints::Instance()
                    .Arm("datalog.stratum.begin", spec)
                    .ok());
    std::thread holder([engine] {
      EXPECT_TRUE(engine->ExecuteText("ASK { ?s ?p ?o }").ok());
    });
    while (engine->stats().in_flight == 0) {
      std::this_thread::yield();
    }
    return holder;
  }

  rdf::TermDictionary dict_;
  rdf::Dataset dataset_;
};

TEST_F(OverloadTest, QueueAdmitsWhenSlotFreesWithinDeadline) {
  core::Engine::Options options;
  options.serving.max_in_flight = 1;
  options.serving.queue_limit = 4;
  options.serving.queue_timeout = std::chrono::milliseconds(5000);
  auto engine = MakeEngine(options);

  std::thread holder = HoldSlot(engine.get(), 100);
  // The slot is taken; this call queues, then runs when the holder
  // finishes well inside the deadline.
  auto queued = engine->ExecuteText("ASK { ?s ?p ?o }");
  EXPECT_TRUE(queued.ok()) << queued.status().ToString();
  holder.join();
  EXPECT_EQ(engine->stats().rejected, 0u);
  EXPECT_GE(engine->stats().queued, 1u);
}

TEST_F(OverloadTest, QueueShedsPastDeadlineWith503AndRetryAfter) {
  core::Engine::Options options;
  options.serving.max_in_flight = 1;
  options.serving.queue_limit = 4;
  options.serving.queue_timeout = std::chrono::milliseconds(30);
  auto engine = MakeEngine(options);
  HttpServer server(engine.get(), &dict_);

  std::thread holder = HoldSlot(engine.get(), 400);
  // Queues for 30ms, then is shed: the deadline passes long before the
  // holder's 400ms delay releases the slot.
  HttpRequest r;
  r.method = "POST";
  r.path = "/sparql";
  r.body = "ASK { ?s ?p ?o }";
  HttpResponse shed = server.Route(r);
  EXPECT_EQ(shed.status, 503);
  EXPECT_NE(shed.body.find("overloaded"), std::string::npos) << shed.body;
  EXPECT_NE(shed.body.find("deadline"), std::string::npos) << shed.body;
  EXPECT_EQ(shed.retry_after_seconds, 1);
  holder.join();
  EXPECT_GE(engine->stats().rejected, 1u);
}

TEST_F(OverloadTest, RetryWithBackoffRidesOutTransientShedding) {
  core::Engine::Options options;
  options.serving.max_in_flight = 1;
  options.serving.queue_limit = 0;  // fail fast, so the first try sheds
  auto engine = MakeEngine(options);

  std::thread holder = HoldSlot(engine.get(), 100);
  // One-shot call sheds; the backoff client retries past the holder's
  // 100ms window and lands the query.
  EXPECT_TRUE(
      engine->ExecuteText("ASK { ?s ?p ?o }").status().IsUnavailable());
  util::BackoffPolicy policy;
  policy.max_attempts = 8;
  policy.initial_delay = std::chrono::milliseconds(25);
  policy.seed = 1;
  Status st = util::RetryWithBackoff(policy, [&] {
    return engine->ExecuteText("ASK { ?s ?p ?o }").status();
  });
  EXPECT_TRUE(st.ok()) << st.ToString();
  holder.join();
}

TEST_F(OverloadTest, SustainedSheddingEntersDegradedModeAndRecovers) {
  core::Engine::Options options;
  options.serving.max_in_flight = 1;
  options.serving.queue_limit = 0;  // fail fast: every overflow is a shed
  options.degrade.enabled = true;
  options.degrade.window = 16;
  options.degrade.min_events = 4;
  auto engine = MakeEngine(options);
  HttpServer server(engine.get(), &dict_);
  HttpRequest health;
  health.method = "GET";
  health.path = "/healthz";
  HttpRequest stats;
  stats.method = "GET";
  stats.path = "/stats";

  EXPECT_FALSE(engine->degraded());

  std::thread holder = HoldSlot(engine.get(), 400);
  // Sustained overload: every one of these is shed while the slot is
  // held, driving the outcome window past the enter threshold.
  for (int i = 0; i < 8; ++i) {
    EXPECT_TRUE(
        engine->ExecuteText("ASK { ?s ?p ?o }").status().IsUnavailable());
  }
  EXPECT_TRUE(engine->degraded());

  // Degraded is visible on both surfaces, and /healthz stays 200 —
  // the node is degraded, not dead.
  HttpResponse h = server.Route(health);
  EXPECT_EQ(h.status, 200);
  EXPECT_NE(h.body.find("\"status\":\"degraded\""), std::string::npos)
      << h.body;
  HttpResponse s = server.Route(stats);
  EXPECT_NE(s.body.find("\"degraded\":true"), std::string::npos) << s.body;
  EXPECT_NE(s.body.find("\"degrade_entries\":1"), std::string::npos)
      << s.body;
  holder.join();

  // Load drops: successful queries wash the bad outcomes out of the
  // window and the engine exits degraded mode on its own.
  for (int i = 0; i < 32 && engine->degraded(); ++i) {
    EXPECT_TRUE(engine->ExecuteText("ASK { ?s ?p ?o }").ok());
  }
  EXPECT_FALSE(engine->degraded());
  h = server.Route(health);
  EXPECT_NE(h.body.find("\"status\":\"ok\""), std::string::npos) << h.body;
  s = server.Route(stats);
  EXPECT_NE(s.body.find("\"degrade_exits\":1"), std::string::npos) << s.body;
}

// --- Live socket round trip ------------------------------------------------

/// Minimal blocking HTTP client for loopback tests.
std::string HttpRoundTrip(uint16_t port, const std::string& request) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  size_t sent = 0;
  while (sent < request.size()) {
    ssize_t n = ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

class ServerSocketTest : public ServerRoutingTest {
 protected:
  void SetUp() override {
    HttpServerOptions options;
    options.port = 0;  // ephemeral
    options.num_workers = 4;
    live_ = std::make_unique<HttpServer>(engine_.get(), &dict_, options);
    Status st = live_->Start();
    if (!st.ok()) {
      GTEST_SKIP() << "cannot bind loopback socket here: " << st.ToString();
    }
  }

  void TearDown() override {
    if (live_) live_->Stop();
  }

  std::unique_ptr<HttpServer> live_;
};

TEST_F(ServerSocketTest, GetAndPostOverRealSocket) {
  std::string get = HttpRoundTrip(
      live_->port(),
      "GET /sparql?query=ASK+%7B+%3Fs+%3Fp+%3Fo+%7D HTTP/1.1\r\n"
      "Host: localhost\r\n\r\n");
  EXPECT_NE(get.find("HTTP/1.1 200 OK"), std::string::npos) << get;
  EXPECT_NE(get.find("\"boolean\":true"), std::string::npos) << get;

  const std::string body = "SELECT ?o WHERE { <http://ex.org/a> "
                           "<http://ex.org/p> ?o }";
  std::string post = HttpRoundTrip(
      live_->port(),
      "POST /sparql HTTP/1.1\r\nHost: localhost\r\n"
      "Content-Type: application/sparql-query\r\n"
      "Content-Length: " + std::to_string(body.size()) + "\r\n\r\n" + body);
  EXPECT_NE(post.find("HTTP/1.1 200 OK"), std::string::npos) << post;
  EXPECT_NE(post.find("http://ex.org/b"), std::string::npos) << post;

  std::string missing = HttpRoundTrip(
      live_->port(), "GET /gone HTTP/1.1\r\nHost: localhost\r\n\r\n");
  EXPECT_NE(missing.find("HTTP/1.1 404"), std::string::npos) << missing;

  std::string malformed = HttpRoundTrip(live_->port(), "NONSENSE\r\n\r\n");
  EXPECT_NE(malformed.find("HTTP/1.1 400"), std::string::npos) << malformed;
}

TEST_F(ServerSocketTest, ConcurrentClientsAllAnswered) {
  constexpr int kClients = 16;
  std::vector<std::thread> clients;
  std::vector<std::string> responses(kClients);
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&, i] {
      responses[static_cast<size_t>(i)] = HttpRoundTrip(
          live_->port(),
          "GET /sparql?query=ASK+%7B+%3Fs+%3Fp+%3Fo+%7D HTTP/1.1\r\n"
          "Host: localhost\r\n\r\n");
    });
  }
  for (std::thread& c : clients) c.join();
  for (const std::string& r : responses) {
    EXPECT_NE(r.find("HTTP/1.1 200 OK"), std::string::npos) << r;
    EXPECT_NE(r.find("\"boolean\":true"), std::string::npos) << r;
  }
  // Engine-side serving counters saw the traffic.
  EXPECT_GE(engine_->stats().queries, static_cast<uint64_t>(kClients));
}

TEST_F(ServerSocketTest, OversizedRequestRejectedWith413) {
  HttpServerOptions options;
  options.port = 0;
  options.max_request_bytes = 1024;
  HttpServer small(engine_.get(), &dict_, options);
  ASSERT_TRUE(small.Start().ok());

  // Declared body larger than the cap: rejected from the Content-Length
  // header alone, before buffering the body.
  std::string body(4096, 'x');
  std::string post = HttpRoundTrip(
      small.port(),
      "POST /sparql HTTP/1.1\r\nHost: localhost\r\n"
      "Content-Type: application/sparql-query\r\n"
      "Content-Length: " + std::to_string(body.size()) + "\r\n\r\n" + body);
  EXPECT_NE(post.find("HTTP/1.1 413"), std::string::npos) << post;
  EXPECT_NE(post.find("payload_too_large"), std::string::npos) << post;

  // A head that never terminates within the cap is 413 too (it used to
  // be misreported as 400 after overshooting the cap by a recv chunk).
  std::string junk_head = "GET /sparql?query=" + std::string(8192, 'a');
  std::string oversized_head = HttpRoundTrip(small.port(), junk_head);
  EXPECT_NE(oversized_head.find("HTTP/1.1 413"), std::string::npos)
      << oversized_head;
  small.Stop();
}

TEST_F(ServerSocketTest, StalledClientGets408) {
  HttpServerOptions options;
  options.port = 0;
  options.recv_timeout_ms = 200;
  HttpServer strict(engine_.get(), &dict_, options);
  ASSERT_TRUE(strict.Start().ok());

  // Send a partial request head and then stall: the worker must answer
  // 408 after the receive deadline instead of blocking forever.
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(strict.port());
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const char partial[] = "GET /healthz HTTP/1.1\r\n";
  ASSERT_GT(::send(fd, partial, sizeof(partial) - 1, MSG_NOSIGNAL), 0);
  std::string response;
  char buf[1024];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  EXPECT_NE(response.find("HTTP/1.1 408"), std::string::npos) << response;
  EXPECT_NE(response.find("request_timeout"), std::string::npos) << response;
  strict.Stop();
}

TEST_F(ServerSocketTest, StopIsIdempotentAndRestartable) {
  uint16_t first_port = live_->port();
  EXPECT_TRUE(live_->running());
  live_->Stop();
  live_->Stop();  // idempotent
  EXPECT_FALSE(live_->running());
  // A second server instance can bind a fresh port immediately.
  HttpServerOptions options;
  options.port = 0;
  HttpServer again(engine_.get(), &dict_, options);
  Status st = again.Start();
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_NE(again.port(), 0);
  std::string health = HttpRoundTrip(
      again.port(), "GET /healthz HTTP/1.1\r\nHost: localhost\r\n\r\n");
  EXPECT_NE(health.find("\"status\":\"ok\""), std::string::npos) << health;
  again.Stop();
  (void)first_port;
}

}  // namespace
}  // namespace sparqlog::server
