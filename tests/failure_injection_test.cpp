// Failure-injection tests: timeouts, tuple budgets (mem-out), parse
// errors, unsupported features, unstratifiable programs and other error
// paths must surface as the right Status codes — the benchmark harness's
// outcome taxonomy depends on this.

#include <gtest/gtest.h>

#include "core/engine.h"
#include "datalog/evaluator.h"
#include "rdf/turtle_parser.h"
#include "sparql/parser.h"
#include "workloads/gmark.h"

namespace sparqlog {
namespace {

class FailureInjectionTest : public ::testing::Test {
 protected:
  FailureInjectionTest() : dataset_(&dict_) {}

  void LoadChain(size_t n) {
    auto* dict = dataset_.dict();
    rdf::TermId p = dict->InternIri("http://f.org/p");
    for (size_t i = 0; i + 1 < n; ++i) {
      dataset_.default_graph().Add(
          dict->InternIri("http://f.org/n" + std::to_string(i)), p,
          dict->InternIri("http://f.org/n" + std::to_string(i + 1)));
    }
  }

  rdf::TermDictionary dict_;
  rdf::Dataset dataset_;
};

TEST_F(FailureInjectionTest, EngineTimeoutSurfacesAsTimeout) {
  // A dense closure with a 0 ms budget must abort with Timeout.
  rdf::Dataset big(&dict_);
  GenerateGmarkGraph(workloads::GmarkTest(), &big);
  core::Engine::Options options;
  options.timeout = std::chrono::milliseconds(1);
  core::Engine engine(&big, &dict_, options);
  ASSERT_TRUE(engine.Load().ok());
  auto result = engine.ExecuteText(
      "SELECT ?x ?y WHERE { ?x <http://example.org/gMark/p0>* ?y }");
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsTimeout()) << result.status().ToString();
}

TEST_F(FailureInjectionTest, EngineTupleBudgetSurfacesAsMemOut) {
  LoadChain(60);
  core::Engine::Options options;
  options.tuple_budget = 300;
  core::Engine engine(&dataset_, &dict_, options);
  ASSERT_TRUE(engine.Load().ok());
  auto result = engine.ExecuteText(
      "SELECT ?x ?y WHERE { ?x <http://f.org/p>+ ?y }");
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsResourceExhausted())
      << result.status().ToString();
}

TEST_F(FailureInjectionTest, BudgetFailureLeavesEngineReusable) {
  LoadChain(60);
  core::Engine::Options options;
  options.tuple_budget = 200;
  core::Engine engine(&dataset_, &dict_, options);
  ASSERT_TRUE(engine.Load().ok());
  auto fail = engine.ExecuteText(
      "SELECT ?x ?y WHERE { ?x <http://f.org/p>* ?y }");
  EXPECT_FALSE(fail.ok());
  // A small follow-up query still works on the same engine (fresh IDB and
  // context per query).
  auto ok = engine.ExecuteText(
      "SELECT ?y WHERE { <http://f.org/n0> <http://f.org/p> ?y }");
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(ok->result.rows.size(), 1u);
}

TEST_F(FailureInjectionTest, ParseErrorsSurfaceFromEngine) {
  LoadChain(3);
  core::Engine engine(&dataset_, &dict_);
  ASSERT_TRUE(engine.Load().ok());
  auto result = engine.ExecuteText("SELECT ?x WHERE { ?x ?p }");
  EXPECT_TRUE(result.status().IsParseError());
  auto unsupported =
      engine.ExecuteText("CONSTRUCT { ?s ?p ?o } WHERE { ?s ?p ?o }");
  EXPECT_TRUE(unsupported.status().IsNotSupported());
}

TEST_F(FailureInjectionTest, EmptyDatasetAnswersGracefully) {
  core::Engine engine(&dataset_, &dict_);
  ASSERT_TRUE(engine.Load().ok());
  auto result = engine.ExecuteText(
      "SELECT ?x ?y WHERE { ?x <http://f.org/p>+ ?y }");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->result.rows.empty());
  auto ask = engine.ExecuteText("ASK { ?x ?p ?y }");
  ASSERT_TRUE(ask.ok());
  EXPECT_FALSE(ask->result.ask_value);
}

TEST_F(FailureInjectionTest, ZeroLengthPathOnEmptyGraph) {
  core::Engine engine(&dataset_, &dict_);
  ASSERT_TRUE(engine.Load().ok());
  // Constant endpoint: one zero-length solution even on an empty graph.
  auto result = engine.ExecuteText(
      "SELECT ?y WHERE { <http://f.org/ghost> <http://f.org/p>* ?y }");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->result.rows.size(), 1u);
}

TEST_F(FailureInjectionTest, UnstratifiableProgramRejected) {
  datalog::Program program;
  datalog::RuleBuilder rb(&program.predicates);
  rb.Head("win", {rb.Var("X")});
  rb.Body("move", {rb.Var("X"), rb.Var("Y")});
  rb.NegBody("win", {rb.Var("Y")});
  program.rules.push_back(rb.Build());

  rdf::TermDictionary dict;
  datalog::SkolemStore skolems;
  datalog::Evaluator evaluator(&dict, &skolems);
  datalog::Database edb, idb;
  ExecContext ctx;
  Status st = evaluator.Evaluate(program, &edb, &idb, &ctx);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("stratifiable"), std::string::npos);
}

TEST_F(FailureInjectionTest, MalformedTurtleReportsLine) {
  rdf::Dataset scratch(&dict_);
  Status st = rdf::ParseTurtle("<a> <b> <c> .\n<d> <e> .\n", &scratch);
  ASSERT_TRUE(st.IsParseError());
  EXPECT_NE(st.message().find("line 2"), std::string::npos)
      << st.ToString();
}

TEST_F(FailureInjectionTest, QueriesAgainstMissingNamedGraph) {
  LoadChain(3);
  core::Engine engine(&dataset_, &dict_);
  ASSERT_TRUE(engine.Load().ok());
  auto result = engine.ExecuteText(
      "SELECT ?s WHERE { GRAPH <http://nope> { ?s ?p ?o } }");
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->result.rows.empty());
}

TEST_F(FailureInjectionTest, FromClauseOnUnknownGraphYieldsEmpty) {
  LoadChain(3);
  core::Engine engine(&dataset_, &dict_);
  ASSERT_TRUE(engine.Load().ok());
  auto result = engine.ExecuteText(
      "SELECT ?s FROM <http://unknown> WHERE { ?s ?p ?o }");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->result.rows.empty());
}

}  // namespace
}  // namespace sparqlog
