// Unit tests for the RDF substrate: term normalization, dictionary
// interning, graph indexes, dataset construction (FROM / FROM NAMED),
// the Turtle/TriG parser, and serialization round-trips.

#include <gtest/gtest.h>

#include "rdf/dictionary.h"
#include "rdf/graph.h"
#include "rdf/term.h"
#include "rdf/turtle_parser.h"
#include "rdf/writer.h"

namespace sparqlog::rdf {
namespace {

TEST(TermTest, XsdStringNormalizesToSimpleLiteral) {
  Term a = Term::Literal("abc");
  Term b = Term::Literal("abc", std::string(xsd::kString));
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.CanonicalKey(), b.CanonicalKey());
}

TEST(TermTest, LanguageTagLowercasedAndExclusive) {
  Term t = Term::Literal("chat", "", "EN");
  EXPECT_EQ(t.lang, "en");
  EXPECT_TRUE(t.datatype.empty());
}

TEST(TermTest, NumericCaching) {
  Term i = Term::Literal("42", std::string(xsd::kInteger));
  EXPECT_EQ(i.numeric_kind, NumericKind::kInteger);
  EXPECT_EQ(i.int_value, 42);
  Term d = Term::Literal("2.5", std::string(xsd::kDouble));
  EXPECT_EQ(d.numeric_kind, NumericKind::kDouble);
  EXPECT_DOUBLE_EQ(d.AsDouble(), 2.5);
  Term bad = Term::Literal("xyz", std::string(xsd::kInteger));
  EXPECT_EQ(bad.numeric_kind, NumericKind::kNone);
  Term plain = Term::Literal("42");
  EXPECT_FALSE(plain.is_numeric());  // plain literals are not numeric
}

TEST(TermTest, Rendering) {
  EXPECT_EQ(Term::Iri("http://x").ToString(), "<http://x>");
  EXPECT_EQ(Term::Blank("b1").ToString(), "_:b1");
  EXPECT_EQ(Term::Literal("a\"b").ToString(), "\"a\\\"b\"");
  EXPECT_EQ(Term::Literal("hi", "", "en").ToString(), "\"hi\"@en");
  EXPECT_EQ(Term::Literal("5", std::string(xsd::kInteger)).ToString(),
            "\"5\"^^<http://www.w3.org/2001/XMLSchema#integer>");
  EXPECT_EQ(Term::Undef().ToString(), "UNDEF");
}

TEST(DictionaryTest, InternIsIdempotent) {
  TermDictionary dict;
  TermId a = dict.InternIri("http://x");
  TermId b = dict.InternIri("http://x");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, TermDictionary::kUndef);
  EXPECT_EQ(dict.get(a).lexical, "http://x");
}

TEST(DictionaryTest, UndefIsSlotZero) {
  TermDictionary dict;
  EXPECT_EQ(dict.size(), 1u);
  EXPECT_TRUE(dict.get(TermDictionary::kUndef).is_undef());
}

TEST(DictionaryTest, DistinctKindsDistinctIds) {
  TermDictionary dict;
  TermId iri = dict.InternIri("x");
  TermId lit = dict.InternLiteral("x");
  TermId bn = dict.InternBlank("x");
  EXPECT_NE(iri, lit);
  EXPECT_NE(lit, bn);
  EXPECT_NE(iri, bn);
}

TEST(DictionaryTest, LookupWithoutInterning) {
  TermDictionary dict;
  EXPECT_FALSE(dict.Lookup(Term::Iri("http://nope")).has_value());
  TermId id = dict.InternIri("http://yes");
  EXPECT_EQ(*dict.Lookup(Term::Iri("http://yes")), id);
}

TEST(DictionaryTest, NumericHelpers) {
  TermDictionary dict;
  TermId i = dict.InternInteger(-3);
  EXPECT_EQ(dict.get(i).int_value, -3);
  TermId b = dict.InternBoolean(true);
  EXPECT_EQ(dict.get(b).lexical, "true");
  EXPECT_EQ(dict.get(b).datatype, xsd::kBoolean);
}

class GraphTest : public ::testing::Test {
 protected:
  GraphTest() {
    s_ = dict_.InternIri("s");
    p_ = dict_.InternIri("p");
    q_ = dict_.InternIri("q");
    o1_ = dict_.InternIri("o1");
    o2_ = dict_.InternIri("o2");
    graph_.Add(s_, p_, o1_);
    graph_.Add(s_, p_, o2_);
    graph_.Add(o1_, q_, o2_);
  }
  TermDictionary dict_;
  Graph graph_;
  TermId s_, p_, q_, o1_, o2_;
};

TEST_F(GraphTest, AddDeduplicates) {
  EXPECT_EQ(graph_.size(), 3u);
  EXPECT_FALSE(graph_.Add(s_, p_, o1_));
  EXPECT_EQ(graph_.size(), 3u);
}

TEST_F(GraphTest, MatchPatterns) {
  size_t n = 0;
  graph_.Match(s_, std::nullopt, std::nullopt, [&](const Triple&) { ++n; });
  EXPECT_EQ(n, 2u);
  n = 0;
  graph_.Match(std::nullopt, p_, o2_, [&](const Triple&) { ++n; });
  EXPECT_EQ(n, 1u);
  n = 0;
  graph_.Match(std::nullopt, std::nullopt, std::nullopt,
               [&](const Triple&) { ++n; });
  EXPECT_EQ(n, 3u);
  n = 0;
  graph_.Match(o2_, std::nullopt, std::nullopt, [&](const Triple&) { ++n; });
  EXPECT_EQ(n, 0u);
  // Fully bound.
  n = 0;
  graph_.Match(o1_, q_, o2_, [&](const Triple&) { ++n; });
  EXPECT_EQ(n, 1u);
}

TEST_F(GraphTest, SubjectsAndObjectsIsDeduplicatedAndIncremental) {
  const auto& nodes = graph_.SubjectsAndObjects();
  EXPECT_EQ(nodes.size(), 3u);  // s, o1, o2 (p/q are predicates only)
  graph_.Add(o2_, q_, dict_.InternIri("o3"));
  EXPECT_EQ(graph_.SubjectsAndObjects().size(), 4u);
}

TEST_F(GraphTest, Predicates) {
  auto preds = graph_.Predicates();
  EXPECT_EQ(preds.size(), 2u);
}

TEST(DatasetTest, WithClausesMergesFromGraphs) {
  TermDictionary dict;
  Dataset store(&dict);
  TermId g1 = dict.InternIri("g1"), g2 = dict.InternIri("g2");
  TermId a = dict.InternIri("a"), p = dict.InternIri("p");
  store.named_graph(g1).Add(a, p, dict.InternIri("x"));
  store.named_graph(g2).Add(a, p, dict.InternIri("y"));

  Dataset scoped = store.WithClauses({g1, g2}, {g1});
  EXPECT_EQ(scoped.default_graph().size(), 2u);
  EXPECT_NE(scoped.FindNamedGraph(g1), nullptr);
  EXPECT_EQ(scoped.FindNamedGraph(g2), nullptr);
  // Unknown graph names resolve to empty graphs.
  Dataset empty = store.WithClauses({dict.InternIri("nope")}, {});
  EXPECT_EQ(empty.default_graph().size(), 0u);
}

TEST(TurtleParserTest, PrefixesAndSugar) {
  TermDictionary dict;
  Dataset dataset(&dict);
  auto st = ParseTurtle(R"(
    @prefix ex: <http://ex.org/> .
    ex:a a ex:T ;
         ex:p ex:b , ex:c .
  )",
                        &dataset);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(dataset.default_graph().size(), 3u);
  TermId type =
      dict.InternIri("http://www.w3.org/1999/02/22-rdf-syntax-ns#type");
  size_t n = 0;
  dataset.default_graph().Match(std::nullopt, type, std::nullopt,
                                [&](const Triple&) { ++n; });
  EXPECT_EQ(n, 1u);
}

TEST(TurtleParserTest, LiteralsOfAllShapes) {
  TermDictionary dict;
  Dataset dataset(&dict);
  auto st = ParseTurtle(R"(
    @prefix ex: <http://ex.org/> .
    @prefix xsd: <http://www.w3.org/2001/XMLSchema#> .
    ex:a ex:p "plain" .
    ex:a ex:p "tagged"@en-GB .
    ex:a ex:p "7"^^xsd:integer .
    ex:a ex:p 42 .
    ex:a ex:p 2.5 .
    ex:a ex:p 1.0e3 .
    ex:a ex:p true .
    ex:a ex:p "esc\"aped\nline" .
    ex:a ex:p """long
string""" .
  )",
                        &dataset);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(dataset.default_graph().size(), 9u);
  EXPECT_TRUE(dict.Lookup(Term::Literal("tagged", "", "en-gb")).has_value());
  EXPECT_TRUE(
      dict.Lookup(Term::Literal("7", std::string(xsd::kInteger))).has_value());
  EXPECT_TRUE(dict.Lookup(Term::Literal("esc\"aped\nline")).has_value());
}

TEST(TurtleParserTest, BlankNodes) {
  TermDictionary dict;
  Dataset dataset(&dict);
  auto st = ParseTurtle(R"(
    @prefix ex: <http://ex.org/> .
    _:x ex:p ex:a .
    [ ex:q ex:b ] ex:p ex:c .
  )",
                        &dataset);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(dataset.default_graph().size(), 3u);
}

TEST(TurtleParserTest, GraphBlocks) {
  TermDictionary dict;
  Dataset dataset(&dict);
  auto st = ParseTurtle(R"(
    @prefix ex: <http://ex.org/> .
    ex:a ex:p ex:b .
    GRAPH <http://g1> { ex:a ex:p ex:c . ex:c ex:p ex:d . }
  )",
                        &dataset);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(dataset.default_graph().size(), 1u);
  const Graph* g1 = dataset.FindNamedGraph(dict.InternIri("http://g1"));
  ASSERT_NE(g1, nullptr);
  EXPECT_EQ(g1->size(), 2u);
}

TEST(TurtleParserTest, Errors) {
  TermDictionary dict;
  Dataset dataset(&dict);
  EXPECT_TRUE(ParseTurtle("ex:a ex:p ex:b .", &dataset).IsParseError())
      << "undeclared prefix must fail";
  EXPECT_TRUE(ParseTurtle("<a> <b> .", &dataset).IsParseError());
  EXPECT_TRUE(
      ParseTurtle("<a> <b> \"unterminated .", &dataset).IsParseError());
  EXPECT_TRUE(ParseTurtle("<a> <b> (1 2) .", &dataset).IsParseError())
      << "collections are rejected";
}

TEST(NQuadsTest, TriplesAndQuads) {
  TermDictionary dict;
  Dataset dataset(&dict);
  auto st = ParseNQuads(
      "<http://a> <http://p> \"x\" .\n"
      "# comment\n"
      "<http://a> <http://p> <http://b> <http://g> .\n"
      "<http://a> <http://p> \"t\"@en <http://g> .\n",
      &dataset);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(dataset.default_graph().size(), 1u);
  const Graph* g = dataset.FindNamedGraph(dict.InternIri("http://g"));
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->size(), 2u);
}

TEST(WriterTest, RoundTripPreservesDataset) {
  TermDictionary dict;
  Dataset original(&dict);
  auto st = ParseTurtle(R"(
    @prefix ex: <http://ex.org/> .
    ex:a ex:p "x"@en .
    ex:a ex:p "7"^^<http://www.w3.org/2001/XMLSchema#integer> .
    _:b ex:q ex:a .
    GRAPH <http://g> { ex:a ex:p ex:c . }
  )",
                        &original);
  ASSERT_TRUE(st.ok());

  std::string text = WriteTrig(original);
  Dataset reparsed(&dict);
  st = ParseTurtle(text, &reparsed);
  ASSERT_TRUE(st.ok()) << st.ToString() << "\n" << text;
  EXPECT_EQ(reparsed.default_graph().size(), original.default_graph().size());
  for (const Triple& t : original.default_graph().triples()) {
    EXPECT_TRUE(reparsed.default_graph().Contains(t));
  }
  const Graph* g = reparsed.FindNamedGraph(dict.InternIri("http://g"));
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->size(), 1u);
}

}  // namespace
}  // namespace sparqlog::rdf
