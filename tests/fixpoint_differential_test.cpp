// Differential tests for the fixpoint strategies: naive re-evaluation and
// semi-naive delta evaluation must materialize byte-identical relation
// contents (compared through the printer's canonical sorted fact dump) on
// recursive, negation-bearing, and builtin-heavy programs. Guards the
// delta bookkeeping (RoundRange over TupleStore round marks) against
// silent divergence from the reference semantics.

#include <gtest/gtest.h>

#include "datalog/ast.h"
#include "datalog/evaluator.h"
#include "datalog/printer.h"
#include "datalog/relation.h"
#include "datalog/value.h"

namespace sparqlog::datalog {
namespace {

class FixpointDifferentialTest : public ::testing::Test {
 protected:
  /// One evaluation configuration under test: fixpoint strategy plus the
  /// worker-thread count of the sharded semi-naive path (ignored by naive
  /// mode, which is the single-threaded reference semantics).
  struct Config {
    FixpointMode mode;
    uint32_t num_threads;
  };

  /// Evaluates `program` over `edb_facts` under naive, serial semi-naive,
  /// and sharded semi-naive (2 and 8 workers) and asserts the canonical
  /// dumps of every IDB relation are identical across all four.
  void ExpectModesAgree(
      const Program& program,
      const std::vector<std::pair<PredicateId, std::vector<Value>>>&
          edb_facts,
      const std::vector<std::string>& skolem_fns = {}) {
    const Config configs[] = {{FixpointMode::kNaive, 1},
                              {FixpointMode::kSemiNaive, 1},
                              {FixpointMode::kSemiNaive, 2},
                              {FixpointMode::kSemiNaive, 8}};
    std::string reference;
    for (const Config& config : configs) {
      Database edb, idb;
      for (const auto& [pred, tuple] : edb_facts) {
        edb.relation(pred, static_cast<uint32_t>(tuple.size()))
            .Insert(tuple, 0);
      }
      // Function ids in the rules are positional: re-interning the names
      // in order reproduces them in this run's store.
      SkolemStore skolems;
      for (const std::string& fn : skolem_fns) skolems.InternFunction(fn);
      Evaluator evaluator(&dict_, &skolems);
      evaluator.set_mode(config.mode);
      evaluator.set_num_threads(config.num_threads);
      ExecContext ctx;
      ASSERT_TRUE(evaluator.Evaluate(program, &edb, &idb, &ctx).ok());
      std::string dump = ToString(idb, program.predicates, dict_, skolems);
      ASSERT_FALSE(dump.empty()) << "fixpoint derived nothing";
      if (reference.empty()) {
        reference = dump;
      } else {
        EXPECT_EQ(reference, dump)
            << "divergence at mode="
            << (config.mode == FixpointMode::kNaive ? "naive" : "semi-naive")
            << " num_threads=" << config.num_threads;
      }
    }
  }

  /// Interned integer term as a Datalog value (facts are rendered by
  /// the printer, so raw uninterned ids would be out of dictionary range).
  Value V(int64_t i) { return ValueFromTerm(dict_.InternInteger(i)); }

  rdf::TermDictionary dict_;
};

TEST_F(FixpointDifferentialTest, RecursiveClosureWithCycles) {
  Program program;
  PredicateId edge = program.predicates.Intern("edge", 2);
  RuleBuilder rb(&program.predicates);
  rb.Head("tc", {rb.Var("X"), rb.Var("Y")});
  rb.Body("edge", {rb.Var("X"), rb.Var("Y")});
  program.rules.push_back(rb.Build());
  rb.Head("tc", {rb.Var("X"), rb.Var("Z")});
  rb.Body("edge", {rb.Var("X"), rb.Var("Y")});
  rb.Body("tc", {rb.Var("Y"), rb.Var("Z")});
  program.rules.push_back(rb.Build());

  std::vector<std::pair<PredicateId, std::vector<Value>>> facts;
  // Two interlocking cycles plus a tail.
  for (int64_t i = 1; i <= 12; ++i) {
    facts.push_back({edge, {V(i), V(i % 12 + 1)}});
    if (i % 3 == 0) facts.push_back({edge, {V(i), V((i + 5) % 12 + 1)}});
  }
  facts.push_back({edge, {V(12), V(20)}});
  facts.push_back({edge, {V(20), V(21)}});
  ExpectModesAgree(program, facts);
}

TEST_F(FixpointDifferentialTest, MutualRecursion) {
  Program program;
  PredicateId link = program.predicates.Intern("link", 2);
  RuleBuilder rb(&program.predicates);
  // odd/even path lengths via mutually recursive predicates.
  rb.Head("odd", {rb.Var("X"), rb.Var("Y")});
  rb.Body("link", {rb.Var("X"), rb.Var("Y")});
  program.rules.push_back(rb.Build());
  rb.Head("even", {rb.Var("X"), rb.Var("Z")});
  rb.Body("link", {rb.Var("X"), rb.Var("Y")});
  rb.Body("odd", {rb.Var("Y"), rb.Var("Z")});
  program.rules.push_back(rb.Build());
  rb.Head("odd", {rb.Var("X"), rb.Var("Z")});
  rb.Body("link", {rb.Var("X"), rb.Var("Y")});
  rb.Body("even", {rb.Var("Y"), rb.Var("Z")});
  program.rules.push_back(rb.Build());

  std::vector<std::pair<PredicateId, std::vector<Value>>> facts;
  for (int64_t i = 1; i <= 10; ++i) {
    facts.push_back({link, {V(i), V(i % 10 + 1)}});
  }
  ExpectModesAgree(program, facts);
}

TEST_F(FixpointDifferentialTest, StratifiedNegationOverRecursion) {
  Program program;
  PredicateId edge = program.predicates.Intern("edge", 2);
  RuleBuilder rb(&program.predicates);
  // reach from node 1; unreachable = nodes that appear but aren't reached.
  rb.Head("reach", {rb.Var("Y")});
  rb.Body("edge", {RuleBuilder::Const(V(1)), rb.Var("Y")});
  program.rules.push_back(rb.Build());
  rb.Head("reach", {rb.Var("Z")});
  rb.Body("reach", {rb.Var("Y")});
  rb.Body("edge", {rb.Var("Y"), rb.Var("Z")});
  program.rules.push_back(rb.Build());
  rb.Head("node", {rb.Var("X")});
  rb.Body("edge", {rb.Var("X"), rb.Var("Y")});
  program.rules.push_back(rb.Build());
  rb.Head("node", {rb.Var("Y")});
  rb.Body("edge", {rb.Var("X"), rb.Var("Y")});
  program.rules.push_back(rb.Build());
  rb.Head("unreachable", {rb.Var("X")});
  rb.Body("node", {rb.Var("X")});
  rb.NegBody("reach", {rb.Var("X")});
  program.rules.push_back(rb.Build());

  std::vector<std::pair<PredicateId, std::vector<Value>>> facts = {
      {edge, {V(1), V(2)}}, {edge, {V(2), V(3)}}, {edge, {V(3), V(1)}},
      {edge, {V(5), V(6)}}, {edge, {V(6), V(5)}}, {edge, {V(3), V(4)}},
  };
  ExpectModesAgree(program, facts);
}

TEST_F(FixpointDifferentialTest, BuiltinHeavyRecursionWithSkolems) {
  Program program;
  PredicateId edge = program.predicates.Intern("edge", 2);
  SkolemStore naming;  // function ids are interned per-run by name
  uint32_t f = naming.InternFunction("f1");
  RuleBuilder rb(&program.predicates);
  // Paths with Skolem-tagged provenance, a disequality filter, and a
  // constant assignment: tag(ID, X, Y, C) for X != Y, C = 7.
  rb.Head("path", {rb.Var("X"), rb.Var("Y")});
  rb.Body("edge", {rb.Var("X"), rb.Var("Y")});
  program.rules.push_back(rb.Build());
  rb.Head("path", {rb.Var("X"), rb.Var("Z")});
  rb.Body("path", {rb.Var("X"), rb.Var("Y")});
  rb.Body("edge", {rb.Var("Y"), rb.Var("Z")});
  program.rules.push_back(rb.Build());
  rb.Head("tag", {rb.Var("ID"), rb.Var("X"), rb.Var("Y"), rb.Var("C")});
  rb.Body("path", {rb.Var("X"), rb.Var("Y")});
  rb.Ne(rb.Var("X"), rb.Var("Y"));
  rb.Eq(rb.Var("C"), RuleBuilder::Const(V(7)));
  rb.Skolem(rb.Var("ID"), f, {rb.Var("X"), rb.Var("Y")});
  program.rules.push_back(rb.Build());

  std::vector<std::pair<PredicateId, std::vector<Value>>> facts;
  for (int64_t i = 1; i <= 8; ++i) {
    facts.push_back({edge, {V(i), V(i % 8 + 1)}});
  }
  facts.push_back({edge, {V(4), V(4)}});  // self-loop: X != Y filters it
  ExpectModesAgree(program, facts, {"f1"});
}

}  // namespace
}  // namespace sparqlog::datalog
