// Unit tests for the shared SPARQL expression evaluator: three-valued
// logic, EBV coercion, operator-level comparison, arithmetic, builtins,
// and the ORDER BY total order.

#include <gtest/gtest.h>

#include "eval/expr_eval.h"
#include "sparql/parser.h"

namespace sparqlog::eval {
namespace {

using rdf::TermDictionary;
using rdf::TermId;

class ExprEvalTest : public ::testing::Test {
 protected:
  ExprEvalTest() : eval_(&dict_) {}

  /// Parses `expr` via a FILTER in a dummy query.
  sparql::ExprPtr Parse(const std::string& expr) {
    auto q = sparql::ParseQuery(
        "PREFIX ex: <http://ex.org/> SELECT ?x WHERE { ?x ex:p ?y . FILTER (" +
            expr + ") }",
        &dict_);
    EXPECT_TRUE(q.ok()) << q.status().ToString();
    return q->where->condition;
  }

  EBV Eval(const std::string& expr,
           std::map<std::string, TermId> bindings = {}) {
    auto e = Parse(expr);
    return eval_.EvalEBV(*e, [&](const std::string& name) -> TermId {
      auto it = bindings.find(name);
      return it == bindings.end() ? TermDictionary::kUndef : it->second;
    });
  }

  TermDictionary dict_;
  ExprEvaluator eval_;
};

TEST_F(ExprEvalTest, NumericComparisons) {
  EXPECT_EQ(Eval("3 < 5"), EBV::kTrue);
  EXPECT_EQ(Eval("3.5 >= 3.5"), EBV::kTrue);
  EXPECT_EQ(Eval("2 > 10"), EBV::kFalse);
  // Cross-type numeric comparison (integer vs double).
  EXPECT_EQ(Eval("2 = 2.0"), EBV::kTrue);
  EXPECT_EQ(Eval("\"2\" = 2"), EBV::kFalse);  // string vs number
}

TEST_F(ExprEvalTest, StringComparisons) {
  EXPECT_EQ(Eval("\"abc\" < \"abd\""), EBV::kTrue);
  EXPECT_EQ(Eval("\"abc\" = \"abc\""), EBV::kTrue);
  EXPECT_EQ(Eval("\"a\"@en = \"a\"@en"), EBV::kTrue);
  EXPECT_EQ(Eval("\"a\"@en = \"a\"@de"), EBV::kFalse);
  // Ordering IRIs is a type error -> filter drops the row.
  EXPECT_EQ(Eval("ex:a < ex:b"), EBV::kError);
  EXPECT_EQ(Eval("ex:a = ex:a"), EBV::kTrue);
}

TEST_F(ExprEvalTest, ArithmeticAndPrecedence) {
  EXPECT_EQ(Eval("1 + 2 * 3 = 7"), EBV::kTrue);
  EXPECT_EQ(Eval("(1 + 2) * 3 = 9"), EBV::kTrue);
  EXPECT_EQ(Eval("7 / 2 = 3.5"), EBV::kTrue);
  EXPECT_EQ(Eval("-(3) + 3 = 0"), EBV::kTrue);
  EXPECT_EQ(Eval("1 / 0 > 0"), EBV::kError);  // integer division by zero
  EXPECT_EQ(Eval("\"x\" + 1 = 2"), EBV::kError);
}

TEST_F(ExprEvalTest, ThreeValuedLogic) {
  // ?unbound produces errors; || and && follow SPARQL's partial logic.
  EXPECT_EQ(Eval("?z > 1"), EBV::kError);
  EXPECT_EQ(Eval("1 = 1 || ?z > 1"), EBV::kTrue);
  EXPECT_EQ(Eval("?z > 1 || 1 = 1"), EBV::kTrue);
  EXPECT_EQ(Eval("1 = 2 || ?z > 1"), EBV::kError);
  EXPECT_EQ(Eval("1 = 2 && ?z > 1"), EBV::kFalse);
  EXPECT_EQ(Eval("1 = 1 && ?z > 1"), EBV::kError);
  EXPECT_EQ(Eval("!(?z > 1)"), EBV::kError);
}

TEST_F(ExprEvalTest, EffectiveBooleanValue) {
  EXPECT_EQ(Eval("true"), EBV::kTrue);
  EXPECT_EQ(Eval("false"), EBV::kFalse);
  EXPECT_EQ(Eval("1"), EBV::kTrue);
  EXPECT_EQ(Eval("0"), EBV::kFalse);
  EXPECT_EQ(Eval("\"\""), EBV::kFalse);
  EXPECT_EQ(Eval("\"x\""), EBV::kTrue);
  EXPECT_EQ(Eval("ex:iri"), EBV::kError);  // IRIs have no EBV
}

TEST_F(ExprEvalTest, BoundAndTypeChecks) {
  TermId iri = dict_.InternIri("http://ex.org/a");
  TermId lit = dict_.InternString("v");
  TermId blank = dict_.InternBlank("b");
  TermId num = dict_.InternInteger(5);
  EXPECT_EQ(Eval("BOUND(?y)", {{"y", lit}}), EBV::kTrue);
  EXPECT_EQ(Eval("BOUND(?y)"), EBV::kFalse);
  EXPECT_EQ(Eval("isIRI(?y)", {{"y", iri}}), EBV::kTrue);
  EXPECT_EQ(Eval("isIRI(?y)", {{"y", lit}}), EBV::kFalse);
  EXPECT_EQ(Eval("isBLANK(?y)", {{"y", blank}}), EBV::kTrue);
  EXPECT_EQ(Eval("isLITERAL(?y)", {{"y", lit}}), EBV::kTrue);
  EXPECT_EQ(Eval("isNUMERIC(?y)", {{"y", num}}), EBV::kTrue);
  EXPECT_EQ(Eval("isNUMERIC(?y)", {{"y", lit}}), EBV::kFalse);
  // Type checks on unbound are errors.
  EXPECT_EQ(Eval("isIRI(?y)"), EBV::kError);
}

TEST_F(ExprEvalTest, StringBuiltins) {
  EXPECT_EQ(Eval("STR(ex:a) = \"http://ex.org/a\""), EBV::kTrue);
  EXPECT_EQ(Eval("UCASE(\"aB\") = \"AB\""), EBV::kTrue);
  EXPECT_EQ(Eval("LCASE(\"aB\") = \"ab\""), EBV::kTrue);
  EXPECT_EQ(Eval("STRLEN(\"abcd\") = 4"), EBV::kTrue);
  EXPECT_EQ(Eval("CONTAINS(\"abcd\", \"bc\")"), EBV::kTrue);
  EXPECT_EQ(Eval("STRSTARTS(\"abcd\", \"ab\")"), EBV::kTrue);
  EXPECT_EQ(Eval("STRENDS(\"abcd\", \"cd\")"), EBV::kTrue);
  EXPECT_EQ(Eval("ABS(-3) = 3"), EBV::kTrue);
}

TEST_F(ExprEvalTest, RegexBuiltin) {
  EXPECT_EQ(Eval("regex(\"hello\", \"ell\")"), EBV::kTrue);
  EXPECT_EQ(Eval("regex(\"hello\", \"^h.*o$\")"), EBV::kTrue);
  EXPECT_EQ(Eval("regex(\"HELLO\", \"hello\")"), EBV::kFalse);
  EXPECT_EQ(Eval("regex(\"HELLO\", \"hello\", \"i\")"), EBV::kTrue);
  EXPECT_EQ(Eval("regex(\"x\", \"[\")"), EBV::kError);  // bad pattern
}

TEST_F(ExprEvalTest, LangAndDatatype) {
  EXPECT_EQ(Eval("LANG(\"chat\"@FR) = \"fr\""), EBV::kTrue);
  EXPECT_EQ(Eval("LANG(\"chat\") = \"\""), EBV::kTrue);
  EXPECT_EQ(
      Eval("DATATYPE(\"x\") = <http://www.w3.org/2001/XMLSchema#string>"),
      EBV::kTrue);
  EXPECT_EQ(
      Eval("DATATYPE(5) = <http://www.w3.org/2001/XMLSchema#integer>"),
      EBV::kTrue);
  EXPECT_EQ(Eval("LANGMATCHES(LANG(\"a\"@en-GB), \"en\")"), EBV::kTrue);
  EXPECT_EQ(Eval("LANGMATCHES(LANG(\"a\"@de), \"en\")"), EBV::kFalse);
  EXPECT_EQ(Eval("LANGMATCHES(LANG(\"a\"@de), \"*\")"), EBV::kTrue);
}

TEST_F(ExprEvalTest, SameTerm) {
  EXPECT_EQ(Eval("sameTerm(\"1\", \"1\")"), EBV::kTrue);
  // Value-equal but different terms.
  EXPECT_EQ(Eval("sameTerm(1, 1.0)"), EBV::kFalse);
  EXPECT_EQ(Eval("1 = 1.0"), EBV::kTrue);
}

TEST_F(ExprEvalTest, OrderTotalOrder) {
  TermId unbound = TermDictionary::kUndef;
  TermId blank = dict_.InternBlank("b");
  TermId iri = dict_.InternIri("http://a");
  TermId lit1 = dict_.InternInteger(1);
  TermId lit2 = dict_.InternInteger(2);
  TermId str = dict_.InternString("z");
  // unbound < blank < IRI < literal.
  EXPECT_LT(CompareForOrder(dict_, unbound, blank), 0);
  EXPECT_LT(CompareForOrder(dict_, blank, iri), 0);
  EXPECT_LT(CompareForOrder(dict_, iri, lit1), 0);
  EXPECT_LT(CompareForOrder(dict_, lit1, lit2), 0);
  EXPECT_EQ(CompareForOrder(dict_, lit1, lit1), 0);
  // Incomparable literals still get a deterministic total order.
  int ab = CompareForOrder(dict_, lit1, str);
  int ba = CompareForOrder(dict_, str, lit1);
  EXPECT_EQ(ab, -ba);
  EXPECT_NE(ab, 0);
}

}  // namespace
}  // namespace sparqlog::eval
