// Concurrency tests for the shared-Engine serving mode: N threads
// hammering one const Engine must produce results bit-identical to
// serial execution on private engines (the differential the redesigned
// Execute() API is specified by), admission control must reject excess
// in-flight queries with Unavailable while leaving the engine usable,
// per-call QueryLimits must trip independently of engine defaults, and
// Execute() before Load() must fail with FailedPrecondition. The whole
// suite is run under TSan in CI.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "rdf/dictionary.h"
#include "rdf/graph.h"
#include "sparql/parser.h"

namespace sparqlog {
namespace {

/// Chain with shortcut edges (recursive closure is non-trivial), a
/// literal attribute, and a named graph — covers the recursive fixpoint,
/// OPTIONAL, ASK, GRAPH and FROM paths of the engine.
void BuildServingDataset(rdf::TermDictionary* dict, rdf::Dataset* dataset) {
  rdf::TermId p = dict->InternIri("http://s.org/p");
  rdf::TermId name = dict->InternIri("http://s.org/name");
  auto node = [&](size_t i) {
    return dict->InternIri("http://s.org/n" + std::to_string(i));
  };
  for (size_t i = 0; i + 1 < 90; ++i) {
    dataset->default_graph().Add(node(i), p, node(i + 1));
    if (i % 9 == 0 && i + 5 < 90) {
      dataset->default_graph().Add(node(i), p, node(i + 5));
    }
    if (i % 4 == 0) {
      dataset->default_graph().Add(
          node(i), name, dict->InternLiteral("node " + std::to_string(i)));
    }
  }
  rdf::TermId g = dict->InternIri("http://s.org/g1");
  dataset->named_graph(g).Add(node(0), p, node(50));
}

/// The mixed query stream: recursive paths (ordered and unordered),
/// plain BGPs, OPTIONAL, ASK, GRAPH and FROM scoping.
std::vector<std::string> ServingQueries() {
  const std::string p = "<http://s.org/p>";
  return {
      "SELECT ?x ?y WHERE { ?x " + p + "+ ?y } ORDER BY ?x ?y",
      "SELECT ?x ?y WHERE { ?x " + p + " ?y }",
      "SELECT ?x ?n WHERE { ?x " + p + " ?y . OPTIONAL { ?x "
          "<http://s.org/name> ?n } } ORDER BY ?x ?n",
      "ASK { <http://s.org/n0> " + p + "+ <http://s.org/n9> }",
      "SELECT ?y WHERE { <http://s.org/n3> " + p + "* ?y } ORDER BY ?y",
      "SELECT ?g ?x WHERE { GRAPH ?g { ?x " + p + " ?y } }",
      "SELECT ?x FROM <http://s.org/g1> WHERE { ?x " + p + " ?y }",
      "SELECT ?x WHERE { ?x " + p + " ?y . FILTER (?x != ?y) }",
  };
}

class ConcurrentServingTest : public ::testing::Test {
 protected:
  ConcurrentServingTest() : dataset_(&dict_) {
    BuildServingDataset(&dict_, &dataset_);
  }

  rdf::TermDictionary dict_;
  rdf::Dataset dataset_;
};

TEST_F(ConcurrentServingTest, HammerBitIdenticalToPrivateEngines) {
  const std::vector<std::string> queries = ServingQueries();

  // Serial reference: one PRIVATE engine per query, executed serially.
  // Sharing the dictionary aligns TermIds, so the comparison below is
  // bit-exact, not just structural.
  std::vector<eval::QueryResult> reference;
  for (const std::string& q : queries) {
    core::Engine private_engine(&dataset_, &dict_);
    ASSERT_TRUE(private_engine.Load().ok());
    auto r = private_engine.ExecuteText(q);
    ASSERT_TRUE(r.ok()) << q << ": " << r.status().ToString();
    reference.push_back(std::move(r->result));
  }

  // Shared engine hammered by 8 client threads, each sweeping the whole
  // mixed stream several times from a different starting offset (so hot
  // cache hits, cold translations and scoped FROM/GRAPH queries overlap).
  core::Engine::Options options;
  options.parallelism.num_threads = 2;
  core::Engine shared(&dataset_, &dict_, options);
  ASSERT_TRUE(shared.Load().ok());

  constexpr int kThreads = 8;
  constexpr int kSweeps = 4;
  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      for (int sweep = 0; sweep < kSweeps; ++sweep) {
        for (size_t i = 0; i < queries.size(); ++i) {
          size_t qi = (i + static_cast<size_t>(t)) % queries.size();
          auto got = shared.ExecuteText(queries[qi]);
          if (!got.ok()) {
            failures.fetch_add(1, std::memory_order_relaxed);
            continue;
          }
          const eval::QueryResult& want = reference[qi];
          bool same = got->result.is_ask == want.is_ask &&
                      got->result.ask_value == want.ask_value &&
                      got->result.columns == want.columns &&
                      got->result.SortedRows() == want.SortedRows();
          // Ordered queries must agree on row ORDER too, not just the
          // multiset.
          if (same && queries[qi].find("ORDER BY") != std::string::npos) {
            same = got->result.rows == want.rows;
          }
          if (!same) mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& c : clients) c.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);

  core::Engine::EngineStats stats = shared.stats();
  EXPECT_EQ(stats.queries,
            static_cast<uint64_t>(kThreads) * kSweeps * queries.size());
  EXPECT_EQ(stats.failures, 0u);
  EXPECT_EQ(stats.in_flight, 0u);  // every admission slot released
  // The hot stream actually hit the program cache (scoped FROM queries
  // never cache, everything else does after its cold miss).
  EXPECT_GT(stats.program_hits, stats.program_misses);
}

TEST_F(ConcurrentServingTest, AdmissionControlRejectsAndRecovers) {
  core::Engine::Options options;
  options.serving.max_in_flight = 1;
  core::Engine engine(&dataset_, &dict_, options);
  ASSERT_TRUE(engine.Load().ok());

  // The closure query is slow enough that 8 spinning clients against a
  // single admission slot must overlap; retry sweeps make the race a
  // near-certainty without timing assumptions.
  const std::string heavy =
      "SELECT ?x ?y WHERE { ?x <http://s.org/p>+ ?y }";
  constexpr int kThreads = 8;
  std::atomic<int> rejected{0};
  std::atomic<int> succeeded{0};
  std::atomic<int> other{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&] {
      for (int i = 0; i < 6; ++i) {
        auto r = engine.ExecuteText(heavy);
        if (r.ok()) {
          succeeded.fetch_add(1, std::memory_order_relaxed);
        } else if (r.status().IsUnavailable()) {
          rejected.fetch_add(1, std::memory_order_relaxed);
        } else {
          other.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& c : clients) c.join();

  EXPECT_EQ(other.load(), 0);
  EXPECT_GT(succeeded.load(), 0);
  EXPECT_GT(rejected.load(), 0) << "no admission rejection observed";

  core::Engine::EngineStats stats = engine.stats();
  EXPECT_EQ(stats.rejected, static_cast<uint64_t>(rejected.load()));
  EXPECT_EQ(stats.queries, static_cast<uint64_t>(succeeded.load()));
  EXPECT_EQ(stats.in_flight, 0u);

  // The engine is fully usable after the storm.
  auto after = engine.ExecuteText("ASK { ?s ?p ?o }");
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_TRUE(after->result.ask_value);
}

TEST_F(ConcurrentServingTest, PerQueryLimitsTripIndependently) {
  // Engine defaults: unlimited.
  core::Engine engine(&dataset_, &dict_);
  ASSERT_TRUE(engine.Load().ok());
  const std::string heavy =
      "SELECT ?x ?y WHERE { ?x <http://s.org/p>* ?y }";

  // Tuple budget trips for this call only.
  core::Engine::QueryLimits tight;
  tight.tuple_budget = 100;
  auto budget = engine.ExecuteText(heavy, tight);
  ASSERT_FALSE(budget.ok());
  EXPECT_TRUE(budget.status().IsResourceExhausted())
      << budget.status().ToString();

  // Timeout trips for this call only.
  core::Engine::QueryLimits instant;
  instant.timeout = std::chrono::milliseconds(1);
  auto timed = engine.ExecuteText(heavy, instant);
  if (!timed.ok()) {  // a 1 ms closure CAN finish on a fast machine
    EXPECT_TRUE(timed.status().IsTimeout()) << timed.status().ToString();
  }

  // The same query without limits still succeeds on the same engine.
  auto free_run = engine.ExecuteText(heavy);
  ASSERT_TRUE(free_run.ok()) << free_run.status().ToString();
  EXPECT_GT(free_run->result.rows.size(), 100u);

  // Failed executions count as failures, not queries... and both kinds
  // release their admission slot.
  core::Engine::EngineStats stats = engine.stats();
  EXPECT_GT(stats.failures, 0u);
  EXPECT_EQ(stats.in_flight, 0u);
}

TEST_F(ConcurrentServingTest, ExecuteBeforeLoadFailsPrecondition) {
  core::Engine engine(&dataset_, &dict_);
  EXPECT_FALSE(engine.loaded());
  auto r = engine.ExecuteText("ASK { ?s ?p ?o }");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsFailedPrecondition()) << r.status().ToString();
  EXPECT_EQ(engine.stats().queries, 0u);

  // Translation does not require a loaded EDB.
  auto text = engine.TranslateToText("ASK { ?s ?p ?o }");
  EXPECT_TRUE(text.ok()) << text.status().ToString();

  ASSERT_TRUE(engine.Load().ok());
  EXPECT_TRUE(engine.loaded());
  auto ok = engine.ExecuteText("ASK { ?s ?p ?o }");
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_TRUE(ok->result.ask_value);
}

TEST_F(ConcurrentServingTest, ConcurrentLoadAndExecuteAreSerialized) {
  // Load() is idempotent while the dataset is unchanged, and calling it
  // from one thread while others Execute must be safe (writer lock).
  core::Engine engine(&dataset_, &dict_);
  ASSERT_TRUE(engine.Load().ok());

  // Bounded iterations on both sides: a reader-preferring shared_mutex
  // can starve the Load() writer while readers keep arriving, so an
  // unbounded client loop gated on a flag the loader sets would livelock.
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < 4; ++t) {
    clients.emplace_back([&] {
      for (int i = 0; i < 200; ++i) {
        auto r = engine.ExecuteText("ASK { ?s ?p ?o }");
        if (!r.ok() || !r->result.ask_value) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  std::thread loader([&] {
    for (int i = 0; i < 20; ++i) {
      Status st = engine.Load();
      if (!st.ok()) failures.fetch_add(1, std::memory_order_relaxed);
    }
  });
  loader.join();
  for (std::thread& c : clients) c.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST_F(ConcurrentServingTest, SharedEngineAgreesAcrossQueryLimitOverloads) {
  // The parsed-query and text entry points with and without limits all
  // agree (same internal path).
  core::Engine engine(&dataset_, &dict_);
  ASSERT_TRUE(engine.Load().ok());
  const std::string q =
      "SELECT ?x ?y WHERE { ?x <http://s.org/p>+ ?y } ORDER BY ?x ?y";
  auto parsed = sparql::ParseQuery(q, &dict_);
  ASSERT_TRUE(parsed.ok());

  core::Engine::QueryLimits roomy;
  roomy.tuple_budget = 10'000'000;
  auto a = engine.ExecuteText(q);
  auto b = engine.ExecuteText(q, roomy);
  auto c = engine.Execute(*parsed);
  auto d = engine.Execute(*parsed, roomy);
  for (auto* r : {&a, &b, &c, &d}) {
    ASSERT_TRUE(r->ok()) << r->status().ToString();
  }
  EXPECT_EQ(a->result.rows, b->result.rows);
  EXPECT_EQ(a->result.rows, c->result.rows);
  EXPECT_EQ(a->result.rows, d->result.rows);
}

}  // namespace
}  // namespace sparqlog
