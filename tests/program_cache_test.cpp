// Tests for the query-shape program cache and the memoized stratum
// results: shape-key canonicalization (alpha-renamed queries collide,
// structurally different queries don't, constants lift into parameter
// slots preserving their equality pattern), LRU eviction order, the
// engine's cache stats counters, re-binding correctness (including
// constants inside FILTER expressions, VALUES data blocks, and the
// ambient-collision refusal in ontology mode), and dataset-generation
// invalidation after graph mutation.

#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/program_cache.h"
#include "rdf/turtle_parser.h"
#include "sparql/parser.h"
#include "sparql/shape.h"

namespace sparqlog {
namespace {

sparql::Query Parse(const std::string& text, rdf::TermDictionary* dict,
                    bool extensions = false) {
  sparql::ParserOptions popts;
  popts.extensions = extensions;
  auto q = sparql::ParseQuery("PREFIX ex: <http://ex.org/>\n" + text, dict,
                              popts);
  EXPECT_TRUE(q.ok()) << text << "\n" << q.status().ToString();
  return std::move(q).ValueOrDie();
}

sparql::QueryShape Shape(const std::string& text, rdf::TermDictionary* dict,
                         bool extensions = false) {
  return sparql::ComputeQueryShape(Parse(text, dict, extensions));
}

// --- Shape-key canonicalization -------------------------------------------

TEST(QueryShapeTest, AlphaRenamedQueriesCollide) {
  rdf::TermDictionary dict;
  auto a = Shape("SELECT ?a ?b WHERE { ?a ex:p ?b . ?b ex:q ?c }", &dict);
  // Order-preserving alpha-renaming: a<b<c and u<v<w.
  auto b = Shape("SELECT ?u ?v WHERE { ?u ex:p ?v . ?v ex:q ?w }", &dict);
  EXPECT_EQ(a.key, b.key);
  EXPECT_EQ(a.params, b.params);
  // Different variable spellings are data, not shape.
  EXPECT_NE(a.data_key, b.data_key);
}

TEST(QueryShapeTest, StructurallyDifferentQueriesDiffer) {
  rdf::TermDictionary dict;
  auto base = Shape("SELECT ?a WHERE { ?a ex:p ?b }", &dict);
  const char* variants[] = {
      "SELECT ?a WHERE { ?a ex:p ?b . ?b ex:p ?c }",
      "SELECT ?a WHERE { ?a ex:p ?b OPTIONAL { ?b ex:q ?c } }",
      "SELECT ?a WHERE { { ?a ex:p ?b } UNION { ?a ex:q ?b } }",
      "SELECT ?a WHERE { ?a ex:p+ ?b }",
      "SELECT DISTINCT ?a WHERE { ?a ex:p ?b }",
      "SELECT ?a WHERE { ?a ex:p ?b FILTER (isIRI(?b)) }",
      "ASK { ?a ex:p ?b }",
      "SELECT ?a WHERE { ?a ex:p ?b } ORDER BY ?a",
  };
  for (const char* v : variants) {
    EXPECT_NE(base.key, Shape(v, &dict).key) << v;
  }
}

TEST(QueryShapeTest, ConstantsLiftIntoParameters) {
  rdf::TermDictionary dict;
  auto a = Shape("SELECT ?x WHERE { ?x ex:p ex:n1 }", &dict);
  auto b = Shape("SELECT ?x WHERE { ?x ex:q ex:n2 }", &dict);
  EXPECT_EQ(a.key, b.key);
  EXPECT_NE(a.params, b.params);
  ASSERT_EQ(a.params.size(), 2u);  // predicate + object
  EXPECT_NE(a.data_key, b.data_key);
}

TEST(QueryShapeTest, ConstantEqualityPatternIsStructural) {
  rdf::TermDictionary dict;
  // Same constant twice vs. two distinct constants: different shapes
  // (the translation of e.g. zero-length paths depends on it).
  auto same = Shape("SELECT ?x WHERE { ex:a ex:p ex:a }", &dict);
  auto diff = Shape("SELECT ?x WHERE { ex:a ex:p ex:b }", &dict);
  EXPECT_NE(same.key, diff.key);
  EXPECT_EQ(same.params.size(), 2u);
  EXPECT_EQ(diff.params.size(), 3u);
}

TEST(QueryShapeTest, JoinOrderIsNormalizedAway) {
  rdf::TermDictionary dict;
  auto a = Shape("SELECT ?x ?z WHERE { ?x ex:p ?y . ?y ex:q ?z }", &dict);
  // Same conjuncts, written in the other order: one shape, and because
  // names and constants are identical, one data_key too (verbatim reuse).
  auto b = Shape("SELECT ?x ?z WHERE { ?y ex:q ?z . ?x ex:p ?y }", &dict);
  EXPECT_EQ(a.key, b.key);
  EXPECT_EQ(a.params, b.params);
  EXPECT_EQ(a.data_key, b.data_key);
  // Re-association through a group flattens to the same conjunct list.
  auto c = Shape(
      "SELECT ?x ?z WHERE { { ?y ex:q ?z . ?x ex:p ?y } . ?x ex:r ?w }",
      &dict);
  auto d = Shape(
      "SELECT ?x ?z WHERE { ?x ex:r ?w . { ?x ex:p ?y . ?y ex:q ?z } }",
      &dict);
  EXPECT_EQ(c.key, d.key);
  EXPECT_EQ(c.data_key, d.data_key);
  EXPECT_NE(a.key, c.key);
}

TEST(QueryShapeTest, JoinNormalizationAlignsParameterSlots) {
  rdf::TermDictionary dict;
  auto a = Shape("SELECT ?x ?z WHERE { ?x ex:p ?y . ?y ex:q ?z }", &dict);
  // Permuted conjuncts with different constants: same shape, and the
  // parameter slots follow the canonical (sorted) traversal, so slot i
  // means the same syntactic position in both — re-binding stays sound.
  auto b = Shape("SELECT ?x ?z WHERE { ?y ex:q2 ?z . ?x ex:p2 ?y }", &dict);
  EXPECT_EQ(a.key, b.key);
  ASSERT_EQ(a.params.size(), 2u);
  ASSERT_EQ(b.params.size(), 2u);
  // Slot 0 is the ?x-conjunct predicate in both (concrete keys sort the
  // ?x conjunct first), slot 1 the ?y-conjunct predicate.
  EXPECT_EQ(a.params[0], dict.InternIri("http://ex.org/p"));
  EXPECT_EQ(b.params[0], dict.InternIri("http://ex.org/p2"));
  EXPECT_EQ(a.params[1], dict.InternIri("http://ex.org/q"));
  EXPECT_EQ(b.params[1], dict.InternIri("http://ex.org/q2"));
}

TEST(QueryShapeTest, OrderPermutingRenamingsCollide) {
  rdf::TermDictionary dict;
  auto a = Shape("SELECT ?x ?y WHERE { ?x ex:p ?y }", &dict);
  // ?b sorts before ?a: the renaming permutes the lexicographic name
  // order, which used to be part of the key (a conservative miss).
  auto b = Shape("SELECT ?b ?a WHERE { ?b ex:p ?a }", &dict);
  EXPECT_EQ(a.key, b.key);
  EXPECT_NE(a.data_key, b.data_key);
  // The spellings ride along by canonical ordinal for re-binding.
  EXPECT_EQ(a.var_names, (std::vector<std::string>{"x", "y"}));
  EXPECT_EQ(b.var_names, (std::vector<std::string>{"b", "a"}));
}

TEST(QueryShapeTest, LimitOffsetAreDataNotShape) {
  rdf::TermDictionary dict;
  auto a = Shape("SELECT ?x WHERE { ?x ex:p ?y } LIMIT 5", &dict);
  auto b = Shape("SELECT ?x WHERE { ?x ex:p ?y } LIMIT 7", &dict);
  auto c = Shape("SELECT ?x WHERE { ?x ex:p ?y }", &dict);
  EXPECT_EQ(a.key, b.key);
  EXPECT_EQ(a.key, c.key);
  EXPECT_NE(a.data_key, b.data_key);
  EXPECT_NE(a.data_key, c.data_key);
}

// --- LRU eviction ----------------------------------------------------------

TEST(ProgramCacheTest, EvictsLeastRecentlyUsed) {
  core::ProgramCache cache(2);
  auto entry = [] {
    core::ProgramCache::Entry e;
    e.program = std::make_shared<const datalog::Program>();
    return e;
  };
  sparql::QueryShape a, b, c, d;
  a.key = "a";
  b.key = "b";
  c.key = "c";
  d.key = "d";
  cache.Insert(a, entry());
  cache.Insert(b, entry());
  EXPECT_EQ(cache.size(), 2u);
  cache.Insert(c, entry());  // evicts a (oldest)
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_FALSE(cache.Lookup(a).has_value());
  EXPECT_TRUE(cache.Lookup(b).has_value());  // promotes b over c
  cache.Insert(d, entry());                  // evicts c, not the promoted b
  EXPECT_EQ(cache.evictions(), 2u);
  EXPECT_FALSE(cache.Lookup(c).has_value());
  EXPECT_TRUE(cache.Lookup(b).has_value());
  EXPECT_TRUE(cache.Lookup(d).has_value());
}

// --- Engine-level stats + re-binding correctness ---------------------------

class ProgramCacheEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dataset_ = std::make_unique<rdf::Dataset>(&dict_);
    ASSERT_TRUE(rdf::ParseTurtle(R"(
      @prefix ex: <http://ex.org/> .
      ex:a ex:p ex:b . ex:b ex:p ex:c . ex:c ex:p ex:d .
      ex:a ex:q ex:c . ex:b ex:q ex:d .
      ex:a ex:name "alice" . ex:b ex:name "bob" .
    )",
                                 dataset_.get())
                    .ok());
  }

  eval::QueryResult Exec(core::Engine& engine, const std::string& text) {
    if (!engine.loaded()) {
      Status st = engine.Load();
      EXPECT_TRUE(st.ok()) << st.ToString();
    }
    auto r = engine.ExecuteText("PREFIX ex: <http://ex.org/>\n" + text);
    EXPECT_TRUE(r.ok()) << text << "\n" << r.status().ToString();
    return std::move(r).ValueOrDie().result;
  }

  rdf::TermDictionary dict_;
  std::unique_ptr<rdf::Dataset> dataset_;
};

TEST_F(ProgramCacheEngineTest, StatsCountHitsRebindsMisses) {
  core::Engine engine(dataset_.get(), &dict_);
  auto r1 = Exec(engine, "SELECT ?x ?y WHERE { ?x ex:p ?y }");
  EXPECT_EQ(engine.stats().program_misses, 1u);

  auto r2 = Exec(engine, "SELECT ?x ?y WHERE { ?x ex:p ?y }");
  EXPECT_EQ(engine.stats().program_hits, 1u);
  EXPECT_EQ(r1.rows, r2.rows);
  EXPECT_EQ(r1.columns, r2.columns);

  // Same shape, different constant: re-bind.
  auto r3 = Exec(engine, "SELECT ?x ?y WHERE { ?x ex:q ?y }");
  EXPECT_EQ(engine.stats().program_rebinds, 1u);
  EXPECT_EQ(r3.rows.size(), 2u);

  // Order-preserving alpha-renaming: re-bind, renamed output columns.
  auto r4 = Exec(engine, "SELECT ?u ?v WHERE { ?u ex:p ?v }");
  EXPECT_EQ(engine.stats().program_rebinds, 2u);
  EXPECT_EQ(r4.columns, (std::vector<std::string>{"u", "v"}));
  EXPECT_EQ(r4.rows, r1.rows);

  // Different shape: miss.
  Exec(engine, "SELECT ?x WHERE { ?x ex:p ?y . ?y ex:p ?z }");
  EXPECT_EQ(engine.stats().program_misses, 2u);

  // Stratum memo engaged on the repeats.
  EXPECT_GT(engine.stats().stratum_hits, 0u);
}

TEST_F(ProgramCacheEngineTest, JoinPermutationHitsAndAnswersCorrectly) {
  core::Engine engine(dataset_.get(), &dict_);
  auto r1 = Exec(engine, "SELECT ?x ?z WHERE { ?x ex:p ?y . ?y ex:q ?z }");
  EXPECT_EQ(engine.stats().program_misses, 1u);
  // The permuted spelling is a verbatim hit (same key, same data_key) and
  // the cached program's solutions are the permuted query's solutions.
  auto r2 = Exec(engine, "SELECT ?x ?z WHERE { ?y ex:q ?z . ?x ex:p ?y }");
  EXPECT_EQ(engine.stats().program_hits, 1u);
  EXPECT_EQ(engine.stats().program_misses, 1u);
  EXPECT_EQ(r1.columns, r2.columns);
  EXPECT_EQ(r1.rows, r2.rows);
  // Permuted *and* re-parameterized: a re-bind, cross-checked against a
  // cache-less engine.
  auto r3 = Exec(engine, "SELECT ?x ?z WHERE { ?y ex:p ?z . ?x ex:q ?y }");
  EXPECT_EQ(engine.stats().program_rebinds, 1u);
  core::Engine::Options cold_opts;
  cold_opts.caching.program_cache = false;
  cold_opts.caching.stratum_memo = false;
  core::Engine cold(dataset_.get(), &dict_, cold_opts);
  auto fresh = Exec(cold, "SELECT ?x ?z WHERE { ?y ex:p ?z . ?x ex:q ?y }");
  EXPECT_TRUE(r3.SameSolutions(fresh));
}

// Rows keyed by column *name* (SameSolutions is positional; permuted
// renamings may legitimately lay columns out differently).
std::multiset<std::vector<std::pair<std::string, rdf::TermId>>> NamedRows(
    const eval::QueryResult& r) {
  std::multiset<std::vector<std::pair<std::string, rdf::TermId>>> out;
  for (const auto& row : r.rows) {
    std::vector<std::pair<std::string, rdf::TermId>> named;
    for (size_t i = 0; i < r.columns.size() && i < row.size(); ++i) {
      named.emplace_back(r.columns[i], row[i]);
    }
    std::sort(named.begin(), named.end());
    out.insert(std::move(named));
  }
  return out;
}

TEST_F(ProgramCacheEngineTest, OrderPermutingRenamingRebindsCorrectly) {
  core::Engine engine(dataset_.get(), &dict_);
  auto r1 = Exec(engine, "SELECT ?x ?y WHERE { ?x ex:p ?y } ORDER BY ?y");
  EXPECT_EQ(engine.stats().program_misses, 1u);
  // ?b < ?a: the renaming permutes the sorted variable layout the
  // translation uses internally. Must re-bind (names are data), not miss.
  auto r2 = Exec(engine, "SELECT ?b ?a WHERE { ?b ex:p ?a } ORDER BY ?a");
  EXPECT_EQ(engine.stats().program_misses, 1u);
  EXPECT_EQ(engine.stats().program_rebinds, 1u);
  EXPECT_EQ(r2.columns, (std::vector<std::string>{"b", "a"}));
  // SELECT lists align canonically, so the rows agree positionally too.
  EXPECT_EQ(r1.rows, r2.rows);
}

TEST_F(ProgramCacheEngineTest, PermutedRenamingSelectStarMatchesCold) {
  core::Engine engine(dataset_.get(), &dict_);
  // SELECT * lays columns out in each query's own sorted name order —
  // exactly the layout a permuted renaming disturbs.
  Exec(engine, "SELECT * WHERE { ?u ex:p ?t }");
  auto warm = Exec(engine, "SELECT * WHERE { ?a ex:p ?z }");
  EXPECT_EQ(engine.stats().program_rebinds, 1u);
  core::Engine::Options cold_opts;
  cold_opts.caching.program_cache = false;
  cold_opts.caching.stratum_memo = false;
  core::Engine cold(dataset_.get(), &dict_, cold_opts);
  auto fresh = Exec(cold, "SELECT * WHERE { ?a ex:p ?z }");
  EXPECT_EQ(NamedRows(warm), NamedRows(fresh));
}

TEST_F(ProgramCacheEngineTest, PermutedRenamingAggregateMatchesCold) {
  core::Engine engine(dataset_.get(), &dict_);
  // The aggregate path reads the pattern root laid out in sorted pattern
  // variables; the permuted renaming must not scramble group keys.
  auto r1 = Exec(engine,
                 "SELECT ?y (COUNT(?x) AS ?n) WHERE { ?x ex:p ?y } "
                 "GROUP BY ?y");
  auto r2 = Exec(engine,
                 "SELECT ?b (COUNT(?c) AS ?n) WHERE { ?c ex:p ?b } "
                 "GROUP BY ?b");
  EXPECT_EQ(engine.stats().program_misses, 1u);
  EXPECT_EQ(engine.stats().program_rebinds, 1u);
  core::Engine::Options cold_opts;
  cold_opts.caching.program_cache = false;
  cold_opts.caching.stratum_memo = false;
  core::Engine cold(dataset_.get(), &dict_, cold_opts);
  auto fresh = Exec(cold,
                    "SELECT ?b (COUNT(?c) AS ?n) WHERE { ?c ex:p ?b } "
                    "GROUP BY ?b");
  EXPECT_EQ(NamedRows(r2), NamedRows(fresh));
  // The renaming only relabels columns; the solutions agree positionally.
  EXPECT_TRUE(r1.SameSolutions(r2));
}

TEST_F(ProgramCacheEngineTest, RebindReachesFilterExpressions) {
  core::Engine engine(dataset_.get(), &dict_);
  auto r1 = Exec(engine,
                 "SELECT ?x WHERE { ?x ex:p ?y FILTER (?y != ex:b) }");
  auto r2 = Exec(engine,
                 "SELECT ?x WHERE { ?x ex:p ?y FILTER (?y != ex:c) }");
  EXPECT_EQ(engine.stats().program_rebinds, 1u);
  EXPECT_EQ(r1.rows.size(), 2u);  // b->c and c->d survive
  EXPECT_EQ(r2.rows.size(), 2u);  // a->b and c->d survive
  EXPECT_NE(r1.rows, r2.rows);

  // Fresh-engine cross-check: the re-bound program answers like a cold
  // translation.
  core::Engine::Options cold_opts;
  cold_opts.caching.program_cache = false;
  cold_opts.caching.stratum_memo = false;
  core::Engine cold(dataset_.get(), &dict_, cold_opts);
  auto fresh = Exec(cold, "SELECT ?x WHERE { ?x ex:p ?y FILTER (?y != ex:c) }");
  EXPECT_TRUE(r2.SameSolutions(fresh));
}

TEST_F(ProgramCacheEngineTest, RebindReachesValuesFacts) {
  core::Engine::Options options;
  options.extensions = true;
  core::Engine engine(dataset_.get(), &dict_, options);
  auto r1 = Exec(engine,
                 "SELECT ?x ?y WHERE { VALUES ?x { ex:a ex:b } ?x ex:p ?y }");
  auto r2 = Exec(engine,
                 "SELECT ?x ?y WHERE { VALUES ?x { ex:b ex:c } ?x ex:p ?y }");
  EXPECT_EQ(engine.stats().program_rebinds, 1u);
  EXPECT_EQ(r1.rows.size(), 2u);
  EXPECT_EQ(r2.rows.size(), 2u);
  EXPECT_NE(r1.rows, r2.rows);
}

TEST_F(ProgramCacheEngineTest, RebindRefreshesLimitAndOrder) {
  core::Engine engine(dataset_.get(), &dict_);
  auto r1 = Exec(engine,
                 "SELECT ?x ?y WHERE { ?x ex:p ?y } ORDER BY ?y LIMIT 2");
  auto r2 = Exec(engine,
                 "SELECT ?x ?y WHERE { ?x ex:p ?y } ORDER BY ?y LIMIT 3");
  EXPECT_EQ(r1.rows.size(), 2u);
  EXPECT_EQ(r2.rows.size(), 3u);
  EXPECT_GE(engine.stats().program_rebinds, 1u);
  // Shared prefix under the shared ORDER BY.
  EXPECT_EQ(r1.rows[0], r2.rows[0]);
  EXPECT_EQ(r1.rows[1], r2.rows[1]);
}

TEST_F(ProgramCacheEngineTest, OntologyAmbientCollisionRetranslates) {
  // In ontology mode rdf:type is baked into the inference rules; a cached
  // template whose parameter *is* rdf:type must not be value-substituted.
  rdf::Dataset onto(&dict_);
  ASSERT_TRUE(rdf::ParseTurtle(R"(
    @prefix ex: <http://o.org/> .
    @prefix rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#> .
    @prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
    ex:Cat rdfs:subClassOf ex:Animal .
    ex:tom rdf:type ex:Cat .
    ex:ann ex:likes ex:tom .
  )",
                               &onto)
                  .ok());
  core::Engine::Options options;
  options.ontology = true;
  core::Engine engine(&onto, &dict_, options);
  ASSERT_TRUE(engine.Load().ok());
  const std::string prefix =
      "PREFIX ex: <http://o.org/> "
      "PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#> ";
  auto typed = engine.ExecuteText(
      prefix + "SELECT ?x WHERE { ?x rdf:type ex:Animal }");
  ASSERT_TRUE(typed.ok());
  EXPECT_EQ(typed->result.rows.size(), 1u);  // tom, via subClassOf inference
  // Same shape (var, const, const), different predicate constant: the
  // rdf:type parameter collides with the ontology rules, so the engine
  // must re-translate rather than re-bind — and still answer correctly.
  auto likes =
      engine.ExecuteText(prefix + "SELECT ?x WHERE { ?x ex:likes ex:tom }");
  ASSERT_TRUE(likes.ok());
  EXPECT_EQ(likes->result.rows.size(), 1u);  // ann
  EXPECT_EQ(engine.stats().program_rebinds, 0u);
  EXPECT_EQ(engine.stats().program_misses, 2u);
  // And the inference rules survived: re-ask the typed query.
  auto typed2 = engine.ExecuteText(
      prefix + "SELECT ?x WHERE { ?x rdf:type ex:Animal }");
  ASSERT_TRUE(typed2.ok());
  EXPECT_EQ(typed2->result.rows, typed->result.rows);
}

// --- Dataset-generation invalidation ---------------------------------------

TEST_F(ProgramCacheEngineTest, GraphMutationInvalidatesEdbAndMemo) {
  core::Engine engine(dataset_.get(), &dict_);
  const std::string q = "SELECT ?x ?y WHERE { ?x ex:p+ ?y }";
  auto cold = Exec(engine, q);
  auto warm = Exec(engine, q);
  EXPECT_EQ(cold.rows, warm.rows);
  auto before = engine.stats();
  EXPECT_GT(before.stratum_hits, 0u);
  EXPECT_EQ(before.invalidations, 0u);

  // Mutate the dataset: the chain grows, so the closure must too.
  dataset_->default_graph().Add(dict_.InternIri("http://ex.org/d"),
                                dict_.InternIri("http://ex.org/p"),
                                dict_.InternIri("http://ex.org/e"));
  // In-flight queries keep the loaded snapshot; publishing the mutation
  // is an explicit second Load().
  auto stale = Exec(engine, q);
  EXPECT_EQ(stale.rows, warm.rows);
  ASSERT_TRUE(engine.Load().ok());
  auto after_mutation = Exec(engine, q);
  EXPECT_GT(after_mutation.rows.size(), warm.rows.size());
  auto stats = engine.stats();
  EXPECT_EQ(stats.invalidations, 1u);
  // The post-mutation run re-derived its strata (memo was cleared)...
  EXPECT_GT(stats.stratum_misses, before.stratum_misses);
  // ...and a repeat of it hits the rebuilt memo, bit-identically.
  auto warm2 = Exec(engine, q);
  EXPECT_EQ(after_mutation.rows, warm2.rows);
  EXPECT_GT(engine.stats().stratum_hits, stats.stratum_hits);
}

TEST_F(ProgramCacheEngineTest, TinyMemoBudgetEvictsButStaysCorrect) {
  core::Engine::Options options;
  options.caching.stratum_memo_bytes = 1;  // every snapshot overflows the budget
  core::Engine engine(dataset_.get(), &dict_, options);
  const std::string q = "SELECT ?x ?y WHERE { ?x ex:p+ ?y }";
  auto cold = Exec(engine, q);
  auto warm = Exec(engine, q);
  EXPECT_EQ(cold.rows, warm.rows);
  EXPECT_GT(engine.stats().stratum_evictions, 0u);
}

}  // namespace
}  // namespace sparqlog
