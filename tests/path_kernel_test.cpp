// Differential suite for the transitive-closure kernel
// (datalog/tc_kernel.h): an engine with fixpoint.tc_kernel on must
// produce solution-identical results to the generic delta fixpoint —
// across the gMark path workload at several thread counts, on SP2Bench
// citation closures, under a mid-closure budget trip, on cyclic /
// self-loop / empty micro-graphs, and in both frontier representations
// (dense bitsets and the sorted-vector sparse fallback).

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <vector>

#include "core/engine.h"
#include "rdf/graph.h"
#include "rdf/turtle_parser.h"
#include "workloads/gmark.h"
#include "workloads/sp2bench.h"

namespace sparqlog {
namespace {

// ThreadSanitizer slows the kernel-off million-tuple closures by an
// order of magnitude; the TSan job wants the same parallel code paths
// exercised, not the same workload sizes, so the sweeps shrink and the
// per-query timeout loosens under instrumentation.
#if defined(__SANITIZE_THREAD__)
constexpr bool kTsan = true;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
constexpr bool kTsan = true;
#else
constexpr bool kTsan = false;
#endif
#else
constexpr bool kTsan = false;
#endif

core::Engine::Options KernelOptions(bool kernel_on, uint32_t threads = 1) {
  core::Engine::Options o;
  o.timeout = std::chrono::seconds(kTsan ? 300 : 30);
  o.tuple_budget = 8'000'000;
  o.parallelism.num_threads = threads;
  o.fixpoint.tc_kernel = kernel_on;
  return o;
}

/// Runs every query through a kernel-on and a kernel-off engine and
/// asserts identical solution multisets (and identical ordered rows when
/// the query carries ORDER BY). Returns the number of queries compared.
size_t SweepKernelDifferential(const rdf::Dataset& dataset,
                               rdf::TermDictionary* dict,
                               const std::vector<std::string>& queries,
                               uint32_t threads) {
  core::Engine on_engine(&dataset, dict, KernelOptions(true, threads));
  core::Engine off_engine(&dataset, dict, KernelOptions(false, threads));
  EXPECT_TRUE(on_engine.Load().ok());
  EXPECT_TRUE(off_engine.Load().ok());
  size_t swept = 0;
  for (const std::string& text : queries) {
    auto a = on_engine.ExecuteText(text);
    auto b = off_engine.ExecuteText(text);
    if (!a.ok() && !b.ok()) continue;  // both over budget: nothing to pin
    EXPECT_TRUE(a.ok()) << text << "\nthreads " << threads << ": "
                        << a.status().ToString();
    EXPECT_TRUE(b.ok()) << text << "\nthreads " << threads << ": "
                        << b.status().ToString();
    if (!a.ok() || !b.ok()) continue;
    EXPECT_EQ(a->result.columns, b->result.columns) << text;
    EXPECT_TRUE(a->result.SameSolutions(b->result))
        << text << "\nthreads " << threads << ": kernel changed solutions ("
        << a->result.rows.size() << " vs " << b->result.rows.size()
        << " rows)";
    EXPECT_EQ(a->result.ask_value, b->result.ask_value) << text;
    ++swept;
  }
  // The kernel actually ran on the on-engine and never on the off-engine.
  EXPECT_GT(on_engine.stats().tc_kernels_hit, 0u) << "threads " << threads;
  EXPECT_EQ(off_engine.stats().tc_kernels_hit, 0u) << "threads " << threads;
  return swept;
}

// The full machine-generated gMark path workload (sequence, alternative,
// inverse, the recursive forms, counted forms) at 1 / 2 / 8 threads.
TEST(PathKernelDifferentialTest, GmarkQueriesMatchAcrossThreadCounts) {
  rdf::TermDictionary dict;
  rdf::Dataset dataset(&dict);
  workloads::GmarkScenario scenario = workloads::GmarkTest();
  workloads::GenerateGmarkGraph(scenario, &dataset);
  std::vector<std::string> queries = workloads::GenerateGmarkQueries(scenario);
  const std::vector<uint32_t> thread_counts =
      kTsan ? std::vector<uint32_t>{1u, 8u} : std::vector<uint32_t>{1u, 2u, 8u};
  for (uint32_t threads : thread_counts) {
    size_t swept = SweepKernelDifferential(dataset, &dict, queries, threads);
    EXPECT_GE(swept, 30u) << "threads " << threads;
  }
}

// Recursive closures over the larger social scenario — the graph the
// perf gate (BM_PathKernel) measures, so the speedup is pinned to be a
// pure evaluation-strategy change on exactly this workload.
TEST(PathKernelDifferentialTest, GmarkSocialClosuresMatch) {
  rdf::TermDictionary dict;
  rdf::Dataset dataset(&dict);
  workloads::GmarkScenario scenario = workloads::GmarkSocial();
  workloads::GenerateGmarkGraph(scenario, &dataset);
  const std::string ns = "http://example.org/gMark/";
  std::vector<std::string> queries = {
      "SELECT ?x ?y WHERE { ?x <" + ns + "knows>+ ?y }",
      "SELECT ?x ?y WHERE { ?x <" + ns + "follows>* ?y }",
      "SELECT DISTINCT ?x ?y WHERE { ?x (<" + ns + "likes>|<" + ns +
          "hasCreator>)+ ?y }",
      "SELECT ?y WHERE { ?y (<" + ns + "replyOf>)+ ?x ."
      " FILTER(?x = ?y) }",
  };
  if (kTsan) queries.resize(2);  // the two heaviest closures suffice
  size_t swept = SweepKernelDifferential(dataset, &dict, queries, 8);
  EXPECT_EQ(swept, queries.size());
}

// SP2Bench's citation graph: dcterms:references forms a DAG between
// articles; its closure (and a sequence into it) must be identical.
TEST(PathKernelDifferentialTest, Sp2bReferenceClosuresMatch) {
  rdf::TermDictionary dict;
  rdf::Dataset dataset(&dict);
  workloads::Sp2bOptions options;
  options.target_triples = 1500;
  workloads::GenerateSp2b(options, &dataset);
  const std::string refs = "<http://purl.org/dc/terms/references>";
  std::vector<std::string> queries = {
      "SELECT ?a ?b WHERE { ?a " + refs + "+ ?b }",
      "SELECT DISTINCT ?a ?b WHERE { ?a " + refs + "* ?b }",
      "SELECT ?a ?t WHERE { ?a " + refs +
          "+/<http://purl.org/dc/elements/1.1/title> ?t }",
  };
  for (uint32_t threads : {1u, 8u}) {
    size_t swept = SweepKernelDifferential(dataset, &dict, queries, threads);
    EXPECT_EQ(swept, queries.size()) << "threads " << threads;
  }
}

// A tuple budget that trips mid-closure must surface as ResourceExhausted
// on both paths — the kernel is paced by the same ExecContext budget as
// the generic fixpoint, not allowed to run to completion first.
TEST(PathKernelDifferentialTest, BudgetTripsMidClosureOnBothPaths) {
  rdf::TermDictionary dict;
  rdf::Dataset dataset(&dict);
  workloads::GmarkScenario scenario = workloads::GmarkTest();
  workloads::GenerateGmarkGraph(scenario, &dataset);
  const std::string query =
      "SELECT ?x ?y WHERE { ?x (<http://example.org/gMark/p0>|"
      "<http://example.org/gMark/p1>)+ ?y }";
  for (bool kernel_on : {true, false}) {
    core::Engine::Options o = KernelOptions(kernel_on);
    o.tuple_budget = 2'000;  // the p0|p1 step alone exceeds this
    core::Engine engine(&dataset, &dict, o);
    ASSERT_TRUE(engine.Load().ok());
    auto r = engine.ExecuteText(query);
    ASSERT_FALSE(r.ok()) << "kernel_on " << kernel_on;
    EXPECT_TRUE(r.status().IsResourceExhausted())
        << "kernel_on " << kernel_on << ": " << r.status().ToString();
  }
}

// Micro-graphs where closure corner cases live: a cycle through the
// start node, a self loop, both endpoint bindings, and two-var closure.
TEST(PathKernelDifferentialTest, CyclicAndSelfLoopGraphsMatch) {
  rdf::TermDictionary dict;
  rdf::Dataset dataset(&dict);
  auto st = rdf::ParseTurtle(R"(
      @prefix ex: <http://ex.org/> .
      ex:a ex:p ex:b . ex:b ex:p ex:c . ex:c ex:p ex:a . ex:a ex:p ex:d .
      ex:e ex:p ex:e .
    )",
                             &dataset);
  ASSERT_TRUE(st.ok()) << st.ToString();
  std::vector<std::string> queries = {
      "PREFIX ex: <http://ex.org/> SELECT ?x ?y WHERE { ?x ex:p+ ?y }",
      "PREFIX ex: <http://ex.org/> SELECT ?y WHERE { ex:a ex:p+ ?y }",
      "PREFIX ex: <http://ex.org/> SELECT ?x WHERE { ?x ex:p+ ex:a }",
      "PREFIX ex: <http://ex.org/> SELECT ?y WHERE { ex:e ex:p+ ?y }",
      "PREFIX ex: <http://ex.org/> SELECT DISTINCT ?x ?y "
      "WHERE { ?x ex:p* ?y }",
      "PREFIX ex: <http://ex.org/> SELECT ?x ?y WHERE { ?x ex:p{2,} ?y }",
  };
  core::Engine on_engine(&dataset, &dict, KernelOptions(true));
  core::Engine off_engine(&dataset, &dict, KernelOptions(false));
  ASSERT_TRUE(on_engine.Load().ok());
  ASSERT_TRUE(off_engine.Load().ok());
  for (const std::string& text : queries) {
    auto a = on_engine.ExecuteText(text);
    auto b = off_engine.ExecuteText(text);
    ASSERT_TRUE(a.ok()) << text << ": " << a.status().ToString();
    ASSERT_TRUE(b.ok()) << text << ": " << b.status().ToString();
    EXPECT_EQ(a->result.columns, b->result.columns) << text;
    EXPECT_TRUE(a->result.SameSolutions(b->result))
        << text << ": kernel changed solutions (" << a->result.rows.size()
        << " vs " << b->result.rows.size() << " rows)";
  }
  EXPECT_GT(on_engine.stats().tc_kernels_hit, 0u);
  // A micro universe always takes the bitset representation.
  EXPECT_GT(on_engine.stats().tc_dense_frontiers, 0u);
  EXPECT_EQ(on_engine.stats().tc_sparse_frontiers, 0u);
}

// An empty graph: the closure stratum has no step edges at all; both
// paths must return zero rows without tripping anything.
TEST(PathKernelDifferentialTest, EmptyGraphMatches) {
  rdf::TermDictionary dict;
  rdf::Dataset dataset(&dict);
  const std::string query =
      "PREFIX ex: <http://ex.org/> SELECT ?x ?y WHERE { ?x ex:p+ ?y }";
  for (bool kernel_on : {true, false}) {
    core::Engine engine(&dataset, &dict, KernelOptions(kernel_on));
    ASSERT_TRUE(engine.Load().ok());
    auto r = engine.ExecuteText(query);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_TRUE(r->result.rows.empty());
  }
}

// Sparse frontier mode: a constant-seeded closure walks one seed across
// a universe of several thousand nodes, which fails the seed-density
// heuristic and takes the sorted-vector representation. A 5000-node
// chain gives exactly one reachable node per round — the worst case for
// bitset clearing, the best case for sparse frontiers.
TEST(PathKernelDifferentialTest, SparseFrontierModeMatchesGeneric) {
  rdf::TermDictionary dict;
  rdf::Dataset dataset(&dict);
  const int kNodes = 5000;
  rdf::TermId p = dict.InternIri("http://ex.org/p");
  std::vector<rdf::TermId> nodes;
  nodes.reserve(kNodes);
  for (int i = 0; i < kNodes; ++i) {
    nodes.push_back(dict.InternIri("http://ex.org/n" + std::to_string(i)));
  }
  for (int i = 0; i + 1 < kNodes; ++i) {
    dataset.default_graph().Add(nodes[i], p, nodes[i + 1]);
  }
  const std::string query =
      "SELECT ?y WHERE { <http://ex.org/n0> <http://ex.org/p>+ ?y }";

  core::Engine on_engine(&dataset, &dict, KernelOptions(true));
  core::Engine off_engine(&dataset, &dict, KernelOptions(false));
  ASSERT_TRUE(on_engine.Load().ok());
  ASSERT_TRUE(off_engine.Load().ok());
  auto a = on_engine.ExecuteText(query);
  auto b = off_engine.ExecuteText(query);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  EXPECT_EQ(a->result.rows.size(), static_cast<size_t>(kNodes - 1));
  EXPECT_TRUE(a->result.SameSolutions(b->result))
      << "sparse kernel changed solutions (" << a->result.rows.size()
      << " vs " << b->result.rows.size() << " rows)";
  EXPECT_GT(on_engine.stats().tc_kernels_hit, 0u);
  EXPECT_GT(on_engine.stats().tc_sparse_frontiers, 0u);
  EXPECT_EQ(off_engine.stats().tc_kernels_hit, 0u);
}

}  // namespace
}  // namespace sparqlog
