// Unit tests for the util substrate: Status/Result, string helpers,
// deterministic RNG, the ExecContext budget machinery that powers the
// benchmark harness's time-out / mem-out rows, and the worker pool behind
// the parallel fixpoint.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <thread>
#include <vector>

#include "util/exec_context.h"
#include "util/hash.h"
#include "util/retry.h"
#include "util/status.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace sparqlog {
namespace {

TEST(StatusTest, OkByDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, CodesAndMessages) {
  Status st = Status::Timeout("deadline exceeded");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsTimeout());
  EXPECT_EQ(st.code(), StatusCode::kTimeout);
  EXPECT_EQ(st.ToString(), "Timeout: deadline exceeded");
  EXPECT_TRUE(Status::ResourceExhausted("x").IsResourceExhausted());
  EXPECT_TRUE(Status::NotSupported("x").IsNotSupported());
  EXPECT_TRUE(Status::ParseError("x").IsParseError());
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

TEST(ResultTest, ValueAndStatusPropagation) {
  auto ok = Half(10);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 5);
  auto bad = Half(3);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

Result<int> Chain(int x) {
  SPARQLOG_ASSIGN_OR_RETURN(int half, Half(x));
  SPARQLOG_ASSIGN_OR_RETURN(int quarter, Half(half));
  return quarter;
}

TEST(ResultTest, AssignOrReturnMacro) {
  EXPECT_EQ(*Chain(20), 5);
  EXPECT_FALSE(Chain(10).ok());  // 5 is odd at the second step
}

TEST(StringUtilTest, Basics) {
  EXPECT_TRUE(StartsWith("http://x", "http"));
  EXPECT_FALSE(StartsWith("ftp", "ftpx"));
  EXPECT_TRUE(EndsWith("file.ttl", ".ttl"));
  EXPECT_EQ(StripAscii("  a b \n"), "a b");
  EXPECT_EQ(AsciiToUpper("AbC1"), "ABC1");
  EXPECT_EQ(AsciiToLower("AbC1"), "abc1");
  EXPECT_TRUE(AsciiEqualsIgnoreCase("SELECT", "select"));
  EXPECT_FALSE(AsciiEqualsIgnoreCase("SELECT", "selec"));
}

TEST(StringUtilTest, Parsing) {
  EXPECT_EQ(*ParseInt64("-42"), -42);
  EXPECT_FALSE(ParseInt64("12x").has_value());
  EXPECT_FALSE(ParseInt64("").has_value());
  EXPECT_DOUBLE_EQ(*ParseDouble("2.5e2"), 250.0);
  EXPECT_FALSE(ParseDouble("abc").has_value());
}

TEST(StringUtilTest, SplitAndJoin) {
  auto parts = SplitString("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(JoinStrings({"x", "y"}, "-"), "x-y");
}

TEST(StringUtilTest, EscapeStringLiteral) {
  EXPECT_EQ(EscapeStringLiteral("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
}

TEST(StringUtilTest, StringPrintf) {
  EXPECT_EQ(StringPrintf("%d-%s", 7, "x"), "7-x");
}

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.Uniform(10), 10u);
  EXPECT_EQ(rng.Uniform(0), 0u);
}

TEST(RngTest, SkewedFavorsSmallIndices) {
  Rng rng(3);
  size_t small = 0;
  for (int i = 0; i < 2000; ++i) {
    if (rng.Skewed(100) < 25) ++small;
  }
  // u^2 distribution: P(< 25) = 0.5.
  EXPECT_GT(small, 800u);
}

TEST(ExecContextTest, UnlimitedByDefault) {
  ExecContext ctx;
  ctx.AddTuples(1'000'000);
  EXPECT_TRUE(ctx.CheckBudget().ok());
}

TEST(ExecContextTest, TupleBudgetTriggersMemOut) {
  ExecContext ctx;
  ctx.set_tuple_budget(100);
  ctx.AddTuples(100);
  EXPECT_TRUE(ctx.CheckBudget().ok());  // at the limit is fine
  ctx.AddTuples(1);
  EXPECT_TRUE(ctx.CheckBudget().IsResourceExhausted());
}

TEST(ExecContextTest, DeadlineTriggersTimeout) {
  ExecContext ctx;
  ctx.set_deadline_after(std::chrono::milliseconds(1));
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_TRUE(ctx.PastDeadline());
  // CheckBudget consults the clock every kClockStride calls.
  Status last = Status::OK();
  for (int i = 0; i < 1000 && last.ok(); ++i) last = ctx.CheckBudget();
  EXPECT_TRUE(last.IsTimeout());
}

TEST(ExecContextTest, SharedBudgetCheckUsesCallerPhase) {
  ExecContext ctx;
  ctx.set_deadline_after(std::chrono::milliseconds(1));
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  // Two workers with independent phase counters each detect the timeout
  // within their own clock stride; the mem-out check is phase-free.
  for (int worker = 0; worker < 2; ++worker) {
    uint32_t phase = 0;
    Status last = Status::OK();
    for (int i = 0; i < 1000 && last.ok(); ++i) {
      last = ctx.CheckBudgetShared(&phase);
    }
    EXPECT_TRUE(last.IsTimeout());
  }
  ExecContext memout;
  memout.set_tuple_budget(10);
  memout.AddTuples(11);
  uint32_t phase = 0;
  EXPECT_TRUE(memout.CheckBudgetShared(&phase).IsResourceExhausted());
}

TEST(ExecContextTest, BatchAdvanceSamplesClockPerStrideOfWork) {
  ExecContext ctx;
  ctx.set_deadline_after(std::chrono::milliseconds(1));
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  // A batch that crosses a stride boundary samples the clock in ONE call
  // — this is the merge-worker recalibration: cadence follows work done
  // (tuples merged), not call count, so a wide merge fan-out still trips
  // an expired deadline within its round.
  uint32_t phase = 0;
  EXPECT_TRUE(
      ctx.CheckBudgetShared(&phase, ExecContext::kClockStride).IsTimeout());
  // A batch inside one stride window does not sample...
  uint32_t phase2 = 0;
  EXPECT_TRUE(ctx.CheckBudgetShared(&phase2, 10).ok());
  EXPECT_EQ(phase2, 10u);
  // ...but cumulative batches that cross the boundary do.
  Status last = Status::OK();
  int batches = 0;
  for (; batches < 100 && last.ok(); ++batches) {
    last = ctx.CheckBudgetShared(&phase2, 100);
  }
  EXPECT_TRUE(last.IsTimeout());
  // 10 + 100k crosses the 256 boundary at the 3rd batch.
  EXPECT_EQ(batches, 3);
}

TEST(ExecContextTest, BatchAdvanceMatchesUnitVariantSemantics) {
  // advance=1 is exactly the historical unit check: the clock is first
  // consulted on the kClockStride-th call.
  ExecContext ctx;
  ctx.set_deadline_after(std::chrono::milliseconds(1));
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  uint32_t phase = 0;
  for (uint32_t i = 0; i + 1 < ExecContext::kClockStride; ++i) {
    EXPECT_TRUE(ctx.CheckBudgetShared(&phase, 1).ok()) << i;
  }
  EXPECT_TRUE(ctx.CheckBudgetShared(&phase, 1).IsTimeout());
}

TEST(ThreadPoolTest, RunsEveryWorkerExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_workers(), 4u);
  std::vector<std::atomic<int>> hits(4);
  pool.RunOnWorkers([&](size_t w) { ++hits[w]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, RegionsReuseWorkersAndBarrier) {
  ThreadPool pool(3);
  std::atomic<int> sum{0};
  for (int region = 0; region < 50; ++region) {
    pool.RunOnWorkers([&](size_t w) {
      sum.fetch_add(static_cast<int>(w) + 1);
    });
    // RunOnWorkers is a full barrier: after it returns, all three
    // contributions of this region are visible.
    EXPECT_EQ(sum.load(), (region + 1) * 6);
  }
}

TEST(ThreadPoolTest, SingleWorkerRunsInline) {
  ThreadPool pool(1);
  std::thread::id caller = std::this_thread::get_id();
  std::thread::id seen;
  pool.RunOnWorkers([&](size_t w) {
    EXPECT_EQ(w, 0u);
    seen = std::this_thread::get_id();
  });
  EXPECT_EQ(seen, caller);
}

TEST(ThreadPoolTest, ZeroRequestClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_workers(), 1u);
  int runs = 0;
  pool.RunOnWorkers([&](size_t) { ++runs; });
  EXPECT_EQ(runs, 1);
}

TEST(RetryTest, BackoffDelayIsDeterministicCappedAndJittered) {
  util::BackoffPolicy policy;
  policy.initial_delay = std::chrono::milliseconds(100);
  policy.max_delay = std::chrono::milliseconds(400);
  policy.multiplier = 2.0;
  policy.jitter = 0.2;
  policy.seed = 7;

  // Same (seed, attempt) -> same delay, every time.
  EXPECT_EQ(util::BackoffDelay(policy, 0), util::BackoffDelay(policy, 0));
  // Each attempt's delay lands within the +/- jitter band of the
  // nominal exponential value, and the cap binds from attempt 2 on
  // (100 * 2^2 = 400 = max).
  for (uint32_t attempt = 0; attempt < 5; ++attempt) {
    double nominal = std::min(100.0 * std::pow(2.0, attempt), 400.0);
    auto d = util::BackoffDelay(policy, attempt);
    EXPECT_GE(d.count(), static_cast<int64_t>(nominal * 0.8) - 1) << attempt;
    EXPECT_LE(d.count(), static_cast<int64_t>(nominal * 1.2) + 1) << attempt;
  }
  // Different seeds decorrelate the schedule.
  util::BackoffPolicy other = policy;
  other.seed = 8;
  EXPECT_NE(util::BackoffDelay(policy, 0), util::BackoffDelay(other, 0));
  // A server Retry-After hint is a lower bound.
  EXPECT_GE(util::BackoffDelay(policy, 0, /*retry_after_seconds=*/1).count(),
            1000);
}

TEST(RetryTest, RetriesOnlyUnavailableAndStopsAtMaxAttempts) {
  util::BackoffPolicy policy;
  policy.max_attempts = 3;
  policy.initial_delay = std::chrono::milliseconds(1);
  policy.max_delay = std::chrono::milliseconds(1);

  // Transient unavailability: fails twice, succeeds on the third try.
  int calls = 0;
  Status st = util::RetryWithBackoff(policy, [&] {
    ++calls;
    return calls < 3 ? Status::Unavailable("shed") : Status::OK();
  });
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(calls, 3);

  // Permanent unavailability: gives up after max_attempts.
  calls = 0;
  st = util::RetryWithBackoff(policy, [&] {
    ++calls;
    return Status::Unavailable("shed");
  });
  EXPECT_TRUE(st.IsUnavailable());
  EXPECT_EQ(calls, 3);

  // Non-transient failures are never retried: a parse error will not
  // fix itself, and retrying it would just add load.
  calls = 0;
  st = util::RetryWithBackoff(policy, [&] {
    ++calls;
    return Status::ParseError("bad query");
  });
  EXPECT_TRUE(st.IsParseError());
  EXPECT_EQ(calls, 1);
}

TEST(HashTest, HashRangeDiffersOnContent) {
  std::vector<uint64_t> a{1, 2, 3}, b{1, 2, 4}, c{1, 2, 3};
  EXPECT_EQ(HashRange(a.begin(), a.end()), HashRange(c.begin(), c.end()));
  EXPECT_NE(HashRange(a.begin(), a.end()), HashRange(b.begin(), b.end()));
}

}  // namespace
}  // namespace sparqlog
