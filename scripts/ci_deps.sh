#!/usr/bin/env bash
# Builds the pinned test/bench dependencies (googletest + google-benchmark)
# into a prefix that CI caches between runs, keyed on the pinned versions
# and the sanitizer flavor (sanitized jobs need sanitized deps so gtest
# internals don't show up as false positives).
#
# Usage: scripts/ci_deps.sh <install-prefix> [extra-cxx-flags...]
set -euo pipefail

PREFIX="$1"
shift
EXTRA_FLAGS="${*:-}"

GTEST_TAG="v1.14.0"
BENCHMARK_TAG="v1.8.3"
STAMP="$PREFIX/.stamp-$GTEST_TAG-$BENCHMARK_TAG"

if [[ -f "$STAMP" ]]; then
  echo "ci_deps: $PREFIX is up to date (cache hit)"
  exit 0
fi

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

git clone --depth 1 --branch "$GTEST_TAG" \
  https://github.com/google/googletest "$WORK/googletest"
cmake -B "$WORK/gtest-build" -S "$WORK/googletest" \
  -DCMAKE_BUILD_TYPE=Release \
  -DCMAKE_CXX_FLAGS="$EXTRA_FLAGS" \
  -DCMAKE_INSTALL_PREFIX="$PREFIX"
cmake --build "$WORK/gtest-build" -j "$(nproc)"
cmake --install "$WORK/gtest-build"

git clone --depth 1 --branch "$BENCHMARK_TAG" \
  https://github.com/google/benchmark "$WORK/benchmark"
cmake -B "$WORK/benchmark-build" -S "$WORK/benchmark" \
  -DCMAKE_BUILD_TYPE=Release \
  -DCMAKE_CXX_FLAGS="$EXTRA_FLAGS" \
  -DBENCHMARK_ENABLE_TESTING=OFF \
  -DBENCHMARK_ENABLE_GTEST_TESTS=OFF \
  -DCMAKE_INSTALL_PREFIX="$PREFIX"
cmake --build "$WORK/benchmark-build" -j "$(nproc)"
cmake --install "$WORK/benchmark-build"

touch "$STAMP"
echo "ci_deps: installed googletest $GTEST_TAG + benchmark $BENCHMARK_TAG"
