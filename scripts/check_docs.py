#!/usr/bin/env python3
"""Docs link check: every relative markdown link and every repo-path
reference in README.md and docs/*.md must resolve to a real file.

Checked:
  - markdown links [text](target): http(s) and pure-fragment targets are
    skipped; everything else resolves relative to the containing file
    (fragments are stripped first).
  - inline-code repo paths like `src/datalog/relation.h`, `scripts/foo.sh`
    or `docs/ARCHITECTURE.md:42`: recognized by a known top-level prefix,
    resolved from the repo root. `:line` suffixes are stripped and
    `{a,b}` alternation is expanded; references containing placeholders
    (<...>, *, $) are ignored.

Exit status: 0 = all references resolve, 1 = at least one is broken.
"""

import itertools
import pathlib
import re
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent

DOC_FILES = sorted(
    [REPO / "README.md", *(REPO / "docs").glob("*.md")]
)

MD_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
CODE_SPAN = re.compile(r"`([^`\n]+)`")
# A code span is treated as a repo path when it starts with one of these.
PATH_PREFIXES = (
    "src/", "docs/", "scripts/", "bench/", "tests/", "examples/",
    ".github/", ".claude/",
)


def expand_braces(ref):
    """`a.{h,cpp}` -> [`a.h`, `a.cpp`] (single level is all docs use)."""
    m = re.search(r"\{([^}]+)\}", ref)
    if not m:
        return [ref]
    alts = m.group(1).split(",")
    return list(
        itertools.chain.from_iterable(
            expand_braces(ref[: m.start()] + alt + ref[m.end():])
            for alt in alts
        )
    )


def check_file(doc):
    broken = []
    text = doc.read_text(encoding="utf-8")
    for target in MD_LINK.findall(text):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        path = target.split("#", 1)[0]
        if not path:
            continue
        resolved = (doc.parent / path).resolve()
        if not resolved.is_relative_to(REPO):
            continue  # GitHub web path (e.g. the ../../actions CI badge)
        if not resolved.exists():
            broken.append(f"{doc.relative_to(REPO)}: link target `{target}`")
    for span in CODE_SPAN.findall(text):
        if not span.startswith(PATH_PREFIXES):
            continue
        if any(c in span for c in "<>*$ ()|"):
            continue  # placeholder / glob / prose, not a concrete path
        ref = re.sub(r":\d+(-\d+)?$", "", span)  # strip `:line` pointers
        for candidate in expand_braces(ref):
            if not (REPO / candidate).exists():
                broken.append(
                    f"{doc.relative_to(REPO)}: path reference `{span}`"
                )
                break
    return broken


def main():
    missing_docs = [d for d in DOC_FILES if not d.exists()]
    if missing_docs or not DOC_FILES:
        print(f"check_docs: doc set incomplete: {missing_docs}")
        return 1
    broken = []
    for doc in DOC_FILES:
        broken.extend(check_file(doc))
    if broken:
        print(f"check_docs: FAIL — {len(broken)} broken reference(s):")
        for b in broken:
            print(f"  {b}")
        return 1
    print(f"check_docs: OK ({len(DOC_FILES)} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
