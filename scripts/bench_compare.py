#!/usr/bin/env python3
"""Perf-trajectory gate: diff a fresh BENCH_micro_datalog.json against the
committed bench/baseline.json and fail CI on wall-time regressions in the
gated benchmark families (BM_TupleStore*, BM_TransitiveClosure*,
BM_RepeatedQuery*, BM_BulkLoad*, BM_BarrierMerge*, BM_Sp2b_Parallel,
BM_JoinPlanner*, BM_Serving*, BM_PathKernel*).
Both sides are reduced to the per-benchmark median of their recorded
repetitions before comparing.

Hosted runners are not the machine the baseline was recorded on, so the
default comparison is *calibrated*: every gated benchmark's fresh/baseline
ratio is divided by the median ratio across all gated benchmarks, which
cancels uniform machine-speed differences and trips only when one
benchmark regresses relative to the rest of the suite. Use --absolute for
same-machine comparisons (e.g. a local before/after run).

Usage:
  bench_compare.py fresh.json [baseline.json]   # gate (default CI mode)
  bench_compare.py --summarize fresh.json       # print table, no gate
  bench_compare.py --update fresh.json          # rewrite the baseline

Exit status: 0 = no regression, 1 = regression or missing coverage,
2 = usage/parse error.
"""

import argparse
import json
import re
import shutil
import statistics
import sys

DEFAULT_BASELINE = "bench/baseline.json"
# The gate now includes the parallel rows (BM_TransitiveClosure_Parallel,
# BM_BarrierMerge, BM_Sp2b_Parallel) and the PR 7 serving rows
# (BM_Serving_* at 1/2/8 client threads over one shared engine). The
# committed baseline's
# multi-thread rows were captured on a 1-CPU host, so on a multi-core
# runner those rows come out *faster* relative to the rest of the suite —
# a low-side calibration outlier, which can never trip the high-side
# threshold; the median across ~30 gated rows absorbs it. What the gate
# buys today is (a) coverage loss detection (a parallel row vanishing
# from the bench binary fails CI) and (b) regression detection for the
# serial-comparable rows. Re-capturing the baseline on the multi-core CI
# runner tightens (b) for the multi-thread rows too.
GATE_PATTERN = (
    r"^(BM_TupleStore|BM_TransitiveClosure|BM_RepeatedQuery"
    r"|BM_BulkLoad|BM_BarrierMerge|BM_Sp2b_Parallel|BM_JoinPlanner"
    r"|BM_Serving|BM_PathKernel|BM_Update)"
)


def load_benchmarks(path):
    """Returns {name: real_time_ns} for per-iteration benchmark entries.

    With --benchmark_repetitions=N (see scripts/check.sh) each benchmark
    contributes N iteration rows under the same name; the *median* of the
    repetitions is used on both sides of the gate, which cuts the
    run-to-run noise of hosted CI runners.
    """
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"bench_compare: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    samples = {}
    for b in doc.get("benchmarks", []):
        if b.get("run_type", "iteration") != "iteration":
            continue  # skip aggregate rows (mean/median/stddev)
        samples.setdefault(b["name"], []).append(float(b["real_time"]))
    return {name: statistics.median(times) for name, times in samples.items()}


def fmt_ns(ns):
    if ns >= 1e6:
        return f"{ns / 1e6:10.3f} ms"
    if ns >= 1e3:
        return f"{ns / 1e3:10.3f} us"
    return f"{ns:10.1f} ns"


def summarize(fresh):
    width = max((len(n) for n in fresh), default=0)
    for name in sorted(fresh):
        print(f"  {name:<{width}}  {fmt_ns(fresh[name])}")


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("fresh", help="fresh BENCH_micro_datalog.json")
    ap.add_argument("baseline", nargs="?", default=DEFAULT_BASELINE)
    ap.add_argument("--threshold", type=float, default=0.15,
                    help="max tolerated relative slowdown (default 0.15)")
    ap.add_argument("--gate", default=GATE_PATTERN,
                    help="regex of benchmark names the gate applies to")
    ap.add_argument("--absolute", action="store_true",
                    help="skip machine-speed calibration (same-host runs)")
    ap.add_argument("--summarize", action="store_true",
                    help="print the fresh results and exit (no gate)")
    ap.add_argument("--update", action="store_true",
                    help="copy the fresh JSON over the baseline and exit")
    args = ap.parse_args()

    fresh = load_benchmarks(args.fresh)
    if args.summarize:
        summarize(fresh)
        return 0
    if args.update:
        shutil.copyfile(args.fresh, args.baseline)
        print(f"bench_compare: baseline updated from {args.fresh}")
        return 0

    baseline = load_benchmarks(args.baseline)
    gate = re.compile(args.gate)
    gated = sorted(n for n in baseline if gate.search(n))
    if not gated:
        print("bench_compare: baseline has no gated benchmarks",
              file=sys.stderr)
        return 1

    missing = [n for n in gated if n not in fresh]
    if missing:
        print("bench_compare: FAIL — gated benchmarks missing from fresh "
              f"run (coverage loss): {', '.join(missing)}")
        return 1

    ratios = {n: fresh[n] / baseline[n] for n in gated}
    scale = 1.0 if args.absolute else statistics.median(ratios.values())
    mode = "absolute" if args.absolute else f"calibrated (median ratio {scale:.3f})"
    print(f"bench_compare: {mode}, threshold +{args.threshold:.0%}")

    width = max(len(n) for n in gated)
    failures = []
    for name in gated:
        delta = ratios[name] / scale - 1.0
        verdict = "ok"
        if delta > args.threshold:
            verdict = "REGRESSION"
            failures.append(name)
        print(f"  {name:<{width}}  base {fmt_ns(baseline[name])}  "
              f"fresh {fmt_ns(fresh[name])}  {delta:+7.1%}  {verdict}")
    new = sorted(n for n in fresh if gate.search(n) and n not in baseline)
    for name in new:
        print(f"  {name:<{width}}  (new)            "
              f"fresh {fmt_ns(fresh[name])}")

    if failures:
        print(f"bench_compare: FAIL — {len(failures)} regression(s) "
              f"beyond +{args.threshold:.0%}: {', '.join(failures)}")
        return 1
    print("bench_compare: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
