#!/usr/bin/env bash
# CI entry point: configure + build with -Werror, run the full test suite.
#
# Usage: scripts/check.sh [build-dir]
#
# Environment:
#   BENCH_JSON=1        also run the datalog microbenchmarks and write
#                       <build-dir>/BENCH_micro_datalog.json (the
#                       perf-trajectory artifact; CI uploads it and gates
#                       it with scripts/bench_compare.py). Propagated
#                       as-is from the CI workflow env.
#   TEST_TIMEOUT=<sec>  per-test ctest timeout (default 300) so a
#                       livelocked parallel fixpoint fails fast instead
#                       of hanging the runner.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-check}"
TEST_TIMEOUT="${TEST_TIMEOUT:-300}"

# Docs stay honest: relative links and repo-path references in README.md
# and docs/*.md must resolve. Runs first — it is the cheapest gate.
python3 scripts/check_docs.py

cmake -B "$BUILD_DIR" -S . -DSPARQLOG_WERROR=ON \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DSPARQLOG_TEST_TIMEOUT="$TEST_TIMEOUT"
cmake --build "$BUILD_DIR" -j "$(nproc)"
# --timeout is a belt-and-braces cap on top of the per-test TIMEOUT
# property CMake registers from SPARQLOG_TEST_TIMEOUT.
ctest --test-dir "$BUILD_DIR" --output-on-failure --no-tests=error \
  -j "$(nproc)" --timeout "$TEST_TIMEOUT"

# Second pass with asserts enabled (RelWithDebInfo defines NDEBUG): the
# invariant checks in the Datalog core — e.g. round monotonicity in
# Relation::Insert — must actually run in CI.
DEBUG_DIR="$BUILD_DIR-debug"
cmake -B "$DEBUG_DIR" -S . -DSPARQLOG_WERROR=ON -DCMAKE_BUILD_TYPE=Debug \
  -DSPARQLOG_TEST_TIMEOUT="$TEST_TIMEOUT"
cmake --build "$DEBUG_DIR" -j "$(nproc)"
ctest --test-dir "$DEBUG_DIR" --output-on-failure --no-tests=error \
  -j "$(nproc)" --timeout "$TEST_TIMEOUT"

if [[ "${BENCH_JSON:-0}" == "1" ]]; then
  if [[ ! -x "$BUILD_DIR/micro_datalog" ]]; then
    echo "BENCH_JSON=1 but $BUILD_DIR/micro_datalog was not built" \
         "(google-benchmark missing?)" >&2
    exit 1
  fi
  # The console table doubles as the job-log benchmark summary; the JSON
  # is the machine-readable trajectory artifact. 3 repetitions per
  # benchmark: bench_compare.py gates on the median, which cuts
  # hosted-runner noise.
  "$BUILD_DIR/micro_datalog" \
    --benchmark_filter='BM_TupleStore|BM_TransitiveClosure|BM_RepeatedQuery|BM_BulkLoad|BM_BarrierMerge|BM_Sp2b_Parallel|BM_JoinPlanner|BM_Serving|BM_PathKernel|BM_Update' \
    --benchmark_repetitions=3 \
    --benchmark_out="$BUILD_DIR/BENCH_micro_datalog.json" \
    --benchmark_out_format=json \
    --benchmark_counters_tabular=true
  echo "wrote $BUILD_DIR/BENCH_micro_datalog.json"
  echo "--- benchmark summary ---"
  python3 scripts/bench_compare.py --summarize \
    "$BUILD_DIR/BENCH_micro_datalog.json" || true
fi

echo "check.sh: all green"
