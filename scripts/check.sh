#!/usr/bin/env bash
# CI entry point: configure + build with -Werror, run the full test suite.
#
# Usage: scripts/check.sh [build-dir]
# Optionally set BENCH_JSON=1 to also run the datalog microbenchmarks and
# write build/BENCH_micro_datalog.json (the perf-trajectory artifact).
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-check}"

cmake -B "$BUILD_DIR" -S . -DSPARQLOG_WERROR=ON \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" -j "$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure --no-tests=error -j "$(nproc)"

# Second pass with asserts enabled (RelWithDebInfo defines NDEBUG): the
# invariant checks in the Datalog core — e.g. round monotonicity in
# Relation::Insert — must actually run in CI.
DEBUG_DIR="$BUILD_DIR-debug"
cmake -B "$DEBUG_DIR" -S . -DSPARQLOG_WERROR=ON -DCMAKE_BUILD_TYPE=Debug
cmake --build "$DEBUG_DIR" -j "$(nproc)"
ctest --test-dir "$DEBUG_DIR" --output-on-failure --no-tests=error -j "$(nproc)"

if [[ "${BENCH_JSON:-0}" == "1" ]]; then
  if [[ ! -x "$BUILD_DIR/micro_datalog" ]]; then
    echo "BENCH_JSON=1 but $BUILD_DIR/micro_datalog was not built" \
         "(google-benchmark missing?)" >&2
    exit 1
  fi
  "$BUILD_DIR/micro_datalog" \
    --benchmark_filter='BM_TupleStore|BM_TransitiveClosure' \
    --benchmark_out="$BUILD_DIR/BENCH_micro_datalog.json" \
    --benchmark_out_format=json
  echo "wrote $BUILD_DIR/BENCH_micro_datalog.json"
fi

echo "check.sh: all green"
