// Ontological reasoning: SparqLog as a uniform querying-plus-reasoning
// system (§1, RQ3). The ontology (subClassOf / subPropertyOf / domain /
// range statements) lives in the data; enabling the engine's ontology
// mode adds the RDFS-subset inference rules to every translated program,
// so queries see the entailed graph — including *inside* recursive
// property paths, the combination §6.3 benchmarks against Stardog.
//
// Build & run:  ./build/examples/ontology_reasoning

#include <cstdio>

#include "core/engine.h"
#include "rdf/turtle_parser.h"

namespace {

void Run(sparqlog::core::Engine& engine,
         const sparqlog::rdf::TermDictionary& dict, const char* label,
         const std::string& query) {
  std::printf("== %s ==\n", label);
  auto result = engine.ExecuteText(query);
  if (!result.ok()) {
    std::printf("error: %s\n\n", result.status().ToString().c_str());
    return;
  }
  std::printf("%s\n", result->result.ToString(dict).c_str());
}

}  // namespace

int main() {
  using namespace sparqlog;

  const char* turtle = R"(
    @prefix ex: <http://uni.org/> .
    @prefix rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#> .
    @prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .

    # Ontology.
    ex:Professor rdfs:subClassOf ex:Faculty .
    ex:Lecturer rdfs:subClassOf ex:Faculty .
    ex:Faculty rdfs:subClassOf ex:Person .
    ex:teaches rdfs:subPropertyOf ex:involvedIn .
    ex:attends rdfs:subPropertyOf ex:involvedIn .
    ex:teaches rdfs:domain ex:Faculty .
    ex:mentors rdfs:range ex:Person .

    # Data.
    ex:ada rdf:type ex:Professor .
    ex:bob rdf:type ex:Lecturer .
    ex:ada ex:teaches ex:logic .
    ex:bob ex:teaches ex:databases .
    ex:carl ex:attends ex:logic .
    ex:carl ex:attends ex:databases .
    ex:dina ex:teaches ex:graphs .
    ex:ada ex:mentors ex:dina .
    ex:dina ex:mentors ex:carl .
  )";

  rdf::TermDictionary dict;
  rdf::Dataset dataset(&dict);
  if (auto st = rdf::ParseTurtle(turtle, &dataset); !st.ok()) {
    std::printf("load error: %s\n", st.ToString().c_str());
    return 1;
  }

  const std::string prefix =
      "PREFIX ex: <http://uni.org/>\n"
      "PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>\n";

  core::Engine plain(&dataset, &dict);
  core::Engine::Options options;
  options.ontology = true;
  core::Engine reasoning(&dataset, &dict, options);
  if (auto st = plain.Load(); !st.ok()) {
    std::printf("load error: %s\n", st.ToString().c_str());
    return 1;
  }
  if (auto st = reasoning.Load(); !st.ok()) {
    std::printf("load error: %s\n", st.ToString().c_str());
    return 1;
  }

  const std::string persons =
      prefix + "SELECT DISTINCT ?p WHERE { ?p rdf:type ex:Person }";
  Run(plain, dict, "Persons WITHOUT reasoning (asserted types only)",
      persons);
  Run(reasoning, dict,
      "Persons WITH reasoning (subclass + domain inference: ada, bob, dina "
      "via teaches-domain, carl via mentors-range)",
      persons);

  Run(reasoning, dict,
      "Super-property query: who is involved in which course",
      prefix + "SELECT ?p ?c WHERE { ?p ex:involvedIn ?c } ORDER BY ?p");

  Run(reasoning, dict,
      "Reasoning inside a recursive property path: mentorship closure",
      prefix + "SELECT ?a ?b WHERE { ?a ex:mentors+ ?b } ORDER BY ?a ?b");

  Run(reasoning, dict,
      "Aggregation over the entailed graph: involvements per person",
      prefix +
          "SELECT ?p (COUNT(?c) AS ?n) WHERE { ?p ex:involvedIn ?c } "
          "GROUP BY ?p ORDER BY ?p");
  return 0;
}
