// Quickstart: the paper's running example (§3.1/§4.1). Loads the film
// directors graph, translates the OPTIONAL query of Figure 1 to Datalog±
// (printing the program, cf. Figure 2), evaluates it through the full
// SparqLog pipeline and prints the solutions.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "core/engine.h"
#include "rdf/turtle_parser.h"

int main() {
  using namespace sparqlog;

  const char* turtle = R"(
    @prefix ex: <http://ex.org/> .
    ex:glucas ex:name "George" .
    ex:glucas ex:lastname "Lucas" .
    _:b1 ex:name "Steven" .
  )";

  const char* query = R"(
    PREFIX ex: <http://ex.org/>
    SELECT ?N ?L
    WHERE { ?X ex:name ?N . OPTIONAL { ?X ex:lastname ?L } }
    ORDER BY ?N
  )";

  rdf::TermDictionary dict;
  rdf::Dataset dataset(&dict);
  Status st = rdf::ParseTurtle(turtle, &dataset);
  if (!st.ok()) {
    std::printf("load error: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("Loaded %zu triples.\n\n", dataset.default_graph().size());

  core::Engine engine(&dataset, &dict);
  // Loading is an explicit phase: Execute fails until Load() completes.
  st = engine.Load();
  if (!st.ok()) {
    std::printf("load error: %s\n", st.ToString().c_str());
    return 1;
  }

  std::printf("== SPARQL query ==\n%s\n", query);
  auto program_text = engine.TranslateToText(query);
  if (!program_text.ok()) {
    std::printf("translation error: %s\n",
                program_text.status().ToString().c_str());
    return 1;
  }
  std::printf("== Translated Datalog± program (cf. Figure 2) ==\n%s\n",
              program_text->c_str());

  auto result = engine.ExecuteText(query);
  if (!result.ok()) {
    std::printf("execution error: %s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("== Solutions ==\n%s", result->result.ToString(dict).c_str());

  // Run the same query again: the engine recognizes the shape, reuses the
  // cached Datalog± program and replays the memoized stratum results.
  auto warm = engine.ExecuteText(query);
  if (!warm.ok()) {
    std::printf("warm execution error: %s\n",
                warm.status().ToString().c_str());
    return 1;
  }
  auto stats = engine.stats();
  std::printf(
      "\n== Engine stats after a repeated query ==\n"
      "program cache: %llu hits, %llu rebinds, %llu misses\n"
      "stratum memo:  %llu hits, %llu misses, %llu tuples restored\n"
      "warm result identical: %s\n",
      static_cast<unsigned long long>(stats.program_hits),
      static_cast<unsigned long long>(stats.program_rebinds),
      static_cast<unsigned long long>(stats.program_misses),
      static_cast<unsigned long long>(stats.stratum_hits),
      static_cast<unsigned long long>(stats.stratum_misses),
      static_cast<unsigned long long>(stats.tuples_restored),
      warm->result.rows == result->result.rows ? "yes" : "NO");
  return 0;
}
