// Property paths: the countries example of §4.2 (Figures 3/4). Shows the
// recursive translation of `ex:borders+` (transitive closure in Datalog),
// the zero-length semantics of `*` and `?` including constant endpoints
// that do not occur in the graph, and negated property sets.
//
// Build & run:  ./build/examples/property_paths

#include <cstdio>

#include "core/engine.h"
#include "rdf/turtle_parser.h"

namespace {

void Run(sparqlog::core::Engine& engine, const sparqlog::rdf::TermDictionary& dict,
         const char* label, const std::string& query) {
  std::printf("== %s ==\n%s\n", label, query.c_str());
  auto result = engine.ExecuteText(query);
  if (!result.ok()) {
    std::printf("error: %s\n\n", result.status().ToString().c_str());
    return;
  }
  std::printf("%s\n", result->result.ToString(dict).c_str());
}

}  // namespace

int main() {
  using namespace sparqlog;

  const char* turtle = R"(
    @prefix ex: <http://ex.org/> .
    ex:spain ex:borders ex:france .
    ex:france ex:borders ex:belgium .
    ex:france ex:borders ex:germany .
    ex:belgium ex:borders ex:germany .
    ex:germany ex:borders ex:austria .
    ex:france ex:capital ex:paris .
  )";

  rdf::TermDictionary dict;
  rdf::Dataset dataset(&dict);
  if (auto st = rdf::ParseTurtle(turtle, &dataset); !st.ok()) {
    std::printf("load error: %s\n", st.ToString().c_str());
    return 1;
  }
  core::Engine engine(&dataset, &dict);
  if (auto st = engine.Load(); !st.ok()) {
    std::printf("load error: %s\n", st.ToString().c_str());
    return 1;
  }

  const std::string prefix = "PREFIX ex: <http://ex.org/>\n";

  // Figure 3: countries reachable from Spain.
  Run(engine, dict, "Figure 3: one-or-more (reachability from Spain)",
      prefix +
          "SELECT ?B WHERE { ?A ex:borders+ ?B . FILTER (?A = ex:spain) }");

  // The translated program for the path query (cf. Figure 4).
  auto text = engine.TranslateToText(
      prefix + "SELECT ?B WHERE { ex:spain ex:borders+ ?B }");
  if (text.ok()) {
    std::printf("== Translated program for ex:borders+ (cf. Figure 4) ==\n%s\n",
                text->c_str());
  }

  Run(engine, dict, "Zero-or-more keeps zero-length paths",
      prefix + "SELECT ?B WHERE { ex:spain ex:borders* ?B }");

  // The §5.2 corner case: a constant endpoint that does not occur in the
  // graph still yields the zero-length path.
  Run(engine, dict, "Zero-length path for a constant not in the graph",
      prefix + "SELECT ?B WHERE { ex:portugal ex:borders? ?B }");

  Run(engine, dict, "Inverse + sequence: neighbours of Germany's neighbours",
      prefix + "SELECT DISTINCT ?X WHERE { ex:germany ^ex:borders/ex:borders "
               "?X }");

  Run(engine, dict, "Negated property set",
      prefix + "SELECT ?A ?B WHERE { ?A !ex:borders ?B }");

  Run(engine, dict, "Counted path (gMark extension): exactly two hops",
      prefix + "SELECT ?B WHERE { ex:spain ex:borders{2} ?B }");
  return 0;
}
