// SPARQL endpoint: serves a Turtle/TriG document over HTTP through the
// shared concurrent Engine. Demonstrates the serving lifecycle — build,
// Load() once, Start() the server, answer queries from many clients off
// one immutable engine.
//
// Usage:
//   sparql_server                     # built-in demo data on port 8080
//   sparql_server data.ttl 8080
//
// Then:
//   curl 'http://127.0.0.1:8080/sparql?query=SELECT%20*%20WHERE%20{?s%20?p%20?o}'
//   curl -X POST --data-binary 'SELECT * WHERE { ?s ?p ?o }' (to /sparql)
//   curl -X POST 'http://127.0.0.1:8080/update?op=insert'
//     --data-binary '<http://ex.org/a> <http://ex.org/borders> <http://ex.org/b> .'
//   curl http://127.0.0.1:8080/stats
//   curl http://127.0.0.1:8080/healthz

#include <csignal>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "core/engine.h"
#include "rdf/turtle_parser.h"
#include "server/http_server.h"
#include "util/retry.h"

namespace {

constexpr char kDemoData[] = R"(
@prefix ex: <http://ex.org/> .
ex:spain ex:borders ex:france .
ex:france ex:borders ex:belgium .
ex:france ex:borders ex:germany .
ex:belgium ex:borders ex:germany .
ex:germany ex:borders ex:austria .
)";

volatile std::sig_atomic_t g_stop = 0;
void OnSignal(int) { g_stop = 1; }

}  // namespace

int main(int argc, char** argv) {
  using namespace sparqlog;

  std::string data = kDemoData;
  uint16_t port = 8080;
  if (argc >= 2) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::printf("cannot read data file %s\n", argv[1]);
      return 1;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    data = ss.str();
  }
  if (argc >= 3) port = static_cast<uint16_t>(std::atoi(argv[2]));

  rdf::TermDictionary dict;
  rdf::Dataset dataset(&dict);
  if (auto st = rdf::ParseTurtle(data, &dataset); !st.ok()) {
    std::printf("data error: %s\n", st.ToString().c_str());
    return 1;
  }

  core::Engine::Options options;
  options.serving.max_in_flight = 64;
  // Overload posture: queue briefly instead of failing fast, shed with
  // 503 + Retry-After past the deadline, and let the sliding-window
  // degrade controller shed caches / tighten admission under sustained
  // pressure (it recovers on its own when load drops).
  options.serving.queue_limit = 128;
  options.serving.queue_timeout = std::chrono::milliseconds(100);
  options.degrade.enabled = true;
  core::Engine engine(&dataset, &dict, options);
  if (auto st = engine.Load(); !st.ok()) {
    std::printf("load error: %s\n", st.ToString().c_str());
    return 1;
  }
  core::Engine::StorageStats storage = engine.edb_storage();
  std::printf("loaded %llu tuples (%.1f MiB)\n",
              static_cast<unsigned long long>(storage.tuples),
              static_cast<double>(storage.bytes) / (1 << 20));

  server::HttpServerOptions sopts;
  sopts.port = port;
  sopts.num_workers = 8;
  server::HttpServer server(&engine, &dict, sopts);
  if (auto st = server.Start(); !st.ok()) {
    std::printf("server error: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("serving SPARQL on http://127.0.0.1:%u/sparql "
              "(/update, /stats, /healthz; Ctrl-C to stop)\n",
              server.port());

  // Self-probe through the client-side retry helper: if the endpoint is
  // momentarily shedding (503/kUnavailable) the probe backs off with
  // jitter instead of hammering it — the pattern real clients should
  // copy.
  util::BackoffPolicy probe_policy;
  probe_policy.max_attempts = 5;
  probe_policy.seed = 42;
  auto probe = util::RetryWithBackoff(probe_policy, [&] {
    return engine.ExecuteText("SELECT * WHERE { ?s ?p ?o } LIMIT 1").status();
  });
  std::printf("self-probe: %s\n",
              probe.ok() ? "ok" : probe.ToString().c_str());

  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);
  while (!g_stop) {
    timespec ts{0, 200 * 1000 * 1000};
    nanosleep(&ts, nullptr);
  }
  std::printf("\nstopping...\n");
  server.Stop();
  core::Engine::EngineStats stats = engine.stats();
  std::printf("served %llu queries (%llu failed, %llu rejected)\n",
              static_cast<unsigned long long>(stats.queries),
              static_cast<unsigned long long>(stats.failures),
              static_cast<unsigned long long>(stats.rejected));
  return 0;
}
