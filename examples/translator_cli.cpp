// Stand-alone translator CLI: the paper's first usage mode (§7) — SparqLog
// as a SPARQL-to-Warded-Datalog± translation engine. Reads a Turtle/TriG
// document and a SPARQL query (from files or built-in demo data), prints
// the generated Datalog± program, the wardedness report, and (optionally)
// the evaluated solutions.
//
// Usage:
//   translator_cli                         # built-in demo
//   translator_cli data.ttl query.rq       # translate + evaluate
//   translator_cli data.ttl query.rq --translate-only

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "core/engine.h"
#include "datalog/printer.h"
#include "datalog/warded.h"
#include "rdf/turtle_parser.h"
#include "sparql/parser.h"

namespace {

std::string ReadFile(const std::string& path, bool* ok) {
  std::ifstream in(path);
  if (!in) {
    *ok = false;
    return "";
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  *ok = true;
  return ss.str();
}

constexpr char kDemoData[] = R"(
@prefix ex: <http://ex.org/> .
ex:spain ex:borders ex:france .
ex:france ex:borders ex:germany .
ex:germany ex:borders ex:austria .
)";

constexpr char kDemoQuery[] = R"(
PREFIX ex: <http://ex.org/>
SELECT ?B WHERE { ex:spain ex:borders+ ?B }
)";

}  // namespace

int main(int argc, char** argv) {
  using namespace sparqlog;

  std::string data = kDemoData, query = kDemoQuery;
  bool translate_only = false;
  if (argc >= 3) {
    bool ok = true;
    data = ReadFile(argv[1], &ok);
    if (!ok) {
      std::printf("cannot read data file %s\n", argv[1]);
      return 1;
    }
    query = ReadFile(argv[2], &ok);
    if (!ok) {
      std::printf("cannot read query file %s\n", argv[2]);
      return 1;
    }
  }
  for (int i = 3; i < argc; ++i) {
    if (std::string(argv[i]) == "--translate-only") translate_only = true;
  }

  rdf::TermDictionary dict;
  rdf::Dataset dataset(&dict);
  if (auto st = rdf::ParseTurtle(data, &dataset); !st.ok()) {
    std::printf("data error: %s\n", st.ToString().c_str());
    return 1;
  }

  auto parsed = sparql::ParseQuery(query, &dict);
  if (!parsed.ok()) {
    std::printf("query error: %s\n", parsed.status().ToString().c_str());
    return 1;
  }

  core::Engine engine(&dataset, &dict);
  auto program = engine.Translate(*parsed);
  if (!program.ok()) {
    std::printf("translation error: %s\n",
                program.status().ToString().c_str());
    return 1;
  }

  std::printf("== Datalog± program (%zu rules) ==\n%s\n",
              program->rules.size(),
              datalog::ToString(*program, dict, *engine.skolems()).c_str());

  // Wardedness check: the paper claims every translated program is warded.
  datalog::WardedReport report = datalog::AnalyzeWarded(*program);
  std::printf("== Warded analysis ==\nwarded: %s, affected positions: %zu\n",
              report.warded ? "yes" : "NO", report.affected_positions.size());
  for (const auto& v : report.violations) {
    std::printf("violation: %s\n", v.c_str());
  }

  if (!translate_only) {
    if (auto st = engine.Load(); !st.ok()) {
      std::printf("load error: %s\n", st.ToString().c_str());
      return 1;
    }
    auto result = engine.Execute(*parsed);
    if (!result.ok()) {
      std::printf("execution error: %s\n",
                  result.status().ToString().c_str());
      return 1;
    }
    std::printf("\n== Solutions ==\n%s",
                result->result.ToString(dict).c_str());
  }
  return 0;
}
