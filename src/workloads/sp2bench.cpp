#include "workloads/sp2bench.h"

#include "util/hash.h"
#include "util/string_util.h"

namespace sparqlog::workloads {

namespace {

constexpr char kBench[] = "http://localhost/vocabulary/bench/";
constexpr char kDc[] = "http://purl.org/dc/elements/1.1/";
constexpr char kDcterms[] = "http://purl.org/dc/terms/";
constexpr char kSwrc[] = "http://swrc.ontoware.org/ontology#";
constexpr char kFoaf[] = "http://xmlns.com/foaf/0.1/";
constexpr char kRdf[] = "http://www.w3.org/1999/02/22-rdf-syntax-ns#";
constexpr char kRdfs[] = "http://www.w3.org/2000/01/rdf-schema#";
constexpr char kXsd[] = "http://www.w3.org/2001/XMLSchema#";

const char* kFirstNames[] = {"Adam",  "Bella", "Carl",  "Dana", "Emil",
                             "Fiona", "Gregor", "Hanna", "Ivan", "Julia",
                             "Karl",  "Lena",  "Milan", "Nora", "Oskar",
                             "Paula", "Quentin", "Rosa", "Simon", "Tara"};
const char* kLastNames[] = {"Abel",   "Brown",  "Cruz",   "Dorn",  "Ender",
                            "Faber",  "Gauss",  "Hilbert", "Iwano", "Jung",
                            "Klein",  "Lorenz", "Moser",  "Noether", "Otto",
                            "Planck", "Quine",  "Russell", "Simmel", "Tukey"};
const char* kTitleWords[] = {"scalable", "semantic",  "query",     "graph",
                             "reasoning", "datalog",  "streams",   "joins",
                             "recursive", "optimized", "knowledge", "webs"};

}  // namespace

void GenerateSp2b(const Sp2bOptions& options, rdf::Dataset* dataset) {
  rdf::TermDictionary* dict = dataset->dict();
  rdf::Graph& g = dataset->default_graph();
  Rng rng(options.seed);

  auto iri = [&](const std::string& s) { return dict->InternIri(s); };
  auto lit = [&](const std::string& s) { return dict->InternLiteral(s); };
  auto year_lit = [&](int y) {
    return dict->InternLiteral(std::to_string(y),
                               std::string(kXsd) + "integer");
  };

  rdf::TermId type = iri(std::string(kRdf) + "type");
  rdf::TermId cls_journal = iri(std::string(kBench) + "Journal");
  rdf::TermId cls_article = iri(std::string(kBench) + "Article");
  rdf::TermId cls_inproc = iri(std::string(kBench) + "Inproceedings");
  rdf::TermId cls_proc = iri(std::string(kBench) + "Proceedings");
  rdf::TermId p_title = iri(std::string(kDc) + "title");
  rdf::TermId p_issued = iri(std::string(kDcterms) + "issued");
  rdf::TermId p_creator = iri(std::string(kDc) + "creator");
  rdf::TermId p_journal = iri(std::string(kSwrc) + "journal");
  rdf::TermId p_pages = iri(std::string(kSwrc) + "pages");
  rdf::TermId p_month = iri(std::string(kSwrc) + "month");
  rdf::TermId p_isbn = iri(std::string(kSwrc) + "isbn");
  rdf::TermId p_editor = iri(std::string(kSwrc) + "editor");
  rdf::TermId p_references = iri(std::string(kDcterms) + "references");
  rdf::TermId p_part_of = iri(std::string(kDcterms) + "partOf");
  rdf::TermId p_seealso = iri(std::string(kRdfs) + "seeAlso");
  rdf::TermId p_homepage = iri(std::string(kFoaf) + "homepage");
  rdf::TermId p_name = iri(std::string(kFoaf) + "name");
  rdf::TermId p_abstract = iri(std::string(kBench) + "abstract");

  // Document-class hierarchy (the original SP2B data ships these schema
  // triples; q6 relies on them).
  rdf::TermId cls_document = iri(std::string(kFoaf) + "Document");
  rdf::TermId cls_person = iri(std::string(kFoaf) + "Person");
  rdf::TermId p_subclass = iri(std::string(kRdfs) + "subClassOf");
  g.Add(cls_article, p_subclass, cls_document);
  g.Add(cls_inproc, p_subclass, cls_document);
  g.Add(cls_proc, p_subclass, cls_document);
  g.Add(cls_journal, p_subclass, cls_document);

  // Person pool; names intentionally collide sometimes (q5's same-name
  // join needs duplicates).
  std::vector<rdf::TermId> persons;
  std::vector<rdf::TermId> person_names;
  size_t num_persons = std::max<size_t>(20, options.target_triples / 60);
  for (size_t i = 0; i < num_persons; ++i) {
    rdf::TermId person =
        iri("http://localhost/persons/p" + std::to_string(i));
    std::string fname = kFirstNames[rng.Uniform(20)];
    std::string lname = kLastNames[rng.Uniform(20)];
    // Person 0 is the fixed "Erdős" anchor q8 and q12b join against.
    rdf::TermId name =
        i == 0 ? lit("Adam Abel") : lit(fname + " " + lname);
    g.Add(person, type, cls_person);
    g.Add(person, p_name, name);
    if (rng.Chance(0.3)) {
      g.Add(person, p_homepage,
            iri("http://example.org/home/" + std::to_string(i)));
    }
    persons.push_back(person);
    person_names.push_back(name);
  }

  std::vector<rdf::TermId> articles;
  std::vector<rdf::TermId> journals;
  int year = 1940;
  size_t serial = 0;
  while (g.size() < options.target_triples) {
    // One journal per year with a batch of articles, plus one proceedings
    // with inproceedings papers.
    rdf::TermId journal = iri(StringPrintf(
        "http://localhost/publications/journals/Journal%d", year));
    g.Add(journal, type, cls_journal);
    g.Add(journal, p_title, lit(StringPrintf("Journal %d", year)));
    g.Add(journal, p_issued, year_lit(year));
    if (!persons.empty()) {
      g.Add(journal, p_editor, persons[rng.Uniform(persons.size())]);
    }
    journals.push_back(journal);

    rdf::TermId proc = iri(StringPrintf(
        "http://localhost/publications/proceedings/Proc%d", year));
    g.Add(proc, type, cls_proc);
    g.Add(proc, p_title, lit(StringPrintf("Proceedings %d", year)));
    g.Add(proc, p_issued, year_lit(year));
    g.Add(proc, p_isbn, lit(StringPrintf("978-0-00-%06d", year)));

    size_t batch = 8 + rng.Uniform(8);
    for (size_t k = 0; k < batch && g.size() < options.target_triples; ++k) {
      bool in_journal = rng.Chance(0.6);
      rdf::TermId paper =
          iri("http://localhost/publications/art" + std::to_string(serial++));
      g.Add(paper, type, in_journal ? cls_article : cls_inproc);
      std::string title = std::string(kTitleWords[rng.Uniform(12)]) + " " +
                          kTitleWords[rng.Uniform(12)] + " " +
                          std::to_string(serial);
      g.Add(paper, p_title, lit(title));
      g.Add(paper, p_issued, year_lit(year));
      g.Add(paper, p_creator, persons[rng.Uniform(persons.size())]);
      if (rng.Chance(0.25)) {
        g.Add(paper, p_creator, persons[rng.Uniform(persons.size())]);
      }
      if (in_journal) {
        g.Add(paper, p_journal, journal);
      } else {
        g.Add(paper, p_part_of, proc);
      }
      if (rng.Chance(0.9)) {
        g.Add(paper, p_pages,
              lit(std::to_string(1 + rng.Uniform(400))));
      }
      if (rng.Chance(0.5)) {
        g.Add(paper, p_month, lit(std::to_string(1 + rng.Uniform(12))));
      }
      if (rng.Chance(0.3)) {
        g.Add(paper, p_abstract,
              lit("abstract " + std::to_string(serial)));
      }
      if (rng.Chance(0.4)) {
        g.Add(paper, p_seealso,
              iri("http://dblp.example.org/rec/" + std::to_string(serial)));
      }
      // Citations to earlier articles (feeds q7 and the ontology bench).
      size_t cites = rng.Uniform(4);
      for (size_t c = 0; c < cites && !articles.empty(); ++c) {
        g.Add(paper, p_references,
              articles[rng.Skewed(articles.size())]);
      }
      articles.push_back(paper);
    }
    ++year;
  }
  (void)person_names;
}

std::string Sp2bPrefixes() {
  return
      "PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>\n"
      "PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#>\n"
      "PREFIX bench: <http://localhost/vocabulary/bench/>\n"
      "PREFIX dc: <http://purl.org/dc/elements/1.1/>\n"
      "PREFIX dcterms: <http://purl.org/dc/terms/>\n"
      "PREFIX swrc: <http://swrc.ontoware.org/ontology#>\n"
      "PREFIX foaf: <http://xmlns.com/foaf/0.1/>\n"
      "PREFIX xsd: <http://www.w3.org/2001/XMLSchema#>\n";
}

std::vector<std::pair<std::string, std::string>> Sp2bQueries() {
  const std::string p = Sp2bPrefixes();
  std::vector<std::pair<std::string, std::string>> out;

  out.emplace_back("q1", p + R"(
SELECT ?yr
WHERE {
  ?journal rdf:type bench:Journal .
  ?journal dc:title "Journal 1940" .
  ?journal dcterms:issued ?yr .
})");

  out.emplace_back("q2", p + R"(
SELECT ?inproc ?author ?booktitle ?title ?proc ?page
WHERE {
  ?inproc rdf:type bench:Inproceedings .
  ?inproc dc:creator ?author .
  ?inproc dcterms:partOf ?proc .
  ?proc dc:title ?booktitle .
  ?inproc dc:title ?title .
  ?inproc swrc:pages ?page .
  OPTIONAL { ?inproc bench:abstract ?abstract }
}
ORDER BY ?inproc)");

  out.emplace_back("q3a", p + R"(
SELECT ?article
WHERE {
  ?article rdf:type bench:Article .
  ?article ?property ?value .
  FILTER (?property = swrc:pages)
})");

  out.emplace_back("q3b", p + R"(
SELECT ?article
WHERE {
  ?article rdf:type bench:Article .
  ?article ?property ?value .
  FILTER (?property = swrc:month)
})");

  out.emplace_back("q3c", p + R"(
SELECT ?article
WHERE {
  ?article rdf:type bench:Article .
  ?article ?property ?value .
  FILTER (?property = swrc:isbn)
})");

  out.emplace_back("q4", p + R"(
SELECT DISTINCT ?name1 ?name2
WHERE {
  ?article1 rdf:type bench:Article .
  ?article2 rdf:type bench:Article .
  ?article1 dc:creator ?author1 .
  ?author1 foaf:name ?name1 .
  ?article2 dc:creator ?author2 .
  ?author2 foaf:name ?name2 .
  ?article1 swrc:journal ?journal .
  ?article2 swrc:journal ?journal .
  FILTER (?name1 < ?name2)
})");

  out.emplace_back("q5a", p + R"(
SELECT DISTINCT ?person ?name
WHERE {
  ?article rdf:type bench:Article .
  ?article dc:creator ?person .
  ?inproc rdf:type bench:Inproceedings .
  ?inproc dc:creator ?person2 .
  ?person foaf:name ?name .
  ?person2 foaf:name ?name2 .
  FILTER (?name = ?name2)
})");

  out.emplace_back("q5b", p + R"(
SELECT DISTINCT ?person ?name
WHERE {
  ?article rdf:type bench:Article .
  ?article dc:creator ?person .
  ?inproc rdf:type bench:Inproceedings .
  ?inproc dc:creator ?person .
  ?person foaf:name ?name .
})");

  out.emplace_back("q6", p + R"(
SELECT ?yr ?name ?document
WHERE {
  ?class rdfs:subClassOf foaf:Document .
  ?document rdf:type ?class .
  ?document dcterms:issued ?yr .
  ?document dc:creator ?author .
  ?author foaf:name ?name .
  OPTIONAL {
    ?class2 rdfs:subClassOf foaf:Document .
    ?document2 rdf:type ?class2 .
    ?document2 dcterms:issued ?yr2 .
    ?document2 dc:creator ?author2 .
    FILTER (?author = ?author2 && ?yr2 < ?yr)
  }
  FILTER (!BOUND(?author2))
})");

  out.emplace_back("q7", p + R"(
SELECT DISTINCT ?title
WHERE {
  ?doc dc:title ?title .
  ?doc dcterms:references ?bag .
  OPTIONAL {
    ?doc2 dcterms:references ?bag2 .
    ?bag2 dcterms:references ?doc .
    OPTIONAL {
      ?doc3 dcterms:references ?doc2 .
    }
    FILTER (BOUND(?doc3))
  }
  FILTER (!BOUND(?doc2))
})");

  out.emplace_back("q8", p + R"(
SELECT DISTINCT ?name
WHERE {
  ?erdoes foaf:name "Adam Abel" .
  {
    ?document dc:creator ?erdoes .
    ?document dc:creator ?author .
    ?document2 dc:creator ?author .
    ?document2 dc:creator ?author2 .
    ?author2 foaf:name ?name .
    FILTER (?author != ?erdoes && ?document2 != ?document &&
            ?author2 != ?erdoes && ?author2 != ?author)
  } UNION {
    ?document dc:creator ?erdoes .
    ?document dc:creator ?author .
    ?author foaf:name ?name .
    FILTER (?author != ?erdoes)
  }
})");

  out.emplace_back("q9", p + R"(
SELECT DISTINCT ?predicate
WHERE {
  {
    ?person rdf:type foaf:Person .
    ?subject ?predicate ?person .
  } UNION {
    ?person rdf:type foaf:Person .
    ?person ?predicate ?object .
  }
})");

  out.emplace_back("q10", p + R"(
SELECT ?subject ?predicate
WHERE {
  ?subject ?predicate <http://localhost/persons/p7> .
})");

  out.emplace_back("q11", p + R"(
SELECT ?ee
WHERE {
  ?publication rdfs:seeAlso ?ee .
}
ORDER BY ?ee
LIMIT 10
OFFSET 50)");

  out.emplace_back("q12a", p + R"(
ASK {
  ?article rdf:type bench:Article .
  ?article dc:creator ?person .
  ?inproc rdf:type bench:Inproceedings .
  ?inproc dc:creator ?person .
})");

  out.emplace_back("q12b", p + R"(
ASK {
  ?erdoes foaf:name "Adam Abel" .
  ?document dc:creator ?erdoes .
})");

  out.emplace_back("q12c", p + R"(
ASK {
  <http://localhost/persons/unknown> foaf:name ?name .
})");

  return out;
}

}  // namespace sparqlog::workloads
