#include "workloads/ontobench.h"

#include "workloads/sp2bench.h"

namespace sparqlog::workloads {

void GenerateOntoBench(const OntoBenchOptions& options,
                       rdf::Dataset* dataset) {
  Sp2bOptions sp2b;
  sp2b.target_triples = options.sp2b_triples;
  sp2b.seed = options.seed;
  GenerateSp2b(sp2b, dataset);

  rdf::TermDictionary* dict = dataset->dict();
  rdf::Graph& g = dataset->default_graph();
  auto iri = [&](const std::string& s) { return dict->InternIri(s); };
  rdf::TermId sub_class = iri(std::string(rdf::rdfns::kSubClassOf));
  rdf::TermId sub_prop = iri(std::string(rdf::rdfns::kSubPropertyOf));

  const std::string bench = "http://localhost/vocabulary/bench/";
  const std::string dcterms = "http://purl.org/dc/terms/";
  const std::string swrc = "http://swrc.ontoware.org/ontology#";
  const std::string dc = "http://purl.org/dc/elements/1.1/";

  // Class hierarchy: Article/Inproceedings < Publication < Entity;
  // Journal/Proceedings < Venue < Entity.
  g.Add(iri(bench + "Article"), sub_class, iri(bench + "Publication"));
  g.Add(iri(bench + "Inproceedings"), sub_class, iri(bench + "Publication"));
  g.Add(iri(bench + "Publication"), sub_class, iri(bench + "Entity"));
  g.Add(iri(bench + "Journal"), sub_class, iri(bench + "Venue"));
  g.Add(iri(bench + "Proceedings"), sub_class, iri(bench + "Venue"));
  g.Add(iri(bench + "Venue"), sub_class, iri(bench + "Entity"));

  // Property hierarchy: references / journal / partOf < related;
  // creator < contributor.
  g.Add(iri(dcterms + "references"), sub_prop, iri(bench + "related"));
  g.Add(iri(swrc + "journal"), sub_prop, iri(bench + "related"));
  g.Add(iri(dcterms + "partOf"), sub_prop, iri(bench + "related"));
  g.Add(iri(dc + "creator"), sub_prop, iri(bench + "contributor"));
  g.Add(iri(swrc + "editor"), sub_prop, iri(bench + "contributor"));
}

std::vector<std::pair<std::string, std::string>> OntoBenchQueries() {
  const std::string p = Sp2bPrefixes();
  std::vector<std::pair<std::string, std::string>> out;

  // q0: subclass inference on a type scan.
  out.emplace_back("q0", p + R"(
SELECT ?d WHERE { ?d rdf:type bench:Publication . })");

  // q1: two-level subclass inference.
  out.emplace_back("q1", p + R"(
SELECT DISTINCT ?e WHERE { ?e rdf:type bench:Entity . })");

  // q2: subproperty inference joined with a type scan.
  out.emplace_back("q2", p + R"(
SELECT ?a ?v WHERE {
  ?a bench:related ?v .
  ?a rdf:type bench:Article .
})");

  // q3: inference + filter.
  out.emplace_back("q3", p + R"(
SELECT ?a ?y WHERE {
  ?a rdf:type bench:Publication .
  ?a dcterms:issued ?y .
  FILTER (?y < 1945)
})");

  // q4: recursive property path with two variables over an *inferred*
  // predicate (the citation/venue reachability closure).
  out.emplace_back("q4", p + R"(
SELECT ?a ?b WHERE { ?a dcterms:references+ ?b . })");

  // q5: zero-or-more over the inferred super-property — the hardest case:
  // reasoning inside an unbounded recursion with two free variables.
  out.emplace_back("q5", p + R"(
SELECT ?a ?b WHERE { ?a bench:related* ?b . })");

  return out;
}

}  // namespace sparqlog::workloads
