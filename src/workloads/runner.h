#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "eval/binding.h"
#include "rdf/graph.h"
#include "util/exec_context.h"
#include "util/status.h"

/// \file runner.h
/// Benchmark harness shared by all table/figure reproductions: system
/// adapters (each run reloads the dataset, matching the paper's
/// methodology of deleting and reloading per query, §6.3), outcome
/// classification (ok / time-out / mem-out / not-supported / error), and
/// the result-comparison and table-formatting utilities used to emit the
/// paper's tables.

namespace sparqlog::workloads {

/// Per-run resource limits (the paper used a 900 s timeout; benchmarks
/// here default to a few seconds so the suite stays laptop-friendly —
/// the *shape* of who times out is what matters).
struct Limits {
  int timeout_ms = 5000;
  uint64_t tuple_budget = 40'000'000;
  /// Re-execute each query once on the already-warm engine and record
  /// RunRecord::warm_exec_seconds plus the cache counters — the
  /// repeated-query serving scenario (SparqLog adapter only; the
  /// baseline systems have no warm path and ignore this).
  bool warm_repeat = false;
};

enum class Outcome { kOk, kTimeout, kMemOut, kNotSupported, kError };

const char* OutcomeName(Outcome o);

struct RunRecord {
  Outcome outcome = Outcome::kOk;
  double load_seconds = 0.0;
  double exec_seconds = 0.0;
  eval::QueryResult result;
  std::string message;
  /// Warm re-execution time when Limits::warm_repeat is on; negative
  /// when not measured.
  double warm_exec_seconds = -1.0;
  /// Engine cache counters for the run (SparqLog adapter only; zero for
  /// the baseline systems, which have no translation pipeline to cache).
  uint64_t program_cache_hits = 0;
  uint64_t program_cache_rebinds = 0;
  uint64_t program_cache_misses = 0;
  uint64_t stratum_memo_hits = 0;
  uint64_t stratum_memo_misses = 0;
  uint64_t tuples_restored = 0;
  /// Fixpoint-parallelism counters (SparqLog adapter only, from
  /// Engine::stats(): zero for baselines and single-threaded runs).
  uint32_t parallel_rounds = 0;
  uint32_t naive_rounds_sharded = 0;
  uint64_t staged_tuples_merged = 0;
  uint32_t merge_fanout_width = 0;
  uint64_t interning_contention = 0;
  /// Transitive-closure kernel counters (SparqLog adapter only, from
  /// Engine::stats(): zero for baselines and kernel-off runs).
  uint32_t tc_kernels_hit = 0;
  uint32_t tc_dense_frontiers = 0;
  uint32_t tc_sparse_frontiers = 0;
  /// Join-planner counters (SparqLog adapter only, from Engine::stats():
  /// zero / 0.0 for baselines and planner-off runs).
  uint64_t plans_computed = 0;
  uint64_t plan_cache_hits = 0;
  /// q-error of the last planned execution's output-cardinality estimate
  /// (max(est/actual, actual/est); 1.0 = exact, 0.0 = not planned).
  double plan_estimate_error = 0.0;

  double total_seconds() const { return load_seconds + exec_seconds; }
  bool ok() const { return outcome == Outcome::kOk; }
};

/// Classifies a failed Status into an outcome bucket.
Outcome ClassifyStatus(const Status& status);

/// A system under test. Run() performs a fresh load plus one query
/// execution and reports both timings.
class System {
 public:
  virtual ~System() = default;
  virtual const std::string& name() const = 0;
  virtual RunRecord Run(const std::string& query_text) = 0;
};

/// A named query workload over a dataset.
struct Workload {
  std::string name;
  const rdf::Dataset* dataset = nullptr;
  std::vector<std::string> query_names;
  std::vector<std::string> queries;
};

/// Result-correctness classification in BeSEPPI's terms (§D.2.3).
struct ComplianceClass {
  bool correct = true;    ///< returned ⊆ expected (multiset)
  bool complete = true;   ///< expected ⊆ returned (multiset)
  bool error = false;
};

ComplianceClass Classify(const RunRecord& record,
                         const eval::QueryResult& expected);

/// Fixed-width table printing helpers.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);
  void AddRow(std::vector<std::string> cells);
  void Print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats seconds with 4 significant digits, or the outcome name for
/// failed runs (the paper's per-query tables, 9-11).
std::string FormatTime(const RunRecord& r, bool total = false);

/// One-line rendering of the cache counters carried in a RunRecord,
/// e.g. "Tq 1h/2r/1m · strata 8h/8m · 42 tuples restored"; when the run
/// fanned out, the fixpoint-parallelism counters are appended, e.g.
/// " · par 6r/1n · 120 merged ×4 · 0 contended"; when the join planner
/// ran, its counters follow, e.g. " · plan 1c/1h q1.3" (computed / warm
/// cache hits / output-estimate q-error).
std::string FormatCacheStats(const RunRecord& r);

}  // namespace sparqlog::workloads
