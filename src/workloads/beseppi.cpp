#include "workloads/beseppi.h"

#include <cassert>

namespace sparqlog::workloads {

namespace {

constexpr char kNs[] = "http://example.org/beseppi/";

std::string N(const std::string& local) {
  return "<" + std::string(kNs) + local + ">";
}

/// Endpoint configurations (subject text, object text, select clause).
struct Endpoints {
  std::string s, o, select;
};

// The standard 4-configuration sweep.
std::vector<Endpoints> BasicConfigs() {
  return {
      {"?x", "?y", "?x ?y"},
      {N("s1"), "?y", "?y"},
      {"?x", N("o2"), "?x"},
      {N("s1"), N("o2"), "*"},
  };
}

// Extended sweep adding the not-in-graph constant and same-variable cases
// (the zero-length-path corner cases).
std::vector<Endpoints> ExtendedConfigs() {
  auto out = BasicConfigs();
  out.push_back({N("ghost"), "?y", "?y"});
  out.push_back({"?x", "?x", "?x"});
  return out;
}

std::string MakeQuery(const Endpoints& e, const std::string& path) {
  std::string select = e.select == "*" ? "?any" : e.select;
  std::string proj = e.select == "*" ? "SELECT *" : "SELECT " + e.select;
  (void)select;
  return proj + " WHERE { " + e.s + " " + path + " " + e.o + " . }";
}

}  // namespace

void GenerateBeseppiGraph(rdf::Dataset* dataset) {
  auto& dict = *dataset->dict();
  auto& g = dataset->default_graph();
  auto iri = [&](const std::string& local) {
    return dict.InternIri(std::string(kNs) + local);
  };
  rdf::TermId p = iri("p"), q = iri("q"), r = iri("r"), t = iri("t"),
              v = iri("v");
  // 3-cycle on p.
  g.Add(iri("s1"), p, iri("o1"));
  g.Add(iri("o1"), p, iri("o2"));
  g.Add(iri("o2"), p, iri("s1"));
  // q chain with a self loop; s1-q-o1 parallels a p edge so alternative
  // paths produce genuine duplicates (the case Virtuoso loses).
  g.Add(iri("s1"), q, iri("o2"));
  g.Add(iri("s1"), q, iri("o1"));
  g.Add(iri("o3"), q, iri("o3"));
  // 2-cycle on r.
  g.Add(iri("s2"), r, iri("o1"));
  g.Add(iri("o1"), r, iri("s2"));
  // Dead ends and a second p component.
  g.Add(iri("s2"), p, iri("o4"));
  g.Add(iri("s3"), t, iri("o4"));
  // Literal object.
  g.Add(iri("s3"), v, dict.InternLiteral("lit"));
}

std::vector<std::string> BeseppiCategories() {
  return {"Inverse",     "Sequence",    "Alternative", "ZeroOrOne",
          "OneOrMore",   "ZeroOrMore",  "Negated"};
}

std::vector<BeseppiQuery> BeseppiQueries() {
  std::vector<BeseppiQuery> out;
  auto add = [&](const std::string& category, const std::string& path,
                 const std::vector<Endpoints>& configs) {
    for (const auto& e : configs) {
      BeseppiQuery bq;
      bq.category = category;
      bq.name = category + std::to_string(out.size());
      bq.text = MakeQuery(e, path);
      out.push_back(std::move(bq));
    }
  };

  auto basic = BasicConfigs();
  auto extended = ExtendedConfigs();

  // Inverse: 5 path variants x 4 configs = 20.
  for (const char* pr : {"p", "q", "r", "t", "v"}) {
    add("Inverse", "^" + N(pr), basic);
  }

  // Sequence: 6 variants x 4 configs = 24.
  for (const std::string& path :
       {N("p") + "/" + N("p"), N("p") + "/" + N("q"), N("q") + "/" + N("p"),
        N("r") + "/" + N("p"), N("p") + "/^" + N("p"),
        "^" + N("q") + "/" + N("q")}) {
    add("Sequence", path, basic);
  }

  // Alternative: 5 variants x 4 configs + 3 same-var configs = 23.
  for (const std::string& path :
       {N("p") + "|" + N("q"), N("p") + "|" + N("r"), N("q") + "|" + N("r"),
        N("p") + "|^" + N("p"), "^" + N("p") + "|^" + N("q")}) {
    add("Alternative", path, basic);
  }
  add("Alternative", "(" + N("p") + "|" + N("q") + ")",
      {{"?x", "?x", "?x"}});
  add("Alternative", "(" + N("r") + "|" + N("t") + ")",
      {{"?x", "?x", "?x"}});
  add("Alternative", "(" + N("q") + "|" + N("v") + ")",
      {{N("o3"), "?y", "?y"}});

  // Zero-or-one: 4 variants x 6 extended configs = 24.
  for (const std::string& path : {N("p") + "?", N("q") + "?", N("r") + "?",
                                 "(^" + N("p") + ")?"}) {
    add("ZeroOrOne", path, extended);
  }

  // One-or-more: 5 variants x 6 + 4 extra = 34.
  for (const std::string& path :
       {N("p") + "+", N("q") + "+", N("r") + "+", "(^" + N("p") + ")+",
        "(" + N("p") + "|" + N("q") + ")+"}) {
    add("OneOrMore", path, extended);
  }
  add("OneOrMore", N("t") + "+", {basic[0], basic[1]});
  add("OneOrMore", N("v") + "+", {basic[0], basic[1]});

  // Zero-or-more: 5 variants x 6 + 8 extra = 38.
  for (const std::string& path :
       {N("p") + "*", N("q") + "*", N("r") + "*", "(^" + N("p") + ")*",
        "(" + N("p") + "|" + N("q") + ")*"}) {
    add("ZeroOrMore", path, extended);
  }
  add("ZeroOrMore", N("t") + "*",
      {basic[0], basic[1], basic[2], {N("ghost"), "?y", "?y"}});
  add("ZeroOrMore", N("v") + "*",
      {basic[0], basic[1], basic[2], {N("ghost"), "?y", "?y"}});

  // Negated: 18 variants x 4 configs + 1 = 73.
  for (const std::string& path :
       {"!" + N("p"), "!" + N("q"), "!" + N("r"), "!" + N("t"), "!" + N("v"),
        "!(" + N("p") + "|" + N("q") + ")",
        "!(" + N("p") + "|" + N("r") + ")",
        "!(" + N("q") + "|" + N("r") + ")",
        "!(" + N("p") + "|" + N("q") + "|" + N("r") + ")", "!^" + N("p"),
        "!^" + N("q"), "!^" + N("r"),
        "!(^" + N("p") + "|^" + N("q") + ")",
        "!(" + N("p") + "|^" + N("q") + ")",
        "!(" + N("q") + "|^" + N("p") + ")",
        "!(" + N("p") + "|" + N("q") + "|^" + N("r") + ")",
        "!(^" + N("p") + "|^" + N("q") + "|^" + N("r") + ")",
        "!(" + N("p") + "|^" + N("p") + ")"}) {
    add("Negated", path, basic);
  }
  add("Negated", "!(" + N("t") + "|" + N("v") + ")", {{"?x", "?x", "?x"}});

  assert(out.size() == 236);
  return out;
}

}  // namespace sparqlog::workloads
