#include "workloads/runner.h"

#include <cstdio>

#include "util/string_util.h"

namespace sparqlog::workloads {

const char* OutcomeName(Outcome o) {
  switch (o) {
    case Outcome::kOk: return "ok";
    case Outcome::kTimeout: return "timeout";
    case Outcome::kMemOut: return "memout";
    case Outcome::kNotSupported: return "notsupported";
    case Outcome::kError: return "error";
  }
  return "?";
}

Outcome ClassifyStatus(const Status& status) {
  if (status.ok()) return Outcome::kOk;
  if (status.IsTimeout()) return Outcome::kTimeout;
  if (status.IsResourceExhausted()) return Outcome::kMemOut;
  if (status.IsNotSupported()) return Outcome::kNotSupported;
  return Outcome::kError;
}

ComplianceClass Classify(const RunRecord& record,
                         const eval::QueryResult& expected) {
  ComplianceClass out;
  if (!record.ok()) {
    out.error = true;
    out.correct = false;
    out.complete = false;
    return out;
  }
  out.correct = record.result.SubsetOf(expected);
  out.complete = expected.SubsetOf(record.result);
  return out;
}

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void TablePrinter::Print() const {
  std::vector<size_t> widths(headers_.size(), 0);
  for (size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size() && i < widths.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (size_t i = 0; i < widths.size(); ++i) {
      std::string cell = i < row.size() ? row[i] : "";
      cell.resize(widths[i], ' ');
      line += cell;
      if (i + 1 < widths.size()) line += "  ";
    }
    std::printf("%s\n", line.c_str());
  };
  print_row(headers_);
  std::string sep;
  for (size_t i = 0; i < widths.size(); ++i) {
    sep += std::string(widths[i], '-');
    if (i + 1 < widths.size()) sep += "  ";
  }
  std::printf("%s\n", sep.c_str());
  for (const auto& row : rows_) print_row(row);
}

std::string FormatTime(const RunRecord& r, bool total) {
  if (!r.ok()) return OutcomeName(r.outcome);
  return StringPrintf("%.4f", total ? r.total_seconds() : r.exec_seconds);
}

std::string FormatCacheStats(const RunRecord& r) {
  std::string out = StringPrintf(
      "Tq %lluh/%llur/%llum · strata %lluh/%llum · %llu tuples restored",
      static_cast<unsigned long long>(r.program_cache_hits),
      static_cast<unsigned long long>(r.program_cache_rebinds),
      static_cast<unsigned long long>(r.program_cache_misses),
      static_cast<unsigned long long>(r.stratum_memo_hits),
      static_cast<unsigned long long>(r.stratum_memo_misses),
      static_cast<unsigned long long>(r.tuples_restored));
  if (r.parallel_rounds > 0) {
    out += StringPrintf(
        " · par %ur/%un · %llu merged ×%u · %llu contended",
        r.parallel_rounds, r.naive_rounds_sharded,
        static_cast<unsigned long long>(r.staged_tuples_merged),
        r.merge_fanout_width,
        static_cast<unsigned long long>(r.interning_contention));
  }
  if (r.plans_computed > 0 || r.plan_cache_hits > 0) {
    out += StringPrintf(
        " · plan %lluc/%lluh q%.2g",
        static_cast<unsigned long long>(r.plans_computed),
        static_cast<unsigned long long>(r.plan_cache_hits),
        r.plan_estimate_error);
  }
  if (r.tc_kernels_hit > 0) {
    out += StringPrintf(" · tc %uk (%ud/%us)", r.tc_kernels_hit,
                        r.tc_dense_frontiers, r.tc_sparse_frontiers);
  }
  return out;
}

}  // namespace sparqlog::workloads
