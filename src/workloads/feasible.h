#pragma once

#include <string>
#include <utility>
#include <vector>

#include "rdf/graph.h"

/// \file feasible.h
/// FEASIBLE(S)-style compliance workload (Saleem et al., §6.2): 77 unique
/// queries over a Semantic-Web-Dog-Food-like conference dataset, with the
/// feature mix the paper reports for the generated benchmark (DISTINCT
/// ~56%, FILTER, REGEX, OPTIONAL, UNION, GRAPH ~10%, ORDER BY with
/// complex arguments, UCASE, DATATYPE). LIMIT/OFFSET are omitted, as the
/// paper removed them before its compliance runs (Appendix D.2.1).

namespace sparqlog::workloads {

/// Generates the SWDF-like dataset: a default graph plus one named graph
/// (a copy) so GRAPH queries have a target.
void GenerateSwdf(rdf::Dataset* dataset, uint64_t seed = 99,
                  size_t scale = 500);

/// The 77 queries as (name, text) pairs.
std::vector<std::pair<std::string, std::string>> FeasibleQueries();

}  // namespace sparqlog::workloads
