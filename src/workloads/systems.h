#pragma once

#include <memory>

#include "workloads/runner.h"

/// \file systems.h
/// Adapters binding the four engines to the benchmark harness:
///   * "SparqLog"  — the translation pipeline over the Datalog± engine;
///   * "Fuseki"    — the standard-compliant direct algebra evaluator;
///   * "Virtuoso"  — the quirk-injected evaluator;
///   * "Stardog"   — naive-materialization reasoner + direct evaluator.
/// Each Run() reloads from scratch, matching the paper's per-query
/// delete-and-reload methodology (§6.3).

namespace sparqlog::workloads {

std::unique_ptr<System> MakeSparqLogSystem(const rdf::Dataset* dataset,
                                           rdf::TermDictionary* dict,
                                           Limits limits,
                                           bool ontology = false);

std::unique_ptr<System> MakeFusekiSystem(const rdf::Dataset* dataset,
                                         rdf::TermDictionary* dict,
                                         Limits limits);

std::unique_ptr<System> MakeVirtuosoSystem(const rdf::Dataset* dataset,
                                           rdf::TermDictionary* dict,
                                           Limits limits);

std::unique_ptr<System> MakeStardogSystem(const rdf::Dataset* dataset,
                                          rdf::TermDictionary* dict,
                                          Limits limits);

}  // namespace sparqlog::workloads
