#pragma once

#include <string>
#include <vector>

#include "workloads/runner.h"

/// \file report.h
/// The generic performance/compliance comparison used by the Figure 7/8/9
/// reproductions: runs every system on every query of a workload, prints
/// the per-query table (the paper's Tables 9-11: loading time, execution
/// time, result-equality against a reference system) and the per-system
/// summary (Tables 7-8: #not supported, #time- and mem-outs, #incomplete
/// results, total).

namespace sparqlog::workloads {

struct SystemSummary {
  std::string name;
  int ok = 0;
  int not_supported = 0;
  int timeouts_and_memouts = 0;
  int incomplete_results = 0;  ///< ran fine but disagreed with reference
  int errors = 0;
  double total_exec_seconds = 0.0;
  double total_load_seconds = 0.0;

  int TotalFailed() const {
    return not_supported + timeouts_and_memouts + incomplete_results + errors;
  }
};

struct ComparisonOptions {
  /// Index into the systems vector whose results define correctness;
  /// negative disables result comparison.
  int reference = 0;
  /// Print the full per-query rows (Tables 9-11) in addition to the
  /// summary.
  bool per_query_rows = true;
  /// Print a figure-style series block (query id + exec time per system,
  /// log-scale friendly) for plotting.
  bool figure_series = true;
};

std::vector<SystemSummary> RunComparison(const Workload& workload,
                                         const std::vector<System*>& systems,
                                         const ComparisonOptions& options);

/// Prints the Tables 7/8-style summary.
void PrintSummary(const std::vector<SystemSummary>& summaries,
                  size_t total_queries);

/// Tiny argv helper for the bench binaries: --name=value.
int64_t FlagValue(int argc, char** argv, const std::string& name,
                  int64_t default_value);
bool HasFlag(int argc, char** argv, const std::string& name);

}  // namespace sparqlog::workloads
