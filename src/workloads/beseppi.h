#pragma once

#include <string>
#include <vector>

#include "rdf/graph.h"

/// \file beseppi.h
/// BeSEPPI-style property-path compliance suite (Skubella et al., §6.2):
/// a fixed micro-graph containing the shapes that expose path-semantics
/// bugs (a 3-cycle, a 2-cycle, a self loop, dead ends, a literal object)
/// and 236 queries across the seven property-path expression categories
/// with the paper's per-category counts (Table 3):
///   Inverse 20, Sequence 24, Alternative 23, Zero-or-One 24,
///   One-or-More 34, Zero-or-More 38, Negated 73.
/// Endpoint configurations sweep variable/constant combinations,
/// including constants that do not occur in the graph (the zero-length
/// path corner case of §5.2).

namespace sparqlog::workloads {

struct BeseppiQuery {
  std::string name;
  std::string category;  ///< Inverse / Sequence / ... / Negated
  std::string text;
};

/// Loads the fixed micro-graph into `dataset`'s default graph.
void GenerateBeseppiGraph(rdf::Dataset* dataset);

/// All 236 queries grouped by category (stable order).
std::vector<BeseppiQuery> BeseppiQueries();

/// Category names in Table 3 order.
std::vector<std::string> BeseppiCategories();

}  // namespace sparqlog::workloads
