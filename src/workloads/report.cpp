#include "workloads/report.h"

#include <cstdio>
#include <cstring>

#include "util/string_util.h"

namespace sparqlog::workloads {

std::vector<SystemSummary> RunComparison(const Workload& workload,
                                         const std::vector<System*>& systems,
                                         const ComparisonOptions& options) {
  std::vector<SystemSummary> summaries(systems.size());
  for (size_t si = 0; si < systems.size(); ++si) {
    summaries[si].name = systems[si]->name();
  }

  std::vector<std::string> headers{"Query"};
  for (System* s : systems) {
    headers.push_back(s->name() + " load");
    headers.push_back(s->name() + " exec");
    headers.push_back(s->name() + " res");
  }
  TablePrinter table(headers);
  std::vector<std::vector<double>> series(workload.queries.size());

  for (size_t qi = 0; qi < workload.queries.size(); ++qi) {
    std::vector<RunRecord> records;
    records.reserve(systems.size());
    for (System* s : systems) {
      records.push_back(s->Run(workload.queries[qi]));
    }

    const RunRecord* reference = nullptr;
    if (options.reference >= 0 &&
        records[static_cast<size_t>(options.reference)].ok()) {
      reference = &records[static_cast<size_t>(options.reference)];
    }

    std::vector<std::string> row{workload.query_names[qi]};
    for (size_t si = 0; si < systems.size(); ++si) {
      const RunRecord& r = records[si];
      SystemSummary& sum = summaries[si];
      std::string res_cell = "-";
      switch (r.outcome) {
        case Outcome::kOk: {
          sum.total_exec_seconds += r.exec_seconds;
          sum.total_load_seconds += r.load_seconds;
          bool agrees = true;
          if (reference != nullptr && &records[si] != reference) {
            agrees = r.result.SameSolutions(reference->result);
          }
          if (agrees) {
            ++sum.ok;
            res_cell = "eq";
          } else {
            ++sum.incomplete_results;
            res_cell = "DIFF";
          }
          break;
        }
        case Outcome::kTimeout:
        case Outcome::kMemOut:
          ++sum.timeouts_and_memouts;
          break;
        case Outcome::kNotSupported:
          ++sum.not_supported;
          break;
        case Outcome::kError:
          ++sum.errors;
          break;
      }
      row.push_back(r.ok() ? StringPrintf("%.4f", r.load_seconds)
                           : std::string("-"));
      row.push_back(FormatTime(r));
      row.push_back(res_cell);
      series[qi].push_back(r.ok() ? r.exec_seconds : -1.0);
    }
    table.AddRow(std::move(row));
  }

  if (options.per_query_rows) {
    std::printf("\n== %s: per-query results (load s / exec s / result) ==\n",
                workload.name.c_str());
    table.Print();
  }
  if (options.figure_series) {
    std::printf("\n== %s: figure series (exec seconds, -1 = failed) ==\n",
                workload.name.c_str());
    std::string head = "query";
    for (System* s : systems) head += "\t" + s->name();
    std::printf("%s\n", head.c_str());
    for (size_t qi = 0; qi < series.size(); ++qi) {
      std::string line = workload.query_names[qi];
      for (double v : series[qi]) line += StringPrintf("\t%.6f", v);
      std::printf("%s\n", line.c_str());
    }
  }
  return summaries;
}

void PrintSummary(const std::vector<SystemSummary>& summaries,
                  size_t total_queries) {
  std::printf("\n== summary (of %zu queries) ==\n", total_queries);
  TablePrinter table({"System", "#Not Supported", "#Time-/Mem-Outs",
                      "#Incomplete Results", "#Errors", "Total Failed",
                      "Sum exec (s)"});
  for (const auto& s : summaries) {
    table.AddRow({s.name, std::to_string(s.not_supported),
                  std::to_string(s.timeouts_and_memouts),
                  std::to_string(s.incomplete_results),
                  std::to_string(s.errors), std::to_string(s.TotalFailed()),
                  StringPrintf("%.3f", s.total_exec_seconds)});
  }
  table.Print();
}

int64_t FlagValue(int argc, char** argv, const std::string& name,
                  int64_t default_value) {
  std::string prefix = "--" + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      if (auto v = ParseInt64(argv[i] + prefix.size())) return *v;
    }
  }
  return default_value;
}

bool HasFlag(int argc, char** argv, const std::string& name) {
  std::string flag = "--" + name;
  for (int i = 1; i < argc; ++i) {
    if (flag == argv[i]) return true;
  }
  return false;
}

}  // namespace sparqlog::workloads
