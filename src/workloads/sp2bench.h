#pragma once

#include <string>
#include <utility>
#include <vector>

#include "rdf/graph.h"

/// \file sp2bench.h
/// SP2Bench-style workload (Schmidt et al., the paper's synthetic
/// benchmark of choice, §6.1): a deterministic DBLP-like dataset
/// generator and the 17 hand-crafted queries (q1-q12c) re-expressed over
/// the generated vocabulary. Query shapes follow the originals: large
/// joins (q2, q4), optional chains with negation via !BOUND (q6, q7),
/// unions (q8, q9), predicate variables (q3*, q9, q10), solution
/// modifiers (q2, q11) and ASK forms (q12*).

namespace sparqlog::workloads {

struct Sp2bOptions {
  size_t target_triples = 10000;
  uint64_t seed = 4711;
};

/// Generates the dataset into `dataset`'s default graph.
void GenerateSp2b(const Sp2bOptions& options, rdf::Dataset* dataset);

/// The 17 queries as (name, SPARQL text) pairs, in benchmark order.
std::vector<std::pair<std::string, std::string>> Sp2bQueries();

/// Namespace prefix declarations shared by the SP2B queries.
std::string Sp2bPrefixes();

}  // namespace sparqlog::workloads
