#pragma once

#include <string>
#include <vector>

#include "rdf/graph.h"

/// \file gmark.h
/// gMark-style workload (Bagan et al., §6.3): a schema-driven random
/// graph generator plus 50 machine-generated path queries per scenario,
/// mirroring the two demo scenarios the paper evaluates ("social" and
/// "test"). Queries are regular path queries over the schema's predicate
/// alphabet with the full operator mix — sequence, alternative, inverse,
/// one-or-more, zero-or-more, zero-or-one, and the counted forms
/// ({n}, {n,}, {0,n}) the paper added support for — with a bias toward
/// two-variable recursive paths, the case that separates the systems.

namespace sparqlog::workloads {

struct GmarkScenario {
  std::string name;
  size_t nodes = 0;
  size_t edges = 0;
  std::vector<std::string> predicates;  ///< local names under the gMark ns
  uint64_t seed = 0;
};

/// The "social" demo scenario (larger graph, richer alphabet).
GmarkScenario GmarkSocial();

/// The "test" demo scenario (smaller graph, 4 predicates).
GmarkScenario GmarkTest();

/// Generates the scenario's graph into `dataset`'s default graph.
void GenerateGmarkGraph(const GmarkScenario& scenario, rdf::Dataset* dataset);

/// Generates the scenario's 50 path queries (deterministic per seed).
std::vector<std::string> GenerateGmarkQueries(const GmarkScenario& scenario);

}  // namespace sparqlog::workloads
