#include "workloads/gmark.h"

#include "util/hash.h"
#include "util/string_util.h"

namespace sparqlog::workloads {

namespace {

constexpr char kNs[] = "http://example.org/gMark/";

std::string NodeIri(size_t id) { return std::string(kNs) + std::to_string(id); }
std::string PredIri(const std::string& local) { return std::string(kNs) + local; }

/// Random path expression of the given depth budget.
std::string RandomPath(Rng& rng, const GmarkScenario& s, int depth) {
  auto pred = [&]() -> std::string {
    std::string p = "<" + PredIri(s.predicates[rng.Uniform(s.predicates.size())]) + ">";
    return rng.Chance(0.15) ? "^" + p : p;
  };
  if (depth <= 0) return pred();
  switch (rng.Uniform(6)) {
    case 0:  // sequence
      return "(" + RandomPath(rng, s, depth - 1) + "/" +
             RandomPath(rng, s, depth - 1) + ")";
    case 1:  // alternative
      return "(" + RandomPath(rng, s, depth - 1) + "|" +
             RandomPath(rng, s, depth - 1) + ")";
    case 2:  // one-or-more over a base step
      return "(" + pred() + ")+";
    case 3:  // zero-or-more over a base step
      return "(" + pred() + ")*";
    case 4: {  // counted forms
      switch (rng.Uniform(3)) {
        case 0:
          return "(" + pred() + "){" + std::to_string(2 + rng.Uniform(2)) + "}";
        case 1:
          return "(" + pred() + "){" + std::to_string(1 + rng.Uniform(2)) +
                 ",}";
        default:
          return "(" + pred() + "){0," + std::to_string(2 + rng.Uniform(2)) +
                 "}";
      }
    }
    default:  // zero-or-one
      return "(" + pred() + ")?";
  }
}

}  // namespace

GmarkScenario GmarkSocial() {
  GmarkScenario s;
  s.name = "social";
  s.nodes = 3000;
  s.edges = 12000;
  s.predicates = {"knows",      "follows",   "likes",     "hasCreator",
                  "hasTag",     "memberOf",  "moderates", "replyOf",
                  "worksAt",    "studyAt",   "isLocatedIn", "hasInterest"};
  s.seed = 20230711;
  return s;
}

GmarkScenario GmarkTest() {
  GmarkScenario s;
  s.name = "test";
  s.nodes = 1500;
  s.edges = 5000;
  s.predicates = {"p0", "p1", "p2", "p3"};
  s.seed = 421;
  return s;
}

void GenerateGmarkGraph(const GmarkScenario& scenario, rdf::Dataset* dataset) {
  rdf::TermDictionary* dict = dataset->dict();
  rdf::Graph& g = dataset->default_graph();
  Rng rng(scenario.seed);

  std::vector<rdf::TermId> preds;
  for (const auto& p : scenario.predicates) {
    preds.push_back(dict->InternIri(PredIri(p)));
  }
  // Zipf-ish out-degrees: a core of hubs plus a long tail; some cycles by
  // construction (edges between skewed endpoints collide).
  size_t added = 0;
  while (added < scenario.edges) {
    size_t from = rng.Skewed(scenario.nodes);
    size_t to = rng.Chance(0.7) ? rng.Uniform(scenario.nodes)
                                : rng.Skewed(scenario.nodes);
    rdf::TermId p = preds[rng.Skewed(preds.size())];
    if (g.Add(dict->InternIri(NodeIri(from)), p,
              dict->InternIri(NodeIri(to)))) {
      ++added;
    }
  }
}

std::vector<std::string> GenerateGmarkQueries(const GmarkScenario& scenario) {
  Rng qrng(scenario.seed * 31 + 7);
  std::vector<std::string> out;
  for (int qi = 0; qi < 50; ++qi) {
    int depth = 1 + static_cast<int>(qrng.Uniform(2));
    std::string path = RandomPath(qrng, scenario, depth);
    // Endpoint configuration: mostly two variables (the hard case).
    double r = qrng.NextDouble();
    std::string subject = "?x", object = "?y", select;
    if (r < 0.15) {
      subject = "<" + NodeIri(qrng.Uniform(scenario.nodes)) + ">";
      select = "?y";
    } else if (r < 0.30) {
      object = "<" + NodeIri(qrng.Uniform(scenario.nodes)) + ">";
      select = "?x";
    } else {
      select = "?x ?y";
    }
    std::string body = "  " + subject + " " + path + " " + object + " .\n";
    // A third of the queries add a second (join) atom, as gMark workloads
    // combine path atoms into conjunctions.
    if (qrng.Chance(0.33)) {
      std::string path2 = RandomPath(qrng, scenario, 0);
      body += "  ?y " + path2 + " ?z .\n";
      select += " ?z";
    }
    out.push_back("SELECT " + select + " WHERE {\n" + body + "}");
  }
  return out;
}

}  // namespace sparqlog::workloads
