#include "workloads/systems.h"

#include "core/engine.h"
#include "eval/algebra_eval.h"
#include "quirks/stardog_sim.h"
#include "quirks/virtuoso_sim.h"
#include "rdf/turtle_parser.h"
#include "rdf/writer.h"
#include "sparql/parser.h"

namespace sparqlog::workloads {

namespace {

void ConfigureContext(const Limits& limits, ExecContext* ctx) {
  if (limits.timeout_ms > 0) {
    ctx->set_deadline_after(std::chrono::milliseconds(limits.timeout_ms));
  }
  if (limits.tuple_budget > 0) ctx->set_tuple_budget(limits.tuple_budget);
}

RunRecord Fail(const Status& status, double load_s, double exec_s) {
  RunRecord r;
  r.outcome = ClassifyStatus(status);
  r.load_seconds = load_s;
  r.exec_seconds = exec_s;
  r.message = status.ToString();
  return r;
}

class SparqLogSystem : public System {
 public:
  SparqLogSystem(const rdf::Dataset* dataset, rdf::TermDictionary* dict,
                 Limits limits, bool ontology)
      : serialized_(rdf::WriteTrig(*dataset)),
        dict_(dict),
        limits_(limits),
        ontology_(ontology) {}

  const std::string& name() const override { return name_; }

  RunRecord Run(const std::string& query_text) override {
    core::Engine::Options options;
    options.ontology = ontology_;
    options.timeout = std::chrono::milliseconds(limits_.timeout_ms);
    options.tuple_budget = limits_.tuple_budget;

    // Loading: parse the serialized dataset and materialize the EDB (the
    // paper reloads per query; T_D is SparqLog's loading step).
    Stopwatch load_watch;
    rdf::Dataset local(dict_);
    Status st = rdf::ParseTurtle(serialized_, &local);
    if (!st.ok()) return Fail(st, load_watch.ElapsedSeconds(), 0.0);
    core::Engine engine(&local, dict_, options);
    st = engine.Load();
    double load_s = load_watch.ElapsedSeconds();
    if (!st.ok()) return Fail(st, load_s, 0.0);

    Stopwatch exec_watch;
    auto result = engine.ExecuteText(query_text);
    double exec_s = exec_watch.ElapsedSeconds();
    if (!result.ok()) return Fail(result.status(), load_s, exec_s);

    RunRecord r;
    r.load_seconds = load_s;
    r.exec_seconds = exec_s;
    r.plan_estimate_error = result->stats.plan_estimate_error;
    if (limits_.warm_repeat) {
      // Serving scenario: the same query again on the warm engine — the
      // program cache and stratum memo carry it.
      Stopwatch warm_watch;
      auto warm = engine.ExecuteText(query_text);
      if (!warm.ok()) return Fail(warm.status(), load_s, exec_s);
      r.warm_exec_seconds = warm_watch.ElapsedSeconds();
      r.plan_estimate_error = warm->stats.plan_estimate_error;
    }
    core::Engine::EngineStats es = engine.stats();
    r.program_cache_hits = es.program_hits;
    r.program_cache_rebinds = es.program_rebinds;
    r.program_cache_misses = es.program_misses;
    r.stratum_memo_hits = es.stratum_hits;
    r.stratum_memo_misses = es.stratum_misses;
    r.tuples_restored = es.tuples_restored;
    r.parallel_rounds = es.parallel_rounds;
    r.naive_rounds_sharded = es.naive_rounds_sharded;
    r.staged_tuples_merged = es.staged_tuples_merged;
    r.merge_fanout_width = es.merge_fanout_width;
    r.interning_contention = es.interning_contention;
    r.plans_computed = es.plans_computed;
    r.plan_cache_hits = es.plan_cache_hits;
    r.tc_kernels_hit = static_cast<uint32_t>(es.tc_kernels_hit);
    r.tc_dense_frontiers = static_cast<uint32_t>(es.tc_dense_frontiers);
    r.tc_sparse_frontiers = static_cast<uint32_t>(es.tc_sparse_frontiers);
    r.result = std::move(std::move(result).ValueOrDie().result);
    return r;
  }

 private:
  std::string serialized_;
  rdf::TermDictionary* dict_;
  Limits limits_;
  bool ontology_;
  std::string name_ = "SparqLog";
};

/// Shared implementation of the two direct-evaluation baselines.
class DirectSystem : public System {
 public:
  DirectSystem(std::string name, const rdf::Dataset* dataset,
               rdf::TermDictionary* dict, Limits limits,
               eval::EngineQuirks quirks)
      : name_(std::move(name)),
        serialized_(rdf::WriteTrig(*dataset)),
        dict_(dict),
        limits_(limits),
        quirks_(quirks) {}

  const std::string& name() const override { return name_; }

  RunRecord Run(const std::string& query_text) override {
    // "Loading": parse the serialized dataset into a fresh triple store
    // (indexes included), as a fresh server instance would.
    Stopwatch load_watch;
    rdf::Dataset local(dict_);
    Status lst = rdf::ParseTurtle(serialized_, &local);
    if (!lst.ok()) return Fail(lst, load_watch.ElapsedSeconds(), 0.0);
    double load_s = load_watch.ElapsedSeconds();

    auto parsed = sparql::ParseQuery(query_text, dict_);
    if (!parsed.ok()) return Fail(parsed.status(), load_s, 0.0);

    ExecContext ctx;
    ConfigureContext(limits_, &ctx);
    eval::AlgebraEvaluator evaluator(local, dict_, &ctx, quirks_);
    Stopwatch exec_watch;
    auto result = evaluator.EvalQuery(*parsed);
    double exec_s = exec_watch.ElapsedSeconds();
    if (!result.ok()) return Fail(result.status(), load_s, exec_s);

    RunRecord r;
    r.load_seconds = load_s;
    r.exec_seconds = exec_s;
    r.result = std::move(result).ValueOrDie();
    return r;
  }

 private:
  std::string name_;
  std::string serialized_;
  rdf::TermDictionary* dict_;
  Limits limits_;
  eval::EngineQuirks quirks_;
};

class StardogSystem : public System {
 public:
  StardogSystem(const rdf::Dataset* dataset, rdf::TermDictionary* dict,
                Limits limits)
      : serialized_(rdf::WriteTrig(*dataset)), dict_(dict), limits_(limits) {}

  const std::string& name() const override { return name_; }

  RunRecord Run(const std::string& query_text) override {
    auto parsed = sparql::ParseQuery(query_text, dict_);
    if (!parsed.ok()) return Fail(parsed.status(), 0.0, 0.0);

    ExecContext ctx;
    ConfigureContext(limits_, &ctx);
    // Loading: parse plus the naive ontology materialization.
    Stopwatch load_watch;
    rdf::Dataset local(dict_);
    Status st = rdf::ParseTurtle(serialized_, &local);
    if (!st.ok()) return Fail(st, load_watch.ElapsedSeconds(), 0.0);
    quirks::StardogSim sim(&local, dict_);
    st = sim.Materialize(&ctx);
    double load_s = load_watch.ElapsedSeconds();
    if (!st.ok()) return Fail(st, load_s, 0.0);

    Stopwatch exec_watch;
    auto result = sim.Execute(*parsed, &ctx);
    double exec_s = exec_watch.ElapsedSeconds();
    if (!result.ok()) return Fail(result.status(), load_s, exec_s);

    RunRecord r;
    r.load_seconds = load_s;
    r.exec_seconds = exec_s;
    r.result = std::move(result).ValueOrDie();
    return r;
  }

 private:
  std::string serialized_;
  rdf::TermDictionary* dict_;
  Limits limits_;
  std::string name_ = "Stardog";
};

}  // namespace

std::unique_ptr<System> MakeSparqLogSystem(const rdf::Dataset* dataset,
                                           rdf::TermDictionary* dict,
                                           Limits limits, bool ontology) {
  return std::make_unique<SparqLogSystem>(dataset, dict, limits, ontology);
}

std::unique_ptr<System> MakeFusekiSystem(const rdf::Dataset* dataset,
                                         rdf::TermDictionary* dict,
                                         Limits limits) {
  // Calibrated comparator cost model: Jena's iterator/Binding machinery
  // costs on the order of microseconds per produced binding (DESIGN.md §3).
  eval::EngineQuirks quirks;
  quirks.per_binding_overhead_ns = 6000;
  return std::make_unique<DirectSystem>("Fuseki", dataset, dict, limits,
                                        quirks);
}

std::unique_ptr<System> MakeVirtuosoSystem(const rdf::Dataset* dataset,
                                           rdf::TermDictionary* dict,
                                           Limits limits) {
  // Virtuoso is a compiled C engine: a few hundred ns per binding.
  eval::EngineQuirks quirks = quirks::VirtuosoQuirks();
  quirks.per_binding_overhead_ns = 300;
  return std::make_unique<DirectSystem>("Virtuoso", dataset, dict, limits,
                                        quirks);
}

std::unique_ptr<System> MakeStardogSystem(const rdf::Dataset* dataset,
                                          rdf::TermDictionary* dict,
                                          Limits limits) {
  return std::make_unique<StardogSystem>(dataset, dict, limits);
}

}  // namespace sparqlog::workloads
