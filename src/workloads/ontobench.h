#pragma once

#include <string>
#include <utility>
#include <vector>

#include "rdf/graph.h"

/// \file ontobench.h
/// The paper's ontology benchmark (§6.3, Figure 10): the SP2Bench dataset
/// extended with subClassOf / subPropertyOf statements, and six queries
/// combining reasoning with property paths. Queries 4 and 5 are the
/// recursive property paths with two variables on which SparqLog's
/// semi-naive Datalog evaluation dominates the materialize-then-evaluate
/// baseline ("Stardog").

namespace sparqlog::workloads {

struct OntoBenchOptions {
  size_t sp2b_triples = 6000;
  uint64_t seed = 4711;
};

/// SP2B data + ontology triples into `dataset`'s default graph.
void GenerateOntoBench(const OntoBenchOptions& options,
                       rdf::Dataset* dataset);

/// The six queries (q0..q5) as (name, text) pairs.
std::vector<std::pair<std::string, std::string>> OntoBenchQueries();

}  // namespace sparqlog::workloads
