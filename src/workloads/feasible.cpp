#include "workloads/feasible.h"

#include <cassert>

#include "util/hash.h"
#include "util/string_util.h"

namespace sparqlog::workloads {

namespace {

constexpr char kSwdf[] = "http://data.semanticweb.org/";
constexpr char kNamedGraph[] = "http://data.semanticweb.org/graph/swdf";

std::string Prefixes() {
  return
      "PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>\n"
      "PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#>\n"
      "PREFIX foaf: <http://xmlns.com/foaf/0.1/>\n"
      "PREFIX dc: <http://purl.org/dc/elements/1.1/>\n"
      "PREFIX swrc: <http://swrc.ontoware.org/ontology#>\n"
      "PREFIX swc: <http://data.semanticweb.org/ns/swc/ontology#>\n"
      "PREFIX xsd: <http://www.w3.org/2001/XMLSchema#>\n";
}

const char* kTopics[] = {"ontology", "linkeddata", "sparql", "reasoning",
                         "benchmark", "streams"};

}  // namespace

void GenerateSwdf(rdf::Dataset* dataset, uint64_t seed, size_t scale) {
  rdf::TermDictionary* dict = dataset->dict();
  rdf::Graph& g = dataset->default_graph();
  Rng rng(seed);

  auto iri = [&](const std::string& s) { return dict->InternIri(s); };
  auto lit = [&](const std::string& s) { return dict->InternLiteral(s); };

  rdf::TermId type = iri("http://www.w3.org/1999/02/22-rdf-syntax-ns#type");
  rdf::TermId label = iri("http://www.w3.org/2000/01/rdf-schema#label");
  rdf::TermId cls_person = iri("http://xmlns.com/foaf/0.1/Person");
  rdf::TermId cls_paper =
      iri("http://data.semanticweb.org/ns/swc/ontology#Paper");
  rdf::TermId cls_talk =
      iri("http://data.semanticweb.org/ns/swc/ontology#TalkEvent");
  rdf::TermId cls_org = iri("http://xmlns.com/foaf/0.1/Organization");
  rdf::TermId p_name = iri("http://xmlns.com/foaf/0.1/name");
  rdf::TermId p_homepage = iri("http://xmlns.com/foaf/0.1/homepage");
  rdf::TermId p_member = iri("http://xmlns.com/foaf/0.1/member");
  rdf::TermId p_title = iri("http://purl.org/dc/elements/1.1/title");
  rdf::TermId p_creator = iri("http://purl.org/dc/elements/1.1/creator");
  rdf::TermId p_year = iri("http://swrc.ontoware.org/ontology#year");
  rdf::TermId p_subject = iri("http://purl.org/dc/elements/1.1/subject");
  rdf::TermId p_part =
      iri("http://data.semanticweb.org/ns/swc/ontology#isPartOf");

  const char* first[] = {"alice", "bob",   "carol", "dave", "erin",
                         "frank", "grace", "heidi", "ivan", "judy"};

  std::vector<rdf::TermId> persons, orgs, papers;
  for (size_t i = 0; i < scale / 5; ++i) {
    rdf::TermId org = iri(std::string(kSwdf) + "org/" + std::to_string(i));
    g.Add(org, type, cls_org);
    g.Add(org, label, lit("Organization " + std::to_string(i)));
    orgs.push_back(org);
  }
  for (size_t i = 0; i < scale; ++i) {
    rdf::TermId person =
        iri(std::string(kSwdf) + "person/" + std::to_string(i));
    std::string name = std::string(first[rng.Uniform(10)]) + "-" +
                       std::to_string(rng.Uniform(scale));
    g.Add(person, type, cls_person);
    g.Add(person, p_name, lit(name));
    g.Add(person, label, lit(name));
    if (rng.Chance(0.4)) {
      g.Add(person, p_homepage,
            iri("http://people.example.org/" + std::to_string(i)));
    }
    if (!orgs.empty() && rng.Chance(0.6)) {
      g.Add(orgs[rng.Uniform(orgs.size())], p_member, person);
    }
    persons.push_back(person);
  }
  rdf::TermId conference =
      iri(std::string(kSwdf) + "conference/eswc/2009");
  g.Add(conference, label, lit("ESWC 2009"));
  for (size_t i = 0; i < scale; ++i) {
    rdf::TermId paper =
        iri(std::string(kSwdf) + "paper/" + std::to_string(i));
    g.Add(paper, type, cls_paper);
    g.Add(paper, p_title,
          lit("Paper about " + std::string(kTopics[rng.Uniform(6)]) + " " +
              std::to_string(i)));
    g.Add(paper, p_creator, persons[rng.Uniform(persons.size())]);
    g.Add(paper, p_year,
          dict->InternLiteral(std::to_string(2001 + rng.Uniform(9)),
                              "http://www.w3.org/2001/XMLSchema#integer"));
    g.Add(paper, p_subject, lit(kTopics[rng.Uniform(6)]));
    g.Add(paper, p_part, conference);
    if (rng.Chance(0.3)) {
      rdf::TermId talk =
          iri(std::string(kSwdf) + "talk/" + std::to_string(i));
      g.Add(talk, type, cls_talk);
      g.Add(talk, label, lit("Talk " + std::to_string(i)));
      g.Add(talk, p_part, conference);
      g.Add(paper, iri(std::string(kSwdf) + "ns/relatedToEvent"), talk);
    }
    papers.push_back(paper);
  }
  // Language-tagged labels for LANG/LANGMATCHES coverage.
  g.Add(conference, label,
        dict->InternLiteral("European Semantic Web Conference", "", "en"));
  g.Add(conference, label,
        dict->InternLiteral("Europaeische Semantic-Web-Konferenz", "", "de"));

  // Named graph: a copy of the default graph.
  rdf::TermId gname = iri(kNamedGraph);
  dataset->named_graph(gname).MergeFrom(g);
}

std::vector<std::pair<std::string, std::string>> FeasibleQueries() {
  const std::string p = Prefixes();
  std::vector<std::pair<std::string, std::string>> out;
  auto add = [&](const std::string& body) {
    out.emplace_back("f" + std::to_string(out.size() + 1), p + body);
  };

  // --- DISTINCT type scans (6) ---
  for (const char* cls :
       {"foaf:Person", "swc:Paper", "swc:TalkEvent", "foaf:Organization"}) {
    add(StringPrintf("SELECT DISTINCT ?x WHERE { ?x rdf:type %s . }", cls));
  }
  add("SELECT DISTINCT ?x ?l WHERE { ?x rdf:type foaf:Person . "
      "?x rdfs:label ?l . }");
  add("SELECT DISTINCT ?t WHERE { ?x rdf:type swc:Paper . "
      "?x dc:subject ?t . }");

  // --- numeric FILTERs (6) ---
  for (int year : {2003, 2005, 2007}) {
    add(StringPrintf(
        "SELECT ?x ?y WHERE { ?x swrc:year ?y . FILTER (?y > %d) }", year));
    add(StringPrintf(
        "SELECT DISTINCT ?x WHERE { ?x swrc:year ?y . FILTER (?y <= %d) }",
        year));
  }

  // --- REGEX (7) ---
  for (const char* pat : {"sparql", "ontology", "bench"}) {
    add(StringPrintf(
        "SELECT ?x WHERE { ?x dc:title ?t . FILTER regex(?t, \"%s\") }",
        pat));
  }
  for (const char* pat : {"SPARQL", "LINKED"}) {
    add(StringPrintf("SELECT DISTINCT ?x WHERE { ?x dc:title ?t . "
                     "FILTER regex(?t, \"%s\", \"i\") }",
                     pat));
  }
  add("SELECT ?x ?l WHERE { ?x rdfs:label ?l . "
      "FILTER regex(?l, \"^Organization\") }");
  add("SELECT DISTINCT ?l WHERE { ?x rdfs:label ?l . "
      "FILTER (regex(?l, \"alice\") || regex(?l, \"bob\")) }");

  // --- OPTIONAL (8) ---
  add("SELECT ?x ?h WHERE { ?x rdf:type foaf:Person . "
      "OPTIONAL { ?x foaf:homepage ?h } }");
  add("SELECT DISTINCT ?x ?h WHERE { ?x rdf:type foaf:Person . "
      "OPTIONAL { ?x foaf:homepage ?h } }");
  add("SELECT ?x ?n ?h WHERE { ?x foaf:name ?n . "
      "OPTIONAL { ?x foaf:homepage ?h } }");
  add("SELECT ?paper ?talk WHERE { ?paper rdf:type swc:Paper . "
      "OPTIONAL { ?paper <http://data.semanticweb.org/ns/relatedToEvent> "
      "?talk } }");
  add("SELECT ?x WHERE { ?x rdf:type foaf:Person . "
      "OPTIONAL { ?x foaf:homepage ?h . FILTER regex(?h, \"example\") } }");
  add("SELECT DISTINCT ?x ?y WHERE { ?x dc:creator ?y . "
      "OPTIONAL { ?y foaf:homepage ?h } FILTER (!BOUND(?h)) }");
  add("SELECT ?o ?m ?h WHERE { ?o foaf:member ?m . "
      "OPTIONAL { ?m foaf:homepage ?h } }");
  add("SELECT DISTINCT ?x WHERE { ?x rdf:type swc:Paper . "
      "OPTIONAL { ?x swrc:year ?y . FILTER (?y > 2005) } "
      "FILTER (!BOUND(?y)) }");

  // --- UNION (9) ---
  add("SELECT ?x WHERE { { ?x rdf:type swc:Paper } UNION "
      "{ ?x rdf:type swc:TalkEvent } }");
  add("SELECT DISTINCT ?x WHERE { { ?x rdf:type swc:Paper } UNION "
      "{ ?x rdf:type swc:TalkEvent } }");
  add("SELECT ?l WHERE { { ?x rdfs:label ?l } UNION { ?x dc:title ?l } }");
  add("SELECT DISTINCT ?l WHERE { { ?x rdfs:label ?l } UNION "
      "{ ?x dc:title ?l } }");
  add("SELECT ?x ?n WHERE { { ?x foaf:name ?n } UNION "
      "{ ?x rdfs:label ?n . ?x rdf:type foaf:Organization } }");
  add("SELECT DISTINCT ?p WHERE { { ?s ?p ?o . ?s rdf:type foaf:Person } "
      "UNION { ?s ?p ?o . ?s rdf:type swc:Paper } }");
  add("SELECT ?x WHERE { { ?x foaf:homepage ?h } UNION "
      "{ ?x <http://data.semanticweb.org/ns/relatedToEvent> ?t } }");
  add("SELECT DISTINCT ?x ?y WHERE { { ?x dc:creator ?y } UNION "
      "{ ?y dc:creator ?x } }");
  add("SELECT ?n WHERE { { ?x foaf:name ?n . ?x rdf:type foaf:Person } "
      "UNION { ?x foaf:name ?n } }");

  // --- GRAPH (8) ---
  add("SELECT ?x WHERE { GRAPH <http://data.semanticweb.org/graph/swdf> "
      "{ ?x rdf:type swc:Paper } }");
  add("SELECT DISTINCT ?x WHERE { GRAPH "
      "<http://data.semanticweb.org/graph/swdf> { ?x rdf:type foaf:Person } "
      "}");
  add("SELECT ?g ?x WHERE { GRAPH ?g { ?x rdf:type swc:TalkEvent } }");
  add("SELECT DISTINCT ?g WHERE { GRAPH ?g { ?s ?p ?o } }");
  add("SELECT ?x ?t WHERE { GRAPH <http://data.semanticweb.org/graph/swdf> "
      "{ ?x dc:title ?t . FILTER regex(?t, \"reasoning\") } }");
  add("SELECT ?x WHERE { GRAPH ?g { ?x foaf:homepage ?h } }");
  add("SELECT DISTINCT ?x ?n WHERE { GRAPH "
      "<http://data.semanticweb.org/graph/swdf> { ?x foaf:name ?n . "
      "OPTIONAL { ?x foaf:homepage ?h } FILTER (!BOUND(?h)) } }");
  add("SELECT ?x WHERE { GRAPH <http://data.semanticweb.org/graph/swdf> "
      "{ { ?x rdf:type swc:Paper } UNION { ?x rdf:type foaf:Person } } }");

  // --- ORDER BY incl. complex keys (7) ---
  add("SELECT ?x ?n WHERE { ?x foaf:name ?n } ORDER BY ?n");
  add("SELECT ?x ?y WHERE { ?x swrc:year ?y } ORDER BY DESC(?y)");
  add("SELECT ?x ?n ?h WHERE { ?x foaf:name ?n . "
      "OPTIONAL { ?x foaf:homepage ?h } } ORDER BY !BOUND(?h) ?n");
  add("SELECT DISTINCT ?t WHERE { ?x dc:title ?t } ORDER BY STRLEN(?t)");
  add("SELECT ?x ?y WHERE { ?x swrc:year ?y } ORDER BY (?y * -1)");
  add("SELECT ?x ?n WHERE { ?x foaf:name ?n } ORDER BY DESC(UCASE(?n))");
  add("SELECT ?l WHERE { ?x rdfs:label ?l } ORDER BY ?l ?x");

  // --- string / type builtins (8) ---
  add("SELECT ?n WHERE { ?x foaf:name ?n . "
      "FILTER (UCASE(?n) = \"ALICE-1\") }");
  add("SELECT DISTINCT ?x WHERE { ?x dc:title ?t . "
      "FILTER CONTAINS(?t, \"streams\") }");
  add("SELECT ?x WHERE { ?x dc:title ?t . "
      "FILTER STRSTARTS(?t, \"Paper\") }");
  add("SELECT ?x ?y WHERE { ?x swrc:year ?y . "
      "FILTER (DATATYPE(?y) = xsd:integer) }");
  add("SELECT ?x ?l WHERE { ?x rdfs:label ?l . "
      "FILTER (LANG(?l) = \"en\") }");
  add("SELECT ?x ?l WHERE { ?x rdfs:label ?l . "
      "FILTER LANGMATCHES(LANG(?l), \"de\") }");
  add("SELECT ?x WHERE { ?x rdfs:label ?l . "
      "FILTER (STRLEN(?l) > 20) }");
  add("SELECT DISTINCT ?x WHERE { ?x foaf:name ?n . "
      "FILTER (STR(?x) != \"\" && isIRI(?x)) }");

  // --- multi-join BGPs (8) ---
  add("SELECT ?paper ?name WHERE { ?paper rdf:type swc:Paper . "
      "?paper dc:creator ?person . ?person foaf:name ?name . }");
  add("SELECT DISTINCT ?org ?name WHERE { ?org foaf:member ?person . "
      "?person foaf:name ?name . ?paper dc:creator ?person . }");
  add("SELECT ?paper ?talk ?conf WHERE { ?paper "
      "<http://data.semanticweb.org/ns/relatedToEvent> ?talk . "
      "?talk swc:isPartOf ?conf . ?paper swc:isPartOf ?conf . }");
  add("SELECT ?a ?b WHERE { ?pa dc:creator ?a . ?pb dc:creator ?b . "
      "?pa dc:subject ?t . ?pb dc:subject ?t . FILTER (?a != ?b) }");
  add("SELECT DISTINCT ?person WHERE { ?paper dc:creator ?person . "
      "?paper swrc:year ?y . ?paper dc:subject \"sparql\" . "
      "FILTER (?y >= 2004) }");
  add("SELECT ?s ?p ?o WHERE { ?s ?p ?o . "
      "?s rdf:type swc:TalkEvent . }");
  add("SELECT ?x ?n WHERE { ?x rdf:type foaf:Person . ?x foaf:name ?n . "
      "?org foaf:member ?x . ?org rdfs:label ?ol . "
      "FILTER regex(?ol, \"Organization 1\") }");
  add("SELECT DISTINCT ?t WHERE { ?x dc:subject ?t . ?x swrc:year ?y . "
      "FILTER (?y = 2005 || ?y = 2006) }");

  // --- ASK (4) ---
  add("ASK { ?x rdf:type swc:Paper . ?x dc:subject \"reasoning\" }");
  add("ASK { ?x foaf:name \"nonexistent-person\" }");
  add("ASK { GRAPH <http://data.semanticweb.org/graph/swdf> "
      "{ ?x rdf:type foaf:Organization } }");
  add("ASK { ?x swrc:year ?y . FILTER (?y > 2100) }");

  // --- MINUS (3) ---
  add("SELECT ?x WHERE { ?x rdf:type foaf:Person . "
      "MINUS { ?x foaf:homepage ?h } }");
  add("SELECT DISTINCT ?x WHERE { ?x rdf:type swc:Paper . "
      "MINUS { ?x <http://data.semanticweb.org/ns/relatedToEvent> ?t } }");
  add("SELECT ?x ?n WHERE { ?x foaf:name ?n . "
      "MINUS { ?org foaf:member ?x . ?org rdfs:label ?l } }");

  // --- mixed combinations (3) ---
  add("SELECT DISTINCT ?x ?n WHERE { { ?x foaf:name ?n } UNION "
      "{ ?x rdfs:label ?n } OPTIONAL { ?x foaf:homepage ?h } "
      "FILTER (!BOUND(?h)) } ORDER BY ?n");
  add("SELECT DISTINCT ?p ?t WHERE { ?p rdf:type swc:Paper . "
      "?p dc:title ?t . { ?p dc:subject \"ontology\" } UNION "
      "{ ?p dc:subject \"sparql\" } } ORDER BY DESC(?t)");
  add("SELECT ?x ?y WHERE { ?x dc:creator ?y . "
      "OPTIONAL { ?y foaf:homepage ?h . FILTER CONTAINS(STR(?h), "
      "\"people\") } FILTER (BOUND(?h)) }");

  assert(out.size() == 77);
  return out;
}

}  // namespace sparqlog::workloads
