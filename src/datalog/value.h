#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "rdf/dictionary.h"
#include "util/bucket_array.h"
#include "util/hash.h"

/// \file value.h
/// Datalog values. A Value is either an interned RDF term (low 32 bits,
/// tag 0) or an interned Skolem term (tag 1). Skolem terms implement the
/// paper's duplicate-preservation model (§4.3, Appendix C): tuple IDs are
/// Skolem terms `f<ruleId>(positive body values...)`, so identical
/// derivations collapse (fixpoint terminates) while distinct derivations
/// stay distinguishable (bag semantics survives set semantics).

namespace sparqlog::datalog {

using Value = uint64_t;

inline constexpr uint64_t kSkolemTag = 1ULL << 32;

inline bool IsSkolemValue(Value v) { return (v & ~0xffffffffULL) != 0; }
inline Value ValueFromTerm(rdf::TermId t) { return t; }
inline rdf::TermId TermFromValue(Value v) {
  return static_cast<rdf::TermId>(v & 0xffffffffULL);
}

/// The distinguished SPARQL-null value: the undef term.
inline constexpr Value kNullValue = rdf::TermDictionary::kUndef;

/// A structured Skolem term: function symbol + argument values.
struct SkolemTerm {
  uint32_t fn = 0;
  std::vector<Value> args;

  bool operator==(const SkolemTerm& o) const {
    return fn == o.fn && args == o.args;
  }
};

struct SkolemTermHash {
  size_t operator()(const SkolemTerm& t) const {
    size_t seed = std::hash<uint32_t>()(t.fn);
    for (Value v : t.args) HashCombine(seed, std::hash<Value>()(v));
    return seed;
  }
};

/// Thread-safe interner for Skolem terms. Owned by the evaluation
/// session; TermIds in Skolem arguments refer to the session's
/// TermDictionary.
///
/// Same concurrency contract as rdf::TermDictionary: `get` /
/// `FunctionName` are lock-free over BucketArray slots that never move,
/// `Intern` stripes its reverse index by term hash and serializes id
/// allocation on one mutex, and id numbering (not term identity) is the
/// only thing that can vary across runs when multiple workers intern.
/// This is what lets existential (Skolem-building) rules run on the
/// sharded parallel fixpoint path instead of falling back to serial.
class SkolemStore {
 public:
  SkolemStore() = default;
  SkolemStore(const SkolemStore&) = delete;
  SkolemStore& operator=(const SkolemStore&) = delete;

  /// Interns a function symbol name (e.g. "f3a"), returning its id.
  /// Called at translation time (serially); safe concurrently anyway.
  uint32_t InternFunction(const std::string& name);

  const std::string& FunctionName(uint32_t fn) const { return fn_names_[fn]; }

  /// Interns a Skolem term, returning its Value (tagged handle).
  Value Intern(uint32_t fn, std::vector<Value> args);

  const SkolemTerm& get(Value v) const {
    return terms_[static_cast<uint32_t>((v >> 32) - 1)];
  }

  size_t size() const { return num_terms_.load(std::memory_order_acquire); }

  /// Failed lock acquisitions since construction (see
  /// TermDictionary::intern_contention).
  uint64_t intern_contention() const {
    return contention_.load(std::memory_order_relaxed);
  }

  /// Debug rendering: ["f3", <iri>, ...].
  std::string Render(Value v, const rdf::TermDictionary& dict) const;

 private:
  static constexpr size_t kStripes = 16;

  struct Stripe {
    std::mutex mu;
    std::unordered_map<SkolemTerm, uint32_t, SkolemTermHash> index;
  };

  BucketArray<std::string, 6> fn_names_;
  std::atomic<uint32_t> num_fns_{0};
  std::unordered_map<std::string, uint32_t> fn_index_;  // under alloc_mu_
  BucketArray<SkolemTerm> terms_;
  std::atomic<uint32_t> num_terms_{0};
  mutable std::array<Stripe, kStripes> stripes_;
  std::mutex alloc_mu_;
  mutable std::atomic<uint64_t> contention_{0};
};

/// Renders any Value (term or Skolem) for diagnostics.
std::string RenderValue(Value v, const rdf::TermDictionary& dict,
                        const SkolemStore& skolems);

}  // namespace sparqlog::datalog
