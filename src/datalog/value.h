#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "rdf/dictionary.h"
#include "util/hash.h"

/// \file value.h
/// Datalog values. A Value is either an interned RDF term (low 32 bits,
/// tag 0) or an interned Skolem term (tag 1). Skolem terms implement the
/// paper's duplicate-preservation model (§4.3, Appendix C): tuple IDs are
/// Skolem terms `f<ruleId>(positive body values...)`, so identical
/// derivations collapse (fixpoint terminates) while distinct derivations
/// stay distinguishable (bag semantics survives set semantics).

namespace sparqlog::datalog {

using Value = uint64_t;

inline constexpr uint64_t kSkolemTag = 1ULL << 32;

inline bool IsSkolemValue(Value v) { return (v & ~0xffffffffULL) != 0; }
inline Value ValueFromTerm(rdf::TermId t) { return t; }
inline rdf::TermId TermFromValue(Value v) {
  return static_cast<rdf::TermId>(v & 0xffffffffULL);
}

/// The distinguished SPARQL-null value: the undef term.
inline constexpr Value kNullValue = rdf::TermDictionary::kUndef;

/// A structured Skolem term: function symbol + argument values.
struct SkolemTerm {
  uint32_t fn = 0;
  std::vector<Value> args;

  bool operator==(const SkolemTerm& o) const {
    return fn == o.fn && args == o.args;
  }
};

struct SkolemTermHash {
  size_t operator()(const SkolemTerm& t) const {
    size_t seed = std::hash<uint32_t>()(t.fn);
    for (Value v : t.args) HashCombine(seed, std::hash<Value>()(v));
    return seed;
  }
};

/// Interner for Skolem terms. Owned by the evaluation session; TermIds in
/// Skolem arguments refer to the session's TermDictionary.
class SkolemStore {
 public:
  /// Interns a function symbol name (e.g. "f3a"), returning its id.
  uint32_t InternFunction(const std::string& name);

  const std::string& FunctionName(uint32_t fn) const { return fn_names_[fn]; }

  /// Interns a Skolem term, returning its Value (tagged handle).
  Value Intern(uint32_t fn, std::vector<Value> args);

  const SkolemTerm& get(Value v) const {
    return terms_[static_cast<size_t>((v >> 32) - 1)];
  }

  size_t size() const { return terms_.size(); }

  /// Debug rendering: ["f3", <iri>, ...].
  std::string Render(Value v, const rdf::TermDictionary& dict) const;

 private:
  std::vector<std::string> fn_names_;
  std::unordered_map<std::string, uint32_t> fn_index_;
  std::vector<SkolemTerm> terms_;
  std::unordered_map<SkolemTerm, uint32_t, SkolemTermHash> term_index_;
};

/// Renders any Value (term or Skolem) for diagnostics.
std::string RenderValue(Value v, const rdf::TermDictionary& dict,
                        const SkolemStore& skolems);

}  // namespace sparqlog::datalog
