#pragma once

#include <cstdint>
#include <functional>

#include "datalog/value.h"
#include "util/hash.h"

/// \file stride.h
/// Compile-time stride (arity) dispatch for the columnar hot paths.
///
/// A TupleStore arena is strided by arity: every row access multiplies by
/// a runtime arity and every row comparison/hash loops over it. The RDF
/// translation only ever materializes relations of arity <= 4 (triple/4,
/// subjectOrObject/2, the unary term-kind predicates), and query-derived
/// relations are small-arity-dominated too, so the engine specializes
/// those strides at compile time: `WithStride` maps a runtime arity to a
/// `FixedStride<K>` tag whose `arity()` is a constant expression, letting
/// the row loops below unroll and `base + i * K` compile to shifted
/// addressing instead of a dynamic multiply. Arities beyond 4 fall back
/// to `DynamicStride`, which runs the identical code with a runtime
/// bound — both tags must stay behaviorally equivalent (the dedup table
/// in particular is shared between paths, so `StrideHashRow` has to
/// agree bit-for-bit with `HashRange` + `Fmix64`).

namespace sparqlog::datalog {

/// Compile-time stride tag: `arity()` is a constant expression.
template <uint32_t K>
struct FixedStride {
  static constexpr uint32_t kArity = K;
  constexpr uint32_t arity() const { return K; }
};

/// Runtime stride tag for arities beyond the specialized range.
struct DynamicStride {
  uint32_t k;
  uint32_t arity() const { return k; }
};

/// Invokes `fn` with the stride tag for `arity`: `FixedStride<K>` for the
/// hot K <= 4 case, `DynamicStride` otherwise. The callable is
/// instantiated once per stride, so the switch runs once per call site
/// (e.g. per bulk load or per shard scan), not once per row.
template <typename Fn>
decltype(auto) WithStride(uint32_t arity, Fn&& fn) {
  switch (arity) {
    case 0: return fn(FixedStride<0>{});
    case 1: return fn(FixedStride<1>{});
    case 2: return fn(FixedStride<2>{});
    case 3: return fn(FixedStride<3>{});
    case 4: return fn(FixedStride<4>{});
    default: return fn(DynamicStride{arity});
  }
}

/// Row hash under a stride tag. Delegates to the shared HashRange +
/// Fmix64 so fixed- and dynamic-stride inserts (which share one
/// open-addressing table, rehashed dynamically by `TupleStore::Rehash`)
/// can never disagree; with a FixedStride tag the loop bound is a
/// constant expression, so the range loop still unrolls.
template <typename Stride>
inline uint64_t StrideHashRow(Stride s, const Value* row) {
  return Fmix64(HashRange(row, row + s.arity()));
}

template <typename Stride>
inline bool StrideRowEquals(Stride s, const Value* a, const Value* b) {
  for (uint32_t i = 0; i < s.arity(); ++i) {
    if (a[i] != b[i]) return false;
  }
  return true;
}

}  // namespace sparqlog::datalog
