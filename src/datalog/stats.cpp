#include "datalog/stats.h"

#include <algorithm>

namespace sparqlog::datalog {

namespace {

/// Column layout of the triple relation (data_translator.h).
constexpr size_t kSubjectCol = 0;
constexpr size_t kPredicateCol = 1;
constexpr size_t kObjectCol = 2;


/// Distinct values in a column, by sorting a flat copy: one allocation
/// and a cache-friendly pass, where hash-set insertion paid an allocator
/// hit and a random probe per row. Collection runs on the update publish
/// path, so its constant factor is serving latency.
uint64_t DistinctInColumn(const Relation& rel, uint32_t col,
                          std::vector<Value>* scratch) {
  scratch->clear();
  scratch->reserve(rel.size());
  for (RowRef row : rel.rows()) scratch->push_back(row[col]);
  std::sort(scratch->begin(), scratch->end());
  return static_cast<uint64_t>(
      std::unique(scratch->begin(), scratch->end()) - scratch->begin());
}

}  // namespace

void EdbStats::Collect(const Database& edb, PredicateId triple_pred) {
  relations_.clear();
  per_predicate_.clear();
  signatures_.clear();
  triple_pred_ = triple_pred;
  has_triple_ = false;
  char_sets_ok_ = false;
  total_triples_ = 0;

  const Relation* triples = edb.Find(triple_pred);
  const bool refine = triples != nullptr && triples->arity() >= 3 &&
                      triples->size() <= kMaxExactRows;

  std::vector<Value> scratch;
  for (PredicateId pred : edb.Predicates()) {
    const Relation* rel = edb.Find(pred);
    if (rel == nullptr) continue;
    RelationStats rs;
    rs.rows = rel->size();
    rs.distinct.assign(rel->arity(), rs.rows);
    // Relations are deduplicated sets, so an arity-1 relation's only
    // column holds exactly `rows` distinct values — no pass needed.
    // The triple relation's s/p columns fall out of the refinement
    // passes below; only its remaining columns sort here.
    if (rs.rows <= kMaxExactRows && rel->arity() > 1) {
      for (uint32_t c = 0; c < rel->arity(); ++c) {
        if (refine && rel == triples &&
            (c == kSubjectCol || c == kPredicateCol)) {
          continue;  // patched from the (s,p)/(p,s) passes
        }
        rs.distinct[c] = DistinctInColumn(*rel, c, &scratch);
      }
    }
    relations_.emplace(pred, std::move(rs));
  }

  // RDF refinements over the triple relation.
  if (!refine) return;
  has_triple_ = true;
  total_triples_ = triples->size();

  // Flat (p,s) / (p,o) / (s,p) copies, each sorted once; every grouped
  // statistic then reads off a linear scan. These are exact counts, not
  // estimates — relations are deduplicated sets.
  const size_t n = triples->size();
  std::vector<std::pair<Value, Value>> ps;
  std::vector<std::pair<Value, Value>> po;
  std::vector<std::pair<Value, Value>> sp;
  ps.reserve(n);
  po.reserve(n);
  sp.reserve(n);
  for (RowRef row : triples->rows()) {
    ps.emplace_back(row[kPredicateCol], row[kSubjectCol]);
    po.emplace_back(row[kPredicateCol], row[kObjectCol]);
    sp.emplace_back(row[kSubjectCol], row[kPredicateCol]);
  }
  std::sort(ps.begin(), ps.end());
  std::sort(po.begin(), po.end());
  std::sort(sp.begin(), sp.end());

  // Per-predicate triple count and distinct subject/object counts: ps
  // and po share group boundaries (both are keyed by predicate).
  uint64_t distinct_preds = 0;
  for (size_t i = 0; i < n;) {
    const Value p = ps[i].first;
    size_t end = i;
    PredicateTermStats stats;
    while (end < n && ps[end].first == p) {
      if (end == i || ps[end].second != ps[end - 1].second) {
        ++stats.distinct_subjects;
      }
      ++end;
    }
    for (size_t j = i; j < end; ++j) {
      if (j == i || po[j].second != po[j - 1].second) {
        ++stats.distinct_objects;
      }
    }
    stats.triples = end - i;
    per_predicate_.emplace(p, stats);
    ++distinct_preds;
    i = end;
  }

  // Characteristic sets: group subjects by their sorted distinct
  // predicate signature. Signature explosion (heterogeneous data) is the
  // failure mode, so the count is capped rather than the pass aborted.
  std::unordered_map<uint64_t, size_t> sig_index;  // signature hash -> slot
  std::vector<Value> preds;
  uint64_t distinct_subjects = 0;
  bool capped = false;
  for (size_t i = 0; i < n;) {
    const Value s = sp[i].first;
    preds.clear();
    while (i < n && sp[i].first == s) {
      if (preds.empty() || preds.back() != sp[i].second) {
        preds.push_back(sp[i].second);
      }
      ++i;
    }
    ++distinct_subjects;
    if (capped) continue;  // keep scanning for the subject count
    uint64_t h = Fmix64(HashRange(preds.data(), preds.data() + preds.size()));
    auto [it, fresh] = sig_index.emplace(h, signatures_.size());
    if (fresh) {
      if (signatures_.size() >= kMaxSignatures) {
        signatures_.clear();
        capped = true;  // char_sets_ok_ stays false
        continue;
      }
      signatures_.push_back({preds, 0});
    }
    // Hash collisions between distinct signatures merge their subject
    // counts; at 64 bits that is noise within an estimator's tolerance.
    ++signatures_[it->second].second;
  }
  char_sets_ok_ = !capped;

  auto tit = relations_.find(triple_pred);
  if (tit != relations_.end()) {
    if (tit->second.distinct.size() > kSubjectCol) {
      tit->second.distinct[kSubjectCol] = distinct_subjects;
    }
    if (tit->second.distinct.size() > kPredicateCol) {
      tit->second.distinct[kPredicateCol] = distinct_preds;
    }
  }
}

const RelationStats* EdbStats::Find(PredicateId pred) const {
  auto it = relations_.find(pred);
  return it == relations_.end() ? nullptr : &it->second;
}

const PredicateTermStats* EdbStats::FindPredicateTerm(Value p) const {
  if (!has_triple_) return nullptr;
  auto it = per_predicate_.find(p);
  return it == per_predicate_.end() ? nullptr : &it->second;
}

bool EdbStats::CountSubjectsWithAll(const std::vector<Value>& preds,
                                    uint64_t* count) const {
  if (!char_sets_ok_) return false;
  uint64_t total = 0;
  for (const auto& [signature, subjects] : signatures_) {
    bool all = true;
    for (Value p : preds) {
      if (!std::binary_search(signature.begin(), signature.end(), p)) {
        all = false;
        break;
      }
    }
    if (all) total += subjects;
  }
  *count = total;
  return true;
}

}  // namespace sparqlog::datalog
