#include "datalog/stats.h"

#include <algorithm>
#include <unordered_set>

namespace sparqlog::datalog {

namespace {

/// Column layout of the triple relation (data_translator.h).
constexpr size_t kSubjectCol = 0;
constexpr size_t kPredicateCol = 1;
constexpr size_t kObjectCol = 2;

}  // namespace

void EdbStats::Collect(const Database& edb, PredicateId triple_pred) {
  relations_.clear();
  per_predicate_.clear();
  signatures_.clear();
  triple_pred_ = triple_pred;
  has_triple_ = false;
  char_sets_ok_ = false;
  total_triples_ = 0;

  for (PredicateId pred : edb.Predicates()) {
    const Relation* rel = edb.Find(pred);
    if (rel == nullptr) continue;
    RelationStats rs;
    rs.rows = rel->size();
    rs.distinct.assign(rel->arity(), rs.rows);
    if (rs.rows <= kMaxExactRows && rel->arity() > 0) {
      // One pass, one hash set per column. Relations are deduplicated
      // sets, so these are exact distinct counts, not estimates.
      std::vector<std::unordered_set<Value>> seen(rel->arity());
      for (auto& s : seen) s.reserve(rel->size());
      for (RowRef row : rel->rows()) {
        for (uint32_t c = 0; c < rel->arity(); ++c) seen[c].insert(row[c]);
      }
      for (uint32_t c = 0; c < rel->arity(); ++c) {
        rs.distinct[c] = seen[c].size();
      }
    }
    relations_.emplace(pred, std::move(rs));
  }

  // RDF refinements over the triple relation.
  const Relation* triples = edb.Find(triple_pred);
  if (triples == nullptr || triples->arity() < 3 ||
      triples->size() > kMaxExactRows) {
    return;
  }
  has_triple_ = true;
  total_triples_ = triples->size();

  struct PerPredicate {
    uint64_t count = 0;
    std::unordered_set<Value> subjects;
    std::unordered_set<Value> objects;
  };
  std::unordered_map<Value, PerPredicate> per_p;
  std::unordered_map<Value, std::vector<Value>> subject_preds;
  for (RowRef row : triples->rows()) {
    PerPredicate& pp = per_p[row[kPredicateCol]];
    ++pp.count;
    pp.subjects.insert(row[kSubjectCol]);
    pp.objects.insert(row[kObjectCol]);
    subject_preds[row[kSubjectCol]].push_back(row[kPredicateCol]);
  }
  per_predicate_.reserve(per_p.size());
  for (auto& [p, pp] : per_p) {
    per_predicate_.emplace(
        p, PredicateTermStats{pp.count, pp.subjects.size(),
                              pp.objects.size()});
  }

  // Characteristic sets: group subjects by their sorted distinct
  // predicate signature. Signature explosion (heterogeneous data) is the
  // failure mode, so the count is capped rather than the pass aborted.
  std::unordered_map<uint64_t, size_t> sig_index;  // signature hash -> slot
  for (auto& [subject, preds] : subject_preds) {
    std::sort(preds.begin(), preds.end());
    preds.erase(std::unique(preds.begin(), preds.end()), preds.end());
    uint64_t h = Fmix64(HashRange(preds.data(), preds.data() + preds.size()));
    auto [it, fresh] = sig_index.emplace(h, signatures_.size());
    if (fresh) {
      if (signatures_.size() >= kMaxSignatures) {
        signatures_.clear();
        return;  // capped: char_sets_ok_ stays false
      }
      signatures_.push_back({preds, 0});
    }
    // Hash collisions between distinct signatures merge their subject
    // counts; at 64 bits that is noise within an estimator's tolerance.
    ++signatures_[it->second].second;
  }
  char_sets_ok_ = true;
}

const RelationStats* EdbStats::Find(PredicateId pred) const {
  auto it = relations_.find(pred);
  return it == relations_.end() ? nullptr : &it->second;
}

const PredicateTermStats* EdbStats::FindPredicateTerm(Value p) const {
  if (!has_triple_) return nullptr;
  auto it = per_predicate_.find(p);
  return it == per_predicate_.end() ? nullptr : &it->second;
}

bool EdbStats::CountSubjectsWithAll(const std::vector<Value>& preds,
                                    uint64_t* count) const {
  if (!char_sets_ok_) return false;
  uint64_t total = 0;
  for (const auto& [signature, subjects] : signatures_) {
    bool all = true;
    for (Value p : preds) {
      if (!std::binary_search(signature.begin(), signature.end(), p)) {
        all = false;
        break;
      }
    }
    if (all) total += subjects;
  }
  *count = total;
  return true;
}

}  // namespace sparqlog::datalog
