#pragma once

#include <cstdint>
#include <optional>
#include <unordered_set>
#include <utility>
#include <vector>

#include "datalog/ast.h"
#include "datalog/relation.h"
#include "util/exec_context.h"
#include "util/status.h"
#include "util/thread_pool.h"

/// \file tc_kernel.h
/// Dedicated transitive-closure kernel for TC-shaped recursive strata —
/// the pattern every recursive property path (`p+`, `p*`, `p{n,}`,
/// alternations under closure) translates to: one linear recursive rule
///
///   ans(..., A, ..., B, ...) :- ans(..., A, ..., J, ...), step(..., J, ..., B, ...)
///
/// whose head re-enters the recursive atom with only the J-column
/// advanced. The generic semi-naive fixpoint re-joins the whole delta
/// against the step relation every round and re-derives each (A, B)
/// pair once per distinct path; the kernel instead freezes the step
/// relation into a CSR adjacency once, groups the existing rows by
/// their carry value A, and completes each group with a BFS that
/// touches every (group, node) pair at most once — linear in edges
/// instead of quadratic in paths.
///
/// Frontier bookkeeping adapts to the node universe: bitsets with
/// touched-word clearing when the graph is dense relative to its
/// universe, sorted id vectors with set_difference rounds when sparse.
/// The kernel honors the ExecContext budget/deadline (paced per edge
/// traversed, same stride discipline as the join inner loop) and the
/// evaluator's sharding knob: with a thread pool, carry groups are
/// dealt across workers that stage rows locally and merge at a single
/// barrier in worker order, so results stay deterministic for a fixed
/// thread count.
///
/// Detection is purely structural and conservative: anything with a
/// second shared variable (e.g. GRAPH ?g closures), nonlinear
/// recursion, negation, or non-constant extra head columns falls back
/// to the generic fixpoint, which remains the differential ground
/// truth (tests/path_kernel_test.cpp).

namespace sparqlog::datalog {

/// The detected closure-rule layout. Column indices address the
/// recursive atom and the head interchangeably (same predicate, and
/// detection proves the positional correspondence).
struct TcShape {
  uint32_t rule_index = 0;  ///< closure rule, index into program.rules
  uint32_t rec_atom = 0;    ///< body index of the recursive atom
  uint32_t edge_atom = 0;   ///< body index of the step atom
  uint32_t join_col = 0;    ///< J in the rec atom == B column of the head
  uint32_t carry_col = 0;   ///< A in the rec atom == A column of the head
  uint32_t edge_join_col = 0;  ///< J in the step atom
  uint32_t edge_out_col = 0;   ///< B in the step atom
  /// Constant columns of the recursive atom: seed rows must match these
  /// (and the head repeats them, which detection verified).
  std::vector<std::pair<uint32_t, Value>> rec_consts;
  /// Constant columns of the step atom: edge rows must match these.
  std::vector<std::pair<uint32_t, Value>> edge_consts;
  /// Head row template: every column fixed per derivation (constants and
  /// builtin-assigned values such as the bag-mode empty tuple id), with
  /// carry_col / join_col overwritten per emission.
  std::vector<Value> head_template;
};

/// Detects the TC shape in one recursive stratum: the stratum's rules
/// must contain exactly one (rule, atom) recursive dependency, and that
/// rule must be a linear closure rule as described above. Returns
/// nullopt when the stratum needs the generic fixpoint.
std::optional<TcShape> DetectTcShape(
    const Program& program, const std::vector<uint32_t>& stratum_rules,
    const std::unordered_set<PredicateId>& stratum_heads);

/// One kernel run's outcome, folded into EvalStats by the evaluator.
struct TcKernelStats {
  uint64_t inserted = 0;  ///< fresh head tuples materialized
  uint64_t emitted = 0;   ///< candidate emissions (≈ rule firings)
  bool dense = false;     ///< bitset frontiers (vs. sorted-vector)
};

/// Completes the closure of the rule's head relation under the step
/// relation. Must run after the stratum's non-closure rules have seeded
/// the head relation (the kernel's seeds are exactly the rows present).
/// New rows are tagged `insert_round`. `pool` may be null (serial);
/// with a pool of > 1 workers, carry groups shard across it.
Result<TcKernelStats> RunTcKernel(const TcShape& shape,
                                  const Program& program, Database* edb,
                                  Database* idb, uint32_t insert_round,
                                  ExecContext* ctx, uint32_t* clock_phase,
                                  ThreadPool* pool);

}  // namespace sparqlog::datalog
