#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "datalog/ast.h"
#include "datalog/relation.h"
#include "datalog/value.h"

/// \file stats.h
/// Cheap EDB statistics for the cost-based join planner (planner.h).
///
/// `EdbStats::Collect` makes one pass over a materialized EDB database
/// and records, per relation, the exact cardinality and per-column
/// distinct counts (relations are sets, so distinct(col) <= rows holds by
/// construction). For the designated `triple` relation it additionally
/// builds two RDF-specific refinements, both inspired by the statistics
/// real triple stores keep (RDF-3X's aggregated indexes, RDF-TDAA's
/// characteristic sets):
///
///  * a per-predicate-term histogram: for every constant P value the
///    number of triples and the distinct subject / object counts. SPARQL
///    triple patterns almost always carry a constant predicate, so this
///    is the single statistic that separates a 10-row pattern from a
///    10,000-row one when both live in the same `triple` relation;
///  * characteristic sets: the distinct predicate *signatures* of
///    subjects (the sorted set of P values each subject occurs with) and
///    how many subjects share each signature. A subject-star join over
///    constant predicates {p1..pk} matches exactly the subjects whose
///    signature is a superset of {p1..pk} — no independence assumption
///    needed. Collection is capped (kMaxSignatures distinct signatures,
///    kMaxExactRows triples); past the cap the planner falls back to the
///    independence-based estimate.
///
/// Freshness: the engine recollects after every EDB (re)build — the cold
/// Load(), the rebuild a `Dataset::Generation` bump forces, and the
/// query-scoped FROM/FROM NAMED EDBs — and stamps the stats with the
/// generation they were collected at, so cached plans can detect they
/// were made against stale statistics (see ProgramCache::Entry).

namespace sparqlog::datalog {

/// Exact per-relation statistics.
struct RelationStats {
  uint64_t rows = 0;
  /// Distinct values per column; distinct[j] <= rows. For relations past
  /// kMaxExactRows the pessimistic `rows` stands in per column.
  std::vector<uint64_t> distinct;
};

/// Per-predicate-term refinement of the `triple` relation.
struct PredicateTermStats {
  uint64_t triples = 0;
  uint64_t distinct_subjects = 0;
  uint64_t distinct_objects = 0;
};

class EdbStats {
 public:
  /// Distinct-signature cap: past it characteristic sets are discarded
  /// (heterogeneous data where signatures would not compress anyway).
  static constexpr size_t kMaxSignatures = 4096;
  /// Row cap for the exact single-pass collection; larger relations keep
  /// only their cardinality (distinct = rows, the pessimistic default).
  static constexpr uint64_t kMaxExactRows = 1ull << 22;

  /// Collects statistics over `edb` in one pass per relation.
  /// `triple_pred` designates the 4-ary triple relation (layout
  /// S, P, O, G) that gets the per-predicate histogram and the
  /// characteristic sets; pass a predicate absent from `edb` to skip the
  /// refinements. Replaces any previously collected state.
  void Collect(const Database& edb, PredicateId triple_pred);

  bool empty() const { return relations_.empty(); }

  /// Dataset generation the statistics were collected at (engine-stamped;
  /// see Engine::Load). Plans remember this to detect staleness.
  uint64_t generation() const { return generation_; }
  void set_generation(uint64_t g) { generation_ = g; }

  /// Per-relation statistics; nullptr for unknown predicates.
  const RelationStats* Find(PredicateId pred) const;

  PredicateId triple_predicate() const { return triple_pred_; }
  bool has_triple_histogram() const { return has_triple_; }

  /// Histogram entry for the predicate term `p` (a triple's P value);
  /// nullptr when `p` never occurs as a predicate (a pattern over it
  /// matches nothing) or when the histogram was not collected.
  const PredicateTermStats* FindPredicateTerm(Value p) const;

  bool has_characteristic_sets() const { return char_sets_ok_; }

  /// Number of subjects whose predicate signature contains every value in
  /// `preds` — the exact subject count of a constant-predicate star join.
  /// Returns false (estimate unusable) when characteristic sets were
  /// capped out or not collected.
  bool CountSubjectsWithAll(const std::vector<Value>& preds,
                            uint64_t* count) const;

  /// Total triples seen by the histogram (0 when not collected).
  uint64_t total_triples() const { return total_triples_; }

 private:
  std::unordered_map<PredicateId, RelationStats> relations_;
  std::unordered_map<Value, PredicateTermStats> per_predicate_;
  /// signature (sorted distinct P values) -> number of subjects.
  std::vector<std::pair<std::vector<Value>, uint64_t>> signatures_;
  PredicateId triple_pred_ = 0;
  bool has_triple_ = false;
  bool char_sets_ok_ = false;
  uint64_t total_triples_ = 0;
  uint64_t generation_ = 0;
};

}  // namespace sparqlog::datalog
