#include "datalog/planner.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>
#include <unordered_set>

#include "datalog/stratify.h"

namespace sparqlog::datalog {

namespace {

/// Cardinality floor: an atom estimated to match nothing still needs a
/// positive cost so products and comparisons stay well-behaved — and a
/// near-zero estimate correctly pulls the atom to the front.
constexpr double kMinRows = 1e-3;
/// Fallback for predicates with no statistics, no facts and no defining
/// rules seen yet (recursive references within a stratum).
constexpr double kDefaultRows = 1000.0;
/// Selectivity charged per FILTER / disequality builtin in a body.
constexpr double kFilterSelectivity = 0.7;
/// Fixpoint-growth factor applied to head estimates of recursive strata:
/// the single-pass estimate sees one derivation round, the fixpoint runs
/// until closure.
constexpr double kRecursiveGrowth = 4.0;

/// Triple relation layout (stats.h / data_translator.h).
constexpr size_t kSubjectCol = 0;
constexpr size_t kPredicateCol = 1;
constexpr size_t kObjectCol = 2;

/// Estimated shape of one predicate's relation.
struct RelEstimate {
  double rows = -1.0;  ///< < 0: unknown
  std::vector<double> distinct;
};

/// One body atom after constant selection: surviving cardinality plus the
/// per-variable distinct counts of the survivors, and the subject-star
/// bookkeeping for the characteristic-set refinement.
struct AtomEstimate {
  double rows = kDefaultRows;
  /// Distinct count per variable of this atom (min over the columns the
  /// variable occupies), indexed alongside `vars`.
  std::vector<VarId> vars;
  std::vector<double> var_dist;
  bool star_candidate = false;
  VarId subject_var = 0;
  Value pred_value = 0;
  double objects_per_subject = 1.0;

  double DistOf(VarId v) const {
    for (size_t i = 0; i < vars.size(); ++i) {
      if (vars[i] == v) return var_dist[i];
    }
    return -1.0;
  }
};

AtomEstimate EstimateAtom(const Atom& atom,
                          const std::vector<RelEstimate>& est,
                          const EdbStats& stats) {
  AtomEstimate out;
  const size_t arity = atom.args.size();
  double rows = kDefaultRows;
  std::vector<double> dist(arity, kDefaultRows);
  if (atom.predicate < est.size() && est[atom.predicate].rows >= 0) {
    const RelEstimate& base = est[atom.predicate];
    rows = base.rows;
    for (size_t j = 0; j < arity; ++j) {
      dist[j] = j < base.distinct.size() ? base.distinct[j] : rows;
    }
  }

  // Constant-predicate triple atoms read the per-predicate histogram:
  // the one statistic that separates SP2Bench's dense and sparse
  // patterns sharing the single `triple` relation.
  bool histo = false;
  if (atom.predicate == stats.triple_predicate() &&
      stats.has_triple_histogram() && arity > kObjectCol &&
      !atom.args[kPredicateCol].is_var) {
    histo = true;
    const PredicateTermStats* h =
        stats.FindPredicateTerm(atom.args[kPredicateCol].constant);
    if (h == nullptr) {
      rows = 0;  // the predicate term never occurs: matches nothing
    } else {
      rows = static_cast<double>(h->triples);
      dist[kSubjectCol] = static_cast<double>(h->distinct_subjects);
      dist[kObjectCol] = static_cast<double>(h->distinct_objects);
      dist[kPredicateCol] = 1.0;
      if (atom.args[kSubjectCol].is_var && atom.args[kObjectCol].is_var &&
          atom.args[kSubjectCol].var != atom.args[kObjectCol].var) {
        out.star_candidate = true;
        out.subject_var = atom.args[kSubjectCol].var;
        out.pred_value = atom.args[kPredicateCol].constant;
        out.objects_per_subject =
            rows / std::max(1.0, dist[kSubjectCol]);
      }
    }
  }

  // Remaining constants select 1/distinct each; a variable repeated
  // within the atom acts like a constant for its later occurrences.
  std::unordered_map<VarId, size_t> first_col;
  for (size_t j = 0; j < arity; ++j) {
    if (histo && j == kPredicateCol) continue;
    const RuleTerm& t = atom.args[j];
    if (!t.is_var) {
      rows /= std::max(1.0, dist[j]);
      continue;
    }
    auto [it, fresh] = first_col.emplace(t.var, j);
    if (!fresh) rows /= std::max(1.0, dist[j]);
  }
  out.rows = std::max(rows, kMinRows);
  // Deterministic var order: first occurrence in the atom.
  for (size_t j = 0; j < arity; ++j) {
    const RuleTerm& t = atom.args[j];
    if (!t.is_var) continue;
    double d = std::min(dist[j], std::max(out.rows, 1.0));
    bool seen = false;
    for (size_t i = 0; i < out.vars.size(); ++i) {
      if (out.vars[i] == t.var) {
        out.var_dist[i] = std::min(out.var_dist[i], d);
        seen = true;
      }
    }
    if (!seen) {
      out.vars.push_back(t.var);
      out.var_dist.push_back(std::max(d, 1.0));
    }
  }
  return out;
}

/// Order-independent cardinality of a set of atoms. Joining k atoms on a
/// shared variable divides the cardinality product by all per-atom
/// distinct counts but the smallest — the pairwise
/// |R ⋈ S| = |R|·|S| / max(dR, dS) rule applied associatively. Subject
/// stars over constant predicates are refined with characteristic sets
/// when available. Order independence is what lets the subset-DP below
/// memoize on masks.
class BodyCost {
 public:
  BodyCost(const std::vector<AtomEstimate>* atoms, size_t num_vars,
           const EdbStats* stats)
      : atoms_(atoms), num_vars_(num_vars), stats_(stats) {}

  double CardOf(uint32_t mask) const {
    const auto& atoms = *atoms_;
    double star = -1.0;
    if (StarCard(mask, &star)) return std::max(star, kMinRows);

    double card = 1.0;
    // Per-variable distinct lists, deterministic by VarId.
    std::vector<double> min_d(num_vars_, -1.0);
    std::vector<double> prod_d(num_vars_, 1.0);
    for (uint32_t a = 0; a < atoms.size(); ++a) {
      if ((mask & (1u << a)) == 0) continue;
      card *= atoms[a].rows;
      for (size_t i = 0; i < atoms[a].vars.size(); ++i) {
        VarId v = atoms[a].vars[i];
        double d = atoms[a].var_dist[i];
        prod_d[v] *= d;
        min_d[v] = min_d[v] < 0 ? d : std::min(min_d[v], d);
      }
    }
    for (size_t v = 0; v < num_vars_; ++v) {
      if (min_d[v] > 0) card *= min_d[v] / prod_d[v];
    }
    return std::max(card, kMinRows);
  }

 private:
  /// Exact subject-star estimate: every atom in the mask is a
  /// constant-predicate triple atom on the same subject variable, and no
  /// non-subject variable links two of them (that would re-introduce a
  /// join the signature count knows nothing about).
  bool StarCard(uint32_t mask, double* out) const {
    const auto& atoms = *atoms_;
    if (stats_ == nullptr || !stats_->has_characteristic_sets()) return false;
    std::vector<Value> preds;
    std::unordered_set<VarId> other_vars;
    VarId subject = 0;
    int n = 0;
    double fanout = 1.0;
    for (uint32_t a = 0; a < atoms.size(); ++a) {
      if ((mask & (1u << a)) == 0) continue;
      const AtomEstimate& ae = atoms[a];
      if (!ae.star_candidate) return false;
      if (n == 0) {
        subject = ae.subject_var;
      } else if (ae.subject_var != subject) {
        return false;
      }
      for (VarId v : ae.vars) {
        if (v == ae.subject_var) continue;
        if (!other_vars.insert(v).second) return false;
      }
      preds.push_back(ae.pred_value);
      fanout *= ae.objects_per_subject;
      ++n;
    }
    if (n < 2) return false;
    std::sort(preds.begin(), preds.end());
    preds.erase(std::unique(preds.begin(), preds.end()), preds.end());
    uint64_t subjects = 0;
    if (!stats_->CountSubjectsWithAll(preds, &subjects)) return false;
    *out = static_cast<double>(subjects) * fanout;
    return true;
  }

  const std::vector<AtomEstimate>* atoms_;
  size_t num_vars_;
  const EdbStats* stats_;
};

/// Greedy order: repeatedly append the atom minimizing the next
/// intermediate cardinality (ties to the lowest original index, so plans
/// are deterministic and replanning is idempotent).
std::vector<uint32_t> GreedyOrder(const BodyCost& cost, uint32_t n) {
  std::vector<uint32_t> order;
  uint32_t mask = 0;
  for (uint32_t step = 0; step < n; ++step) {
    int best = -1;
    double best_card = std::numeric_limits<double>::infinity();
    for (uint32_t a = 0; a < n; ++a) {
      if (mask & (1u << a)) continue;
      double c = cost.CardOf(mask | (1u << a));
      if (c < best_card) {
        best_card = c;
        best = static_cast<int>(a);
      }
    }
    order.push_back(static_cast<uint32_t>(best));
    mask |= 1u << static_cast<uint32_t>(best);
  }
  return order;
}

/// Exact subset-DP minimizing the sum of intermediate cardinalities
/// (C_out): cost[mask] = card(mask) + min over last-added atoms of
/// cost[mask \ atom]. 2^n masks, n <= kDpMaxAtoms.
std::vector<uint32_t> DpOrder(const BodyCost& cost, uint32_t n) {
  const uint32_t full = (1u << n) - 1;
  std::vector<double> best(full + 1,
                           std::numeric_limits<double>::infinity());
  std::vector<double> card(full + 1, 0.0);
  std::vector<int> last(full + 1, -1);
  best[0] = 0.0;
  for (uint32_t mask = 1; mask <= full; ++mask) {
    card[mask] = cost.CardOf(mask);
    for (uint32_t a = 0; a < n; ++a) {
      if ((mask & (1u << a)) == 0) continue;
      double c = best[mask ^ (1u << a)] + card[mask];
      if (c < best[mask]) {
        best[mask] = c;
        last[mask] = static_cast<int>(a);
      }
    }
  }
  std::vector<uint32_t> order;
  uint32_t mask = full;
  while (mask != 0) {
    uint32_t a = static_cast<uint32_t>(last[mask]);
    order.push_back(a);
    mask ^= 1u << a;
  }
  std::reverse(order.begin(), order.end());
  return order;
}

/// Plans one rule: permutes `rule->positive` into the chosen order, marks
/// it planned, and returns the estimated result cardinality plus the
/// post-join distinct count per variable (for head estimation).
double PlanRule(Rule* rule, const std::vector<RelEstimate>& est,
                const EdbStats& stats, std::vector<double>* var_dist,
                PlannerReport* report) {
  const uint32_t n = static_cast<uint32_t>(rule->positive.size());
  std::vector<AtomEstimate> atoms;
  atoms.reserve(n);
  for (const Atom& a : rule->positive) {
    atoms.push_back(EstimateAtom(a, est, stats));
  }
  BodyCost cost(&atoms, rule->var_names.size(), &stats);

  if (n >= 2) {
    std::vector<uint32_t> order;
    if (n <= kDpMaxAtoms) {
      order = DpOrder(cost, n);
      ++report->dp_bodies;
    } else {
      order = GreedyOrder(cost, n);
      ++report->greedy_bodies;
    }
    bool identity = true;
    for (uint32_t i = 0; i < n; ++i) identity = identity && order[i] == i;
    if (!identity) {
      std::vector<Atom> permuted;
      permuted.reserve(n);
      for (uint32_t i : order) {
        permuted.push_back(std::move(rule->positive[i]));
      }
      rule->positive = std::move(permuted);
      ++report->bodies_reordered;
    }
  }
  rule->planned = true;
  ++report->rules_planned;
  if (n == 2 && rule->negative.empty() &&
      (rule->positive[0].predicate == rule->head.predicate) !=
          (rule->positive[1].predicate == rule->head.predicate)) {
    ++report->tc_shaped_rules;
  }

  double rows = n == 0 ? 1.0 : cost.CardOf((1u << n) - 1);
  for (const BuiltinLit& b : rule->builtins) {
    if (b.kind == BuiltinKind::kFilterExpr || b.kind == BuiltinKind::kNe) {
      rows *= kFilterSelectivity;
    }
  }
  rows = std::max(rows, kMinRows);

  var_dist->assign(rule->var_names.size(), -1.0);
  for (const AtomEstimate& ae : atoms) {
    for (size_t i = 0; i < ae.vars.size(); ++i) {
      double& d = (*var_dist)[ae.vars[i]];
      double cap = std::min(ae.var_dist[i], std::max(rows, 1.0));
      d = d < 0 ? cap : std::min(d, cap);
    }
  }
  return rows;
}

/// Accumulates one rule's head contribution into the predicate estimate.
void AddHeadEstimate(const Rule& rule, double rows,
                     const std::vector<double>& var_dist,
                     RelEstimate* into) {
  const size_t arity = rule.head.args.size();
  if (into->rows < 0) {
    into->rows = 0;
    into->distinct.assign(arity, 0.0);
  }
  if (into->distinct.size() < arity) into->distinct.resize(arity, 0.0);
  into->rows += rows;
  for (size_t j = 0; j < arity; ++j) {
    const RuleTerm& t = rule.head.args[j];
    double d;
    if (!t.is_var) {
      d = 1.0;
    } else if (t.var < var_dist.size() && var_dist[t.var] > 0) {
      d = var_dist[t.var];
    } else {
      // Skolem / BIND target: one value per derivation.
      d = rows;
    }
    into->distinct[j] = std::min(into->distinct[j] + d, into->rows);
  }
}

}  // namespace

PlannerReport PlanProgram(Program* program, const EdbStats& stats) {
  PlannerReport report;
  auto strat_result = Stratify(*program);
  if (!strat_result.ok()) return report;  // Validate() surfaces the error
  const Stratification& strat = *strat_result;

  std::vector<RelEstimate> est(program->predicates.size());
  for (PredicateId p = 0; p < est.size(); ++p) {
    if (const RelationStats* rs = stats.Find(p)) {
      est[p].rows = static_cast<double>(rs->rows);
      est[p].distinct.assign(rs->distinct.begin(), rs->distinct.end());
    }
  }
  // Program facts seed IDB predicates (VALUES rows, constant-endpoint
  // closure seeds): count them exactly.
  for (const Fact& f : program->facts) {
    RelEstimate& e = est[f.predicate];
    if (e.rows < 0) {
      e.rows = 0;
      e.distinct.assign(f.tuple.size(), 0.0);
    }
    e.rows += 1.0;
    for (size_t j = 0; j < e.distinct.size(); ++j) {
      e.distinct[j] = std::min(e.distinct[j] + 1.0, e.rows);
    }
  }

  // Bottom-up over strata: rules see estimates for everything below, and
  // recursive same-stratum references fall back to defaults.
  std::vector<double> var_dist;
  for (uint32_t s = 0; s < strat.num_strata; ++s) {
    std::vector<PredicateId> heads;
    for (uint32_t ri : strat.strata_rules[s]) {
      Rule& rule = program->rules[ri];
      double rows = PlanRule(&rule, est, stats, &var_dist, &report);
      AddHeadEstimate(rule, rows, var_dist, &est[rule.head.predicate]);
      heads.push_back(rule.head.predicate);
    }
    if (strat.stratum_recursive[s]) {
      std::sort(heads.begin(), heads.end());
      heads.erase(std::unique(heads.begin(), heads.end()), heads.end());
      for (PredicateId p : heads) {
        if (est[p].rows > 0) est[p].rows *= kRecursiveGrowth;
      }
    }
  }

  if (program->output.predicate < est.size() &&
      est[program->output.predicate].rows >= 0) {
    report.output_estimate = est[program->output.predicate].rows;
  }
  program->planned_estimate = report.output_estimate;
  return report;
}

}  // namespace sparqlog::datalog
