#pragma once

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "datalog/value.h"
#include "util/hash.h"

/// \file relation.h
/// Tuple storage for the Datalog engine: a deduplicated, insertion-ordered
/// tuple set per predicate with lazily-built hash indexes on arbitrary
/// column subsets, plus per-row round numbers for semi-naive evaluation.

namespace sparqlog::datalog {

/// A set of same-arity tuples.
class Relation {
 public:
  explicit Relation(uint32_t arity) : arity_(arity) {}

  uint32_t arity() const { return arity_; }
  size_t size() const { return rows_.size(); }

  const std::vector<Value>& row(uint32_t id) const { return *rows_[id]; }
  uint32_t row_round(uint32_t id) const { return rounds_[id]; }

  /// Inserts `row` tagged with `round`; returns true if it was new.
  /// Maintains any already-built indexes incrementally. The duplicate
  /// path performs no allocation (hot in transitive closures, where most
  /// derivation attempts re-derive existing tuples).
  bool Insert(const std::vector<Value>& row, uint32_t round);

  bool Contains(const std::vector<Value>& row) const {
    return set_.count(row) > 0;
  }

  /// Row ids whose values at `cols` equal `key`; builds the index on first
  /// use. `cols` must be sorted ascending. Returns nullptr when no row
  /// matches.
  const std::vector<uint32_t>* Probe(const std::vector<uint32_t>& cols,
                                     const std::vector<Value>& key);

  /// Iteration support: row pointers in insertion order. The pointed-to
  /// vectors are the node-stable keys of the dedup map.
  const std::vector<const std::vector<Value>*>& rows() const { return rows_; }

  /// Half-open row-id range of rows inserted in `round`. Valid because
  /// round tags are non-decreasing in insertion order.
  std::pair<uint32_t, uint32_t> RoundRange(uint32_t round) const;

 private:
  using Index = std::unordered_map<std::vector<Value>, std::vector<uint32_t>,
                                   VectorHash>;

  Index& GetOrBuildIndex(const std::vector<uint32_t>& cols);

  uint32_t arity_;
  // Single-copy storage: the dedup map owns the tuples (unordered_map keys
  // are node-stable); rows_ provides insertion-ordered access by id.
  std::unordered_map<std::vector<Value>, uint32_t, VectorHash> set_;
  std::vector<const std::vector<Value>*> rows_;
  std::vector<uint32_t> rounds_;
  std::map<std::vector<uint32_t>, Index> indexes_;
};

/// Named relation store shared by EDB facts and derived IDB tuples.
class Database {
 public:
  /// Relation for `pred`, created with `arity` if absent.
  Relation& relation(uint32_t pred, uint32_t arity);

  const Relation* Find(uint32_t pred) const;
  Relation* FindMutable(uint32_t pred);

  size_t TotalTuples() const;

 private:
  std::unordered_map<uint32_t, Relation> relations_;
};

}  // namespace sparqlog::datalog
