#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <cassert>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "datalog/stride.h"
#include "datalog/value.h"
#include "util/exec_context.h"
#include "util/hash.h"
#include "util/status.h"
#include "util/thread_pool.h"

/// \file relation.h
/// Columnar tuple storage for the Datalog engine.
///
/// A `TupleStore` keeps all tuples of one relation in a single flat
/// `std::vector<Value>` arena strided by arity: tuple *i* occupies
/// `[i*arity, (i+1)*arity)`. Deduplication is an open-addressing hash
/// table over row ids (no per-tuple heap allocation, no node-based map).
/// The hot arity <= 4 strides are specialized at compile time (see
/// stride.h); cold-start EDB construction goes through `BulkLoad`, which
/// dedups a whole batch in one pass against a table allocated once at
/// final size instead of growing it tuple by tuple.
/// `Relation` layers semi-naive round bookkeeping and lazily-built hash
/// indexes on top; index buckets are append-only and epoch-stable, so the
/// evaluator can keep probing a bucket while recursive rules insert into
/// the same relation (see `MatchSpan`).
///
/// Iteration is exposed through a span-like view (`RowRef`) and a cursor
/// (`TupleCursor`) instead of row pointers, which keeps the fixpoint inner
/// loop free of pointer chasing and makes the arena trivially partitionable
/// for future sharded / parallel-stratum evaluation.

namespace sparqlog::datalog {

/// Non-owning view of one tuple inside a TupleStore arena. Invalidated by
/// any subsequent insert into the owning relation (the arena may grow);
/// callers must re-fetch via `Relation::row` after inserting.
class RowRef {
 public:
  RowRef() = default;
  RowRef(const Value* data, uint32_t arity) : data_(data), arity_(arity) {}

  Value operator[](size_t i) const { return data_[i]; }
  uint32_t size() const { return arity_; }
  const Value* data() const { return data_; }
  const Value* begin() const { return data_; }
  const Value* end() const { return data_ + arity_; }

  std::vector<Value> ToVector() const {
    return std::vector<Value>(data_, data_ + arity_);
  }

  friend bool operator==(const RowRef& a, const RowRef& b) {
    if (a.arity_ != b.arity_) return false;
    for (uint32_t i = 0; i < a.arity_; ++i) {
      if (a.data_[i] != b.data_[i]) return false;
    }
    return true;
  }
  friend bool operator==(const RowRef& a, const std::vector<Value>& b) {
    if (a.arity_ != b.size()) return false;
    for (uint32_t i = 0; i < a.arity_; ++i) {
      if (a.data_[i] != b[i]) return false;
    }
    return true;
  }
  friend bool operator==(const std::vector<Value>& a, const RowRef& b) {
    return b == a;
  }

 private:
  const Value* data_ = nullptr;
  uint32_t arity_ = 0;
};

/// Forward cursor over a contiguous row-id range of a TupleStore.
/// Index-based (not pointer-stepped) so zero-arity relations iterate
/// correctly. Invalidated by inserts, like RowRef.
class TupleCursor {
 public:
  TupleCursor(const Value* base, uint32_t arity, uint32_t num_rows)
      : base_(base), arity_(arity), num_rows_(num_rows) {}

  class iterator {
   public:
    iterator(const Value* base, uint32_t arity, uint32_t i)
        : base_(base), arity_(arity), i_(i) {}
    RowRef operator*() const {
      return RowRef(base_ + static_cast<size_t>(i_) * arity_, arity_);
    }
    iterator& operator++() {
      ++i_;
      return *this;
    }
    bool operator!=(const iterator& o) const { return i_ != o.i_; }
    bool operator==(const iterator& o) const { return i_ == o.i_; }

   private:
    const Value* base_;
    uint32_t arity_;
    uint32_t i_;
  };

  iterator begin() const { return iterator(base_, arity_, 0); }
  iterator end() const { return iterator(base_, arity_, num_rows_); }
  uint32_t size() const { return num_rows_; }
  bool empty() const { return num_rows_ == 0; }
  RowRef operator[](uint32_t i) const {
    return RowRef(base_ + static_cast<size_t>(i) * arity_, arity_);
  }

 private:
  const Value* base_;
  uint32_t arity_;
  uint32_t num_rows_;
};

/// Flat columnar tuple arena with open-addressing deduplication.
class TupleStore {
 public:
  explicit TupleStore(uint32_t arity) : arity_(arity) {}

  uint32_t arity() const { return arity_; }
  uint32_t size() const { return num_rows_; }

  RowRef row(uint32_t id) const {
    return RowRef(arena_.data() + static_cast<size_t>(id) * arity_, arity_);
  }
  const Value* row_data(uint32_t id) const {
    return arena_.data() + static_cast<size_t>(id) * arity_;
  }

  /// Appends `row` (exactly `arity()` values) unless an equal tuple
  /// exists. Returns the row id; sets `*inserted` accordingly. The
  /// duplicate path performs no allocation, and the insert path only
  /// amortized arena growth — there is no per-tuple heap node.
  uint32_t Insert(const Value* row, bool* inserted);

  /// Bulk-builds an *empty* store (arity > 0) from `num_rows` tuples laid
  /// out flat with arity() stride: the dedup table is allocated once at
  /// its worst-case (all-distinct) final size and the arena is reserved
  /// for the whole batch, so the load runs as one pass with no growth
  /// checks, no table doubling / rehashing and no arena reallocation —
  /// the costs that dominate tuple-at-a-time Insert on a cold store.
  /// Rows keep first-occurrence order: a bulk-built store is
  /// bit-identical, arena order included, to one built by inserting the
  /// batch per tuple. (A sort-based build was measured 2.5x *slower*
  /// than hashing at EDB scales — n log n comparisons lose to one probe
  /// per row while the table is cache-resident.) Duplicate-heavy batches
  /// get a compacting rehash at the end so the table footprint tracks
  /// the deduplicated size. Returns the number of distinct rows kept.
  uint32_t BulkLoad(const Value* rows, size_t num_rows);
  uint32_t BulkLoad(const std::vector<Value>& rows) {
    assert(arity_ > 0 && rows.size() % arity_ == 0);
    return BulkLoad(rows.data(), rows.size() / arity_);
  }

  /// Appends a flat batch of tuples the caller guarantees are distinct —
  /// pairwise within the batch AND from every existing row (asserted per
  /// row in debug builds). The dedup table is grown to its final size
  /// once up front, and each row's slot is found by probing to the first
  /// empty slot with no key comparisons, so the batch costs one hash and
  /// one table write per row — none of the compare-probe and incremental
  /// doubling/rehash work that dominates tuple-at-a-time Insert on a
  /// large store. `rows` must not alias the arena. This is the emission
  /// path of the transitive-closure kernel, whose frontier bitsets prove
  /// distinctness structurally (datalog/tc_kernel.cpp).
  void AppendDistinct(const Value* rows, size_t num_rows);

  bool Contains(const Value* row) const;

  /// Drops all tuples but keeps the arena and dedup capacity, so a store
  /// reused as a per-round staging buffer stays allocation-free at steady
  /// state.
  void Clear() {
    num_rows_ = 0;
    arena_.clear();
    std::fill(slots_.begin(), slots_.end(), 0u);
  }

  /// Arena footprint in bytes (tuples + dedup table), for stats.
  size_t bytes() const {
    return arena_.capacity() * sizeof(Value) +
           slots_.capacity() * sizeof(uint32_t);
  }

 private:
  // Relation drives the stride-specialized Impl entry points directly so
  // batch operations (InsertStaged) dispatch once, not once per row.
  friend class Relation;

  uint64_t HashRow(const Value* row) const {
    return Fmix64(HashRange(row, row + arity_));
  }
  void Grow();
  void Rehash(size_t new_size);

  /// Stride-specialized implementations (see stride.h); the public
  /// Insert/Contains/BulkLoad dispatch to these via WithStride. Defined
  /// in relation.cpp — every instantiation site lives there.
  template <typename Stride>
  uint32_t InsertImpl(Stride s, const Value* row, bool* inserted);
  template <typename Stride>
  bool ContainsImpl(Stride s, const Value* row) const;
  template <typename Stride>
  uint32_t BulkLoadImpl(Stride s, const Value* rows, size_t num_rows);
  template <typename Stride>
  void AppendDistinctImpl(Stride s, const Value* rows, size_t num_rows);

  uint32_t arity_;
  uint32_t num_rows_ = 0;
  std::vector<Value> arena_;
  // Open-addressing dedup table: slot holds row_id + 1, 0 = empty.
  // Power-of-two size, linear probing, rebuilt from the arena on growth.
  std::vector<uint32_t> slots_;
};

/// Stable view of an index bucket prefix, valid across concurrent inserts
/// into the owning relation: buckets live in a deque (object addresses are
/// stable under bucket creation) and are append-only, and the prefix
/// length is snapshotted at probe time, so rows derived while iterating are
/// not visited by this probe (exactly the semi-naive contract the old
/// defensive bucket copy provided, without the copy).
class MatchSpan {
 public:
  MatchSpan() = default;
  MatchSpan(const std::vector<uint32_t>* bucket, uint32_t size)
      : bucket_(bucket), size_(size) {}

  uint32_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  uint32_t operator[](uint32_t i) const { return (*bucket_)[i]; }

 private:
  const std::vector<uint32_t>* bucket_ = nullptr;
  uint32_t size_ = 0;
};

/// A set of same-arity tuples: columnar store + rounds + indexes.
class Relation {
 public:
  explicit Relation(uint32_t arity) : store_(arity) {}

  uint32_t arity() const { return store_.arity(); }
  size_t size() const { return store_.size(); }

  RowRef row(uint32_t id) const { return store_.row(id); }
  uint32_t row_round(uint32_t id) const;

  /// Inserts `row` tagged with `round`; returns true if it was new.
  /// Maintains any already-built indexes incrementally. Rounds must be
  /// non-decreasing across inserts (asserted in debug builds); RoundRange
  /// depends on it.
  bool Insert(const Value* row, uint32_t round);
  bool Insert(const std::vector<Value>& row, uint32_t round) {
    assert(row.size() == arity());
    return Insert(row.data(), round);
  }
  bool Insert(RowRef row, uint32_t round) {
    assert(row.size() == arity());
    return Insert(row.data(), round);
  }

  /// Bulk-builds an *empty* relation (no rows, no indexes yet) from a
  /// flat batch of tuples, all tagged with `round` (see
  /// TupleStore::BulkLoad for the one-pass dedup + one-shot table
  /// build). This is the cold-start EDB ingest path: indexes are still
  /// built lazily on first Probe — which is itself one bulk pass over
  /// the arena — so no index is maintained per tuple anywhere between
  /// parsing a dataset and the first join. Returns the number of
  /// distinct rows.
  uint32_t BulkLoad(const Value* rows, size_t num_rows, uint32_t round = 0);
  uint32_t BulkLoad(const std::vector<Value>& rows, uint32_t round = 0) {
    assert(arity() > 0 && rows.size() % arity() == 0);
    return BulkLoad(rows.data(), rows.size() / arity(), round);
  }

  bool Contains(const Value* row) const { return store_.Contains(row); }
  bool Contains(const std::vector<Value>& row) const {
    assert(row.size() == arity());
    return store_.Contains(row.data());
  }

  /// Row ids whose values at `cols` equal `key`; builds the index on first
  /// use. `cols` must be sorted ascending. Returns an empty span when no
  /// row matches. The span stays valid while rows are inserted (see
  /// MatchSpan). Single-writer like Insert: not safe against concurrent
  /// calls (use TryProbe from parallel workers).
  MatchSpan Probe(const std::vector<uint32_t>& cols,
                  const std::vector<Value>& key);

  /// Thread-safe probe for parallel evaluation: like Probe, but fails
  /// (returns false) instead of building past the fixed published-index
  /// capacity, in which case the caller must fall back to a filtered
  /// scan. Safe to call concurrently with other TryProbe / Contains / row
  /// reads — indexes are built under a mutex and published with a
  /// release-store of the index count — but NOT concurrently with Insert.
  bool TryProbe(const std::vector<uint32_t>& cols,
                const std::vector<Value>& key, MatchSpan* out);

  /// Bulk-merges `num_rows` staged tuples (flat TupleStore layout, arity()
  /// stride) tagged with `round`, deduplicating against existing contents.
  /// Returns the number actually inserted. This is the round-barrier merge
  /// path for parallel workers' staging buffers; it is single-writer, like
  /// Insert, and dispatches the stride once for the whole batch so the
  /// arity <= 4 merge loop runs fully specialized.
  size_t InsertStaged(const Value* rows, size_t num_rows, uint32_t round);
  size_t InsertStaged(const TupleStore& staged, uint32_t round) {
    assert(staged.arity() == arity());
    return InsertStaged(staged.row_data(0), staged.size(), round);
  }

  /// Bulk-appends `num_rows` tuples the caller guarantees are new —
  /// distinct within the batch and absent from the relation — tagged
  /// with `round`, maintaining any built indexes (see
  /// TupleStore::AppendDistinct for the no-compare fast path this
  /// enables). Single-writer, like Insert.
  void AppendDistinct(const Value* rows, size_t num_rows, uint32_t round);

  /// What a RemoveRows call destroyed, captured before the arena is
  /// touched so RestoreRemoved can rebuild the exact pre-removal state
  /// (arena order, round marks). O(delta) to capture; only the rare
  /// rollback pays O(relation).
  struct RemovalUndo {
    std::vector<uint32_t> ids;  ///< removed row ids, ascending, pre-removal
    std::vector<Value> rows;    ///< their tuples, ids order, arity stride
    std::vector<std::pair<uint32_t, uint32_t>> round_marks;  ///< pre-removal
    uint32_t prior_rows = 0;    ///< pre-removal row count

    bool empty() const { return ids.empty(); }
  };

  /// Removes every listed tuple that is present (flat TupleStore layout,
  /// arity() stride); returns the number actually removed. The arena is
  /// compacted preserving the survivors' relative order and the dedup
  /// table rebuilt; row ids shift, so all round bookkeeping collapses to
  /// round 0 and every built index is dropped (rebuilt lazily on the
  /// next probe). Single-writer, like Insert — the incremental-update
  /// path calls this under the engine's exclusive state lock.
  ///
  /// When `undo` is non-null it is overwritten with what was removed
  /// (empty if nothing matched), priced O(removed) on this hot path.
  size_t RemoveRows(const Value* rows, size_t num_rows,
                    RemovalUndo* undo = nullptr);
  size_t RemoveRows(const std::vector<Value>& rows,
                    RemovalUndo* undo = nullptr) {
    assert(arity() > 0 && rows.size() % arity() == 0);
    return RemoveRows(rows.data(), rows.size() / arity(), undo);
  }

  /// Exactly undoes a RemoveRows given its undo record: every removed
  /// tuple reclaims its original row id, survivors shift back, and the
  /// pre-removal round marks are reinstated — the arena ends up
  /// value-identical to the pre-removal arena. O(relation); indexes drop
  /// and rebuild lazily. Must run on the state RemoveRows left behind
  /// (after TruncateTo has peeled any later inserts).
  void RestoreRemoved(const RemovalUndo& undo);

  /// Discards every row with id >= `keep_rows` — the exact inverse of an
  /// append (Insert / InsertStaged / AppendDistinct) when nothing else
  /// intervened, which is how the update rollback peels staged inserts.
  /// Round marks opened at or past the cut are dropped; indexes drop and
  /// rebuild lazily.
  void TruncateTo(uint32_t keep_rows);

  /// Cursor over all rows in insertion order. Invalidated by inserts.
  TupleCursor rows() const {
    return TupleCursor(store_.row_data(0), store_.arity(), store_.size());
  }

  /// Cursor over the row-id shard `[lo, hi)` — the unit of work for the
  /// sharded delta scan (the arena is contiguous, so a shard is one flat
  /// segment). Invalidated by inserts.
  TupleCursor rows(uint32_t lo, uint32_t hi) const {
    assert(lo <= hi && hi <= store_.size());
    return TupleCursor(store_.row_data(lo), store_.arity(), hi - lo);
  }

  /// Half-open row-id range of rows inserted in `round`. Valid because
  /// round tags are non-decreasing in insertion order (asserted in
  /// Insert).
  std::pair<uint32_t, uint32_t> RoundRange(uint32_t round) const;

  /// Approximate memory footprint (arena + dedup + indexes), for stats.
  size_t bytes() const;

 private:
  /// Hash index over a column subset. Open-addressing table mapping the
  /// projected key (values of `cols`) to an append-only bucket of row ids.
  /// Keys are never stored: a bucket's key is read back from the arena row
  /// of its first entry.
  struct Index {
    std::vector<uint32_t> cols;
    // slot -> bucket_id + 1; 0 = empty. Power-of-two, linear probing.
    std::vector<uint32_t> slots;
    std::vector<uint64_t> slot_hashes;  // cached key hash per used slot
    // Deque: bucket object addresses stay stable as buckets are added, so
    // MatchSpan can hold a bucket pointer across inserts.
    std::deque<std::vector<uint32_t>> buckets;
    size_t num_keys = 0;

    uint64_t HashProjected(const TupleStore& store, uint32_t row_id) const;
    bool KeyEqualsRow(const TupleStore& store, uint32_t bucket_first,
                      const Value* key) const;
    /// True when row `a` and the tuple at `b_row` agree on `cols`.
    bool ProjectedEquals(const TupleStore& store, uint32_t a,
                         const Value* b_row) const;
    void Add(const TupleStore& store, uint32_t row_id);
    const std::vector<uint32_t>* Find(const TupleStore& store,
                                      const Value* key) const;
    void Grow();
    size_t bytes() const;
  };

  /// Stride-specialized insert shared by Insert and InsertStaged: store
  /// insert + round mark + incremental index maintenance for one row.
  template <typename Stride>
  bool InsertWithStride(Stride s, const Value* row, uint32_t round);

  /// Looks up a published index by column subset; lock-free (acquire-load
  /// of the published count, entries below it are fully built).
  Index* FindPublishedIndex(const std::vector<uint32_t>& cols) const;
  /// All indexes, published then overflow, for Insert maintenance.
  template <typename Fn>
  void ForEachIndex(Fn&& fn) {
    uint32_t n = num_indexes_.load(std::memory_order_acquire);
    for (uint32_t i = 0; i < n; ++i) fn(*indexes_[i]);
    for (auto& index : overflow_indexes_) fn(*index);
  }

  TupleStore store_;
  // (round, first row id of that round); appended when a round first
  // inserts. Rounds are strictly increasing across entries.
  std::vector<std::pair<uint32_t, uint32_t>> round_marks_;

  // Indexes are published into a fixed slot array guarded by
  // `index_build_mu_` for writers: a builder constructs the Index fully,
  // stores its pointer, then release-increments `num_indexes_`, so
  // lock-free readers that acquire-load the count only ever see complete
  // indexes. Few distinct column subsets are ever probed per predicate
  // (one per rule-atom binding pattern), so the capacity is generous; the
  // single-threaded Probe path spills past it into `overflow_indexes_`,
  // while the thread-safe TryProbe reports failure and callers scan.
  static constexpr size_t kMaxPublishedIndexes = 64;
  std::array<std::unique_ptr<Index>, kMaxPublishedIndexes> indexes_;
  std::atomic<uint32_t> num_indexes_{0};
  std::vector<std::unique_ptr<Index>> overflow_indexes_;
  std::mutex index_build_mu_;
};

/// One per-predicate unit of the parallel round-barrier merge: a target
/// relation plus every worker's staging store for that predicate, in
/// worker order (the order the serial merge visits them).
struct StagedMergeTask {
  Relation* target = nullptr;
  std::vector<const TupleStore*> sources;  // worker order; empties allowed
  uint64_t merged = 0;                     // out: tuples inserted
};

/// Fans the round-barrier merge out **per target predicate**: each task
/// (one predicate) is handled by exactly one merge worker, which merges
/// that predicate's staging stores in worker order — so every relation's
/// arena ends up bit-identical to the serial worker-then-predicate merge,
/// while distinct predicates merge concurrently (disjoint relations, no
/// shared mutable state). Tasks with no staged rows are skipped; the rest
/// are dealt round-robin across the pool.
///
/// `merge_phases` must point at `pool->num_workers()` stride-phase
/// counters that persist across rounds: each merge worker charges the
/// merged tuples to `ctx` per batch and budget-checks with the batch size
/// as stride advance, so deadline sampling stays proportional to tuples
/// merged regardless of fan-out width (see ExecContext::CheckBudgetShared).
/// `*fanout_width` is set to the number of workers that received a task.
/// Returns the total tuples inserted, or the first failing worker's
/// budget status.
Result<uint64_t> MergeStagedParallel(std::vector<StagedMergeTask>* tasks,
                                     uint32_t round, ThreadPool* pool,
                                     ExecContext* ctx, uint32_t* merge_phases,
                                     uint32_t* fanout_width);

/// Named relation store shared by EDB facts and derived IDB tuples.
/// Relations are heap-allocated (they carry a mutex and atomics for the
/// thread-safe probe path), so Relation pointers stay stable across map
/// growth — parallel workers hold them for a whole evaluation round.
class Database {
 public:
  /// Relation for `pred`, created with `arity` if absent.
  Relation& relation(uint32_t pred, uint32_t arity);

  const Relation* Find(uint32_t pred) const;
  Relation* FindMutable(uint32_t pred);

  /// Replaces `pred`'s relation with a fresh empty one of `arity`
  /// (creating it if absent). Outstanding Relation pointers to the old
  /// object dangle, so this is only safe where none are held — the
  /// evaluator's incremental fallback uses it to discard a restored
  /// stratum before re-evaluating it from scratch.
  void Reset(uint32_t pred, uint32_t arity);

  size_t TotalTuples() const;
  /// Approximate memory footprint of all relations, for stats.
  size_t TotalBytes() const;

  /// Predicate ids present, for iteration (diagnostics / dumps).
  std::vector<uint32_t> Predicates() const;

 private:
  std::unordered_map<uint32_t, std::unique_ptr<Relation>> relations_;
};

}  // namespace sparqlog::datalog
