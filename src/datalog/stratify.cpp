#include "datalog/stratify.h"

#include <algorithm>
#include <functional>
#include <vector>

namespace sparqlog::datalog {

namespace {

/// Iterative Tarjan SCC over the predicate dependency graph.
class Tarjan {
 public:
  explicit Tarjan(const std::vector<std::vector<uint32_t>>& adj)
      : adj_(adj),
        index_(adj.size(), kUnvisited),
        low_(adj.size(), 0),
        on_stack_(adj.size(), false),
        scc_of_(adj.size(), 0) {}

  void Run() {
    for (uint32_t v = 0; v < adj_.size(); ++v) {
      if (index_[v] == kUnvisited) Visit(v);
    }
  }

  uint32_t scc_of(uint32_t v) const { return scc_of_[v]; }
  uint32_t num_sccs() const { return num_sccs_; }

 private:
  static constexpr uint32_t kUnvisited = 0xffffffffu;

  void Visit(uint32_t root) {
    // Explicit stack to avoid deep recursion on long predicate chains.
    struct Frame {
      uint32_t v;
      size_t edge = 0;
    };
    std::vector<Frame> frames{{root}};
    StartNode(root);
    while (!frames.empty()) {
      Frame& f = frames.back();
      if (f.edge < adj_[f.v].size()) {
        uint32_t w = adj_[f.v][f.edge++];
        if (index_[w] == kUnvisited) {
          StartNode(w);
          frames.push_back({w});
        } else if (on_stack_[w]) {
          low_[f.v] = std::min(low_[f.v], index_[w]);
        }
      } else {
        if (low_[f.v] == index_[f.v]) {
          // Pop an SCC.
          while (true) {
            uint32_t w = stack_.back();
            stack_.pop_back();
            on_stack_[w] = false;
            scc_of_[w] = num_sccs_;
            if (w == f.v) break;
          }
          ++num_sccs_;
        }
        uint32_t v = f.v;
        frames.pop_back();
        if (!frames.empty()) {
          low_[frames.back().v] = std::min(low_[frames.back().v], low_[v]);
        }
      }
    }
  }

  void StartNode(uint32_t v) {
    index_[v] = low_[v] = counter_++;
    stack_.push_back(v);
    on_stack_[v] = true;
  }

  const std::vector<std::vector<uint32_t>>& adj_;
  std::vector<uint32_t> index_, low_;
  std::vector<bool> on_stack_;
  std::vector<uint32_t> scc_of_;
  std::vector<uint32_t> stack_;
  uint32_t counter_ = 0;
  uint32_t num_sccs_ = 0;
};

}  // namespace

Result<Stratification> Stratify(const Program& program) {
  const size_t num_preds = program.predicates.size();

  // Dependency edges head -> body predicate.
  std::vector<std::vector<uint32_t>> adj(num_preds);
  struct NegEdge {
    uint32_t from, to;
  };
  std::vector<NegEdge> neg_edges;
  for (const Rule& rule : program.rules) {
    for (const Atom& a : rule.positive) {
      adj[rule.head.predicate].push_back(a.predicate);
    }
    for (const Atom& a : rule.negative) {
      adj[rule.head.predicate].push_back(a.predicate);
      neg_edges.push_back({rule.head.predicate, a.predicate});
    }
  }

  Tarjan tarjan(adj);
  tarjan.Run();

  // Recursion through negation: a negative edge inside one SCC.
  for (const NegEdge& e : neg_edges) {
    if (tarjan.scc_of(e.from) == tarjan.scc_of(e.to)) {
      return Status::InvalidArgument(
          "program is not stratifiable (recursion through negation)");
    }
  }

  // Tarjan numbers SCCs in reverse topological order of the condensation
  // for edges head -> body: an SCC gets its number only after all SCCs it
  // depends on are numbered. Hence evaluating strata in ascending SCC id
  // evaluates dependencies first.
  Stratification out;
  out.num_strata = tarjan.num_sccs();
  out.predicate_stratum.resize(num_preds);
  for (uint32_t p = 0; p < num_preds; ++p) {
    out.predicate_stratum[p] = tarjan.scc_of(p);
  }
  out.strata_rules.resize(out.num_strata);
  out.stratum_recursive.assign(out.num_strata, false);
  for (uint32_t ri = 0; ri < program.rules.size(); ++ri) {
    const Rule& rule = program.rules[ri];
    uint32_t s = out.predicate_stratum[rule.head.predicate];
    out.strata_rules[s].push_back(ri);
    for (const Atom& a : rule.positive) {
      if (out.predicate_stratum[a.predicate] == s) {
        out.stratum_recursive[s] = true;
      }
    }
  }
  return out;
}

}  // namespace sparqlog::datalog
