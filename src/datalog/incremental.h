#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "datalog/value.h"

/// \file incremental.h
/// Delta types shared between the engine's `ApplyUpdate` (which produces
/// per-predicate EDB deltas) and the evaluator's incremental stratum path
/// (which consumes them as the seed of one extra semi-naive round, or as
/// the over-deletion frontier of a DRed pass).

namespace sparqlog::datalog {

/// The translated effect of one `ApplyUpdate` on the EDB, keyed by
/// predicate *name* (program-independent, like stratum fingerprints).
/// `ins` rows are tuples that became newly present, `del` rows tuples
/// that became absent — already net (a triple both deleted and
/// re-inserted appears in neither) and already deduplicated.
struct EdbDelta {
  struct PredicateDelta {
    uint32_t arity = 0;
    std::vector<Value> ins;  ///< flat, arity-strided
    std::vector<Value> del;  ///< flat, arity-strided
  };
  std::unordered_map<std::string, PredicateDelta> preds;

  bool empty() const { return preds.empty(); }
  size_t ins_rows() const {
    size_t n = 0;
    for (const auto& [_, d] : preds) n += d.ins.size() / d.arity;
    return n;
  }
  size_t del_rows() const {
    size_t n = 0;
    for (const auto& [_, d] : preds) n += d.del.size() / d.arity;
    return n;
  }
};

using EdbDeltaPtr = std::shared_ptr<const EdbDelta>;

}  // namespace sparqlog::datalog
