#include "datalog/ast.h"

#include <algorithm>

namespace sparqlog::datalog {

PredicateId PredicateTable::Intern(const std::string& name, uint32_t arity) {
  auto it = index_.find(name);
  if (it != index_.end()) {
    if (arities_[it->second] != arity) {
      errors_.push_back("predicate '" + name + "' used with arity " +
                        std::to_string(arity) + " and " +
                        std::to_string(arities_[it->second]));
    }
    return it->second;
  }
  PredicateId id = static_cast<PredicateId>(names_.size());
  names_.push_back(name);
  arities_.push_back(arity);
  index_.emplace(name, id);
  return id;
}

std::optional<PredicateId> PredicateTable::Lookup(
    const std::string& name) const {
  auto it = index_.find(name);
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

std::vector<VarId> Rule::SkolemBoundVars() const {
  std::vector<VarId> out;
  for (const BuiltinLit& b : builtins) {
    if (b.kind == BuiltinKind::kSkolem && b.target.is_var) {
      out.push_back(b.target.var);
    }
  }
  return out;
}

namespace {

void CollectAtomVars(const Atom& atom, std::vector<bool>* seen) {
  for (const RuleTerm& t : atom.args) {
    if (t.is_var) {
      if (t.var >= seen->size()) seen->resize(t.var + 1, false);
      (*seen)[t.var] = true;
    }
  }
}

}  // namespace

Status Program::Validate() const {
  if (!predicates.errors().empty()) {
    return Status::InvalidArgument("arity conflicts: " +
                                   predicates.errors().front());
  }
  for (size_t ri = 0; ri < rules.size(); ++ri) {
    const Rule& rule = rules[ri];
    // Range restriction: every variable used in the head, in negated atoms
    // or as a non-assigned builtin operand must be bound by the positive
    // body or by an assignment builtin (Eq with a constant, Skolem target).
    std::vector<bool> bound(rule.var_names.size(), false);
    for (const Atom& a : rule.positive) {
      std::vector<bool> seen;
      CollectAtomVars(a, &seen);
      for (size_t v = 0; v < seen.size(); ++v) {
        if (seen[v]) bound[v] = true;
      }
    }
    // Assignment builtins can bind; run to fixpoint since Eq chains may
    // cascade (X = t, Y = X).
    bool changed = true;
    while (changed) {
      changed = false;
      for (const BuiltinLit& b : rule.builtins) {
        if (b.kind == BuiltinKind::kSkolem ||
            b.kind == BuiltinKind::kAssignExpr) {
          if (b.target.is_var && !bound[b.target.var]) {
            bound[b.target.var] = true;
            changed = true;
          }
        } else if (b.kind == BuiltinKind::kEq) {
          bool lhs_ok = !b.lhs.is_var || bound[b.lhs.var];
          bool rhs_ok = !b.rhs.is_var || bound[b.rhs.var];
          if (lhs_ok && b.rhs.is_var && !bound[b.rhs.var]) {
            bound[b.rhs.var] = true;
            changed = true;
          } else if (rhs_ok && b.lhs.is_var && !bound[b.lhs.var]) {
            bound[b.lhs.var] = true;
            changed = true;
          }
        }
      }
    }
    auto check_bound = [&](const RuleTerm& t, const char* where) -> Status {
      if (t.is_var && (t.var >= bound.size() || !bound[t.var])) {
        return Status::InvalidArgument(
            "rule " + std::to_string(ri) + ": unsafe variable '" +
            (t.var < rule.var_names.size() ? rule.var_names[t.var] : "?") +
            "' in " + where);
      }
      return Status::OK();
    };
    for (const RuleTerm& t : rule.head.args) {
      SPARQLOG_RETURN_NOT_OK(check_bound(t, "head"));
    }
    for (const Atom& a : rule.negative) {
      for (const RuleTerm& t : a.args) {
        SPARQLOG_RETURN_NOT_OK(check_bound(t, "negated atom"));
      }
    }
    for (const BuiltinLit& b : rule.builtins) {
      if (b.kind == BuiltinKind::kNe) {
        SPARQLOG_RETURN_NOT_OK(check_bound(b.lhs, "builtin !="));
        SPARQLOG_RETURN_NOT_OK(check_bound(b.rhs, "builtin !="));
      } else if (b.kind == BuiltinKind::kSkolem) {
        for (const RuleTerm& t : b.skolem_args) {
          SPARQLOG_RETURN_NOT_OK(check_bound(t, "skolem argument"));
        }
      } else if (b.kind == BuiltinKind::kFilterExpr ||
                 b.kind == BuiltinKind::kAssignExpr) {
        for (const auto& [name, v] : b.expr_vars) {
          SPARQLOG_RETURN_NOT_OK(
              check_bound(RuleTerm::Var(v), "filter expression"));
        }
      }
    }
    // Arity check of each atom against the table.
    auto check_atom = [&](const Atom& a) -> Status {
      if (a.args.size() != predicates.Arity(a.predicate)) {
        return Status::InvalidArgument(
            "rule " + std::to_string(ri) + ": atom " +
            predicates.Name(a.predicate) + " has wrong arity");
      }
      return Status::OK();
    };
    SPARQLOG_RETURN_NOT_OK(check_atom(rule.head));
    for (const Atom& a : rule.positive) SPARQLOG_RETURN_NOT_OK(check_atom(a));
    for (const Atom& a : rule.negative) SPARQLOG_RETURN_NOT_OK(check_atom(a));
  }
  for (const Fact& f : facts) {
    if (f.tuple.size() != predicates.Arity(f.predicate)) {
      return Status::InvalidArgument("fact with wrong arity for " +
                                     predicates.Name(f.predicate));
    }
  }
  return Status::OK();
}

RuleTerm RuleBuilder::Var(const std::string& name) {
  return RuleTerm::Var(VarIdOf(name));
}

VarId RuleBuilder::VarIdOf(const std::string& name) {
  auto it = vars_.find(name);
  if (it != vars_.end()) return it->second;
  VarId id = static_cast<VarId>(rule_.var_names.size());
  rule_.var_names.push_back(name);
  vars_.emplace(name, id);
  return id;
}

RuleBuilder& RuleBuilder::Head(const std::string& pred,
                               std::vector<RuleTerm> args) {
  rule_.head.predicate =
      predicates_->Intern(pred, static_cast<uint32_t>(args.size()));
  rule_.head.args = std::move(args);
  return *this;
}

RuleBuilder& RuleBuilder::Body(const std::string& pred,
                               std::vector<RuleTerm> args) {
  Atom a;
  a.predicate = predicates_->Intern(pred, static_cast<uint32_t>(args.size()));
  a.args = std::move(args);
  rule_.positive.push_back(std::move(a));
  return *this;
}

RuleBuilder& RuleBuilder::NegBody(const std::string& pred,
                                  std::vector<RuleTerm> args) {
  Atom a;
  a.predicate = predicates_->Intern(pred, static_cast<uint32_t>(args.size()));
  a.args = std::move(args);
  rule_.negative.push_back(std::move(a));
  return *this;
}

RuleBuilder& RuleBuilder::Eq(RuleTerm lhs, RuleTerm rhs) {
  BuiltinLit b;
  b.kind = BuiltinKind::kEq;
  b.lhs = lhs;
  b.rhs = rhs;
  rule_.builtins.push_back(std::move(b));
  return *this;
}

RuleBuilder& RuleBuilder::Ne(RuleTerm lhs, RuleTerm rhs) {
  BuiltinLit b;
  b.kind = BuiltinKind::kNe;
  b.lhs = lhs;
  b.rhs = rhs;
  rule_.builtins.push_back(std::move(b));
  return *this;
}

RuleBuilder& RuleBuilder::Skolem(RuleTerm target, uint32_t fn,
                                 std::vector<RuleTerm> args) {
  BuiltinLit b;
  b.kind = BuiltinKind::kSkolem;
  b.target = target;
  b.skolem_fn = fn;
  b.skolem_args = std::move(args);
  rule_.builtins.push_back(std::move(b));
  return *this;
}

RuleBuilder& RuleBuilder::Filter(
    sparql::ExprPtr expr, std::vector<std::pair<std::string, VarId>> vars) {
  BuiltinLit b;
  b.kind = BuiltinKind::kFilterExpr;
  b.expr = std::move(expr);
  b.expr_vars = std::move(vars);
  rule_.builtins.push_back(std::move(b));
  return *this;
}

RuleBuilder& RuleBuilder::AssignExpr(
    RuleTerm target, sparql::ExprPtr expr,
    std::vector<std::pair<std::string, VarId>> vars) {
  BuiltinLit b;
  b.kind = BuiltinKind::kAssignExpr;
  b.target = target;
  b.expr = std::move(expr);
  b.expr_vars = std::move(vars);
  rule_.builtins.push_back(std::move(b));
  return *this;
}

Rule RuleBuilder::Build() {
  Rule out = std::move(rule_);
  rule_ = Rule();
  vars_.clear();
  return out;
}

std::vector<RuleTerm> RuleBuilder::PositiveBodyVars() const {
  std::vector<std::string> names;
  for (const Atom& a : rule_.positive) {
    for (const RuleTerm& t : a.args) {
      if (t.is_var) names.push_back(rule_.var_names[t.var]);
    }
  }
  std::sort(names.begin(), names.end());
  names.erase(std::unique(names.begin(), names.end()), names.end());
  std::vector<RuleTerm> out;
  out.reserve(names.size());
  for (const auto& n : names) {
    out.push_back(RuleTerm::Var(vars_.at(n)));
  }
  return out;
}

}  // namespace sparqlog::datalog
