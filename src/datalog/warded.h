#pragma once

#include <string>
#include <vector>

#include "datalog/ast.h"

/// \file warded.h
/// Warded Datalog± analysis (Arenas/Gottlob/Pieris, §3.2 of the paper):
/// computes affected positions and dangerous variables, and checks the
/// ward condition. Head variables whose value is produced by a Skolem
/// builtin are treated as existentially quantified — that is exactly the
/// abstraction the paper applies when realizing TIDs as Skolem terms
/// (Appendix C / E).
///
/// The paper claims every program produced by the SparqLog translation is
/// warded; the test suite verifies this property for all translated
/// programs, and the analyzer is available to callers as a safety check
/// before evaluation.

namespace sparqlog::datalog {

struct WardedReport {
  bool warded = true;
  /// Affected positions as (predicate, column) pairs.
  std::vector<std::pair<PredicateId, uint32_t>> affected_positions;
  /// One message per violating rule.
  std::vector<std::string> violations;
};

/// Analyzes `program` for wardedness.
WardedReport AnalyzeWarded(const Program& program);

}  // namespace sparqlog::datalog
