#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "datalog/value.h"
#include "sparql/ast.h"
#include "util/status.h"

/// \file ast.h
/// Rule language of the Datalog± engine: predicates, atoms, rules with
/// positive/negated atoms and builtin literals, plus the program-level
/// directives (@output / @post) the translation emits.
///
/// Builtin literals cover exactly what the SparqLog translation needs:
///  * equality / disequality between rule terms (`X = t`, `P != p1`),
///    where `=` with one unbound side acts as assignment (Vadalog style);
///  * Skolem-term construction (`ID = ["f3", X, Y, ID2]`);
///  * embedded SPARQL filter expressions, evaluated by the shared
///    expression evaluator ("letting Vadalog take care of complex filter
///    constraints", §5.1).

namespace sparqlog::datalog {

using PredicateId = uint32_t;
using VarId = uint32_t;

/// Interning table for predicate names with arity checking.
class PredicateTable {
 public:
  /// Interns `name` with `arity`; re-interning with a different arity is an
  /// InvalidArgument error surfaced at program-validation time.
  PredicateId Intern(const std::string& name, uint32_t arity);

  std::optional<PredicateId> Lookup(const std::string& name) const;
  const std::string& Name(PredicateId id) const { return names_[id]; }
  uint32_t Arity(PredicateId id) const { return arities_[id]; }
  size_t size() const { return names_.size(); }

  /// Arity mismatches recorded during interning (checked by Validate).
  const std::vector<std::string>& errors() const { return errors_; }

 private:
  std::vector<std::string> names_;
  std::vector<uint32_t> arities_;
  std::unordered_map<std::string, PredicateId> index_;
  std::vector<std::string> errors_;
};

/// A term position in a rule: variable (rule-local id) or constant Value.
struct RuleTerm {
  bool is_var = false;
  VarId var = 0;
  Value constant = 0;

  static RuleTerm Var(VarId v) {
    RuleTerm t;
    t.is_var = true;
    t.var = v;
    return t;
  }
  static RuleTerm Const(Value v) {
    RuleTerm t;
    t.constant = v;
    return t;
  }
};

/// A predicate atom.
struct Atom {
  PredicateId predicate = 0;
  std::vector<RuleTerm> args;
};

enum class BuiltinKind : uint8_t {
  kEq,          ///< lhs = rhs (check, or assignment if one side unbound)
  kNe,          ///< lhs != rhs (both sides must be bound)
  kSkolem,      ///< target = [fn, args...] (target assignment)
  kFilterExpr,  ///< SPARQL expression must evaluate to EBV true
  kAssignExpr,  ///< target := SPARQL expression value (BIND support;
                ///< evaluation errors bind the null constant)
};

/// A builtin literal in a rule body.
struct BuiltinLit {
  BuiltinKind kind = BuiltinKind::kEq;
  RuleTerm lhs, rhs;                  // kEq / kNe
  RuleTerm target;                    // kSkolem
  uint32_t skolem_fn = 0;             // kSkolem (id in the SkolemStore)
  std::vector<RuleTerm> skolem_args;  // kSkolem
  sparql::ExprPtr expr;               // kFilterExpr
  /// Maps expression variable names to rule variables for kFilterExpr.
  std::vector<std::pair<std::string, VarId>> expr_vars;
};

/// One Datalog± rule.
struct Rule {
  Atom head;
  std::vector<Atom> positive;
  std::vector<Atom> negative;
  std::vector<BuiltinLit> builtins;
  /// Rule-local variable names (index = VarId), for printing/diagnostics.
  std::vector<std::string> var_names;
  /// Set by the cost-based planner (datalog/planner.h) after it permuted
  /// `positive` into its chosen join order: the evaluator then executes
  /// the body in written order (delta atom hoisted) instead of running
  /// its runtime greedy ordering. Reordering never changes derived tuple
  /// sets — Skolem tuple IDs are functions of the *sorted* positive body
  /// variables, not of atom positions.
  bool planned = false;
  /// Head variables assigned by a Skolem builtin model the paper's
  /// existential TID variables; cached for the warded analysis.
  std::vector<VarId> SkolemBoundVars() const;
};

/// A ground fact (EDB row).
struct Fact {
  PredicateId predicate = 0;
  std::vector<Value> tuple;
};

/// Ordering key of an @post("orderby") directive. Keys are SPARQL
/// expressions over the output columns (complex ORDER BY arguments like
/// `DESC(!BOUND(?n))` are supported); variable names are resolved against
/// the output column names at solution-translation time.
struct OrderSpec {
  sparql::ExprPtr expr;
  bool descending = false;
  /// Informational column index for the printer (position of a plain
  /// variable key in the output layout, 0 when the key is complex).
  uint32_t column = 0;
};

/// Output / post-processing directives attached to a program
/// (rendered as @output / @post annotations by the printer).
struct OutputSpec {
  PredicateId predicate = 0;
  bool has_tid_column = false;  ///< bag semantics: column 0 is the TID
  bool has_graph_column = true; ///< last column is the active graph D
  bool is_ask = false;          ///< ASK form: single boolean column
  std::vector<std::string> columns;  ///< visible output variable names
  /// Extra trailing columns kept only so ORDER BY can reference
  /// non-projected variables; stripped from the final result.
  std::vector<std::string> hidden_columns;
  std::vector<OrderSpec> order_by;
  std::optional<uint64_t> limit;
  std::optional<uint64_t> offset;
  bool distinct = false;
};

/// A full Datalog± program: rules + facts + directives.
struct Program {
  PredicateTable predicates;
  std::vector<Rule> rules;
  std::vector<Fact> facts;
  OutputSpec output;
  /// Planner annotation: estimated cardinality of the output predicate
  /// (rows), negative when the program was never planned. Carried with
  /// cached programs so the engine can report estimated-vs-actual error
  /// without replanning on warm hits.
  double planned_estimate = -1.0;

  /// Structural sanity checks: arity consistency, range restriction
  /// (every head/negated/builtin variable bound by the positive body or an
  /// assignment builtin).
  Status Validate() const;
};

/// Convenience builder for assembling rules with named variables.
class RuleBuilder {
 public:
  explicit RuleBuilder(PredicateTable* predicates)
      : predicates_(predicates) {}

  /// Rule-local variable by name (interned on first use).
  RuleTerm Var(const std::string& name);
  static RuleTerm Const(Value v) { return RuleTerm::Const(v); }

  RuleBuilder& Head(const std::string& pred, std::vector<RuleTerm> args);
  RuleBuilder& Body(const std::string& pred, std::vector<RuleTerm> args);
  RuleBuilder& NegBody(const std::string& pred, std::vector<RuleTerm> args);
  RuleBuilder& Eq(RuleTerm lhs, RuleTerm rhs);
  RuleBuilder& Ne(RuleTerm lhs, RuleTerm rhs);
  RuleBuilder& Skolem(RuleTerm target, uint32_t fn,
                      std::vector<RuleTerm> args);
  RuleBuilder& Filter(sparql::ExprPtr expr,
                      std::vector<std::pair<std::string, VarId>> vars);
  RuleBuilder& AssignExpr(RuleTerm target, sparql::ExprPtr expr,
                          std::vector<std::pair<std::string, VarId>> vars);

  /// Finishes the rule. The builder can be reused afterwards.
  Rule Build();

  VarId VarIdOf(const std::string& name);

  /// Distinct variables occurring in positive body atoms, sorted by name —
  /// the argument list of the paper's Skolem ID generator (Appendix C:
  /// "a sorted list of all variables occurring in positive atoms of the
  /// rule body").
  std::vector<RuleTerm> PositiveBodyVars() const;

 private:
  PredicateTable* predicates_;
  Rule rule_;
  std::unordered_map<std::string, VarId> vars_;
};

}  // namespace sparqlog::datalog
