#pragma once

#include <memory>

#include "datalog/ast.h"
#include "datalog/incremental.h"
#include "datalog/relation.h"
#include "datalog/stratify.h"
#include "datalog/stratum_memo.h"
#include "datalog/value.h"
#include "eval/expr_eval.h"
#include "util/exec_context.h"
#include "util/status.h"
#include "util/thread_pool.h"

/// \file evaluator.h
/// Bottom-up evaluation of Datalog± programs: stratum-by-stratum
/// semi-naive fixpoint with on-demand hash-index joins, builtin literals
/// (assignment, disequality, Skolem-term construction, embedded SPARQL
/// filters) and stratified negation.
///
/// The engine plays the role of the Vadalog system in the paper: the
/// translation's existential tuple-ID variables are realized as Skolem
/// terms over the positive body (Appendix C), so bag semantics is
/// preserved under the engine's set semantics while fixpoints terminate.

namespace sparqlog::datalog {

/// Evaluation statistics (exposed for benchmarks and ablations).
struct EvalStats {
  uint64_t rules_fired = 0;       ///< successful head insertions
  uint64_t tuples_derived = 0;    ///< distinct tuples added
  uint32_t rounds = 0;            ///< total semi-naive rounds
  uint32_t parallel_rounds = 0;   ///< rounds that ran a sharded fan-out
  uint32_t strata = 0;
  uint32_t strata_memo_hits = 0;    ///< strata restored from the memo
  uint32_t strata_memo_misses = 0;  ///< fingerprinted strata evaluated
  uint64_t tuples_restored = 0;     ///< tuples re-inserted from snapshots
  // Parallel-fixpoint observability (see Engine::stats()).
  uint32_t naive_rounds_sharded = 0;  ///< initial naive passes run sharded
  uint64_t staged_merged = 0;         ///< tuples inserted by barrier merges
  uint32_t merge_fanout_width = 0;    ///< max merge workers in any round
  uint64_t interning_contention = 0;  ///< dict+Skolem lock contention delta
  // Transitive-closure kernel observability (see tc_kernel.h).
  uint32_t tc_kernels_hit = 0;        ///< TC-shaped strata run by the kernel
  uint32_t tc_dense_frontiers = 0;    ///< kernel runs with bitset frontiers
  uint32_t tc_sparse_frontiers = 0;   ///< kernel runs with sorted-vector ones
  // Incremental maintenance (incremental.h + the engine's ApplyUpdate).
  uint32_t strata_incremental = 0;    ///< strata re-derived from an old snapshot
  uint32_t strata_dred = 0;           ///< incremental strata that ran DRed
  uint32_t incremental_fallbacks = 0; ///< DRed-bound aborts → full recompute
  uint64_t tuples_overdeleted = 0;    ///< DRed over-deletions before re-derive
  uint64_t tuples_rederived = 0;      ///< over-deleted tuples derived back
};

/// Evaluation strategy knob for the micro-ablation benchmark: naive mode
/// re-evaluates every rule against full relations each round (this is the
/// behaviour the Stardog-sim baseline inherits).
enum class FixpointMode : uint8_t { kSemiNaive, kNaive };

class Evaluator {
 public:
  Evaluator(rdf::TermDictionary* dict, SkolemStore* skolems)
      : expr_eval_(dict), skolems_(skolems) {}

  void set_mode(FixpointMode mode) { mode_ = mode; }

  /// Worker count for recursive strata. 1 (the default) runs the exact
  /// single-threaded semi-naive path; 0 resolves to
  /// std::thread::hardware_concurrency() at Evaluate time; values > 1
  /// shard the initial naive pass and every delta round by row-id range
  /// across a fixed-size pool, staging derivations per worker and merging
  /// at the round barrier. Every rule shards — interning
  /// (TermDictionary / SkolemStore) is thread-safe, so Skolem and
  /// FILTER/BIND builtins no longer force a serial path. Thread count
  /// never affects result sets (only arena row ids); naive mode and
  /// non-recursive strata always run serially.
  void set_num_threads(uint32_t n) { num_threads_ = n; }

  /// Fans the round-barrier merge out per target predicate (default on).
  /// Off = the serial worker-then-predicate merge, kept as the
  /// BM_BarrierMerge baseline and a safety valve.
  void set_parallel_merge(bool on) { parallel_merge_ = on; }

  /// Shards the initial naive pass of recursive strata (default on).
  /// Off = the serial initial pass with same-pass visibility.
  void set_parallel_naive(bool on) { parallel_naive_ = on; }

  /// Runs TC-shaped recursive strata (one linear closure rule — the
  /// shape every recursive property path translates to) through the
  /// dedicated transitive-closure kernel instead of the generic delta
  /// rounds (default on; see tc_kernel.h). Off = the generic fixpoint,
  /// kept as differential ground truth. Semi-naive mode only; the kernel
  /// never changes result sets, only arena row ids.
  void set_tc_kernel(bool on) { tc_kernel_ = on; }

  /// Attaches a cross-query stratum memo (see stratum_memo.h).
  /// `dataset_fp` is the generation fingerprint of the dataset the EDB
  /// was materialized from; it anchors every EDB input in the composed
  /// stratum fingerprints. Completed strata are snapshotted into the
  /// memo, and strata whose fingerprint already has a snapshot are
  /// restored instead of evaluated. Only the semi-naive mode consults
  /// the memo (naive mode is the reference semantics for differentials).
  void set_stratum_memo(StratumMemo* memo, uint64_t dataset_fp) {
    memo_ = memo;
    dataset_fp_ = dataset_fp;
  }

  /// Incremental-maintenance input, provided by the engine alongside the
  /// stratum memo. `versions` refines every EDB anchor in the stratum
  /// fingerprints (it must be passed consistently across queries once
  /// updates have happened); `delta` + `prev_versions` describe the
  /// latest `ApplyUpdate`, enabling the incremental stratum path: on a
  /// memo miss whose previous-versions fingerprint still has a snapshot,
  /// the stratum is re-derived from that snapshot plus the input deltas
  /// (insertions as one extra semi-naive round, deletions via DRed)
  /// instead of from scratch. Lifetimes: the maps must outlive the
  /// Evaluate call; `delta` is shared-owned.
  struct IncrementalInput {
    EdbDeltaPtr delta;                             ///< latest update's delta
    const EdbVersionMap* versions = nullptr;       ///< current EDB versions
    const EdbVersionMap* prev_versions = nullptr;  ///< versions before delta
    uint64_t max_overdelete = 1ull << 20;          ///< DRed bound → fallback
  };
  void set_incremental(IncrementalInput input) { inc_ = std::move(input); }

  /// Evaluates `program` with EDB relations from `edb` (indexes may be
  /// built on it, tuples are never added), materializing derived tuples
  /// into `idb`. IDB and EDB predicate sets must be disjoint.
  Status Evaluate(const Program& program, Database* edb, Database* idb,
                  ExecContext* ctx);

  const EvalStats& stats() const { return stats_; }

 private:
  struct RuleRun;  // per-invocation state, defined in the .cc

  eval::ExprEvaluator expr_eval_;
  SkolemStore* skolems_;
  FixpointMode mode_ = FixpointMode::kSemiNaive;
  uint32_t num_threads_ = 1;
  bool parallel_merge_ = true;
  bool parallel_naive_ = true;
  bool tc_kernel_ = true;
  StratumMemo* memo_ = nullptr;
  uint64_t dataset_fp_ = 0;
  IncrementalInput inc_;
  std::unique_ptr<ThreadPool> pool_;  // lazily sized on first parallel round
  EvalStats stats_;
};

}  // namespace sparqlog::datalog
