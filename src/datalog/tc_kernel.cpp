#include "datalog/tc_kernel.h"

#include <algorithm>
#include <cstdint>
#include <iterator>
#include <unordered_map>
#include <utility>
#include <vector>

namespace sparqlog::datalog {

namespace {

bool HasVar(const Atom& atom, VarId v) {
  for (const RuleTerm& t : atom.args) {
    if (t.is_var && t.var == v) return true;
  }
  return false;
}

/// Frozen step relation as CSR over dense node ids. Edges are sorted by
/// (src, dst) before the build, so each adjacency list is ascending and
/// the whole structure is deterministic for a given relation state.
struct Csr {
  std::vector<uint32_t> offsets;  // N + 1
  std::vector<uint32_t> adj;
};

/// Bitset node set with touched-word clearing: Reset() costs O(words
/// actually used), so per-group reuse stays cheap even when one group
/// reaches a tiny corner of a large universe.
class DenseSet {
 public:
  explicit DenseSet(uint32_t n) : words_((static_cast<size_t>(n) + 63) / 64) {}

  /// Sets bit `v`; returns true when it was not set before.
  bool TestSet(uint32_t v) {
    uint64_t& w = words_[v >> 6];
    const uint64_t bit = 1ull << (v & 63);
    if (w & bit) return false;
    if (w == 0) touched_.push_back(v >> 6);
    w |= bit;
    return true;
  }

  bool Test(uint32_t v) const {
    return (words_[v >> 6] & (1ull << (v & 63))) != 0;
  }

  void Reset() {
    for (uint32_t i : touched_) words_[i] = 0;
    touched_.clear();
  }

 private:
  std::vector<uint64_t> words_;
  std::vector<uint32_t> touched_;
};

/// Reusable per-worker BFS state; the vectors keep their capacity across
/// groups, so steady-state closure runs allocation-free.
struct GroupScratch {
  DenseSet expanded, emitted;             // dense mode
  std::vector<uint32_t> frontier, next;   // dense frontiers
  std::vector<uint32_t> s_expanded, s_emitted, cand, fresh, tmp;  // sparse
  // Seed membership of the current group, for duplicate filtering at
  // emission time: bitset in dense mode, sorted ids in sparse mode.
  DenseSet seed_set;
  std::vector<uint32_t> sorted_seeds;
  GroupScratch(uint32_t n, bool dense)
      : expanded(dense ? n : 0),
        emitted(dense ? n : 0),
        seed_set(dense ? n : 0) {}
};

/// Seed-membership filter shared by the serial and parallel emit paths.
/// An endpoint emitted for carry group `c` is already present in the
/// target relation **iff** it is one of `c`'s seeds: detection fixes
/// every non-carry / non-join head column to a shape constant, so a
/// target row can only equal an emitted row by being a seed row of the
/// same group. This is what lets emission skip per-tuple hash dedup
/// entirely and batch-append through Relation::AppendDistinct.
class SeedFilter {
 public:
  SeedFilter(GroupScratch* scratch, bool dense)
      : scratch_(scratch), dense_(dense) {}

  void Load(const std::vector<uint32_t>& seeds) {
    if (dense_) {
      for (uint32_t u : seeds) scratch_->seed_set.TestSet(u);
    } else {
      scratch_->sorted_seeds.assign(seeds.begin(), seeds.end());
      std::sort(scratch_->sorted_seeds.begin(),
                scratch_->sorted_seeds.end());
    }
  }

  bool Contains(uint32_t v) const {
    if (dense_) return scratch_->seed_set.Test(v);
    return std::binary_search(scratch_->sorted_seeds.begin(),
                              scratch_->sorted_seeds.end(), v);
  }

  void Unload() {
    if (dense_) scratch_->seed_set.Reset();
  }

 private:
  GroupScratch* scratch_;
  bool dense_;
};

/// One carry group, dense mode: classic frontier BFS with the visited
/// ("expanded") and already-emitted endpoint sets held as bitsets.
/// `emit(v)` is called exactly once per endpoint reached in >= 1 step;
/// `pace(advance)` charges `advance` edge traversals against the
/// ExecContext deadline stride.
template <typename EmitFn, typename PaceFn>
Status CloseGroupDense(const Csr& csr, const std::vector<uint32_t>& seeds,
                       GroupScratch* s, EmitFn&& emit, PaceFn&& pace) {
  s->frontier.clear();
  for (uint32_t u : seeds) {
    if (s->expanded.TestSet(u)) s->frontier.push_back(u);
  }
  while (!s->frontier.empty()) {
    s->next.clear();
    for (uint32_t u : s->frontier) {
      const uint32_t lo = csr.offsets[u];
      const uint32_t hi = csr.offsets[u + 1];
      SPARQLOG_RETURN_NOT_OK(pace(hi - lo));
      for (uint32_t e = lo; e < hi; ++e) {
        const uint32_t v = csr.adj[e];
        if (s->emitted.TestSet(v)) SPARQLOG_RETURN_NOT_OK(emit(v));
        if (s->expanded.TestSet(v)) s->next.push_back(v);
      }
    }
    std::swap(s->frontier, s->next);
  }
  s->expanded.Reset();
  s->emitted.Reset();
  return Status::OK();
}

/// One carry group, sparse mode: frontiers and node sets are sorted id
/// vectors advanced with set_difference/set_union rounds — no
/// universe-sized state, so a huge node universe with shallow closures
/// costs only the ids actually touched.
template <typename EmitFn, typename PaceFn>
Status CloseGroupSparse(const Csr& csr, const std::vector<uint32_t>& seeds,
                        GroupScratch* s, EmitFn&& emit, PaceFn&& pace) {
  std::vector<uint32_t>& expanded = s->s_expanded;
  std::vector<uint32_t>& emitted = s->s_emitted;
  std::vector<uint32_t>& frontier = s->frontier;
  std::vector<uint32_t>& cand = s->cand;
  std::vector<uint32_t>& fresh = s->fresh;
  std::vector<uint32_t>& tmp = s->tmp;

  expanded.assign(seeds.begin(), seeds.end());
  std::sort(expanded.begin(), expanded.end());
  expanded.erase(std::unique(expanded.begin(), expanded.end()),
                 expanded.end());
  emitted.clear();
  frontier = expanded;
  while (!frontier.empty()) {
    cand.clear();
    for (uint32_t u : frontier) {
      const uint32_t lo = csr.offsets[u];
      const uint32_t hi = csr.offsets[u + 1];
      SPARQLOG_RETURN_NOT_OK(pace(hi - lo));
      cand.insert(cand.end(), csr.adj.begin() + lo, csr.adj.begin() + hi);
    }
    std::sort(cand.begin(), cand.end());
    cand.erase(std::unique(cand.begin(), cand.end()), cand.end());
    // Endpoints reached for the first time become emissions.
    fresh.clear();
    std::set_difference(cand.begin(), cand.end(), emitted.begin(),
                        emitted.end(), std::back_inserter(fresh));
    for (uint32_t v : fresh) SPARQLOG_RETURN_NOT_OK(emit(v));
    tmp.clear();
    std::set_union(emitted.begin(), emitted.end(), fresh.begin(), fresh.end(),
                   std::back_inserter(tmp));
    emitted.swap(tmp);
    // Endpoints never expanded before form the next frontier.
    fresh.clear();
    std::set_difference(cand.begin(), cand.end(), expanded.begin(),
                        expanded.end(), std::back_inserter(fresh));
    tmp.clear();
    std::set_union(expanded.begin(), expanded.end(), fresh.begin(),
                   fresh.end(), std::back_inserter(tmp));
    expanded.swap(tmp);
    frontier = fresh;
  }
  return Status::OK();
}

}  // namespace

std::optional<TcShape> DetectTcShape(
    const Program& program, const std::vector<uint32_t>& stratum_rules,
    const std::unordered_set<PredicateId>& stratum_heads) {
  // Exactly one recursive (rule, atom) dependency across the stratum —
  // nonlinear doubling rules and mutual recursion both show up as a
  // second dependency and fall back to the generic fixpoint.
  int rule_index = -1;
  int rec_index = -1;
  for (uint32_t ri : stratum_rules) {
    const Rule& r = program.rules[ri];
    for (size_t ai = 0; ai < r.positive.size(); ++ai) {
      if (stratum_heads.count(r.positive[ai].predicate) == 0) continue;
      if (rule_index >= 0) return std::nullopt;
      rule_index = static_cast<int>(ri);
      rec_index = static_cast<int>(ai);
    }
    for (const Atom& n : r.negative) {
      if (stratum_heads.count(n.predicate)) return std::nullopt;
    }
  }
  if (rule_index < 0) return std::nullopt;

  const Rule& rule = program.rules[rule_index];
  if (!rule.negative.empty()) return std::nullopt;
  if (rule.positive.size() != 2) return std::nullopt;
  const uint32_t edge_index = 1u - static_cast<uint32_t>(rec_index);
  const Atom& rec = rule.positive[rec_index];
  const Atom& edge = rule.positive[edge_index];
  const Atom& head = rule.head;
  if (rec.predicate != head.predicate) return std::nullopt;
  if (rec.args.size() != head.args.size()) return std::nullopt;
  if (edge.args.empty()) return std::nullopt;

  // Builtins must all be `V = const` assignments of head-only variables
  // (the bag-mode closure rule assigns the empty tuple id this way).
  // Anything else — filters, Skolems, assignments consumed by the body —
  // is outside the kernel's model.
  std::unordered_map<VarId, Value> fixed;
  for (const BuiltinLit& b : rule.builtins) {
    if (b.kind != BuiltinKind::kEq) return std::nullopt;
    const RuleTerm* vt = nullptr;
    const RuleTerm* ct = nullptr;
    if (b.lhs.is_var && !b.rhs.is_var) {
      vt = &b.lhs;
      ct = &b.rhs;
    } else if (!b.lhs.is_var && b.rhs.is_var) {
      vt = &b.rhs;
      ct = &b.lhs;
    } else {
      return std::nullopt;
    }
    if (!fixed.emplace(vt->var, ct->constant).second) return std::nullopt;
  }
  for (const Atom* a : {&rec, &edge}) {
    for (const RuleTerm& t : a->args) {
      if (t.is_var && fixed.count(t.var)) return std::nullopt;
    }
  }
  // No implicit self-joins: a variable may not repeat within one atom.
  for (const Atom* a : {&rec, &edge}) {
    for (size_t i = 0; i < a->args.size(); ++i) {
      if (!a->args[i].is_var) continue;
      for (size_t j = i + 1; j < a->args.size(); ++j) {
        if (a->args[j].is_var && a->args[j].var == a->args[i].var) {
          return std::nullopt;
        }
      }
    }
  }

  TcShape shape;
  shape.rule_index = static_cast<uint32_t>(rule_index);
  shape.rec_atom = static_cast<uint32_t>(rec_index);
  shape.edge_atom = edge_index;

  // Column-by-column correspondence between the recursive atom and the
  // head (same predicate, same arity): exactly one join column J (shared
  // with the step atom, replaced by the step output in the head), exactly
  // one carry column A (repeated verbatim), everything else constant.
  // A second shared variable — e.g. the graph variable of a closure
  // under GRAPH ?g — fails the single-J requirement and bails.
  int join_col = -1;
  int carry_col = -1;
  for (uint32_t k = 0; k < rec.args.size(); ++k) {
    const RuleTerm& r = rec.args[k];
    const RuleTerm& h = head.args[k];
    if (!r.is_var) {
      Value hv;
      if (!h.is_var) {
        hv = h.constant;
      } else {
        auto it = fixed.find(h.var);
        if (it == fixed.end()) return std::nullopt;
        hv = it->second;
      }
      if (hv != r.constant) return std::nullopt;
      shape.rec_consts.emplace_back(k, r.constant);
      continue;
    }
    const bool in_edge = HasVar(edge, r.var);
    const bool in_head = HasVar(head, r.var);
    if (in_edge) {
      if (in_head || join_col >= 0) return std::nullopt;
      join_col = static_cast<int>(k);
    } else if (in_head) {
      if (!h.is_var || h.var != r.var || carry_col >= 0) return std::nullopt;
      carry_col = static_cast<int>(k);
    } else {
      // Rec-side don't-care: the head column must be a constant
      // (possibly builtin-assigned) so the emission template is fixed.
      if (h.is_var && !fixed.count(h.var)) return std::nullopt;
    }
  }
  if (join_col < 0 || carry_col < 0) return std::nullopt;

  const RuleTerm& hb = head.args[join_col];
  if (!hb.is_var || fixed.count(hb.var)) return std::nullopt;
  const VarId out_var = hb.var;
  const VarId join_var = rec.args[join_col].var;
  const VarId carry_var = rec.args[carry_col].var;
  if (out_var == carry_var || out_var == join_var) return std::nullopt;
  if (HasVar(rec, out_var)) return std::nullopt;

  int edge_join = -1;
  int edge_out = -1;
  for (uint32_t k = 0; k < edge.args.size(); ++k) {
    const RuleTerm& t = edge.args[k];
    if (!t.is_var) {
      shape.edge_consts.emplace_back(k, t.constant);
      continue;
    }
    if (t.var == join_var) {
      edge_join = static_cast<int>(k);
    } else if (t.var == out_var) {
      edge_out = static_cast<int>(k);
    } else if (HasVar(head, t.var) || HasVar(rec, t.var)) {
      // Step-side don't-cares must stay local to the step atom.
      return std::nullopt;
    }
  }
  if (edge_join < 0 || edge_out < 0) return std::nullopt;

  shape.join_col = static_cast<uint32_t>(join_col);
  shape.carry_col = static_cast<uint32_t>(carry_col);
  shape.edge_join_col = static_cast<uint32_t>(edge_join);
  shape.edge_out_col = static_cast<uint32_t>(edge_out);
  shape.head_template.resize(head.args.size());
  for (uint32_t k = 0; k < head.args.size(); ++k) {
    if (k == shape.carry_col || k == shape.join_col) {
      shape.head_template[k] = 0;  // overwritten per emission
      continue;
    }
    const RuleTerm& h = head.args[k];
    shape.head_template[k] = h.is_var ? fixed.at(h.var) : h.constant;
  }
  return shape;
}

Result<TcKernelStats> RunTcKernel(const TcShape& shape,
                                  const Program& program, Database* edb,
                                  Database* idb, uint32_t insert_round,
                                  ExecContext* ctx, uint32_t* clock_phase,
                                  ThreadPool* pool) {
  TcKernelStats out;
  const Rule& rule = program.rules[shape.rule_index];
  const Atom& edge_atom = rule.positive[shape.edge_atom];
  const uint32_t head_arity =
      static_cast<uint32_t>(shape.head_template.size());
  Relation* target = idb->FindMutable(rule.head.predicate);
  if (target == nullptr) return out;  // no seed rows: closure is empty

  // Freeze the step relation. The step predicate is outside the stratum
  // (detection guarantees it), so its relation — EDB or a lower-stratum
  // IDB — cannot change underneath the kernel.
  std::unordered_map<Value, uint32_t> node_ids;
  std::vector<Value> node_values;
  auto intern = [&](Value v) {
    auto [it, fresh] =
        node_ids.emplace(v, static_cast<uint32_t>(node_values.size()));
    if (fresh) node_values.push_back(v);
    return it->second;
  };
  std::vector<std::pair<uint32_t, uint32_t>> edges;
  for (Database* db : {edb, idb}) {
    const Relation* rel = db->Find(edge_atom.predicate);
    if (rel == nullptr) continue;
    const uint32_t n = static_cast<uint32_t>(rel->size());
    edges.reserve(edges.size() + n);
    for (uint32_t id = 0; id < n; ++id) {
      SPARQLOG_RETURN_NOT_OK(ctx->CheckBudgetShared(clock_phase));
      RowRef row = rel->row(id);
      bool match = true;
      for (const auto& [col, v] : shape.edge_consts) {
        if (row[col] != v) {
          match = false;
          break;
        }
      }
      if (!match) continue;
      const uint32_t src = intern(row[shape.edge_join_col]);
      const uint32_t dst = intern(row[shape.edge_out_col]);
      edges.emplace_back(src, dst);
    }
  }
  if (edges.empty()) return out;

  // Distinct extra step columns (bag-mode tuple ids) can project many
  // rows onto one (src, dst) pair; dedup so BFS work is per edge, not
  // per row. Sorting also fixes ascending adjacency order.
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());

  // Seeds: every existing head row, bucketed by carry value. Endpoints
  // with no outgoing step edge are skipped — they cannot derive anything.
  std::unordered_map<Value, std::vector<uint32_t>> group_map;
  const uint32_t base_rows = static_cast<uint32_t>(target->size());
  for (uint32_t id = 0; id < base_rows; ++id) {
    SPARQLOG_RETURN_NOT_OK(ctx->CheckBudgetShared(clock_phase));
    RowRef row = target->row(id);
    bool match = true;
    for (const auto& [col, v] : shape.rec_consts) {
      if (row[col] != v) {
        match = false;
        break;
      }
    }
    if (!match) continue;
    auto it = node_ids.find(row[shape.join_col]);
    if (it == node_ids.end()) continue;
    group_map[row[shape.carry_col]].push_back(it->second);
  }
  if (group_map.empty()) return out;

  const uint32_t num_nodes = static_cast<uint32_t>(node_values.size());
  Csr csr;
  csr.offsets.assign(num_nodes + 1, 0);
  for (const auto& e : edges) ++csr.offsets[e.first + 1];
  for (uint32_t i = 0; i < num_nodes; ++i) csr.offsets[i + 1] += csr.offsets[i];
  csr.adj.reserve(edges.size());
  for (const auto& e : edges) csr.adj.push_back(e.second);  // sorted by src

  // Deterministic group order — also the parallel merge order.
  std::vector<std::pair<Value, std::vector<uint32_t>>> groups;
  groups.reserve(group_map.size());
  for (auto& [carry, seeds] : group_map) {
    groups.emplace_back(carry, std::move(seeds));
  }
  std::sort(groups.begin(), groups.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  // Bitset frontiers pay the universe-sized allocation per worker plus a
  // touched-word clear per group; sorted-vector frontiers pay
  // O(touched log touched) per round instead. Edge count cannot tell the
  // modes apart — the universe is built from edge endpoints, so
  // num_nodes <= 2 * edges always. Seed density can: a constant-seeded
  // path closure (one seed over a large graph) touches a sliver of the
  // universe per group, while whole-relation closures carry one seed per
  // base edge. Small universes always take the dense path — the bitsets
  // are a few cache lines.
  uint64_t total_seeds = 0;
  for (const auto& [carry, seeds] : groups) total_seeds += seeds.size();
  out.dense = num_nodes < 4096 || total_seeds * 64 >= num_nodes;

  const size_t workers =
      (pool != nullptr && groups.size() > 1) ? pool->num_workers() : 1;
  if (workers <= 1) {
    GroupScratch scratch(num_nodes, out.dense);
    SeedFilter seed_filter(&scratch, out.dense);
    std::vector<Value> head_row = shape.head_template;
    // New rows are staged flat and batch-appended once: the bitset (or
    // sorted-frontier) dedup plus the seed filter prove every staged row
    // distinct, so the append needs no per-tuple hash probes (see
    // Relation::AppendDistinct). Arena order matches the old per-emit
    // Insert path exactly — duplicates were no-ops there too.
    std::vector<Value> staged;
    std::vector<uint32_t> group_new;
    uint64_t staged_rows = 0;
    for (const auto& [carry, seeds] : groups) {
      head_row[shape.carry_col] = carry;
      seed_filter.Load(seeds);
      // Deadline pacing rides on pace() (one stride charge per node
      // expansion); the tuple budget is checked arithmetically per
      // staged row and charged to the context once at the end, exactly
      // like the parallel staging path. Emission collects bare node ids;
      // the full head rows are materialized in one batch per group.
      group_new.clear();
      auto emit = [&](uint32_t node) -> Status {
        ++out.emitted;
        if (!seed_filter.Contains(node)) {
          group_new.push_back(node);
          if (ctx->tuples_used() + staged_rows + group_new.size() >
              ctx->tuple_budget()) {
            return Status::ResourceExhausted(
                "tuple budget exceeded (mem-out)");
          }
        }
        return Status::OK();
      };
      auto pace = [&](uint32_t advance) -> Status {
        return ctx->CheckBudgetShared(clock_phase, advance);
      };
      SPARQLOG_RETURN_NOT_OK(
          out.dense ? CloseGroupDense(csr, seeds, &scratch, emit, pace)
                    : CloseGroupSparse(csr, seeds, &scratch, emit, pace));
      seed_filter.Unload();
      staged.resize((staged_rows + group_new.size()) * head_arity);
      Value* dst = staged.data() + staged_rows * head_arity;
      for (uint32_t node : group_new) {
        std::copy(head_row.begin(), head_row.end(), dst);
        dst[shape.join_col] = node_values[node];
        dst += head_arity;
      }
      staged_rows += group_new.size();
    }
    target->AppendDistinct(staged.data(), staged_rows, insert_round);
    out.inserted += staged_rows;
    ctx->AddTuples(staged_rows);
    SPARQLOG_RETURN_NOT_OK(ctx->CheckBudgetShared(
        clock_phase, static_cast<uint32_t>(staged_rows)));
    return out;
  }

  // Parallel: carry groups are disjoint by construction (every emitted
  // row embeds its group's carry value), so dealing them across workers
  // cannot stage the same row twice, and the per-group seed filter makes
  // each worker's staging buffer globally distinct with no reads of
  // `target` at all. The single-writer batch appends below run after the
  // region barrier, in worker order, so the arena stays deterministic
  // for a fixed thread count — the same contract as the generic staged
  // merge.
  struct TcWorker {
    std::vector<Value> staging;  // flat, head-arity stride
    uint64_t emitted = 0;
    uint64_t staged = 0;
    uint32_t phase = 0;
    Status status;
  };
  std::vector<TcWorker> ws(workers);
  const bool dense = out.dense;
  pool->RunOnWorkers([&](size_t w) {
    TcWorker& me = ws[w];
    GroupScratch scratch(num_nodes, dense);
    SeedFilter seed_filter(&scratch, dense);
    std::vector<Value> head_row = shape.head_template;
    std::vector<uint32_t> group_new;
    for (size_t g = w; g < groups.size(); g += workers) {
      head_row[shape.carry_col] = groups[g].first;
      seed_filter.Load(groups[g].second);
      group_new.clear();
      auto emit = [&](uint32_t node) -> Status {
        ++me.emitted;
        if (!seed_filter.Contains(node)) {
          group_new.push_back(node);
          if (ctx->tuples_used() + me.staged + group_new.size() >
              ctx->tuple_budget()) {
            return Status::ResourceExhausted(
                "tuple budget exceeded (mem-out)");
          }
        }
        return Status::OK();
      };
      auto pace = [&](uint32_t advance) -> Status {
        return ctx->CheckBudgetShared(&me.phase, advance);
      };
      me.status =
          dense ? CloseGroupDense(csr, groups[g].second, &scratch, emit, pace)
                : CloseGroupSparse(csr, groups[g].second, &scratch, emit,
                                   pace);
      if (!me.status.ok()) return;
      seed_filter.Unload();
      me.staging.resize((me.staged + group_new.size()) * head_arity);
      Value* dst = me.staging.data() + me.staged * head_arity;
      for (uint32_t node : group_new) {
        std::copy(head_row.begin(), head_row.end(), dst);
        dst[shape.join_col] = node_values[node];
        dst += head_arity;
      }
      me.staged += group_new.size();
    }
  });
  for (TcWorker& w : ws) {
    out.emitted += w.emitted;
    SPARQLOG_RETURN_NOT_OK(w.status);
  }
  for (TcWorker& w : ws) {
    if (w.staged == 0) continue;
    target->AppendDistinct(w.staging.data(), w.staged, insert_round);
    out.inserted += w.staged;
    ctx->AddTuples(w.staged);
    SPARQLOG_RETURN_NOT_OK(
        ctx->CheckBudgetShared(clock_phase, static_cast<uint32_t>(w.staged)));
  }
  return out;
}

}  // namespace sparqlog::datalog
