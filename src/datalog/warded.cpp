#include "datalog/warded.h"

#include <set>

namespace sparqlog::datalog {

namespace {

using Position = std::pair<PredicateId, uint32_t>;

/// True if `var` is existential in `rule` (bound by a Skolem builtin, the
/// engine's realization of ∃ in rule heads).
bool IsExistential(const Rule& rule, VarId var) {
  for (const BuiltinLit& b : rule.builtins) {
    if (b.kind == BuiltinKind::kSkolem && b.target.is_var &&
        b.target.var == var) {
      return true;
    }
  }
  return false;
}

}  // namespace

WardedReport AnalyzeWarded(const Program& program) {
  WardedReport report;

  // --- 1. affected positions (fixpoint) -----------------------------------
  // A position is affected if some rule head writes an existential variable
  // there, or writes a body variable all of whose body occurrences are at
  // affected positions.
  std::set<Position> affected;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Rule& rule : program.rules) {
      for (uint32_t hi = 0; hi < rule.head.args.size(); ++hi) {
        const RuleTerm& t = rule.head.args[hi];
        if (!t.is_var) continue;
        Position pos{rule.head.predicate, hi};
        if (affected.count(pos)) continue;
        bool make_affected = false;
        if (IsExistential(rule, t.var)) {
          make_affected = true;
        } else {
          // All body occurrences at affected positions (and at least one
          // body occurrence; variables bound by plain builtins do not
          // propagate nulls).
          bool occurs = false;
          bool all_affected = true;
          for (const Atom& a : rule.positive) {
            for (uint32_t ai = 0; ai < a.args.size(); ++ai) {
              if (a.args[ai].is_var && a.args[ai].var == t.var) {
                occurs = true;
                if (!affected.count({a.predicate, ai})) all_affected = false;
              }
            }
          }
          make_affected = occurs && all_affected;
        }
        if (make_affected) {
          affected.insert(pos);
          changed = true;
        }
      }
    }
  }
  report.affected_positions.assign(affected.begin(), affected.end());

  // --- 2. dangerous variables & ward check ---------------------------------
  for (size_t ri = 0; ri < program.rules.size(); ++ri) {
    const Rule& rule = program.rules[ri];
    // A body variable is dangerous if it appears in the head and all of its
    // body occurrences are at affected positions.
    std::set<VarId> head_vars;
    for (const RuleTerm& t : rule.head.args) {
      if (t.is_var && !IsExistential(rule, t.var)) head_vars.insert(t.var);
    }
    std::set<VarId> dangerous;
    for (VarId v : head_vars) {
      bool occurs = false, all_affected = true;
      for (const Atom& a : rule.positive) {
        for (uint32_t ai = 0; ai < a.args.size(); ++ai) {
          if (a.args[ai].is_var && a.args[ai].var == v) {
            occurs = true;
            if (!affected.count({a.predicate, ai})) all_affected = false;
          }
        }
      }
      if (occurs && all_affected) dangerous.insert(v);
    }
    if (dangerous.empty()) continue;

    // All dangerous variables must occur in a single body atom (the ward).
    int ward = -1;
    bool single = false;
    for (size_t ai = 0; ai < rule.positive.size(); ++ai) {
      std::set<VarId> in_atom;
      for (const RuleTerm& t : rule.positive[ai].args) {
        if (t.is_var && dangerous.count(t.var)) in_atom.insert(t.var);
      }
      if (in_atom.size() == dangerous.size()) {
        ward = static_cast<int>(ai);
        single = true;
        break;
      }
    }
    if (!single) {
      report.warded = false;
      report.violations.push_back(
          "rule " + std::to_string(ri) +
          ": dangerous variables not confined to a single body atom");
      continue;
    }
    // Variables shared between the ward and the rest of the body must have
    // a non-affected occurrence in the rest of the body.
    const Atom& ward_atom = rule.positive[static_cast<size_t>(ward)];
    std::set<VarId> ward_vars;
    for (const RuleTerm& t : ward_atom.args) {
      if (t.is_var) ward_vars.insert(t.var);
    }
    for (size_t ai = 0; ai < rule.positive.size(); ++ai) {
      if (static_cast<int>(ai) == ward) continue;
      const Atom& a = rule.positive[ai];
      for (uint32_t pi = 0; pi < a.args.size(); ++pi) {
        const RuleTerm& t = a.args[pi];
        if (!t.is_var || !ward_vars.count(t.var)) continue;
        // Shared variable: needs at least one non-affected occurrence
        // outside the ward.
        bool has_safe = false;
        for (size_t aj = 0; aj < rule.positive.size(); ++aj) {
          if (static_cast<int>(aj) == ward) continue;
          const Atom& b = rule.positive[aj];
          for (uint32_t pj = 0; pj < b.args.size(); ++pj) {
            if (b.args[pj].is_var && b.args[pj].var == t.var &&
                !affected.count({b.predicate, pj})) {
              has_safe = true;
            }
          }
        }
        if (!has_safe) {
          report.warded = false;
          report.violations.push_back(
              "rule " + std::to_string(ri) + ": variable '" +
              rule.var_names[t.var] +
              "' shared with the ward can propagate nulls");
        }
      }
    }
  }
  return report;
}

}  // namespace sparqlog::datalog
