#include "datalog/stratum_memo.h"

#include <algorithm>

#include "util/hash.h"

namespace sparqlog::datalog {

void StratumSnapshot::Capture(std::string predicate, const Relation& rel) {
  RelationSnapshot rs;
  rs.predicate = std::move(predicate);
  rs.arity = rel.arity();
  rs.num_rows = static_cast<uint32_t>(rel.size());
  rs.rows.reserve(static_cast<size_t>(rs.num_rows) * rs.arity);
  for (RowRef row : rel.rows()) {
    rs.rows.insert(rs.rows.end(), row.begin(), row.end());
  }
  tuples += rs.num_rows;
  relations.push_back(std::move(rs));
}

uint64_t StratumSnapshot::Restore(const PredicateTable& preds, uint32_t round,
                                  Database* idb) const {
  uint64_t restored = 0;
  for (const RelationSnapshot& rel : relations) {
    auto pid = preds.Lookup(rel.predicate);
    assert(pid && preds.Arity(*pid) == rel.arity);  // caller pre-validated
    Relation& r = idb->relation(*pid, rel.arity);
    restored += r.InsertStaged(rel.rows.data(), rel.num_rows, round);
  }
  return restored;
}

size_t StratumSnapshot::bytes() const {
  size_t n = sizeof(StratumSnapshot);
  for (const RelationSnapshot& rel : relations) {
    n += sizeof(RelationSnapshot) + rel.predicate.size() +
         rel.rows.capacity() * sizeof(Value);
  }
  return n;
}

std::shared_ptr<const StratumSnapshot> StratumMemo::Lookup(uint64_t key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) return nullptr;
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->second;
}

void StratumMemo::Insert(uint64_t key, StratumSnapshot snapshot) {
  auto stored = std::make_shared<const StratumSnapshot>(std::move(snapshot));
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    bytes_ -= it->second->second->bytes();
    bytes_ += stored->bytes();
    it->second->second = std::move(stored);
    lru_.splice(lru_.begin(), lru_, it->second);
  } else {
    bytes_ += stored->bytes();
    lru_.emplace_front(key, std::move(stored));
    index_.emplace(key, lru_.begin());
  }
  // Evict from the cold end, but always keep the newest entry so a single
  // oversized stratum still serves its own repeats. A concurrent reader
  // holding an evicted snapshot keeps it alive through its shared_ptr.
  while (bytes_ > max_bytes_ && lru_.size() > 1) {
    bytes_ -= lru_.back().second->bytes();
    index_.erase(lru_.back().first);
    lru_.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

void StratumMemo::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
  bytes_ = 0;
}

namespace {

void Fold(size_t& h, uint64_t v) { HashCombine(h, v); }
void FoldStr(size_t& h, const std::string& s) { HashCombine(h, Fnv1a64(s)); }

void FoldExpr(size_t& h, const sparql::Expr& e) {
  Fold(h, static_cast<uint64_t>(e.kind));
  Fold(h, static_cast<uint64_t>(e.compare_op));
  Fold(h, static_cast<uint64_t>(e.arith_op));
  Fold(h, static_cast<uint64_t>(e.builtin));
  Fold(h, e.term);
  FoldStr(h, e.var);
  Fold(h, e.args.size());
  for (const sparql::ExprPtr& a : e.args) FoldExpr(h, *a);
}

void FoldTerm(size_t& h, const RuleTerm& t) {
  Fold(h, t.is_var ? 1 : 2);
  Fold(h, t.is_var ? t.var : t.constant);
}

void FoldAtom(size_t& h, const Program& program, const Atom& atom) {
  FoldStr(h, program.predicates.Name(atom.predicate));
  Fold(h, atom.args.size());
  for (const RuleTerm& t : atom.args) FoldTerm(h, t);
}

void FoldRule(size_t& h, const Program& program, const SkolemStore& skolems,
              const Rule& rule) {
  FoldAtom(h, program, rule.head);
  Fold(h, rule.positive.size());
  // Positive bodies fold order-insensitively (per-atom fingerprints,
  // sorted): the join planner reorders them for cost, and a
  // conjunction's derived relation does not depend on atom order — so a
  // replan (e.g. after an incremental update refreshes EDB statistics)
  // must not orphan every memo entry and old-snapshot anchor.
  std::vector<uint64_t> atom_fps;
  atom_fps.reserve(rule.positive.size());
  for (const Atom& a : rule.positive) {
    size_t ah = 0x243f6a8885a308d3ULL;
    FoldAtom(ah, program, a);
    atom_fps.push_back(ah);
  }
  std::sort(atom_fps.begin(), atom_fps.end());
  for (uint64_t fp : atom_fps) Fold(h, fp);
  Fold(h, rule.negative.size());
  for (const Atom& a : rule.negative) FoldAtom(h, program, a);
  Fold(h, rule.builtins.size());
  for (const BuiltinLit& b : rule.builtins) {
    Fold(h, static_cast<uint64_t>(b.kind));
    FoldTerm(h, b.lhs);
    FoldTerm(h, b.rhs);
    FoldTerm(h, b.target);
    if (b.kind == BuiltinKind::kSkolem) {
      FoldStr(h, skolems.FunctionName(b.skolem_fn));
    }
    Fold(h, b.skolem_args.size());
    for (const RuleTerm& t : b.skolem_args) FoldTerm(h, t);
    if (b.expr) FoldExpr(h, *b.expr);
    Fold(h, b.expr_vars.size());
    for (const auto& [name, var] : b.expr_vars) {
      FoldStr(h, name);
      Fold(h, var);
    }
  }
}

}  // namespace

std::vector<uint64_t> StratumFingerprints(
    const Program& program, const Stratification& strat,
    const SkolemStore& skolems, uint64_t dataset_fp,
    const EdbVersionMap* edb_versions) {
  // Program facts, fingerprinted per predicate in seed order (the seed
  // loop inserts facts in program order, so order is part of the state a
  // snapshot reproduces).
  std::unordered_map<PredicateId, size_t> facts_fp;
  for (const Fact& f : program.facts) {
    size_t& h = facts_fp.try_emplace(f.predicate, 0x9e3779b97f4a7c15ULL)
                    .first->second;
    Fold(h, f.tuple.size());
    for (Value v : f.tuple) Fold(h, v);
  }

  // Defining stratum per rule-defined predicate. Body predicates of a
  // stratum always resolve at or below it, so processing strata in order
  // sees every lower fingerprint already computed.
  std::unordered_map<PredicateId, uint32_t> head_stratum;
  for (uint32_t s = 0; s < strat.num_strata; ++s) {
    for (uint32_t ri : strat.strata_rules[s]) {
      head_stratum.emplace(program.rules[ri].head.predicate, s);
    }
  }

  std::vector<uint64_t> fps(strat.num_strata, 0);
  for (uint32_t s = 0; s < strat.num_strata; ++s) {
    size_t h = 0xcbf29ce484222325ULL;
    const std::vector<uint32_t>& rule_ids = strat.strata_rules[s];
    Fold(h, rule_ids.size());
    for (uint32_t ri : rule_ids) FoldRule(h, program, skolems, program.rules[ri]);

    // Input predicates: everything read by this stratum that it does not
    // define, in sorted-name order for determinism.
    std::vector<PredicateId> inputs;
    std::vector<PredicateId> heads;
    for (uint32_t ri : rule_ids) {
      const Rule& rule = program.rules[ri];
      heads.push_back(rule.head.predicate);
      for (const Atom& a : rule.positive) inputs.push_back(a.predicate);
      for (const Atom& a : rule.negative) inputs.push_back(a.predicate);
    }
    std::sort(heads.begin(), heads.end());
    heads.erase(std::unique(heads.begin(), heads.end()), heads.end());
    std::sort(inputs.begin(), inputs.end());
    inputs.erase(std::unique(inputs.begin(), inputs.end()), inputs.end());
    inputs.erase(std::remove_if(inputs.begin(), inputs.end(),
                                [&](PredicateId p) {
                                  auto it = head_stratum.find(p);
                                  return it != head_stratum.end() &&
                                         it->second == s;
                                }),
                 inputs.end());
    std::sort(inputs.begin(), inputs.end(), [&](PredicateId a, PredicateId b) {
      return program.predicates.Name(a) < program.predicates.Name(b);
    });
    for (PredicateId p : inputs) {
      FoldStr(h, program.predicates.Name(p));
      Fold(h, program.predicates.Arity(p));
      auto it = head_stratum.find(p);
      if (it != head_stratum.end()) {
        Fold(h, fps[it->second]);  // rule-defined strictly below
      } else {
        // EDB relation or always-empty: the anchor refined by the
        // predicate's own mutation counter, so incremental updates only
        // move the fingerprints of strata that actually read a touched
        // predicate.
        Fold(h, dataset_fp);
        uint64_t version = 0;
        if (edb_versions != nullptr) {
          auto vit = edb_versions->find(program.predicates.Name(p));
          if (vit != edb_versions->end()) version = vit->second;
        }
        Fold(h, version);
      }
      auto fit = facts_fp.find(p);
      if (fit != facts_fp.end()) Fold(h, fit->second);
    }
    // Facts seeded into this stratum's own head predicates are part of
    // the snapshot, so they are part of the key.
    for (PredicateId p : heads) {
      auto fit = facts_fp.find(p);
      if (fit != facts_fp.end()) {
        FoldStr(h, program.predicates.Name(p));
        Fold(h, fit->second);
      }
    }
    fps[s] = Fmix64(h);
  }
  return fps;
}

}  // namespace sparqlog::datalog
