#pragma once

#include <string_view>

#include "datalog/ast.h"
#include "datalog/value.h"
#include "rdf/dictionary.h"
#include "util/status.h"

/// \file parser.h
/// Text frontend for the Datalog± engine, accepting the Vadalog-style
/// surface syntax the printer emits (and the paper's figures use):
///
///   edge(<http://a>, <http://b>).
///   tc(X, Y) :- edge(X, Y).
///   tc(X, Z) :- edge(X, Y), tc(Y, Z), X != Z.
///   ans(ID, X) :- tc(X, Y), not sink(Y), ID = ["f1", X, Y].
///   @post("ans", "limit(10)").
///   @output("ans").
///
/// Terms: variables are bare identifiers; constants are <IRIs>, quoted
/// literals (with optional @lang / ^^<datatype>), integers, or doubles.
/// Skolem lists `["fn", args...]` build the engine's TID terms. The
/// embedded-SPARQL builtins (filter / assignment expressions) have no
/// textual form and are not parsed; programs using them round-trip
/// through the C++ API instead.
///
/// This makes the Datalog engine usable standalone — the paper's "view 1"
/// of SparqLog as a translator producing programs a Datalog engine runs.

namespace sparqlog::datalog {

/// Parses `text` into a Program; constants are interned into `dict`,
/// Skolem function names into `skolems`.
Result<Program> ParseProgram(std::string_view text,
                             rdf::TermDictionary* dict, SkolemStore* skolems);

}  // namespace sparqlog::datalog
