#include "datalog/relation.h"

#include <algorithm>

namespace sparqlog::datalog {

bool Relation::Insert(const std::vector<Value>& row, uint32_t round) {
  if (set_.find(row) != set_.end()) return false;
  auto [it, inserted] = set_.emplace(row, static_cast<uint32_t>(rows_.size()));
  uint32_t id = it->second;
  rows_.push_back(&it->first);
  rounds_.push_back(round);
  // Maintain built indexes.
  for (auto& [cols, index] : indexes_) {
    std::vector<Value> key;
    key.reserve(cols.size());
    for (uint32_t c : cols) key.push_back((*rows_[id])[c]);
    index[std::move(key)].push_back(id);
  }
  return true;
}

std::pair<uint32_t, uint32_t> Relation::RoundRange(uint32_t round) const {
  auto lo = std::lower_bound(rounds_.begin(), rounds_.end(), round);
  auto hi = std::upper_bound(rounds_.begin(), rounds_.end(), round);
  return {static_cast<uint32_t>(lo - rounds_.begin()),
          static_cast<uint32_t>(hi - rounds_.begin())};
}

Relation::Index& Relation::GetOrBuildIndex(const std::vector<uint32_t>& cols) {
  auto it = indexes_.find(cols);
  if (it != indexes_.end()) return it->second;
  Index& index = indexes_[cols];
  for (uint32_t id = 0; id < rows_.size(); ++id) {
    std::vector<Value> key;
    key.reserve(cols.size());
    for (uint32_t c : cols) key.push_back((*rows_[id])[c]);
    index[std::move(key)].push_back(id);
  }
  return index;
}

const std::vector<uint32_t>* Relation::Probe(
    const std::vector<uint32_t>& cols, const std::vector<Value>& key) {
  Index& index = GetOrBuildIndex(cols);
  auto it = index.find(key);
  return it == index.end() ? nullptr : &it->second;
}

Relation& Database::relation(uint32_t pred, uint32_t arity) {
  auto it = relations_.find(pred);
  if (it == relations_.end()) {
    it = relations_.emplace(pred, Relation(arity)).first;
  }
  return it->second;
}

const Relation* Database::Find(uint32_t pred) const {
  auto it = relations_.find(pred);
  return it == relations_.end() ? nullptr : &it->second;
}

Relation* Database::FindMutable(uint32_t pred) {
  auto it = relations_.find(pred);
  return it == relations_.end() ? nullptr : &it->second;
}

size_t Database::TotalTuples() const {
  size_t n = 0;
  for (const auto& [_, rel] : relations_) n += rel.size();
  return n;
}

}  // namespace sparqlog::datalog
