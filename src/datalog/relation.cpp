#include "datalog/relation.h"

#include <algorithm>
#include <functional>

#include "util/failpoint.h"

namespace sparqlog::datalog {

namespace {

SPARQLOG_FAILPOINT_DEFINE(g_fp_merge_round, "datalog.merge.round");

/// Initial open-addressing table size (power of two).
constexpr size_t kInitialSlots = 16;

/// Grow when count * 2 >= slots (load factor 0.5).
inline bool NeedsGrow(size_t count, size_t slots) {
  return (count + 1) * 2 >= slots;
}

/// Smallest power-of-two slot count that holds `count` keys below the 0.5
/// load factor — the one-shot table size used by BulkLoad.
inline size_t SlotsFor(size_t count) {
  size_t n = kInitialSlots;
  while (NeedsGrow(count, n)) n *= 2;
  return n;
}

}  // namespace

// --- TupleStore -------------------------------------------------------------

void TupleStore::Grow() {
  Rehash(slots_.empty() ? kInitialSlots : slots_.size() * 2);
}

void TupleStore::Rehash(size_t new_size) {
  std::vector<uint32_t> fresh(new_size, 0);
  size_t mask = new_size - 1;
  for (uint32_t id = 0; id < num_rows_; ++id) {
    size_t slot = HashRow(row_data(id)) & mask;
    while (fresh[slot] != 0) slot = (slot + 1) & mask;
    fresh[slot] = id + 1;
  }
  slots_ = std::move(fresh);
}

template <typename Stride>
uint32_t TupleStore::InsertImpl(Stride s, const Value* row, bool* inserted) {
  if (NeedsGrow(num_rows_, slots_.size())) Grow();
  size_t mask = slots_.size() - 1;
  size_t slot = StrideHashRow(s, row) & mask;
  while (slots_[slot] != 0) {
    uint32_t candidate = slots_[slot] - 1;
    if (StrideRowEquals(s, row_data(candidate), row)) {
      *inserted = false;
      return candidate;
    }
    slot = (slot + 1) & mask;
  }
  uint32_t id = num_rows_++;
  // `row` may alias this arena (e.g. Insert(rel.row(i), ...) copying a
  // tuple of the same relation): reserve up front so the element-wise
  // appends below cannot reallocate mid-loop and invalidate it. The
  // per-element push_back (rather than a range insert) keeps the append
  // well-defined even for an aliased source.
  if (arena_.size() + s.arity() > arena_.capacity()) {
    // std::less gives the total pointer order [expr.rel] doesn't
    // guarantee for pointers into different objects.
    std::less<const Value*> lt;
    bool aliases = !lt(row, arena_.data()) &&
                   lt(row, arena_.data() + arena_.size());
    size_t offset = aliases ? static_cast<size_t>(row - arena_.data()) : 0;
    arena_.reserve(std::max(arena_.capacity() * 2,
                            arena_.size() + s.arity()));
    if (aliases) row = arena_.data() + offset;
  }
  for (uint32_t i = 0; i < s.arity(); ++i) arena_.push_back(row[i]);
  slots_[slot] = id + 1;
  *inserted = true;
  return id;
}

uint32_t TupleStore::Insert(const Value* row, bool* inserted) {
  return WithStride(arity_, [&](auto s) {
    return InsertImpl(s, row, inserted);
  });
}

template <typename Stride>
bool TupleStore::ContainsImpl(Stride s, const Value* row) const {
  if (slots_.empty()) return false;
  size_t mask = slots_.size() - 1;
  size_t slot = StrideHashRow(s, row) & mask;
  while (slots_[slot] != 0) {
    if (StrideRowEquals(s, row_data(slots_[slot] - 1), row)) return true;
    slot = (slot + 1) & mask;
  }
  return false;
}

bool TupleStore::Contains(const Value* row) const {
  return WithStride(arity_, [&](auto s) { return ContainsImpl(s, row); });
}

template <typename Stride>
uint32_t TupleStore::BulkLoadImpl(Stride s, const Value* rows,
                                  size_t num_rows) {
  const uint32_t k = s.arity();
  if (k == 0) return 0;  // nullary stores are never bulk-loaded

  // One-shot dedup table sized for the all-distinct worst case: the whole
  // load runs without a single NeedsGrow check, table doubling or
  // rehash, and the arena is reserved up front so appends never
  // reallocate. Rows keep their first-occurrence order, which makes a
  // bulk-built store bit-identical — arena order included — to one built
  // by per-tuple Insert of the same batch.
  slots_.assign(SlotsFor(num_rows), 0u);
  const size_t mask = slots_.size() - 1;
  arena_.reserve(num_rows * static_cast<size_t>(k));
  const Value* row = rows;
  for (size_t i = 0; i < num_rows; ++i, row += k) {
    size_t slot = StrideHashRow(s, row) & mask;
    bool duplicate = false;
    while (slots_[slot] != 0) {
      if (StrideRowEquals(s, row_data(slots_[slot] - 1), row)) {
        duplicate = true;
        break;
      }
      slot = (slot + 1) & mask;
    }
    if (duplicate) continue;
    arena_.insert(arena_.end(), row, row + k);
    slots_[slot] = ++num_rows_;  // row id + 1
  }

  // A duplicate-heavy batch leaves the worst-case table mostly empty and
  // the arena reservation mostly unused; rebuild the table compactly
  // (distinct rows only — cheap) and release the spare arena capacity so
  // the resident footprint tracks the deduplicated relation, not the
  // raw batch.
  size_t compact = SlotsFor(num_rows_);
  if (compact * 4 <= slots_.size()) Rehash(compact);
  if (arena_.size() * 4 <= arena_.capacity()) arena_.shrink_to_fit();
  return num_rows_;
}

uint32_t TupleStore::BulkLoad(const Value* rows, size_t num_rows) {
  assert(num_rows_ == 0 && arena_.empty());
  assert(arity_ > 0);
  return WithStride(arity_, [&](auto s) {
    return BulkLoadImpl(s, rows, num_rows);
  });
}

template <typename Stride>
void TupleStore::AppendDistinctImpl(Stride s, const Value* rows,
                                    size_t num_rows) {
  const uint32_t k = s.arity();
  const size_t final_rows = num_rows_ + num_rows;
  // One table resize to the final size, then every append probes to the
  // first empty slot: known-new rows need no key comparisons, and the
  // pre-sizing means no incremental doubling mid-batch.
  if (SlotsFor(final_rows) > slots_.size()) Rehash(SlotsFor(final_rows));
  const size_t mask = slots_.size() - 1;
  // One contiguous arena append for the whole batch, then a pure
  // hash-and-slot pass over the freshly copied rows.
  const uint32_t first = num_rows_;
  arena_.reserve(final_rows * static_cast<size_t>(k));
  arena_.insert(arena_.end(), rows,
                rows + num_rows * static_cast<size_t>(k));
  // Hashing streams the arena sequentially; the slot writes that follow
  // land on random cache lines of a table that can be tens of megabytes.
  // Splitting the two lets the second pass prefetch its slots a fixed
  // distance ahead, hiding most of the miss latency.
  std::vector<uint64_t> hashes(num_rows);
  for (size_t i = 0; i < num_rows; ++i) {
    const Value* row = row_data(first + static_cast<uint32_t>(i));
    // The caller's distinctness proof, revalidated in debug builds (note
    // intra-batch duplicates surface only once their earlier copy's slot
    // is written, i.e. on a later AppendDistinct or Contains).
    assert(!ContainsImpl(s, row));
    hashes[i] = StrideHashRow(s, row);
  }
  constexpr size_t kPrefetchAhead = 16;
  for (size_t i = 0; i < num_rows; ++i) {
    if (i + kPrefetchAhead < num_rows) {
      __builtin_prefetch(&slots_[hashes[i + kPrefetchAhead] & mask], 1);
    }
    size_t slot = hashes[i] & mask;
    while (slots_[slot] != 0) slot = (slot + 1) & mask;
    slots_[slot] = ++num_rows_;  // row id + 1
  }
}

void TupleStore::AppendDistinct(const Value* rows, size_t num_rows) {
  assert(arity_ > 0);
  WithStride(arity_, [&](auto s) {
    AppendDistinctImpl(s, rows, num_rows);
    return 0;
  });
}

// --- Relation::Index --------------------------------------------------------

uint64_t Relation::Index::HashProjected(const TupleStore& store,
                                        uint32_t row_id) const {
  const Value* row = store.row_data(row_id);
  // size_t seed (not uint64_t): HashCombine takes size_t&, and the result
  // must stay hash-compatible with HashRange as used by Index::Find.
  size_t seed = 0xcbf29ce484222325ULL;
  for (uint32_t c : cols) {
    HashCombine(seed, std::hash<uint64_t>()(row[c]));
  }
  return Fmix64(seed);
}

bool Relation::Index::KeyEqualsRow(const TupleStore& store,
                                   uint32_t bucket_first,
                                   const Value* key) const {
  const Value* row = store.row_data(bucket_first);
  for (size_t j = 0; j < cols.size(); ++j) {
    if (row[cols[j]] != key[j]) return false;
  }
  return true;
}

bool Relation::Index::ProjectedEquals(const TupleStore& store, uint32_t a,
                                      const Value* b_row) const {
  const Value* a_row = store.row_data(a);
  for (uint32_t c : cols) {
    if (a_row[c] != b_row[c]) return false;
  }
  return true;
}

void Relation::Index::Grow() {
  size_t new_size = slots.empty() ? kInitialSlots : slots.size() * 2;
  std::vector<uint32_t> fresh(new_size, 0);
  std::vector<uint64_t> fresh_hashes(new_size, 0);
  size_t mask = new_size - 1;
  for (size_t s = 0; s < slots.size(); ++s) {
    if (slots[s] == 0) continue;
    size_t slot = slot_hashes[s] & mask;
    while (fresh[slot] != 0) slot = (slot + 1) & mask;
    fresh[slot] = slots[s];
    fresh_hashes[slot] = slot_hashes[s];
  }
  slots = std::move(fresh);
  slot_hashes = std::move(fresh_hashes);
}

void Relation::Index::Add(const TupleStore& store, uint32_t row_id) {
  if (NeedsGrow(num_keys, slots.size())) Grow();
  uint64_t hash = HashProjected(store, row_id);
  size_t mask = slots.size() - 1;
  size_t slot = hash & mask;
  const Value* row = store.row_data(row_id);
  while (slots[slot] != 0) {
    if (slot_hashes[slot] == hash) {
      std::vector<uint32_t>& bucket = buckets[slots[slot] - 1];
      if (ProjectedEquals(store, bucket[0], row)) {
        bucket.push_back(row_id);
        return;
      }
    }
    slot = (slot + 1) & mask;
  }
  buckets.emplace_back(1, row_id);
  slots[slot] = static_cast<uint32_t>(buckets.size());
  slot_hashes[slot] = hash;
  ++num_keys;
}

const std::vector<uint32_t>* Relation::Index::Find(const TupleStore& store,
                                                   const Value* key) const {
  if (slots.empty()) return nullptr;
  uint64_t hash = Fmix64(HashRange(key, key + cols.size()));
  size_t mask = slots.size() - 1;
  size_t slot = hash & mask;
  while (slots[slot] != 0) {
    if (slot_hashes[slot] == hash) {
      const std::vector<uint32_t>& bucket = buckets[slots[slot] - 1];
      if (KeyEqualsRow(store, bucket[0], key)) return &bucket;
    }
    slot = (slot + 1) & mask;
  }
  return nullptr;
}

size_t Relation::Index::bytes() const {
  size_t n = slots.capacity() * sizeof(uint32_t) +
             slot_hashes.capacity() * sizeof(uint64_t) +
             cols.capacity() * sizeof(uint32_t);
  for (const auto& bucket : buckets) {
    n += bucket.capacity() * sizeof(uint32_t) + sizeof(bucket);
  }
  return n;
}

// --- Relation ---------------------------------------------------------------

template <typename Stride>
bool Relation::InsertWithStride(Stride s, const Value* row, uint32_t round) {
  // Semi-naive RoundRange bookkeeping requires non-decreasing rounds.
  assert(round_marks_.empty() || round >= round_marks_.back().first);
  bool inserted = false;
  uint32_t id = store_.InsertImpl(s, row, &inserted);
  if (!inserted) return false;
  if (round_marks_.empty() || round_marks_.back().first != round) {
    round_marks_.emplace_back(round, id);
  }
  ForEachIndex([&](Index& index) { index.Add(store_, id); });
  return true;
}

bool Relation::Insert(const Value* row, uint32_t round) {
  return WithStride(arity(), [&](auto s) {
    return InsertWithStride(s, row, round);
  });
}

size_t Relation::InsertStaged(const Value* rows, size_t num_rows,
                              uint32_t round) {
  // One stride dispatch for the whole staged batch: the barrier merge of
  // a parallel round is a straight run of same-arity inserts.
  return WithStride(arity(), [&](auto s) {
    size_t inserted = 0;
    const Value* row = rows;
    for (size_t i = 0; i < num_rows; ++i, row += s.arity()) {
      if (InsertWithStride(s, row, round)) ++inserted;
    }
    return inserted;
  });
}

void Relation::AppendDistinct(const Value* rows, size_t num_rows,
                              uint32_t round) {
  if (num_rows == 0) return;
  assert(round_marks_.empty() || round >= round_marks_.back().first);
  const uint32_t first = store_.size();
  if (round_marks_.empty() || round_marks_.back().first != round) {
    round_marks_.emplace_back(round, first);
  }
  store_.AppendDistinct(rows, num_rows);
  ForEachIndex([&](Index& index) {
    for (uint32_t id = first; id < store_.size(); ++id) {
      index.Add(store_, id);
    }
  });
}

uint32_t Relation::BulkLoad(const Value* rows, size_t num_rows,
                            uint32_t round) {
  // Bulk loads must be the relation's first mutation: the arena must be
  // empty and no index may exist yet (it would not see the loaded rows).
  assert(size() == 0);
  assert(num_indexes_.load(std::memory_order_relaxed) == 0 &&
         overflow_indexes_.empty());
  uint32_t loaded = store_.BulkLoad(rows, num_rows);
  if (loaded > 0) round_marks_.emplace_back(round, 0);
  return loaded;
}

size_t Relation::RemoveRows(const Value* rows, size_t num_rows,
                            RemovalUndo* undo) {
  const uint32_t k = arity();
  assert(k > 0);
  if (undo != nullptr) *undo = RemovalUndo{};
  if (num_rows == 0 || store_.size() == 0) return 0;
  // Locate each doomed row through the dedup table and unlink it with
  // backward-shift deletion (linear probe chains stay dense, no
  // tombstones). The table keeps serving lookups between unlinks, so a
  // duplicate in `rows` simply probes to an empty slot. Rebuilding the
  // table instead would hash every survivor — O(relation) for a
  // 100-tuple delete.
  std::vector<char> doomed(store_.size(), 0);
  size_t removed = 0;
  WithStride(k, [&](auto s) {
    const size_t mask = store_.slots_.size() - 1;
    const Value* row = rows;
    for (size_t i = 0; i < num_rows; ++i, row += s.arity()) {
      size_t slot = StrideHashRow(s, row) & mask;
      uint32_t found = 0;  // row id + 1
      while (store_.slots_[slot] != 0) {
        uint32_t id = store_.slots_[slot] - 1;
        if (StrideRowEquals(s, store_.row_data(id), row)) {
          found = id + 1;
          break;
        }
        slot = (slot + 1) & mask;
      }
      if (found == 0) continue;
      doomed[found - 1] = 1;
      ++removed;
      // Backward shift: pull forward every chained entry whose home slot
      // does not lie strictly inside (hole, j] — those may legally move
      // into the hole; the rest would land before their home and become
      // unreachable.
      size_t hole = slot;
      size_t j = slot;
      bool open = true;
      while (open) {
        store_.slots_[hole] = 0;
        for (;;) {
          j = (j + 1) & mask;
          const uint32_t v = store_.slots_[j];
          if (v == 0) {
            open = false;
            break;
          }
          const size_t home =
              StrideHashRow(s, store_.row_data(v - 1)) & mask;
          const bool stays = hole < j ? (home > hole && home <= j)
                                      : (home > hole || home <= j);
          if (!stays) {
            store_.slots_[hole] = v;
            hole = j;
            break;
          }
        }
      }
    }
    return 0;
  });
  if (removed == 0) return 0;
  if (undo != nullptr) {
    // The arena is still pre-removal here (only dedup slots were
    // unlinked above), so the doomed scan reads original ids and values.
    undo->prior_rows = store_.size();
    undo->round_marks = round_marks_;
    undo->ids.reserve(removed);
    undo->rows.reserve(removed * k);
    for (uint32_t id = 0; id < store_.size(); ++id) {
      if (!doomed[id]) continue;
      undo->ids.push_back(id);
      const Value* r = store_.row_data(id);
      undo->rows.insert(undo->rows.end(), r, r + k);
    }
  }
  // When every doomed row sits at the arena tail — the common shape for
  // retracting recently inserted tuples — survivors keep their ids:
  // truncate and stop, touching nothing proportional to the relation.
  const uint32_t suffix_keep = store_.size() - static_cast<uint32_t>(removed);
  bool suffix = true;
  for (uint32_t id = suffix_keep; id < store_.size(); ++id) {
    if (!doomed[id]) {
      suffix = false;
      break;
    }
  }
  uint32_t keep = suffix_keep;
  if (suffix) {
    store_.num_rows_ = keep;
    store_.arena_.resize(static_cast<size_t>(keep) * k);
  } else {
    // Compact the arena in place, preserving survivor order, then
    // renumber the surviving ids in the table directly — renaming a row
    // does not move its slot, so no rehash is needed.
    std::vector<uint32_t> new_id(store_.size(), 0);
    keep = 0;
    for (uint32_t id = 0; id < store_.size(); ++id) {
      if (doomed[id]) continue;
      new_id[id] = keep;
      if (keep != id) {
        std::copy(store_.arena_.begin() + static_cast<size_t>(id) * k,
                  store_.arena_.begin() + static_cast<size_t>(id + 1) * k,
                  store_.arena_.begin() + static_cast<size_t>(keep) * k);
      }
      ++keep;
    }
    store_.num_rows_ = keep;
    store_.arena_.resize(static_cast<size_t>(keep) * k);
    for (uint32_t& v : store_.slots_) {
      if (v != 0) v = new_id[v - 1] + 1;
    }
  }
  // A mass delete (e.g. a fixpoint over-delete cascade) can leave the
  // table arbitrarily under-loaded; shrink through the rebuild then.
  if (SlotsFor(keep) * 4 <= store_.slots_.size()) {
    store_.Rehash(SlotsFor(keep));
  }
  // Row ids shifted: round provenance and index buckets are both stale.
  // Survivors collapse into round 0 (the caller re-derives from there)
  // and indexes rebuild lazily on the next probe.
  round_marks_.clear();
  if (keep > 0) round_marks_.emplace_back(0u, 0u);
  for (auto& index : indexes_) index.reset();
  num_indexes_.store(0, std::memory_order_release);
  overflow_indexes_.clear();
  return removed;
}

void Relation::RestoreRemoved(const RemovalUndo& undo) {
  if (undo.empty()) return;
  const uint32_t k = arity();
  assert(store_.size() + undo.ids.size() == undo.prior_rows);
  // Rebuild the pre-removal arena: removed tuples reclaim their original
  // ids, survivors (currently packed in original relative order) fill
  // the gaps in sequence.
  std::vector<Value> arena(static_cast<size_t>(undo.prior_rows) * k);
  std::vector<char> removed_at(undo.prior_rows, 0);
  for (size_t i = 0; i < undo.ids.size(); ++i) {
    const uint32_t id = undo.ids[i];
    removed_at[id] = 1;
    std::copy(undo.rows.begin() + i * k, undo.rows.begin() + (i + 1) * k,
              arena.begin() + static_cast<size_t>(id) * k);
  }
  uint32_t src = 0;
  for (uint32_t id = 0; id < undo.prior_rows; ++id) {
    if (removed_at[id]) continue;
    std::copy(store_.arena_.begin() + static_cast<size_t>(src) * k,
              store_.arena_.begin() + static_cast<size_t>(src + 1) * k,
              arena.begin() + static_cast<size_t>(id) * k);
    ++src;
  }
  assert(src == store_.size());
  store_.arena_ = std::move(arena);
  store_.num_rows_ = undo.prior_rows;
  store_.Rehash(SlotsFor(undo.prior_rows));
  round_marks_ = undo.round_marks;
  for (auto& index : indexes_) index.reset();
  num_indexes_.store(0, std::memory_order_release);
  overflow_indexes_.clear();
}

void Relation::TruncateTo(uint32_t keep_rows) {
  assert(keep_rows <= store_.size());
  if (keep_rows == store_.size()) return;
  store_.num_rows_ = keep_rows;
  store_.arena_.resize(static_cast<size_t>(keep_rows) * arity());
  store_.Rehash(SlotsFor(keep_rows));
  while (!round_marks_.empty() && round_marks_.back().second >= keep_rows) {
    round_marks_.pop_back();
  }
  for (auto& index : indexes_) index.reset();
  num_indexes_.store(0, std::memory_order_release);
  overflow_indexes_.clear();
}

uint32_t Relation::row_round(uint32_t id) const {
  assert(id < store_.size());
  // Find the last mark whose first row id is <= id.
  auto it = std::upper_bound(
      round_marks_.begin(), round_marks_.end(), id,
      [](uint32_t v, const auto& mark) { return v < mark.second; });
  return (--it)->first;
}

std::pair<uint32_t, uint32_t> Relation::RoundRange(uint32_t round) const {
  auto it = std::lower_bound(
      round_marks_.begin(), round_marks_.end(), round,
      [](const auto& mark, uint32_t v) { return mark.first < v; });
  if (it == round_marks_.end() || it->first != round) return {0, 0};
  uint32_t lo = it->second;
  ++it;
  uint32_t hi = it == round_marks_.end() ? store_.size() : it->second;
  return {lo, hi};
}

Relation::Index* Relation::FindPublishedIndex(
    const std::vector<uint32_t>& cols) const {
  uint32_t n = num_indexes_.load(std::memory_order_acquire);
  for (uint32_t i = 0; i < n; ++i) {
    if (indexes_[i]->cols == cols) return indexes_[i].get();
  }
  return nullptr;
}

bool Relation::TryProbe(const std::vector<uint32_t>& cols,
                        const std::vector<Value>& key, MatchSpan* out) {
  Index* index = FindPublishedIndex(cols);
  if (index == nullptr) {
    std::lock_guard<std::mutex> lock(index_build_mu_);
    index = FindPublishedIndex(cols);  // another worker may have raced us
    if (index == nullptr) {
      uint32_t n = num_indexes_.load(std::memory_order_relaxed);
      if (n == kMaxPublishedIndexes) return false;
      auto fresh = std::make_unique<Index>();
      fresh->cols = cols;
      for (uint32_t id = 0; id < store_.size(); ++id) fresh->Add(store_, id);
      index = fresh.get();
      indexes_[n] = std::move(fresh);
      num_indexes_.store(n + 1, std::memory_order_release);
    }
  }
  const std::vector<uint32_t>* bucket = index->Find(store_, key.data());
  *out = bucket == nullptr
             ? MatchSpan()
             : MatchSpan(bucket, static_cast<uint32_t>(bucket->size()));
  return true;
}

MatchSpan Relation::Probe(const std::vector<uint32_t>& cols,
                          const std::vector<Value>& key) {
  MatchSpan out;
  if (TryProbe(cols, key, &out)) return out;
  // Published capacity exhausted: spill into the unpublished overflow
  // list. Correct but single-writer only; parallel workers never reach
  // this path (they use TryProbe and scan on failure).
  Index* index = nullptr;
  for (auto& candidate : overflow_indexes_) {
    if (candidate->cols == cols) {
      index = candidate.get();
      break;
    }
  }
  if (index == nullptr) {
    overflow_indexes_.push_back(std::make_unique<Index>());
    index = overflow_indexes_.back().get();
    index->cols = cols;
    for (uint32_t id = 0; id < store_.size(); ++id) index->Add(store_, id);
  }
  const std::vector<uint32_t>* bucket = index->Find(store_, key.data());
  if (bucket == nullptr) return MatchSpan();
  return MatchSpan(bucket, static_cast<uint32_t>(bucket->size()));
}

size_t Relation::bytes() const {
  size_t n = store_.bytes() +
             round_marks_.capacity() * sizeof(round_marks_[0]);
  uint32_t published = num_indexes_.load(std::memory_order_acquire);
  for (uint32_t i = 0; i < published; ++i) n += indexes_[i]->bytes();
  for (const auto& index : overflow_indexes_) n += index->bytes();
  return n;
}

// --- Parallel barrier merge -------------------------------------------------

Result<uint64_t> MergeStagedParallel(std::vector<StagedMergeTask>* tasks,
                                     uint32_t round, ThreadPool* pool,
                                     ExecContext* ctx, uint32_t* merge_phases,
                                     uint32_t* fanout_width) {
  SPARQLOG_FAILPOINT(g_fp_merge_round);
  // Only predicates with staged rows occupy a merge slot; an all-empty
  // barrier costs no worker wake-up at all.
  std::vector<StagedMergeTask*> live;
  live.reserve(tasks->size());
  for (StagedMergeTask& task : *tasks) {
    task.merged = 0;
    size_t staged = 0;
    for (const TupleStore* s : task.sources) {
      if (s != nullptr) staged += s->size();
    }
    if (staged > 0) live.push_back(&task);
  }
  const size_t num_workers = pool->num_workers();
  *fanout_width = static_cast<uint32_t>(std::min(live.size(), num_workers));
  if (live.empty()) return uint64_t{0};

  // One worker owns each live predicate end to end: it merges the
  // predicate's staging stores in worker order, which reproduces the
  // serial merge's first-occurrence order (and thus arena row ids)
  // exactly — parallelism across predicates, determinism within each.
  std::vector<Status> statuses(num_workers);
  auto merge_worker = [&](size_t w) {
    Status& st = statuses[w];
    for (size_t i = w; i < live.size(); i += num_workers) {
      StagedMergeTask& task = *live[i];
      for (const TupleStore* s : task.sources) {
        if (s == nullptr || s->size() == 0) continue;
        uint64_t inserted = task.target->InsertStaged(*s, round);
        task.merged += inserted;
        ctx->AddTuples(inserted);
        st = ctx->CheckBudgetShared(&merge_phases[w],
                                    static_cast<uint32_t>(s->size()));
        if (!st.ok()) return;
      }
    }
  };
  if (*fanout_width <= 1) {
    merge_worker(0);
  } else {
    pool->RunOnWorkers(merge_worker);
  }

  uint64_t merged = 0;
  for (const StagedMergeTask* task : live) merged += task->merged;
  for (const Status& st : statuses) {
    SPARQLOG_RETURN_NOT_OK(st);
  }
  return merged;
}

// --- Database ---------------------------------------------------------------

Relation& Database::relation(uint32_t pred, uint32_t arity) {
  auto it = relations_.find(pred);
  if (it == relations_.end()) {
    it = relations_.emplace(pred, std::make_unique<Relation>(arity)).first;
  }
  return *it->second;
}

const Relation* Database::Find(uint32_t pred) const {
  auto it = relations_.find(pred);
  return it == relations_.end() ? nullptr : it->second.get();
}

Relation* Database::FindMutable(uint32_t pred) {
  auto it = relations_.find(pred);
  return it == relations_.end() ? nullptr : it->second.get();
}

void Database::Reset(uint32_t pred, uint32_t arity) {
  relations_[pred] = std::make_unique<Relation>(arity);
}

size_t Database::TotalTuples() const {
  size_t n = 0;
  for (const auto& [_, rel] : relations_) n += rel->size();
  return n;
}

size_t Database::TotalBytes() const {
  size_t n = 0;
  for (const auto& [_, rel] : relations_) n += rel->bytes();
  return n;
}

std::vector<uint32_t> Database::Predicates() const {
  std::vector<uint32_t> preds;
  preds.reserve(relations_.size());
  for (const auto& [pred, _] : relations_) preds.push_back(pred);
  std::sort(preds.begin(), preds.end());
  return preds;
}

}  // namespace sparqlog::datalog
