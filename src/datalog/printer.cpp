#include "datalog/printer.h"

#include <algorithm>

#include "sparql/printer.h"
#include "util/string_util.h"

namespace sparqlog::datalog {

namespace {

std::string RenderRuleTerm(const RuleTerm& t, const Rule& rule,
                           const rdf::TermDictionary& dict,
                           const SkolemStore& skolems) {
  if (t.is_var) return rule.var_names[t.var];
  return RenderValue(t.constant, dict, skolems);
}

std::string RenderAtom(const Atom& atom, const Rule& rule,
                       const Program& program,
                       const rdf::TermDictionary& dict,
                       const SkolemStore& skolems) {
  std::string out = program.predicates.Name(atom.predicate) + "(";
  for (size_t i = 0; i < atom.args.size(); ++i) {
    if (i > 0) out += ", ";
    out += RenderRuleTerm(atom.args[i], rule, dict, skolems);
  }
  return out + ")";
}

}  // namespace

std::string ToString(const Rule& rule, const Program& program,
                     const rdf::TermDictionary& dict,
                     const SkolemStore& skolems) {
  std::string out = RenderAtom(rule.head, rule, program, dict, skolems);
  bool first = true;
  auto sep = [&]() -> std::string {
    if (first) {
      first = false;
      return " :- ";
    }
    return ", ";
  };
  for (const Atom& a : rule.positive) {
    out += sep() + RenderAtom(a, rule, program, dict, skolems);
  }
  for (const Atom& a : rule.negative) {
    out += sep() + "not " + RenderAtom(a, rule, program, dict, skolems);
  }
  for (const BuiltinLit& b : rule.builtins) {
    switch (b.kind) {
      case BuiltinKind::kEq:
        out += sep() + RenderRuleTerm(b.lhs, rule, dict, skolems) + " = " +
               RenderRuleTerm(b.rhs, rule, dict, skolems);
        break;
      case BuiltinKind::kNe:
        out += sep() + RenderRuleTerm(b.lhs, rule, dict, skolems) + " != " +
               RenderRuleTerm(b.rhs, rule, dict, skolems);
        break;
      case BuiltinKind::kSkolem: {
        std::string sk = "[\"" + skolems.FunctionName(b.skolem_fn) + "\"";
        for (const RuleTerm& t : b.skolem_args) {
          sk += ", " + RenderRuleTerm(t, rule, dict, skolems);
        }
        sk += "]";
        out += sep() + RenderRuleTerm(b.target, rule, dict, skolems) + " = " +
               sk;
        break;
      }
      case BuiltinKind::kFilterExpr:
        out += sep() + sparql::ToString(*b.expr, dict);
        break;
      case BuiltinKind::kAssignExpr:
        out += sep() + RenderRuleTerm(b.target, rule, dict, skolems) +
               " := " + sparql::ToString(*b.expr, dict);
        break;
    }
  }
  return out + ".";
}

std::string ToString(const Program& program, const rdf::TermDictionary& dict,
                     const SkolemStore& skolems) {
  std::string out;
  for (const Fact& f : program.facts) {
    out += program.predicates.Name(f.predicate) + "(";
    for (size_t i = 0; i < f.tuple.size(); ++i) {
      if (i > 0) out += ", ";
      out += RenderValue(f.tuple[i], dict, skolems);
    }
    out += ").\n";
  }
  for (const Rule& rule : program.rules) {
    out += ToString(rule, program, dict, skolems) + "\n";
  }
  const OutputSpec& spec = program.output;
  if (spec.predicate < program.predicates.size()) {
    const std::string& name = program.predicates.Name(spec.predicate);
    for (const OrderSpec& key : spec.order_by) {
      out += StringPrintf("@post(\"%s\", \"orderby(%s%u)\").\n", name.c_str(),
                          key.descending ? "-" : "", key.column);
    }
    if (spec.distinct) out += "@post(\"" + name + "\", \"distinct\").\n";
    if (spec.limit) {
      out += StringPrintf("@post(\"%s\", \"limit(%llu)\").\n", name.c_str(),
                          static_cast<unsigned long long>(*spec.limit));
    }
    if (spec.offset) {
      out += StringPrintf("@post(\"%s\", \"offset(%llu)\").\n", name.c_str(),
                          static_cast<unsigned long long>(*spec.offset));
    }
    out += "@output(\"" + name + "\").\n";
  }
  return out;
}

std::string ToString(const Relation& rel, const std::string& name,
                     const rdf::TermDictionary& dict,
                     const SkolemStore& skolems) {
  std::vector<std::string> lines;
  lines.reserve(rel.size());
  for (RowRef row : rel.rows()) {
    std::string line = name + "(";
    for (uint32_t i = 0; i < row.size(); ++i) {
      if (i > 0) line += ", ";
      line += RenderValue(row[i], dict, skolems);
    }
    lines.push_back(line + ").");
  }
  std::sort(lines.begin(), lines.end());
  std::string out;
  for (const std::string& line : lines) out += line + "\n";
  return out;
}

std::string ToString(const Database& db, const PredicateTable& preds,
                     const rdf::TermDictionary& dict,
                     const SkolemStore& skolems) {
  std::string out;
  for (uint32_t pred : db.Predicates()) {
    const Relation* rel = db.Find(pred);
    if (rel == nullptr || pred >= preds.size()) continue;
    out += ToString(*rel, preds.Name(pred), dict, skolems);
  }
  return out;
}

}  // namespace sparqlog::datalog
