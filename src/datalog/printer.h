#pragma once

#include <string>

#include "datalog/ast.h"
#include "datalog/relation.h"
#include "datalog/value.h"
#include "rdf/dictionary.h"

/// \file printer.h
/// Renders Datalog± programs in the Vadalog-style surface syntax used by
/// the paper's figures (e.g. Figure 2/4): rules with `:-`, Skolem-ID
/// assignments as `ID = ["f1", X, ...]`, negation as `not p(...)`, and
/// `@output` / `@post` directives, plus fact-style dumps of materialized
/// relations / databases for diagnostics and differential tests.

namespace sparqlog::datalog {

std::string ToString(const Rule& rule, const Program& program,
                     const rdf::TermDictionary& dict,
                     const SkolemStore& skolems);

std::string ToString(const Program& program, const rdf::TermDictionary& dict,
                     const SkolemStore& skolems);

/// Renders a relation's tuples as facts `name(v, ...).`, one per line,
/// sorted lexicographically (canonical form: two relations with the same
/// content render identically regardless of insertion order).
std::string ToString(const Relation& rel, const std::string& name,
                     const rdf::TermDictionary& dict,
                     const SkolemStore& skolems);

/// Canonical dump of every relation in `db` whose predicate is named in
/// `preds`, in predicate-id order.
std::string ToString(const Database& db, const PredicateTable& preds,
                     const rdf::TermDictionary& dict,
                     const SkolemStore& skolems);

}  // namespace sparqlog::datalog
