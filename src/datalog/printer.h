#pragma once

#include <string>

#include "datalog/ast.h"
#include "datalog/value.h"
#include "rdf/dictionary.h"

/// \file printer.h
/// Renders Datalog± programs in the Vadalog-style surface syntax used by
/// the paper's figures (e.g. Figure 2/4): rules with `:-`, Skolem-ID
/// assignments as `ID = ["f1", X, ...]`, negation as `not p(...)`, and
/// `@output` / `@post` directives.

namespace sparqlog::datalog {

std::string ToString(const Rule& rule, const Program& program,
                     const rdf::TermDictionary& dict,
                     const SkolemStore& skolems);

std::string ToString(const Program& program, const rdf::TermDictionary& dict,
                     const SkolemStore& skolems);

}  // namespace sparqlog::datalog
