#pragma once

#include <cstdint>

#include "datalog/ast.h"
#include "datalog/stats.h"

/// \file planner.h
/// Cost-based join ordering for rule bodies, driven by EDB statistics
/// (stats.h). SparqLog's translation leaves body atoms in parse-tree
/// order; on star- and chain-shaped queries (SP2Bench's speciality) a
/// wrong leading atom costs orders of magnitude. The planner runs once
/// per translated program — at translation time and again after every
/// cached-program re-bind — and physically permutes each rule's
/// `positive` vector into its chosen order, marking the rule `planned` so
/// the evaluator executes the body as written (joins proceed left to
/// right with bound-variable propagation; builtin filters/BINDs fire the
/// moment their inputs are bound, negation is checked at the leaves —
/// i.e. dependent literals run as late as their variable dependencies
/// allow, never earlier).
///
/// Cost model (classic System-R-style, independence assumptions):
///  * an atom's base cardinality comes from its relation's row count;
///    constants select 1/distinct(col) of it. A `triple` atom with a
///    constant predicate term instead reads the per-predicate histogram
///    (count, distinct subjects/objects) — the statistic that actually
///    separates SP2Bench's patterns;
///  * joining a set of atoms on a shared variable v divides the product
///    of cardinalities by all per-atom distinct(v) but the smallest
///    (the pairwise |R ⋈ S| = |R||S| / max(dR,dS) rule, generalized).
///    This makes a subset's cardinality independent of join order, which
///    is what lets the exact DP below memoize on subsets;
///  * a subject-star of constant-predicate triple atoms is estimated
///    exactly from the characteristic sets when available: the number of
///    subjects carrying all the star's predicates times the expected
///    objects per subject and predicate.
///
/// Order search: greedy smallest-next-intermediate for any body size,
/// replaced by an exact subset-DP (Held-Karp over bitmasks, minimizing
/// the sum of intermediate cardinalities) for bodies of at most
/// kDpMaxAtoms positive atoms — every body the SPARQL translation emits
/// in practice. IDB predicate cardinalities are estimated bottom-up in
/// stratification order, so outer-query rules see estimates for the
/// subquery predicates they join.

namespace sparqlog::datalog {

/// Observability counters for one PlanProgram call.
struct PlannerReport {
  uint32_t rules_planned = 0;    ///< rules marked `planned`
  uint32_t bodies_reordered = 0; ///< rules whose atom order actually changed
  uint32_t dp_bodies = 0;        ///< bodies ordered by the exact subset-DP
  uint32_t greedy_bodies = 0;    ///< bodies ordered greedily (> kDpMaxAtoms)
  /// Linear self-recursive two-atom bodies — the closure shape the
  /// evaluator's transitive-closure kernel targets (tc_kernel.h). Counted
  /// here so plan reports flag TC-kernel candidates without evaluating.
  uint32_t tc_shaped_rules = 0;
  /// Estimated output-predicate cardinality (rows); negative when the
  /// program has no output rules to estimate.
  double output_estimate = -1.0;
};

/// Bodies up to this many positive atoms get the exact DP; larger ones
/// (2^n subsets) fall back to the greedy order.
inline constexpr uint32_t kDpMaxAtoms = 8;

/// Orders every rule body of `program` (see file comment) and stamps
/// Program::planned_estimate. Statistics may be empty (e.g. nothing
/// loaded yet): rules are still planned, from fact counts and defaults.
/// Idempotent: replanning a planned program with the same stats keeps
/// the same order.
PlannerReport PlanProgram(Program* program, const EdbStats& stats);

}  // namespace sparqlog::datalog
