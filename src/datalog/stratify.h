#pragma once

#include <vector>

#include "datalog/ast.h"
#include "util/status.h"

/// \file stratify.h
/// Stratification of Datalog programs with negation: computes a stratum
/// number per predicate such that positive dependencies stay within or
/// below a stratum and negative dependencies point strictly below.
/// Programs with negative cycles (recursion through negation) are
/// rejected — the SparqLog translation never produces them (negation is
/// used acyclically for OPTIONAL / MINUS / ASK, Defs A.7-A.10, A.22).

namespace sparqlog::datalog {

struct Stratification {
  /// Stratum per predicate id. Strata are the SCCs of the predicate
  /// dependency graph in topological (dependency-first) order, so each
  /// non-recursive stratum can be evaluated with a single pass and only
  /// genuinely recursive components pay for the semi-naive fixpoint.
  std::vector<uint32_t> predicate_stratum;
  /// Rule indices grouped by stratum, ascending.
  std::vector<std::vector<uint32_t>> strata_rules;
  /// True for strata containing recursion (a rule whose body mentions a
  /// predicate of the same stratum).
  std::vector<bool> stratum_recursive;
  uint32_t num_strata = 0;
};

/// Stratifies `program`. Fails with InvalidArgument if a predicate depends
/// negatively on itself through a cycle.
Result<Stratification> Stratify(const Program& program);

}  // namespace sparqlog::datalog
