#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "datalog/ast.h"
#include "datalog/relation.h"
#include "datalog/stratify.h"
#include "datalog/value.h"

/// \file stratum_memo.h
/// Cross-query memoization of stratum results.
///
/// The EDB is immutable per loaded dataset (mutations bump the dataset
/// generation and rebuild it), and stratum evaluation is a pure function
/// of (rule set, input relations, program facts). Each stratum therefore
/// gets a composed fingerprint:
///
///   fp(s) = H( canonical rules of s,
///              for each input predicate p (body predicate not defined
///              in s):  fp(stratum defining p)   if rule-defined below
///                      H(name, dataset generation)  otherwise (EDB or
///                                                   always-empty),
///              program facts for s's inputs and heads )
///
/// Predicate *names* (not per-program ids) anchor the fingerprint, so
/// independently translated programs share entries whenever the
/// translation emits the same rules — e.g. the `comp` compatibility
/// stratum is identical across all join/OPTIONAL/MINUS queries, and a
/// repeated query shares every stratum. Snapshots store relation contents
/// in arena order, so a warm restore reproduces the cold run's relation
/// byte-for-byte (solution order included).
///
/// The memo is engine-owned: snapshot Values refer to the engine's term
/// dictionary and Skolem store, both of which only grow, so stored
/// snapshots stay valid for the engine's lifetime; the engine clears the
/// memo when the dataset generation changes.

namespace sparqlog::datalog {

/// Derived relations of one completed stratum (including any program
/// facts seeded into its head predicates), in arena insertion order.
struct StratumSnapshot {
  struct RelationSnapshot {
    std::string predicate;  ///< predicate name (program-independent)
    uint32_t arity = 0;
    uint32_t num_rows = 0;
    std::vector<Value> rows;  ///< flat, arity-strided, insertion order
  };
  std::vector<RelationSnapshot> relations;
  uint64_t tuples = 0;

  /// Appends `rel`'s rows (arena order, flat) as one RelationSnapshot.
  void Capture(std::string predicate, const Relation& rel);

  /// Replays every captured relation into `idb`, resolving predicates by
  /// name through `preds`, tagging rows with `round`. Precondition: the
  /// caller has verified every snapshot predicate resolves in `preds`
  /// with matching arity (the evaluator's `resolvable` pre-check, which
  /// degrades a fingerprint collision to a memo miss); asserted in debug
  /// builds. Snapshots store rows in the flat staged layout, so each
  /// relation restores through one InsertStaged batch (one stride
  /// dispatch, not one per row). Returns the number of rows actually
  /// inserted (program facts seeded earlier dedup away).
  uint64_t Restore(const PredicateTable& preds, uint32_t round,
                   Database* idb) const;

  size_t bytes() const;
};

/// Bounded (by bytes) LRU store of stratum snapshots keyed by the
/// composed stratum fingerprint.
///
/// Thread safety: internally synchronized for the shared serving engine.
/// Lookup hands out a shared_ptr, so a reader can keep replaying its
/// snapshot while another query Inserts (or LRU-evicts the same entry) —
/// the snapshot object stays alive until the last reader drops it. Two
/// queries that race on the same cold stratum both evaluate and both
/// Insert equivalent snapshots; the last writer wins.
class StratumMemo {
 public:
  explicit StratumMemo(size_t max_bytes) : max_bytes_(max_bytes) {}

  /// Snapshot for `key`, promoted to most-recently-used; nullptr on miss.
  /// The returned snapshot is immutable and outlives any concurrent
  /// Insert / Clear / eviction.
  std::shared_ptr<const StratumSnapshot> Lookup(uint64_t key);

  /// Stores (or overwrites) the snapshot for `key`, evicting LRU entries
  /// until under the byte budget (the newest entry is always kept).
  void Insert(uint64_t key, StratumSnapshot snapshot);

  void Clear();

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return index_.size();
  }
  size_t bytes() const {
    std::lock_guard<std::mutex> lock(mu_);
    return bytes_;
  }
  size_t max_bytes() const { return max_bytes_; }
  uint64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }

 private:
  using Slot = std::pair<uint64_t, std::shared_ptr<const StratumSnapshot>>;

  size_t max_bytes_;
  size_t bytes_ = 0;
  std::atomic<uint64_t> evictions_{0};
  mutable std::mutex mu_;
  // Front = most recently used.
  std::list<Slot> lru_;
  std::unordered_map<uint64_t, std::list<Slot>::iterator> index_;
};

/// Per-predicate-name EDB mutation counters, maintained by the engine's
/// incremental-update path: ApplyUpdate bumps the counter of every EDB
/// predicate whose delta translation produced rows, so strata reading
/// only untouched predicates keep their fingerprint (and memo entry)
/// across writes.
using EdbVersionMap = std::unordered_map<std::string, uint64_t>;

/// Computes the composed fingerprint of every stratum of `program` under
/// `strat`. `dataset_fp` is the engine's EDB anchor (the generation at
/// cold load); `skolems` resolves Skolem function ids to their canonical
/// names. `edb_versions`, when non-null, refines the EDB anchor per
/// predicate name (absent name = version 0), enabling selective memo
/// invalidation after incremental updates; null behaves as all-zero.
std::vector<uint64_t> StratumFingerprints(
    const Program& program, const Stratification& strat,
    const SkolemStore& skolems, uint64_t dataset_fp,
    const EdbVersionMap* edb_versions = nullptr);

}  // namespace sparqlog::datalog
