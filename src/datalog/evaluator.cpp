#include "datalog/evaluator.h"

#include <algorithm>
#include <unordered_set>

namespace sparqlog::datalog {

namespace {
constexpr uint32_t kNoDelta = 0xffffffffu;
}

/// Per-rule-invocation execution state: one backtracking join over the
/// rule's positive body with interleaved builtin execution, negation
/// checks at the leaves, and head emission.
struct Evaluator::RuleRun {
  Evaluator* eval = nullptr;
  const Rule* rule = nullptr;
  Database* edb = nullptr;
  Database* idb = nullptr;
  ExecContext* ctx = nullptr;
  uint32_t insert_round = 0;
  uint32_t delta_round = 0;
  uint32_t delta_atom = kNoDelta;

  std::vector<Value> vals;
  std::vector<bool> bound;
  std::vector<bool> builtin_done;
  std::vector<uint32_t> order;
  std::vector<VarId> trail;
  std::vector<std::vector<uint32_t>> scratch_cols;
  std::vector<std::vector<Value>> scratch_keys;
  std::vector<Value> head_scratch;
  std::vector<Value> neg_scratch;
  Status status;
  uint64_t inserted = 0;

  size_t RelSizeOf(PredicateId pred) const {
    size_t n = 0;
    if (const Relation* r = edb->Find(pred)) n += r->size();
    if (const Relation* r = idb->Find(pred)) n += r->size();
    return n;
  }

  void ComputeOrder() {
    const auto& atoms = rule->positive;
    std::vector<bool> used(atoms.size(), false);
    std::vector<bool> var_known(rule->var_names.size(), false);
    order.clear();
    if (delta_atom != kNoDelta) {
      order.push_back(delta_atom);
      used[delta_atom] = true;
      for (const RuleTerm& t : atoms[delta_atom].args) {
        if (t.is_var) var_known[t.var] = true;
      }
    }
    while (order.size() < atoms.size()) {
      int best = -1;
      size_t best_bound = 0;
      size_t best_size = 0;
      for (size_t i = 0; i < atoms.size(); ++i) {
        if (used[i]) continue;
        size_t nbound = 0;
        for (const RuleTerm& t : atoms[i].args) {
          if (!t.is_var || var_known[t.var]) ++nbound;
        }
        size_t sz = RelSizeOf(atoms[i].predicate);
        if (best < 0 || nbound > best_bound ||
            (nbound == best_bound && sz < best_size)) {
          best = static_cast<int>(i);
          best_bound = nbound;
          best_size = sz;
        }
      }
      used[best] = true;
      order.push_back(static_cast<uint32_t>(best));
      for (const RuleTerm& t : atoms[best].args) {
        if (t.is_var) var_known[t.var] = true;
      }
    }
  }

  bool ResolveTerm(const RuleTerm& t, Value* out) const {
    if (!t.is_var) {
      *out = t.constant;
      return true;
    }
    if (!bound[t.var]) return false;
    *out = vals[t.var];
    return true;
  }

  void Bind(VarId v, Value value, std::vector<VarId>* local_trail) {
    vals[v] = value;
    bound[v] = true;
    local_trail->push_back(v);
  }

  void Unbind(std::vector<VarId>* local_trail, size_t from) {
    while (local_trail->size() > from) {
      bound[local_trail->back()] = false;
      local_trail->pop_back();
    }
  }

  /// Runs every builtin whose inputs are available; returns false when a
  /// check fails (binding rejected). Bound variables and completed flags
  /// are recorded so the caller can restore them.
  bool RunBuiltins(std::vector<VarId>* bound_trail,
                   std::vector<uint32_t>* done_trail) {
    bool changed = true;
    while (changed) {
      changed = false;
      for (uint32_t bi = 0; bi < rule->builtins.size(); ++bi) {
        if (builtin_done[bi]) continue;
        const BuiltinLit& b = rule->builtins[bi];
        switch (b.kind) {
          case BuiltinKind::kEq: {
            Value lhs = 0, rhs = 0;
            bool l = ResolveTerm(b.lhs, &lhs);
            bool r = ResolveTerm(b.rhs, &rhs);
            if (l && r) {
              if (lhs != rhs) return false;
            } else if (l && b.rhs.is_var) {
              Bind(b.rhs.var, lhs, bound_trail);
            } else if (r && b.lhs.is_var) {
              Bind(b.lhs.var, rhs, bound_trail);
            } else {
              continue;  // not ready
            }
            builtin_done[bi] = true;
            done_trail->push_back(bi);
            changed = true;
            break;
          }
          case BuiltinKind::kNe: {
            Value lhs = 0, rhs = 0;
            if (!ResolveTerm(b.lhs, &lhs) || !ResolveTerm(b.rhs, &rhs)) {
              continue;
            }
            if (lhs == rhs) return false;
            builtin_done[bi] = true;
            done_trail->push_back(bi);
            changed = true;
            break;
          }
          case BuiltinKind::kSkolem: {
            std::vector<Value> args;
            args.reserve(b.skolem_args.size());
            bool ready = true;
            for (const RuleTerm& t : b.skolem_args) {
              Value v = 0;
              if (!ResolveTerm(t, &v)) {
                ready = false;
                break;
              }
              args.push_back(v);
            }
            if (!ready) continue;
            Value sk = eval->skolems_->Intern(b.skolem_fn, std::move(args));
            Value target;
            if (ResolveTerm(b.target, &target)) {
              if (target != sk) return false;
            } else {
              Bind(b.target.var, sk, bound_trail);
            }
            builtin_done[bi] = true;
            done_trail->push_back(bi);
            changed = true;
            break;
          }
          case BuiltinKind::kFilterExpr:
          case BuiltinKind::kAssignExpr: {
            bool ready = true;
            for (const auto& [name, var] : b.expr_vars) {
              if (!bound[var]) {
                ready = false;
                break;
              }
            }
            if (!ready) continue;
            auto lookup = [&](const std::string& name) -> rdf::TermId {
              for (const auto& [n, var] : b.expr_vars) {
                if (n == name) {
                  Value v = vals[var];
                  // Skolem values never carry SPARQL-visible data; they
                  // surface as unbound (comparison against them errors).
                  return IsSkolemValue(v) ? rdf::TermDictionary::kUndef
                                          : TermFromValue(v);
                }
              }
              return rdf::TermDictionary::kUndef;
            };
            if (b.kind == BuiltinKind::kFilterExpr) {
              if (eval->expr_eval_.EvalEBV(*b.expr, lookup) !=
                  eval::EBV::kTrue) {
                return false;
              }
            } else {
              // BIND: evaluation errors bind the null constant (SPARQL's
              // "remains unbound").
              auto value = eval->expr_eval_.EvalTerm(*b.expr, lookup);
              Value v = ValueFromTerm(
                  value.value_or(rdf::TermDictionary::kUndef));
              Value target;
              if (ResolveTerm(b.target, &target)) {
                if (target != v) return false;
              } else {
                Bind(b.target.var, v, bound_trail);
              }
            }
            builtin_done[bi] = true;
            done_trail->push_back(bi);
            changed = true;
            break;
          }
        }
      }
    }
    return true;
  }

  bool CheckNegatives() {
    for (const Atom& atom : rule->negative) {
      neg_scratch.clear();
      for (const RuleTerm& t : atom.args) {
        Value v = 0;
        ResolveTerm(t, &v);  // validation guarantees boundness
        neg_scratch.push_back(v);
      }
      if (const Relation* r = edb->Find(atom.predicate)) {
        if (r->Contains(neg_scratch)) return false;
      }
      if (const Relation* r = idb->Find(atom.predicate)) {
        if (r->Contains(neg_scratch)) return false;
      }
    }
    return true;
  }

  /// Returns false on fatal error (status set).
  bool EmitHead() {
    head_scratch.clear();
    for (const RuleTerm& t : rule->head.args) {
      Value v = 0;
      ResolveTerm(t, &v);
      head_scratch.push_back(v);
    }
    Relation& rel =
        idb->relation(rule->head.predicate,
                      static_cast<uint32_t>(rule->head.args.size()));
    if (rel.Insert(head_scratch, insert_round)) {
      ++inserted;
      ++eval->stats_.tuples_derived;
      ctx->AddTuples(1);
    }
    ++eval->stats_.rules_fired;
    status = ctx->CheckBudget();
    return status.ok();
  }

  bool TryRow(const Relation* rel, uint32_t row_id, size_t depth) {
    const Atom& atom = rule->positive[order[depth]];
    size_t trail_start = trail.size();
    // RowRef is a view into the relation's arena; it is consumed fully
    // before JoinStep below can insert (and potentially reallocate).
    RowRef row = rel->row(row_id);
    bool ok = true;
    for (size_t i = 0; i < atom.args.size(); ++i) {
      const RuleTerm& t = atom.args[i];
      if (!t.is_var) {
        if (row[i] != t.constant) {
          ok = false;
          break;
        }
      } else if (bound[t.var]) {
        if (row[i] != vals[t.var]) {
          ok = false;
          break;
        }
      } else {
        Bind(t.var, row[i], &trail);
      }
    }
    if (ok && !JoinStep(depth + 1)) {
      Unbind(&trail, trail_start);
      return false;
    }
    Unbind(&trail, trail_start);
    return true;
  }

  /// Returns false on fatal error.
  bool JoinStep(size_t depth) {
    status = ctx->CheckBudget();
    if (!status.ok()) return false;

    size_t btrail_start = trail.size();
    std::vector<uint32_t> done_trail;
    bool accepted = RunBuiltins(&trail, &done_trail);
    bool result = true;
    if (accepted) {
      if (depth == order.size()) {
        if (CheckNegatives()) result = EmitHead();
      } else {
        result = MatchAtom(depth);
      }
    }
    for (uint32_t bi : done_trail) builtin_done[bi] = false;
    Unbind(&trail, btrail_start);
    return result;
  }

  bool MatchAtom(size_t depth) {
    const Atom& atom = rule->positive[order[depth]];
    bool is_delta = (order[depth] == delta_atom);

    // Bound columns for index probing (per-depth scratch buffers, sized in
    // Run(), keep the inner loop allocation-free).
    std::vector<uint32_t>& cols = scratch_cols[depth];
    std::vector<Value>& key = scratch_keys[depth];
    cols.clear();
    key.clear();
    for (size_t i = 0; i < atom.args.size(); ++i) {
      Value v = 0;
      if (ResolveTerm(atom.args[i], &v)) {
        cols.push_back(static_cast<uint32_t>(i));
        key.push_back(v);
      }
    }

    if (is_delta) {
      Relation* rel = idb->FindMutable(atom.predicate);
      if (rel == nullptr) return true;
      auto [lo, hi] = rel->RoundRange(delta_round);
      for (uint32_t id = lo; id < hi; ++id) {
        if (!TryRow(rel, id, depth)) return false;
      }
      return true;
    }

    Relation* sources[2] = {edb->FindMutable(atom.predicate),
                            idb->FindMutable(atom.predicate)};
    for (Relation* rel : sources) {
      if (rel == nullptr || rel->size() == 0) continue;
      if (!cols.empty()) {
        // MatchSpan is epoch-stable: recursive rules may insert into this
        // relation (and its index buckets) while we iterate, and the span
        // keeps addressing the probe-time prefix without a defensive copy.
        MatchSpan span = rel->Probe(cols, key);
        for (uint32_t k = 0; k < span.size(); ++k) {
          if (!TryRow(rel, span[k], depth)) return false;
        }
      } else {
        size_t n = rel->size();  // snapshot; new rows belong to next round
        for (uint32_t id = 0; id < n; ++id) {
          if (!TryRow(rel, id, depth)) return false;
        }
      }
    }
    return true;
  }

  Status Run() {
    vals.assign(rule->var_names.size(), 0);
    bound.assign(rule->var_names.size(), false);
    builtin_done.assign(rule->builtins.size(), false);
    trail.clear();
    status = Status::OK();
    ComputeOrder();
    scratch_cols.assign(order.size(), {});
    scratch_keys.assign(order.size(), {});
    JoinStep(0);
    return status;
  }
};

Status Evaluator::Evaluate(const Program& program, Database* edb,
                           Database* idb, ExecContext* ctx) {
  stats_ = EvalStats();
  SPARQLOG_RETURN_NOT_OK(program.Validate());
  SPARQLOG_ASSIGN_OR_RETURN(Stratification strat, Stratify(program));
  stats_.strata = strat.num_strata;

  // Seed program facts (round 0).
  for (const Fact& f : program.facts) {
    Relation& rel = idb->relation(
        f.predicate, static_cast<uint32_t>(f.tuple.size()));
    if (rel.Insert(f.tuple, 0)) ctx->AddTuples(1);
  }
  SPARQLOG_RETURN_NOT_OK(ctx->CheckBudget());

  uint32_t round = 1;
  for (uint32_t s = 0; s < strat.num_strata; ++s) {
    const std::vector<uint32_t>& rule_ids = strat.strata_rules[s];
    if (rule_ids.empty()) continue;

    // Head predicates defined in this stratum (delta candidates).
    std::unordered_set<PredicateId> stratum_heads;
    for (uint32_t ri : rule_ids) {
      stratum_heads.insert(program.rules[ri].head.predicate);
    }

    auto run_rule = [&](uint32_t ri, uint32_t delta_atom,
                        uint32_t delta_round) -> Result<uint64_t> {
      RuleRun run;
      run.eval = this;
      run.rule = &program.rules[ri];
      run.edb = edb;
      run.idb = idb;
      run.ctx = ctx;
      run.insert_round = round;
      run.delta_round = delta_round;
      run.delta_atom = delta_atom;
      SPARQLOG_RETURN_NOT_OK(run.Run());
      return run.inserted;
    };

    // Initial (naive) pass over the current database state.
    uint64_t new_tuples = 0;
    for (uint32_t ri : rule_ids) {
      SPARQLOG_ASSIGN_OR_RETURN(uint64_t n, run_rule(ri, kNoDelta, 0));
      new_tuples += n;
    }
    ++stats_.rounds;
    ++round;

    // Non-recursive strata are complete after the single pass.
    if (!strat.stratum_recursive[s]) continue;

    // Fixpoint iterations.
    while (new_tuples > 0) {
      new_tuples = 0;
      if (mode_ == FixpointMode::kNaive) {
        for (uint32_t ri : rule_ids) {
          SPARQLOG_ASSIGN_OR_RETURN(uint64_t n, run_rule(ri, kNoDelta, 0));
          new_tuples += n;
        }
      } else {
        uint32_t delta_round = round - 1;
        for (uint32_t ri : rule_ids) {
          const Rule& rule = program.rules[ri];
          for (uint32_t ai = 0; ai < rule.positive.size(); ++ai) {
            if (stratum_heads.count(rule.positive[ai].predicate) == 0) {
              continue;
            }
            SPARQLOG_ASSIGN_OR_RETURN(uint64_t n,
                                      run_rule(ri, ai, delta_round));
            new_tuples += n;
          }
        }
      }
      ++stats_.rounds;
      ++round;
    }
  }
  return Status::OK();
}

}  // namespace sparqlog::datalog
