#include "datalog/evaluator.h"

#include <algorithm>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "datalog/stride.h"
#include "datalog/tc_kernel.h"
#include "util/failpoint.h"
#include "util/thread_pool.h"

namespace sparqlog::datalog {

namespace {

SPARQLOG_FAILPOINT_DEFINE(g_fp_stratum_begin, "datalog.stratum.begin");

constexpr uint32_t kNoDelta = 0xffffffffu;

/// Per-worker round state: one staging TupleStore per parallel head
/// predicate (deduped locally, merged into the Relation at the barrier)
/// plus worker-local counters so the shared EvalStats is only touched
/// serially.
struct WorkerState {
  std::unordered_map<PredicateId, TupleStore> staging;
  uint64_t fired = 0;
  uint64_t staged = 0;
  uint32_t clock_phase = 0;
  Status status;
};

}  // namespace

/// Per-rule-invocation execution state: one backtracking join over the
/// rule's positive body with interleaved builtin execution, negation
/// checks at the leaves, and head emission.
struct Evaluator::RuleRun {
  Evaluator* eval = nullptr;
  const Rule* rule = nullptr;
  Database* edb = nullptr;
  Database* idb = nullptr;
  ExecContext* ctx = nullptr;
  uint32_t insert_round = 0;
  uint32_t delta_round = 0;
  uint32_t delta_atom = kNoDelta;
  // Sharded parallel execution (staging != nullptr): the scan of
  // `delta_atom` is pinned to rows [shard_lo, shard_hi) of `scan_rel` —
  // the IDB delta for fixpoint rounds, either source of the pivot atom
  // for the sharded initial naive pass — heads are staged into the
  // worker's TupleStore instead of inserted, and `staging_target` (the
  // read-only target relation) pre-filters re-derivations. `staged`
  // counts fresh staged tuples across all of the worker's shards for
  // budget checks.
  uint32_t shard_lo = 0;
  uint32_t shard_hi = 0xffffffffu;
  const Relation* scan_rel = nullptr;
  TupleStore* staging = nullptr;
  const Relation* staging_target = nullptr;
  uint64_t* staged = nullptr;
  uint32_t clock_phase = 0;  // worker-local deadline-check pacing
  // Incremental maintenance (serial paths only; see the incremental
  // stratum block in Evaluate): `delta_source` redirects the pinned
  // delta scan away from the IDB (to a scratch database of input
  // deltas), `aux` joins as a third non-delta source on top of EDB+IDB
  // (the over-delete pass over-approximates the pre-update state with
  // current ∪ deleted), `emit_db` redirects head emission (over-deleted
  // heads accumulate in the scratch database, not the IDB), and
  // `head_binding` pre-binds the head tuple (DRed re-derivation asks
  // "is exactly this tuple still derivable?").
  Database* delta_source = nullptr;
  Database* aux = nullptr;
  Database* emit_db = nullptr;
  const Value* head_binding = nullptr;

  std::vector<Value> vals;
  std::vector<bool> bound;
  std::vector<bool> builtin_done;
  std::vector<uint32_t> order;
  std::vector<VarId> trail;
  std::vector<std::vector<uint32_t>> scratch_cols;
  std::vector<std::vector<Value>> scratch_keys;
  std::vector<Value> head_scratch;
  std::vector<Value> neg_scratch;
  Status status;
  uint64_t inserted = 0;
  uint64_t fired = 0;

  size_t RelSizeOf(PredicateId pred) const {
    size_t n = 0;
    if (const Relation* r = edb->Find(pred)) n += r->size();
    if (const Relation* r = idb->Find(pred)) n += r->size();
    return n;
  }

  void ComputeOrder() {
    const auto& atoms = rule->positive;
    order.clear();
    // Planner-ordered body (datalog/planner.h): execute as written — the
    // cost-based order beats the runtime heuristic because it knows
    // per-predicate-term cardinalities, not just relation sizes. The
    // delta atom is hoisted to the front (its scan range is pinned); the
    // rest keep their planned relative order.
    if (rule->planned) {
      if (delta_atom != kNoDelta) order.push_back(delta_atom);
      for (uint32_t i = 0; i < atoms.size(); ++i) {
        if (i != delta_atom) order.push_back(i);
      }
      return;
    }
    std::vector<bool> used(atoms.size(), false);
    std::vector<bool> var_known(rule->var_names.size(), false);
    if (delta_atom != kNoDelta) {
      order.push_back(delta_atom);
      used[delta_atom] = true;
      for (const RuleTerm& t : atoms[delta_atom].args) {
        if (t.is_var) var_known[t.var] = true;
      }
    }
    while (order.size() < atoms.size()) {
      int best = -1;
      size_t best_bound = 0;
      size_t best_size = 0;
      for (size_t i = 0; i < atoms.size(); ++i) {
        if (used[i]) continue;
        size_t nbound = 0;
        for (const RuleTerm& t : atoms[i].args) {
          if (!t.is_var || var_known[t.var]) ++nbound;
        }
        size_t sz = RelSizeOf(atoms[i].predicate);
        if (best < 0 || nbound > best_bound ||
            (nbound == best_bound && sz < best_size)) {
          best = static_cast<int>(i);
          best_bound = nbound;
          best_size = sz;
        }
      }
      used[best] = true;
      order.push_back(static_cast<uint32_t>(best));
      for (const RuleTerm& t : atoms[best].args) {
        if (t.is_var) var_known[t.var] = true;
      }
    }
  }

  bool ResolveTerm(const RuleTerm& t, Value* out) const {
    if (!t.is_var) {
      *out = t.constant;
      return true;
    }
    if (!bound[t.var]) return false;
    *out = vals[t.var];
    return true;
  }

  void Bind(VarId v, Value value, std::vector<VarId>* local_trail) {
    vals[v] = value;
    bound[v] = true;
    local_trail->push_back(v);
  }

  void Unbind(std::vector<VarId>* local_trail, size_t from) {
    while (local_trail->size() > from) {
      bound[local_trail->back()] = false;
      local_trail->pop_back();
    }
  }

  /// Runs every builtin whose inputs are available; returns false when a
  /// check fails (binding rejected). Bound variables and completed flags
  /// are recorded so the caller can restore them.
  bool RunBuiltins(std::vector<VarId>* bound_trail,
                   std::vector<uint32_t>* done_trail) {
    bool changed = true;
    while (changed) {
      changed = false;
      for (uint32_t bi = 0; bi < rule->builtins.size(); ++bi) {
        if (builtin_done[bi]) continue;
        const BuiltinLit& b = rule->builtins[bi];
        switch (b.kind) {
          case BuiltinKind::kEq: {
            Value lhs = 0, rhs = 0;
            bool l = ResolveTerm(b.lhs, &lhs);
            bool r = ResolveTerm(b.rhs, &rhs);
            if (l && r) {
              if (lhs != rhs) return false;
            } else if (l && b.rhs.is_var) {
              Bind(b.rhs.var, lhs, bound_trail);
            } else if (r && b.lhs.is_var) {
              Bind(b.lhs.var, rhs, bound_trail);
            } else {
              continue;  // not ready
            }
            builtin_done[bi] = true;
            done_trail->push_back(bi);
            changed = true;
            break;
          }
          case BuiltinKind::kNe: {
            Value lhs = 0, rhs = 0;
            if (!ResolveTerm(b.lhs, &lhs) || !ResolveTerm(b.rhs, &rhs)) {
              continue;
            }
            if (lhs == rhs) return false;
            builtin_done[bi] = true;
            done_trail->push_back(bi);
            changed = true;
            break;
          }
          case BuiltinKind::kSkolem: {
            std::vector<Value> args;
            args.reserve(b.skolem_args.size());
            bool ready = true;
            for (const RuleTerm& t : b.skolem_args) {
              Value v = 0;
              if (!ResolveTerm(t, &v)) {
                ready = false;
                break;
              }
              args.push_back(v);
            }
            if (!ready) continue;
            Value sk = eval->skolems_->Intern(b.skolem_fn, std::move(args));
            Value target;
            if (ResolveTerm(b.target, &target)) {
              if (target != sk) return false;
            } else {
              Bind(b.target.var, sk, bound_trail);
            }
            builtin_done[bi] = true;
            done_trail->push_back(bi);
            changed = true;
            break;
          }
          case BuiltinKind::kFilterExpr:
          case BuiltinKind::kAssignExpr: {
            bool ready = true;
            for (const auto& [name, var] : b.expr_vars) {
              if (!bound[var]) {
                ready = false;
                break;
              }
            }
            if (!ready) continue;
            auto lookup = [&](const std::string& name) -> rdf::TermId {
              for (const auto& [n, var] : b.expr_vars) {
                if (n == name) {
                  Value v = vals[var];
                  // Skolem values never carry SPARQL-visible data; they
                  // surface as unbound (comparison against them errors).
                  return IsSkolemValue(v) ? rdf::TermDictionary::kUndef
                                          : TermFromValue(v);
                }
              }
              return rdf::TermDictionary::kUndef;
            };
            if (b.kind == BuiltinKind::kFilterExpr) {
              if (eval->expr_eval_.EvalEBV(*b.expr, lookup) !=
                  eval::EBV::kTrue) {
                return false;
              }
            } else {
              // BIND: evaluation errors bind the null constant (SPARQL's
              // "remains unbound").
              auto value = eval->expr_eval_.EvalTerm(*b.expr, lookup);
              Value v = ValueFromTerm(
                  value.value_or(rdf::TermDictionary::kUndef));
              Value target;
              if (ResolveTerm(b.target, &target)) {
                if (target != v) return false;
              } else {
                Bind(b.target.var, v, bound_trail);
              }
            }
            builtin_done[bi] = true;
            done_trail->push_back(bi);
            changed = true;
            break;
          }
        }
      }
    }
    return true;
  }

  bool CheckNegatives() {
    for (const Atom& atom : rule->negative) {
      neg_scratch.clear();
      for (const RuleTerm& t : atom.args) {
        Value v = 0;
        ResolveTerm(t, &v);  // validation guarantees boundness
        neg_scratch.push_back(v);
      }
      if (const Relation* r = edb->Find(atom.predicate)) {
        if (r->Contains(neg_scratch)) return false;
      }
      if (const Relation* r = idb->Find(atom.predicate)) {
        if (r->Contains(neg_scratch)) return false;
      }
    }
    return true;
  }

  /// Returns false on fatal error (status set).
  bool EmitHead() {
    head_scratch.clear();
    for (const RuleTerm& t : rule->head.args) {
      Value v = 0;
      ResolveTerm(t, &v);
      head_scratch.push_back(v);
    }
    ++fired;
    if (staging != nullptr) {
      // Parallel worker: stage instead of inserting. The target relation
      // is read-only until the round barrier, so Contains needs no
      // synchronization; local dedup keeps the merge small. The budget
      // check counts only this worker's fresh tuples on top of the shared
      // total (cross-worker duplicates may overcount slightly — mem-out
      // stays approximate, never under-enforced at the barrier).
      if (!staging_target->Contains(head_scratch)) {
        bool fresh = false;
        staging->Insert(head_scratch.data(), &fresh);
        if (fresh) {
          ++*staged;
          if (ctx->tuples_used() + *staged > ctx->tuple_budget()) {
            status =
                Status::ResourceExhausted("tuple budget exceeded (mem-out)");
            return false;
          }
        }
      }
    } else {
      Relation& rel =
          (emit_db != nullptr ? emit_db : idb)
              ->relation(rule->head.predicate,
                         static_cast<uint32_t>(rule->head.args.size()));
      if (rel.Insert(head_scratch, insert_round)) {
        ++inserted;
        ctx->AddTuples(1);
      }
      if (head_binding != nullptr) {
        // DRed re-derivation asks for one witness of the pre-bound head
        // tuple; it exists now, so abort the join early. The false
        // return unwinds the search with an OK status.
        status = ctx->CheckBudgetShared(&clock_phase);
        return false;
      }
    }
    status = ctx->CheckBudgetShared(&clock_phase);
    return status.ok();
  }

  bool TryRow(const Relation* rel, uint32_t row_id, size_t depth) {
    // RowRef is a view into the relation's arena; it is consumed fully
    // before JoinStep below can insert (and potentially reallocate).
    return TryRowAt(rel->row(row_id), depth);
  }

  bool TryRowAt(RowRef row, size_t depth) {
    const Atom& atom = rule->positive[order[depth]];
    size_t trail_start = trail.size();
    bool ok = true;
    for (size_t i = 0; i < atom.args.size(); ++i) {
      const RuleTerm& t = atom.args[i];
      if (!t.is_var) {
        if (row[i] != t.constant) {
          ok = false;
          break;
        }
      } else if (bound[t.var]) {
        if (row[i] != vals[t.var]) {
          ok = false;
          break;
        }
      } else {
        Bind(t.var, row[i], &trail);
      }
    }
    if (ok && !JoinStep(depth + 1)) {
      Unbind(&trail, trail_start);
      return false;
    }
    Unbind(&trail, trail_start);
    return true;
  }

  /// Returns false on fatal error.
  bool JoinStep(size_t depth) {
    status = ctx->CheckBudgetShared(&clock_phase);
    if (!status.ok()) return false;

    size_t btrail_start = trail.size();
    std::vector<uint32_t> done_trail;
    bool accepted = RunBuiltins(&trail, &done_trail);
    bool result = true;
    if (accepted) {
      if (depth == order.size()) {
        if (CheckNegatives()) result = EmitHead();
      } else {
        result = MatchAtom(depth);
      }
    }
    for (uint32_t bi : done_trail) builtin_done[bi] = false;
    Unbind(&trail, btrail_start);
    return result;
  }

  bool MatchAtom(size_t depth) {
    const Atom& atom = rule->positive[order[depth]];
    bool is_delta = (order[depth] == delta_atom);

    // Bound columns for index probing (per-depth scratch buffers, sized in
    // Run(), keep the inner loop allocation-free).
    std::vector<uint32_t>& cols = scratch_cols[depth];
    std::vector<Value>& key = scratch_keys[depth];
    cols.clear();
    key.clear();
    for (size_t i = 0; i < atom.args.size(); ++i) {
      Value v = 0;
      if (ResolveTerm(atom.args[i], &v)) {
        cols.push_back(static_cast<uint32_t>(i));
        key.push_back(v);
      }
    }

    if (is_delta) {
      if (staging != nullptr) {
        // Parallel shard: the task pinned the relation and row range
        // (the IDB delta for fixpoint rounds, one EDB/IDB source of the
        // pivot atom for the sharded naive pass). Every relation is
        // frozen until the round barrier, so the arena cannot
        // reallocate mid-scan — walk the shard pointer-stepped with a
        // compile-time stride for the hot arity <= 4 case instead of
        // recomputing base + id * arity per row.
        if (shard_lo >= shard_hi) return true;
        const uint32_t k = scan_rel->arity();
        const Value* base = scan_rel->row(shard_lo).data();
        return WithStride(k, [&](auto stride) {
          const Value* p = base;
          for (uint32_t id = shard_lo; id < shard_hi;
               ++id, p += stride.arity()) {
            if (!TryRowAt(RowRef(p, k), depth)) return false;
          }
          return true;
        });
      }
      // Serial path: id-based fetch, not pointer-stepped — a recursive
      // rule may insert into the very relation it is scanning, growing
      // the arena.
      Relation* rel =
          (delta_source != nullptr ? delta_source : idb)
              ->FindMutable(atom.predicate);
      if (rel == nullptr) return true;
      auto [lo, hi] = rel->RoundRange(delta_round);
      for (uint32_t id = lo; id < hi; ++id) {
        if (!TryRow(rel, id, depth)) return false;
      }
      return true;
    }

    Relation* sources[3] = {edb->FindMutable(atom.predicate),
                            idb->FindMutable(atom.predicate),
                            aux != nullptr ? aux->FindMutable(atom.predicate)
                                           : nullptr};
    for (Relation* rel : sources) {
      if (rel == nullptr || rel->size() == 0) continue;
      bool indexed = false;
      if (!cols.empty()) {
        // MatchSpan is epoch-stable: recursive rules may insert into this
        // relation (and its index buckets) while we iterate, and the span
        // keeps addressing the probe-time prefix without a defensive
        // copy. Parallel workers use the thread-safe TryProbe (relations
        // are read-only until the barrier, but a missing index must be
        // built and published race-free); it only fails past the
        // published-index capacity, where the filtered scan below is the
        // fallback.
        MatchSpan span;
        if (staging != nullptr) {
          indexed = rel->TryProbe(cols, key, &span);
        } else {
          span = rel->Probe(cols, key);
          indexed = true;
        }
        if (indexed) {
          for (uint32_t k = 0; k < span.size(); ++k) {
            if (!TryRow(rel, span[k], depth)) return false;
          }
        }
      }
      if (!indexed) {
        size_t n = rel->size();  // snapshot; new rows belong to next round
        for (uint32_t id = 0; id < n; ++id) {
          if (!TryRow(rel, id, depth)) return false;
        }
      }
    }
    return true;
  }

  Status Run() {
    vals.assign(rule->var_names.size(), 0);
    bound.assign(rule->var_names.size(), false);
    builtin_done.assign(rule->builtins.size(), false);
    trail.clear();
    status = Status::OK();
    if (head_binding != nullptr) {
      // DRed re-derivation: constrain the whole join to one head tuple by
      // pre-binding the head args. A constant mismatch or a conflicting
      // repeated variable means this rule cannot derive the tuple at all.
      const auto& hargs = rule->head.args;
      for (size_t i = 0; i < hargs.size(); ++i) {
        const RuleTerm& t = hargs[i];
        if (!t.is_var) {
          if (t.constant != head_binding[i]) return status;
        } else if (bound[t.var]) {
          if (vals[t.var] != head_binding[i]) return status;
        } else {
          vals[t.var] = head_binding[i];
          bound[t.var] = true;
        }
      }
    }
    ComputeOrder();
    scratch_cols.assign(order.size(), {});
    scratch_keys.assign(order.size(), {});
    JoinStep(0);
    return status;
  }
};

Status Evaluator::Evaluate(const Program& program, Database* edb,
                           Database* idb, ExecContext* ctx) {
  stats_ = EvalStats();
  // Interning contention is reported as a delta over this evaluation;
  // both interners only ever grow their counters.
  const uint64_t contention_start = expr_eval_.dict()->intern_contention() +
                                    skolems_->intern_contention();
  SPARQLOG_RETURN_NOT_OK(program.Validate());
  SPARQLOG_ASSIGN_OR_RETURN(Stratification strat, Stratify(program));
  stats_.strata = strat.num_strata;

  // Cross-query stratum memoization (semi-naive only: naive mode is the
  // reference semantics the differential tests compare against, and its
  // arena insertion order differs).
  const bool memo_ok = memo_ != nullptr && mode_ == FixpointMode::kSemiNaive;
  std::vector<uint64_t> stratum_fp;
  std::vector<uint64_t> stratum_fp_old;
  // Incremental stratum maintenance: when the engine supplies the latest
  // update's EDB delta plus the version map from *before* it, a stratum
  // whose previous fingerprint still has a snapshot is re-derived from
  // that snapshot + the input deltas (insertions as one extra semi-naive
  // round, deletions via DRed) instead of from scratch. IDB input
  // changes propagate through the composed fingerprints, so
  // fp_new == fp_old means "all transitive inputs unchanged".
  const bool inc_ok =
      memo_ok && inc_.delta != nullptr && inc_.prev_versions != nullptr;
  if (memo_ok) {
    stratum_fp = StratumFingerprints(program, strat, *skolems_, dataset_fp_,
                                     inc_.versions);
    if (inc_ok) {
      stratum_fp_old = StratumFingerprints(program, strat, *skolems_,
                                           dataset_fp_, inc_.prev_versions);
    }
  }
  // Downstream change propagation: after each stratum whose fingerprint
  // changed, its head relations are diffed against the pre-update
  // snapshot; the diffs become the IDB input deltas of later strata. A
  // head whose diff can't be computed (old snapshot evicted, arity 0)
  // lands in `idb_unknown`, which poisons downstream *eligibility*, never
  // correctness.
  std::unordered_map<PredicateId, EdbDelta::PredicateDelta> idb_delta;
  std::unordered_set<PredicateId> idb_unknown;

  uint32_t threads = num_threads_;
  if (threads == 0) threads = std::thread::hardware_concurrency();
  if (threads == 0) threads = 1;
  // Naive mode exists as the single-threaded reference semantics for the
  // differential tests and ablations; it never shards.
  const bool parallel_ok = threads > 1 && mode_ == FixpointMode::kSemiNaive;

  // Seed program facts (round 0).
  for (const Fact& f : program.facts) {
    Relation& rel = idb->relation(
        f.predicate, static_cast<uint32_t>(f.tuple.size()));
    if (rel.Insert(f.tuple, 0)) ctx->AddTuples(1);
  }
  SPARQLOG_RETURN_NOT_OK(ctx->CheckBudget());

  uint32_t round = 1;
  uint32_t serial_clock_phase = 0;  // spans all serial rule runs
  for (uint32_t s = 0; s < strat.num_strata; ++s) {
    const std::vector<uint32_t>& rule_ids = strat.strata_rules[s];
    if (rule_ids.empty()) continue;
    SPARQLOG_FAILPOINT(g_fp_stratum_begin);

    // Head predicates defined in this stratum (delta candidates; also the
    // unit of incremental change tracking).
    std::unordered_set<PredicateId> stratum_heads;
    for (uint32_t ri : rule_ids) {
      stratum_heads.insert(program.rules[ri].head.predicate);
    }

    // Records this stratum's head-relation diff (current vs the
    // pre-update snapshot) into `idb_delta` once the heads are final —
    // called on every exit path of the stratum body. No-op when the
    // fingerprint didn't change (inputs, and hence heads, are
    // identical).
    auto record_change = [&]() {
      if (!inc_ok || stratum_fp[s] == stratum_fp_old[s]) return;
      std::shared_ptr<const StratumSnapshot> old_snap =
          memo_->Lookup(stratum_fp_old[s]);
      bool usable = old_snap != nullptr;
      if (usable) {
        for (const auto& rel : old_snap->relations) {
          auto pid = program.predicates.Lookup(rel.predicate);
          if (!pid || program.predicates.Arity(*pid) != rel.arity ||
              rel.arity == 0) {
            usable = false;
            break;
          }
        }
      }
      if (!usable) {
        idb_unknown.insert(stratum_heads.begin(), stratum_heads.end());
        return;
      }
      for (PredicateId p : stratum_heads) {
        const uint32_t arity = program.predicates.Arity(p);
        if (arity == 0) {
          idb_unknown.insert(p);
          continue;
        }
        const std::string& name = program.predicates.Name(p);
        const StratumSnapshot::RelationSnapshot* old_rel = nullptr;
        for (const auto& rel : old_snap->relations) {
          if (rel.predicate == name) {
            old_rel = &rel;
            break;
          }
        }
        const Relation* cur = idb->Find(p);
        EdbDelta::PredicateDelta d;
        d.arity = arity;
        TupleStore old_store(arity);
        if (old_rel != nullptr && old_rel->num_rows > 0) {
          old_store.BulkLoad(old_rel->rows.data(), old_rel->num_rows);
        }
        if (cur != nullptr) {
          for (RowRef row : cur->rows()) {
            if (!old_store.Contains(row.data())) {
              d.ins.insert(d.ins.end(), row.begin(), row.end());
            }
          }
        }
        if (old_rel != nullptr) {
          for (uint32_t i = 0; i < old_rel->num_rows; ++i) {
            const Value* row =
                old_rel->rows.data() + static_cast<size_t>(i) * arity;
            if (cur == nullptr || !cur->Contains(row)) {
              d.del.insert(d.del.end(), row, row + arity);
            }
          }
        }
        if (!d.ins.empty() || !d.del.empty()) idb_delta[p] = std::move(d);
      }
    };

    // Memo hit: replay the snapshot (arena order preserved; program
    // facts already seeded above dedup away) instead of evaluating.
    if (memo_ok) {
      if (std::shared_ptr<const StratumSnapshot> snap =
              memo_->Lookup(stratum_fp[s])) {
        // Resolve every snapshot predicate before touching the IDB, so a
        // (vanishingly unlikely) fingerprint collision with a foreign
        // rule set degrades to a miss instead of corrupting results.
        bool resolvable = true;
        for (const auto& rel : snap->relations) {
          auto pid = program.predicates.Lookup(rel.predicate);
          if (!pid || program.predicates.Arity(*pid) != rel.arity) {
            resolvable = false;
            break;
          }
        }
        if (resolvable) {
          uint64_t restored =
              snap->Restore(program.predicates, round, idb);
          ctx->AddTuples(restored);
          stats_.tuples_restored += restored;
          ++stats_.strata_memo_hits;
          SPARQLOG_RETURN_NOT_OK(ctx->CheckBudget());
          record_change();
          ++round;
          continue;
        }
      }
      ++stats_.strata_memo_misses;
    }

    // TC fast path: a stratum whose only recursive dependency is one
    // linear closure rule (the shape every recursive property path
    // translates to) runs the dedicated kernel instead of the generic
    // delta rounds. The closure rule is excluded from the initial pass —
    // the kernel's seeds are exactly the rows the remaining rules (and
    // program facts) put into the head relation — and the fixpoint loop
    // below is replaced wholesale. Detection is structural, so it can
    // run before any tuple is derived.
    std::optional<TcShape> tc;
    if (tc_kernel_ && mode_ == FixpointMode::kSemiNaive &&
        strat.stratum_recursive[s]) {
      tc = DetectTcShape(program, rule_ids, stratum_heads);
    }

    // ---- Incremental stratum path ------------------------------------
    // Memo miss whose previous fingerprint still has a snapshot: restore
    // the pre-update result, then bring it to the new fixpoint from the
    // input deltas alone. Insert-only deltas seed one extra semi-naive
    // round (the fixpoint loop below finishes the closure); deletions run
    // DRed first — over-delete to a fixpoint against current ∪ deleted
    // (a sound over-approximation of the pre-update state), physically
    // remove, then re-derive survivors head-by-head. Serial by design:
    // delta volumes are bounded by contract (`max_overdelete` trips the
    // full-recompute fallback), so sharding would only add barriers. This
    // runs before the shard scaffolding is built because the fallback
    // Resets head relations, which would dangle the merge plan's
    // Relation pointers.
    bool inc_handled = false;
    uint64_t inc_new = 0;
    auto attempt_incremental = [&]() -> Status {
      std::shared_ptr<const StratumSnapshot> old_snap =
          memo_->Lookup(stratum_fp_old[s]);
      if (old_snap == nullptr) return Status::OK();
      for (const auto& rel : old_snap->relations) {
        auto pid = program.predicates.Lookup(rel.predicate);
        if (!pid || program.predicates.Arity(*pid) != rel.arity ||
            rel.arity == 0) {
          return Status::OK();
        }
      }
      for (PredicateId p : stratum_heads) {
        if (program.predicates.Arity(p) == 0) return Status::OK();
      }

      // Collect the input deltas this stratum is affected by. Unknown
      // (undiffable) inputs, arity mismatches, and negation over a
      // changed predicate all disqualify — DRed handles stratified
      // negation only when the negated side is stable.
      struct InputDelta {
        PredicateId pred;
        const EdbDelta::PredicateDelta* delta;
      };
      std::vector<InputDelta> inputs;
      std::unordered_set<PredicateId> seen_inputs;
      bool eligible = true;
      bool has_del = false;
      uint64_t del_rows = 0;
      auto find_delta =
          [&](PredicateId p) -> const EdbDelta::PredicateDelta* {
        if (idb_unknown.count(p) != 0) {
          eligible = false;
          return nullptr;
        }
        auto it = idb_delta.find(p);
        if (it != idb_delta.end()) return &it->second;
        auto eit = inc_.delta->preds.find(program.predicates.Name(p));
        if (eit != inc_.delta->preds.end()) {
          if (eit->second.arity != program.predicates.Arity(p)) {
            eligible = false;
            return nullptr;
          }
          return &eit->second;
        }
        return nullptr;
      };
      for (uint32_t ri : rule_ids) {
        const Rule& rule = program.rules[ri];
        for (const Atom& a : rule.positive) {
          PredicateId p = a.predicate;
          if (stratum_heads.count(p) != 0 || seen_inputs.count(p) != 0) {
            continue;
          }
          seen_inputs.insert(p);
          const EdbDelta::PredicateDelta* d = find_delta(p);
          if (!eligible) return Status::OK();
          if (d != nullptr) {
            inputs.push_back({p, d});
            has_del = has_del || !d->del.empty();
            del_rows += d->del.size() / d->arity;
          }
        }
        for (const Atom& a : rule.negative) {
          const EdbDelta::PredicateDelta* d = find_delta(a.predicate);
          if (!eligible || d != nullptr) return Status::OK();
        }
      }
      if (has_del && (del_rows > inc_.max_overdelete || tc)) {
        // TC-shaped strata lean on the kernel; unwinding a closure via
        // DRed over-deletes nearly everything, so recompute instead.
        // (Insert-only TC deltas do run incrementally — through the
        // generic delta rounds, skipping the kernel.) An input delta
        // already past the over-delete bound is the same fallback the
        // in-cascade check takes, just caught before any work.
        if (del_rows > inc_.max_overdelete) ++stats_.incremental_fallbacks;
        return Status::OK();
      }

      // Restore the pre-update snapshot at this round; all incremental
      // derivations go to the next round, which the fixpoint loop then
      // scans as its first delta.
      uint64_t restored = old_snap->Restore(program.predicates, round, idb);
      ctx->AddTuples(restored);
      stats_.tuples_restored += restored;
      SPARQLOG_RETURN_NOT_OK(ctx->CheckBudget());
      ++round;
      const uint32_t derive_round = round;

      // Scratch databases holding the input deltas at round 0. `aux_del`
      // additionally accumulates over-deleted head tuples (rounds >= 1).
      Database aux_ins;
      Database aux_del;
      for (const InputDelta& in : inputs) {
        if (!in.delta->ins.empty()) {
          aux_ins.relation(in.pred, in.delta->arity)
              .InsertStaged(in.delta->ins.data(),
                            in.delta->ins.size() / in.delta->arity, 0);
        }
        if (!in.delta->del.empty()) {
          aux_del.relation(in.pred, in.delta->arity)
              .InsertStaged(in.delta->del.data(),
                            in.delta->del.size() / in.delta->arity, 0);
        }
      }

      if (has_del) {
        ++stats_.strata_dred;
        // Program facts are axioms, not derivations — they survive any
        // over-delete.
        std::unordered_map<PredicateId, TupleStore> fact_rows;
        for (const Fact& f : program.facts) {
          if (stratum_heads.count(f.predicate) == 0) continue;
          auto [it, unused] = fact_rows.try_emplace(
              f.predicate, static_cast<uint32_t>(f.tuple.size()));
          bool fresh = false;
          it->second.Insert(f.tuple.data(), &fresh);
        }

        // Over-delete fixpoint: every (rule, atom) whose predicate has
        // deleted rows at round `dr` re-fires with the delta scan pinned
        // to those rows, the remaining atoms matched against
        // current ∪ deleted, and heads emitted into `aux_del` at dr+1.
        uint64_t overdeleted = 0;
        uint32_t dr = 0;
        bool progress = true;
        while (progress) {
          progress = false;
          for (uint32_t ri : rule_ids) {
            const Rule& rule = program.rules[ri];
            for (uint32_t ai = 0;
                 ai < static_cast<uint32_t>(rule.positive.size()); ++ai) {
              const Relation* drel =
                  aux_del.Find(rule.positive[ai].predicate);
              if (drel == nullptr) continue;
              auto [lo, hi] = drel->RoundRange(dr);
              if (lo >= hi) continue;
              RuleRun run;
              run.eval = this;
              run.rule = &rule;
              run.edb = edb;
              run.idb = idb;
              run.ctx = ctx;
              run.insert_round = dr + 1;
              run.delta_round = dr;
              run.delta_atom = ai;
              run.delta_source = &aux_del;
              run.aux = &aux_del;
              run.emit_db = &aux_del;
              run.clock_phase = serial_clock_phase;
              Status st = run.Run();
              serial_clock_phase = run.clock_phase;
              stats_.rules_fired += run.fired;
              SPARQLOG_RETURN_NOT_OK(st);
              if (run.inserted > 0) progress = true;
              overdeleted += run.inserted;
            }
          }
          ++dr;
          if (overdeleted > inc_.max_overdelete) {
            // The cascade outgrew the bound: discard the restored
            // stratum and fall back to the full recompute below.
            ++stats_.incremental_fallbacks;
            for (PredicateId p : stratum_heads) {
              idb->Reset(p, program.predicates.Arity(p));
            }
            for (const Fact& f : program.facts) {
              if (stratum_heads.count(f.predicate) == 0) continue;
              Relation& rel = idb->relation(
                  f.predicate, static_cast<uint32_t>(f.tuple.size()));
              if (rel.Insert(f.tuple, 0)) ctx->AddTuples(1);
            }
            return Status::OK();
          }
        }
        stats_.tuples_overdeleted += overdeleted;

        // Physically remove the over-deleted head tuples (absent ones —
        // the over-approximation surplus — are skipped by RemoveRows
        // anyway; program facts are pre-filtered out), remembering each
        // removed tuple for the re-derivation pass.
        struct Doomed {
          PredicateId pred;
          std::vector<Value> row;
        };
        std::vector<Doomed> removed_tuples;
        for (PredicateId p : stratum_heads) {
          const Relation* od = aux_del.Find(p);
          Relation* target = idb->FindMutable(p);
          if (od == nullptr || od->size() == 0 || target == nullptr) {
            continue;
          }
          const TupleStore* facts = nullptr;
          if (auto fit = fact_rows.find(p); fit != fact_rows.end()) {
            facts = &fit->second;
          }
          const uint32_t arity = od->arity();
          std::vector<Value> doomed;
          for (RowRef row : od->rows()) {
            if (!target->Contains(row.data())) continue;
            if (facts != nullptr && facts->Contains(row.data())) continue;
            doomed.insert(doomed.end(), row.begin(), row.end());
            removed_tuples.push_back({p, row.ToVector()});
          }
          if (!doomed.empty()) {
            target->RemoveRows(doomed.data(), doomed.size() / arity);
          }
        }

        // Re-derivation: a removed tuple may have an alternate support
        // among the survivors (plus unchanged inputs). Each success puts
        // the tuple back, which can in turn support others — iterate to
        // fixpoint over the shrinking list.
        bool rederived = true;
        while (rederived) {
          rederived = false;
          for (size_t i = 0; i < removed_tuples.size();) {
            Doomed& dt = removed_tuples[i];
            bool found = false;
            for (uint32_t ri : rule_ids) {
              const Rule& rule = program.rules[ri];
              if (rule.head.predicate != dt.pred) continue;
              RuleRun run;
              run.eval = this;
              run.rule = &rule;
              run.edb = edb;
              run.idb = idb;
              run.ctx = ctx;
              run.insert_round = derive_round;
              run.head_binding = dt.row.data();
              run.clock_phase = serial_clock_phase;
              Status st = run.Run();
              serial_clock_phase = run.clock_phase;
              stats_.rules_fired += run.fired;
              SPARQLOG_RETURN_NOT_OK(st);
              if (run.inserted > 0) {
                found = true;
                inc_new += run.inserted;
                ++stats_.tuples_rederived;
                break;
              }
            }
            if (found) {
              rederived = true;
              removed_tuples[i] = std::move(removed_tuples.back());
              removed_tuples.pop_back();
            } else {
              ++i;
            }
          }
        }
      }

      // Insertion phase: one semi-naive round with the delta scan pinned
      // to the inserted input rows (per rule and per atom, the standard
      // rotation — the remaining atoms see the full new state, EDB
      // deltas included, so multi-atom all-new derivations are covered).
      for (uint32_t ri : rule_ids) {
        const Rule& rule = program.rules[ri];
        for (uint32_t ai = 0;
             ai < static_cast<uint32_t>(rule.positive.size()); ++ai) {
          const Relation* irel = aux_ins.Find(rule.positive[ai].predicate);
          if (irel == nullptr || irel->size() == 0) continue;
          RuleRun run;
          run.eval = this;
          run.rule = &rule;
          run.edb = edb;
          run.idb = idb;
          run.ctx = ctx;
          run.insert_round = derive_round;
          run.delta_round = 0;
          run.delta_atom = ai;
          run.delta_source = &aux_ins;
          run.clock_phase = serial_clock_phase;
          Status st = run.Run();
          serial_clock_phase = run.clock_phase;
          stats_.rules_fired += run.fired;
          SPARQLOG_RETURN_NOT_OK(st);
          inc_new += run.inserted;
        }
      }

      stats_.tuples_derived += inc_new;
      ++stats_.strata_incremental;
      inc_handled = true;
      return Status::OK();
    };
    if (inc_ok && stratum_fp[s] != stratum_fp_old[s]) {
      SPARQLOG_RETURN_NOT_OK(attempt_incremental());
    }

    auto run_rule = [&](uint32_t ri, uint32_t delta_atom,
                        uint32_t delta_round) -> Result<uint64_t> {
      RuleRun run;
      run.eval = this;
      run.rule = &program.rules[ri];
      run.edb = edb;
      run.idb = idb;
      run.ctx = ctx;
      run.insert_round = round;
      run.delta_round = delta_round;
      run.delta_atom = delta_atom;
      // The clock-stride phase persists across invocations (like the
      // pre-parallelism ctx-owned counter): many short rule runs must
      // still reach the every-256th-check deadline sample.
      run.clock_phase = serial_clock_phase;
      Status st = run.Run();
      serial_clock_phase = run.clock_phase;
      stats_.rules_fired += run.fired;
      stats_.tuples_derived += run.inserted;
      SPARQLOG_RETURN_NOT_OK(st);
      return run.inserted;
    };

    const bool recursive = strat.stratum_recursive[s];
    // Sharded evaluation of this stratum. Interning (TermDictionary,
    // SkolemStore) is thread-safe, so *every* rule shards — there is no
    // serial-eligibility split any more: a recursive stratum fans out
    // its initial naive pass and every delta round.
    const bool shard_stratum = parallel_ok && recursive;

    std::vector<WorkerState> workers;
    std::vector<uint32_t> merge_phases;      // per merge worker, persists
    std::vector<PredicateId> par_heads;      // sorted, deterministic merge
    std::vector<StagedMergeTask> merge_tasks;  // one per head predicate
    if (shard_stratum) {
      if (pool_ == nullptr || pool_->num_workers() != threads) {
        pool_ = std::make_unique<ThreadPool>(threads);
      }
      // Pre-create every head relation this stratum derives into (so
      // workers never mutate the Database map; empty relations are
      // invisible to dumps and solutions) and per-worker staging stores.
      workers.resize(threads);
      merge_phases.assign(threads, 0);
      for (uint32_t ri : rule_ids) {
        const Atom& head = program.rules[ri].head;
        uint32_t arity = static_cast<uint32_t>(head.args.size());
        idb->relation(head.predicate, arity);
        for (WorkerState& ws : workers) {
          ws.staging.try_emplace(head.predicate, arity);
        }
        par_heads.push_back(head.predicate);
      }
      std::sort(par_heads.begin(), par_heads.end());
      par_heads.erase(std::unique(par_heads.begin(), par_heads.end()),
                      par_heads.end());
      // Merge fan-out plan: one task per head predicate, sources in
      // worker order. Relation and staging-store addresses are stable
      // for the stratum, so the plan is built once.
      for (PredicateId pred : par_heads) {
        StagedMergeTask task;
        task.target = idb->FindMutable(pred);
        for (WorkerState& ws : workers) {
          task.sources.push_back(&ws.staging.at(pred));
        }
        merge_tasks.push_back(std::move(task));
      }
    }

    // One sharded scan over `tasks` (each task pins a rule, its scan
    // atom, and a frozen relation row range), then the round-barrier
    // merge — per-predicate fan-out by default, the serial
    // worker-then-predicate loop as reference. Merge order within each
    // predicate is worker order either way, so a relation's arena is
    // bit-identical across merge modes and deterministic for a fixed
    // thread count; across thread counts only arena row ids change,
    // never set semantics.
    struct ScanTask {
      uint32_t rule;
      uint32_t atom;
      const Relation* rel;
      uint32_t lo;
      uint32_t hi;
    };
    auto run_parallel_round =
        [&](const std::vector<ScanTask>& tasks) -> Result<uint64_t> {
      if (tasks.empty()) return uint64_t{0};
      const uint32_t num_workers =
          static_cast<uint32_t>(pool_->num_workers());
      for (WorkerState& ws : workers) {
        ws.fired = 0;
        ws.staged = 0;
        ws.status = Status::OK();
        for (auto& [pred, store] : ws.staging) store.Clear();
      }
      pool_->RunOnWorkers([&](size_t w) {
        WorkerState& ws = workers[w];
        for (const ScanTask& tr : tasks) {
          const Rule& rule = program.rules[tr.rule];
          // Block-cyclic sharding of the scan range: contiguous blocks
          // dealt round-robin across workers, so skewed per-row join
          // costs still balance without a work queue.
          uint32_t range = tr.hi - tr.lo;
          uint32_t block = std::max(1u, range / (num_workers * 4));
          uint32_t num_blocks = (range + block - 1) / block;
          // One RuleRun per (worker, task): Run() resets the join state
          // in place, so the per-block loop only moves the shard window
          // and reuses the scratch vectors' capacity.
          RuleRun run;
          run.eval = this;
          run.rule = &rule;
          run.edb = edb;
          run.idb = idb;
          run.ctx = ctx;
          run.insert_round = round;
          run.delta_atom = tr.atom;
          run.scan_rel = tr.rel;
          run.staging = &ws.staging.at(rule.head.predicate);
          run.staging_target = idb->Find(rule.head.predicate);
          run.staged = &ws.staged;
          run.clock_phase = ws.clock_phase;
          for (uint32_t b = static_cast<uint32_t>(w); b < num_blocks;
               b += num_workers) {
            run.shard_lo = tr.lo + b * block;
            run.shard_hi = std::min(tr.hi, run.shard_lo + block);
            Status st = run.Run();
            ws.fired += run.fired;
            run.fired = 0;
            if (!st.ok()) {
              ws.status = st;
              ws.clock_phase = run.clock_phase;
              return;
            }
          }
          ws.clock_phase = run.clock_phase;
        }
      });
      for (WorkerState& ws : workers) {
        stats_.rules_fired += ws.fired;
        SPARQLOG_RETURN_NOT_OK(ws.status);
      }

      // Round barrier: merge the staging buffers into the target
      // relations.
      uint64_t merged = 0;
      if (parallel_merge_) {
        uint32_t fanout = 0;
        SPARQLOG_ASSIGN_OR_RETURN(
            merged, MergeStagedParallel(&merge_tasks, round, pool_.get(),
                                        ctx, merge_phases.data(), &fanout));
        stats_.merge_fanout_width =
            std::max(stats_.merge_fanout_width, fanout);
      } else {
        // Serial reference merge, single-writer in worker-then-predicate
        // order (the BM_BarrierMerge baseline).
        for (WorkerState& ws : workers) {
          for (PredicateId pred : par_heads) {
            TupleStore& store = ws.staging.at(pred);
            if (store.size() == 0) continue;
            merged += idb->FindMutable(pred)->InsertStaged(store, round);
          }
        }
        ctx->AddTuples(merged);
      }
      stats_.tuples_derived += merged;
      stats_.staged_merged += merged;
      SPARQLOG_RETURN_NOT_OK(ctx->CheckBudget());
      ++stats_.parallel_rounds;
      return merged;
    };

    // Initial (naive) pass over the current database state. Serial by
    // default: rules of the same stratum see each other's same-pass
    // insertions here, which the single-pass completeness of
    // non-recursive strata relies on. Recursive strata don't need that
    // visibility — the fixpoint rounds below deliver any derivation the
    // no-visibility pass misses — so the sharded path fans the initial
    // pass out too, pivoting each rule on one positive atom: sharding
    // any single atom over its full row range partitions the rule's
    // output, and the EDB/IDB source split of the pivot predicate
    // partitions its rows.
    uint64_t new_tuples = 0;
    if (inc_handled) {
      // Incremental path already restored + re-derived this stratum; its
      // fresh tuples sit at the previous round, which the fixpoint loop
      // below picks up as its first delta.
      new_tuples = inc_new;
    } else if (shard_stratum && parallel_naive_) {
      std::vector<ScanTask> tasks;
      for (uint32_t ri : rule_ids) {
        if (tc && ri == tc->rule_index) continue;  // kernel handles it
        const Rule& rule = program.rules[ri];
        if (rule.positive.empty()) {
          // Nothing to shard on (builtins-only body); run serially
          // before the region, so the frozen scans below see it.
          SPARQLOG_ASSIGN_OR_RETURN(uint64_t n, run_rule(ri, kNoDelta, 0));
          new_tuples += n;
          continue;
        }
        // Pivot choice: planned rules scan their planned first atom (the
        // most selective one — the sharded scan then mirrors the serial
        // planned join exactly); unplanned rules pivot on the largest
        // relation, the most rows to deal out.
        uint32_t pivot = 0;
        if (!rule.planned) {
          size_t best = 0;
          for (uint32_t ai = 0;
               ai < static_cast<uint32_t>(rule.positive.size()); ++ai) {
            size_t sz = 0;
            PredicateId p = rule.positive[ai].predicate;
            if (const Relation* r = edb->Find(p)) sz += r->size();
            if (const Relation* r = idb->Find(p)) sz += r->size();
            if (ai == 0 || sz > best) {
              pivot = ai;
              best = sz;
            }
          }
        }
        PredicateId p = rule.positive[pivot].predicate;
        for (const Database* db :
             {static_cast<const Database*>(edb),
              static_cast<const Database*>(idb)}) {
          const Relation* r = db->Find(p);
          if (r != nullptr && r->size() > 0) {
            tasks.push_back(
                {ri, pivot, r, 0, static_cast<uint32_t>(r->size())});
          }
        }
      }
      if (!tasks.empty()) ++stats_.naive_rounds_sharded;
      SPARQLOG_ASSIGN_OR_RETURN(uint64_t n, run_parallel_round(tasks));
      new_tuples += n;
    } else {
      for (uint32_t ri : rule_ids) {
        if (tc && ri == tc->rule_index) continue;  // kernel handles it
        SPARQLOG_ASSIGN_OR_RETURN(uint64_t n, run_rule(ri, kNoDelta, 0));
        new_tuples += n;
      }
    }
    ++stats_.rounds;
    ++round;

    // Snapshot the completed stratum for reuse by later queries. A head
    // relation at this point holds exactly the stratum's derivations plus
    // any program facts seeded into it (head predicates are defined in
    // one stratum only), which is precisely what the fingerprint covers.
    auto snapshot_stratum = [&]() {
      if (!memo_ok) return;
      StratumSnapshot snap;
      std::vector<PredicateId> heads(stratum_heads.begin(),
                                     stratum_heads.end());
      std::sort(heads.begin(), heads.end());
      for (PredicateId p : heads) {
        const Relation* r = idb->Find(p);
        if (r == nullptr) continue;
        snap.Capture(program.predicates.Name(p), *r);
      }
      memo_->Insert(stratum_fp[s], std::move(snap));
    };

    // Non-recursive strata are complete after the single pass.
    if (!recursive) {
      snapshot_stratum();
      record_change();
      continue;
    }

    if (tc && !inc_handled) {
      // The kernel completes the closure in one shot: grouped BFS over
      // the frozen step relation, pivoting on newly reached endpoints
      // only (the delta side), with no per-round rescans or merges.
      SPARQLOG_ASSIGN_OR_RETURN(
          TcKernelStats kstats,
          RunTcKernel(*tc, program, edb, idb, round, ctx,
                      &serial_clock_phase,
                      shard_stratum ? pool_.get() : nullptr));
      ++stats_.tc_kernels_hit;
      if (kstats.dense) {
        ++stats_.tc_dense_frontiers;
      } else {
        ++stats_.tc_sparse_frontiers;
      }
      stats_.rules_fired += kstats.emitted;
      stats_.tuples_derived += kstats.inserted;
      if (kstats.inserted > 0) {
        ++stats_.rounds;
        ++round;
      }
      snapshot_stratum();
      record_change();
      continue;
    }

    // Delta tasks for the fixpoint rounds: every (rule, stratum-head
    // atom) pair. Staging delays same-round visibility (a worker's
    // derivations surface at the barrier, not mid-round), which is sound
    // here: within a stratum the rules are monotone — negation is
    // stratified strictly below — so any fair round order reaches the
    // same fixpoint, and the `new_tuples` loop keeps iterating until no
    // round adds anything.
    struct DeltaTask {
      uint32_t rule;
      uint32_t atom;
    };
    std::vector<DeltaTask> delta_tasks;
    for (uint32_t ri : rule_ids) {
      const Rule& rule = program.rules[ri];
      for (uint32_t ai = 0; ai < rule.positive.size(); ++ai) {
        if (stratum_heads.count(rule.positive[ai].predicate) == 0) continue;
        delta_tasks.push_back({ri, ai});
      }
    }

    // Fixpoint iterations.
    while (new_tuples > 0) {
      new_tuples = 0;
      if (mode_ == FixpointMode::kNaive) {
        for (uint32_t ri : rule_ids) {
          SPARQLOG_ASSIGN_OR_RETURN(uint64_t n, run_rule(ri, kNoDelta, 0));
          new_tuples += n;
        }
      } else if (shard_stratum) {
        // Snapshot each task's delta row range before workers start; the
        // ranges (and all relation contents) are frozen for the round.
        uint32_t delta_round = round - 1;
        std::vector<ScanTask> tasks;
        for (const DeltaTask& t : delta_tasks) {
          const Atom& datom = program.rules[t.rule].positive[t.atom];
          const Relation* rel = idb->Find(datom.predicate);
          if (rel == nullptr) continue;
          auto [lo, hi] = rel->RoundRange(delta_round);
          if (lo < hi) tasks.push_back({t.rule, t.atom, rel, lo, hi});
        }
        SPARQLOG_ASSIGN_OR_RETURN(uint64_t n, run_parallel_round(tasks));
        new_tuples += n;
      } else {
        uint32_t delta_round = round - 1;
        for (const DeltaTask& t : delta_tasks) {
          SPARQLOG_ASSIGN_OR_RETURN(uint64_t n,
                                    run_rule(t.rule, t.atom, delta_round));
          new_tuples += n;
        }
      }
      ++stats_.rounds;
      ++round;
    }
    snapshot_stratum();
    record_change();
  }
  stats_.interning_contention = expr_eval_.dict()->intern_contention() +
                                skolems_->intern_contention() -
                                contention_start;
  return Status::OK();
}

}  // namespace sparqlog::datalog
