#include "datalog/parser.h"

#include <cctype>

#include "util/string_util.h"

namespace sparqlog::datalog {

namespace {

/// Character-level reader for the rule syntax.
class ProgramReader {
 public:
  ProgramReader(std::string_view text, rdf::TermDictionary* dict,
                SkolemStore* skolems)
      : text_(text), dict_(dict), skolems_(skolems) {}

  Result<Program> Run() {
    while (true) {
      SkipWs();
      if (AtEnd()) break;
      if (Peek() == '@') {
        SPARQLOG_RETURN_NOT_OK(Directive());
      } else {
        SPARQLOG_RETURN_NOT_OK(Statement());
      }
    }
    SPARQLOG_RETURN_NOT_OK(program_.Validate());
    return std::move(program_);
  }

 private:
  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek(size_t k = 0) const {
    return pos_ + k < text_.size() ? text_[pos_ + k] : '\0';
  }
  void Advance() {
    if (text_[pos_] == '\n') ++line_;
    ++pos_;
  }
  void SkipWs() {
    while (!AtEnd()) {
      char c = Peek();
      if (std::isspace(static_cast<unsigned char>(c))) {
        Advance();
      } else if (c == '/' && Peek(1) == '/') {
        while (!AtEnd() && Peek() != '\n') Advance();
      } else if (c == '%' || c == '#') {
        while (!AtEnd() && Peek() != '\n') Advance();
      } else {
        return;
      }
    }
  }
  Status Err(const std::string& what) {
    return Status::ParseError("datalog line " + std::to_string(line_) + ": " +
                              what);
  }
  bool ConsumeChar(char c) {
    SkipWs();
    if (Peek() != c) return false;
    Advance();
    return true;
  }
  Status ExpectChar(char c) {
    if (!ConsumeChar(c)) {
      return Err(std::string("expected '") + c + "', got '" + Peek() + "'");
    }
    return Status::OK();
  }
  bool ConsumeToken(std::string_view tok) {
    SkipWs();
    if (text_.substr(pos_, tok.size()) != tok) return false;
    for (size_t i = 0; i < tok.size(); ++i) Advance();
    return true;
  }

  static bool IsIdentStart(char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
  }
  static bool IsIdentChar(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
  }

  Result<std::string> Identifier() {
    SkipWs();
    if (!IsIdentStart(Peek())) return Err("expected identifier");
    std::string out;
    while (!AtEnd() && IsIdentChar(Peek())) {
      out += Peek();
      Advance();
    }
    return out;
  }

  Result<std::string> QuotedString() {
    SkipWs();
    if (Peek() != '"') return Err("expected string");
    Advance();
    std::string out;
    while (!AtEnd() && Peek() != '"') {
      if (Peek() == '\\') {
        Advance();
        char e = Peek();
        Advance();
        switch (e) {
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          default: out += e;
        }
        continue;
      }
      out += Peek();
      Advance();
    }
    if (AtEnd()) return Err("unterminated string");
    Advance();
    return out;
  }

  /// Constant term: <iri>, "literal"(@lang|^^<dt>)?, number.
  Result<Value> ConstantTerm() {
    SkipWs();
    char c = Peek();
    if (c == '<') {
      Advance();
      std::string iri;
      while (!AtEnd() && Peek() != '>') {
        iri += Peek();
        Advance();
      }
      if (AtEnd()) return Err("unterminated IRI");
      Advance();
      return ValueFromTerm(dict_->InternIri(iri));
    }
    if (c == '"') {
      SPARQLOG_ASSIGN_OR_RETURN(std::string lex, QuotedString());
      if (Peek() == '@') {
        Advance();
        std::string lang;
        while (!AtEnd() && (std::isalnum(static_cast<unsigned char>(Peek())) ||
                            Peek() == '-')) {
          lang += Peek();
          Advance();
        }
        return ValueFromTerm(dict_->InternLiteral(lex, "", lang));
      }
      if (Peek() == '^' && Peek(1) == '^') {
        Advance();
        Advance();
        if (Peek() != '<') return Err("expected <datatype> after ^^");
        Advance();
        std::string dt;
        while (!AtEnd() && Peek() != '>') {
          dt += Peek();
          Advance();
        }
        Advance();
        return ValueFromTerm(dict_->InternLiteral(lex, dt));
      }
      return ValueFromTerm(dict_->InternLiteral(lex));
    }
    if (c == '-' || std::isdigit(static_cast<unsigned char>(c))) {
      std::string num;
      if (c == '-') {
        num += c;
        Advance();
      }
      bool is_double = false;
      while (!AtEnd()) {
        char d = Peek();
        if (std::isdigit(static_cast<unsigned char>(d))) {
          num += d;
          Advance();
        } else if (d == '.' &&
                   std::isdigit(static_cast<unsigned char>(Peek(1)))) {
          is_double = true;
          num += d;
          Advance();
        } else {
          break;
        }
      }
      return ValueFromTerm(is_double
                               ? dict_->InternLiteral(num, rdf::xsd::kDouble)
                               : dict_->InternLiteral(num, rdf::xsd::kInteger));
    }
    if (ConsumeToken("true")) return ValueFromTerm(dict_->InternBoolean(true));
    if (ConsumeToken("false")) {
      return ValueFromTerm(dict_->InternBoolean(false));
    }
    return Err("expected constant term");
  }

  /// A rule term: variable (identifier) or constant.
  Result<RuleTerm> Term(RuleBuilder* rb) {
    SkipWs();
    if (IsIdentStart(Peek()) && !StartsKeywordConstant()) {
      SPARQLOG_ASSIGN_OR_RETURN(std::string name, Identifier());
      return rb->Var(name);
    }
    SPARQLOG_ASSIGN_OR_RETURN(Value v, ConstantTerm());
    return RuleBuilder::Const(v);
  }

  bool StartsKeywordConstant() {
    return text_.substr(pos_, 4) == "true" || text_.substr(pos_, 5) == "false";
  }

  struct ParsedAtom {
    std::string predicate;
    std::vector<RuleTerm> args;
  };

  Result<ParsedAtom> ParseAtom(RuleBuilder* rb) {
    ParsedAtom out;
    SPARQLOG_ASSIGN_OR_RETURN(out.predicate, Identifier());
    SPARQLOG_RETURN_NOT_OK(ExpectChar('('));
    SkipWs();
    if (Peek() != ')') {
      while (true) {
        SPARQLOG_ASSIGN_OR_RETURN(RuleTerm t, Term(rb));
        out.args.push_back(t);
        if (!ConsumeChar(',')) break;
      }
    }
    SPARQLOG_RETURN_NOT_OK(ExpectChar(')'));
    return out;
  }

  /// Skolem list: ["fn" (, term)*].
  Status SkolemAssignment(RuleBuilder* rb, RuleTerm target) {
    SPARQLOG_RETURN_NOT_OK(ExpectChar('['));
    SPARQLOG_ASSIGN_OR_RETURN(std::string fn, QuotedString());
    std::vector<RuleTerm> args;
    while (ConsumeChar(',')) {
      SPARQLOG_ASSIGN_OR_RETURN(RuleTerm t, Term(rb));
      args.push_back(t);
    }
    SPARQLOG_RETURN_NOT_OK(ExpectChar(']'));
    rb->Skolem(target, skolems_->InternFunction(fn), std::move(args));
    return Status::OK();
  }

  Status Statement() {
    RuleBuilder rb(&program_.predicates);
    SPARQLOG_ASSIGN_OR_RETURN(ParsedAtom head, ParseAtom(&rb));

    SkipWs();
    if (ConsumeChar('.')) {
      // A ground fact.
      std::vector<Value> tuple;
      for (const RuleTerm& t : head.args) {
        if (t.is_var) return Err("facts must be ground");
        tuple.push_back(t.constant);
      }
      Fact fact;
      fact.predicate = program_.predicates.Intern(
          head.predicate, static_cast<uint32_t>(tuple.size()));
      fact.tuple = std::move(tuple);
      program_.facts.push_back(std::move(fact));
      return Status::OK();
    }

    if (!ConsumeToken(":-")) return Err("expected '.' or ':-'");
    rb.Head(head.predicate, std::move(head.args));

    while (true) {
      SkipWs();
      if (ConsumeToken("not ")) {
        SPARQLOG_ASSIGN_OR_RETURN(ParsedAtom atom, ParseAtom(&rb));
        rb.NegBody(atom.predicate, std::move(atom.args));
      } else if (IsIdentStart(Peek()) && !StartsKeywordConstant() &&
                 LooksLikeAtom()) {
        SPARQLOG_ASSIGN_OR_RETURN(ParsedAtom atom, ParseAtom(&rb));
        rb.Body(atom.predicate, std::move(atom.args));
      } else {
        // Builtin: term (= | !=) (term | skolem-list).
        SPARQLOG_ASSIGN_OR_RETURN(RuleTerm lhs, Term(&rb));
        SkipWs();
        if (ConsumeToken("!=")) {
          SPARQLOG_ASSIGN_OR_RETURN(RuleTerm rhs, Term(&rb));
          rb.Ne(lhs, rhs);
        } else if (ConsumeChar('=')) {
          SkipWs();
          if (Peek() == '[') {
            SPARQLOG_RETURN_NOT_OK(SkolemAssignment(&rb, lhs));
          } else {
            SPARQLOG_ASSIGN_OR_RETURN(RuleTerm rhs, Term(&rb));
            rb.Eq(lhs, rhs);
          }
        } else {
          return Err("expected '=' or '!=' in builtin literal");
        }
      }
      if (ConsumeChar(',')) continue;
      SPARQLOG_RETURN_NOT_OK(ExpectChar('.'));
      break;
    }
    program_.rules.push_back(rb.Build());
    return Status::OK();
  }

  /// Lookahead: identifier followed by '(' (atom) vs builtin operand.
  bool LooksLikeAtom() {
    size_t k = pos_;
    while (k < text_.size() && IsIdentChar(text_[k])) ++k;
    while (k < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[k]))) {
      ++k;
    }
    return k < text_.size() && text_[k] == '(';
  }

  Status Directive() {
    Advance();  // '@'
    SPARQLOG_ASSIGN_OR_RETURN(std::string name, Identifier());
    SPARQLOG_RETURN_NOT_OK(ExpectChar('('));
    SPARQLOG_ASSIGN_OR_RETURN(std::string pred, QuotedString());
    auto id = program_.predicates.Lookup(pred);
    if (!id) return Err("unknown predicate in directive: " + pred);
    if (name == "output") {
      program_.output.predicate = *id;
      program_.output.has_graph_column = false;
      program_.output.has_tid_column = false;
      // Column names default to c0..cN over the full tuple.
      uint32_t arity = program_.predicates.Arity(*id);
      program_.output.columns.clear();
      for (uint32_t i = 0; i < arity; ++i) {
        program_.output.columns.push_back("c" + std::to_string(i));
      }
    } else if (name == "post") {
      SPARQLOG_RETURN_NOT_OK(ExpectChar(','));
      SPARQLOG_ASSIGN_OR_RETURN(std::string spec, QuotedString());
      if (StartsWith(spec, "limit(")) {
        program_.output.limit = static_cast<uint64_t>(
            ParseInt64(spec.substr(6, spec.size() - 7)).value_or(0));
      } else if (StartsWith(spec, "offset(")) {
        program_.output.offset = static_cast<uint64_t>(
            ParseInt64(spec.substr(7, spec.size() - 8)).value_or(0));
      } else if (spec == "distinct") {
        program_.output.distinct = true;
      } else if (StartsWith(spec, "orderby(")) {
        std::string arg = spec.substr(8, spec.size() - 9);
        OrderSpec key;
        if (StartsWith(arg, "-")) {
          key.descending = true;
          arg = arg.substr(1);
        }
        key.column =
            static_cast<uint32_t>(ParseInt64(arg).value_or(0));
        key.expr = sparql::Expr::MakeVar("c" + arg);
        program_.output.order_by.push_back(std::move(key));
      } else {
        return Err("unknown @post spec: " + spec);
      }
    } else {
      return Err("unknown directive @" + name);
    }
    SPARQLOG_RETURN_NOT_OK(ExpectChar(')'));
    return ExpectChar('.');
  }

  std::string_view text_;
  size_t pos_ = 0;
  int line_ = 1;
  rdf::TermDictionary* dict_;
  SkolemStore* skolems_;
  Program program_;
};

}  // namespace

Result<Program> ParseProgram(std::string_view text, rdf::TermDictionary* dict,
                             SkolemStore* skolems) {
  ProgramReader reader(text, dict, skolems);
  return reader.Run();
}

}  // namespace sparqlog::datalog
