#include "datalog/value.h"

namespace sparqlog::datalog {

uint32_t SkolemStore::InternFunction(const std::string& name) {
  auto it = fn_index_.find(name);
  if (it != fn_index_.end()) return it->second;
  uint32_t id = static_cast<uint32_t>(fn_names_.size());
  fn_names_.push_back(name);
  fn_index_.emplace(name, id);
  return id;
}

Value SkolemStore::Intern(uint32_t fn, std::vector<Value> args) {
  SkolemTerm term{fn, std::move(args)};
  auto it = term_index_.find(term);
  if (it != term_index_.end()) {
    return (static_cast<uint64_t>(it->second) + 1) << 32;
  }
  uint32_t id = static_cast<uint32_t>(terms_.size());
  term_index_.emplace(term, id);
  terms_.push_back(std::move(term));
  return (static_cast<uint64_t>(id) + 1) << 32;
}

std::string SkolemStore::Render(Value v,
                                const rdf::TermDictionary& dict) const {
  const SkolemTerm& t = get(v);
  std::string out = "[\"" + FunctionName(t.fn) + "\"";
  for (Value a : t.args) {
    out += ", ";
    out += RenderValue(a, dict, *this);
  }
  out += "]";
  return out;
}

std::string RenderValue(Value v, const rdf::TermDictionary& dict,
                        const SkolemStore& skolems) {
  if (IsSkolemValue(v)) return skolems.Render(v, dict);
  return dict.Render(TermFromValue(v));
}

}  // namespace sparqlog::datalog
