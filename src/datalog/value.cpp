#include "datalog/value.h"

namespace sparqlog::datalog {

uint32_t SkolemStore::InternFunction(const std::string& name) {
  auto lock = LockCounted(alloc_mu_, contention_);
  auto it = fn_index_.find(name);
  if (it != fn_index_.end()) return it->second;
  uint32_t id = num_fns_.load(std::memory_order_relaxed);
  *fn_names_.Slot(id) = name;
  num_fns_.store(id + 1, std::memory_order_release);
  fn_index_.emplace(name, id);
  return id;
}

Value SkolemStore::Intern(uint32_t fn, std::vector<Value> args) {
  SkolemTerm term{fn, std::move(args)};
  Stripe& stripe = stripes_[SkolemTermHash()(term) % kStripes];
  auto stripe_lock = LockCounted(stripe.mu, contention_);
  auto it = stripe.index.find(term);
  if (it != stripe.index.end()) {
    return (static_cast<uint64_t>(it->second) + 1) << 32;
  }
  uint32_t id;
  {
    // Slot write completes before the id escapes via the stripe mutex or
    // the round barrier, so the lock-free get() reads a completed term.
    auto alloc_lock = LockCounted(alloc_mu_, contention_);
    id = num_terms_.load(std::memory_order_relaxed);
    *terms_.Slot(id) = term;
    num_terms_.store(id + 1, std::memory_order_release);
  }
  stripe.index.emplace(std::move(term), id);
  return (static_cast<uint64_t>(id) + 1) << 32;
}

std::string SkolemStore::Render(Value v,
                                const rdf::TermDictionary& dict) const {
  const SkolemTerm& t = get(v);
  std::string out = "[\"" + FunctionName(t.fn) + "\"";
  for (Value a : t.args) {
    out += ", ";
    out += RenderValue(a, dict, *this);
  }
  out += "]";
  return out;
}

std::string RenderValue(Value v, const rdf::TermDictionary& dict,
                        const SkolemStore& skolems) {
  if (IsSkolemValue(v)) return skolems.Render(v, dict);
  return dict.Render(TermFromValue(v));
}

}  // namespace sparqlog::datalog
