#pragma once

#include "eval/algebra_eval.h"
#include "eval/quirk_config.h"
#include "rdf/graph.h"
#include "sparql/ast.h"
#include "util/exec_context.h"

/// \file virtuoso_sim.h
/// The "Virtuoso" baseline: the reference evaluator with the deviations
/// the paper documents for OpenLink Virtuoso 7.2.5 injected (§6.2,
/// Appendix D.2.3). See DESIGN.md §3 for the substitution rationale —
/// the experiments need a system that fails in exactly these ways:
///   * errors on ? / * / + property paths with two unbound variables
///     ("transitive start is not given");
///   * one-or-more computed as zero-or-more minus the start node
///     (incomplete on cyclic paths);
///   * alternative paths drop duplicates;
///   * UNION drops duplicates / DISTINCT ignored on UNION queries;
///   * errors on GRAPH patterns and complex ORDER BY keys.

namespace sparqlog::quirks {

/// The configured deviation set.
eval::EngineQuirks VirtuosoQuirks();

/// Convenience wrapper: evaluates `query` over `dataset` with the
/// Virtuoso deviations active.
class VirtuosoSim {
 public:
  VirtuosoSim(const rdf::Dataset* dataset, rdf::TermDictionary* dict)
      : dataset_(dataset), dict_(dict) {}

  Result<eval::QueryResult> Execute(const sparql::Query& query,
                                    ExecContext* ctx) {
    eval::AlgebraEvaluator evaluator(*dataset_, dict_, ctx, VirtuosoQuirks());
    return evaluator.EvalQuery(query);
  }

 private:
  const rdf::Dataset* dataset_;
  rdf::TermDictionary* dict_;
};

}  // namespace sparqlog::quirks
