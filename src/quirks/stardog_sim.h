#pragma once

#include <optional>

#include "eval/algebra_eval.h"
#include "rdf/graph.h"
#include "util/exec_context.h"

/// \file stardog_sim.h
/// The "Stardog" baseline for the ontology experiment (Figure 10): a
/// reasoner that materializes the RDFS-subset closure of the data by a
/// *naive* forward-chaining fixpoint (the full rule set is re-applied to
/// the whole graph each round, no semi-naive deltas) and then answers
/// queries with the direct algebra evaluator. This reproduces the
/// behaviour shape the paper reports: competitive with SparqLog on flat
/// ontology queries, but far slower — up to timing out — on recursive
/// property paths with two variables, where SparqLog's semi-naive
/// Datalog evaluation wins (§6.3, queries 4 and 5).

namespace sparqlog::quirks {

class StardogSim {
 public:
  StardogSim(const rdf::Dataset* dataset, rdf::TermDictionary* dict)
      : dataset_(dataset), dict_(dict) {}

  /// Naive materialization of the subClassOf / subPropertyOf / domain /
  /// range closure into an internal dataset copy ("loading" in the
  /// benchmark's sense). Respects the context's budget.
  Status Materialize(ExecContext* ctx);

  /// Evaluates `query` over the materialized dataset.
  Result<eval::QueryResult> Execute(const sparql::Query& query,
                                    ExecContext* ctx);

  /// Triples after materialization (for tests).
  size_t MaterializedTriples() const {
    return materialized_ ? materialized_->TotalTriples() : 0;
  }

 private:
  const rdf::Dataset* dataset_;
  rdf::TermDictionary* dict_;
  std::optional<rdf::Dataset> materialized_;
};

}  // namespace sparqlog::quirks
