#include "quirks/stardog_sim.h"

#include <vector>

namespace sparqlog::quirks {

using rdf::Graph;
using rdf::TermId;
using rdf::Triple;

namespace {

/// One naive closure round over a single graph: applies every inference
/// rule to the *entire* current triple set and returns the number of new
/// triples. No delta tracking on purpose (see header).
Result<size_t> NaiveRound(Graph* g, TermId type, TermId sub_class,
                          TermId sub_prop, TermId domain, TermId range,
                          ExecContext* ctx) {
  std::vector<Triple> fresh;
  const auto& triples = g->triples();

  // subClassOf / subPropertyOf transitivity (nested scan over the full
  // predicate lists each round).
  for (TermId hier : {sub_class, sub_prop}) {
    const auto& edges = g->WithPredicate(hier);
    for (const Triple& a : edges) {
      SPARQLOG_RETURN_NOT_OK(ctx->CheckBudget());
      for (const Triple& b : edges) {
        if (a.o == b.s) fresh.push_back({a.s, hier, b.o});
      }
    }
  }
  // Type propagation along subClassOf.
  for (const Triple& sc : g->WithPredicate(sub_class)) {
    SPARQLOG_RETURN_NOT_OK(ctx->CheckBudget());
    for (const Triple& t : g->WithPredicate(type)) {
      if (t.o == sc.s) fresh.push_back({t.s, type, sc.o});
    }
  }
  // Property propagation along subPropertyOf: full scan of the graph for
  // every subPropertyOf edge.
  for (const Triple& sp : g->WithPredicate(sub_prop)) {
    for (const Triple& t : triples) {
      SPARQLOG_RETURN_NOT_OK(ctx->CheckBudget());
      if (t.p == sp.s) fresh.push_back({t.s, sp.o, t.o});
    }
  }
  // Domain / range typing.
  for (const Triple& d : g->WithPredicate(domain)) {
    for (const Triple& t : triples) {
      SPARQLOG_RETURN_NOT_OK(ctx->CheckBudget());
      if (t.p == d.s) fresh.push_back({t.s, type, d.o});
    }
  }
  for (const Triple& r : g->WithPredicate(range)) {
    for (const Triple& t : triples) {
      SPARQLOG_RETURN_NOT_OK(ctx->CheckBudget());
      if (t.p == r.s) fresh.push_back({t.o, type, r.o});
    }
  }

  size_t added = 0;
  for (const Triple& t : fresh) {
    if (g->Add(t)) {
      ++added;
      ctx->AddTuples(1);
    }
  }
  return added;
}

}  // namespace

Status StardogSim::Materialize(ExecContext* ctx) {
  TermId type = dict_->InternIri(rdf::rdfns::kType);
  TermId sub_class = dict_->InternIri(rdf::rdfns::kSubClassOf);
  TermId sub_prop = dict_->InternIri(rdf::rdfns::kSubPropertyOf);
  TermId domain = dict_->InternIri(rdf::rdfns::kDomain);
  TermId range = dict_->InternIri(rdf::rdfns::kRange);

  materialized_.emplace(dict_);
  materialized_->default_graph().MergeFrom(dataset_->default_graph());
  for (const auto& [name, g] : dataset_->named_graphs()) {
    materialized_->named_graph(name).MergeFrom(g);
  }

  auto close = [&](Graph* g) -> Status {
    while (true) {
      SPARQLOG_ASSIGN_OR_RETURN(
          size_t added,
          NaiveRound(g, type, sub_class, sub_prop, domain, range, ctx));
      if (added == 0) return Status::OK();
    }
  };
  SPARQLOG_RETURN_NOT_OK(close(&materialized_->default_graph()));
  for (auto& [name, g] : materialized_->named_graphs()) {
    // named_graphs() is const; fetch mutable handle.
    SPARQLOG_RETURN_NOT_OK(close(&materialized_->named_graph(name)));
  }
  return Status::OK();
}

Result<eval::QueryResult> StardogSim::Execute(const sparql::Query& query,
                                              ExecContext* ctx) {
  if (!materialized_) SPARQLOG_RETURN_NOT_OK(Materialize(ctx));
  // Calibrated comparator cost model (Java engine; see DESIGN.md §3).
  eval::EngineQuirks quirks;
  quirks.per_binding_overhead_ns = 2000;
  quirks.star_two_var_pairwise = true;
  eval::AlgebraEvaluator evaluator(*materialized_, dict_, ctx, quirks);
  return evaluator.EvalQuery(query);
}

}  // namespace sparqlog::quirks
