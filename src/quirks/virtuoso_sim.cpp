#include "quirks/virtuoso_sim.h"

namespace sparqlog::quirks {

eval::EngineQuirks VirtuosoQuirks() {
  eval::EngineQuirks q;
  q.error_on_two_var_recursive_path = true;
  q.plus_drops_reflexive = true;
  q.alternative_dedup = true;
  q.union_dedup = true;
  q.ignore_distinct_with_union = true;
  q.error_on_graph_and_complex_order = true;
  return q;
}

}  // namespace sparqlog::quirks
