#include "sparql/parser.h"

#include <map>

#include "rdf/term.h"
#include "sparql/lexer.h"
#include "util/string_util.h"

namespace sparqlog::sparql {

namespace {

class Parser {
 public:
  Parser(std::vector<Token> tokens, rdf::TermDictionary* dict,
         ParserOptions options)
      : tokens_(std::move(tokens)), dict_(dict), options_(options) {}

  Result<Query> Run() {
    SPARQLOG_RETURN_NOT_OK(Prologue());
    Query q;
    if (PeekKeyword("SELECT")) {
      SPARQLOG_RETURN_NOT_OK(SelectQuery(&q));
    } else if (PeekKeyword("ASK")) {
      SPARQLOG_RETURN_NOT_OK(AskQuery(&q));
    } else if (PeekKeyword("CONSTRUCT") || PeekKeyword("DESCRIBE")) {
      return Status::NotSupported("query form " + Peek().text +
                                  " is not supported (Table 1)");
    } else {
      return Err("expected SELECT or ASK");
    }
    if (!Peek().IsKeyword("") && Peek().kind != TokenKind::kEof) {
      return Err("trailing input after query: '" + Peek().text + "'");
    }
    return q;
  }

 private:
  // --- token helpers -------------------------------------------------------

  const Token& Peek(size_t k = 0) const {
    size_t i = pos_ + k;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Take() {
    const Token& t = Peek();
    if (pos_ + 1 < tokens_.size()) ++pos_;
    return t;
  }
  bool PeekKeyword(std::string_view kw) const { return Peek().IsKeyword(kw); }
  bool ConsumeKeyword(std::string_view kw) {
    if (!PeekKeyword(kw)) return false;
    Take();
    return true;
  }
  bool ConsumePunct(char c) {
    if (!Peek().IsPunct(c)) return false;
    Take();
    return true;
  }
  bool ConsumeOp(std::string_view op) {
    if (!Peek().IsOp(op)) return false;
    Take();
    return true;
  }
  Status ExpectPunct(char c) {
    if (!ConsumePunct(c)) {
      return Err(std::string("expected '") + c + "', got '" + Peek().text +
                 "'");
    }
    return Status::OK();
  }
  Status Err(const std::string& what) const {
    return Status::ParseError("sparql line " + std::to_string(Peek().line) +
                              ": " + what);
  }

  // --- prologue ------------------------------------------------------------

  Status Prologue() {
    while (true) {
      if (ConsumeKeyword("PREFIX")) {
        if (Peek().kind != TokenKind::kPName) return Err("expected pname:");
        std::string pname = Take().text;
        // The lexer keeps "prefix:"+local; in a declaration local is empty.
        size_t colon = pname.find(':');
        std::string prefix = pname.substr(0, colon);
        if (Peek().kind != TokenKind::kIri) return Err("expected <IRI>");
        prefixes_[prefix] = Take().text;
      } else if (ConsumeKeyword("BASE")) {
        if (Peek().kind != TokenKind::kIri) return Err("expected <IRI>");
        base_ = Take().text;
      } else {
        return Status::OK();
      }
    }
  }

  Result<rdf::TermId> ResolvePName(const std::string& pname) {
    size_t colon = pname.find(':');
    std::string prefix = pname.substr(0, colon);
    std::string local = pname.substr(colon + 1);
    auto it = prefixes_.find(prefix);
    if (it == prefixes_.end()) {
      return Err("unknown prefix '" + prefix + ":'");
    }
    return dict_->InternIri(it->second + local);
  }

  Result<rdf::TermId> ResolveIri(const std::string& iri) {
    if (!base_.empty() && iri.find("://") == std::string::npos &&
        !StartsWith(iri, "urn:")) {
      return dict_->InternIri(base_ + iri);
    }
    return dict_->InternIri(iri);
  }

  // --- query forms ---------------------------------------------------------

  Status SelectQuery(Query* q) {
    Take();  // SELECT
    q->form = QueryForm::kSelect;
    if (ConsumeKeyword("DISTINCT")) {
      q->distinct = true;
    } else if (ConsumeKeyword("REDUCED")) {
      // REDUCED permits (but does not require) duplicate elimination; we
      // evaluate it as plain bag semantics, which is standard-conformant.
    }
    if (ConsumePunct('*')) {
      q->select_all = true;
    } else {
      while (true) {
        if (Peek().kind == TokenKind::kVar) {
          SelectItem item;
          item.var = Take().text;
          q->select.push_back(std::move(item));
        } else if (Peek().IsPunct('(')) {
          Take();
          SPARQLOG_ASSIGN_OR_RETURN(SelectItem item, AggregateItem());
          q->select.push_back(std::move(item));
        } else {
          break;
        }
      }
      if (q->select.empty()) return Err("empty SELECT clause");
    }
    SPARQLOG_RETURN_NOT_OK(DatasetClauses(q));
    ConsumeKeyword("WHERE");
    SPARQLOG_ASSIGN_OR_RETURN(q->where, GroupGraphPattern());
    return SolutionModifiers(q);
  }

  Status AskQuery(Query* q) {
    Take();  // ASK
    q->form = QueryForm::kAsk;
    SPARQLOG_RETURN_NOT_OK(DatasetClauses(q));
    ConsumeKeyword("WHERE");
    SPARQLOG_ASSIGN_OR_RETURN(q->where, GroupGraphPattern());
    return Status::OK();
  }

  Result<SelectItem> AggregateItem() {
    SelectItem item;
    item.is_aggregate = true;
    if (ConsumeKeyword("COUNT")) {
      item.fn = AggregateFn::kCount;
    } else if (ConsumeKeyword("SUM")) {
      item.fn = AggregateFn::kSum;
    } else if (ConsumeKeyword("MIN")) {
      item.fn = AggregateFn::kMin;
    } else if (ConsumeKeyword("MAX")) {
      item.fn = AggregateFn::kMax;
    } else if (ConsumeKeyword("AVG")) {
      item.fn = AggregateFn::kAvg;
    } else if (PeekKeyword("GROUP_CONCAT") || PeekKeyword("SAMPLE")) {
      return Status::NotSupported("aggregate " + Peek().text);
    } else {
      return Err("expected aggregate function");
    }
    SPARQLOG_RETURN_NOT_OK(ExpectPunct('('));
    if (ConsumeKeyword("DISTINCT")) item.agg_distinct = true;
    if (ConsumePunct('*')) {
      if (item.fn != AggregateFn::kCount) return Err("only COUNT(*) allowed");
      item.count_star = true;
    } else if (Peek().kind == TokenKind::kVar) {
      item.var = Take().text;
    } else {
      return Status::NotSupported(
          "complex expressions in aggregates are not supported");
    }
    SPARQLOG_RETURN_NOT_OK(ExpectPunct(')'));
    if (!ConsumeKeyword("AS")) return Err("expected AS in aggregate");
    if (Peek().kind != TokenKind::kVar) return Err("expected ?alias");
    item.alias = Take().text;
    SPARQLOG_RETURN_NOT_OK(ExpectPunct(')'));
    return item;
  }

  Status DatasetClauses(Query* q) {
    while (ConsumeKeyword("FROM")) {
      bool named = ConsumeKeyword("NAMED");
      rdf::TermId g;
      if (Peek().kind == TokenKind::kIri) {
        SPARQLOG_ASSIGN_OR_RETURN(g, ResolveIri(Take().text));
      } else if (Peek().kind == TokenKind::kPName) {
        SPARQLOG_ASSIGN_OR_RETURN(g, ResolvePName(Take().text));
      } else {
        return Err("expected graph IRI after FROM");
      }
      (named ? q->from_named : q->from).push_back(g);
    }
    return Status::OK();
  }

  Status SolutionModifiers(Query* q) {
    if (ConsumeKeyword("GROUP")) {
      if (!ConsumeKeyword("BY")) return Err("expected BY after GROUP");
      while (Peek().kind == TokenKind::kVar) q->group_by.push_back(Take().text);
      if (q->group_by.empty()) {
        return Status::NotSupported("GROUP BY requires simple variables");
      }
    }
    if (PeekKeyword("HAVING")) {
      return Status::NotSupported("HAVING is not supported (Table 1)");
    }
    if (ConsumeKeyword("ORDER")) {
      if (!ConsumeKeyword("BY")) return Err("expected BY after ORDER");
      while (true) {
        OrderKey key;
        if (ConsumeKeyword("ASC")) {
          SPARQLOG_RETURN_NOT_OK(ExpectPunct('('));
          SPARQLOG_ASSIGN_OR_RETURN(key.expr, Expression());
          SPARQLOG_RETURN_NOT_OK(ExpectPunct(')'));
        } else if (ConsumeKeyword("DESC")) {
          key.descending = true;
          SPARQLOG_RETURN_NOT_OK(ExpectPunct('('));
          SPARQLOG_ASSIGN_OR_RETURN(key.expr, Expression());
          SPARQLOG_RETURN_NOT_OK(ExpectPunct(')'));
        } else if (Peek().kind == TokenKind::kVar) {
          key.expr = Expr::MakeVar(Take().text);
        } else if (Peek().IsPunct('(')) {
          Take();
          SPARQLOG_ASSIGN_OR_RETURN(key.expr, Expression());
          SPARQLOG_RETURN_NOT_OK(ExpectPunct(')'));
        } else if (Peek().IsPunct('!') || IsBuiltinStart()) {
          SPARQLOG_ASSIGN_OR_RETURN(key.expr, UnaryExpression());
        } else {
          break;
        }
        q->order_by.push_back(std::move(key));
      }
      if (q->order_by.empty()) return Err("empty ORDER BY");
    }
    for (int i = 0; i < 2; ++i) {
      if (ConsumeKeyword("LIMIT")) {
        if (Peek().kind != TokenKind::kInteger) return Err("expected integer");
        q->limit = static_cast<uint64_t>(*ParseInt64(Take().text));
      } else if (ConsumeKeyword("OFFSET")) {
        if (Peek().kind != TokenKind::kInteger) return Err("expected integer");
        q->offset = static_cast<uint64_t>(*ParseInt64(Take().text));
      }
    }
    return Status::OK();
  }

  // --- graph patterns ------------------------------------------------------

  Result<PatternPtr> GroupGraphPattern() {
    SPARQLOG_RETURN_NOT_OK(ExpectPunct('{'));
    if (PeekKeyword("SELECT")) {
      return Status::NotSupported("sub-SELECT is not supported (Table 1)");
    }
    PatternPtr current = Pattern::Empty();
    std::vector<ExprPtr> filters;
    std::vector<std::pair<bool, PatternPtr>> exists_filters;
    bool first = true;
    while (!Peek().IsPunct('}')) {
      if (Peek().kind == TokenKind::kEof) return Err("unterminated group");
      if (PeekKeyword("OPTIONAL")) {
        Take();
        SPARQLOG_ASSIGN_OR_RETURN(PatternPtr rhs, GroupGraphPattern());
        current = Pattern::Optional(std::move(current), std::move(rhs));
      } else if (PeekKeyword("MINUS")) {
        Take();
        SPARQLOG_ASSIGN_OR_RETURN(PatternPtr rhs, GroupGraphPattern());
        current = Pattern::Minus(std::move(current), std::move(rhs));
      } else if (PeekKeyword("GRAPH")) {
        Take();
        TermOrVar g;
        if (Peek().kind == TokenKind::kVar) {
          g = TermOrVar::Var(Take().text);
        } else {
          SPARQLOG_ASSIGN_OR_RETURN(rdf::TermId id, IriOrPName());
          g = TermOrVar::Const(id);
        }
        SPARQLOG_ASSIGN_OR_RETURN(PatternPtr inner, GroupGraphPattern());
        current = JoinInto(std::move(current),
                           Pattern::GraphPattern(std::move(g), std::move(inner)));
      } else if (PeekKeyword("FILTER")) {
        Take();
        bool exists = false, negated = false;
        if (PeekKeyword("EXISTS")) {
          exists = true;
        } else if (PeekKeyword("NOT") && Peek(1).IsKeyword("EXISTS")) {
          exists = true;
          negated = true;
        }
        if (exists) {
          if (!options_.extensions) {
            return Status::NotSupported(
                "FILTER (NOT) EXISTS is not supported (Table 1)");
          }
          if (negated) Take();  // NOT
          Take();               // EXISTS
          SPARQLOG_ASSIGN_OR_RETURN(PatternPtr inner, GroupGraphPattern());
          exists_filters.emplace_back(negated, std::move(inner));
        } else {
          SPARQLOG_ASSIGN_OR_RETURN(ExprPtr cond, Constraint());
          filters.push_back(std::move(cond));
        }
      } else if (PeekKeyword("BIND")) {
        if (!options_.extensions) {
          return Status::NotSupported("BIND is not supported (Table 1)");
        }
        Take();
        SPARQLOG_RETURN_NOT_OK(ExpectPunct('('));
        SPARQLOG_ASSIGN_OR_RETURN(ExprPtr expr, Expression());
        if (!ConsumeKeyword("AS")) return Err("expected AS in BIND");
        if (Peek().kind != TokenKind::kVar) return Err("expected ?var");
        std::string var = Take().text;
        SPARQLOG_RETURN_NOT_OK(ExpectPunct(')'));
        current = Pattern::Bind(std::move(current), std::move(expr),
                                std::move(var));
      } else if (PeekKeyword("VALUES")) {
        if (!options_.extensions) {
          return Status::NotSupported("VALUES is not supported (Table 1)");
        }
        Take();
        SPARQLOG_ASSIGN_OR_RETURN(PatternPtr values, ValuesBlock());
        current = JoinInto(std::move(current), std::move(values));
      } else if (PeekKeyword("SERVICE")) {
        return Status::NotSupported("SERVICE / federation is out of scope");
      } else if (Peek().IsPunct('{')) {
        // Group or UNION chain.
        SPARQLOG_ASSIGN_OR_RETURN(PatternPtr grp, GroupGraphPattern());
        while (ConsumeKeyword("UNION")) {
          SPARQLOG_ASSIGN_OR_RETURN(PatternPtr rhs, GroupGraphPattern());
          grp = Pattern::Union(std::move(grp), std::move(rhs));
        }
        current = JoinInto(std::move(current), std::move(grp));
      } else if (Peek().IsPunct('.')) {
        Take();
      } else {
        SPARQLOG_ASSIGN_OR_RETURN(PatternPtr triples, TriplesBlock());
        current = JoinInto(std::move(current), std::move(triples));
      }
      first = false;
    }
    Take();  // '}'
    (void)first;
    for (auto& f : filters) {
      current = Pattern::Filter(std::move(current), std::move(f));
    }
    for (auto& [negated, inner] : exists_filters) {
      current = Pattern::ExistsFilter(std::move(current), std::move(inner),
                                      negated);
    }
    return current;
  }

  /// VALUES ?x { v ... }  or  VALUES (?x ?y) { (v v) (UNDEF v) ... }.
  Result<PatternPtr> ValuesBlock() {
    std::vector<std::string> vars;
    if (Peek().kind == TokenKind::kVar) {
      vars.push_back(Take().text);
    } else if (ConsumePunct('(')) {
      while (Peek().kind == TokenKind::kVar) vars.push_back(Take().text);
      SPARQLOG_RETURN_NOT_OK(ExpectPunct(')'));
    } else {
      return Err("expected variable(s) after VALUES");
    }
    if (vars.empty()) return Err("VALUES with no variables");
    SPARQLOG_RETURN_NOT_OK(ExpectPunct('{'));
    std::vector<std::vector<rdf::TermId>> rows;
    bool single = vars.size() == 1 && !Peek().IsPunct('(');
    while (!Peek().IsPunct('}')) {
      if (Peek().kind == TokenKind::kEof) return Err("unterminated VALUES");
      std::vector<rdf::TermId> row;
      if (single) {
        SPARQLOG_ASSIGN_OR_RETURN(rdf::TermId v, DataValue());
        row.push_back(v);
      } else {
        SPARQLOG_RETURN_NOT_OK(ExpectPunct('('));
        for (size_t i = 0; i < vars.size(); ++i) {
          SPARQLOG_ASSIGN_OR_RETURN(rdf::TermId v, DataValue());
          row.push_back(v);
        }
        SPARQLOG_RETURN_NOT_OK(ExpectPunct(')'));
      }
      rows.push_back(std::move(row));
    }
    Take();  // '}'
    return Pattern::Values(std::move(vars), std::move(rows));
  }

  /// One VALUES cell: an RDF term or the UNDEF keyword.
  Result<rdf::TermId> DataValue() {
    if (ConsumeKeyword("UNDEF")) return rdf::TermDictionary::kUndef;
    SPARQLOG_ASSIGN_OR_RETURN(TermOrVar tv, VarOrTerm());
    if (tv.is_var) return Err("variables are not allowed in VALUES data");
    return tv.term;
  }

  static PatternPtr JoinInto(PatternPtr current, PatternPtr next) {
    if (current->kind == PatternKind::kEmpty) return next;
    return Pattern::Join(std::move(current), std::move(next));
  }

  Result<PatternPtr> TriplesBlock() {
    PatternPtr block = Pattern::Empty();
    while (true) {
      SPARQLOG_ASSIGN_OR_RETURN(TermOrVar subject, VarOrTerm());
      // Property list.
      while (true) {
        // Verb: variable or property path.
        bool verb_is_var = Peek().kind == TokenKind::kVar;
        TermOrVar verb_var;
        PathPtr path;
        if (verb_is_var) {
          verb_var = TermOrVar::Var(Take().text);
        } else {
          SPARQLOG_ASSIGN_OR_RETURN(path, ParsePath());
        }
        // Object list.
        while (true) {
          SPARQLOG_ASSIGN_OR_RETURN(TermOrVar object, VarOrTerm());
          PatternPtr triple;
          if (verb_is_var) {
            triple = Pattern::Triple(subject, verb_var, object);
          } else if (path->IsSimpleLink()) {
            triple = Pattern::Triple(subject, TermOrVar::Const(path->iri),
                                     object);
          } else {
            triple = Pattern::PathPattern(subject, path, object);
          }
          block = JoinInto(std::move(block), std::move(triple));
          if (!ConsumePunct(',')) break;
        }
        if (!ConsumePunct(';')) break;
        // Allow trailing ';' before '.' or '}'.
        if (Peek().IsPunct('.') || Peek().IsPunct('}')) break;
      }
      if (!ConsumePunct('.')) break;
      // A '.' may terminate the block.
      if (Peek().IsPunct('}') || Peek().kind == TokenKind::kEof ||
          PeekKeyword("OPTIONAL") || PeekKeyword("MINUS") ||
          PeekKeyword("FILTER") || PeekKeyword("GRAPH") ||
          PeekKeyword("BIND") || PeekKeyword("VALUES") ||
          Peek().IsPunct('{')) {
        break;
      }
    }
    return block;
  }

  Result<TermOrVar> VarOrTerm() {
    const Token& t = Peek();
    switch (t.kind) {
      case TokenKind::kVar:
        return TermOrVar::Var(Take().text);
      case TokenKind::kIri: {
        SPARQLOG_ASSIGN_OR_RETURN(rdf::TermId id, ResolveIri(Take().text));
        return TermOrVar::Const(id);
      }
      case TokenKind::kPName: {
        SPARQLOG_ASSIGN_OR_RETURN(rdf::TermId id, ResolvePName(Take().text));
        return TermOrVar::Const(id);
      }
      case TokenKind::kBlank:
        return TermOrVar::Const(dict_->InternBlank(Take().text));
      case TokenKind::kString: {
        SPARQLOG_ASSIGN_OR_RETURN(rdf::TermId id, LiteralTerm());
        return TermOrVar::Const(id);
      }
      case TokenKind::kInteger:
        return TermOrVar::Const(
            dict_->InternLiteral(Take().text, rdf::xsd::kInteger));
      case TokenKind::kDecimal:
        return TermOrVar::Const(
            dict_->InternLiteral(Take().text, rdf::xsd::kDecimal));
      case TokenKind::kDouble:
        return TermOrVar::Const(
            dict_->InternLiteral(Take().text, rdf::xsd::kDouble));
      case TokenKind::kName:
        if (t.IsKeyword("true")) {
          Take();
          return TermOrVar::Const(dict_->InternBoolean(true));
        }
        if (t.IsKeyword("false")) {
          Take();
          return TermOrVar::Const(dict_->InternBoolean(false));
        }
        if (t.IsKeyword("a")) {
          Take();
          return TermOrVar::Const(dict_->InternIri(rdf::rdfns::kType));
        }
        return Err("unexpected name '" + t.text + "' in pattern");
      case TokenKind::kPunct:
        if (t.IsPunct('[')) {
          return Status::NotSupported(
              "blank node property lists are not supported");
        }
        if (t.IsPunct('(')) {
          return Status::NotSupported("RDF collections are not supported");
        }
        return Err("unexpected '" + t.text + "' in pattern");
      default:
        return Err("unexpected token '" + t.text + "' in pattern");
    }
  }

  /// "lex" (@lang | ^^dt)? — current token is kString.
  Result<rdf::TermId> LiteralTerm() {
    std::string lex = Take().text;
    if (Peek().kind == TokenKind::kLangTag) {
      return dict_->InternLiteral(lex, "", Take().text);
    }
    if (ConsumeOp("^^")) {
      rdf::TermId dt;
      if (Peek().kind == TokenKind::kIri) {
        SPARQLOG_ASSIGN_OR_RETURN(dt, ResolveIri(Take().text));
      } else if (Peek().kind == TokenKind::kPName) {
        SPARQLOG_ASSIGN_OR_RETURN(dt, ResolvePName(Take().text));
      } else {
        return Err("expected datatype IRI after ^^");
      }
      return dict_->InternLiteral(lex, dict_->get(dt).lexical);
    }
    return dict_->InternLiteral(lex);
  }

  Result<rdf::TermId> IriOrPName() {
    if (Peek().kind == TokenKind::kIri) return ResolveIri(Take().text);
    if (Peek().kind == TokenKind::kPName) return ResolvePName(Take().text);
    if (Peek().IsKeyword("a")) {
      Take();
      return dict_->InternIri(rdf::rdfns::kType);
    }
    return Err("expected IRI, got '" + Peek().text + "'");
  }

  // --- property paths ------------------------------------------------------

  Result<PathPtr> ParsePath() { return PathAlternative(); }

  Result<PathPtr> PathAlternative() {
    SPARQLOG_ASSIGN_OR_RETURN(PathPtr left, PathSequence());
    while (ConsumePunct('|')) {
      SPARQLOG_ASSIGN_OR_RETURN(PathPtr right, PathSequence());
      left = Path::Alternative(std::move(left), std::move(right));
    }
    return left;
  }

  Result<PathPtr> PathSequence() {
    SPARQLOG_ASSIGN_OR_RETURN(PathPtr left, PathEltOrInverse());
    while (ConsumePunct('/')) {
      SPARQLOG_ASSIGN_OR_RETURN(PathPtr right, PathEltOrInverse());
      left = Path::Sequence(std::move(left), std::move(right));
    }
    return left;
  }

  Result<PathPtr> PathEltOrInverse() {
    if (ConsumePunct('^')) {
      SPARQLOG_ASSIGN_OR_RETURN(PathPtr inner, PathElt());
      return Path::Inverse(std::move(inner));
    }
    return PathElt();
  }

  Result<PathPtr> PathElt() {
    SPARQLOG_ASSIGN_OR_RETURN(PathPtr primary, PathPrimary());
    // Modifier?
    if (ConsumePunct('?')) return Path::ZeroOrOne(std::move(primary));
    if (ConsumePunct('*')) return Path::ZeroOrMore(std::move(primary));
    if (ConsumePunct('+')) return Path::OneOrMore(std::move(primary));
    if (Peek().IsPunct('{')) {
      // Counted forms {n}, {n,}, {n,m}, {,m} (gMark extension).
      Take();
      std::optional<uint32_t> lo, hi;
      if (Peek().kind == TokenKind::kInteger) {
        lo = static_cast<uint32_t>(*ParseInt64(Take().text));
      }
      bool has_comma = ConsumePunct(',');
      if (Peek().kind == TokenKind::kInteger) {
        hi = static_cast<uint32_t>(*ParseInt64(Take().text));
      }
      SPARQLOG_RETURN_NOT_OK(ExpectPunct('}'));
      if (!lo && !hi) return Err("empty counted path quantifier");
      if (!has_comma) {
        return Path::Counted(PathKind::kExactly, std::move(primary), *lo);
      }
      if (lo && !hi) {
        return Path::Counted(PathKind::kNOrMore, std::move(primary), *lo);
      }
      uint32_t lower = lo.value_or(0);
      if (lower == 0) {
        return Path::Counted(PathKind::kUpTo, std::move(primary), *hi);
      }
      // {n,m} with n>0: desugar to p{n} / p{0,m-n}.
      if (*hi < lower) return Err("bad counted path bounds");
      PathPtr exact = Path::Counted(PathKind::kExactly, primary, lower);
      if (*hi == lower) return exact;
      PathPtr rest =
          Path::Counted(PathKind::kUpTo, std::move(primary), *hi - lower);
      return Path::Sequence(std::move(exact), std::move(rest));
    }
    return primary;
  }

  Result<PathPtr> PathPrimary() {
    if (ConsumePunct('(')) {
      SPARQLOG_ASSIGN_OR_RETURN(PathPtr inner, ParsePath());
      SPARQLOG_RETURN_NOT_OK(ExpectPunct(')'));
      return inner;
    }
    if (ConsumePunct('!')) return NegatedPropertySet();
    SPARQLOG_ASSIGN_OR_RETURN(rdf::TermId iri, IriOrPName());
    return Path::Link(iri);
  }

  Result<PathPtr> NegatedPropertySet() {
    std::vector<rdf::TermId> fwd, bwd;
    auto one = [&]() -> Status {
      if (ConsumePunct('^')) {
        SPARQLOG_ASSIGN_OR_RETURN(rdf::TermId iri, IriOrPName());
        bwd.push_back(iri);
      } else {
        SPARQLOG_ASSIGN_OR_RETURN(rdf::TermId iri, IriOrPName());
        fwd.push_back(iri);
      }
      return Status::OK();
    };
    if (ConsumePunct('(')) {
      if (!Peek().IsPunct(')')) {
        SPARQLOG_RETURN_NOT_OK(one());
        while (ConsumePunct('|')) SPARQLOG_RETURN_NOT_OK(one());
      }
      SPARQLOG_RETURN_NOT_OK(ExpectPunct(')'));
    } else {
      SPARQLOG_RETURN_NOT_OK(one());
    }
    return Path::Negated(std::move(fwd), std::move(bwd));
  }

  // --- expressions ---------------------------------------------------------

  Result<ExprPtr> Constraint() {
    if (Peek().IsPunct('(')) {
      Take();
      SPARQLOG_ASSIGN_OR_RETURN(ExprPtr e, Expression());
      SPARQLOG_RETURN_NOT_OK(ExpectPunct(')'));
      return e;
    }
    if (IsBuiltinStart()) return BuiltinCall();
    if (PeekKeyword("COALESCE") || PeekKeyword("IN") || PeekKeyword("IF")) {
      return Status::NotSupported("filter function " + Peek().text +
                                  " is not supported (Table 1)");
    }
    return Err("expected FILTER constraint");
  }

  Result<ExprPtr> Expression() { return OrExpression(); }

  Result<ExprPtr> OrExpression() {
    SPARQLOG_ASSIGN_OR_RETURN(ExprPtr left, AndExpression());
    while (ConsumeOp("||")) {
      SPARQLOG_ASSIGN_OR_RETURN(ExprPtr right, AndExpression());
      left = Expr::MakeOr(std::move(left), std::move(right));
    }
    return left;
  }

  Result<ExprPtr> AndExpression() {
    SPARQLOG_ASSIGN_OR_RETURN(ExprPtr left, RelationalExpression());
    while (ConsumeOp("&&")) {
      SPARQLOG_ASSIGN_OR_RETURN(ExprPtr right, RelationalExpression());
      left = Expr::MakeAnd(std::move(left), std::move(right));
    }
    return left;
  }

  Result<ExprPtr> RelationalExpression() {
    SPARQLOG_ASSIGN_OR_RETURN(ExprPtr left, AdditiveExpression());
    std::optional<CompareOp> op;
    if (ConsumePunct('=')) {
      op = CompareOp::kEq;
    } else if (ConsumeOp("!=")) {
      op = CompareOp::kNe;
    } else if (ConsumeOp("<=")) {
      op = CompareOp::kLe;
    } else if (ConsumeOp(">=")) {
      op = CompareOp::kGe;
    } else if (ConsumePunct('<')) {
      op = CompareOp::kLt;
    } else if (ConsumePunct('>')) {
      op = CompareOp::kGt;
    } else if (PeekKeyword("IN") ||
               (PeekKeyword("NOT") && Peek(1).IsKeyword("IN"))) {
      return Status::NotSupported("IN / NOT IN is not supported (Table 1)");
    }
    if (!op) return left;
    SPARQLOG_ASSIGN_OR_RETURN(ExprPtr right, AdditiveExpression());
    return Expr::MakeCompare(*op, std::move(left), std::move(right));
  }

  Result<ExprPtr> AdditiveExpression() {
    SPARQLOG_ASSIGN_OR_RETURN(ExprPtr left, MultiplicativeExpression());
    while (true) {
      if (ConsumePunct('+')) {
        SPARQLOG_ASSIGN_OR_RETURN(ExprPtr right, MultiplicativeExpression());
        left = Expr::MakeArith(ArithOp::kAdd, std::move(left), std::move(right));
      } else if (Peek().IsPunct('-') &&
                 !(Peek(1).kind == TokenKind::kInteger &&
                   false /* negative literals handled by lexer */)) {
        Take();
        SPARQLOG_ASSIGN_OR_RETURN(ExprPtr right, MultiplicativeExpression());
        left = Expr::MakeArith(ArithOp::kSub, std::move(left), std::move(right));
      } else {
        return left;
      }
    }
  }

  Result<ExprPtr> MultiplicativeExpression() {
    SPARQLOG_ASSIGN_OR_RETURN(ExprPtr left, UnaryExpression());
    while (true) {
      if (ConsumePunct('*')) {
        SPARQLOG_ASSIGN_OR_RETURN(ExprPtr right, UnaryExpression());
        left = Expr::MakeArith(ArithOp::kMul, std::move(left), std::move(right));
      } else if (ConsumePunct('/')) {
        SPARQLOG_ASSIGN_OR_RETURN(ExprPtr right, UnaryExpression());
        left = Expr::MakeArith(ArithOp::kDiv, std::move(left), std::move(right));
      } else {
        return left;
      }
    }
  }

  Result<ExprPtr> UnaryExpression() {
    if (ConsumePunct('!')) {
      SPARQLOG_ASSIGN_OR_RETURN(ExprPtr inner, UnaryExpression());
      return Expr::MakeNot(std::move(inner));
    }
    if (ConsumePunct('-')) {
      SPARQLOG_ASSIGN_OR_RETURN(ExprPtr inner, UnaryExpression());
      return Expr::MakeNegate(std::move(inner));
    }
    if (ConsumePunct('+')) return UnaryExpression();
    return PrimaryExpression();
  }

  bool IsBuiltinStart() const {
    const Token& t = Peek();
    if (t.kind != TokenKind::kName) return false;
    static constexpr std::string_view kBuiltins[] = {
        "BOUND", "ISIRI", "ISURI", "ISBLANK", "ISLITERAL", "ISNUMERIC",
        "STR", "LANG", "DATATYPE", "REGEX", "UCASE", "LCASE", "STRLEN",
        "CONTAINS", "STRSTARTS", "STRENDS", "LANGMATCHES", "SAMETERM", "ABS"};
    for (auto b : kBuiltins) {
      if (AsciiEqualsIgnoreCase(t.text, b)) return true;
    }
    return false;
  }

  Result<ExprPtr> BuiltinCall() {
    std::string name = AsciiToUpper(Take().text);
    Builtin b;
    size_t min_args = 1, max_args = 1;
    if (name == "BOUND") {
      b = Builtin::kBound;
    } else if (name == "ISIRI" || name == "ISURI") {
      b = Builtin::kIsIri;
    } else if (name == "ISBLANK") {
      b = Builtin::kIsBlank;
    } else if (name == "ISLITERAL") {
      b = Builtin::kIsLiteral;
    } else if (name == "ISNUMERIC") {
      b = Builtin::kIsNumeric;
    } else if (name == "STR") {
      b = Builtin::kStr;
    } else if (name == "LANG") {
      b = Builtin::kLang;
    } else if (name == "DATATYPE") {
      b = Builtin::kDatatype;
    } else if (name == "REGEX") {
      b = Builtin::kRegex;
      min_args = 2;
      max_args = 3;
    } else if (name == "UCASE") {
      b = Builtin::kUCase;
    } else if (name == "LCASE") {
      b = Builtin::kLCase;
    } else if (name == "STRLEN") {
      b = Builtin::kStrLen;
    } else if (name == "CONTAINS") {
      b = Builtin::kContains;
      min_args = max_args = 2;
    } else if (name == "STRSTARTS") {
      b = Builtin::kStrStarts;
      min_args = max_args = 2;
    } else if (name == "STRENDS") {
      b = Builtin::kStrEnds;
      min_args = max_args = 2;
    } else if (name == "LANGMATCHES") {
      b = Builtin::kLangMatches;
      min_args = max_args = 2;
    } else if (name == "SAMETERM") {
      b = Builtin::kSameTerm;
      min_args = max_args = 2;
    } else if (name == "ABS") {
      b = Builtin::kAbs;
    } else {
      return Err("unknown builtin " + name);
    }
    SPARQLOG_RETURN_NOT_OK(ExpectPunct('('));
    std::vector<ExprPtr> args;
    if (!Peek().IsPunct(')')) {
      while (true) {
        SPARQLOG_ASSIGN_OR_RETURN(ExprPtr arg, Expression());
        args.push_back(std::move(arg));
        if (!ConsumePunct(',')) break;
      }
    }
    SPARQLOG_RETURN_NOT_OK(ExpectPunct(')'));
    if (args.size() < min_args || args.size() > max_args) {
      return Err(name + ": wrong argument count");
    }
    return Expr::MakeBuiltin(b, std::move(args));
  }

  Result<ExprPtr> PrimaryExpression() {
    const Token& t = Peek();
    if (t.IsPunct('(')) {
      Take();
      SPARQLOG_ASSIGN_OR_RETURN(ExprPtr e, Expression());
      SPARQLOG_RETURN_NOT_OK(ExpectPunct(')'));
      return e;
    }
    if (t.kind == TokenKind::kVar) return Expr::MakeVar(Take().text);
    if (IsBuiltinStart()) return BuiltinCall();
    if (t.kind == TokenKind::kIri) {
      SPARQLOG_ASSIGN_OR_RETURN(rdf::TermId id, ResolveIri(Take().text));
      return Expr::MakeTerm(id);
    }
    if (t.kind == TokenKind::kPName) {
      SPARQLOG_ASSIGN_OR_RETURN(rdf::TermId id, ResolvePName(Take().text));
      return Expr::MakeTerm(id);
    }
    if (t.kind == TokenKind::kString) {
      SPARQLOG_ASSIGN_OR_RETURN(rdf::TermId id, LiteralTerm());
      return Expr::MakeTerm(id);
    }
    if (t.kind == TokenKind::kInteger) {
      return Expr::MakeTerm(dict_->InternLiteral(Take().text, rdf::xsd::kInteger));
    }
    if (t.kind == TokenKind::kDecimal) {
      return Expr::MakeTerm(dict_->InternLiteral(Take().text, rdf::xsd::kDecimal));
    }
    if (t.kind == TokenKind::kDouble) {
      return Expr::MakeTerm(dict_->InternLiteral(Take().text, rdf::xsd::kDouble));
    }
    if (t.IsKeyword("true")) {
      Take();
      return Expr::MakeTerm(dict_->InternBoolean(true));
    }
    if (t.IsKeyword("false")) {
      Take();
      return Expr::MakeTerm(dict_->InternBoolean(false));
    }
    if (t.IsKeyword("COALESCE") || t.IsKeyword("IF") || t.IsKeyword("EXISTS")) {
      return Status::NotSupported("filter function " + t.text +
                                  " is not supported (Table 1)");
    }
    return Err("unexpected token '" + t.text + "' in expression");
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  rdf::TermDictionary* dict_;
  ParserOptions options_;
  std::map<std::string, std::string> prefixes_;
  std::string base_;
};

}  // namespace

Result<Query> ParseQuery(std::string_view text, rdf::TermDictionary* dict) {
  return ParseQuery(text, dict, ParserOptions());
}

Result<Query> ParseQuery(std::string_view text, rdf::TermDictionary* dict,
                         const ParserOptions& options) {
  SPARQLOG_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  Parser parser(std::move(tokens), dict, options);
  return parser.Run();
}

}  // namespace sparqlog::sparql
