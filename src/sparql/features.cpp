#include "sparql/features.h"

namespace sparqlog::sparql {

namespace {

void WalkExpr(const Expr& e, FeatureSet* out) {
  if (e.kind == ExprKind::kBuiltin && e.builtin == Builtin::kRegex) {
    out->regex = true;
  }
  for (const auto& a : e.args) WalkExpr(*a, out);
}

void WalkPath(const Path& p, FeatureSet* out) {
  switch (p.kind) {
    case PathKind::kLink:
      return;
    case PathKind::kInverse:
      out->path_inverse = true;
      out->any_path = true;
      break;
    case PathKind::kSequence:
      out->path_seq = true;
      out->any_path = true;
      break;
    case PathKind::kAlternative:
      out->path_alt = true;
      out->any_path = true;
      break;
    case PathKind::kZeroOrOne:
      out->path_zero_or_one = true;
      out->any_path = true;
      break;
    case PathKind::kOneOrMore:
      out->path_one_or_more = true;
      out->any_path = true;
      break;
    case PathKind::kZeroOrMore:
      out->path_zero_or_more = true;
      out->any_path = true;
      break;
    case PathKind::kNegated:
      out->path_negated = true;
      out->any_path = true;
      return;
    case PathKind::kExactly:
    case PathKind::kNOrMore:
    case PathKind::kUpTo:
      out->path_counted = true;
      out->any_path = true;
      break;
  }
  if (p.left) WalkPath(*p.left, out);
  if (p.right) WalkPath(*p.right, out);
}

void WalkPattern(const Pattern& p, FeatureSet* out) {
  switch (p.kind) {
    case PatternKind::kEmpty:
    case PatternKind::kTriple:
      return;
    case PatternKind::kPath:
      WalkPath(*p.path, out);
      return;
    case PatternKind::kJoin:
      out->join = true;
      break;
    case PatternKind::kUnion:
      out->union_ = true;
      break;
    case PatternKind::kOptional:
      out->optional = true;
      break;
    case PatternKind::kMinus:
      out->minus = true;
      break;
    case PatternKind::kFilter:
      out->filter = true;
      WalkExpr(*p.condition, out);
      break;
    case PatternKind::kGraph:
      out->graph = true;
      break;
    case PatternKind::kBind:
      WalkExpr(*p.condition, out);
      break;
    case PatternKind::kValues:
      return;
    case PatternKind::kExistsFilter:
      out->filter = true;
      break;
  }
  if (p.left) WalkPattern(*p.left, out);
  if (p.right) WalkPattern(*p.right, out);
}

}  // namespace

FeatureSet AnalyzeFeatures(const Query& query) {
  FeatureSet out;
  // Matching the counting convention of the paper's benchmark analysis
  // (Appendix D.1): DISTINCT counts only when applied to the whole query.
  out.distinct = query.distinct;
  out.group_by = !query.group_by.empty();
  out.order_by = !query.order_by.empty();
  out.limit = query.limit.has_value();
  out.offset = query.offset.has_value();
  out.ask = query.form == QueryForm::kAsk;
  out.aggregates = query.HasAggregates();
  out.from = !query.from.empty() || !query.from_named.empty();
  if (query.where) WalkPattern(*query.where, &out);
  for (const auto& key : query.order_by) WalkExpr(*key.expr, &out);
  return out;
}

std::vector<double> FeatureUsageRow(const std::vector<FeatureSet>& sets,
                                    std::vector<std::string>* names) {
  struct Column {
    const char* name;
    bool FeatureSet::* field;
  };
  static constexpr Column kColumns[] = {
      {"DIST", &FeatureSet::distinct}, {"FILT", &FeatureSet::filter},
      {"REG", &FeatureSet::regex},     {"OPT", &FeatureSet::optional},
      {"UN", &FeatureSet::union_},     {"GRA", &FeatureSet::graph},
      {"PSeq", &FeatureSet::path_seq}, {"PAlt", &FeatureSet::path_alt},
      {"GRO", &FeatureSet::group_by},
  };
  if (names) {
    names->clear();
    for (const auto& c : kColumns) names->push_back(c.name);
  }
  std::vector<double> out;
  for (const auto& c : kColumns) {
    size_t n = 0;
    for (const auto& s : sets) {
      if (s.*(c.field)) ++n;
    }
    out.push_back(sets.empty() ? 0.0 : 100.0 * static_cast<double>(n) /
                                           static_cast<double>(sets.size()));
  }
  return out;
}

}  // namespace sparqlog::sparql
