#include "sparql/lexer.h"

#include <cctype>

#include "util/string_util.h"

namespace sparqlog::sparql {

bool Token::IsKeyword(std::string_view kw) const {
  return kind == TokenKind::kName && AsciiEqualsIgnoreCase(text, kw);
}

namespace {

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  Result<std::vector<Token>> Run() {
    std::vector<Token> out;
    while (true) {
      SkipWs();
      if (AtEnd()) {
        out.push_back(Token{TokenKind::kEof, "", line_});
        return out;
      }
      SPARQLOG_ASSIGN_OR_RETURN(Token tok, Next());
      out.push_back(std::move(tok));
    }
  }

 private:
  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek(size_t k = 0) const {
    return pos_ + k < text_.size() ? text_[pos_ + k] : '\0';
  }
  void Advance() {
    if (text_[pos_] == '\n') ++line_;
    ++pos_;
  }

  void SkipWs() {
    while (!AtEnd()) {
      char c = Peek();
      if (std::isspace(static_cast<unsigned char>(c))) {
        Advance();
      } else if (c == '#') {
        while (!AtEnd() && Peek() != '\n') Advance();
      } else {
        return;
      }
    }
  }

  Status Err(const std::string& what) {
    return Status::ParseError("sparql line " + std::to_string(line_) + ": " +
                              what);
  }

  static bool IsNameStart(char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
  }
  static bool IsNameChar(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '-';
  }

  Result<Token> Next() {
    int line = line_;
    char c = Peek();

    // IRI reference.
    if (c == '<') {
      // Distinguish from '<' / '<=' comparison: an IRI has no whitespace
      // before the closing '>' and parsers only see '<' in expression
      // position for comparisons. Heuristic: scan ahead for '>' before any
      // whitespace.
      size_t k = pos_ + 1;
      bool is_iri = false;
      while (k < text_.size()) {
        char d = text_[k];
        if (d == '>') {
          is_iri = true;
          break;
        }
        if (std::isspace(static_cast<unsigned char>(d)) || d == '"') break;
        ++k;
      }
      if (is_iri) {
        Advance();
        std::string iri;
        while (!AtEnd() && Peek() != '>') {
          iri += Peek();
          Advance();
        }
        if (AtEnd()) return Err("unterminated IRI");
        Advance();
        return Token{TokenKind::kIri, std::move(iri), line};
      }
      Advance();
      if (Peek() == '=') {
        Advance();
        return Token{TokenKind::kOp, "<=", line};
      }
      return Token{TokenKind::kPunct, "<", line};
    }

    // Variables.
    if (c == '?' || c == '$') {
      if (IsNameStart(Peek(1)) || std::isdigit(static_cast<unsigned char>(Peek(1)))) {
        Advance();
        std::string name;
        while (!AtEnd() && IsNameChar(Peek())) {
          name += Peek();
          Advance();
        }
        return Token{TokenKind::kVar, std::move(name), line};
      }
      Advance();
      return Token{TokenKind::kPunct, std::string(1, c), line};
    }

    // Blank nodes.
    if (c == '_' && Peek(1) == ':') {
      Advance();
      Advance();
      std::string label;
      while (!AtEnd() && IsNameChar(Peek())) {
        label += Peek();
        Advance();
      }
      return Token{TokenKind::kBlank, std::move(label), line};
    }

    // Strings.
    if (c == '"' || c == '\'') {
      char quote = c;
      Advance();
      bool long_string = false;
      if (Peek() == quote && Peek(1) == quote) {
        long_string = true;
        Advance();
        Advance();
      }
      std::string body;
      while (!AtEnd()) {
        char d = Peek();
        if (d == '\\') {
          Advance();
          char e = Peek();
          Advance();
          switch (e) {
            case 'n': body += '\n'; break;
            case 't': body += '\t'; break;
            case 'r': body += '\r'; break;
            case '\\': body += '\\'; break;
            case '"': body += '"'; break;
            case '\'': body += '\''; break;
            default: body += e;
          }
          continue;
        }
        if (!long_string && d == quote) {
          Advance();
          return Token{TokenKind::kString, std::move(body), line};
        }
        if (long_string && d == quote && Peek(1) == quote &&
            Peek(2) == quote) {
          Advance();
          Advance();
          Advance();
          return Token{TokenKind::kString, std::move(body), line};
        }
        if (!long_string && d == '\n') return Err("newline in string");
        body += d;
        Advance();
      }
      return Err("unterminated string");
    }

    // Language tags.
    if (c == '@') {
      Advance();
      std::string tag;
      while (!AtEnd() && (std::isalnum(static_cast<unsigned char>(Peek())) ||
                          Peek() == '-')) {
        tag += Peek();
        Advance();
      }
      if (tag.empty()) return Err("empty language tag");
      return Token{TokenKind::kLangTag, std::move(tag), line};
    }

    // Numbers.
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        ((c == '+' || c == '-') &&
         std::isdigit(static_cast<unsigned char>(Peek(1))))) {
      std::string num;
      if (c == '+' || c == '-') {
        num += c;
        Advance();
      }
      bool has_dot = false, has_exp = false;
      while (!AtEnd()) {
        char d = Peek();
        if (std::isdigit(static_cast<unsigned char>(d))) {
          num += d;
          Advance();
        } else if (d == '.' && !has_dot && !has_exp &&
                   std::isdigit(static_cast<unsigned char>(Peek(1)))) {
          has_dot = true;
          num += d;
          Advance();
        } else if ((d == 'e' || d == 'E') && !has_exp) {
          has_exp = true;
          num += d;
          Advance();
          if (Peek() == '+' || Peek() == '-') {
            num += Peek();
            Advance();
          }
        } else {
          break;
        }
      }
      TokenKind kind = has_exp ? TokenKind::kDouble
                     : has_dot ? TokenKind::kDecimal
                               : TokenKind::kInteger;
      return Token{kind, std::move(num), line};
    }

    // Names and prefixed names.
    if (IsNameStart(c)) {
      std::string name;
      while (!AtEnd() && IsNameChar(Peek())) {
        name += Peek();
        Advance();
      }
      if (Peek() == ':') {
        Advance();
        std::string local;
        while (!AtEnd() && (IsNameChar(Peek()) || Peek() == '.')) {
          if (Peek() == '.') {
            char next = Peek(1);
            if (!(IsNameChar(next))) break;
          }
          local += Peek();
          Advance();
        }
        return Token{TokenKind::kPName, name + ":" + local, line};
      }
      return Token{TokenKind::kName, std::move(name), line};
    }
    // Default-prefix pname ":local".
    if (c == ':') {
      Advance();
      std::string local;
      while (!AtEnd() && (IsNameChar(Peek()))) {
        local += Peek();
        Advance();
      }
      return Token{TokenKind::kPName, ":" + local, line};
    }

    // Multi-char operators.
    if (c == '!' && Peek(1) == '=') {
      Advance();
      Advance();
      return Token{TokenKind::kOp, "!=", line};
    }
    if (c == '>' && Peek(1) == '=') {
      Advance();
      Advance();
      return Token{TokenKind::kOp, ">=", line};
    }
    if (c == '&' && Peek(1) == '&') {
      Advance();
      Advance();
      return Token{TokenKind::kOp, "&&", line};
    }
    if (c == '|' && Peek(1) == '|') {
      Advance();
      Advance();
      return Token{TokenKind::kOp, "||", line};
    }
    if (c == '^' && Peek(1) == '^') {
      Advance();
      Advance();
      return Token{TokenKind::kOp, "^^", line};
    }

    // Single punctuation.
    static constexpr std::string_view kPunct = "{}()[],;.*+?/|^!=-<>";
    if (kPunct.find(c) != std::string_view::npos) {
      Advance();
      return Token{TokenKind::kPunct, std::string(1, c), line};
    }
    return Err(std::string("unexpected character '") + c + "'");
  }

  std::string_view text_;
  size_t pos_ = 0;
  int line_ = 1;
};

}  // namespace

Result<std::vector<Token>> Tokenize(std::string_view text) {
  return Lexer(text).Run();
}

}  // namespace sparqlog::sparql
