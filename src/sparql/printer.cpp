#include "sparql/printer.h"

#include "util/string_util.h"

namespace sparqlog::sparql {

namespace {

std::string RenderTermOrVar(const TermOrVar& tv,
                            const rdf::TermDictionary& dict) {
  if (tv.is_var) return "?" + tv.var;
  return dict.Render(tv.term);
}

const char* CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq: return "=";
    case CompareOp::kNe: return "!=";
    case CompareOp::kLt: return "<";
    case CompareOp::kLe: return "<=";
    case CompareOp::kGt: return ">";
    case CompareOp::kGe: return ">=";
  }
  return "?";
}

const char* ArithOpName(ArithOp op) {
  switch (op) {
    case ArithOp::kAdd: return "+";
    case ArithOp::kSub: return "-";
    case ArithOp::kMul: return "*";
    case ArithOp::kDiv: return "/";
  }
  return "?";
}

}  // namespace

std::string ToString(const Expr& expr, const rdf::TermDictionary& dict) {
  switch (expr.kind) {
    case ExprKind::kVar:
      return "?" + expr.var;
    case ExprKind::kTerm:
      return dict.Render(expr.term);
    case ExprKind::kOr:
      return "(" + ToString(*expr.args[0], dict) + " || " +
             ToString(*expr.args[1], dict) + ")";
    case ExprKind::kAnd:
      return "(" + ToString(*expr.args[0], dict) + " && " +
             ToString(*expr.args[1], dict) + ")";
    case ExprKind::kNot:
      return "!(" + ToString(*expr.args[0], dict) + ")";
    case ExprKind::kCompare:
      return "(" + ToString(*expr.args[0], dict) + " " +
             CompareOpName(expr.compare_op) + " " +
             ToString(*expr.args[1], dict) + ")";
    case ExprKind::kArith:
      return "(" + ToString(*expr.args[0], dict) + " " +
             ArithOpName(expr.arith_op) + " " + ToString(*expr.args[1], dict) +
             ")";
    case ExprKind::kNegate:
      return "-(" + ToString(*expr.args[0], dict) + ")";
    case ExprKind::kBuiltin: {
      std::string out = BuiltinName(expr.builtin);
      out += "(";
      for (size_t i = 0; i < expr.args.size(); ++i) {
        if (i > 0) out += ", ";
        out += ToString(*expr.args[i], dict);
      }
      out += ")";
      return out;
    }
  }
  return "?";
}

std::string ToString(const Path& path, const rdf::TermDictionary& dict) {
  switch (path.kind) {
    case PathKind::kLink:
      return dict.Render(path.iri);
    case PathKind::kInverse:
      return "^(" + ToString(*path.left, dict) + ")";
    case PathKind::kSequence:
      return "(" + ToString(*path.left, dict) + "/" +
             ToString(*path.right, dict) + ")";
    case PathKind::kAlternative:
      return "(" + ToString(*path.left, dict) + "|" +
             ToString(*path.right, dict) + ")";
    case PathKind::kZeroOrOne:
      return "(" + ToString(*path.left, dict) + ")?";
    case PathKind::kOneOrMore:
      return "(" + ToString(*path.left, dict) + ")+";
    case PathKind::kZeroOrMore:
      return "(" + ToString(*path.left, dict) + ")*";
    case PathKind::kNegated: {
      std::string out = "!(";
      bool first = true;
      for (auto id : path.neg_fwd) {
        if (!first) out += "|";
        out += dict.Render(id);
        first = false;
      }
      for (auto id : path.neg_bwd) {
        if (!first) out += "|";
        out += "^" + dict.Render(id);
        first = false;
      }
      return out + ")";
    }
    case PathKind::kExactly:
      return "(" + ToString(*path.left, dict) + "){" +
             std::to_string(path.count) + "}";
    case PathKind::kNOrMore:
      return "(" + ToString(*path.left, dict) + "){" +
             std::to_string(path.count) + ",}";
    case PathKind::kUpTo:
      return "(" + ToString(*path.left, dict) + "){0," +
             std::to_string(path.count) + "}";
  }
  return "?";
}

std::string ToString(const Pattern& pattern, const rdf::TermDictionary& dict,
                     int indent) {
  std::string pad(static_cast<size_t>(indent) * 2, ' ');
  switch (pattern.kind) {
    case PatternKind::kEmpty:
      return pad + "Empty";
    case PatternKind::kTriple:
      return pad + "Triple(" + RenderTermOrVar(pattern.s, dict) + " " +
             RenderTermOrVar(pattern.p, dict) + " " +
             RenderTermOrVar(pattern.o, dict) + ")";
    case PatternKind::kPath:
      return pad + "Path(" + RenderTermOrVar(pattern.s, dict) + " " +
             ToString(*pattern.path, dict) + " " +
             RenderTermOrVar(pattern.o, dict) + ")";
    case PatternKind::kJoin:
      return pad + "Join\n" + ToString(*pattern.left, dict, indent + 1) +
             "\n" + ToString(*pattern.right, dict, indent + 1);
    case PatternKind::kUnion:
      return pad + "Union\n" + ToString(*pattern.left, dict, indent + 1) +
             "\n" + ToString(*pattern.right, dict, indent + 1);
    case PatternKind::kOptional:
      return pad + "Optional\n" + ToString(*pattern.left, dict, indent + 1) +
             "\n" + ToString(*pattern.right, dict, indent + 1);
    case PatternKind::kMinus:
      return pad + "Minus\n" + ToString(*pattern.left, dict, indent + 1) +
             "\n" + ToString(*pattern.right, dict, indent + 1);
    case PatternKind::kFilter:
      return pad + "Filter " + ToString(*pattern.condition, dict) + "\n" +
             ToString(*pattern.left, dict, indent + 1);
    case PatternKind::kGraph:
      return pad + "Graph " + RenderTermOrVar(pattern.graph, dict) + "\n" +
             ToString(*pattern.left, dict, indent + 1);
    case PatternKind::kBind:
      return pad + "Bind ?" + pattern.bind_var + " := " +
             ToString(*pattern.condition, dict) + "\n" +
             ToString(*pattern.left, dict, indent + 1);
    case PatternKind::kValues: {
      std::string out = pad + "Values";
      for (const auto& v : pattern.values_vars) out += " ?" + v;
      out += " [" + std::to_string(pattern.values_rows.size()) + " rows]";
      return out;
    }
    case PatternKind::kExistsFilter:
      return pad + (pattern.exists_negated ? "NotExists\n" : "Exists\n") +
             ToString(*pattern.left, dict, indent + 1) + "\n" +
             ToString(*pattern.right, dict, indent + 1);
  }
  return pad + "?";
}

std::string ToString(const Query& query, const rdf::TermDictionary& dict) {
  std::string out = query.form == QueryForm::kSelect ? "SELECT" : "ASK";
  if (query.distinct) out += " DISTINCT";
  if (query.select_all) {
    out += " *";
  } else {
    for (const auto& item : query.select) {
      if (item.is_aggregate) {
        out += StringPrintf(" (%s(%s%s) AS ?%s)", AggregateFnName(item.fn),
                            item.agg_distinct ? "DISTINCT " : "",
                            item.count_star ? "*" : ("?" + item.var).c_str(),
                            item.alias.c_str());
      } else {
        out += " ?" + item.var;
      }
    }
  }
  out += "\n";
  for (auto g : query.from) out += "FROM " + dict.Render(g) + "\n";
  for (auto g : query.from_named) {
    out += "FROM NAMED " + dict.Render(g) + "\n";
  }
  if (query.where) out += ToString(*query.where, dict) + "\n";
  if (!query.group_by.empty()) {
    out += "GROUP BY";
    for (const auto& v : query.group_by) out += " ?" + v;
    out += "\n";
  }
  if (!query.order_by.empty()) {
    out += "ORDER BY";
    for (const auto& key : query.order_by) {
      out += key.descending ? " DESC(" : " ASC(";
      out += ToString(*key.expr, dict) + ")";
    }
    out += "\n";
  }
  if (query.limit) out += "LIMIT " + std::to_string(*query.limit) + "\n";
  if (query.offset) out += "OFFSET " + std::to_string(*query.offset) + "\n";
  return out;
}

}  // namespace sparqlog::sparql
