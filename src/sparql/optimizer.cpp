#include "sparql/optimizer.h"

#include <algorithm>
#include <set>

namespace sparqlog::sparql {

namespace {

/// Flattens a maximal chain of Join nodes into conjuncts.
void Flatten(const PatternPtr& p, std::vector<PatternPtr>* out) {
  if (p->kind == PatternKind::kJoin) {
    Flatten(p->left, out);
    Flatten(p->right, out);
    return;
  }
  out->push_back(ReorderJoins(p));
}

/// Number of constant positions in a leaf (selectivity proxy).
int ConstantCount(const Pattern& p) {
  int n = 0;
  if (p.kind == PatternKind::kTriple) {
    n += p.s.is_var ? 0 : 1;
    n += p.p.is_var ? 0 : 1;
    n += p.o.is_var ? 0 : 1;
  } else if (p.kind == PatternKind::kPath) {
    n += p.s.is_var ? 0 : 1;
    n += p.o.is_var ? 0 : 1;
  } else {
    // Complex subpatterns: treat as moderately selective.
    n = 1;
  }
  return n;
}

/// True for recursive-path leaves (expensive when unconstrained).
bool IsRecursivePath(const Pattern& p) {
  if (p.kind != PatternKind::kPath) return false;
  switch (p.path->kind) {
    case PathKind::kOneOrMore:
    case PathKind::kZeroOrMore:
    case PathKind::kZeroOrOne:
    case PathKind::kNOrMore:
    case PathKind::kUpTo:
      return true;
    default:
      return false;
  }
}

}  // namespace

PatternPtr ReorderJoins(const PatternPtr& pattern) {
  switch (pattern->kind) {
    case PatternKind::kEmpty:
    case PatternKind::kTriple:
    case PatternKind::kPath:
      return pattern;
    case PatternKind::kJoin: {
      std::vector<PatternPtr> conjuncts;
      Flatten(pattern, &conjuncts);
      if (conjuncts.size() <= 1) return conjuncts.empty() ? pattern : conjuncts[0];

      std::vector<std::vector<std::string>> vars;
      vars.reserve(conjuncts.size());
      for (const auto& c : conjuncts) vars.push_back(c->Vars());

      std::vector<bool> used(conjuncts.size(), false);
      std::set<std::string> bound;
      std::vector<PatternPtr> ordered;

      for (size_t step = 0; step < conjuncts.size(); ++step) {
        int best = -1;
        // Score: (connected to bound vars, #bound positions incl. consts,
        // not a recursive path, fewer free vars).
        long best_score = -1;
        for (size_t i = 0; i < conjuncts.size(); ++i) {
          if (used[i]) continue;
          long shared = 0;
          for (const auto& v : vars[i]) {
            if (bound.count(v)) ++shared;
          }
          bool connected = step == 0 || shared > 0 || vars[i].empty();
          long score = 0;
          score += connected ? 1'000'000 : 0;
          score += shared * 10'000;
          score += ConstantCount(*conjuncts[i]) * 1'000;
          score += IsRecursivePath(*conjuncts[i]) ? 0 : 100;
          score += 10 - std::min<long>(10, static_cast<long>(vars[i].size()));
          if (score > best_score) {
            best_score = score;
            best = static_cast<int>(i);
          }
        }
        used[static_cast<size_t>(best)] = true;
        ordered.push_back(conjuncts[static_cast<size_t>(best)]);
        for (const auto& v : vars[static_cast<size_t>(best)]) bound.insert(v);
      }

      PatternPtr out = ordered[0];
      for (size_t i = 1; i < ordered.size(); ++i) {
        out = Pattern::Join(out, ordered[i]);
      }
      return out;
    }
    case PatternKind::kUnion:
      return Pattern::Union(ReorderJoins(pattern->left),
                            ReorderJoins(pattern->right));
    case PatternKind::kOptional:
      return Pattern::Optional(ReorderJoins(pattern->left),
                               ReorderJoins(pattern->right));
    case PatternKind::kMinus:
      return Pattern::Minus(ReorderJoins(pattern->left),
                            ReorderJoins(pattern->right));
    case PatternKind::kFilter:
      return Pattern::Filter(ReorderJoins(pattern->left), pattern->condition);
    case PatternKind::kGraph:
      return Pattern::GraphPattern(pattern->graph,
                                   ReorderJoins(pattern->left));
    case PatternKind::kBind:
      return Pattern::Bind(ReorderJoins(pattern->left), pattern->condition,
                           pattern->bind_var);
    case PatternKind::kValues:
      return pattern;  // a join leaf
    case PatternKind::kExistsFilter:
      return Pattern::ExistsFilter(ReorderJoins(pattern->left),
                                   ReorderJoins(pattern->right),
                                   pattern->exists_negated);
  }
  return pattern;
}

}  // namespace sparqlog::sparql
