#include "sparql/ast.h"

#include <algorithm>

namespace sparqlog::sparql {

const char* BuiltinName(Builtin b) {
  switch (b) {
    case Builtin::kBound: return "BOUND";
    case Builtin::kIsIri: return "isIRI";
    case Builtin::kIsBlank: return "isBLANK";
    case Builtin::kIsLiteral: return "isLITERAL";
    case Builtin::kIsNumeric: return "isNUMERIC";
    case Builtin::kStr: return "STR";
    case Builtin::kLang: return "LANG";
    case Builtin::kDatatype: return "DATATYPE";
    case Builtin::kRegex: return "REGEX";
    case Builtin::kUCase: return "UCASE";
    case Builtin::kLCase: return "LCASE";
    case Builtin::kStrLen: return "STRLEN";
    case Builtin::kContains: return "CONTAINS";
    case Builtin::kStrStarts: return "STRSTARTS";
    case Builtin::kStrEnds: return "STRENDS";
    case Builtin::kLangMatches: return "LANGMATCHES";
    case Builtin::kSameTerm: return "sameTerm";
    case Builtin::kAbs: return "ABS";
  }
  return "?";
}

const char* AggregateFnName(AggregateFn fn) {
  switch (fn) {
    case AggregateFn::kCount: return "COUNT";
    case AggregateFn::kSum: return "SUM";
    case AggregateFn::kMin: return "MIN";
    case AggregateFn::kMax: return "MAX";
    case AggregateFn::kAvg: return "AVG";
  }
  return "?";
}

namespace {
ExprPtr MakeNode(ExprKind kind, std::vector<ExprPtr> args) {
  auto e = std::make_shared<Expr>();
  e->kind = kind;
  e->args = std::move(args);
  return e;
}
}  // namespace

ExprPtr Expr::MakeVar(std::string name) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kVar;
  e->var = std::move(name);
  return e;
}

ExprPtr Expr::MakeTerm(rdf::TermId id) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kTerm;
  e->term = id;
  return e;
}

ExprPtr Expr::MakeOr(ExprPtr a, ExprPtr b) {
  return MakeNode(ExprKind::kOr, {std::move(a), std::move(b)});
}
ExprPtr Expr::MakeAnd(ExprPtr a, ExprPtr b) {
  return MakeNode(ExprKind::kAnd, {std::move(a), std::move(b)});
}
ExprPtr Expr::MakeNot(ExprPtr a) {
  return MakeNode(ExprKind::kNot, {std::move(a)});
}
ExprPtr Expr::MakeCompare(CompareOp op, ExprPtr a, ExprPtr b) {
  auto e = MakeNode(ExprKind::kCompare, {std::move(a), std::move(b)});
  const_cast<Expr*>(e.get())->compare_op = op;
  return e;
}
ExprPtr Expr::MakeArith(ArithOp op, ExprPtr a, ExprPtr b) {
  auto e = MakeNode(ExprKind::kArith, {std::move(a), std::move(b)});
  const_cast<Expr*>(e.get())->arith_op = op;
  return e;
}
ExprPtr Expr::MakeNegate(ExprPtr a) {
  return MakeNode(ExprKind::kNegate, {std::move(a)});
}
ExprPtr Expr::MakeBuiltin(Builtin b, std::vector<ExprPtr> args) {
  auto e = MakeNode(ExprKind::kBuiltin, std::move(args));
  const_cast<Expr*>(e.get())->builtin = b;
  return e;
}

void Expr::CollectVars(std::vector<std::string>* out) const {
  if (kind == ExprKind::kVar) out->push_back(var);
  for (const auto& a : args) a->CollectVars(out);
}

PathPtr Path::Link(rdf::TermId iri) {
  auto p = std::make_shared<Path>();
  p->kind = PathKind::kLink;
  p->iri = iri;
  return p;
}
PathPtr Path::Inverse(PathPtr child) {
  auto p = std::make_shared<Path>();
  p->kind = PathKind::kInverse;
  p->left = std::move(child);
  return p;
}
PathPtr Path::Sequence(PathPtr a, PathPtr b) {
  auto p = std::make_shared<Path>();
  p->kind = PathKind::kSequence;
  p->left = std::move(a);
  p->right = std::move(b);
  return p;
}
PathPtr Path::Alternative(PathPtr a, PathPtr b) {
  auto p = std::make_shared<Path>();
  p->kind = PathKind::kAlternative;
  p->left = std::move(a);
  p->right = std::move(b);
  return p;
}
PathPtr Path::ZeroOrOne(PathPtr child) {
  auto p = std::make_shared<Path>();
  p->kind = PathKind::kZeroOrOne;
  p->left = std::move(child);
  return p;
}
PathPtr Path::OneOrMore(PathPtr child) {
  auto p = std::make_shared<Path>();
  p->kind = PathKind::kOneOrMore;
  p->left = std::move(child);
  return p;
}
PathPtr Path::ZeroOrMore(PathPtr child) {
  auto p = std::make_shared<Path>();
  p->kind = PathKind::kZeroOrMore;
  p->left = std::move(child);
  return p;
}
PathPtr Path::Negated(std::vector<rdf::TermId> fwd,
                      std::vector<rdf::TermId> bwd) {
  auto p = std::make_shared<Path>();
  p->kind = PathKind::kNegated;
  p->neg_fwd = std::move(fwd);
  p->neg_bwd = std::move(bwd);
  return p;
}
PathPtr Path::Counted(PathKind kind, PathPtr child, uint32_t n) {
  auto p = std::make_shared<Path>();
  p->kind = kind;
  p->left = std::move(child);
  p->count = n;
  return p;
}

namespace {
PatternPtr MakePattern(PatternKind kind) {
  auto p = std::make_shared<Pattern>();
  p->kind = kind;
  return p;
}
}  // namespace

PatternPtr Pattern::Empty() { return MakePattern(PatternKind::kEmpty); }

PatternPtr Pattern::Triple(TermOrVar s, TermOrVar p, TermOrVar o) {
  auto pat = MakePattern(PatternKind::kTriple);
  auto* m = const_cast<Pattern*>(pat.get());
  m->s = std::move(s);
  m->p = std::move(p);
  m->o = std::move(o);
  return pat;
}

PatternPtr Pattern::PathPattern(TermOrVar s, PathPtr path, TermOrVar o) {
  auto pat = MakePattern(PatternKind::kPath);
  auto* m = const_cast<Pattern*>(pat.get());
  m->s = std::move(s);
  m->path = std::move(path);
  m->o = std::move(o);
  return pat;
}

PatternPtr Pattern::Join(PatternPtr l, PatternPtr r) {
  auto pat = MakePattern(PatternKind::kJoin);
  auto* m = const_cast<Pattern*>(pat.get());
  m->left = std::move(l);
  m->right = std::move(r);
  return pat;
}
PatternPtr Pattern::Union(PatternPtr l, PatternPtr r) {
  auto pat = MakePattern(PatternKind::kUnion);
  auto* m = const_cast<Pattern*>(pat.get());
  m->left = std::move(l);
  m->right = std::move(r);
  return pat;
}
PatternPtr Pattern::Optional(PatternPtr l, PatternPtr r) {
  auto pat = MakePattern(PatternKind::kOptional);
  auto* m = const_cast<Pattern*>(pat.get());
  m->left = std::move(l);
  m->right = std::move(r);
  return pat;
}
PatternPtr Pattern::Minus(PatternPtr l, PatternPtr r) {
  auto pat = MakePattern(PatternKind::kMinus);
  auto* m = const_cast<Pattern*>(pat.get());
  m->left = std::move(l);
  m->right = std::move(r);
  return pat;
}
PatternPtr Pattern::Filter(PatternPtr l, ExprPtr condition) {
  auto pat = MakePattern(PatternKind::kFilter);
  auto* m = const_cast<Pattern*>(pat.get());
  m->left = std::move(l);
  m->condition = std::move(condition);
  return pat;
}
PatternPtr Pattern::GraphPattern(TermOrVar g, PatternPtr inner) {
  auto pat = MakePattern(PatternKind::kGraph);
  auto* m = const_cast<Pattern*>(pat.get());
  m->graph = std::move(g);
  m->left = std::move(inner);
  return pat;
}

PatternPtr Pattern::Bind(PatternPtr l, ExprPtr expr, std::string var) {
  auto pat = MakePattern(PatternKind::kBind);
  auto* m = const_cast<Pattern*>(pat.get());
  m->left = std::move(l);
  m->condition = std::move(expr);
  m->bind_var = std::move(var);
  return pat;
}

PatternPtr Pattern::Values(std::vector<std::string> vars,
                           std::vector<std::vector<rdf::TermId>> rows) {
  auto pat = MakePattern(PatternKind::kValues);
  auto* m = const_cast<Pattern*>(pat.get());
  m->values_vars = std::move(vars);
  m->values_rows = std::move(rows);
  return pat;
}

PatternPtr Pattern::ExistsFilter(PatternPtr l, PatternPtr inner,
                                 bool negated) {
  auto pat = MakePattern(PatternKind::kExistsFilter);
  auto* m = const_cast<Pattern*>(pat.get());
  m->left = std::move(l);
  m->right = std::move(inner);
  m->exists_negated = negated;
  return pat;
}

void Pattern::CollectVars(std::vector<std::string>* out) const {
  switch (kind) {
    case PatternKind::kEmpty:
      return;
    case PatternKind::kTriple:
      if (s.is_var) out->push_back(s.var);
      if (p.is_var) out->push_back(p.var);
      if (o.is_var) out->push_back(o.var);
      return;
    case PatternKind::kPath:
      if (s.is_var) out->push_back(s.var);
      if (o.is_var) out->push_back(o.var);
      return;
    case PatternKind::kJoin:
    case PatternKind::kUnion:
    case PatternKind::kOptional:
      left->CollectVars(out);
      right->CollectVars(out);
      return;
    case PatternKind::kMinus:
      // MINUS does not bind right-side variables.
      left->CollectVars(out);
      return;
    case PatternKind::kFilter:
      // FILTER conditions do not bind variables.
      left->CollectVars(out);
      return;
    case PatternKind::kGraph:
      if (graph.is_var) out->push_back(graph.var);
      left->CollectVars(out);
      return;
    case PatternKind::kBind:
      left->CollectVars(out);
      out->push_back(bind_var);
      return;
    case PatternKind::kValues:
      for (const auto& v : values_vars) out->push_back(v);
      return;
    case PatternKind::kExistsFilter:
      // The EXISTS pattern does not bind variables outward.
      left->CollectVars(out);
      return;
  }
}

std::vector<std::string> Pattern::Vars() const {
  std::vector<std::string> out;
  CollectVars(&out);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<std::string> Query::ProjectedVars() const {
  if (select_all) return where ? where->Vars() : std::vector<std::string>{};
  std::vector<std::string> out;
  for (const auto& item : select) {
    out.push_back(item.is_aggregate ? item.alias : item.var);
  }
  return out;
}

}  // namespace sparqlog::sparql
