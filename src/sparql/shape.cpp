#include "sparql/shape.h"

#include <algorithm>
#include <unordered_map>

#include "rdf/dictionary.h"

namespace sparqlog::sparql {

namespace {

/// Single-pass canonicalizer: appends a token stream to `key` while
/// interning variables (by first appearance) and constants (by first
/// appearance of each distinct TermId).
///
/// Join chains are canonicalized: every kJoin tree is flattened into its
/// conjunct list and the conjuncts are emitted in the order of their
/// *concrete* local serializations (original variable spellings, raw
/// TermIds — computed by a nested concrete-mode canonicalizer). Sorting by
/// concrete keys is a deterministic function of the concrete query, so two
/// queries that collide were traversed in the same canonical conjunct
/// order — parameter slots, variable ordinals and the name-rank
/// permutation all line up, and re-binding stays sound. Conjunct order
/// inside a join never changes the translated program's solutions (rule
/// bodies are conjunctions, and the join planner reorders them against
/// live statistics anyway), so `{A . B}` and `{B . A}` now share one cache
/// entry; renamings that permute the concrete sort order miss
/// conservatively, exactly like order-permuting alpha-renamings always
/// have.
class Canonicalizer {
 public:
  explicit Canonicalizer(bool concrete = false) : concrete_(concrete) {}

  QueryShape Run(const Query& q) {
    Tag('F');
    Num(static_cast<uint64_t>(q.form));
    Flag(q.distinct);
    Flag(q.select_all);

    Tag('S');
    Num(q.select.size());
    for (const SelectItem& item : q.select) {
      Flag(item.is_aggregate);
      if (item.is_aggregate) {
        Num(static_cast<uint64_t>(item.fn));
        Flag(item.count_star);
        Flag(item.agg_distinct);
        // The alias is an output *name*, not structure: aggregation reads
        // it from the live query at solution-translation time.
      }
      if (!item.count_star) Var(item.var);
    }

    Tag('G');
    Num(q.group_by.size());
    for (const std::string& v : q.group_by) Var(v);

    Tag('W');
    if (q.where) Pattern(*q.where);

    Tag('O');
    Num(q.order_by.size());
    for (const OrderKey& k : q.order_by) {
      Flag(k.descending);
      Expr(*k.expr);
    }

    // The lexicographic rank permutation of the canonical variables is
    // deliberately NOT part of the key: the translation orders predicate
    // arguments by sorted original names (Pattern::Vars), but re-binding
    // restores the cached column layout through `var_names`, so renamings
    // that permute the name order still hit.
    QueryShape shape;
    shape.key = std::move(key_);
    shape.params = std::move(params_);

    // Variable names cannot contain the delimiters ('$', '?', ';'), so
    // this serialization is injective over (params, names, limit/offset).
    std::string data;
    for (rdf::TermId t : shape.params) {
      data.push_back('$');
      data += std::to_string(t);
    }
    for (const std::string& name : var_names_) {
      data.push_back('?');
      data += name;
      data.push_back(';');
    }
    if (q.limit) data += "L" + std::to_string(*q.limit);
    if (q.offset) data += "O" + std::to_string(*q.offset);
    shape.data_key = std::move(data);
    shape.var_names = std::move(var_names_);
    return shape;
  }

 private:
  void Tag(char c) { key_.push_back(c); }
  void Num(uint64_t n) {
    key_.push_back('#');
    key_ += std::to_string(n);
    key_.push_back(';');
  }
  void Flag(bool b) { key_.push_back(b ? '1' : '0'); }

  void Var(const std::string& name) {
    if (concrete_) {
      // Concrete mode (join-conjunct sort keys): the spelling itself.
      // Names cannot contain the delimiters, so this stays injective.
      key_.push_back('?');
      key_ += name;
      key_.push_back(';');
      return;
    }
    auto [it, inserted] =
        var_ids_.try_emplace(name, static_cast<uint32_t>(var_names_.size()));
    if (inserted) var_names_.push_back(name);
    key_.push_back('?');
    key_ += std::to_string(it->second);
    key_.push_back(';');
  }

  void Const(rdf::TermId term) {
    if (concrete_) {
      key_.push_back('$');
      key_ += std::to_string(term);
      key_.push_back(';');
      return;
    }
    auto [it, inserted] =
        param_ids_.try_emplace(term, static_cast<uint32_t>(params_.size()));
    if (inserted) params_.push_back(term);
    key_.push_back('$');
    key_ += std::to_string(it->second);
    key_.push_back(';');
  }

  void TV(const TermOrVar& tv) {
    if (tv.is_var) {
      Var(tv.var);
    } else {
      Const(tv.term);
    }
  }

  void Expr(const sparql::Expr& e) {
    Tag('e');
    Num(static_cast<uint64_t>(e.kind));
    switch (e.kind) {
      case ExprKind::kVar:
        Var(e.var);
        break;
      case ExprKind::kTerm:
        Const(e.term);
        break;
      case ExprKind::kCompare:
        Num(static_cast<uint64_t>(e.compare_op));
        break;
      case ExprKind::kArith:
        Num(static_cast<uint64_t>(e.arith_op));
        break;
      case ExprKind::kBuiltin:
        Num(static_cast<uint64_t>(e.builtin));
        break;
      default:
        break;
    }
    Num(e.args.size());
    for (const ExprPtr& arg : e.args) Expr(*arg);
  }

  void PathExpr(const sparql::Path& p) {
    Tag('p');
    Num(static_cast<uint64_t>(p.kind));
    switch (p.kind) {
      case PathKind::kLink:
        Const(p.iri);
        break;
      case PathKind::kNegated:
        Num(p.neg_fwd.size());
        for (rdf::TermId t : p.neg_fwd) Const(t);
        Num(p.neg_bwd.size());
        for (rdf::TermId t : p.neg_bwd) Const(t);
        break;
      case PathKind::kExactly:
      case PathKind::kNOrMore:
      case PathKind::kUpTo:
        Num(p.count);
        break;
      default:
        break;
    }
    if (p.left) PathExpr(*p.left);
    if (p.right) PathExpr(*p.right);
  }

  /// Collects the conjunct leaves of a (possibly nested) kJoin tree in
  /// written order; any association of the same conjuncts flattens alike.
  static void FlattenJoin(const sparql::Pattern& p,
                          std::vector<const sparql::Pattern*>* out) {
    if (p.kind == PatternKind::kJoin) {
      FlattenJoin(*p.left, out);
      FlattenJoin(*p.right, out);
      return;
    }
    out->push_back(&p);
  }

  void Pattern(const sparql::Pattern& p) {
    Tag('(');
    Num(static_cast<uint64_t>(p.kind));
    switch (p.kind) {
      case PatternKind::kEmpty:
        break;
      case PatternKind::kTriple:
        TV(p.s);
        TV(p.p);
        TV(p.o);
        break;
      case PatternKind::kPath:
        TV(p.s);
        TV(p.o);
        PathExpr(*p.path);
        break;
      case PatternKind::kJoin: {
        // Canonical conjunct order: flatten the join tree and sort the
        // conjuncts by their concrete local keys (see class comment). The
        // sort is stable, so fully identical conjuncts (which any order
        // serializes the same) keep their written order. The emitted
        // count keeps the flattened serialization injective.
        std::vector<const sparql::Pattern*> conjuncts;
        FlattenJoin(p, &conjuncts);
        std::vector<std::pair<std::string, const sparql::Pattern*>> keyed;
        keyed.reserve(conjuncts.size());
        for (const sparql::Pattern* c : conjuncts) {
          Canonicalizer local(/*concrete=*/true);
          local.Pattern(*c);
          keyed.emplace_back(std::move(local.key_), c);
        }
        std::stable_sort(
            keyed.begin(), keyed.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
        Num(keyed.size());
        for (const auto& [unused, c] : keyed) Pattern(*c);
        break;
      }
      case PatternKind::kUnion:
      case PatternKind::kOptional:
      case PatternKind::kMinus:
        Pattern(*p.left);
        Pattern(*p.right);
        break;
      case PatternKind::kFilter:
        Pattern(*p.left);
        Expr(*p.condition);
        break;
      case PatternKind::kGraph:
        TV(p.graph);
        Pattern(*p.left);
        break;
      case PatternKind::kBind:
        Pattern(*p.left);
        Expr(*p.condition);
        Var(p.bind_var);
        break;
      case PatternKind::kValues:
        Num(p.values_vars.size());
        for (const std::string& v : p.values_vars) Var(v);
        Num(p.values_rows.size());
        for (const auto& row : p.values_rows) {
          for (rdf::TermId cell : row) {
            // UNDEF is the distinguished unbound marker, not a parameter.
            if (cell == rdf::TermDictionary::kUndef) {
              Tag('u');
            } else {
              Const(cell);
            }
          }
        }
        break;
      case PatternKind::kExistsFilter:
        Flag(p.exists_negated);
        Pattern(*p.left);
        Pattern(*p.right);
        break;
    }
    Tag(')');
  }

  /// Concrete mode: serialize spellings and raw TermIds instead of
  /// interning (used for join-conjunct sort keys only; Run is never
  /// called on a concrete canonicalizer).
  bool concrete_ = false;
  std::string key_;
  std::unordered_map<std::string, uint32_t> var_ids_;
  std::vector<std::string> var_names_;
  std::unordered_map<rdf::TermId, uint32_t> param_ids_;
  std::vector<rdf::TermId> params_;
};

}  // namespace

QueryShape ComputeQueryShape(const Query& query) {
  return Canonicalizer().Run(query);
}

}  // namespace sparqlog::sparql
