#pragma once

#include "sparql/ast.h"

/// \file optimizer.h
/// Join-order optimization on the SPARQL algebra. SPARQL joins are
/// associative and commutative under multiset semantics, so maximal
/// Join-chains can be reordered freely; we use the classic greedy
/// heuristic (start from the most selective conjunct, then repeatedly
/// pick a conjunct sharing variables with what is already bound) to avoid
/// Cartesian intermediates. The SparqLog engine applies this before
/// translation — the paper's §7 observes that "query plan optimization
/// provides a huge effect on performance" in the Vadalog substrate; this
/// pass is our equivalent. The reference evaluator intentionally does not
/// use it (it plays the unoptimized baseline).

namespace sparqlog::sparql {

/// Returns an equivalent pattern with Join-chains reordered; other nodes
/// are rebuilt with optimized children.
PatternPtr ReorderJoins(const PatternPtr& pattern);

}  // namespace sparqlog::sparql
