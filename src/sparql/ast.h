#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "rdf/term.h"

/// \file ast.h
/// Abstract syntax for the SPARQL 1.1 fragment covered by SparqLog
/// (Table 1 of the paper): SELECT / ASK query forms; triple patterns,
/// JOIN, UNION, OPTIONAL, FILTER, MINUS, GRAPH; all property path forms
/// including the gMark counted paths; filter expressions; DISTINCT /
/// ORDER BY / LIMIT / OFFSET; GROUP BY with aggregates.
///
/// Constant RDF terms are interned at parse time, so the AST carries
/// TermIds rather than strings.

namespace sparqlog::sparql {

/// A position in a triple/path pattern: either a variable or a constant.
struct TermOrVar {
  bool is_var = false;
  std::string var;        ///< variable name without '?' (valid if is_var)
  rdf::TermId term = 0;   ///< interned constant (valid if !is_var)

  static TermOrVar Var(std::string name) {
    TermOrVar t;
    t.is_var = true;
    t.var = std::move(name);
    return t;
  }
  static TermOrVar Const(rdf::TermId id) {
    TermOrVar t;
    t.term = id;
    return t;
  }

  bool operator==(const TermOrVar& o) const {
    return is_var == o.is_var && var == o.var && term == o.term;
  }
};

// ---------------------------------------------------------------------------
// Expressions (FILTER constraints, ORDER BY keys)
// ---------------------------------------------------------------------------

/// Builtin function tags for BuiltinCall expressions.
enum class Builtin : uint8_t {
  kBound,
  kIsIri,       ///< also isURI
  kIsBlank,
  kIsLiteral,
  kIsNumeric,
  kStr,
  kLang,
  kDatatype,
  kRegex,       ///< regex(text, pattern [, flags])
  kUCase,
  kLCase,
  kStrLen,
  kContains,
  kStrStarts,
  kStrEnds,
  kLangMatches,
  kSameTerm,
  kAbs,
};

const char* BuiltinName(Builtin b);

enum class ExprKind : uint8_t {
  kVar,       ///< variable reference
  kTerm,      ///< constant RDF term
  kOr,        ///< args[0] || args[1]
  kAnd,       ///< args[0] && args[1]
  kNot,       ///< !args[0]
  kCompare,   ///< args[0] <op> args[1]
  kArith,     ///< args[0] <op> args[1]
  kNegate,    ///< -args[0]
  kBuiltin,   ///< builtin(args...)
};

enum class CompareOp : uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };
enum class ArithOp : uint8_t { kAdd, kSub, kMul, kDiv };

struct Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/// Immutable expression tree node.
struct Expr {
  ExprKind kind;
  std::string var;                 // kVar
  rdf::TermId term = 0;            // kTerm
  CompareOp compare_op = CompareOp::kEq;
  ArithOp arith_op = ArithOp::kAdd;
  Builtin builtin = Builtin::kBound;
  std::vector<ExprPtr> args;

  static ExprPtr MakeVar(std::string name);
  static ExprPtr MakeTerm(rdf::TermId id);
  static ExprPtr MakeOr(ExprPtr a, ExprPtr b);
  static ExprPtr MakeAnd(ExprPtr a, ExprPtr b);
  static ExprPtr MakeNot(ExprPtr a);
  static ExprPtr MakeCompare(CompareOp op, ExprPtr a, ExprPtr b);
  static ExprPtr MakeArith(ArithOp op, ExprPtr a, ExprPtr b);
  static ExprPtr MakeNegate(ExprPtr a);
  static ExprPtr MakeBuiltin(Builtin b, std::vector<ExprPtr> args);

  /// Collects variable names referenced by this expression into `out`.
  void CollectVars(std::vector<std::string>* out) const;
};

// ---------------------------------------------------------------------------
// Property paths
// ---------------------------------------------------------------------------

enum class PathKind : uint8_t {
  kLink,         ///< IRI
  kInverse,      ///< ^p
  kSequence,     ///< p1 / p2
  kAlternative,  ///< p1 | p2
  kZeroOrOne,    ///< p?
  kOneOrMore,    ///< p+
  kZeroOrMore,   ///< p*
  kNegated,      ///< !(p1 | ... | ^q1 | ...)
  kExactly,      ///< p{n}      (gMark extension)
  kNOrMore,      ///< p{n,}     (gMark extension)
  kUpTo,         ///< p{0,n}    (gMark extension; also p{,n})
};

struct Path;
using PathPtr = std::shared_ptr<const Path>;

/// Property path expression node (Appendix A.3).
struct Path {
  PathKind kind;
  rdf::TermId iri = 0;                 // kLink
  PathPtr left, right;                 // children
  std::vector<rdf::TermId> neg_fwd;    // kNegated: forward link set
  std::vector<rdf::TermId> neg_bwd;    // kNegated: inverted link set
  uint32_t count = 0;                  // kExactly / kNOrMore / kUpTo

  static PathPtr Link(rdf::TermId iri);
  static PathPtr Inverse(PathPtr p);
  static PathPtr Sequence(PathPtr a, PathPtr b);
  static PathPtr Alternative(PathPtr a, PathPtr b);
  static PathPtr ZeroOrOne(PathPtr p);
  static PathPtr OneOrMore(PathPtr p);
  static PathPtr ZeroOrMore(PathPtr p);
  static PathPtr Negated(std::vector<rdf::TermId> fwd,
                         std::vector<rdf::TermId> bwd);
  static PathPtr Counted(PathKind kind, PathPtr p, uint32_t n);

  /// True if the path is a single forward link (plain triple predicate).
  bool IsSimpleLink() const { return kind == PathKind::kLink; }
};

// ---------------------------------------------------------------------------
// Graph patterns
// ---------------------------------------------------------------------------

enum class PatternKind : uint8_t {
  kEmpty,     ///< unit pattern {} — one empty mapping
  kTriple,    ///< triple pattern with plain predicate
  kPath,      ///< property path pattern
  kJoin,      ///< left . right
  kUnion,     ///< left UNION right
  kOptional,  ///< left OPT right
  kMinus,     ///< left MINUS right
  kFilter,    ///< left FILTER condition
  kGraph,     ///< GRAPH g { left }
  // --- extension mode (the paper's §7 "towards 100% coverage" roadmap) ---
  kBind,          ///< left BIND(condition AS bind_var)
  kValues,        ///< inline data block (a join leaf)
  kExistsFilter,  ///< left FILTER [NOT] EXISTS { right }
};

struct Pattern;
using PatternPtr = std::shared_ptr<const Pattern>;

/// Graph pattern parse-tree node. Binary combinators keep the parse-tree
/// shape the paper's translation walks (NodeIndex doubling scheme, §5.1).
struct Pattern {
  PatternKind kind;
  // kTriple
  TermOrVar s, p, o;
  // kPath (s/o reused for endpoints)
  PathPtr path;
  // binary nodes / kFilter / kGraph
  PatternPtr left, right;
  ExprPtr condition;   // kFilter / kBind (the bound expression)
  TermOrVar graph;     // kGraph
  std::string bind_var;                       // kBind
  std::vector<std::string> values_vars;       // kValues
  /// kValues rows, aligned with values_vars; kUndef marks UNDEF cells.
  std::vector<std::vector<rdf::TermId>> values_rows;
  bool exists_negated = false;                // kExistsFilter

  static PatternPtr Empty();
  static PatternPtr Triple(TermOrVar s, TermOrVar p, TermOrVar o);
  static PatternPtr PathPattern(TermOrVar s, PathPtr path, TermOrVar o);
  static PatternPtr Join(PatternPtr l, PatternPtr r);
  static PatternPtr Union(PatternPtr l, PatternPtr r);
  static PatternPtr Optional(PatternPtr l, PatternPtr r);
  static PatternPtr Minus(PatternPtr l, PatternPtr r);
  static PatternPtr Filter(PatternPtr l, ExprPtr condition);
  static PatternPtr GraphPattern(TermOrVar g, PatternPtr inner);
  static PatternPtr Bind(PatternPtr l, ExprPtr expr, std::string var);
  static PatternPtr Values(std::vector<std::string> vars,
                           std::vector<std::vector<rdf::TermId>> rows);
  static PatternPtr ExistsFilter(PatternPtr l, PatternPtr inner,
                                 bool negated);

  /// In-scope variable names, lexicographically sorted and deduplicated
  /// (the paper's var(P) with the x̄ ordering convention).
  std::vector<std::string> Vars() const;

 private:
  void CollectVars(std::vector<std::string>* out) const;
};

// ---------------------------------------------------------------------------
// Query forms
// ---------------------------------------------------------------------------

enum class QueryForm : uint8_t { kSelect, kAsk };

enum class AggregateFn : uint8_t { kCount, kSum, kMin, kMax, kAvg };

const char* AggregateFnName(AggregateFn fn);

/// One item of a SELECT clause: a plain variable or `(AGG(?v) AS ?alias)`.
struct SelectItem {
  bool is_aggregate = false;
  std::string var;           ///< plain variable, or aggregate argument
  AggregateFn fn = AggregateFn::kCount;
  bool count_star = false;   ///< COUNT(*)
  bool agg_distinct = false; ///< COUNT(DISTINCT ?v)
  std::string alias;         ///< output name for aggregates
};

/// One ORDER BY key.
struct OrderKey {
  ExprPtr expr;
  bool descending = false;
};

/// A parsed SPARQL query.
struct Query {
  QueryForm form = QueryForm::kSelect;
  bool distinct = false;
  bool select_all = false;               ///< SELECT *
  std::vector<SelectItem> select;
  std::vector<std::string> group_by;
  std::vector<rdf::TermId> from;         ///< FROM graph IRIs
  std::vector<rdf::TermId> from_named;   ///< FROM NAMED graph IRIs
  PatternPtr where;
  std::vector<OrderKey> order_by;
  std::optional<uint64_t> limit;
  std::optional<uint64_t> offset;

  bool HasAggregates() const {
    for (const auto& item : select) {
      if (item.is_aggregate) return true;
    }
    return false;
  }

  /// Projection variable names in SELECT order. For SELECT *, this is
  /// the sorted in-scope variable set of the WHERE pattern.
  std::vector<std::string> ProjectedVars() const;
};

}  // namespace sparqlog::sparql
