#pragma once

#include <string_view>

#include "rdf/dictionary.h"
#include "sparql/ast.h"
#include "util/status.h"

/// \file parser.h
/// Recursive-descent SPARQL 1.1 parser for the SparqLog fragment.
/// Constant terms are interned into the supplied dictionary at parse time.
///
/// Features the paper's engine does not support (Table 1 ✗ rows:
/// CONSTRUCT, DESCRIBE, FILTER (NOT) EXISTS, BIND, VALUES, HAVING,
/// sub-SELECT, COALESCE, IN/NOT IN, GROUP graph pattern) are recognized
/// and rejected with Status::NotSupported so the feature-coverage
/// experiment (Table 1) can distinguish "unsupported" from "syntax error".

namespace sparqlog::sparql {

/// Parser configuration.
struct ParserOptions {
  /// Accepts the extension features beyond the paper's engine (its §7
  /// roadmap toward full coverage): FILTER EXISTS / NOT EXISTS, BIND and
  /// VALUES. Off by default so the Table-1 coverage experiment reproduces
  /// the published engine.
  bool extensions = false;
};

/// Parses `text` into a Query, interning constants into `dict`.
Result<Query> ParseQuery(std::string_view text, rdf::TermDictionary* dict);
Result<Query> ParseQuery(std::string_view text, rdf::TermDictionary* dict,
                         const ParserOptions& options);

}  // namespace sparqlog::sparql
