#pragma once

#include <string>

#include "rdf/dictionary.h"
#include "sparql/ast.h"

/// \file printer.h
/// Debug / documentation rendering of parsed queries back to a readable
/// algebra form. Used by tests, the translator CLI example, and error
/// messages.

namespace sparqlog::sparql {

std::string ToString(const Expr& expr, const rdf::TermDictionary& dict);
std::string ToString(const Path& path, const rdf::TermDictionary& dict);
std::string ToString(const Pattern& pattern, const rdf::TermDictionary& dict,
                     int indent = 0);
std::string ToString(const Query& query, const rdf::TermDictionary& dict);

}  // namespace sparqlog::sparql
