#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "rdf/term.h"
#include "sparql/ast.h"

/// \file shape.h
/// Canonical query shapes for the engine's translated-program cache.
///
/// Production SPARQL traffic is dominated by structurally identical
/// queries that differ only in constants (Bonifati et al.'s query-log
/// study), so the cache key must identify a query's *shape*: the algebra
/// with variable names normalized away and constants lifted out.
///
/// ComputeQueryShape walks the parsed query once and emits
///  * `key` — a canonical serialization of the algebra in which every
///    variable is replaced by its first-appearance ordinal and every
///    constant RDF term by a parameter slot (`$k`, one slot per
///    *distinct* term, so the equality pattern among constants is part
///    of the shape: `{ <a> p <a> }` and `{ <a> p <b> }` differ);
///  * `params` — the lifted constants, one TermId per slot in
///    first-appearance order; and
///  * `data_key` — an exact serialization of everything that is *data*
///    rather than shape (parameter values, the original variable names,
///    LIMIT / OFFSET), which lets the cache distinguish "same shape,
///    same data: reuse the translated program verbatim" from "same
///    shape, new data: re-bind parameters into a copy". It is compared
///    by content, never by hash, so a collision can't serve a program
///    with the wrong constants baked in.
///
/// The translation lays predicate arguments out in the *sorted* order of
/// the original variable names (Pattern::Vars), so an alpha-renaming that
/// permutes the lexicographic order of names permutes the translated
/// column layout. That permutation is pure *data*, not shape: the cache
/// serves such a hit by keeping the cached program's column positions and
/// translating each column name through the canonical variable ordinals
/// (`var_names` below), so order-permuting renamings hit instead of
/// conservatively missing. Two queries therefore collide exactly when
/// their translated programs are identical up to parameter values,
/// variable spellings, output column names and conjunct order inside
/// joins — all of which re-binding (or nothing at all) can patch.
///
/// Join chains are order-normalized: a kJoin tree is flattened and its
/// conjuncts are serialized in the order of their concrete local keys
/// (original spellings + raw TermIds), so `{A . B}` and `{B . A}` — and
/// any re-association — produce one shape. Conjunct order never affects
/// solution multisets (rule bodies are conjunctions, and the cost-based
/// join planner reorders them against live statistics regardless), so a
/// hit across permuted queries is exactly as sound as a verbatim hit.
///
/// FROM / FROM NAMED clauses and LIMIT / OFFSET are deliberately *not*
/// part of the shape: neither influences the structure of the translated
/// rules (the engine scopes the dataset outside translation, and
/// LIMIT / OFFSET live in the output directives, which re-binding
/// overwrites from the live query).

namespace sparqlog::sparql {

struct QueryShape {
  /// Canonical serialization of the algebra; cache entries compare on the
  /// full string, so hash collisions cannot alias two shapes.
  std::string key;
  /// Lifted constants (one per distinct term, first-appearance order).
  std::vector<rdf::TermId> params;
  /// Exact serialization of the non-structural data (params, variable
  /// spellings, LIMIT/OFFSET): an equal data_key on a key hit means the
  /// cached program can be reused without any re-binding.
  std::string data_key;
  /// Original variable spellings by canonical ordinal (first-appearance
  /// order in the canonical traversal). Not part of the key; re-binding
  /// uses it to map a cached program's column names onto a shape-equal
  /// query's spellings even when the renaming permutes name order.
  std::vector<std::string> var_names;
};

/// Canonicalizes `query`. Total over the supported AST: every pattern,
/// path, expression and query form has a serialization.
QueryShape ComputeQueryShape(const Query& query);

}  // namespace sparqlog::sparql
