#pragma once

#include <string>
#include <vector>

#include "sparql/ast.h"

/// \file features.h
/// Static SPARQL feature detection over parsed queries. This powers the
/// Table 2 reproduction (feature coverage of benchmarks) and the Table 1
/// coverage matrix.

namespace sparqlog::sparql {

/// Feature flags found in one query. Field names follow Table 2's columns
/// plus the extra features Table 1 tracks.
struct FeatureSet {
  // Table 2 columns.
  bool distinct = false;       ///< DISTINCT on the whole query
  bool filter = false;
  bool regex = false;
  bool optional = false;
  bool union_ = false;
  bool graph = false;
  bool path_seq = false;       ///< sequence property path
  bool path_alt = false;       ///< alternative property path
  bool group_by = false;

  // Additional Table 1 features.
  bool join = false;
  bool minus = false;
  bool path_inverse = false;
  bool path_zero_or_one = false;
  bool path_one_or_more = false;
  bool path_zero_or_more = false;
  bool path_negated = false;
  bool path_counted = false;   ///< gMark {n} / {n,} / {0,n}
  bool any_path = false;       ///< any non-link property path
  bool order_by = false;
  bool limit = false;
  bool offset = false;
  bool ask = false;
  bool aggregates = false;
  bool from = false;
};

/// Analyzes a parsed query.
FeatureSet AnalyzeFeatures(const Query& query);

/// Percentage of queries in a workload using each feature — one row of
/// Table 2. `names` receives the column labels matching the values.
std::vector<double> FeatureUsageRow(const std::vector<FeatureSet>& sets,
                                    std::vector<std::string>* names);

}  // namespace sparqlog::sparql
