#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

/// \file lexer.h
/// SPARQL tokenizer. Produces a flat token stream the recursive-descent
/// parser consumes; prefixed names are resolved by the parser (prefixes
/// are declared in the prologue).

namespace sparqlog::sparql {

enum class TokenKind : uint8_t {
  kEof,
  kName,      ///< bare word: keywords (SELECT, WHERE, a, true, ...)
  kIri,       ///< <...> with brackets stripped
  kPName,     ///< prefix:local (text keeps the colon)
  kVar,       ///< ?x or $x, text is the bare name
  kBlank,     ///< _:label, text is the label
  kString,    ///< quoted string, text is the unescaped body
  kLangTag,   ///< @tag
  kInteger,
  kDecimal,
  kDouble,
  kPunct,     ///< one of: { } ( ) [ ] , ; . * + ? / | ^ ! = - < >
  kOp,        ///< multi-char operator: != <= >= && || ^^
};

struct Token {
  TokenKind kind = TokenKind::kEof;
  std::string text;
  int line = 0;

  bool IsPunct(char c) const {
    return kind == TokenKind::kPunct && text.size() == 1 && text[0] == c;
  }
  bool IsOp(std::string_view op) const {
    return kind == TokenKind::kOp && text == op;
  }
  /// Case-insensitive keyword check on a kName token.
  bool IsKeyword(std::string_view kw) const;
};

/// Tokenizes a full query string.
Result<std::vector<Token>> Tokenize(std::string_view text);

}  // namespace sparqlog::sparql
