#pragma once

#include <string>
#include <string_view>

#include "eval/binding.h"
#include "rdf/dictionary.h"

/// \file json.h
/// Minimal JSON serialization for the embedded SPARQL endpoint: string
/// escaping, a small append-only writer, and the SPARQL 1.1 Query Results
/// JSON rendering of a QueryResult. Writing only — the endpoint never
/// parses JSON (queries arrive as plain SPARQL text).

namespace sparqlog::server {

/// Appends the JSON string literal for `s` (quotes included) to `out`.
/// Control characters are \u-escaped; the input is treated as opaque
/// bytes, so any interned term renders losslessly.
void AppendJsonString(std::string_view s, std::string* out);

/// Convenience: the escaped, quoted form of `s`.
std::string JsonString(std::string_view s);

/// Append-only JSON writer for flat/nested objects and arrays. The caller
/// supplies structure by pairing Begin*/End* calls; the writer tracks
/// comma placement. No validation beyond that — this is a serializer for
/// code-generated shapes, not a general library.
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  /// Starts a `"key":` member inside an object.
  JsonWriter& Key(std::string_view key);

  JsonWriter& String(std::string_view value);
  JsonWriter& Number(uint64_t value);
  JsonWriter& Number(double value);
  JsonWriter& Bool(bool value);

  const std::string& str() const { return out_; }
  std::string Take() { return std::move(out_); }

 private:
  void Comma();

  std::string out_;
  bool need_comma_ = false;
};

/// Renders a QueryResult in the SPARQL 1.1 Query Results JSON format
/// (https://www.w3.org/TR/sparql11-results-json/): `head.vars` +
/// `results.bindings` for SELECT, `boolean` for ASK. Unbound cells are
/// omitted from their binding object, per the spec.
std::string ResultToJson(const eval::QueryResult& result,
                         const rdf::TermDictionary& dict);

}  // namespace sparqlog::server
