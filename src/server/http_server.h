#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "util/status.h"

/// \file http_server.h
/// Embedded HTTP endpoint over a shared, already-loaded Engine — the
/// serving mode the concurrent Execute() API exists for. One acceptor
/// thread feeds a bounded queue drained by a fixed worker pool; every
/// worker calls `Engine::Execute` on the same const engine, so the
/// engine's own admission control (`Options::serving.max_in_flight`)
/// and per-query limits apply unchanged to HTTP traffic.
///
/// Routes:
///   GET  /sparql?query=<urlencoded>   SPARQL 1.1 results JSON
///   POST /sparql                      body = SPARQL text (or form
///                                     `query=` pair), same response
///   GET  /stats                       EngineStats + storage as JSON
///   GET  /healthz                     {"status":"ok","loaded":...}
///
/// Routes (mutable server only):
///   POST /update?op=insert|delete     body = Turtle triples; applies
///                                     an incremental EDB update and
///                                     returns `{"inserted":...,
///                                     "deleted":...,"noop":...,
///                                     "incremental":...,"wall_ms":...}`
///
/// Engine failures map onto HTTP statuses through `StatusToHttp`, an
/// exhaustive per-StatusCode table: parse/unsupported/invalid -> 400,
/// not found -> 404, unloaded engine or admission shedding -> 503 with
/// a Retry-After header, timeout -> 504, budget exhaustion -> 413,
/// internal -> 500. Error bodies are
/// `{"error":{"code":...,"message":...}}`.
///
/// A server built over a `const Engine*` never mutates the engine and
/// answers POST /update with 403 `read_only`; the mutable-engine
/// constructor additionally enables /update, which serializes against
/// in-flight queries through the engine's own publish lock, so readers
/// always see a fully published EDB. Connections are one-request
/// (`Connection: close`) — ideal for a benchmark/ops endpoint, and it
/// keeps the worker loop trivial.

namespace sparqlog::server {

struct HttpServerOptions {
  /// Listen address. Loopback by default: this is an embedded endpoint,
  /// not an internet-facing service.
  std::string host = "127.0.0.1";
  /// TCP port; 0 asks the OS for an ephemeral port (read it back from
  /// `port()` after Start) — used by tests to avoid collisions.
  uint16_t port = 0;
  /// Worker threads executing queries. The acceptor is separate.
  uint32_t num_workers = 4;
  /// Accepted connections waiting for a worker beyond this are answered
  /// 503 immediately instead of queueing unboundedly.
  size_t max_queued_connections = 64;
  /// Requests larger than this (head + body) are rejected with 413.
  size_t max_request_bytes = 1 << 20;
  /// A connection that has not delivered a complete request within this
  /// many milliseconds is answered 408 and closed — a stalled client
  /// must not pin a worker forever.
  int recv_timeout_ms = 5000;
};

/// Parsed request, exposed for testing the routing logic in isolation.
struct HttpRequest {
  std::string method;
  std::string path;      // decoded, without the query string
  std::string query;     // raw query string (after '?'), undecoded
  std::string body;
  std::string content_type;
};

/// A routed response before serialization.
struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
  /// When > 0, a `Retry-After: N` header is emitted — set on 503s so
  /// well-behaved clients back off instead of hammering a shedding
  /// server (the retry helper in util/retry.h honors it).
  int retry_after_seconds = 0;
};

/// Deliberate HTTP rendering of one engine StatusCode: the status line,
/// a machine-readable error code, and the Retry-After hint (0 = none).
struct HttpStatusMapping {
  int http = 500;
  const char* code = "internal";
  int retry_after_seconds = 0;
};

/// Maps every `Status` onto HTTP deliberately — overload → 503 with
/// Retry-After, client errors → 4xx, never a default 500 for a typed
/// status. Exhaustive over StatusCode (a new code fails the build here
/// rather than silently becoming a 500). Public for the table-driven
/// mapping test.
HttpStatusMapping StatusToHttp(const Status& st);

/// Percent-decoding for URL query parameters ('+' becomes space).
std::string UrlDecode(std::string_view in);

/// Extracts the value of `key` from an application/x-www-form-urlencoded
/// or URL query string; empty string if absent.
std::string FormValue(std::string_view form, std::string_view key);

class HttpServer {
 public:
  /// The engine must outlive the server and be Load()ed by the caller —
  /// the server reports 503 (via the engine's FailedPrecondition) until
  /// it is.
  HttpServer(const core::Engine* engine, const rdf::TermDictionary* dict,
             HttpServerOptions options = {});

  /// Mutable-engine overload: same read surface, plus POST /update.
  /// The dictionary must be the engine's own (update payloads intern
  /// new terms into it before ApplyUpdate).
  HttpServer(core::Engine* engine, rdf::TermDictionary* dict,
             HttpServerOptions options = {});
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds, listens, and starts the acceptor + worker threads.
  Status Start();

  /// Stops accepting, drains queued connections with 503, joins all
  /// threads. Idempotent; also run by the destructor.
  void Stop();

  /// Bound port (valid after Start; resolves port 0 to the real one).
  uint16_t port() const { return bound_port_; }
  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Routing logic without sockets: maps a parsed request to a response.
  /// Public so tests can drive the endpoint behavior deterministically
  /// even when binding a socket is not permitted in the sandbox.
  HttpResponse Route(const HttpRequest& request) const;

 private:
  void AcceptLoop();
  void WorkerLoop();
  void HandleConnection(int fd);

  HttpResponse ExecuteQuery(const std::string& query_text) const;
  HttpResponse UpdateResponse(const HttpRequest& request) const;
  HttpResponse StatsResponse() const;
  HttpResponse HealthResponse() const;

  const core::Engine* engine_;
  const rdf::TermDictionary* dict_;
  // Non-null only for the mutable-engine constructor; gates /update.
  core::Engine* mutable_engine_ = nullptr;
  rdf::TermDictionary* mutable_dict_ = nullptr;
  HttpServerOptions options_;

  std::atomic<int> listen_fd_{-1};
  uint16_t bound_port_ = 0;
  std::atomic<bool> running_{false};

  std::thread acceptor_;
  std::vector<std::thread> workers_;

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<int> pending_;  // accepted fds awaiting a worker
};

}  // namespace sparqlog::server
