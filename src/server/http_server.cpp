#include "server/http_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "rdf/turtle_parser.h"
#include "server/json.h"
#include "util/failpoint.h"

namespace sparqlog::server {

namespace {

// Fired before reading a request off an accepted connection / before
// writing a response back. The read site turns into the mapped HTTP
// error for the injected status; the write site drops the response on
// the floor (client sees a closed connection), exercising client-side
// retry paths.
SPARQLOG_FAILPOINT_DEFINE(g_fp_http_read, "server.http.read");
SPARQLOG_FAILPOINT_DEFINE(g_fp_http_write, "server.http.write");

int HexVal(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

const char* ReasonPhrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 403: return "Forbidden";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 413: return "Payload Too Large";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    case 504: return "Gateway Timeout";
    default: return "Unknown";
  }
}

std::string ErrorBody(std::string_view code, std::string_view message) {
  JsonWriter w;
  w.BeginObject().Key("error").BeginObject();
  w.Key("code").String(code);
  w.Key("message").String(message);
  w.EndObject().EndObject();
  return w.Take();
}

/// Renders a failed engine Status as a complete error response
/// (status line, JSON body, Retry-After when the mapping carries one).
HttpResponse ErrorResponse(const Status& st) {
  HttpStatusMapping m = StatusToHttp(st);
  HttpResponse response{m.http, "application/json",
                        ErrorBody(m.code, st.message())};
  response.retry_after_seconds = m.retry_after_seconds;
  return response;
}

const char* ProgramSourceName(core::Engine::ProgramSource source) {
  switch (source) {
    case core::Engine::ProgramSource::kTranslated: return "translated";
    case core::Engine::ProgramSource::kCacheHit: return "cache_hit";
    case core::Engine::ProgramSource::kRebound: return "rebound";
    case core::Engine::ProgramSource::kUncached: return "uncached";
  }
  return "unknown";
}

/// Serializes and writes a full HTTP/1.1 response; best-effort (the
/// client may already be gone, which is fine for a one-shot connection).
void WriteResponse(int fd, const HttpResponse& response) {
  // Injected write failure: the response is simply never sent, as if
  // the kernel buffer errored out mid-write. The connection still gets
  // closed by the caller, so clients observe a truncated exchange.
  if (!g_fp_http_write.Check().ok()) return;
  std::string out = "HTTP/1.1 " + std::to_string(response.status) + " " +
                    ReasonPhrase(response.status) + "\r\n";
  out += "Content-Type: " + response.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  if (response.retry_after_seconds > 0) {
    out += "Retry-After: " + std::to_string(response.retry_after_seconds) +
           "\r\n";
  }
  out += "Connection: close\r\n\r\n";
  out += response.body;
  size_t sent = 0;
  while (sent < out.size()) {
    ssize_t n = ::send(fd, out.data() + sent, out.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
}

/// How reading one request off a connection ended; each bucket maps to
/// a distinct HTTP status in HandleConnection.
enum class ReadOutcome { kOk, kMalformed, kTooLarge, kTimeout };

/// Reads one request (head + Content-Length body) into `request`,
/// enforcing the size cap *after* every append (the old pre-recv check
/// let the buffer overshoot the cap by a whole chunk and misreported
/// oversize as 400) and an overall receive deadline so a stalled client
/// cannot pin a worker forever.
ReadOutcome ReadRequest(int fd, size_t max_bytes, int timeout_ms,
                        HttpRequest* request) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  // One recv bounded by the remaining deadline (SO_RCVTIMEO re-armed per
  // call so slow-trickle clients cannot reset the clock).
  auto recv_some = [&](char* dst, size_t cap,
                       ReadOutcome* err) -> ssize_t {
    auto now = std::chrono::steady_clock::now();
    if (now >= deadline) {
      *err = ReadOutcome::kTimeout;
      return -1;
    }
    auto remaining =
        std::chrono::duration_cast<std::chrono::microseconds>(deadline - now);
    timeval tv{};
    tv.tv_sec = static_cast<time_t>(remaining.count() / 1000000);
    tv.tv_usec = static_cast<suseconds_t>(remaining.count() % 1000000);
    if (tv.tv_sec == 0 && tv.tv_usec == 0) tv.tv_usec = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ssize_t n = ::recv(fd, dst, cap, 0);
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      *err = ReadOutcome::kTimeout;
    } else if (n <= 0) {
      *err = ReadOutcome::kMalformed;
    }
    return n;
  };

  std::string buf;
  char chunk[4096];
  size_t head_end = std::string::npos;
  while (head_end == std::string::npos) {
    ReadOutcome err = ReadOutcome::kMalformed;
    ssize_t n = recv_some(chunk, sizeof(chunk), &err);
    if (n <= 0) return err;
    buf.append(chunk, static_cast<size_t>(n));
    head_end = buf.find("\r\n\r\n");
    if (head_end == std::string::npos && buf.size() > max_bytes) {
      return ReadOutcome::kTooLarge;
    }
  }

  // Request line: METHOD SP target SP version.
  size_t line_end = buf.find("\r\n");
  std::string line = buf.substr(0, line_end);
  size_t sp1 = line.find(' ');
  size_t sp2 = line.rfind(' ');
  if (sp1 == std::string::npos || sp2 == sp1) return ReadOutcome::kMalformed;
  request->method = line.substr(0, sp1);
  std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  size_t qmark = target.find('?');
  if (qmark == std::string::npos) {
    request->path = UrlDecode(target);
  } else {
    request->path = UrlDecode(target.substr(0, qmark));
    request->query = target.substr(qmark + 1);
  }

  // Headers: only Content-Length and Content-Type matter here.
  size_t content_length = 0;
  size_t pos = line_end + 2;
  while (pos < head_end) {
    size_t eol = buf.find("\r\n", pos);
    std::string header = buf.substr(pos, eol - pos);
    pos = eol + 2;
    size_t colon = header.find(':');
    if (colon == std::string::npos) continue;
    std::string name = header.substr(0, colon);
    for (char& c : name) c = static_cast<char>(std::tolower(c));
    size_t vstart = header.find_first_not_of(" \t", colon + 1);
    std::string value =
        vstart == std::string::npos ? "" : header.substr(vstart);
    if (name == "content-length") {
      content_length = std::strtoull(value.c_str(), nullptr, 10);
    } else if (name == "content-type") {
      request->content_type = value;
    }
  }
  if (head_end + 4 + content_length > max_bytes) {
    return ReadOutcome::kTooLarge;
  }

  while (buf.size() < head_end + 4 + content_length) {
    ReadOutcome err = ReadOutcome::kMalformed;
    ssize_t n = recv_some(chunk, sizeof(chunk), &err);
    if (n <= 0) return err;
    buf.append(chunk, static_cast<size_t>(n));
  }
  request->body = buf.substr(head_end + 4, content_length);
  return ReadOutcome::kOk;
}

}  // namespace

HttpStatusMapping StatusToHttp(const Status& st) {
  // Exhaustive by design: no default case, so adding a StatusCode
  // without deciding its HTTP rendering breaks the -Wswitch build here
  // instead of silently becoming a 500. Only genuinely transient
  // conditions advertise Retry-After — admission shedding clears within
  // a queue timeout; an unloaded engine is loading and worth a short
  // client-side pause.
  switch (st.code()) {
    case StatusCode::kOk:
      return {200, "ok", 0};
    case StatusCode::kInvalidArgument:
      return {400, "invalid_argument", 0};
    case StatusCode::kParseError:
      return {400, "parse_error", 0};
    case StatusCode::kNotSupported:
      return {400, "not_supported", 0};
    case StatusCode::kNotFound:
      return {404, "not_found", 0};
    case StatusCode::kTimeout:
      return {504, "timeout", 0};
    case StatusCode::kResourceExhausted:
      return {413, "budget_exceeded", 0};
    case StatusCode::kFailedPrecondition:
      return {503, "not_loaded", 1};
    case StatusCode::kUnavailable:
      return {503, "overloaded", 1};
    case StatusCode::kInternal:
      return {500, "internal", 0};
  }
  return {500, "internal", 0};  // unreachable; keeps non-GCC builds happy
}

std::string UrlDecode(std::string_view in) {
  std::string out;
  out.reserve(in.size());
  for (size_t i = 0; i < in.size(); ++i) {
    if (in[i] == '+') {
      out.push_back(' ');
    } else if (in[i] == '%' && i + 2 < in.size()) {
      int hi = HexVal(in[i + 1]);
      int lo = HexVal(in[i + 2]);
      if (hi >= 0 && lo >= 0) {
        out.push_back(static_cast<char>(hi * 16 + lo));
        i += 2;
      } else {
        out.push_back('%');
      }
    } else {
      out.push_back(in[i]);
    }
  }
  return out;
}

std::string FormValue(std::string_view form, std::string_view key) {
  size_t pos = 0;
  while (pos <= form.size()) {
    size_t amp = form.find('&', pos);
    std::string_view pair =
        form.substr(pos, amp == std::string_view::npos ? form.size() - pos
                                                       : amp - pos);
    size_t eq = pair.find('=');
    if (eq != std::string_view::npos && pair.substr(0, eq) == key) {
      return UrlDecode(pair.substr(eq + 1));
    }
    if (amp == std::string_view::npos) break;
    pos = amp + 1;
  }
  return "";
}

HttpServer::HttpServer(const core::Engine* engine,
                       const rdf::TermDictionary* dict,
                       HttpServerOptions options)
    : engine_(engine), dict_(dict), options_(std::move(options)) {
  if (options_.num_workers == 0) options_.num_workers = 1;
}

HttpServer::HttpServer(core::Engine* engine, rdf::TermDictionary* dict,
                       HttpServerOptions options)
    : HttpServer(static_cast<const core::Engine*>(engine),
                 static_cast<const rdf::TermDictionary*>(dict),
                 std::move(options)) {
  mutable_engine_ = engine;
  mutable_dict_ = dict;
}

HttpServer::~HttpServer() { Stop(); }

Status HttpServer::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("server already running");
  }
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal("socket(): " + std::string(std::strerror(errno)));
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad listen address: " + options_.host);
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status st =
        Status::Internal("bind(): " + std::string(std::strerror(errno)));
    ::close(fd);
    return st;
  }
  if (::listen(fd, 64) != 0) {
    Status st =
        Status::Internal("listen(): " + std::string(std::strerror(errno)));
    ::close(fd);
    return st;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len);
  bound_port_ = ntohs(bound.sin_port);
  listen_fd_.store(fd, std::memory_order_release);

  running_.store(true, std::memory_order_release);
  workers_.reserve(options_.num_workers);
  for (uint32_t i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  acceptor_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void HttpServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  // Unblock accept() by closing the listening socket.
  int fd = listen_fd_.exchange(-1, std::memory_order_acq_rel);
  if (fd >= 0) {
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
  queue_cv_.notify_all();
  if (acceptor_.joinable()) acceptor_.join();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
  workers_.clear();
  // Any connection still queued gets a clean 503 instead of a dropped
  // socket.
  std::deque<int> leftover;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    leftover.swap(pending_);
  }
  for (int fd : leftover) {
    HttpResponse busy{503, "application/json",
                      ErrorBody("shutting_down", "server stopping")};
    busy.retry_after_seconds = 1;
    WriteResponse(fd, busy);
    ::close(fd);
  }
}

void HttpServer::AcceptLoop() {
  while (running_.load(std::memory_order_acquire)) {
    int listen_fd = listen_fd_.load(std::memory_order_acquire);
    if (listen_fd < 0) break;
    int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (!running_.load(std::memory_order_acquire)) break;
      continue;  // transient accept failure
    }
    bool enqueued = false;
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      if (pending_.size() < options_.max_queued_connections) {
        pending_.push_back(fd);
        enqueued = true;
      }
    }
    if (enqueued) {
      queue_cv_.notify_one();
    } else {
      // Backpressure: reject instead of queueing without bound.
      HttpResponse busy{503, "application/json",
                        ErrorBody("overloaded", "connection queue full")};
      busy.retry_after_seconds = 1;
      WriteResponse(fd, busy);
      ::close(fd);
    }
  }
}

void HttpServer::WorkerLoop() {
  while (true) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] {
        return !pending_.empty() ||
               !running_.load(std::memory_order_acquire);
      });
      if (pending_.empty()) return;  // stopping and drained
      fd = pending_.front();
      pending_.pop_front();
    }
    HandleConnection(fd);
  }
}

void HttpServer::HandleConnection(int fd) {
  // Injected read failure: the connection is answered with the mapped
  // HTTP error without ever touching the socket's receive side —
  // deterministic stand-in for a client that errors out mid-request.
  if (Status st = g_fp_http_read.Check(); !st.ok()) {
    WriteResponse(fd, ErrorResponse(st));
    ::close(fd);
    return;
  }
  HttpRequest request;
  switch (ReadRequest(fd, options_.max_request_bytes,
                      options_.recv_timeout_ms, &request)) {
    case ReadOutcome::kOk:
      WriteResponse(fd, Route(request));
      break;
    case ReadOutcome::kTooLarge:
      WriteResponse(
          fd, HttpResponse{413, "application/json",
                           ErrorBody("payload_too_large",
                                     "request exceeds max_request_bytes")});
      break;
    case ReadOutcome::kTimeout:
      WriteResponse(
          fd, HttpResponse{408, "application/json",
                           ErrorBody("request_timeout",
                                     "no complete request within the "
                                     "receive deadline")});
      break;
    case ReadOutcome::kMalformed:
      WriteResponse(fd,
                    HttpResponse{400, "application/json",
                                 ErrorBody("bad_request",
                                           "malformed request")});
      break;
  }
  ::close(fd);
}

HttpResponse HttpServer::Route(const HttpRequest& request) const {
  if (request.path == "/sparql") {
    std::string query_text;
    if (request.method == "GET") {
      query_text = FormValue(request.query, "query");
    } else if (request.method == "POST") {
      if (request.content_type.find("application/x-www-form-urlencoded") !=
          std::string::npos) {
        query_text = FormValue(request.body, "query");
        // Clients (curl included) default to the form content type while
        // sending plain SPARQL text; fall back to the raw body.
        if (query_text.empty()) query_text = request.body;
      } else {
        query_text = request.body;  // application/sparql-query or raw text
      }
    } else {
      return {405, "application/json",
              ErrorBody("method_not_allowed", "use GET or POST")};
    }
    if (query_text.empty()) {
      return {400, "application/json",
              ErrorBody("missing_query", "no query parameter or body")};
    }
    return ExecuteQuery(query_text);
  }
  if (request.path == "/update") {
    if (request.method != "POST") {
      return {405, "application/json",
              ErrorBody("method_not_allowed", "use POST")};
    }
    return UpdateResponse(request);
  }
  if (request.path == "/stats") {
    if (request.method != "GET") {
      return {405, "application/json",
              ErrorBody("method_not_allowed", "use GET")};
    }
    return StatsResponse();
  }
  if (request.path == "/healthz") {
    if (request.method != "GET") {
      return {405, "application/json",
              ErrorBody("method_not_allowed", "use GET")};
    }
    return HealthResponse();
  }
  return {404, "application/json",
          ErrorBody("not_found", "unknown path: " + request.path)};
}

HttpResponse HttpServer::ExecuteQuery(const std::string& query_text) const {
  auto execution = engine_->ExecuteText(query_text);
  if (!execution.ok()) {
    return ErrorResponse(execution.status());
  }
  // SPARQL results JSON with a non-standard "stats" sibling — the whole
  // point of the redesigned Execute() is that per-query stats ride the
  // result, so the endpoint exposes them.
  std::string results = ResultToJson(execution->result, *dict_);
  const core::Engine::QueryStats& qs = execution->stats;
  JsonWriter w;
  w.BeginObject();
  w.Key("wall_seconds").Number(qs.wall_seconds);
  w.Key("cpu_seconds").Number(qs.cpu_seconds);
  w.Key("program_source").String(ProgramSourceName(qs.program_source));
  w.Key("planned").Bool(qs.planned);
  w.Key("rounds").Number(static_cast<uint64_t>(qs.fixpoint.rounds));
  w.Key("rows").Number(static_cast<uint64_t>(execution->result.rows.size()));
  w.EndObject();
  // Splice: results ends with '}', replace with ',"stats":{...}}'.
  results.pop_back();
  results += ",\"stats\":" + w.Take() + "}";
  return {200, "application/sparql-results+json", std::move(results)};
}

HttpResponse HttpServer::UpdateResponse(const HttpRequest& request) const {
  if (mutable_engine_ == nullptr) {
    return {403, "application/json",
            ErrorBody("read_only",
                      "server was built over a const engine; updates are "
                      "disabled")};
  }
  if (request.body.empty()) {
    return {400, "application/json",
            ErrorBody("missing_body", "no Turtle payload in request body")};
  }
  std::string op = FormValue(request.query, "op");
  if (op.empty()) op = "insert";
  if (op != "insert" && op != "delete") {
    return {400, "application/json",
            ErrorBody("bad_op", "op must be 'insert' or 'delete'")};
  }
  // The payload interns terms into the engine's own dictionary so the
  // resulting triples carry the TermIds ApplyUpdate expects. Interning
  // for a delete of unknown terms is harmless: the triples simply will
  // not match and the update nets out as a no-op.
  rdf::Graph staged;
  Status parse = rdf::ParseTurtleIntoGraph(request.body, mutable_dict_,
                                           &staged);
  if (!parse.ok()) {
    // The staged graph dies here: nothing reached the engine, so the
    // dataset, generation, and version counters are untouched.
    return ErrorResponse(parse);
  }
  std::vector<rdf::Triple> empty;
  const std::vector<rdf::Triple>& triples = staged.triples();
  core::Engine::UpdateStats us;
  Status st = op == "insert"
                  ? mutable_engine_->ApplyUpdate(triples, empty, &us)
                  : mutable_engine_->ApplyUpdate(empty, triples, &us);
  if (!st.ok()) {
    return ErrorResponse(st);
  }
  JsonWriter w;
  w.BeginObject();
  w.Key("inserted").Number(static_cast<uint64_t>(us.inserted));
  w.Key("deleted").Number(static_cast<uint64_t>(us.deleted));
  w.Key("noop").Bool(us.noop);
  w.Key("incremental").Bool(us.incremental);
  w.Key("wall_ms").Number(us.wall_seconds * 1e3);
  w.EndObject();
  return {200, "application/json", w.Take()};
}

HttpResponse HttpServer::StatsResponse() const {
  core::Engine::EngineStats s = engine_->stats();
  core::Engine::StorageStats storage = engine_->edb_storage();
  JsonWriter w;
  w.BeginObject();
  w.Key("queries").Number(s.queries);
  w.Key("failures").Number(s.failures);
  w.Key("rejected").Number(s.rejected);
  w.Key("in_flight").Number(s.in_flight);
  w.Key("queued").Number(s.queued);
  w.Key("degraded").Bool(s.degraded);
  w.Key("degrade_entries").Number(s.degrade_entries);
  w.Key("degrade_exits").Number(s.degrade_exits);
  w.Key("program_hits").Number(s.program_hits);
  w.Key("program_rebinds").Number(s.program_rebinds);
  w.Key("program_misses").Number(s.program_misses);
  w.Key("program_evictions").Number(s.program_evictions);
  w.Key("stratum_hits").Number(s.stratum_hits);
  w.Key("stratum_misses").Number(s.stratum_misses);
  w.Key("stratum_evictions").Number(s.stratum_evictions);
  w.Key("tuples_restored").Number(s.tuples_restored);
  w.Key("invalidations").Number(s.invalidations);
  w.Key("plans_computed").Number(s.plans_computed);
  w.Key("plan_cache_hits").Number(s.plan_cache_hits);
  w.Key("rounds").Number(s.rounds);
  w.Key("parallel_rounds").Number(s.parallel_rounds);
  w.Key("naive_rounds_sharded").Number(s.naive_rounds_sharded);
  w.Key("staged_tuples_merged").Number(s.staged_tuples_merged);
  w.Key("merge_fanout_width").Number(s.merge_fanout_width);
  w.Key("interning_contention").Number(s.interning_contention);
  w.Key("tc_kernels_hit").Number(s.tc_kernels_hit);
  w.Key("tc_dense_frontiers").Number(s.tc_dense_frontiers);
  w.Key("tc_sparse_frontiers").Number(s.tc_sparse_frontiers);
  w.Key("updates").Number(s.updates);
  w.Key("update_noops").Number(s.update_noops);
  w.Key("strata_incremental").Number(s.strata_incremental);
  w.Key("strata_dred").Number(s.strata_dred);
  w.Key("incremental_fallbacks").Number(s.incremental_fallbacks);
  w.Key("tuples_overdeleted").Number(s.tuples_overdeleted);
  w.Key("tuples_rederived").Number(s.tuples_rederived);
  w.Key("storage").BeginObject();
  w.Key("tuples").Number(storage.tuples);
  w.Key("bytes").Number(storage.bytes);
  w.EndObject();
  w.EndObject();
  return {200, "application/json", w.Take()};
}

HttpResponse HttpServer::HealthResponse() const {
  // Degraded is still serving (shed caches, tightened admission), so it
  // keeps HTTP 200 — load balancers should not eject a node that is
  // deliberately riding out an overload — but the status string flips
  // so operators and probes can see it.
  const bool loaded = engine_->loaded();
  const bool degraded = loaded && engine_->degraded();
  JsonWriter w;
  w.BeginObject();
  w.Key("status").String(!loaded ? "loading" : degraded ? "degraded" : "ok");
  w.Key("loaded").Bool(loaded);
  w.Key("degraded").Bool(degraded);
  w.EndObject();
  HttpResponse response{loaded ? 200 : 503, "application/json", w.Take()};
  if (!loaded) response.retry_after_seconds = 1;
  return response;
}

}  // namespace sparqlog::server
