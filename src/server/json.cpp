#include "server/json.h"

#include <cstdio>

#include "rdf/term.h"

namespace sparqlog::server {

void AppendJsonString(std::string_view s, std::string* out) {
  out->push_back('"');
  for (unsigned char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\b': *out += "\\b"; break;
      case '\f': *out += "\\f"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(static_cast<char>(c));
        }
    }
  }
  out->push_back('"');
}

std::string JsonString(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  AppendJsonString(s, &out);
  return out;
}

JsonWriter& JsonWriter::BeginObject() {
  Comma();
  out_.push_back('{');
  need_comma_ = false;
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  out_.push_back('}');
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  Comma();
  out_.push_back('[');
  need_comma_ = false;
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  out_.push_back(']');
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view key) {
  Comma();
  AppendJsonString(key, &out_);
  out_.push_back(':');
  need_comma_ = false;
  return *this;
}

JsonWriter& JsonWriter::String(std::string_view value) {
  Comma();
  AppendJsonString(value, &out_);
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::Number(uint64_t value) {
  Comma();
  out_ += std::to_string(value);
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::Number(double value) {
  Comma();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  out_ += buf;
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::Bool(bool value) {
  Comma();
  out_ += value ? "true" : "false";
  need_comma_ = true;
  return *this;
}

void JsonWriter::Comma() {
  if (need_comma_) out_.push_back(',');
}

namespace {

/// One binding object: {"type":"uri"|"literal"|"bnode","value":...} plus
/// "xml:lang" / "datatype" for tagged/typed literals.
void AppendTermBinding(const rdf::Term& term, JsonWriter* w) {
  w->BeginObject();
  switch (term.kind) {
    case rdf::TermKind::kIri:
      w->Key("type").String("uri");
      break;
    case rdf::TermKind::kBlank:
      w->Key("type").String("bnode");
      break;
    default:
      w->Key("type").String("literal");
      break;
  }
  w->Key("value").String(term.lexical);
  if (term.is_literal()) {
    if (!term.lang.empty()) w->Key("xml:lang").String(term.lang);
    if (!term.datatype.empty()) w->Key("datatype").String(term.datatype);
  }
  w->EndObject();
}

}  // namespace

std::string ResultToJson(const eval::QueryResult& result,
                         const rdf::TermDictionary& dict) {
  JsonWriter w;
  w.BeginObject();
  if (result.is_ask) {
    w.Key("head").BeginObject().EndObject();
    w.Key("boolean").Bool(result.ask_value);
    w.EndObject();
    return w.Take();
  }
  w.Key("head").BeginObject().Key("vars").BeginArray();
  for (const std::string& col : result.columns) w.String(col);
  w.EndArray().EndObject();
  w.Key("results").BeginObject().Key("bindings").BeginArray();
  for (const auto& row : result.rows) {
    w.BeginObject();
    for (size_t i = 0; i < row.size() && i < result.columns.size(); ++i) {
      if (row[i] == rdf::TermDictionary::kUndef) continue;
      w.Key(result.columns[i]);
      AppendTermBinding(dict.get(row[i]), &w);
    }
    w.EndObject();
  }
  w.EndArray().EndObject();
  w.EndObject();
  return w.Take();
}

}  // namespace sparqlog::server
