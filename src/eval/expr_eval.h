#pragma once

#include <functional>
#include <optional>

#include "rdf/dictionary.h"
#include "sparql/ast.h"

/// \file expr_eval.h
/// SPARQL 1.1 expression evaluation with the standard's three-valued
/// logic (value / error) and effective boolean value (EBV) rules. This
/// single evaluator backs FILTER in the reference engine, ORDER BY keys,
/// and the Datalog engine's embedded filter-expression builtins ("letting
/// Vadalog take care of complex filter constraints", §5.1).

namespace sparqlog::eval {

/// Outcome of evaluating an expression to an effective boolean value.
enum class EBV : int8_t { kFalse = 0, kTrue = 1, kError = -1 };

/// Variable resolution callback: returns the bound term or kUndef.
using VarLookup = std::function<rdf::TermId(const std::string&)>;

/// Expression evaluator. Non-const because value-producing builtins
/// (STR, UCASE, arithmetic, ...) intern fresh literals.
class ExprEvaluator {
 public:
  explicit ExprEvaluator(rdf::TermDictionary* dict) : dict_(dict) {}

  /// Evaluates `e` and coerces to an effective boolean value.
  EBV EvalEBV(const sparql::Expr& e, const VarLookup& lookup);

  /// Evaluates `e` to a term. nullopt = error. kUndef = unbound variable
  /// (only a variable reference can produce it).
  std::optional<rdf::TermId> EvalTerm(const sparql::Expr& e,
                                      const VarLookup& lookup);

  rdf::TermDictionary* dict() { return dict_; }

 private:
  EBV TermToEBV(rdf::TermId id) const;
  EBV Compare(sparql::CompareOp op, rdf::TermId a, rdf::TermId b) const;
  std::optional<rdf::TermId> Arith(sparql::ArithOp op, rdf::TermId a,
                                   rdf::TermId b);
  std::optional<rdf::TermId> EvalBuiltin(const sparql::Expr& e,
                                         const VarLookup& lookup);

  rdf::TermDictionary* dict_;
};

/// SPARQL operator-level comparison of two terms. Returns nullopt when the
/// comparison is a type error (e.g. `<` between IRIs).
std::optional<int> CompareTermsSparql(const rdf::TermDictionary& dict,
                                      rdf::TermId a, rdf::TermId b);

/// Total order for ORDER BY per the SPARQL spec's ordering recipe:
/// unbound < blank nodes < IRIs < literals; numeric literals by value,
/// string-ish literals lexically, everything else by rendered form.
int CompareForOrder(const rdf::TermDictionary& dict, rdf::TermId a,
                    rdf::TermId b);

}  // namespace sparqlog::eval
