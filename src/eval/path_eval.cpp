#include "eval/path_eval.h"

#include <algorithm>
#include <map>
#include <unordered_set>

namespace sparqlog::eval {

using rdf::TermId;
using sparql::Path;
using sparql::PathKind;
using sparql::PathPtr;

namespace {

/// Non-owning PathPtr view of a node we already hold a reference to.
PathPtr NonOwning(const Path& p) {
  return PathPtr(std::shared_ptr<const Path>(), &p);
}

}  // namespace

void PathEvaluator::Dedup(PairList* pairs) {
  std::sort(pairs->begin(), pairs->end());
  pairs->erase(std::unique(pairs->begin(), pairs->end()), pairs->end());
}

PairList PathEvaluator::ZeroPairs(std::optional<TermId> s,
                                  std::optional<TermId> o) const {
  PairList out;
  if (s && o) {
    if (*s == *o) out.emplace_back(*s, *s);
    return out;
  }
  if (s) {
    // (s, s): holds whether or not s occurs in the graph (Table 5 rules
    // 2/4/6 — the constant-endpoint case previous translations missed).
    out.emplace_back(*s, *s);
    return out;
  }
  if (o) {
    out.emplace_back(*o, *o);
    return out;
  }
  for (TermId n : graph_.SubjectsAndObjects()) out.emplace_back(n, n);
  return out;
}

Status PathEvaluator::StepFrom(const Path& path, TermId x,
                               std::vector<TermId>* out) {
  ++inner_step_evals_;
  SPARQLOG_ASSIGN_OR_RETURN(PairList pairs, EvalImpl(path, x, std::nullopt));
  std::unordered_set<TermId> seen;
  for (const auto& [from, to] : pairs) {
    if (from == x && seen.insert(to).second) out->push_back(to);
  }
  return Status::OK();
}

Result<std::vector<TermId>> PathEvaluator::ReachOneOrMore(const Path& path,
                                                          TermId start) {
  std::vector<TermId> reached;
  std::unordered_set<TermId> visited;
  std::vector<TermId> frontier{start};
  bool first = true;
  while (!frontier.empty()) {
    SPARQLOG_RETURN_NOT_OK(ctx_->CheckBudget());
    std::vector<TermId> next;
    for (TermId x : frontier) {
      std::vector<TermId> step;
      SPARQLOG_RETURN_NOT_OK(StepFrom(path, x, &step));
      cost_.Charge(step.size());
      for (TermId y : step) {
        if (visited.insert(y).second) {
          reached.push_back(y);
          next.push_back(y);
          ctx_->AddTuples(1);
        }
      }
    }
    frontier = std::move(next);
    first = false;
  }
  (void)first;
  return reached;
}

Result<PathEvaluator::StepIndex> PathEvaluator::MaterializeStep(
    const Path& path) {
  ++inner_step_evals_;
  SPARQLOG_ASSIGN_OR_RETURN(PairList pairs,
                            EvalImpl(path, std::nullopt, std::nullopt));
  Dedup(&pairs);  // the closure is set-semantics; sorted → deterministic BFS
  StepIndex index;
  for (const auto& [from, to] : pairs) index[from].push_back(to);
  return index;
}

Result<std::vector<TermId>> PathEvaluator::ReachFromIndex(
    const StepIndex& index, TermId start,
    const std::vector<TermId>& start_step) {
  std::vector<TermId> reached;
  std::unordered_set<TermId> visited;
  std::vector<TermId> frontier;
  auto expand = [&](const std::vector<TermId>& succs,
                    std::vector<TermId>* next) {
    cost_.Charge(succs.size());
    for (TermId y : succs) {
      if (visited.insert(y).second) {
        reached.push_back(y);
        next->push_back(y);
        ctx_->AddTuples(1);
      }
    }
  };
  auto it = index.find(start);
  expand(it != index.end() ? it->second : start_step, &frontier);
  while (!frontier.empty()) {
    SPARQLOG_RETURN_NOT_OK(ctx_->CheckBudget());
    std::vector<TermId> next;
    for (TermId x : frontier) {
      auto jt = index.find(x);
      if (jt != index.end()) expand(jt->second, &next);
    }
    frontier = std::move(next);
  }
  return reached;
}

Result<PairList> PathEvaluator::Eval(const Path& path,
                                     std::optional<TermId> s,
                                     std::optional<TermId> o) {
  SPARQLOG_ASSIGN_OR_RETURN(PairList pairs, EvalImpl(path, s, o));
  // EvalImpl may over-produce when only one endpoint could be pushed down;
  // enforce both here.
  PairList out;
  out.reserve(pairs.size());
  for (const auto& p : pairs) {
    if (s && p.first != *s) continue;
    if (o && p.second != *o) continue;
    out.push_back(p);
  }
  return out;
}

Result<PairList> PathEvaluator::EvalImpl(const Path& path,
                                         std::optional<TermId> s,
                                         std::optional<TermId> o) {
  SPARQLOG_RETURN_NOT_OK(ctx_->CheckBudget());
  switch (path.kind) {
    case PathKind::kLink: {
      PairList out;
      graph_.Match(s, path.iri, o, [&](const rdf::Triple& t) {
        out.emplace_back(t.s, t.o);
      });
      ctx_->AddTuples(out.size());
      cost_.Charge(out.size());
      return out;
    }
    case PathKind::kInverse: {
      SPARQLOG_ASSIGN_OR_RETURN(PairList inner, EvalImpl(*path.left, o, s));
      PairList out;
      out.reserve(inner.size());
      for (const auto& [x, y] : inner) out.emplace_back(y, x);
      return out;
    }
    case PathKind::kSequence: {
      SPARQLOG_ASSIGN_OR_RETURN(PairList left,
                                EvalImpl(*path.left, s, std::nullopt));
      PairList out;
      std::map<TermId, PairList> cache;
      for (const auto& [x, mid] : left) {
        SPARQLOG_RETURN_NOT_OK(ctx_->CheckBudget());
        auto it = cache.find(mid);
        if (it == cache.end()) {
          SPARQLOG_ASSIGN_OR_RETURN(PairList right,
                                    EvalImpl(*path.right, mid, o));
          it = cache.emplace(mid, std::move(right)).first;
        }
        for (const auto& [m2, z] : it->second) {
          if (m2 != mid) continue;
          out.emplace_back(x, z);
          ctx_->AddTuples(1);
        }
        cost_.Charge(it->second.size());
      }
      return out;
    }
    case PathKind::kAlternative: {
      SPARQLOG_ASSIGN_OR_RETURN(PairList a, EvalImpl(*path.left, s, o));
      SPARQLOG_ASSIGN_OR_RETURN(PairList b, EvalImpl(*path.right, s, o));
      a.insert(a.end(), b.begin(), b.end());
      // Quirk: Virtuoso loses the duplicates an alternative path should
      // produce (Appendix D.2.3).
      if (quirks_.alternative_dedup) Dedup(&a);
      return a;
    }
    case PathKind::kZeroOrOne: {
      if (quirks_.error_on_two_var_recursive_path && !s && !o) {
        return Status::NotSupported("transitive start not given");
      }
      SPARQLOG_ASSIGN_OR_RETURN(PairList one, EvalImpl(*path.left, s, o));
      PairList out = ZeroPairs(s, o);
      one.insert(one.end(), out.begin(), out.end());
      Dedup(&one);  // always set semantics (Table 5)
      return one;
    }
    case PathKind::kOneOrMore: {
      if (quirks_.error_on_two_var_recursive_path && !s && !o) {
        return Status::NotSupported("transitive start not given");
      }
      if (quirks_.plus_drops_reflexive) {
        // Quirk: p+ computed as p* minus reflexive pairs — loses (x, x)
        // results on cyclic paths.
        auto star = Path::ZeroOrMore(path.left);
        EngineQuirks saved = quirks_;
        quirks_.plus_drops_reflexive = false;
        auto star_pairs = EvalImpl(*star, s, o);
        quirks_ = saved;
        SPARQLOG_RETURN_NOT_OK(star_pairs.status());
        PairList filtered;
        for (const auto& p : *star_pairs) {
          if (p.first != p.second) filtered.push_back(p);
        }
        return filtered;
      }
      PairList out;
      if (quirks_.error_on_two_var_recursive_path) {
        // Quirk engines push each frontier node into the inner path —
        // materializing the step relation would evaluate it with both
        // endpoints unbound, which this quirk must reject for recursive
        // inner paths. Keep the per-node walk for them.
        if (s) {
          SPARQLOG_ASSIGN_OR_RETURN(std::vector<TermId> reach,
                                    ReachOneOrMore(*path.left, *s));
          for (TermId y : reach) out.emplace_back(*s, y);
          return out;
        }
        auto inv = Path::Inverse(NonOwning(*path.left));
        SPARQLOG_ASSIGN_OR_RETURN(std::vector<TermId> reach,
                                  ReachOneOrMore(*inv, *o));
        for (TermId x : reach) out.emplace_back(x, *o);
        return out;
      }
      // Materialize the one-step relation once and BFS over the index —
      // re-running the inner path per frontier node is quadratic in the
      // closure size.
      SPARQLOG_ASSIGN_OR_RETURN(StepIndex step, MaterializeStep(*path.left));
      if (s) {
        std::vector<TermId> probe;
        if (step.find(*s) == step.end()) {
          // A constant start outside the materialized relation can still
          // step via zero-admitting inner paths (e.g. (p?)+ from a term
          // not in the graph) — one pushed-down probe covers it.
          SPARQLOG_RETURN_NOT_OK(StepFrom(*path.left, *s, &probe));
        }
        SPARQLOG_ASSIGN_OR_RETURN(std::vector<TermId> reach,
                                  ReachFromIndex(step, *s, probe));
        for (TermId y : reach) out.emplace_back(*s, y);
        return out;
      }
      if (o) {
        // Reverse adjacency from the same forward relation — no second
        // full evaluation for the inverse direction.
        StepIndex rev;
        for (const auto& [x, succs] : step) {
          for (TermId y : succs) rev[y].push_back(x);
        }
        for (auto& [y, preds] : rev) {
          std::sort(preds.begin(), preds.end());
        }
        std::vector<TermId> probe;
        if (rev.find(*o) == rev.end()) {
          auto inv = Path::Inverse(NonOwning(*path.left));
          SPARQLOG_RETURN_NOT_OK(StepFrom(*inv, *o, &probe));
        }
        SPARQLOG_ASSIGN_OR_RETURN(std::vector<TermId> reach,
                                  ReachFromIndex(rev, *o, probe));
        for (TermId x : reach) out.emplace_back(x, *o);
        return out;
      }
      const std::vector<TermId> no_probe;
      for (TermId n : graph_.SubjectsAndObjects()) {
        SPARQLOG_ASSIGN_OR_RETURN(std::vector<TermId> reach,
                                  ReachFromIndex(step, n, no_probe));
        for (TermId y : reach) out.emplace_back(n, y);
      }
      Dedup(&out);
      return out;
    }
    case PathKind::kZeroOrMore: {
      if (quirks_.error_on_two_var_recursive_path && !s && !o) {
        return Status::NotSupported("transitive start not given");
      }
      if (quirks_.star_two_var_pairwise && !s && !o) {
        // Quirk: no sharing across targets — one reachability probe per
        // candidate (source, target) pair.
        PairList out;
        const auto& nodes = graph_.SubjectsAndObjects();
        auto plus = Path::OneOrMore(path.left);
        for (TermId src : nodes) {
          for (TermId dst : nodes) {
            SPARQLOG_RETURN_NOT_OK(ctx_->CheckBudget());
            if (src == dst) {
              out.emplace_back(src, src);
              continue;
            }
            SPARQLOG_ASSIGN_OR_RETURN(PairList probe,
                                      EvalImpl(*plus, src, dst));
            bool hit = false;
            for (const auto& pr : probe) {
              if (pr.first == src && pr.second == dst) hit = true;
            }
            if (hit) out.emplace_back(src, dst);
          }
        }
        Dedup(&out);
        return out;
      }
      auto plus = Path::OneOrMore(path.left);
      SPARQLOG_ASSIGN_OR_RETURN(PairList out, EvalImpl(*plus, s, o));
      PairList zero = ZeroPairs(s, o);
      out.insert(out.end(), zero.begin(), zero.end());
      Dedup(&out);
      return out;
    }
    case PathKind::kNegated: {
      PairList out;
      // Forward component: only when forward members exist (W3C
      // decomposition of mixed negated property sets).
      if (!path.neg_fwd.empty()) {
        graph_.Match(s, std::nullopt, o, [&](const rdf::Triple& t) {
          for (TermId p : path.neg_fwd) {
            if (t.p == p) return;
          }
          out.emplace_back(t.s, t.o);
        });
      }
      if (!path.neg_bwd.empty()) {
        graph_.Match(o, std::nullopt, s, [&](const rdf::Triple& t) {
          for (TermId p : path.neg_bwd) {
            if (t.p == p) return;
          }
          out.emplace_back(t.o, t.s);
        });
      }
      ctx_->AddTuples(out.size());
      cost_.Charge(out.size());
      return out;
    }
    case PathKind::kExactly: {
      if (path.count == 0) return ZeroPairs(s, o);
      // Left-fold a chain of `count` copies with midpoint caching.
      SPARQLOG_ASSIGN_OR_RETURN(
          PairList acc,
          EvalImpl(*path.left, s,
                   path.count == 1 ? o : std::optional<TermId>()));
      for (uint32_t k = 1; k < path.count; ++k) {
        bool last = (k + 1 == path.count);
        PairList next;
        std::map<TermId, PairList> cache;
        for (const auto& [x, mid] : acc) {
          SPARQLOG_RETURN_NOT_OK(ctx_->CheckBudget());
          auto it = cache.find(mid);
          if (it == cache.end()) {
            SPARQLOG_ASSIGN_OR_RETURN(
                PairList step,
                EvalImpl(*path.left, mid,
                         last ? o : std::optional<TermId>()));
            it = cache.emplace(mid, std::move(step)).first;
          }
          for (const auto& [m2, z] : it->second) {
            if (m2 != mid) continue;
            next.emplace_back(x, z);
            ctx_->AddTuples(1);
          }
        }
        acc = std::move(next);
      }
      return acc;
    }
    case PathKind::kNOrMore: {
      if (quirks_.error_on_two_var_recursive_path && !s && !o) {
        return Status::NotSupported("transitive start not given");
      }
      if (path.count == 0) {
        auto star = Path::ZeroOrMore(path.left);
        return EvalImpl(*star, s, o);
      }
      if (path.count == 1) {
        auto plus = Path::OneOrMore(path.left);
        return EvalImpl(*plus, s, o);
      }
      // p{n,} = p{n-1} / p+ with set semantics overall.
      auto prefix = Path::Counted(PathKind::kExactly, path.left,
                                  path.count - 1);
      auto plus = Path::OneOrMore(path.left);
      auto seq = Path::Sequence(prefix, plus);
      SPARQLOG_ASSIGN_OR_RETURN(PairList out, EvalImpl(*seq, s, o));
      Dedup(&out);
      return out;
    }
    case PathKind::kUpTo: {
      // p{0,n} = zero-length ∪ p{1} ∪ ... ∪ p{n}, set semantics.
      PairList out = ZeroPairs(s, o);
      for (uint32_t k = 1; k <= path.count; ++k) {
        auto exact = Path::Counted(PathKind::kExactly, path.left, k);
        SPARQLOG_ASSIGN_OR_RETURN(PairList step, EvalImpl(*exact, s, o));
        out.insert(out.end(), step.begin(), step.end());
      }
      Dedup(&out);
      return out;
    }
  }
  return Status::Internal("unhandled path kind");
}

}  // namespace sparqlog::eval
