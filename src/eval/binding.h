#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "rdf/dictionary.h"

/// \file binding.h
/// Solution mappings for the reference evaluator and the shared result
/// format all engines in the repository produce (so the compliance harness
/// can compare them directly).

namespace sparqlog::eval {

/// Query-scoped variable table: maps variable names to dense slots.
class VarTable {
 public:
  uint32_t SlotOf(const std::string& name);
  /// Slot if known; UINT32_MAX otherwise.
  uint32_t Find(const std::string& name) const;
  const std::string& NameOf(uint32_t slot) const { return names_[slot]; }
  size_t size() const { return names_.size(); }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, uint32_t> index_;
};

/// A solution mapping over a VarTable: kUndef = variable not in domain.
using Solution = std::vector<rdf::TermId>;

/// A multiset of solution mappings.
using Multiset = std::vector<Solution>;

/// True if the mappings agree on every variable bound in both.
bool Compatible(const Solution& a, const Solution& b);

/// Merge of two compatible mappings (non-undef wins).
Solution MergeSolutions(const Solution& a, const Solution& b);

/// True if dom(a) ∩ dom(b) is empty (used by MINUS).
bool DisjointDomains(const Solution& a, const Solution& b);

/// Uniform result representation across engines. Rows are tuples of
/// TermIds aligned with `columns`; kUndef marks unbound cells. ASK queries
/// set `is_ask` / `ask_value` and leave the table empty.
struct QueryResult {
  std::vector<std::string> columns;
  std::vector<std::vector<rdf::TermId>> rows;
  bool is_ask = false;
  bool ask_value = false;

  /// Canonical form for multiset comparison: rows sorted lexicographically.
  /// TermIds are stable within a process-wide shared dictionary.
  std::vector<std::vector<rdf::TermId>> SortedRows() const;

  /// Multiset equality against another result (column order must match;
  /// row order is ignored).
  bool SameSolutions(const QueryResult& other) const;

  /// True if every row of this result also occurs in `other` with at least
  /// the same multiplicity (correctness in the BeSEPPI sense).
  bool SubsetOf(const QueryResult& other) const;

  /// Human-readable table for examples and debugging.
  std::string ToString(const rdf::TermDictionary& dict,
                       size_t max_rows = 25) const;
};

}  // namespace sparqlog::eval
