#pragma once

#include <chrono>
#include <cstdint>

/// \file quirk_config.h
/// Deviation knobs for the quirk-injected baseline ("Virtuoso" in the
/// experiments). Each flag reproduces one failure mode the paper observed
/// (§6.2, Appendix D.2.3); with all flags off, the evaluator is the
/// standard-compliant reference engine.

namespace sparqlog::eval {

struct EngineQuirks {
  /// Calibrated per-binding cost of the simulated comparator engine, in
  /// nanoseconds. Our direct evaluator is an in-process C++ engine with
  /// far smaller constants than the server systems the paper measured;
  /// the cost model restores realistic per-solution overheads (Jena's
  /// iterator/Binding machinery ~ microseconds per binding, Virtuoso's
  /// C engine a few hundred nanoseconds) so relative timings — and who
  /// hits the timeout — are comparable. See DESIGN.md §3 and
  /// EXPERIMENTS.md for calibration notes. Zero disables the model.
  uint32_t per_binding_overhead_ns = 0;
  /// "Transitive start not given": error on ?/*/+ (and unbounded counted)
  /// property paths whose endpoints are both unbound variables.
  bool error_on_two_var_recursive_path = false;

  /// One-or-more evaluated as zero-or-more minus reflexive pairs: loses
  /// the start node on cyclic paths (10 incomplete BeSEPPI results).
  bool plus_drops_reflexive = false;

  /// Alternative paths deduplicate (3 incomplete BeSEPPI results: the
  /// duplicates that should be produced are missing).
  bool alternative_dedup = false;

  /// UNION deduplicates (omitting duplicates on FEASIBLE queries).
  bool union_dedup = false;

  /// DISTINCT ignored when the query contains a UNION (wrongly
  /// outputting duplicates on FEASIBLE queries).
  bool ignore_distinct_with_union = false;

  /// Errors out on GRAPH patterns and on complex ORDER BY keys
  /// (the "unable to evaluate, produced an error" FEASIBLE rows).
  bool error_on_graph_and_complex_order = false;

  /// Evaluates zero-or-more paths with two unbound variables by a
  /// pairwise source/target reachability sweep with no sharing across
  /// targets — the catastrophic behaviour behind the "Stardog times out
  /// on query 5" observation of §6.3 (it answers `+` with two variables,
  /// slowly, but dies on `*`).
  bool star_two_var_pairwise = false;
};

/// Applies the per-binding cost model by spinning off accumulated time in
/// ~100 µs slices (so the clock is read rarely on the hot path).
class CostModel {
 public:
  explicit CostModel(uint32_t ns_per_binding) : ns_(ns_per_binding) {}

  void Charge(uint64_t bindings) {
    if (ns_ == 0) return;
    pending_ns_ += bindings * ns_;
    if (pending_ns_ >= 100'000) Drain();
  }

 private:
  void Drain() {
    auto end = std::chrono::steady_clock::now() +
               std::chrono::nanoseconds(pending_ns_);
    pending_ns_ = 0;
    while (std::chrono::steady_clock::now() < end) {
    }
  }

  uint32_t ns_;
  uint64_t pending_ns_ = 0;
};

}  // namespace sparqlog::eval
