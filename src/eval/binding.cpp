#include "eval/binding.h"

#include <algorithm>
#include <map>

namespace sparqlog::eval {

uint32_t VarTable::SlotOf(const std::string& name) {
  auto it = index_.find(name);
  if (it != index_.end()) return it->second;
  uint32_t slot = static_cast<uint32_t>(names_.size());
  names_.push_back(name);
  index_.emplace(name, slot);
  return slot;
}

uint32_t VarTable::Find(const std::string& name) const {
  auto it = index_.find(name);
  return it == index_.end() ? UINT32_MAX : it->second;
}

bool Compatible(const Solution& a, const Solution& b) {
  size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    if (a[i] != rdf::TermDictionary::kUndef &&
        b[i] != rdf::TermDictionary::kUndef && a[i] != b[i]) {
      return false;
    }
  }
  return true;
}

Solution MergeSolutions(const Solution& a, const Solution& b) {
  Solution out(std::max(a.size(), b.size()), rdf::TermDictionary::kUndef);
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i];
  for (size_t i = 0; i < b.size(); ++i) {
    if (b[i] != rdf::TermDictionary::kUndef) out[i] = b[i];
  }
  return out;
}

bool DisjointDomains(const Solution& a, const Solution& b) {
  size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    if (a[i] != rdf::TermDictionary::kUndef &&
        b[i] != rdf::TermDictionary::kUndef) {
      return false;
    }
  }
  return true;
}

std::vector<std::vector<rdf::TermId>> QueryResult::SortedRows() const {
  auto out = rows;
  std::sort(out.begin(), out.end());
  return out;
}

bool QueryResult::SameSolutions(const QueryResult& other) const {
  if (is_ask || other.is_ask) {
    return is_ask == other.is_ask && ask_value == other.ask_value;
  }
  return SortedRows() == other.SortedRows();
}

bool QueryResult::SubsetOf(const QueryResult& other) const {
  if (is_ask || other.is_ask) {
    return is_ask == other.is_ask && ask_value == other.ask_value;
  }
  std::map<std::vector<rdf::TermId>, int> counts;
  for (const auto& r : other.rows) ++counts[r];
  for (const auto& r : rows) {
    auto it = counts.find(r);
    if (it == counts.end() || it->second == 0) return false;
    --it->second;
  }
  return true;
}

std::string QueryResult::ToString(const rdf::TermDictionary& dict,
                                  size_t max_rows) const {
  if (is_ask) return ask_value ? "ASK -> true\n" : "ASK -> false\n";
  std::string out;
  for (size_t i = 0; i < columns.size(); ++i) {
    if (i > 0) out += " | ";
    out += "?" + columns[i];
  }
  out += "\n";
  size_t shown = 0;
  for (const auto& row : rows) {
    if (shown++ >= max_rows) {
      out += "... (" + std::to_string(rows.size()) + " rows total)\n";
      break;
    }
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out += " | ";
      out += row[i] == rdf::TermDictionary::kUndef ? "UNDEF"
                                                   : dict.Render(row[i]);
    }
    out += "\n";
  }
  return out;
}

}  // namespace sparqlog::eval
