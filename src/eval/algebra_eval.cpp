#include "eval/algebra_eval.h"

#include <algorithm>
#include <map>
#include <set>

#include "sparql/features.h"

namespace sparqlog::eval {

using rdf::TermDictionary;
using rdf::TermId;
using sparql::Pattern;
using sparql::PatternKind;
using sparql::Query;
using sparql::QueryForm;
using sparql::TermOrVar;

void AlgebraEvaluator::RegisterPatternVars(const Pattern& p) {
  switch (p.kind) {
    case PatternKind::kEmpty:
      return;
    case PatternKind::kTriple:
      if (p.s.is_var) vars_.SlotOf(p.s.var);
      if (p.p.is_var) vars_.SlotOf(p.p.var);
      if (p.o.is_var) vars_.SlotOf(p.o.var);
      return;
    case PatternKind::kPath:
      if (p.s.is_var) vars_.SlotOf(p.s.var);
      if (p.o.is_var) vars_.SlotOf(p.o.var);
      return;
    case PatternKind::kGraph:
      if (p.graph.is_var) vars_.SlotOf(p.graph.var);
      RegisterPatternVars(*p.left);
      return;
    case PatternKind::kFilter: {
      std::vector<std::string> names;
      p.condition->CollectVars(&names);
      for (const auto& n : names) vars_.SlotOf(n);
      RegisterPatternVars(*p.left);
      return;
    }
    case PatternKind::kBind: {
      vars_.SlotOf(p.bind_var);
      std::vector<std::string> names;
      p.condition->CollectVars(&names);
      for (const auto& n : names) vars_.SlotOf(n);
      RegisterPatternVars(*p.left);
      return;
    }
    case PatternKind::kValues:
      for (const auto& v : p.values_vars) vars_.SlotOf(v);
      return;
    default:
      if (p.left) RegisterPatternVars(*p.left);
      if (p.right) RegisterPatternVars(*p.right);
      return;
  }
}

void AlgebraEvaluator::RegisterVars(const Query& q) {
  if (q.where) RegisterPatternVars(*q.where);
  for (const auto& item : q.select) {
    if (item.is_aggregate) {
      vars_.SlotOf(item.alias);
      if (!item.count_star) vars_.SlotOf(item.var);
    } else {
      vars_.SlotOf(item.var);
    }
  }
  for (const auto& g : q.group_by) vars_.SlotOf(g);
  for (const auto& key : q.order_by) {
    std::vector<std::string> names;
    key.expr->CollectVars(&names);
    for (const auto& n : names) vars_.SlotOf(n);
  }
}

std::optional<TermId> AlgebraEvaluator::ResolveEndpoint(
    const TermOrVar& tv, const Solution& input) {
  if (!tv.is_var) return tv.term;
  uint32_t slot = vars_.Find(tv.var);
  if (slot != UINT32_MAX && input[slot] != TermDictionary::kUndef) {
    return input[slot];
  }
  return std::nullopt;
}

Result<Multiset> AlgebraEvaluator::EvalPattern(const Pattern& p,
                                               const rdf::Graph& active,
                                               const Solution& input) {
  SPARQLOG_RETURN_NOT_OK(ctx_->CheckBudget());
  switch (p.kind) {
    case PatternKind::kEmpty:
      return Multiset{input};

    case PatternKind::kTriple: {
      auto s = ResolveEndpoint(p.s, input);
      auto pred = ResolveEndpoint(p.p, input);
      auto o = ResolveEndpoint(p.o, input);
      Multiset out;
      Status st = Status::OK();
      active.Match(s, pred, o, [&](const rdf::Triple& t) {
        if (!st.ok()) return;
        Solution sol = input;
        auto bind = [&](const TermOrVar& tv, TermId value) -> bool {
          if (!tv.is_var) return tv.term == value;
          uint32_t slot = vars_.Find(tv.var);
          if (sol[slot] != TermDictionary::kUndef) {
            return sol[slot] == value;
          }
          sol[slot] = value;
          return true;
        };
        if (bind(p.s, t.s) && bind(p.p, t.p) && bind(p.o, t.o)) {
          out.push_back(std::move(sol));
          ctx_->AddTuples(1);
          cost_.Charge(1);
        }
        st = ctx_->CheckBudget();
      });
      SPARQLOG_RETURN_NOT_OK(st);
      return out;
    }

    case PatternKind::kPath: {
      auto s = ResolveEndpoint(p.s, input);
      auto o = ResolveEndpoint(p.o, input);
      PathEvaluator path_eval(active, ctx_, quirks_);
      SPARQLOG_ASSIGN_OR_RETURN(PairList pairs,
                                path_eval.Eval(*p.path, s, o));
      Multiset out;
      for (const auto& [x, y] : pairs) {
        Solution sol = input;
        bool ok = true;
        if (p.s.is_var) {
          uint32_t slot = vars_.Find(p.s.var);
          if (sol[slot] == TermDictionary::kUndef) {
            sol[slot] = x;
          } else if (sol[slot] != x) {
            ok = false;
          }
        } else if (p.s.term != x) {
          ok = false;
        }
        if (ok) {
          if (p.o.is_var) {
            uint32_t slot = vars_.Find(p.o.var);
            if (sol[slot] == TermDictionary::kUndef) {
              sol[slot] = y;
            } else if (sol[slot] != y) {
              ok = false;
            }
          } else if (p.o.term != y) {
            ok = false;
          }
        }
        if (ok) out.push_back(std::move(sol));
      }
      return out;
    }

    case PatternKind::kJoin: {
      SPARQLOG_ASSIGN_OR_RETURN(Multiset left,
                                EvalPattern(*p.left, active, input));
      Multiset out;
      for (const Solution& mu : left) {
        SPARQLOG_ASSIGN_OR_RETURN(Multiset right,
                                  EvalPattern(*p.right, active, mu));
        for (Solution& sol : right) out.push_back(std::move(sol));
      }
      return out;
    }

    case PatternKind::kUnion: {
      SPARQLOG_ASSIGN_OR_RETURN(Multiset left,
                                EvalPattern(*p.left, active, input));
      SPARQLOG_ASSIGN_OR_RETURN(Multiset right,
                                EvalPattern(*p.right, active, input));
      for (Solution& sol : right) left.push_back(std::move(sol));
      if (quirks_.union_dedup) {
        // Quirk: duplicates across UNION branches are merged.
        std::sort(left.begin(), left.end());
        left.erase(std::unique(left.begin(), left.end()), left.end());
      }
      return left;
    }

    case PatternKind::kOptional: {
      SPARQLOG_ASSIGN_OR_RETURN(Multiset left,
                                EvalPattern(*p.left, active, input));
      Multiset out;
      for (const Solution& mu : left) {
        // Correlated evaluation of the right side equals the spec's
        // ⟦P1⟧ ⟗ ⟦P2⟧: pushed-down bindings restrict P2 to mappings
        // compatible with mu (including the OPTIONAL-FILTER case, where
        // the filter sees mu's bindings).
        SPARQLOG_ASSIGN_OR_RETURN(Multiset right,
                                  EvalPattern(*p.right, active, mu));
        if (right.empty()) {
          out.push_back(mu);
        } else {
          for (Solution& sol : right) out.push_back(std::move(sol));
        }
      }
      return out;
    }

    case PatternKind::kMinus: {
      SPARQLOG_ASSIGN_OR_RETURN(Multiset left,
                                EvalPattern(*p.left, active, input));
      // MINUS's right side is evaluated independently (no correlation):
      // the disjoint-domain rule needs the full set of mappings.
      Solution empty(vars_.size(), TermDictionary::kUndef);
      SPARQLOG_ASSIGN_OR_RETURN(Multiset right,
                                EvalPattern(*p.right, active, empty));
      Multiset out;
      for (const Solution& mu1 : left) {
        bool keep = true;
        for (const Solution& mu2 : right) {
          if (Compatible(mu1, mu2) && !DisjointDomains(mu1, mu2)) {
            keep = false;
            break;
          }
        }
        if (keep) out.push_back(mu1);
      }
      return out;
    }

    case PatternKind::kFilter: {
      SPARQLOG_ASSIGN_OR_RETURN(Multiset left,
                                EvalPattern(*p.left, active, input));
      Multiset out;
      for (const Solution& mu : left) {
        auto lookup = [&](const std::string& name) -> TermId {
          uint32_t slot = vars_.Find(name);
          return slot == UINT32_MAX ? TermDictionary::kUndef : mu[slot];
        };
        if (expr_eval_.EvalEBV(*p.condition, lookup) == EBV::kTrue) {
          out.push_back(mu);
        }
      }
      return out;
    }

    case PatternKind::kBind: {
      SPARQLOG_ASSIGN_OR_RETURN(Multiset left,
                                EvalPattern(*p.left, active, input));
      uint32_t slot = vars_.Find(p.bind_var);
      Multiset out;
      for (Solution& mu : left) {
        auto lookup = [&](const std::string& name) -> TermId {
          uint32_t s2 = vars_.Find(name);
          return s2 == UINT32_MAX ? TermDictionary::kUndef : mu[s2];
        };
        auto value = expr_eval_.EvalTerm(*p.condition, lookup);
        TermId v = value.value_or(TermDictionary::kUndef);  // error -> unbound
        if (mu[slot] == TermDictionary::kUndef) {
          mu[slot] = v;
        } else if (mu[slot] != v) {
          continue;  // BIND target already bound incompatibly
        }
        out.push_back(std::move(mu));
      }
      return out;
    }

    case PatternKind::kValues: {
      Multiset out;
      for (const auto& row : p.values_rows) {
        Solution sol = input;
        bool ok = true;
        for (size_t i = 0; i < p.values_vars.size(); ++i) {
          if (row[i] == TermDictionary::kUndef) continue;
          uint32_t slot = vars_.Find(p.values_vars[i]);
          if (sol[slot] == TermDictionary::kUndef) {
            sol[slot] = row[i];
          } else if (sol[slot] != row[i]) {
            ok = false;
            break;
          }
        }
        if (ok) out.push_back(std::move(sol));
      }
      return out;
    }

    case PatternKind::kExistsFilter: {
      SPARQLOG_ASSIGN_OR_RETURN(Multiset left,
                                EvalPattern(*p.left, active, input));
      Multiset out;
      for (const Solution& mu : left) {
        SPARQLOG_ASSIGN_OR_RETURN(Multiset inner,
                                  EvalPattern(*p.right, active, mu));
        if (inner.empty() == p.exists_negated) out.push_back(mu);
      }
      return out;
    }

    case PatternKind::kGraph: {
      if (!p.graph.is_var) {
        const rdf::Graph* g = active_dataset_->FindNamedGraph(p.graph.term);
        if (g == nullptr) return Multiset{};
        return EvalPattern(*p.left, *g, input);
      }
      uint32_t slot = vars_.Find(p.graph.var);
      Multiset out;
      for (const auto& [name, g] : active_dataset_->named_graphs()) {
        if (input[slot] != TermDictionary::kUndef && input[slot] != name) {
          continue;
        }
        Solution extended = input;
        extended[slot] = name;
        SPARQLOG_ASSIGN_OR_RETURN(Multiset inner,
                                  EvalPattern(*p.left, g, extended));
        for (Solution& sol : inner) out.push_back(std::move(sol));
      }
      return out;
    }
  }
  return Status::Internal("unhandled pattern kind");
}

Result<Multiset> AlgebraEvaluator::Aggregate(const Query& q,
                                             const Multiset& sols) {
  std::vector<uint32_t> group_slots;
  for (const auto& g : q.group_by) group_slots.push_back(vars_.SlotOf(g));

  // Group solutions by the GROUP BY key (single group when absent).
  std::map<std::vector<TermId>, std::vector<const Solution*>> groups;
  for (const Solution& mu : sols) {
    std::vector<TermId> key;
    key.reserve(group_slots.size());
    for (uint32_t s : group_slots) key.push_back(mu[s]);
    groups[key].push_back(&mu);
  }
  if (groups.empty() && group_slots.empty() && !sols.empty()) {
    groups[{}] = {};
  }
  // COUNT over an empty solution set still yields one row (empty group).
  if (groups.empty() && group_slots.empty()) groups[{}] = {};

  Multiset out;
  for (const auto& [key, members] : groups) {
    Solution row(vars_.size(), TermDictionary::kUndef);
    for (size_t i = 0; i < group_slots.size(); ++i) {
      row[group_slots[i]] = key[i];
    }
    for (const auto& item : q.select) {
      if (!item.is_aggregate) continue;
      uint32_t out_slot = vars_.SlotOf(item.alias);
      if (item.fn == sparql::AggregateFn::kCount && item.count_star) {
        if (item.agg_distinct) {
          std::vector<Solution> dedup;
          for (const Solution* m : members) dedup.push_back(*m);
          std::sort(dedup.begin(), dedup.end());
          dedup.erase(std::unique(dedup.begin(), dedup.end()), dedup.end());
          row[out_slot] =
              dict_->InternInteger(static_cast<int64_t>(dedup.size()));
        } else {
          row[out_slot] =
              dict_->InternInteger(static_cast<int64_t>(members.size()));
        }
        continue;
      }
      uint32_t arg_slot = vars_.SlotOf(item.var);
      std::vector<TermId> values;
      for (const Solution* m : members) {
        if ((*m)[arg_slot] != TermDictionary::kUndef) {
          values.push_back((*m)[arg_slot]);
        }
      }
      if (item.agg_distinct) {
        std::sort(values.begin(), values.end());
        values.erase(std::unique(values.begin(), values.end()), values.end());
      }
      switch (item.fn) {
        case sparql::AggregateFn::kCount:
          row[out_slot] =
              dict_->InternInteger(static_cast<int64_t>(values.size()));
          break;
        case sparql::AggregateFn::kSum: {
          double sum = 0;
          bool all_int = true;
          int64_t isum = 0;
          for (TermId v : values) {
            const rdf::Term& t = dict_->get(v);
            if (!t.is_numeric()) continue;
            sum += t.AsDouble();
            if (t.numeric_kind == rdf::NumericKind::kInteger) {
              isum += t.int_value;
            } else {
              all_int = false;
            }
          }
          row[out_slot] = all_int ? dict_->InternInteger(isum)
                                  : dict_->InternDouble(sum);
          break;
        }
        case sparql::AggregateFn::kAvg: {
          double sum = 0;
          size_t n = 0;
          for (TermId v : values) {
            const rdf::Term& t = dict_->get(v);
            if (!t.is_numeric()) continue;
            sum += t.AsDouble();
            ++n;
          }
          row[out_slot] = n == 0 ? dict_->InternInteger(0)
                                 : dict_->InternDouble(sum / double(n));
          break;
        }
        case sparql::AggregateFn::kMin:
        case sparql::AggregateFn::kMax: {
          if (values.empty()) break;
          TermId best = values[0];
          for (TermId v : values) {
            int c = CompareForOrder(*dict_, v, best);
            if ((item.fn == sparql::AggregateFn::kMin && c < 0) ||
                (item.fn == sparql::AggregateFn::kMax && c > 0)) {
              best = v;
            }
          }
          row[out_slot] = best;
          break;
        }
      }
    }
    out.push_back(std::move(row));
  }
  return out;
}

Status AlgebraEvaluator::Sort(const Query& q, Multiset* sols) {
  if (q.order_by.empty()) return Status::OK();
  // Precompute key vectors per solution.
  struct Keyed {
    std::vector<TermId> keys;
    uint32_t index;
  };
  std::vector<Keyed> keyed;
  keyed.reserve(sols->size());
  for (uint32_t i = 0; i < sols->size(); ++i) {
    const Solution& mu = (*sols)[i];
    auto lookup = [&](const std::string& name) -> TermId {
      uint32_t slot = vars_.Find(name);
      return slot == UINT32_MAX ? TermDictionary::kUndef : mu[slot];
    };
    Keyed k;
    k.index = i;
    for (const auto& key : q.order_by) {
      auto v = expr_eval_.EvalTerm(*key.expr, lookup);
      k.keys.push_back(v.value_or(TermDictionary::kUndef));
    }
    keyed.push_back(std::move(k));
  }
  // Deterministic tie-break on the projected output row (ascending),
  // mirroring SolutionTranslator's rule: tie order among equal ORDER BY
  // keys is undefined in SPARQL, so both evaluators resolve it by row
  // content, which keeps LIMIT/OFFSET results comparable between the
  // pipeline and this reference regardless of iteration order.
  std::vector<uint32_t> proj_slots;
  for (const auto& c : q.ProjectedVars()) proj_slots.push_back(vars_.SlotOf(c));
  std::stable_sort(keyed.begin(), keyed.end(),
                   [&](const Keyed& a, const Keyed& b) {
                     for (size_t i = 0; i < q.order_by.size(); ++i) {
                       int c = CompareForOrder(*dict_, a.keys[i], b.keys[i]);
                       if (q.order_by[i].descending) c = -c;
                       if (c != 0) return c < 0;
                     }
                     const Solution& sa = (*sols)[a.index];
                     const Solution& sb = (*sols)[b.index];
                     for (uint32_t slot : proj_slots) {
                       int c = CompareForOrder(*dict_, sa[slot], sb[slot]);
                       if (c != 0) return c < 0;
                     }
                     return false;
                   });
  Multiset sorted;
  sorted.reserve(sols->size());
  for (const Keyed& k : keyed) sorted.push_back(std::move((*sols)[k.index]));
  *sols = std::move(sorted);
  return Status::OK();
}

Result<Multiset> AlgebraEvaluator::EvalPatternStandalone(
    const Pattern& pattern) {
  active_dataset_ = &base_dataset_;
  RegisterPatternVars(pattern);
  Solution empty(vars_.size(), TermDictionary::kUndef);
  return EvalPattern(pattern, active_dataset_->default_graph(), empty);
}

Result<QueryResult> AlgebraEvaluator::EvalQuery(const Query& q) {
  if (quirks_.error_on_graph_and_complex_order) {
    sparql::FeatureSet features = sparql::AnalyzeFeatures(q);
    if (features.graph) {
      return Status::NotSupported("GRAPH pattern rejected (quirk)");
    }
    for (const auto& key : q.order_by) {
      if (key.expr->kind != sparql::ExprKind::kVar) {
        return Status::NotSupported("complex ORDER BY rejected (quirk)");
      }
    }
  }
  RegisterVars(q);
  if (!q.from.empty() || !q.from_named.empty()) {
    scoped_dataset_ = base_dataset_.WithClauses(q.from, q.from_named);
    active_dataset_ = &*scoped_dataset_;
  } else {
    active_dataset_ = &base_dataset_;
  }
  if (!q.where) return Status::InvalidArgument("query has no WHERE pattern");

  Solution empty(vars_.size(), TermDictionary::kUndef);
  SPARQLOG_ASSIGN_OR_RETURN(
      Multiset sols,
      EvalPattern(*q.where, active_dataset_->default_graph(), empty));

  QueryResult result;
  if (q.form == QueryForm::kAsk) {
    result.is_ask = true;
    result.ask_value = !sols.empty();
    return result;
  }

  if (q.HasAggregates() || !q.group_by.empty()) {
    SPARQLOG_ASSIGN_OR_RETURN(sols, Aggregate(q, sols));
  }

  SPARQLOG_RETURN_NOT_OK(Sort(q, &sols));

  result.columns = q.ProjectedVars();
  std::vector<uint32_t> slots;
  for (const auto& c : result.columns) slots.push_back(vars_.SlotOf(c));
  for (const Solution& mu : sols) {
    std::vector<TermId> row;
    row.reserve(slots.size());
    for (uint32_t s : slots) row.push_back(mu[s]);
    result.rows.push_back(std::move(row));
  }

  bool apply_distinct = q.distinct;
  if (apply_distinct && quirks_.ignore_distinct_with_union &&
      sparql::AnalyzeFeatures(q).union_) {
    apply_distinct = false;  // quirk: DISTINCT dropped on UNION queries
  }
  if (apply_distinct) {
    std::set<std::vector<TermId>> seen;
    std::vector<std::vector<TermId>> dedup;
    for (auto& row : result.rows) {
      if (seen.insert(row).second) dedup.push_back(std::move(row));
    }
    result.rows = std::move(dedup);
  }

  uint64_t offset = q.offset.value_or(0);
  if (offset > 0) {
    if (offset >= result.rows.size()) {
      result.rows.clear();
    } else {
      result.rows.erase(result.rows.begin(),
                        result.rows.begin() + static_cast<long>(offset));
    }
  }
  if (q.limit && result.rows.size() > *q.limit) {
    result.rows.resize(*q.limit);
  }
  return result;
}

}  // namespace sparqlog::eval
