#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "eval/quirk_config.h"
#include "rdf/graph.h"
#include "sparql/ast.h"
#include "util/exec_context.h"
#include "util/status.h"

/// \file path_eval.h
/// W3C-compliant property path evaluation over a single graph, following
/// the semantics of Table 5 in the paper (which matches the SPARQL 1.1
/// spec): bag semantics for link / inverse / sequence / alternative paths,
/// set semantics (ALP) for `?` / `*` / `+`, and zero-length paths for all
/// graph nodes *and* for constant endpoints that do not occur in the graph
/// — the corner case previous translations missed (§5.2).

namespace sparqlog::eval {

/// Multiset of (start, end) endpoint pairs.
using PairList = std::vector<std::pair<rdf::TermId, rdf::TermId>>;

class PathEvaluator {
 public:
  PathEvaluator(const rdf::Graph& graph, ExecContext* ctx,
                EngineQuirks quirks = EngineQuirks())
      : graph_(graph), ctx_(ctx), quirks_(quirks),
        cost_(quirks.per_binding_overhead_ns) {}

  /// Evaluates `path` with optionally-bound endpoints. Bound endpoints are
  /// pushed into the search where possible; the returned pairs always
  /// satisfy them.
  Result<PairList> Eval(const sparql::Path& path,
                        std::optional<rdf::TermId> s,
                        std::optional<rdf::TermId> o);

  /// How many times a recursive closure evaluated its inner path in
  /// full (one MaterializeStep, or one legacy per-node StepFrom). The
  /// linearity pin: a `p+` evaluation must materialize the step
  /// relation once, not once per frontier node.
  uint64_t inner_step_evals() const { return inner_step_evals_; }

 private:
  /// Adjacency of the materialized one-step relation (from → sorted
  /// distinct successors).
  using StepIndex =
      std::unordered_map<rdf::TermId, std::vector<rdf::TermId>>;

  /// Evaluates `path` once with both endpoints unbound and indexes the
  /// resulting step relation by source — the linear-in-edges replacement
  /// for per-frontier-node StepFrom re-evaluation.
  Result<StepIndex> MaterializeStep(const sparql::Path& path);

  /// ALP reachability (>= 1 step) over a materialized step index.
  /// `start_step` supplies the start node's successors when the index
  /// has no entry for it (a constant endpoint outside the graph can
  /// still step via zero-admitting inner paths).
  Result<std::vector<rdf::TermId>> ReachFromIndex(
      const StepIndex& index, rdf::TermId start,
      const std::vector<rdf::TermId>& start_step);
  Result<PairList> EvalImpl(const sparql::Path& path,
                            std::optional<rdf::TermId> s,
                            std::optional<rdf::TermId> o);

  /// Distinct one-step successors of `x` under `path`.
  Status StepFrom(const sparql::Path& path, rdf::TermId x,
                  std::vector<rdf::TermId>* out);

  /// Nodes reachable from `start` by one or more applications of `path`
  /// (the spec's ALP procedure, without the zero step).
  Result<std::vector<rdf::TermId>> ReachOneOrMore(const sparql::Path& path,
                                                  rdf::TermId start);

  /// Zero-length pairs consistent with the given endpoints, including the
  /// constant-endpoint-not-in-graph rule.
  PairList ZeroPairs(std::optional<rdf::TermId> s,
                     std::optional<rdf::TermId> o) const;

  static void Dedup(PairList* pairs);

  const rdf::Graph& graph_;
  ExecContext* ctx_;
  EngineQuirks quirks_;
  CostModel cost_;
  uint64_t inner_step_evals_ = 0;
};

}  // namespace sparqlog::eval
