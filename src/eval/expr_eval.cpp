#include "eval/expr_eval.h"

#include <cmath>
#include <regex>

#include "util/string_util.h"

namespace sparqlog::eval {

using rdf::Term;
using rdf::TermDictionary;
using rdf::TermId;
using rdf::TermKind;
using sparql::ArithOp;
using sparql::Builtin;
using sparql::CompareOp;
using sparql::Expr;
using sparql::ExprKind;

namespace {

bool IsStringish(const Term& t) {
  // Simple literal or xsd:string (normalized to empty datatype), no lang.
  return t.is_literal() && t.datatype.empty() && t.lang.empty();
}

bool IsPlainOrLang(const Term& t) {
  return t.is_literal() && t.datatype.empty();
}

}  // namespace

EBV ExprEvaluator::TermToEBV(TermId id) const {
  if (id == TermDictionary::kUndef) return EBV::kError;
  const Term& t = dict_->get(id);
  if (!t.is_literal()) return EBV::kError;
  if (t.datatype == rdf::xsd::kBoolean) {
    if (t.lexical == "true" || t.lexical == "1") return EBV::kTrue;
    if (t.lexical == "false" || t.lexical == "0") return EBV::kFalse;
    return EBV::kError;
  }
  if (t.is_numeric()) {
    double v = t.AsDouble();
    return (v != 0.0 && !std::isnan(v)) ? EBV::kTrue : EBV::kFalse;
  }
  if (IsPlainOrLang(t)) {
    return t.lexical.empty() ? EBV::kFalse : EBV::kTrue;
  }
  return EBV::kError;
}

EBV ExprEvaluator::EvalEBV(const Expr& e, const VarLookup& lookup) {
  switch (e.kind) {
    case ExprKind::kOr: {
      EBV a = EvalEBV(*e.args[0], lookup);
      if (a == EBV::kTrue) return EBV::kTrue;
      EBV b = EvalEBV(*e.args[1], lookup);
      if (b == EBV::kTrue) return EBV::kTrue;
      if (a == EBV::kFalse && b == EBV::kFalse) return EBV::kFalse;
      return EBV::kError;
    }
    case ExprKind::kAnd: {
      EBV a = EvalEBV(*e.args[0], lookup);
      if (a == EBV::kFalse) return EBV::kFalse;
      EBV b = EvalEBV(*e.args[1], lookup);
      if (b == EBV::kFalse) return EBV::kFalse;
      if (a == EBV::kTrue && b == EBV::kTrue) return EBV::kTrue;
      return EBV::kError;
    }
    case ExprKind::kNot: {
      EBV a = EvalEBV(*e.args[0], lookup);
      if (a == EBV::kError) return EBV::kError;
      return a == EBV::kTrue ? EBV::kFalse : EBV::kTrue;
    }
    case ExprKind::kCompare: {
      auto a = EvalTerm(*e.args[0], lookup);
      auto b = EvalTerm(*e.args[1], lookup);
      if (!a || !b) return EBV::kError;
      return Compare(e.compare_op, *a, *b);
    }
    default: {
      auto v = EvalTerm(e, lookup);
      if (!v) return EBV::kError;
      return TermToEBV(*v);
    }
  }
}

EBV ExprEvaluator::Compare(CompareOp op, TermId a, TermId b) const {
  if (a == TermDictionary::kUndef || b == TermDictionary::kUndef) {
    return EBV::kError;
  }
  if (op == CompareOp::kEq || op == CompareOp::kNe) {
    const Term& ta = dict_->get(a);
    const Term& tb = dict_->get(b);
    bool eq;
    if (a == b) {
      eq = true;
    } else if (ta.is_numeric() && tb.is_numeric()) {
      eq = ta.AsDouble() == tb.AsDouble();
    } else if (ta.is_literal() && tb.is_literal() &&
               !ta.datatype.empty() && ta.datatype == tb.datatype &&
               !ta.is_numeric()) {
      // Same unsupported datatype, different lexical forms: the standard
      // leaves this an error for `=`; equal lexical forms were caught by
      // the identity check above.
      return EBV::kError;
    } else {
      eq = false;
    }
    bool result = (op == CompareOp::kEq) ? eq : !eq;
    return result ? EBV::kTrue : EBV::kFalse;
  }
  auto cmp = CompareTermsSparql(*dict_, a, b);
  if (!cmp) return EBV::kError;
  bool r = false;
  switch (op) {
    case CompareOp::kLt: r = *cmp < 0; break;
    case CompareOp::kLe: r = *cmp <= 0; break;
    case CompareOp::kGt: r = *cmp > 0; break;
    case CompareOp::kGe: r = *cmp >= 0; break;
    default: break;
  }
  return r ? EBV::kTrue : EBV::kFalse;
}

std::optional<int> CompareTermsSparql(const TermDictionary& dict, TermId a,
                                      TermId b) {
  const Term& ta = dict.get(a);
  const Term& tb = dict.get(b);
  if (ta.is_numeric() && tb.is_numeric()) {
    double x = ta.AsDouble(), y = tb.AsDouble();
    return x < y ? -1 : x > y ? 1 : 0;
  }
  if (ta.is_literal() && tb.is_literal()) {
    // Strings (simple or xsd:string).
    if (IsStringish(ta) && IsStringish(tb)) {
      return ta.lexical.compare(tb.lexical) < 0   ? -1
             : ta.lexical.compare(tb.lexical) > 0 ? 1
                                                  : 0;
    }
    // Booleans: false < true.
    if (ta.datatype == rdf::xsd::kBoolean && tb.datatype == rdf::xsd::kBoolean) {
      int x = ta.lexical == "true" ? 1 : 0;
      int y = tb.lexical == "true" ? 1 : 0;
      return x - y;
    }
    // dateTime / date: ISO lexical forms order correctly.
    if (ta.datatype == tb.datatype &&
        (ta.datatype == rdf::xsd::kDateTime || ta.datatype == rdf::xsd::kDate)) {
      int c = ta.lexical.compare(tb.lexical);
      return c < 0 ? -1 : c > 0 ? 1 : 0;
    }
  }
  return std::nullopt;  // type error
}

int CompareForOrder(const TermDictionary& dict, TermId a, TermId b) {
  if (a == b) return 0;
  const Term& ta = dict.get(a);
  const Term& tb = dict.get(b);
  auto rank = [](const Term& t) {
    switch (t.kind) {
      case TermKind::kUndef: return 0;
      case TermKind::kBlank: return 1;
      case TermKind::kIri: return 2;
      case TermKind::kLiteral: return 3;
    }
    return 4;
  };
  if (rank(ta) != rank(tb)) return rank(ta) < rank(tb) ? -1 : 1;
  if (ta.kind == TermKind::kLiteral) {
    if (auto c = CompareTermsSparql(dict, a, b); c && *c != 0) return *c;
    if (auto c = CompareTermsSparql(dict, a, b); c && *c == 0) {
      // Values equal (e.g. "1"^^int vs "1.0"^^double): break ties on the
      // rendered form so the order is total and deterministic.
      std::string ra = ta.ToString(), rb = tb.ToString();
      return ra < rb ? -1 : ra > rb ? 1 : 0;
    }
  }
  // Same kind: compare rendered forms.
  std::string ra = ta.ToString(), rb = tb.ToString();
  return ra < rb ? -1 : ra > rb ? 1 : 0;
}

std::optional<TermId> ExprEvaluator::Arith(ArithOp op, TermId a, TermId b) {
  const Term& ta = dict_->get(a);
  const Term& tb = dict_->get(b);
  if (!ta.is_numeric() || !tb.is_numeric()) return std::nullopt;
  bool both_int = ta.numeric_kind == rdf::NumericKind::kInteger &&
                  tb.numeric_kind == rdf::NumericKind::kInteger;
  if (both_int && op != ArithOp::kDiv) {
    int64_t x = ta.int_value, y = tb.int_value;
    int64_t r = 0;
    switch (op) {
      case ArithOp::kAdd: r = x + y; break;
      case ArithOp::kSub: r = x - y; break;
      case ArithOp::kMul: r = x * y; break;
      case ArithOp::kDiv: break;  // handled below
    }
    return dict_->InternInteger(r);
  }
  double x = ta.AsDouble(), y = tb.AsDouble();
  double r = 0;
  switch (op) {
    case ArithOp::kAdd: r = x + y; break;
    case ArithOp::kSub: r = x - y; break;
    case ArithOp::kMul: r = x * y; break;
    case ArithOp::kDiv:
      if (y == 0.0 && both_int) return std::nullopt;  // integer div by zero
      r = x / y;
      break;
  }
  return dict_->InternDouble(r);
}

std::optional<TermId> ExprEvaluator::EvalTerm(const Expr& e,
                                              const VarLookup& lookup) {
  switch (e.kind) {
    case ExprKind::kVar:
      return lookup(e.var);
    case ExprKind::kTerm:
      return e.term;
    case ExprKind::kOr:
    case ExprKind::kAnd:
    case ExprKind::kNot:
    case ExprKind::kCompare: {
      EBV v = EvalEBV(e, lookup);
      if (v == EBV::kError) return std::nullopt;
      return dict_->InternBoolean(v == EBV::kTrue);
    }
    case ExprKind::kArith: {
      auto a = EvalTerm(*e.args[0], lookup);
      auto b = EvalTerm(*e.args[1], lookup);
      if (!a || !b) return std::nullopt;
      return Arith(e.arith_op, *a, *b);
    }
    case ExprKind::kNegate: {
      auto a = EvalTerm(*e.args[0], lookup);
      if (!a) return std::nullopt;
      const Term& t = dict_->get(*a);
      if (!t.is_numeric()) return std::nullopt;
      if (t.numeric_kind == rdf::NumericKind::kInteger) {
        return dict_->InternInteger(-t.int_value);
      }
      return dict_->InternDouble(-t.AsDouble());
    }
    case ExprKind::kBuiltin:
      return EvalBuiltin(e, lookup);
  }
  return std::nullopt;
}

std::optional<TermId> ExprEvaluator::EvalBuiltin(const Expr& e,
                                                 const VarLookup& lookup) {
  auto boolean = [this](bool v) { return dict_->InternBoolean(v); };

  // BOUND takes a variable, not a value.
  if (e.builtin == Builtin::kBound) {
    if (e.args[0]->kind != ExprKind::kVar) return std::nullopt;
    return boolean(lookup(e.args[0]->var) != TermDictionary::kUndef);
  }

  // Evaluate arguments.
  std::vector<TermId> args;
  for (const auto& a : e.args) {
    auto v = EvalTerm(*a, lookup);
    if (!v) return std::nullopt;
    args.push_back(*v);
  }

  auto term_of = [&](size_t i) -> const Term& { return dict_->get(args[i]); };
  auto string_arg = [&](size_t i) -> std::optional<std::string> {
    const Term& t = term_of(i);
    if (args[i] == TermDictionary::kUndef) return std::nullopt;
    if (t.is_literal()) return t.lexical;
    return std::nullopt;
  };

  switch (e.builtin) {
    case Builtin::kBound:
      return std::nullopt;  // handled above
    case Builtin::kIsIri:
      if (args[0] == TermDictionary::kUndef) return std::nullopt;
      return boolean(term_of(0).is_iri());
    case Builtin::kIsBlank:
      if (args[0] == TermDictionary::kUndef) return std::nullopt;
      return boolean(term_of(0).is_blank());
    case Builtin::kIsLiteral:
      if (args[0] == TermDictionary::kUndef) return std::nullopt;
      return boolean(term_of(0).is_literal());
    case Builtin::kIsNumeric:
      if (args[0] == TermDictionary::kUndef) return std::nullopt;
      return boolean(term_of(0).is_numeric());
    case Builtin::kStr: {
      if (args[0] == TermDictionary::kUndef) return std::nullopt;
      const Term& t = term_of(0);
      if (t.is_iri() || t.is_literal()) return dict_->InternString(t.lexical);
      return std::nullopt;
    }
    case Builtin::kLang: {
      if (args[0] == TermDictionary::kUndef) return std::nullopt;
      const Term& t = term_of(0);
      if (!t.is_literal()) return std::nullopt;
      return dict_->InternString(t.lang);
    }
    case Builtin::kDatatype: {
      if (args[0] == TermDictionary::kUndef) return std::nullopt;
      const Term& t = term_of(0);
      if (!t.is_literal()) return std::nullopt;
      if (!t.lang.empty()) return dict_->InternIri(rdf::xsd::kLangString);
      if (t.datatype.empty()) return dict_->InternIri(rdf::xsd::kString);
      return dict_->InternIri(t.datatype);
    }
    case Builtin::kRegex: {
      auto text = string_arg(0);
      auto pattern = string_arg(1);
      if (!text || !pattern) return std::nullopt;
      auto flags = std::regex::ECMAScript;
      if (args.size() == 3) {
        auto f = string_arg(2);
        if (!f) return std::nullopt;
        if (f->find('i') != std::string::npos) flags |= std::regex::icase;
      }
      try {
        std::regex re(*pattern, flags);
        return boolean(std::regex_search(*text, re));
      } catch (const std::regex_error&) {
        return std::nullopt;
      }
    }
    case Builtin::kUCase: {
      auto s = string_arg(0);
      if (!s) return std::nullopt;
      const Term& t = term_of(0);
      return dict_->InternLiteral(AsciiToUpper(*s), t.datatype, t.lang);
    }
    case Builtin::kLCase: {
      auto s = string_arg(0);
      if (!s) return std::nullopt;
      const Term& t = term_of(0);
      return dict_->InternLiteral(AsciiToLower(*s), t.datatype, t.lang);
    }
    case Builtin::kStrLen: {
      auto s = string_arg(0);
      if (!s) return std::nullopt;
      return dict_->InternInteger(static_cast<int64_t>(s->size()));
    }
    case Builtin::kContains: {
      auto a = string_arg(0), b = string_arg(1);
      if (!a || !b) return std::nullopt;
      return boolean(a->find(*b) != std::string::npos);
    }
    case Builtin::kStrStarts: {
      auto a = string_arg(0), b = string_arg(1);
      if (!a || !b) return std::nullopt;
      return boolean(StartsWith(*a, *b));
    }
    case Builtin::kStrEnds: {
      auto a = string_arg(0), b = string_arg(1);
      if (!a || !b) return std::nullopt;
      return boolean(EndsWith(*a, *b));
    }
    case Builtin::kLangMatches: {
      auto tag = string_arg(0), range = string_arg(1);
      if (!tag || !range) return std::nullopt;
      if (*range == "*") return boolean(!tag->empty());
      std::string lt = AsciiToLower(*tag), lr = AsciiToLower(*range);
      return boolean(lt == lr || StartsWith(lt, lr + "-"));
    }
    case Builtin::kSameTerm:
      if (args[0] == TermDictionary::kUndef ||
          args[1] == TermDictionary::kUndef) {
        return std::nullopt;
      }
      return boolean(args[0] == args[1]);
    case Builtin::kAbs: {
      if (args[0] == TermDictionary::kUndef) return std::nullopt;
      const Term& t = term_of(0);
      if (!t.is_numeric()) return std::nullopt;
      if (t.numeric_kind == rdf::NumericKind::kInteger) {
        return dict_->InternInteger(t.int_value < 0 ? -t.int_value
                                                    : t.int_value);
      }
      return dict_->InternDouble(std::abs(t.AsDouble()));
    }
  }
  return std::nullopt;
}

}  // namespace sparqlog::eval
