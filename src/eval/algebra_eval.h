#pragma once

#include <optional>

#include "eval/binding.h"
#include "eval/expr_eval.h"
#include "eval/path_eval.h"
#include "rdf/graph.h"
#include "sparql/ast.h"
#include "util/exec_context.h"
#include "util/status.h"

/// \file algebra_eval.h
/// Direct, standard-compliant evaluation of the SPARQL algebra with
/// multiset semantics. This is the repository's reference oracle and the
/// stand-in for Apache Jena Fuseki in the experiments: it follows the
/// W3C semantics faithfully (including the OPTIONAL-FILTER combination,
/// MINUS's disjoint-domain rule, and zero-length property paths for
/// constant endpoints) but applies no cross-binding memoization or
/// materialization — which is precisely why it falls behind the
/// translated Datalog programs on recursive path workloads (§6.3).

namespace sparqlog::eval {

class AlgebraEvaluator {
 public:
  AlgebraEvaluator(const rdf::Dataset& dataset, rdf::TermDictionary* dict,
                   ExecContext* ctx, EngineQuirks quirks = EngineQuirks())
      : base_dataset_(dataset),
        dict_(dict),
        expr_eval_(dict),
        ctx_(ctx),
        quirks_(quirks),
        cost_(quirks.per_binding_overhead_ns) {}

  /// Evaluates a full query: dataset clauses, WHERE pattern, aggregation,
  /// solution modifiers, projection, query form.
  Result<QueryResult> EvalQuery(const sparql::Query& query);

  /// Evaluates a graph pattern against the query's default graph with an
  /// empty input mapping (exposed for tests).
  Result<Multiset> EvalPatternStandalone(const sparql::Pattern& pattern);

 private:
  Result<Multiset> EvalPattern(const sparql::Pattern& p,
                               const rdf::Graph& active,
                               const Solution& input);

  std::optional<rdf::TermId> ResolveEndpoint(const sparql::TermOrVar& tv,
                                             const Solution& input);

  Result<Multiset> Aggregate(const sparql::Query& q, const Multiset& sols);
  Status Sort(const sparql::Query& q, Multiset* sols);

  void RegisterVars(const sparql::Query& q);
  void RegisterPatternVars(const sparql::Pattern& p);

  const rdf::Dataset& base_dataset_;
  std::optional<rdf::Dataset> scoped_dataset_;  // FROM/FROM NAMED view
  const rdf::Dataset* active_dataset_ = nullptr;
  rdf::TermDictionary* dict_;
  ExprEvaluator expr_eval_;
  ExecContext* ctx_;
  EngineQuirks quirks_;
  CostModel cost_;
  VarTable vars_;
};

}  // namespace sparqlog::eval
