#include "util/string_util.h"

#include <cctype>
#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace sparqlog {

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string_view StripAscii(std::string_view s) {
  size_t b = 0;
  while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  size_t e = s.size();
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::vector<std::string_view> SplitString(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string AsciiToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string AsciiToUpper(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

bool AsciiEqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::optional<int64_t> ParseInt64(std::string_view s) {
  if (s.empty()) return std::nullopt;
  std::string buf(s);
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(buf.c_str(), &end, 10);
  if (errno == ERANGE || end != buf.c_str() + buf.size()) return std::nullopt;
  return static_cast<int64_t>(v);
}

std::optional<double> ParseDouble(std::string_view s) {
  if (s.empty()) return std::nullopt;
  std::string buf(s);
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(buf.c_str(), &end);
  if (errno == ERANGE || end != buf.c_str() + buf.size()) return std::nullopt;
  return v;
}

std::string EscapeStringLiteral(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default: out += c;
    }
  }
  return out;
}

std::string StringPrintf(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  va_list ap2;
  va_copy(ap2, ap);
  int n = std::vsnprintf(nullptr, 0, fmt, ap);
  va_end(ap);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
  }
  va_end(ap2);
  return out;
}

}  // namespace sparqlog
