#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <thread>
#include <type_traits>
#include <utility>

#include "util/status.h"

/// \file retry.h
/// Client-side retry with capped exponential backoff and deterministic
/// jitter — the well-behaved counterpart of the server's admission
/// shedding. A shed query comes back `kUnavailable` with a Retry-After
/// hint; retrying it immediately just feeds the overload, while backing
/// off lets the degraded-mode controller drain the window and recover.
///
/// Everything here is deterministic on purpose: jitter comes from a
/// splitmix64 hash of (seed, attempt), not a global RNG, so a test can
/// assert the exact sleep schedule and two clients with different seeds
/// still decorrelate their retries.

namespace sparqlog::util {

/// Backoff schedule: attempt k (0-based) sleeps
///   min(initial * multiplier^k, max) * (1 - jitter + 2*jitter*u)
/// where u in [0,1) is the deterministic per-(seed,attempt) hash.
struct BackoffPolicy {
  /// Total tries, including the first; 0 behaves as 1 (no retries).
  uint32_t max_attempts = 4;
  std::chrono::milliseconds initial_delay{25};
  std::chrono::milliseconds max_delay{1000};
  double multiplier = 2.0;
  /// Fractional spread around the nominal delay, in [0, 1].
  double jitter = 0.2;
  /// Decorrelates concurrent clients; same seed => same schedule.
  uint64_t seed = 0;
  /// When the server supplied a Retry-After hint (seconds), honor it as
  /// a lower bound on the computed delay.
  bool honor_retry_after = true;
};

/// Deterministic u in [0, 1) for (seed, attempt): splitmix64 finalizer.
inline double BackoffUnit(uint64_t seed, uint32_t attempt) {
  uint64_t z = seed + 0x9e3779b97f4a7c15ull * (attempt + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  z ^= z >> 31;
  return static_cast<double>(z >> 11) * 0x1.0p-53;
}

/// Delay before retrying after failed attempt `attempt` (0-based).
/// `retry_after_seconds` is the server's hint (0 = none).
inline std::chrono::milliseconds BackoffDelay(const BackoffPolicy& policy,
                                              uint32_t attempt,
                                              int retry_after_seconds = 0) {
  double nominal =
      static_cast<double>(policy.initial_delay.count());
  for (uint32_t i = 0; i < attempt; ++i) nominal *= policy.multiplier;
  nominal = std::min(nominal, static_cast<double>(policy.max_delay.count()));
  const double jitter = std::clamp(policy.jitter, 0.0, 1.0);
  const double u = BackoffUnit(policy.seed, attempt);
  double ms = nominal * (1.0 - jitter + 2.0 * jitter * u);
  if (policy.honor_retry_after && retry_after_seconds > 0) {
    ms = std::max(ms, retry_after_seconds * 1000.0);
  }
  if (ms < 0) ms = 0;
  return std::chrono::milliseconds(static_cast<int64_t>(ms + 0.5));
}

/// Runs `op` (returning Status or Result<T>) up to `max_attempts`
/// times, sleeping per BackoffDelay between attempts. Retries only
/// `kUnavailable` — admission shedding and queue-deadline misses are
/// transient by construction; every other failure (parse errors,
/// timeouts that already consumed a full query budget, internal
/// errors) is returned immediately.
///
/// `retry_after` extracts the server's Retry-After hint from the last
/// failure context when the caller has one (e.g. an HTTP client that
/// parsed the header); defaults to "no hint".
template <typename Op, typename HintFn>
auto RetryWithBackoff(const BackoffPolicy& policy, Op&& op, HintFn&& hint)
    -> decltype(op()) {
  const uint32_t attempts = std::max<uint32_t>(policy.max_attempts, 1);
  auto outcome = op();
  for (uint32_t attempt = 0; attempt + 1 < attempts; ++attempt) {
    const Status& st = [&]() -> const Status& {
      if constexpr (std::is_same_v<decltype(op()), Status>) {
        return outcome;
      } else {
        return outcome.status();
      }
    }();
    if (st.ok() || !st.IsUnavailable()) break;
    std::this_thread::sleep_for(BackoffDelay(policy, attempt, hint()));
    outcome = op();
  }
  return outcome;
}

template <typename Op>
auto RetryWithBackoff(const BackoffPolicy& policy, Op&& op)
    -> decltype(op()) {
  return RetryWithBackoff(policy, std::forward<Op>(op), [] { return 0; });
}

}  // namespace sparqlog::util
