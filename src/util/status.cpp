#include "util/status.h"

#include <cstdio>
#include <cstdlib>

namespace sparqlog {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kTimeout:
      return "Timeout";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

void AbortWithStatus(const Status& status) {
  std::fprintf(stderr, "fatal: %s\n", status.ToString().c_str());
  std::abort();
}

}  // namespace sparqlog
