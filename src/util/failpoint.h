#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

/// \file failpoint.h
/// Deterministic fault injection (the RocksDB/TiKV "failpoint" idiom).
///
/// A failpoint is a named site in production code where a test (or an
/// operator, via the SPARQLOG_FAILPOINTS environment variable) can inject
/// a failure: an error Status of a chosen code, or a delay. Sites are
/// compiled in unconditionally — robustness paths must be testable in the
/// shipped binary — so the disarmed cost has to be negligible: one
/// relaxed atomic load and a predictable branch. Everything else (trigger
/// bookkeeping, spec parsing) happens only on the armed slow path, under
/// the site's mutex.
///
/// Sites are defined at namespace scope in the .cpp that owns the code
/// path and register themselves into a process-wide leaked registry
/// during static initialization, which makes the registry's enumeration
/// complete — the full-sweep test iterates `Failpoints::Sites()` and
/// refuses to pass if a site it does not know how to drive appears.
///
///   SPARQLOG_FAILPOINT_DEFINE(g_fp_stage, "engine.update.stage");
///   ...
///   Status F() {
///     SPARQLOG_FAILPOINT(g_fp_stage);   // propagates the injected error
///     ...
///   }
///
/// Activation specs (programmatic `Failpoints::Arm(name, spec)` or the
/// env var `SPARQLOG_FAILPOINTS=name=spec;name2=spec2`):
///
///   spec    := [ trigger ':' ] action
///   trigger := once              fire on the first hit only, then disarm
///            | after(N)          skip the first N hits, fire from then on
///            | every(N[,seed])   fire when (seed + hit) % N == 0
///   action  := off               disarm
///            | error             inject Status::Internal
///            | error(CODE)       inject the named StatusCode (snake_case,
///                                e.g. unavailable, timeout, parse_error)
///            | delay(MS)         sleep MS milliseconds, then continue
///
/// No trigger means "fire on every hit". Hit counting is per-site and
/// deterministic: the same arming over the same execution fires at the
/// same hits, which is what lets the rollback fuzzer walk a failure
/// through every stage of a publish.

namespace sparqlog::util {

class Failpoints;

/// One named injection site. Define at namespace scope with
/// SPARQLOG_FAILPOINT_DEFINE; the constructor registers the site.
class FailpointSite {
 public:
  explicit FailpointSite(const char* name);

  FailpointSite(const FailpointSite&) = delete;
  FailpointSite& operator=(const FailpointSite&) = delete;

  const char* name() const { return name_; }

  enum class Trigger : uint8_t { kAlways, kOnce, kAfter, kEvery };
  enum class Action : uint8_t { kError, kDelay };

  /// The hot path: OK immediately (one relaxed load) while disarmed.
  Status Check() {
    if (!armed_.load(std::memory_order_relaxed)) return Status::OK();
    return Eval();
  }

  bool armed() const { return armed_.load(std::memory_order_relaxed); }

  /// Times this site returned an injected error or ran a delay.
  uint64_t fired() const { return fired_.load(std::memory_order_relaxed); }

 private:
  friend class Failpoints;

  /// Armed slow path: trigger bookkeeping under the mutex, then the
  /// configured action.
  Status Eval();
  /// Installs a parsed spec (registry lock held by the caller).
  void Configure(Trigger trigger, Action action, uint64_t n, uint64_t seed,
                 uint64_t delay_ms, StatusCode code);
  void Disarm();

  const char* name_;
  std::atomic<bool> armed_{false};
  std::atomic<uint64_t> fired_{0};

  std::mutex mu_;  // guards the fields below once armed
  Trigger trigger_ = Trigger::kAlways;
  Action action_ = Action::kError;
  uint64_t n_ = 0;         ///< after(N) / every(N) parameter
  uint64_t seed_ = 0;      ///< every-phase offset
  uint64_t delay_ms_ = 0;  ///< delay action parameter
  uint64_t hits_ = 0;      ///< Check() calls since arming
  StatusCode code_ = StatusCode::kInternal;
};

/// Process-wide site registry. A leaked singleton: sites registering from
/// static initializers in any translation unit always find it alive, and
/// no static-destruction-order hazard exists at exit.
class Failpoints {
 public:
  /// The registry. First call parses SPARQLOG_FAILPOINTS; specs naming
  /// sites that have not registered yet are parked and applied when the
  /// site's translation unit initializes.
  static Failpoints& Instance();

  /// Arms `name` with `spec` (grammar above). Unknown sites park the
  /// spec for late registration; malformed specs are InvalidArgument.
  Status Arm(std::string_view name, std::string_view spec);

  /// Disarms `name` (and drops any parked spec). Unknown names are a
  /// no-op: tests tear down unconditionally.
  void Disarm(std::string_view name);

  /// Disarms every site and clears parked specs.
  void DisarmAll();

  /// Registered site names, sorted — the full-sweep test's ground truth.
  std::vector<std::string> Sites() const;

  /// Site by name; nullptr when no such site has registered.
  FailpointSite* Find(std::string_view name) const;

  /// Parses a `name=spec;name=spec` list (the SPARQLOG_FAILPOINTS
  /// syntax). Empty segments are ignored. Stops at the first bad entry.
  Status ArmFromList(std::string_view list);

 private:
  Failpoints();

  void Register(FailpointSite* site);  // called by FailpointSite's ctor

  friend class FailpointSite;

  mutable std::mutex mu_;
  std::vector<FailpointSite*> sites_;             // registration order
  std::vector<std::pair<std::string, std::string>> parked_;  // env specs
};

}  // namespace sparqlog::util

/// Defines a failpoint site object. Place at namespace scope (typically
/// in an anonymous namespace of the .cpp owning the site).
#define SPARQLOG_FAILPOINT_DEFINE(var, name) \
  ::sparqlog::util::FailpointSite var { name }

/// Checks a site and propagates its injected Status from the enclosing
/// function (which must return Status or Result<T>).
#define SPARQLOG_FAILPOINT(var) SPARQLOG_RETURN_NOT_OK((var).Check())
