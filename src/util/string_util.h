#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

/// \file string_util.h
/// Small string helpers shared by the parsers and formatters.

namespace sparqlog {

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// True if `s` ends with `suffix`.
bool EndsWith(std::string_view s, std::string_view suffix);

/// Returns `s` with ASCII whitespace removed from both ends.
std::string_view StripAscii(std::string_view s);

/// Splits `s` on `sep`, keeping empty fields.
std::vector<std::string_view> SplitString(std::string_view s, char sep);

/// Joins `parts` with `sep`.
std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep);

/// Lower-cases ASCII characters only (SPARQL keywords are ASCII).
std::string AsciiToLower(std::string_view s);

/// Upper-cases ASCII characters only (for the UCASE builtin).
std::string AsciiToUpper(std::string_view s);

/// Case-insensitive ASCII equality (keyword matching).
bool AsciiEqualsIgnoreCase(std::string_view a, std::string_view b);

/// Parses a decimal integer; nullopt on overflow or junk.
std::optional<int64_t> ParseInt64(std::string_view s);

/// Parses a floating point number; nullopt on junk.
std::optional<double> ParseDouble(std::string_view s);

/// Escapes a string for inclusion in a double-quoted literal
/// (backslash, quote, newline, tab, carriage return).
std::string EscapeStringLiteral(std::string_view s);

/// printf-style formatting into a std::string.
std::string StringPrintf(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace sparqlog
