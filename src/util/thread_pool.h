#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

/// \file thread_pool.h
/// Fixed-size worker pool for "parallel regions". The Datalog evaluator
/// uses one region per semi-naive round: every worker runs the same
/// closure with its worker index, shards the round's delta scan by row-id
/// range, and the region's return doubles as the round barrier that makes
/// staged derivations safe to merge.
///
/// The pool owns `num_workers - 1` threads; the caller of RunOnWorkers
/// participates as worker 0, so a pool of size 1 degenerates to a plain
/// inline call with no synchronization at all.

namespace sparqlog {

class ThreadPool {
 public:
  explicit ThreadPool(size_t num_workers)
      : num_workers_(num_workers == 0 ? 1 : num_workers) {
    threads_.reserve(num_workers_ - 1);
    for (size_t w = 1; w < num_workers_; ++w) {
      threads_.emplace_back([this, w] { WorkerLoop(w); });
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      shutdown_ = true;
    }
    start_cv_.notify_all();
    for (std::thread& t : threads_) t.join();
  }

  size_t num_workers() const { return num_workers_; }

  /// Invokes `fn(w)` once for every worker index `w` in `[0, num_workers)`
  /// — `fn(0)` on the calling thread, the rest on pool threads — and
  /// returns when all invocations have finished (full barrier). The
  /// closure must not call RunOnWorkers reentrantly and must not throw;
  /// report failures through captured state (Status per worker).
  void RunOnWorkers(const std::function<void(size_t)>& fn) {
    if (num_workers_ == 1) {
      fn(0);
      return;
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      task_ = &fn;
      pending_ = num_workers_ - 1;
      ++generation_;
    }
    start_cv_.notify_all();
    fn(0);
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [this] { return pending_ == 0; });
    task_ = nullptr;
  }

 private:
  void WorkerLoop(size_t worker_index) {
    uint64_t seen = 0;
    for (;;) {
      const std::function<void(size_t)>* task = nullptr;
      {
        std::unique_lock<std::mutex> lock(mu_);
        start_cv_.wait(lock,
                       [&] { return shutdown_ || generation_ != seen; });
        if (shutdown_) return;
        seen = generation_;
        task = task_;
      }
      (*task)(worker_index);
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (--pending_ == 0) done_cv_.notify_one();
      }
    }
  }

  const size_t num_workers_;
  std::vector<std::thread> threads_;

  std::mutex mu_;
  std::condition_variable start_cv_;  // workers wait for a new generation
  std::condition_variable done_cv_;   // caller waits for pending_ == 0
  const std::function<void(size_t)>* task_ = nullptr;
  uint64_t generation_ = 0;
  size_t pending_ = 0;
  bool shutdown_ = false;
};

}  // namespace sparqlog
