#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string_view>
#include <vector>

/// \file hash.h
/// Hash combining helpers for tuple- and term-keyed hash tables.

namespace sparqlog {

/// Boost-style hash combine with 64-bit mixing.
inline void HashCombine(size_t& seed, size_t v) {
  seed ^= v + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2);
}

/// MurmurHash3 64-bit finalizer: a strong avalanche mix. Open-addressing
/// tables with power-of-two masks (TupleStore, Relation indexes) need
/// this — the linear HashCombine arithmetic leaves sequential interned
/// ids clustered in the low bits, which prime-modulo `unordered_map`
/// buckets tolerate but linear probing does not.
inline uint64_t Fmix64(uint64_t k) {
  k ^= k >> 33;
  k *= 0xff51afd7ed558ccdULL;
  k ^= k >> 33;
  k *= 0xc4ceb9fe1a85ec53ULL;
  k ^= k >> 33;
  return k;
}

/// Hash of a span of integers (tuple of interned values).
template <typename It>
size_t HashRange(It begin, It end) {
  size_t seed = 0xcbf29ce484222325ULL;
  for (It it = begin; it != end; ++it) {
    HashCombine(seed, std::hash<uint64_t>()(static_cast<uint64_t>(*it)));
  }
  return seed;
}

struct VectorHash {
  template <typename T>
  size_t operator()(const std::vector<T>& v) const {
    return HashRange(v.begin(), v.end());
  }
};

/// 64-bit FNV-1a for strings; stable across runs (used for deterministic
/// workload generation, not for hash tables).
inline uint64_t Fnv1a64(std::string_view s) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// SplitMix64: cheap deterministic PRNG step used by workload generators.
inline uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Deterministic PRNG for workload generation (no std::random_device, so
/// benchmark datasets are reproducible bit-for-bit).
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed * 0x9e3779b97f4a7c15ULL + 1) {}

  uint64_t Next() { return SplitMix64(state_); }

  /// Uniform integer in [0, bound).
  uint64_t Uniform(uint64_t bound) { return bound ? Next() % bound : 0; }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Bernoulli draw.
  bool Chance(double p) { return NextDouble() < p; }

  /// Zipf-ish skewed pick in [0, n): favors small indices.
  uint64_t Skewed(uint64_t n) {
    if (n == 0) return 0;
    double u = NextDouble();
    return static_cast<uint64_t>(n * u * u);
  }

 private:
  uint64_t state_;
};

}  // namespace sparqlog
