#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <mutex>

/// \file bucket_array.h
/// Lock-free-readable append-only array for the concurrent interners.
///
/// A fixed directory of doubling buckets (bucket *b* holds
/// `kBase << b` slots, so 23 buckets cover the whole 32-bit id space)
/// replaces a `std::vector`: growth allocates a new bucket and publishes
/// its pointer with a release-store instead of reallocating — element
/// addresses are stable for the array's lifetime and readers index with
/// one acquire-load and no lock. This is what lets
/// `TermDictionary::get` / `SkolemStore::get` stay on the hot join path
/// while parallel fixpoint workers intern concurrently.
///
/// Writers are *externally serialized* (the interners' allocation mutex):
/// `Slot(i)` may allocate, so only one thread may call it at a time, and
/// a slot's contents must be fully written before its index is published
/// to readers (the interners publish ids under their stripe mutexes, or
/// through the round barrier, both of which order the writes).

namespace sparqlog {

/// Locks `mu`, counting a contended acquisition into `counter` — the
/// shared contention-observability primitive of the striped interners
/// (TermDictionary, SkolemStore): the counters they accumulate surface
/// as the interning-contention stat in Engine::stats().
inline std::unique_lock<std::mutex> LockCounted(
    std::mutex& mu, std::atomic<uint64_t>& counter) {
  std::unique_lock<std::mutex> lock(mu, std::try_to_lock);
  if (!lock.owns_lock()) {
    counter.fetch_add(1, std::memory_order_relaxed);
    lock.lock();
  }
  return lock;
}

template <typename T, uint32_t kBaseBits = 10>
class BucketArray {
 public:
  // ((2^23 - 1) << kBaseBits) slots: covers every 32-bit index.
  static constexpr uint32_t kNumBuckets = 33 - kBaseBits;

  BucketArray() = default;
  BucketArray(const BucketArray&) = delete;
  BucketArray& operator=(const BucketArray&) = delete;

  ~BucketArray() {
    for (auto& bucket : buckets_) {
      delete[] bucket.load(std::memory_order_relaxed);
    }
  }

  /// Reader access to a published slot. Lock-free: one acquire-load of
  /// the bucket pointer. `i` must have been published by a writer (the
  /// release operation that handed `i` to this thread orders the write).
  const T& operator[](uint32_t i) const {
    const uint32_t b = BucketOf(i);
    return buckets_[b].load(std::memory_order_acquire)[i - StartOf(b)];
  }

  /// Writer access to slot `i`, allocating its bucket on first touch.
  /// Must run under the owner's allocation mutex.
  T* Slot(uint32_t i) {
    const uint32_t b = BucketOf(i);
    T* bucket = buckets_[b].load(std::memory_order_relaxed);
    if (bucket == nullptr) {
      bucket = new T[SizeOf(b)]();
      buckets_[b].store(bucket, std::memory_order_release);
    }
    return bucket + (i - StartOf(b));
  }

 private:
  static uint32_t BucketOf(uint32_t i) {
    return std::bit_width((i >> kBaseBits) + 1u) - 1;
  }
  static uint32_t StartOf(uint32_t b) { return ((1u << b) - 1) << kBaseBits; }
  static size_t SizeOf(uint32_t b) {
    return static_cast<size_t>(1u << b) << kBaseBits;
  }

  std::array<std::atomic<T*>, kNumBuckets> buckets_{};
};

}  // namespace sparqlog
