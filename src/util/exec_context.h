#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>

#include "util/status.h"

/// \file exec_context.h
/// Cooperative cancellation / resource-budget context threaded through all
/// evaluators. This is what makes the paper's time-out and mem-out rows
/// (Tables 7-11) reproducible deterministically: every engine checks the
/// same context in its inner loops.

namespace sparqlog {

/// Execution limits for one query evaluation.
///
/// A default-constructed context is unlimited. `CheckBudget()` should be
/// called periodically from evaluation loops; it is cheap (a relaxed atomic
/// counter plus an occasional clock read).
class ExecContext {
 public:
  using Clock = std::chrono::steady_clock;

  ExecContext() = default;

  /// Limits wall-clock time for the evaluation.
  void set_deadline_after(std::chrono::milliseconds budget) {
    deadline_ = Clock::now() + budget;
    has_deadline_ = true;
  }

  /// Limits the number of tuples any engine may materialize ("mem-out").
  void set_tuple_budget(uint64_t budget) { tuple_budget_ = budget; }

  uint64_t tuple_budget() const { return tuple_budget_; }
  uint64_t tuples_used() const {
    return tuples_used_.load(std::memory_order_relaxed);
  }

  /// Records `n` materialized tuples against the budget.
  void AddTuples(uint64_t n) {
    tuples_used_.fetch_add(n, std::memory_order_relaxed);
  }

  /// Returns Timeout / ResourceExhausted when a limit has been crossed.
  /// The deadline is only consulted every `kClockStride` calls to keep the
  /// common path branch-cheap.
  Status CheckBudget() { return CheckBudgetShared(&clock_phase_); }

  /// Thread-safe variant for parallel evaluation: identical semantics, but
  /// the clock-stride phase counter lives in caller-owned state, so
  /// concurrent workers each pace their own deadline checks instead of
  /// racing on a shared counter. Limits must be configured before workers
  /// start (set_deadline_after / set_tuple_budget are not synchronized).
  Status CheckBudgetShared(uint32_t* clock_phase) const {
    return CheckBudgetShared(clock_phase, 1);
  }

  /// Batch variant: advances the caller's stride phase by `advance` work
  /// units in one call and samples the clock whenever a stride boundary
  /// is crossed. This keeps the deadline-sampling cadence proportional to
  /// work *done*, not to call count — the per-predicate merge fan-out
  /// processes a whole staged batch per call, so a merge worker that
  /// checked once per batch with the unit variant would sample the clock
  /// `fan_out * kClockStride` batches apart and could overshoot a
  /// deadline by several rounds. With `advance` = batch tuple count,
  /// every worker still samples about once per kClockStride tuples it
  /// merges, whatever the fan-out width.
  Status CheckBudgetShared(uint32_t* clock_phase, uint32_t advance) const {
    if (tuples_used_.load(std::memory_order_relaxed) > tuple_budget_) {
      return Status::ResourceExhausted("tuple budget exceeded (mem-out)");
    }
    if (has_deadline_) {
      const uint32_t before = *clock_phase;
      *clock_phase = before + advance;
      if (before / kClockStride != *clock_phase / kClockStride &&
          Clock::now() > deadline_) {
        return Status::Timeout("deadline exceeded");
      }
    }
    return Status::OK();
  }

  /// Immediate deadline check (used at loop heads of outer phases).
  bool PastDeadline() const {
    return has_deadline_ && Clock::now() > deadline_;
  }

  /// Deadline checks are sampled once per this many work units (see
  /// CheckBudgetShared); exposed for tests and pacing callers.
  static constexpr uint32_t kClockStride = 256;

 private:

  bool has_deadline_ = false;
  Clock::time_point deadline_{};
  uint64_t tuple_budget_ = std::numeric_limits<uint64_t>::max();
  std::atomic<uint64_t> tuples_used_{0};
  uint32_t clock_phase_ = 0;
};

/// Wall-clock stopwatch for the benchmark harness.
class Stopwatch {
 public:
  Stopwatch() : start_(ExecContext::Clock::now()) {}
  void Restart() { start_ = ExecContext::Clock::now(); }
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(ExecContext::Clock::now() - start_)
        .count();
  }

 private:
  ExecContext::Clock::time_point start_;
};

}  // namespace sparqlog
