#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>

/// \file status.h
/// Arrow/RocksDB-style Status and Result<T> types used throughout the
/// library for recoverable error propagation. Exceptions are reserved for
/// programming errors (assert-like conditions).

namespace sparqlog {

/// Error category for a failed operation.
enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument,   ///< caller passed something malformed
  kParseError,        ///< syntax error in Turtle / SPARQL / Datalog input
  kNotSupported,      ///< feature outside the engine's coverage (Table 1 ✗)
  kNotFound,          ///< named graph / predicate / variable missing
  kTimeout,           ///< ExecContext deadline exceeded
  kResourceExhausted, ///< tuple budget ("mem-out") exceeded
  kInternal,          ///< invariant violation that was caught gracefully
  kFailedPrecondition, ///< call out of lifecycle order (e.g. Execute before Load)
  kUnavailable,       ///< transient serving rejection (admission control)
};

/// Human-readable name of a status code (e.g. "Timeout").
const char* StatusCodeName(StatusCode code);

/// Outcome of an operation that can fail without a payload.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Timeout(std::string msg) {
    return Status(StatusCode::kTimeout, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsTimeout() const { return code_ == StatusCode::kTimeout; }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }
  bool IsNotSupported() const { return code_ == StatusCode::kNotSupported; }
  bool IsParseError() const { return code_ == StatusCode::kParseError; }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Outcome of an operation that yields a T on success.
template <typename T>
class Result {
 public:
  /*implicit*/ Result(T value) : value_(std::move(value)) {}
  /*implicit*/ Result(Status status) : status_(std::move(status)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  T& value() & { return *value_; }
  const T& value() const& { return *value_; }
  T&& value() && { return std::move(*value_); }

  T& operator*() & { return *value_; }
  const T& operator*() const& { return *value_; }
  T* operator->() { return &*value_; }
  const T* operator->() const { return &*value_; }

  /// Moves the value out, or aborts with the status message if failed.
  /// Intended for tests and examples where failure is a bug.
  T ValueOrDie() &&;

 private:
  Status status_;
  std::optional<T> value_;
};

[[noreturn]] void AbortWithStatus(const Status& status);

template <typename T>
T Result<T>::ValueOrDie() && {
  if (!ok()) AbortWithStatus(status_);
  return std::move(*value_);
}

/// Propagates a failed Status from the current function.
#define SPARQLOG_RETURN_NOT_OK(expr)                  \
  do {                                                \
    ::sparqlog::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                        \
  } while (0)

/// Evaluates a Result<T> expression, assigning the value on success and
/// propagating the Status on failure.
#define SPARQLOG_ASSIGN_OR_RETURN_IMPL(var, lhs, rexpr) \
  auto var = (rexpr);                                   \
  if (!var.ok()) return var.status();                   \
  lhs = std::move(var).value();

#define SPARQLOG_ASSIGN_OR_RETURN_CONCAT(x, y) x##y
#define SPARQLOG_ASSIGN_OR_RETURN_NAME(x, y) \
  SPARQLOG_ASSIGN_OR_RETURN_CONCAT(x, y)
#define SPARQLOG_ASSIGN_OR_RETURN(lhs, rexpr)                               \
  SPARQLOG_ASSIGN_OR_RETURN_IMPL(                                           \
      SPARQLOG_ASSIGN_OR_RETURN_NAME(_result_, __LINE__), lhs, rexpr)

}  // namespace sparqlog
