#include "util/failpoint.h"

#include <algorithm>
#include <cstdlib>
#include <thread>

namespace sparqlog::util {

namespace {

/// StatusCode by its snake_case spec name; kOk doubles as the
/// parse-failure marker since injecting OK is meaningless.
StatusCode CodeByName(std::string_view name) {
  if (name == "invalid_argument") return StatusCode::kInvalidArgument;
  if (name == "parse_error") return StatusCode::kParseError;
  if (name == "not_supported") return StatusCode::kNotSupported;
  if (name == "not_found") return StatusCode::kNotFound;
  if (name == "timeout") return StatusCode::kTimeout;
  if (name == "resource_exhausted") return StatusCode::kResourceExhausted;
  if (name == "internal") return StatusCode::kInternal;
  if (name == "failed_precondition") return StatusCode::kFailedPrecondition;
  if (name == "unavailable") return StatusCode::kUnavailable;
  return StatusCode::kOk;
}

/// Splits "head(args)" into its parts; returns false when `in` has no
/// parenthesized argument list.
bool SplitCall(std::string_view in, std::string_view* head,
               std::string_view* args) {
  size_t open = in.find('(');
  if (open == std::string_view::npos || in.empty() || in.back() != ')') {
    return false;
  }
  *head = in.substr(0, open);
  *args = in.substr(open + 1, in.size() - open - 2);
  return true;
}

bool ParseU64(std::string_view in, uint64_t* out) {
  if (in.empty()) return false;
  uint64_t v = 0;
  for (char c : in) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<uint64_t>(c - '0');
  }
  *out = v;
  return true;
}

}  // namespace

// --- FailpointSite ----------------------------------------------------------

FailpointSite::FailpointSite(const char* name) : name_(name) {
  Failpoints::Instance().Register(this);
}

Status FailpointSite::Eval() {
  Action action;
  uint64_t delay_ms = 0;
  StatusCode code;
  uint64_t hit;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Arm/Disarm raced us to the slow path: treat as disarmed.
    if (!armed_.load(std::memory_order_relaxed)) return Status::OK();
    hit = hits_++;
    switch (trigger_) {
      case Trigger::kAlways:
        break;
      case Trigger::kOnce:
        if (hit > 0) return Status::OK();
        armed_.store(false, std::memory_order_relaxed);
        break;
      case Trigger::kAfter:
        if (hit < n_) return Status::OK();
        break;
      case Trigger::kEvery:
        if ((seed_ + hit) % n_ != 0) return Status::OK();
        break;
    }
    action = action_;
    delay_ms = delay_ms_;
    code = code_;
  }
  fired_.fetch_add(1, std::memory_order_relaxed);
  if (action == Action::kDelay) {
    std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
    return Status::OK();
  }
  return Status(code, "failpoint '" + std::string(name_) + "' fired (hit " +
                          std::to_string(hit) + ")");
}

void FailpointSite::Configure(Trigger trigger, Action action, uint64_t n,
                              uint64_t seed, uint64_t delay_ms,
                              StatusCode code) {
  std::lock_guard<std::mutex> lock(mu_);
  trigger_ = trigger;
  action_ = action;
  n_ = n;
  seed_ = seed;
  delay_ms_ = delay_ms;
  code_ = code;
  hits_ = 0;
  armed_.store(true, std::memory_order_relaxed);
}

void FailpointSite::Disarm() {
  std::lock_guard<std::mutex> lock(mu_);
  armed_.store(false, std::memory_order_relaxed);
  hits_ = 0;
}

// --- Failpoints -------------------------------------------------------------

namespace {

/// A fully parsed activation spec, ready to install on a site.
struct ParsedSpec {
  bool disarm = false;  ///< the spec was "off"
  FailpointSite::Trigger trigger = FailpointSite::Trigger::kAlways;
  FailpointSite::Action action = FailpointSite::Action::kError;
  uint64_t n = 0;
  uint64_t seed = 0;
  uint64_t delay_ms = 0;
  StatusCode code = StatusCode::kInternal;
};

Status ParseSpec(std::string_view spec, ParsedSpec* out) {
  std::string_view body = spec;
  size_t colon = body.find(':');
  if (colon != std::string_view::npos) {
    std::string_view t = body.substr(0, colon);
    body = body.substr(colon + 1);
    std::string_view head;
    std::string_view args;
    if (t == "once") {
      out->trigger = FailpointSite::Trigger::kOnce;
    } else if (SplitCall(t, &head, &args) && head == "after" &&
               ParseU64(args, &out->n)) {
      out->trigger = FailpointSite::Trigger::kAfter;
    } else if (SplitCall(t, &head, &args) && head == "every") {
      size_t comma = args.find(',');
      std::string_view nn =
          comma == std::string_view::npos ? args : args.substr(0, comma);
      if (!ParseU64(nn, &out->n) || out->n == 0 ||
          (comma != std::string_view::npos &&
           !ParseU64(args.substr(comma + 1), &out->seed))) {
        return Status::InvalidArgument("failpoint spec: bad trigger '" +
                                       std::string(t) + "'");
      }
      out->trigger = FailpointSite::Trigger::kEvery;
    } else {
      return Status::InvalidArgument("failpoint spec: bad trigger '" +
                                     std::string(t) + "'");
    }
  }

  std::string_view head;
  std::string_view args;
  if (body == "off") {
    out->disarm = true;
  } else if (body == "error") {
    // defaults hold: kAlways-compatible error(internal)
  } else if (SplitCall(body, &head, &args) && head == "error") {
    out->code = CodeByName(args);
    if (out->code == StatusCode::kOk) {
      return Status::InvalidArgument("failpoint spec: unknown status code '" +
                                     std::string(args) + "'");
    }
  } else if (SplitCall(body, &head, &args) && head == "delay" &&
             ParseU64(args, &out->delay_ms)) {
    out->action = FailpointSite::Action::kDelay;
  } else {
    return Status::InvalidArgument("failpoint spec: bad action '" +
                                   std::string(body) + "'");
  }
  return Status::OK();
}

}  // namespace

Failpoints& Failpoints::Instance() {
  // Leaked: sites check in from static initializers of arbitrary
  // translation units and must never observe a destroyed registry.
  static Failpoints* instance = new Failpoints();
  return *instance;
}

Failpoints::Failpoints() {
  if (const char* env = std::getenv("SPARQLOG_FAILPOINTS")) {
    // Best effort: a bad env spec must not abort static initialization.
    // Well-formed entries before the bad one still arm.
    (void)ArmFromList(env);
  }
}

void Failpoints::Register(FailpointSite* site) {
  std::lock_guard<std::mutex> lock(mu_);
  sites_.push_back(site);
  for (auto it = parked_.begin(); it != parked_.end(); ++it) {
    if (it->first != site->name()) continue;
    // Specs are validated before parking, so this parse cannot fail.
    ParsedSpec parsed;
    if (ParseSpec(it->second, &parsed).ok() && !parsed.disarm) {
      site->Configure(parsed.trigger, parsed.action, parsed.n, parsed.seed,
                      parsed.delay_ms, parsed.code);
    }
    parked_.erase(it);
    break;
  }
}

Status Failpoints::Arm(std::string_view name, std::string_view spec) {
  ParsedSpec parsed;
  SPARQLOG_RETURN_NOT_OK(ParseSpec(spec, &parsed));
  std::lock_guard<std::mutex> lock(mu_);
  for (FailpointSite* site : sites_) {
    if (name != site->name()) continue;
    if (parsed.disarm) {
      site->Disarm();
    } else {
      site->Configure(parsed.trigger, parsed.action, parsed.n, parsed.seed,
                      parsed.delay_ms, parsed.code);
    }
    return Status::OK();
  }
  // The owning translation unit has not initialized yet (env activation
  // precedes most static init); park the validated spec for Register.
  for (auto& [parked_name, parked_spec] : parked_) {
    if (parked_name == name) {
      parked_spec = std::string(spec);
      return Status::OK();
    }
  }
  parked_.emplace_back(std::string(name), std::string(spec));
  return Status::OK();
}

void Failpoints::Disarm(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (FailpointSite* site : sites_) {
    if (name == site->name()) {
      site->Disarm();
      return;
    }
  }
  parked_.erase(
      std::remove_if(parked_.begin(), parked_.end(),
                     [&](const auto& p) { return p.first == name; }),
      parked_.end());
}

void Failpoints::DisarmAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (FailpointSite* site : sites_) site->Disarm();
  parked_.clear();
}

std::vector<std::string> Failpoints::Sites() const {
  std::vector<std::string> names;
  {
    std::lock_guard<std::mutex> lock(mu_);
    names.reserve(sites_.size());
    for (const FailpointSite* site : sites_) names.emplace_back(site->name());
  }
  std::sort(names.begin(), names.end());
  return names;
}

FailpointSite* Failpoints::Find(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (FailpointSite* site : sites_) {
    if (name == site->name()) return site;
  }
  return nullptr;
}

Status Failpoints::ArmFromList(std::string_view list) {
  size_t pos = 0;
  while (pos <= list.size()) {
    size_t semi = list.find(';', pos);
    std::string_view entry = list.substr(
        pos, semi == std::string_view::npos ? list.size() - pos : semi - pos);
    if (!entry.empty()) {
      size_t eq = entry.find('=');
      if (eq == std::string_view::npos) {
        return Status::InvalidArgument("failpoint list: entry '" +
                                       std::string(entry) +
                                       "' is not name=spec");
      }
      SPARQLOG_RETURN_NOT_OK(Arm(entry.substr(0, eq), entry.substr(eq + 1)));
    }
    if (semi == std::string_view::npos) break;
    pos = semi + 1;
  }
  return Status::OK();
}

}  // namespace sparqlog::util
