#include "core/engine.h"

#include "datalog/printer.h"

namespace sparqlog::core {

Engine::Engine(const rdf::Dataset* dataset, rdf::TermDictionary* dict,
               Options options)
    : dataset_(dataset), dict_(dict), options_(options) {}

Status Engine::Load() {
  if (loaded_) return Status::OK();
  SPARQLOG_RETURN_NOT_OK(DataTranslator::Translate(*dataset_, dict_, &edb_));
  loaded_ = true;
  return Status::OK();
}

Result<datalog::Program> Engine::Translate(const sparql::Query& query) {
  QueryTranslator translator(dict_, &skolems_, options_.ontology);
  return translator.Translate(query);
}

Result<eval::QueryResult> Engine::Execute(const sparql::Query& query) {
  SPARQLOG_RETURN_NOT_OK(Load());
  // FROM / FROM NAMED construct a query-specific dataset; translate its
  // data on the fly (the paper's engine likewise demands the query dataset
  // to be loaded for answering, §4.3).
  if (!query.from.empty() || !query.from_named.empty()) {
    rdf::Dataset scoped =
        dataset_->WithClauses(query.from, query.from_named);
    datalog::Database scoped_edb;
    SPARQLOG_RETURN_NOT_OK(
        DataTranslator::Translate(scoped, dict_, &scoped_edb));
    std::swap(edb_, scoped_edb);
    auto result = ExecuteInternal(query);
    std::swap(edb_, scoped_edb);
    return result;
  }
  return ExecuteInternal(query);
}

Result<eval::QueryResult> Engine::ExecuteInternal(const sparql::Query& query) {
  SPARQLOG_ASSIGN_OR_RETURN(datalog::Program program, Translate(query));

  ExecContext ctx;
  if (options_.timeout.count() > 0) ctx.set_deadline_after(options_.timeout);
  if (options_.tuple_budget > 0) ctx.set_tuple_budget(options_.tuple_budget);

  datalog::Database idb;
  datalog::Evaluator evaluator(dict_, &skolems_);
  evaluator.set_num_threads(options_.num_threads);
  SPARQLOG_RETURN_NOT_OK(evaluator.Evaluate(program, &edb_, &idb, &ctx));
  last_stats_ = evaluator.stats();

  return SolutionTranslator::Translate(program, query, idb, dict_, &ctx);
}

Result<eval::QueryResult> Engine::ExecuteText(std::string_view sparql_text) {
  sparql::ParserOptions popts;
  popts.extensions = options_.extensions;
  SPARQLOG_ASSIGN_OR_RETURN(sparql::Query query,
                            sparql::ParseQuery(sparql_text, dict_, popts));
  return Execute(query);
}

Result<std::string> Engine::TranslateToText(std::string_view sparql_text) {
  sparql::ParserOptions popts;
  popts.extensions = options_.extensions;
  SPARQLOG_ASSIGN_OR_RETURN(sparql::Query query,
                            sparql::ParseQuery(sparql_text, dict_, popts));
  SPARQLOG_ASSIGN_OR_RETURN(datalog::Program program, Translate(query));
  return datalog::ToString(program, *dict_, skolems_);
}

}  // namespace sparqlog::core
