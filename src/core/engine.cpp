#include "core/engine.h"

#include "datalog/planner.h"
#include "datalog/printer.h"
#include "sparql/shape.h"

namespace sparqlog::core {

Engine::Engine(const rdf::Dataset* dataset, rdf::TermDictionary* dict,
               Options options)
    : dataset_(dataset),
      dict_(dict),
      options_(options),
      program_cache_(options.program_cache_capacity),
      stratum_memo_(options.stratum_memo_bytes) {}

Status Engine::Load() {
  if (loaded_) return Status::OK();
  // Cold EDB build (and the rebuild Execute triggers on a generation
  // bump): bulk-load by default — per-relation batches deduped in one
  // pass against a one-shot-sized table — instead of tuple-at-a-time
  // inserts.
  SPARQLOG_RETURN_NOT_OK(
      DataTranslator::Translate(*dataset_, dict_, &edb_, options_.edb_build));
  loaded_ = true;
  loaded_generation_ = dataset_->Generation();
  // Planner statistics ride every (re)build, stamped with the dataset
  // generation so cached plans can tell they went stale.
  if (options_.join_planner) {
    datalog::PredicateTable scratch;
    EdbPredicates preds = InternEdbPredicates(&scratch);
    edb_stats_.Collect(edb_, preds.triple);
    edb_stats_.set_generation(loaded_generation_);
  }
  return Status::OK();
}

void Engine::PlanForActiveEdb(datalog::Program* program) {
  const datalog::EdbStats& stats =
      scoped_stats_ != nullptr ? *scoped_stats_ : edb_stats_;
  datalog::PlanProgram(program, stats);
  ++plans_computed_;
}

uint64_t Engine::PlanGeneration() const {
  return scoped_stats_ != nullptr ? ProgramCache::kNoPlan
                                  : edb_stats_.generation();
}

Result<datalog::Program> Engine::Translate(const sparql::Query& query) {
  QueryTranslator translator(dict_, &skolems_, options_.ontology);
  return translator.Translate(query);
}

std::vector<datalog::Value> Engine::AmbientValues() {
  using datalog::ValueFromTerm;
  std::vector<datalog::Value> out;
  out.push_back(ValueFromTerm(DefaultGraphTerm(dict_)));
  out.push_back(ValueFromTerm(dict_->InternBoolean(true)));
  out.push_back(ValueFromTerm(dict_->InternBoolean(false)));
  if (options_.ontology) {
    for (std::string_view iri :
         {rdf::rdfns::kType, rdf::rdfns::kSubClassOf,
          rdf::rdfns::kSubPropertyOf, rdf::rdfns::kDomain,
          rdf::rdfns::kRange}) {
      out.push_back(ValueFromTerm(dict_->InternIri(std::string(iri))));
    }
  }
  return out;
}

Result<std::shared_ptr<const datalog::Program>> Engine::TranslateCached(
    const sparql::Query& query) {
  sparql::QueryShape shape = sparql::ComputeQueryShape(query);
  const bool scoped = scoped_stats_ != nullptr;
  if (ProgramCache::Entry* entry = program_cache_.Lookup(shape)) {
    if (entry->data_key == shape.data_key) {
      ++cache_stats_.program_hits;
      if (options_.join_planner &&
          (scoped || entry->plan_generation != edb_stats_.generation())) {
        // The cached plan is stale (EDB rebuilt since it was computed)
        // or this is a query-scoped FROM execution (its statistics are
        // not the engine's): replan a copy. Scoped plans are never
        // adopted — they would poison the entry for unscoped traffic.
        datalog::Program replanned = *entry->program;
        PlanForActiveEdb(&replanned);
        auto program =
            std::make_shared<const datalog::Program>(std::move(replanned));
        if (!scoped) {
          entry->program = program;
          entry->plan_generation = edb_stats_.generation();
        }
        return program;
      }
      if (options_.join_planner) ++plan_cache_hits_;
      return entry->program;
    }
    std::optional<datalog::Program> rebound =
        RebindProgram(*entry, shape, query, AmbientValues());
    if (rebound.has_value()) {
      ++cache_stats_.program_rebinds;
      // Re-bound constants shift selectivities, so the plan is recomputed
      // along with the binding (still far cheaper than re-translating).
      if (options_.join_planner) PlanForActiveEdb(&*rebound);
      // Adopt the re-bound program as the shape's template: production
      // traffic repeats the *latest* constants, so the next arrival of
      // this exact query is a verbatim hit.
      entry->program =
          std::make_shared<const datalog::Program>(std::move(*rebound));
      entry->params = shape.params;
      entry->data_key = shape.data_key;
      entry->plan_generation = PlanGeneration();
      return entry->program;
    }
    // A changing parameter collided with an engine constant; fall through
    // to a fresh translation and make it the shape's new template.
  }
  ++cache_stats_.program_misses;
  SPARQLOG_ASSIGN_OR_RETURN(datalog::Program translated, Translate(query));
  if (options_.join_planner) PlanForActiveEdb(&translated);
  auto program =
      std::make_shared<const datalog::Program>(std::move(translated));
  ProgramCache::Entry entry;
  entry.program = program;
  entry.params = shape.params;
  entry.data_key = shape.data_key;
  entry.plan_generation = PlanGeneration();
  program_cache_.Insert(shape, std::move(entry));
  return program;
}

Result<eval::QueryResult> Engine::Execute(const sparql::Query& query) {
  // Mutating the dataset after Load invalidates the materialized EDB and
  // every memoized stratum result derived from it.
  if (loaded_ && dataset_->Generation() != loaded_generation_) {
    edb_ = datalog::Database();
    loaded_ = false;
    stratum_memo_.Clear();
    ++cache_stats_.invalidations;
  }
  SPARQLOG_RETURN_NOT_OK(Load());
  // FROM / FROM NAMED construct a query-specific dataset; translate its
  // data on the fly (the paper's engine likewise demands the query dataset
  // to be loaded for answering, §4.3). The scoped EDB is not this
  // dataset's generation, so the stratum memo sits out.
  if (!query.from.empty() || !query.from_named.empty()) {
    rdf::Dataset scoped =
        dataset_->WithClauses(query.from, query.from_named);
    datalog::Database scoped_edb;
    SPARQLOG_RETURN_NOT_OK(
        DataTranslator::Translate(scoped, dict_, &scoped_edb,
                                  options_.edb_build));
    // The planner sees the scoped EDB's statistics for this query only;
    // scoped plans are not cached (see TranslateCached).
    datalog::EdbStats scoped_stats;
    if (options_.join_planner) {
      datalog::PredicateTable scratch;
      EdbPredicates preds = InternEdbPredicates(&scratch);
      scoped_stats.Collect(scoped_edb, preds.triple);
      scoped_stats_ = &scoped_stats;
    }
    std::swap(edb_, scoped_edb);
    auto result = ExecuteInternal(query, /*allow_stratum_memo=*/false);
    std::swap(edb_, scoped_edb);
    scoped_stats_ = nullptr;
    return result;
  }
  return ExecuteInternal(query, /*allow_stratum_memo=*/true);
}

Result<eval::QueryResult> Engine::ExecuteInternal(const sparql::Query& query,
                                                  bool allow_stratum_memo) {
  std::shared_ptr<const datalog::Program> program;
  if (options_.program_cache) {
    SPARQLOG_ASSIGN_OR_RETURN(program, TranslateCached(query));
  } else {
    SPARQLOG_ASSIGN_OR_RETURN(datalog::Program translated, Translate(query));
    if (options_.join_planner) PlanForActiveEdb(&translated);
    program =
        std::make_shared<const datalog::Program>(std::move(translated));
  }

  ExecContext ctx;
  if (options_.timeout.count() > 0) ctx.set_deadline_after(options_.timeout);
  if (options_.tuple_budget > 0) ctx.set_tuple_budget(options_.tuple_budget);

  datalog::Database idb;
  datalog::Evaluator evaluator(dict_, &skolems_);
  evaluator.set_num_threads(options_.num_threads);
  evaluator.set_parallel_merge(options_.parallel_merge);
  evaluator.set_parallel_naive(options_.parallel_naive);
  if (options_.stratum_memo && allow_stratum_memo) {
    evaluator.set_stratum_memo(&stratum_memo_, loaded_generation_);
  }
  SPARQLOG_RETURN_NOT_OK(evaluator.Evaluate(*program, &edb_, &idb, &ctx));
  last_stats_ = evaluator.stats();
  cache_stats_.stratum_hits += last_stats_.strata_memo_hits;
  cache_stats_.stratum_misses += last_stats_.strata_memo_misses;
  cache_stats_.tuples_restored += last_stats_.tuples_restored;

  // Planner feedback: q-error between the estimated and materialized
  // output cardinality (benchmarks watch this to keep the cost model
  // honest).
  if (options_.join_planner && program->planned_estimate >= 0) {
    const datalog::Relation* out = idb.Find(program->output.predicate);
    double actual = std::max(out == nullptr ? 0.0 : double(out->size()), 1.0);
    double estimate = std::max(program->planned_estimate, 1.0);
    last_plan_error_ =
        estimate > actual ? estimate / actual : actual / estimate;
  }

  return SolutionTranslator::Translate(*program, query, idb, dict_, &ctx);
}

Result<eval::QueryResult> Engine::ExecuteText(std::string_view sparql_text) {
  sparql::ParserOptions popts;
  popts.extensions = options_.extensions;
  SPARQLOG_ASSIGN_OR_RETURN(sparql::Query query,
                            sparql::ParseQuery(sparql_text, dict_, popts));
  return Execute(query);
}

Result<std::string> Engine::TranslateToText(std::string_view sparql_text) {
  sparql::ParserOptions popts;
  popts.extensions = options_.extensions;
  SPARQLOG_ASSIGN_OR_RETURN(sparql::Query query,
                            sparql::ParseQuery(sparql_text, dict_, popts));
  SPARQLOG_ASSIGN_OR_RETURN(datalog::Program program, Translate(query));
  return datalog::ToString(program, *dict_, skolems_);
}

}  // namespace sparqlog::core
